package qolsr_test

import (
	"fmt"
	"log"

	"qolsr"
)

// ExampleFNBP_Select demonstrates the paper's selection on a small network:
// node 0's direct link to node 2 is narrow, so FNBP advertises node 1, the
// first hop of the wide detour.
func ExampleFNBP_Select() {
	g := qolsr.NewGraph(4)
	links := []struct {
		a, b int32
		bw   float64
	}{
		{0, 1, 9}, // u - a : wide
		{1, 2, 9}, // a - v : wide
		{0, 2, 2}, // u - v : narrow direct link
		{2, 3, 5}, // v - t : t is a 2-hop neighbor
	}
	for _, l := range links {
		e, err := g.AddEdge(l.a, l.b)
		if err != nil {
			log.Fatal(err)
		}
		if err := g.SetWeight("bandwidth", e, l.bw); err != nil {
			log.Fatal(err)
		}
	}
	w, err := g.Weights("bandwidth")
	if err != nil {
		log.Fatal(err)
	}
	view := qolsr.NewLocalView(g, 0)
	ans, err := (qolsr.FNBP{}).Select(view, qolsr.Bandwidth(), w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("advertised:", ans)
	// Output:
	// advertised: [1]
}

// ExampleComputeFirstHops shows the fP(u,v) machinery the selection builds
// on: both tied wide detours to node 3 are reported as first hops.
func ExampleComputeFirstHops() {
	g := qolsr.NewGraph(4)
	links := []struct {
		a, b int32
		bw   float64
	}{
		{0, 1, 7}, {1, 3, 7}, // u-a-t
		{0, 2, 7}, {2, 3, 7}, // u-b-t (tied)
	}
	for _, l := range links {
		e, _ := g.AddEdge(l.a, l.b)
		if err := g.SetWeight("bandwidth", e, l.bw); err != nil {
			log.Fatal(err)
		}
	}
	w, _ := g.Weights("bandwidth")
	view := qolsr.NewLocalView(g, 0)
	fh, err := qolsr.ComputeFirstHops(view, qolsr.Bandwidth(), w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("value:", fh.Dist[3])
	fmt.Println("first hops:", fh.Members(3))
	// Output:
	// value: 7
	// first hops: [1 2]
}

// ExampleEvaluatePair computes the paper's overhead metric: the advertised
// topology only kept the narrow link, so routing loses bandwidth relative
// to the centralized optimum.
func ExampleEvaluatePair() {
	g := qolsr.NewGraph(3)
	for _, l := range []struct {
		a, b int32
		bw   float64
	}{{0, 1, 8}, {1, 2, 8}, {0, 2, 4}} {
		e, _ := g.AddEdge(l.a, l.b)
		if err := g.SetWeight("bandwidth", e, l.bw); err != nil {
			log.Fatal(err)
		}
	}
	// Suppose only the direct 0-2 link is advertised.
	adv, err := qolsr.BuildAdvertised(g, [][]int32{{2}, {}, {}}, "bandwidth")
	if err != nil {
		log.Fatal(err)
	}
	ev, err := qolsr.EvaluatePair(g, adv, qolsr.Bandwidth(), "bandwidth", 0, 2, qolsr.QoSOptimal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("achieved %.0f of optimal %.0f (overhead %.0f%%)\n",
		ev.Achieved, ev.Optimal, 100*ev.Overhead)
	// Output:
	// achieved 4 of optimal 8 (overhead 50%)
}

// ExampleSelectMPR contrasts the flooding set with FNBP's routing set: the
// greedy MPR heuristic must cover the 2-hop neighborhood regardless of link
// quality.
func ExampleSelectMPR() {
	g := qolsr.NewGraph(4)
	for _, l := range [][2]int32{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if _, err := g.AddEdge(l[0], l[1]); err != nil {
			log.Fatal(err)
		}
	}
	view := qolsr.NewLocalView(g, 0)
	mprs, err := qolsr.SelectMPR(view, qolsr.MPRGreedy, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("covered:", qolsr.VerifyMPRCoverage(view, mprs))
	fmt.Println("mpr count:", len(mprs))
	// Output:
	// covered: true
	// mpr count: 1
}
