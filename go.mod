module qolsr

go 1.24
