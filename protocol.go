package qolsr

// Routing over advertised topologies and the live OLSR/QOLSR protocol
// stack: what a deployed network does with the selected sets.

import (
	"qolsr/internal/geom"
	"qolsr/internal/olsr"
	"qolsr/internal/route"
	"qolsr/internal/sim"
)

// Routing evaluation.
type (
	// RoutePolicy selects the routing behaviour over advertised links.
	RoutePolicy = route.Policy
	// PairEval is the outcome of routing one pair.
	PairEval = route.PairEval
)

// Routing policies.
const (
	QoSOptimal    = route.QoSOptimal
	MinHopThenQoS = route.MinHopThenQoS
)

var (
	// PolicyByName resolves "qos-optimal" or "minhop-then-qos".
	PolicyByName = route.PolicyByName
	// RoutePolicyNames lists every routing policy's string form.
	RoutePolicyNames = route.PolicyNames
	// BuildAdvertised materialises the network-wide advertised topology.
	BuildAdvertised = route.BuildAdvertised
	// EvaluatePair routes one pair and compares with the optimum.
	EvaluatePair = route.EvaluatePair
	// Overhead computes the paper's relative regret.
	Overhead = route.Overhead
	// Forward walks hop-by-hop next-hop decisions.
	Forward = route.Forward
)

// Radio medium: the pluggable layer every transmission crosses. The ideal
// MAC is the paper's model; the lossy medium adds per-link packet-error
// rates, per-node transmit queues and jitter, the regime measured link
// quality (ProtocolConfig.MeasuredQoS) exists for.
type (
	// Medium is the radio model a Network transmits through.
	Medium = sim.Medium
	// MediumHop is one planned frame reception.
	MediumHop = sim.Hop
	// MediumLossyConfig parameterises the lossy medium.
	MediumLossyConfig = sim.LossyConfig
	// MediumIdealType is the ideal MAC implementation.
	MediumIdealType = sim.IdealMedium
	// MediumLossyType is the lossy radio implementation.
	MediumLossyType = sim.LossyMedium
)

var (
	// MediumIdeal returns the ideal MAC (the default).
	MediumIdeal = sim.NewIdealMedium
	// MediumLossy returns a lossy, queued radio.
	MediumLossy = sim.NewLossyMedium
	// MediumByName resolves a medium registry name.
	MediumByName = sim.MediumByName
	// MediumNames lists the built-in radio media.
	MediumNames = sim.MediumNames
)

// Protocol stack.
type (
	// ProtocolConfig parameterises an OLSR/QOLSR node.
	ProtocolConfig = olsr.Config
	// ProtocolNode is one protocol state machine.
	ProtocolNode = olsr.Node
	// Route is one protocol routing-table entry.
	Route = olsr.Route
	// Routes is a node's routing table: a cached, read-only view with
	// allocation-free Lookup, rebuilt only when the protocol state moves.
	Routes = olsr.Routes
	// Network runs a protocol instance per node over the event
	// simulator.
	Network = sim.Network
	// NetworkOptions tunes the simulation harness.
	NetworkOptions = sim.NetworkOptions
	// TrafficStats accounts control traffic.
	TrafficStats = sim.TrafficStats
	// Waypoint is the random-waypoint mobility model.
	Waypoint = geom.Waypoint
	// Mobility advances node positions in virtual time.
	Mobility = geom.Mobility
	// MobileSim couples the protocol network to a mobility model.
	MobileSim = sim.MobileSim
)

var (
	// DefaultProtocolConfig returns RFC-style timers with FNBP selection.
	DefaultProtocolConfig = olsr.DefaultConfig
	// NewProtocolNode creates a protocol node.
	NewProtocolNode = olsr.NewNode
	// NewNetwork builds a simulated protocol network.
	NewNetwork = sim.NewNetwork
	// NewMobility starts a waypoint mobility population.
	NewMobility = geom.NewMobility
	// NewMobileSim deploys protocol nodes under mobility.
	NewMobileSim = sim.NewMobileSim
	// PairWeight derives stable per-pair link weights under mobility.
	PairWeight = sim.PairWeight
)
