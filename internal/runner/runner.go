// Package runner executes figure sweeps as parallel, cancellable,
// streaming pipelines. It is the engine behind the root package's
// Experiment/Runner API: every (figure, density) pair becomes one job, jobs
// run concurrently on a bounded pool, each job additionally parallelizes
// its runs through eval.RunPoint, and completed points are streamed as
// events while the sweep is still in flight.
//
// Results are deterministic for a given seed regardless of the worker
// budget: every run's RNG stream is derived from (seed, degree, run) alone
// and points are assembled by index, so parallelism only changes wall-clock
// time, never numbers.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"qolsr/internal/eval"
	"qolsr/internal/metric"
)

// Options tunes a sweep without changing the figures' definitions.
type Options struct {
	// Workers is the total parallelism budget, shared between concurrent
	// density points and the runs inside each point (default GOMAXPROCS).
	Workers int
	// Runs is the per-point run count (default 100, the paper's).
	Runs int
	// Seed is the base RNG seed (default 1).
	Seed int64
	// WeightInterval overrides the link weight law (default [1,10]).
	WeightInterval metric.Interval
	// Degrees, when non-empty, overrides every figure's density axis.
	Degrees []float64
	// Progress, when non-nil, receives a human-readable line per
	// completed density point. Calls are serialized; the callback never
	// runs concurrently with itself.
	Progress func(format string, args ...any)
	// Quantities selects the series the encoders emit per protocol;
	// empty means each figure's own quantity.
	Quantities []eval.Quantity
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Runs <= 0 {
		o.Runs = 100
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.WeightInterval == (metric.Interval{}) {
		o.WeightInterval = metric.DefaultInterval()
	}
	return o
}

// EventKind discriminates stream events.
type EventKind int

const (
	// EventPoint reports one completed density point.
	EventPoint EventKind = iota + 1
	// EventFigure reports a fully assembled figure.
	EventFigure
)

// Event is one incremental sweep outcome. Point events may arrive out of
// density order (points run in parallel); FigureIndex/PointIndex locate the
// result.
type Event struct {
	Kind        EventKind
	FigureID    string
	FigureIndex int
	// PointIndex and Degree identify the density point (EventPoint only).
	PointIndex int
	Degree     float64
	// Point is the completed density point (EventPoint only).
	Point *eval.PointResult
	// Figure is the assembled figure (EventFigure only).
	Figure *eval.FigureResult
}

// Result is a completed sweep.
type Result struct {
	// Figures holds one assembled result per requested figure, in
	// request order.
	Figures []*eval.FigureResult
	// Quantities is the encoder series selection (see Options).
	Quantities []eval.Quantity
}

// Stream starts the sweep and returns the event channel plus a wait
// function that blocks until completion and yields the final result. The
// channel is buffered for the whole sweep and closed when done, so a caller
// may drain it lazily or abandon it. Cancelling ctx stops outstanding work
// promptly; wait then returns ctx.Err().
func Stream(ctx context.Context, figs []eval.Figure, opts Options) (<-chan Event, func() (*Result, error)) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	figs = cloneFigures(figs, opts.Degrees)

	type job struct {
		fi, pi int
		deg    float64
	}
	var jobs []job
	results := make([]*eval.FigureResult, len(figs))
	remaining := make([]int, len(figs))
	for fi, f := range figs {
		results[fi] = &eval.FigureResult{
			Figure: f,
			Runs:   opts.Runs,
			Points: make([]*eval.PointResult, len(f.Degrees)),
		}
		remaining[fi] = len(f.Degrees)
		for pi, deg := range f.Degrees {
			jobs = append(jobs, job{fi: fi, pi: pi, deg: deg})
		}
	}

	// Split the budget: pointWorkers density points in flight, each
	// running its topologies on runWorkers goroutines.
	pointWorkers := opts.Workers
	if pointWorkers > len(jobs) {
		pointWorkers = len(jobs)
	}
	if pointWorkers < 1 {
		pointWorkers = 1
	}
	runWorkers := opts.Workers / pointWorkers
	if runWorkers < 1 {
		runWorkers = 1
	}

	events := make(chan Event, len(jobs)+len(figs))
	var (
		mu         sync.Mutex
		progressMu sync.Mutex
	)
	poolWait := jobPool(ctx, len(jobs), pointWorkers, func(runCtx context.Context, i int) error {
		j := jobs[i]
		fig := figs[j.fi]
		sc := fig.Scenario(j.deg, opts.Runs, opts.Seed, opts.WeightInterval)
		sc.Workers = runWorkers
		point, err := eval.RunPoint(runCtx, sc, fig.Protocols)
		if err != nil {
			return fmt.Errorf("runner: %s density %g: %w", fig.ID, j.deg, err)
		}
		mu.Lock()
		results[j.fi].Points[j.pi] = point
		remaining[j.fi]--
		figDone := remaining[j.fi] == 0
		mu.Unlock()
		events <- Event{
			Kind:        EventPoint,
			FigureID:    fig.ID,
			FigureIndex: j.fi,
			PointIndex:  j.pi,
			Degree:      j.deg,
			Point:       point,
		}
		if opts.Progress != nil {
			progressMu.Lock()
			opts.Progress("%s density %g done (%d runs, %.0f nodes avg)",
				fig.ID, j.deg, opts.Runs, point.Nodes.Mean())
			progressMu.Unlock()
		}
		if figDone {
			events <- Event{
				Kind:        EventFigure,
				FigureID:    fig.ID,
				FigureIndex: j.fi,
				Figure:      results[j.fi],
			}
		}
		return nil
	}, func() { close(events) })

	wait := func() (*Result, error) {
		if err := poolWait(); err != nil {
			return nil, err
		}
		return &Result{Figures: results, Quantities: opts.Quantities}, nil
	}
	return events, wait
}

// Run executes the sweep to completion, discarding the event stream.
func Run(ctx context.Context, figs []eval.Figure, opts Options) (*Result, error) {
	events, wait := Stream(ctx, figs, opts)
	for range events {
	}
	return wait()
}

// cloneFigures copies the figure slice (and degree axes) so option
// overrides never mutate caller-owned definitions.
func cloneFigures(figs []eval.Figure, degrees []float64) []eval.Figure {
	out := append([]eval.Figure(nil), figs...)
	for i := range out {
		if len(degrees) > 0 {
			out[i].Degrees = append([]float64(nil), degrees...)
		} else {
			out[i].Degrees = append([]float64(nil), out[i].Degrees...)
		}
	}
	return out
}
