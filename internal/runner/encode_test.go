package runner

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"qolsr/internal/eval"
	"qolsr/internal/metric"
)

var update = flag.Bool("update", false, "rewrite the encoder golden files")

// syntheticResult builds a two-figure sweep with hand-fed accumulators so
// the golden files do not depend on simulation output.
func syntheticResult() *Result {
	mkPoint := func(deg float64, names []string, base float64) *eval.PointResult {
		p := &eval.PointResult{
			Degree:    deg,
			Protocols: make(map[string]*eval.ProtocolPoint, len(names)),
		}
		p.Nodes.Add(100 + deg)
		p.Nodes.Add(104 + deg)
		for i, name := range names {
			pp := &eval.ProtocolPoint{}
			for r := 0; r < 3; r++ {
				v := base + float64(i) + float64(r)*0.5
				pp.SetSize.Add(v)
				pp.Overhead.Add(v / 100)
				pp.Delivery.Add(1)
			}
			p.Protocols[name] = pp
		}
		return p
	}
	names := []string{"alpha", "beta"}
	protocols := []eval.ProtocolSpec{{Name: "alpha"}, {Name: "beta"}}
	fig1 := &eval.FigureResult{
		Figure: eval.Figure{
			ID:        "fig-a",
			Title:     "synthetic set sizes",
			Metric:    metric.Bandwidth(),
			Degrees:   []float64{10, 20},
			Quantity:  eval.QuantitySetSize,
			Protocols: protocols,
		},
		Runs:   3,
		Points: []*eval.PointResult{mkPoint(10, names, 2), mkPoint(20, names, 3)},
	}
	fig2 := &eval.FigureResult{
		Figure: eval.Figure{
			ID:        "fig-b",
			Title:     "synthetic overheads",
			Metric:    metric.Delay(),
			Degrees:   []float64{10},
			Quantity:  eval.QuantityOverhead,
			Protocols: protocols,
		},
		Runs:   3,
		Points: []*eval.PointResult{mkPoint(10, names, 4)},
	}
	return &Result{Figures: []*eval.FigureResult{fig1, fig2}}
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./internal/runner -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestEncodeJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := syntheticResult().EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sweep.golden.json", buf.Bytes())
}

func TestEncodeCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := syntheticResult().EncodeCSV(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sweep.golden.csv", buf.Bytes())
}

// With an explicit quantity selection, every figure reports the same
// series regardless of its default quantity.
func TestEncodeQuantitySelectionGolden(t *testing.T) {
	res := syntheticResult()
	res.Quantities = []eval.Quantity{eval.QuantitySetSize, eval.QuantityDelivery}
	var buf bytes.Buffer
	if err := res.EncodeCSV(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "sweep.quantities.golden.csv", buf.Bytes())
}

func TestEncodeUnknownQuantity(t *testing.T) {
	res := syntheticResult()
	res.Quantities = []eval.Quantity{"bogus"}
	var buf bytes.Buffer
	if err := res.EncodeJSON(&buf); err == nil {
		t.Error("unknown quantity accepted by JSON encoder")
	}
	if err := res.EncodeCSV(&buf); err == nil {
		t.Error("unknown quantity accepted by CSV encoder")
	}
}

func TestWriteTables(t *testing.T) {
	var buf bytes.Buffer
	if err := syntheticResult().WriteTables(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig-a", "fig-b", "alpha", "density"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("tables missing %q:\n%s", want, buf.String())
		}
	}
}
