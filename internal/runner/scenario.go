package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"qolsr/internal/scenario"
)

// Scenario execution: replicate runs of one dynamic-network program fan out
// over the same worker budget the figure sweeps use. Every run's RNG
// streams derive from (seed, run) alone and runs are assembled by index, so
// a fixed seed yields bit-identical results for any worker count; only the
// interleaving of streamed events varies.

// ScenarioEventKind discriminates scenario stream events.
type ScenarioEventKind int

const (
	// ScenarioEventSample reports one measurement of one run, as soon as
	// it is taken.
	ScenarioEventSample ScenarioEventKind = iota + 1
	// ScenarioEventRun reports one completed replicate run.
	ScenarioEventRun
)

// ScenarioEvent is one incremental scenario outcome. Events from different
// runs interleave arbitrarily (runs execute in parallel); Run locates them.
type ScenarioEvent struct {
	Kind ScenarioEventKind
	// Run is the replicate index.
	Run int
	// Sample is the measurement (ScenarioEventSample only).
	Sample scenario.Sample
	// Result is the completed run (ScenarioEventRun only).
	Result *scenario.RunResult
}

// scenarioDefaults adapts the sweep options to scenario execution: the
// live protocol stack is far costlier per replicate than the offline
// harness, so the unset-runs default is 3 (matching the control sweep),
// not the figures' 100.
func scenarioDefaults(o Options) Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Runs <= 0 {
		o.Runs = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// StreamScenario starts the scenario's replicate runs on the worker budget
// and returns the event channel plus a wait function yielding the final
// result. The channel is buffered for the whole execution and closed when
// done, so a caller may drain it lazily or abandon it. Cancelling ctx stops
// outstanding work promptly; wait then returns ctx.Err().
func StreamScenario(ctx context.Context, sc scenario.Scenario, opts Options) (<-chan ScenarioEvent, func() (*scenario.Result, error)) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts = scenarioDefaults(opts)
	sc = sc.WithDefaults()

	if err := sc.Validate(); err != nil {
		events := make(chan ScenarioEvent)
		close(events)
		return events, func() (*scenario.Result, error) { return nil, err }
	}

	samplesPerRun := len(sc.SampleTimes())
	events := make(chan ScenarioEvent, opts.Runs*(samplesPerRun+1))
	results := make([]*scenario.RunResult, opts.Runs)

	var progressMu sync.Mutex
	poolWait := jobPool(ctx, opts.Runs, opts.Workers, func(runCtx context.Context, run int) error {
		emit := func(s scenario.Sample) {
			events <- ScenarioEvent{Kind: ScenarioEventSample, Run: run, Sample: s}
		}
		rr, err := scenario.Execute(runCtx, sc, opts.Seed, run, emit)
		if err != nil {
			return fmt.Errorf("runner: scenario %s run %d: %w", sc.Name, run, err)
		}
		results[run] = rr
		events <- ScenarioEvent{Kind: ScenarioEventRun, Run: run, Result: rr}
		if opts.Progress != nil {
			progressMu.Lock()
			opts.Progress("scenario %s run %d done (%d nodes, %d samples)",
				sc.Name, run, rr.Nodes, len(rr.Samples))
			progressMu.Unlock()
		}
		return nil
	}, func() { close(events) })

	wait := func() (*scenario.Result, error) {
		if err := poolWait(); err != nil {
			return nil, err
		}
		return &scenario.Result{Scenario: sc, Seed: opts.Seed, Runs: results}, nil
	}
	return events, wait
}

// RunScenario executes the scenario to completion, discarding the event
// stream.
func RunScenario(ctx context.Context, sc scenario.Scenario, opts Options) (*scenario.Result, error) {
	events, wait := StreamScenario(ctx, sc, opts)
	for range events {
	}
	return wait()
}
