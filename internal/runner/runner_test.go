package runner

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"qolsr/internal/eval"
	"qolsr/internal/metric"
)

// tinyFigure keeps engine tests fast: low density (≈ 95 nodes on the paper
// field), short axis, the paper's three protocols.
func tinyFigure(id string, degrees ...float64) eval.Figure {
	return eval.Figure{
		ID:        id,
		Title:     "tiny " + id,
		Metric:    metric.Bandwidth(),
		Degrees:   degrees,
		Quantity:  eval.QuantitySetSize,
		Protocols: eval.PaperProtocols(),
	}
}

func TestRunAssemblesAllPoints(t *testing.T) {
	figs := []eval.Figure{tinyFigure("t1", 3, 4), tinyFigure("t2", 3)}
	res, err := Run(context.Background(), figs, Options{Runs: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Figures) != 2 {
		t.Fatalf("figures = %d", len(res.Figures))
	}
	for fi, fr := range res.Figures {
		if len(fr.Points) != len(figs[fi].Degrees) {
			t.Fatalf("figure %d points = %d, want %d", fi, len(fr.Points), len(figs[fi].Degrees))
		}
		for pi, p := range fr.Points {
			if p == nil {
				t.Fatalf("figure %d point %d missing", fi, pi)
			}
			if p.Degree != figs[fi].Degrees[pi] {
				t.Errorf("figure %d point %d degree = %g, want %g", fi, pi, p.Degree, figs[fi].Degrees[pi])
			}
		}
	}
}

func TestStreamEmitsEveryEvent(t *testing.T) {
	figs := []eval.Figure{tinyFigure("s1", 3, 4, 5)}
	events, wait := Stream(context.Background(), figs, Options{Runs: 1, Seed: 7, Workers: 4})
	points, figures := 0, 0
	seen := map[int]bool{}
	for ev := range events {
		switch ev.Kind {
		case EventPoint:
			points++
			if ev.Point == nil || ev.FigureID != "s1" {
				t.Errorf("bad point event %+v", ev)
			}
			if seen[ev.PointIndex] {
				t.Errorf("duplicate point index %d", ev.PointIndex)
			}
			seen[ev.PointIndex] = true
		case EventFigure:
			figures++
			if ev.Figure == nil || len(ev.Figure.Points) != 3 {
				t.Errorf("bad figure event %+v", ev)
			}
		}
	}
	if points != 3 || figures != 1 {
		t.Errorf("events = %d points, %d figures; want 3, 1", points, figures)
	}
	if _, err := wait(); err != nil {
		t.Fatal(err)
	}
}

// The worker budget must only change wall-clock time, never numbers: the
// encoded JSON is byte-identical across Workers values.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	figs := []eval.Figure{tinyFigure("d1", 3, 4), tinyFigure("d2", 4)}
	encode := func(workers int) []byte {
		res, err := Run(context.Background(), figs, Options{Runs: 3, Seed: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.EncodeJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := encode(1)
	for _, workers := range []int{2, 8} {
		if got := encode(workers); !bytes.Equal(serial, got) {
			t.Errorf("workers=%d changed the result:\n%s\nvs serial:\n%s", workers, got, serial)
		}
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	// A sweep big enough to still be in flight when the cancel lands.
	figs := []eval.Figure{tinyFigure("c1", 5, 6, 7, 8), tinyFigure("c2", 5, 6, 7, 8)}
	events, wait := Stream(ctx, figs, Options{Runs: 50, Seed: 3, Workers: 2})
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	for range events {
	}
	start := time.Now()
	_, err := wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("wait took %v after cancel", elapsed)
	}
}

func TestRunPropagatesPointErrors(t *testing.T) {
	_, err := Run(context.Background(), []eval.Figure{tinyFigure("bad", 5)}, Options{
		Runs:           1,
		WeightInterval: metric.Interval{Lo: -2, Hi: -1},
	})
	if err == nil {
		t.Fatal("invalid weight interval accepted")
	}
}

func TestDegreeOverrideDoesNotMutateInput(t *testing.T) {
	fig := tinyFigure("o1", 3, 4, 5)
	res, err := Run(context.Background(), []eval.Figure{fig}, Options{Runs: 1, Degrees: []float64{3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Figures[0].Points) != 1 {
		t.Errorf("override ignored: %d points", len(res.Figures[0].Points))
	}
	if len(fig.Degrees) != 3 {
		t.Errorf("caller's figure mutated: %v", fig.Degrees)
	}
}
