package runner

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"qolsr/internal/eval"
	"qolsr/internal/stats"
)

// SchemaVersion identifies the JSON encoding; bump it on breaking changes
// to the document shape.
const SchemaVersion = "qolsr-sweep/v1"

// jsonStat is one accumulated series in machine-readable form.
type jsonStat struct {
	Mean float64 `json:"mean"`
	CI95 float64 `json:"ci95"`
	N    int     `json:"n"`
}

// jsonPoint is one density point.
type jsonPoint struct {
	Degree      float64                        `json:"degree"`
	Nodes       float64                        `json:"nodes"`
	SkippedRuns int                            `json:"skipped_runs,omitempty"`
	Protocols   map[string]map[string]jsonStat `json:"protocols"`
}

// jsonFigure is one assembled figure.
type jsonFigure struct {
	ID        string      `json:"id"`
	Title     string      `json:"title"`
	Metric    string      `json:"metric"`
	Quantity  string      `json:"quantity"`
	Runs      int         `json:"runs"`
	Protocols []string    `json:"protocols"`
	Points    []jsonPoint `json:"points"`
}

// jsonSweep is the top-level JSON document.
type jsonSweep struct {
	Schema  string       `json:"schema"`
	Figures []jsonFigure `json:"figures"`
}

// quantitiesFor returns the series the encoders emit for one figure: the
// result-wide selection when set, else the figure's own quantity.
func (r *Result) quantitiesFor(fr *eval.FigureResult) []eval.Quantity {
	if len(r.Quantities) > 0 {
		return r.Quantities
	}
	return []eval.Quantity{fr.Figure.Quantity}
}

// accumulatorFor maps a quantity to its accumulator in a protocol point.
func accumulatorFor(pp *eval.ProtocolPoint, q eval.Quantity) *stats.Accumulator {
	switch q {
	case eval.QuantitySetSize:
		return &pp.SetSize
	case eval.QuantityOverhead:
		return &pp.Overhead
	case eval.QuantityDelivery:
		return &pp.Delivery
	case eval.QuantityDirectedDelivery:
		return &pp.DirectedDelivery
	default:
		return nil
	}
}

// EncodeJSON writes the sweep as an indented JSON document (schema
// "qolsr-sweep/v1"): per figure, per density point, per protocol, the
// selected quantity series as {mean, ci95, n}.
func (r *Result) EncodeJSON(w io.Writer) error {
	doc := jsonSweep{Schema: SchemaVersion}
	for _, fr := range r.Figures {
		jf := jsonFigure{
			ID:        fr.Figure.ID,
			Title:     fr.Figure.Title,
			Metric:    fr.Figure.Metric.Name(),
			Quantity:  string(fr.Figure.Quantity),
			Runs:      fr.Runs,
			Protocols: fr.ProtocolNames(),
		}
		for pi, p := range fr.Points {
			jp := jsonPoint{
				Degree:      fr.Figure.Degrees[pi],
				Nodes:       p.Nodes.Mean(),
				SkippedRuns: p.SkippedRuns,
				Protocols:   make(map[string]map[string]jsonStat, len(p.Protocols)),
			}
			for _, name := range jf.Protocols {
				pp := p.Protocols[name]
				if pp == nil {
					continue
				}
				series := make(map[string]jsonStat)
				for _, q := range r.quantitiesFor(fr) {
					acc := accumulatorFor(pp, q)
					if acc == nil {
						return fmt.Errorf("runner: unknown quantity %q", q)
					}
					series[string(q)] = jsonStat{Mean: acc.Mean(), CI95: acc.CI95(), N: acc.N()}
				}
				jp.Protocols[name] = series
			}
			jf.Points = append(jf.Points, jp)
		}
		doc.Figures = append(doc.Figures, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// EncodeCSV writes the sweep in long form, one row per (figure, density,
// protocol, quantity) — the shape plotting tools group and pivot directly.
func (r *Result) EncodeCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "figure,density,protocol,quantity,mean,ci95,n"); err != nil {
		return err
	}
	for _, fr := range r.Figures {
		for pi, p := range fr.Points {
			for _, name := range fr.ProtocolNames() {
				pp := p.Protocols[name]
				if pp == nil {
					continue
				}
				for _, q := range r.quantitiesFor(fr) {
					acc := accumulatorFor(pp, q)
					if acc == nil {
						return fmt.Errorf("runner: unknown quantity %q", q)
					}
					row := []string{
						fr.Figure.ID,
						fmt.Sprintf("%g", fr.Figure.Degrees[pi]),
						name,
						string(q),
						fmt.Sprintf("%.6f", acc.Mean()),
						fmt.Sprintf("%.6f", acc.CI95()),
						fmt.Sprintf("%d", acc.N()),
					}
					if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// WriteTables renders every figure as the aligned text table the paper
// plots, separated by blank lines.
func (r *Result) WriteTables(w io.Writer) error {
	for i, fr := range r.Figures {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := fr.WriteTable(w); err != nil {
			return err
		}
	}
	return nil
}
