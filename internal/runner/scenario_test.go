package runner

import (
	"bytes"
	"context"
	"testing"
	"time"

	"qolsr/internal/geom"
	"qolsr/internal/scenario"
	"qolsr/internal/traffic"
)

// testScenario is a small explicit-topology program that runs in
// milliseconds of wall time.
func testScenario() scenario.Scenario {
	pts := []geom.Point{
		{X: 20, Y: 60}, {X: 100, Y: 60}, {X: 180, Y: 60}, {X: 260, Y: 60},
		{X: 20, Y: 140}, {X: 100, Y: 140}, {X: 180, Y: 140}, {X: 260, Y: 140},
	}
	return scenario.Scenario{
		Name:        "runner-ladder",
		Topology:    scenario.Topology{Points: pts, Field: geom.Field{Width: 300, Height: 300}, Radius: 100},
		Traffic:     scenario.Traffic{Flows: 5},
		Duration:    24 * time.Second,
		Warmup:      12 * time.Second,
		SampleEvery: 2 * time.Second,
		Phases: []scenario.Phase{
			{At: 15 * time.Second, Action: scenario.FailLink{A: 1, B: 2}},
			{At: 20 * time.Second, Action: scenario.RestoreLink{A: 1, B: 2}},
		},
	}
}

// TestScenarioWorkerDeterminism is the acceptance check: a fixed seed must
// yield bit-identical encoded output for any worker budget.
func TestScenarioWorkerDeterminism(t *testing.T) {
	encode := func(workers int) ([]byte, []byte) {
		res, err := RunScenario(context.Background(), testScenario(),
			Options{Workers: workers, Runs: 4, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		var j, c bytes.Buffer
		if err := res.EncodeJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := res.EncodeCSV(&c); err != nil {
			t.Fatal(err)
		}
		return j.Bytes(), c.Bytes()
	}
	j1, c1 := encode(1)
	j8, c8 := encode(8)
	if !bytes.Equal(j1, j8) {
		t.Error("JSON differs between Workers=1 and Workers=8")
	}
	if !bytes.Equal(c1, c8) {
		t.Error("CSV differs between Workers=1 and Workers=8")
	}
}

// TestBuiltinScenarioWorkerDeterminism runs a real built-in program
// (scaled to a sparser, shorter deployment so the test stays fast) and
// checks the same bit-identity guarantee.
func TestBuiltinScenarioWorkerDeterminism(t *testing.T) {
	base, err := scenario.ByName("static-baseline", "fnbp")
	if err != nil {
		t.Fatal(err)
	}
	dep := *base.Topology.Deployment
	dep.Field = geom.Field{Width: 300, Height: 300}
	dep.Degree = 6
	base.Topology.Deployment = &dep
	base.Duration = 30 * time.Second
	base.Warmup = 10 * time.Second

	encode := func(workers int) []byte {
		res, err := RunScenario(context.Background(), base,
			Options{Workers: workers, Runs: 3, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.EncodeJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(encode(1), encode(8)) {
		t.Error("built-in scenario JSON differs between Workers=1 and Workers=8")
	}
}

// TestMobilityScenarioWorkerDeterminism locks the cached-routing semantics
// under mobility: with nodes moving, links expiring and probe flows querying
// cached tables every sample, a fixed seed must still yield bit-identical
// output for any worker budget — the cache may change how tables are
// computed, never which table a packet sees at a given virtual time.
func TestMobilityScenarioWorkerDeterminism(t *testing.T) {
	base, err := scenario.ByName("random-waypoint-sparse", "fnbp")
	if err != nil {
		t.Fatal(err)
	}
	dep := *base.Topology.Deployment
	dep.Field = geom.Field{Width: 300, Height: 300}
	dep.Degree = 6
	base.Topology.Deployment = &dep
	base.Duration = 30 * time.Second
	base.Warmup = 10 * time.Second
	base.Traffic.Flows = 6

	encode := func(workers int) []byte {
		res, err := RunScenario(context.Background(), base,
			Options{Workers: workers, Runs: 3, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.EncodeJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(encode(1), encode(8)) {
		t.Error("mobility scenario JSON differs between Workers=1 and Workers=8")
	}
}

// TestLossyScenarioWorkerDeterminism is the medium-layer acceptance check:
// a lossy built-in with measured-QoS neighbor selection must yield
// bit-identical encoded output for any worker budget — every loss, jitter
// and queueing decision is keyed per (src, dst, seq), never drawn from
// shared mutable state.
func TestLossyScenarioWorkerDeterminism(t *testing.T) {
	base, err := scenario.ByName("lossy-degrade", "fnbp")
	if err != nil {
		t.Fatal(err)
	}
	dep := *base.Topology.Deployment
	dep.Field = geom.Field{Width: 300, Height: 300}
	dep.Degree = 6
	base.Topology.Deployment = &dep
	base.Duration = 40 * time.Second
	base.Warmup = 10 * time.Second
	base.Phases = []scenario.Phase{
		{At: 20 * time.Second, Action: scenario.SetLoss{Loss: 0.4}},
		{At: 30 * time.Second, Action: scenario.SetLoss{Loss: 0.05}},
	}
	if !base.Protocol.MeasuredQoS {
		t.Fatal("lossy-degrade built-in no longer enables measured QoS")
	}

	encode := func(workers int) []byte {
		res, err := RunScenario(context.Background(), base,
			Options{Workers: workers, Runs: 3, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.EncodeJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(encode(1), encode(8)) {
		t.Error("lossy measured-QoS scenario JSON differs between Workers=1 and Workers=8")
	}
}

// TestOptimizedScenarioWorkerDeterminism is the control-plane fast-path
// acceptance check: with delta TCs, the fish-eye schedule and min-cover
// flood relays all enabled, a fixed seed must still yield bit-identical
// encoded output for any worker budget — delta chains, TTL scoping and the
// second relay set introduce no shared mutable state across runs.
func TestOptimizedScenarioWorkerDeterminism(t *testing.T) {
	sc := testScenario()
	sc.Name = "runner-ladder-optimized"
	sc.Protocol.DeltaTC = true
	sc.Protocol.FisheyeTTLs = []int{2, 0}
	sc.Protocol.MinRelay = true

	encode := func(workers int) ([]byte, []byte) {
		res, err := RunScenario(context.Background(), sc,
			Options{Workers: workers, Runs: 4, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		var j, c bytes.Buffer
		if err := res.EncodeJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := res.EncodeCSV(&c); err != nil {
			t.Fatal(err)
		}
		return j.Bytes(), c.Bytes()
	}
	j1, c1 := encode(1)
	j8, c8 := encode(8)
	if !bytes.Equal(j1, j8) {
		t.Error("optimized-plane JSON differs between Workers=1 and Workers=8")
	}
	if !bytes.Equal(c1, c8) {
		t.Error("optimized-plane CSV differs between Workers=1 and Workers=8")
	}
	// The optimized plane must still deliver: the run carries TC traffic
	// and the final samples report full probe delivery on the ladder.
	if !bytes.Contains(j1, []byte("\"tc_forwarded_bytes\"")) {
		t.Error("encoded run carries no TC byte split")
	}
}

func TestStreamScenarioEvents(t *testing.T) {
	sc := testScenario()
	events, wait := StreamScenario(context.Background(), sc, Options{Runs: 2, Seed: 1})
	sampleCount := make(map[int]int)
	runSeen := make(map[int]bool)
	for ev := range events {
		switch ev.Kind {
		case ScenarioEventSample:
			sampleCount[ev.Run]++
		case ScenarioEventRun:
			runSeen[ev.Run] = true
			if ev.Result == nil {
				t.Error("run event without result")
			}
		}
	}
	res, err := wait()
	if err != nil {
		t.Fatal(err)
	}
	want := len(sc.SampleTimes())
	for run := 0; run < 2; run++ {
		if sampleCount[run] != want {
			t.Errorf("run %d streamed %d samples, want %d", run, sampleCount[run], want)
		}
		if !runSeen[run] {
			t.Errorf("run %d completion never streamed", run)
		}
		if res.Runs[run] == nil || res.Runs[run].Run != run {
			t.Errorf("result for run %d missing or mislabeled", run)
		}
	}
	if len(res.Runs) != 2 {
		t.Errorf("runs = %d, want 2", len(res.Runs))
	}
}

func TestRunScenarioCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunScenario(ctx, testScenario(), Options{Runs: 2}); err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestRunScenarioInvalid(t *testing.T) {
	sc := testScenario()
	sc.Protocol.Selector = "nope"
	if _, err := RunScenario(context.Background(), sc, Options{Runs: 1}); err == nil {
		t.Error("invalid scenario accepted")
	}
}

func TestRunScenarioProgress(t *testing.T) {
	var lines int
	_, err := RunScenario(context.Background(), testScenario(), Options{
		Runs:     2,
		Progress: func(string, ...any) { lines++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if lines != 2 {
		t.Errorf("progress lines = %d, want 2", lines)
	}
}

// TestTrafficScenarioWorkerDeterminism is the traffic-engine acceptance
// check: a lossy scenario under sustained flow-class load (all three
// classes, admission control, per-flow delay quantiles) must yield
// bit-identical encoded output — traffic report included — for any worker
// budget, because every packet arrival and size draw is keyed per
// (seed, flow, packet-seq).
func TestTrafficScenarioWorkerDeterminism(t *testing.T) {
	base, err := scenario.ByName("load-ramp", "fnbp")
	if err != nil {
		t.Fatal(err)
	}
	dep := *base.Topology.Deployment
	dep.Field = geom.Field{Width: 300, Height: 300}
	dep.Degree = 7
	base.Topology.Deployment = &dep
	base.Duration = 40 * time.Second
	base.Warmup = 12 * time.Second
	base.Traffic = scenario.Traffic{Mix: []traffic.Spec{
		{Class: "cbr", Count: 2, RateBps: 8192, QoS: traffic.Requirements{MaxDelay: 60 * time.Millisecond}},
		{Class: "poisson", Count: 2, RateBps: 8192},
		{Class: "video", Count: 2, RateBps: 8192, Start: 20 * time.Second,
			QoS: traffic.Requirements{MaxJitter: 30 * time.Millisecond}},
	}}

	encode := func(workers int) []byte {
		res, err := RunScenario(context.Background(), base,
			Options{Workers: workers, Runs: 3, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.EncodeJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	one := encode(1)
	if !bytes.Equal(one, encode(8)) {
		t.Error("sustained-traffic lossy scenario JSON differs between Workers=1 and Workers=8")
	}
	if !bytes.Contains(one, []byte("\"traffic\"")) || !bytes.Contains(one, []byte("traffic_aggregate")) {
		t.Error("encoded scenario carries no traffic accounting")
	}
}
