package runner

import (
	"context"
	"sync"
)

// jobPool executes n indexed jobs on a bounded worker pool — the shared
// engine behind Stream and StreamScenario. run(runCtx, i) performs job i;
// a non-nil return is recorded as the pool's first error and cancels the
// remaining jobs (errors reported after cancellation are ignored, so a
// run that fails *because* of the cancel doesn't mask it). finish runs
// exactly once after every worker has exited — close event channels there.
// The returned wait blocks until the pool drains and yields ctx.Err() when
// the caller's context was cancelled, else the first job error.
func jobPool(ctx context.Context, n, workers int, run func(ctx context.Context, i int) error, finish func()) (wait func() error) {
	runCtx, cancel := context.WithCancel(ctx)
	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	jobCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobCh {
				if runCtx.Err() != nil {
					continue // drain without doing work
				}
				if err := run(runCtx, i); err != nil && runCtx.Err() == nil {
					fail(err)
				}
			}
		}()
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		defer cancel()
	dispatch:
		for i := 0; i < n; i++ {
			select {
			case jobCh <- i:
			case <-runCtx.Done():
				break dispatch
			}
		}
		close(jobCh)
		wg.Wait()
		finish()
	}()

	return func() error {
		<-done
		if err := ctx.Err(); err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		return firstErr
	}
}
