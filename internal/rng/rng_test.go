package rng

import (
	"math"
	"testing"
)

// TestSplitmix64Vectors pins the mixing function to the reference outputs of
// SplitMix64 seeded with 0 (Vigna's test vectors): the repo-wide determinism
// story depends on these exact values on every platform.
func TestSplitmix64Vectors(t *testing.T) {
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
	}
	for i, w := range want {
		if got := Splitmix64(uint64(i) * gamma); got != w {
			t.Errorf("Splitmix64(%d*gamma) = %#x, want %#x", i, got, w)
		}
	}
}

func TestStreamMatchesVectors(t *testing.T) {
	// A stream from state 0 must walk the same reference sequence.
	s := Stream{}
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Errorf("draw %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestStreamsIndependent(t *testing.T) {
	a := NewStream(1, 7)
	b := NewStream(1, 8)
	c := NewStream(1, 7)
	if a.Uint64() == b.Uint64() {
		t.Error("streams with different keys agree on the first draw")
	}
	a2 := NewStream(1, 7)
	_ = c
	if a2.Uint64() != NewStreamFirst(1, 7) {
		t.Error("stream draw depends on something besides its key")
	}
}

// NewStreamFirst is a test helper returning the first draw of a key.
func NewStreamFirst(parts ...uint64) uint64 {
	s := NewStream(parts...)
	return s.Uint64()
}

func TestMixOrderSensitive(t *testing.T) {
	if Mix(1, 2) == Mix(2, 1) {
		t.Error("Mix ignores part order")
	}
	if Mix(1, 2) != Mix(1, 2) {
		t.Error("Mix not deterministic")
	}
}

func TestInt63nRange(t *testing.T) {
	s := NewStream(42)
	for i := 0; i < 1000; i++ {
		v := s.Int63n(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Int63n(10) = %d out of range", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Int63n(0) did not panic")
		}
	}()
	s.Int63n(0)
}

func TestFloat64Range(t *testing.T) {
	s := NewStream(7)
	var sum float64
	const n = 4096
	for i := 0; i < n; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.05 {
		t.Errorf("Float64 mean = %g, want ~0.5", mean)
	}
}
