// Package rng holds the shared stream-derivation primitive: both the sweep
// harness (eval.RunSeed) and the scenario engine derive their independent
// RNG streams from it, so the repo-wide cross-worker determinism story
// rests on a single implementation.
package rng

// Splitmix64 is the finalizer of the SplitMix64 generator (Steele, Lea,
// Flood 2014). It is a high-quality 64-bit mixing function: every input bit
// avalanches into every output bit, so nearby inputs produce uncorrelated
// outputs.
func Splitmix64(x uint64) uint64 {
	x += gamma
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// gamma is the SplitMix64 state increment (the golden-ratio constant).
const gamma = 0x9e3779b97f4a7c15

// Mix chains any number of key parts into one 64-bit draw: each part is
// folded into the running hash through Splitmix64, so every (ordered) part
// tuple names an uncorrelated value. It is the keyed one-shot form the
// simulation layers use for per-(src, dst, seq) decisions — a draw depends
// only on its key, never on how many draws happened before it.
func Mix(parts ...uint64) uint64 {
	var h uint64
	for _, p := range parts {
		h = Splitmix64(h ^ p)
	}
	return h
}

// Stream is a SplitMix64 sequence generator: the canonical gamma-stepped
// state with the Splitmix64 finalizer. Unlike math/rand, a Stream's output
// is a pure function of its seed parts and draw index — platform-stable and
// independent of every other stream.
type Stream struct {
	state uint64
}

// NewStream derives an independent stream from the given key parts (Mix of
// the parts seeds the state).
func NewStream(parts ...uint64) Stream {
	return Stream{state: Mix(parts...)}
}

// Uint64 returns the next 64-bit draw.
func (s *Stream) Uint64() uint64 {
	out := Splitmix64(s.state)
	s.state += gamma
	return out
}

// Int63n returns a draw in [0, n). It uses modulo reduction — the bias is
// (2^64 mod n)/2^64, at most ~1e-10 for the sub-second jitter spans the
// simulator passes, far below anything its statistics resolve — and panics
// when n <= 0, matching math/rand.
func (s *Stream) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64(s.Uint64() % uint64(n))
}

// Float64 returns a draw in [0, 1) with 53 bits of precision.
func (s *Stream) Float64() float64 {
	return Unit(s.Uint64())
}

// Unit maps a 64-bit draw onto [0, 1) with 53 bits of precision.
func Unit(x uint64) float64 {
	return float64(x>>11) / (1 << 53)
}
