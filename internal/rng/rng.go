// Package rng holds the shared stream-derivation primitive: both the sweep
// harness (eval.RunSeed) and the scenario engine derive their independent
// RNG streams from it, so the repo-wide cross-worker determinism story
// rests on a single implementation.
package rng

// Splitmix64 is the finalizer of the SplitMix64 generator (Steele, Lea,
// Flood 2014). It is a high-quality 64-bit mixing function: every input bit
// avalanches into every output bit, so nearby inputs produce uncorrelated
// outputs.
func Splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
