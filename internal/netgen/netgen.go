// Package netgen turns deployments into weighted network graphs: it samples
// the paper's Poisson point process, extracts unit-disk links, draws uniform
// link weights, and picks the random connected source/destination pairs the
// evaluation routes between.
package netgen

import (
	"fmt"
	"math/rand"

	"qolsr/internal/geom"
	"qolsr/internal/graph"
	"qolsr/internal/metric"
)

// Build samples one network realisation: node positions from the
// deployment, unit-disk links at the deployment radius, and i.i.d. uniform
// weights from iv on the named channel.
func Build(dep geom.Deployment, channel string, iv metric.Interval, rng *rand.Rand) (*graph.Graph, error) {
	pts, err := dep.Sample(rng)
	if err != nil {
		return nil, err
	}
	return FromPoints(dep.Field, dep.Radius, pts, channel, iv, rng)
}

// FromPoints builds the unit-disk graph of fixed positions with uniform
// weights from iv on the named channel.
func FromPoints(field geom.Field, radius float64, pts []geom.Point, channel string, iv metric.Interval, rng *rand.Rand) (*graph.Graph, error) {
	links, err := geom.Links(field, radius, pts)
	if err != nil {
		return nil, err
	}
	g := graph.New(len(pts))
	for _, l := range links {
		if _, err := g.AddEdge(l[0], l[1]); err != nil {
			return nil, err
		}
	}
	if err := g.AssignUniformWeights(channel, iv, rng); err != nil {
		return nil, err
	}
	return g, nil
}

// PickConnectedPair draws a uniformly random source and a uniformly random
// destination among the nodes reachable from it, resampling sources up to
// maxTries times — the paper's simulator routes between randomly chosen
// connected nodes. It fails when the graph has no connected pair within the
// attempt budget (e.g. at very low density).
func PickConnectedPair(g *graph.Graph, rng *rand.Rand, maxTries int) (src, dst int32, err error) {
	if g.N() < 2 {
		return 0, 0, fmt.Errorf("netgen: need at least 2 nodes, have %d", g.N())
	}
	for try := 0; try < maxTries; try++ {
		s := int32(rng.Intn(g.N()))
		reach := graph.Reachable(g, s)
		candidates := make([]int32, 0, g.N())
		for x, ok := range reach {
			if ok && int32(x) != s {
				candidates = append(candidates, int32(x))
			}
		}
		if len(candidates) == 0 {
			continue
		}
		return s, candidates[rng.Intn(len(candidates))], nil
	}
	return 0, 0, fmt.Errorf("netgen: no connected pair found in %d tries", maxTries)
}
