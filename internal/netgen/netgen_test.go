package netgen

import (
	"math/rand"
	"testing"

	"qolsr/internal/geom"
	"qolsr/internal/graph"
	"qolsr/internal/metric"
)

func TestBuildProducesValidWeightedUDG(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dep := geom.PaperDeployment(12)
	g, err := Build(dep, "bandwidth", metric.Interval{Lo: 1, Hi: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid graph: %v", err)
	}
	if g.N() < 200 {
		t.Errorf("suspiciously few nodes: %d", g.N())
	}
	w, err := g.Weights("bandwidth")
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range w {
		if x < 1 || x > 10 {
			t.Fatalf("weight %v outside interval", x)
		}
	}
}

func TestBuildPropagatesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Build(geom.Deployment{}, "x", metric.Interval{Lo: 1, Hi: 2}, rng); err == nil {
		t.Error("invalid deployment accepted")
	}
	dep := geom.PaperDeployment(5)
	if _, err := Build(dep, "x", metric.Interval{Lo: 0, Hi: 2}, rng); err == nil {
		t.Error("invalid interval accepted")
	}
}

func TestPickConnectedPair(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.New(6)
	// Two components: {0,1,2} and {3,4,5}.
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(3, 4)
	g.MustAddEdge(4, 5)
	for i := 0; i < 50; i++ {
		src, dst, err := PickConnectedPair(g, rng, 100)
		if err != nil {
			t.Fatal(err)
		}
		if src == dst {
			t.Fatal("src == dst")
		}
		reach := graph.Reachable(g, src)
		if !reach[dst] {
			t.Fatalf("pair (%d,%d) not connected", src, dst)
		}
	}
}

func TestPickConnectedPairFailures(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, _, err := PickConnectedPair(graph.New(1), rng, 10); err == nil {
		t.Error("single-node graph accepted")
	}
	// Fully disconnected graph: no pair exists.
	if _, _, err := PickConnectedPair(graph.New(5), rng, 10); err == nil {
		t.Error("edgeless graph produced a pair")
	}
}
