// Package metric defines the QoS metric algebra used throughout the
// repository.
//
// The paper distinguishes two families of link metrics:
//
//   - additive metrics, such as delay, jitter or packet loss, where the cost
//     of a path is the sum of the costs of its links and smaller is better;
//   - concave metrics, such as bandwidth or available buffers, where the cost
//     of a path is the minimum over its links (a bottleneck) and larger is
//     better.
//
// Every selection and routing algorithm in this repository is written against
// the Metric interface so that the same code serves both families, exactly as
// Algorithms 1 and 2 of the paper are the same algorithm instantiated twice.
package metric

import (
	"fmt"
	"math"
)

// Kind classifies how link values compose along a path.
type Kind int

const (
	// Additive metrics accumulate along a path (delay, jitter, loss,
	// energy); smaller path values are better.
	Additive Kind = iota + 1
	// Concave metrics bottleneck along a path (bandwidth, buffers); larger
	// path values are better.
	Concave
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Additive:
		return "additive"
	case Concave:
		return "concave"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Metric describes a QoS link metric: how per-link values compose into path
// values and how path values compare. Implementations must be stateless and
// safe for concurrent use.
type Metric interface {
	// Name returns a short lower-case identifier ("bandwidth", "delay").
	Name() string
	// Kind reports whether the metric is additive or concave.
	Kind() Kind
	// Combine extends a path of value pathValue by one link of value
	// linkValue and returns the value of the extended path.
	Combine(pathValue, linkValue float64) float64
	// Better reports whether path value a is strictly better than b.
	Better(a, b float64) bool
	// Identity is the value of the empty path: combining Identity with a
	// link value yields the link value unchanged, and Identity is at least
	// as good as any other value.
	Identity() float64
	// Worst is the value reported for unreachable destinations; every
	// reachable value is strictly better.
	Worst() float64
}

// BetterEq reports whether a is at least as good as b under m.
func BetterEq(m Metric, a, b float64) bool {
	return !m.Better(b, a)
}

// Best returns the better of the two values under m. On ties it returns a.
func Best(m Metric, a, b float64) float64 {
	if m.Better(b, a) {
		return b
	}
	return a
}

// bandwidth is the canonical concave metric from the paper: the bandwidth of
// a path is the minimum bandwidth over its links and larger is better.
type bandwidth struct{}

// Bandwidth returns the concave bandwidth metric (paper Sec. III-A:
// BW(p) = min over links, maximize).
func Bandwidth() Metric { return bandwidth{} }

func (bandwidth) Name() string { return "bandwidth" }
func (bandwidth) Kind() Kind   { return Concave }

func (bandwidth) Combine(pathValue, linkValue float64) float64 {
	return math.Min(pathValue, linkValue)
}

func (bandwidth) Better(a, b float64) bool { return a > b }
func (bandwidth) Identity() float64        { return math.Inf(1) }
func (bandwidth) Worst() float64           { return math.Inf(-1) }

// delay is the canonical additive metric from the paper: the delay of a path
// is the sum of the delays of its links and smaller is better.
type delay struct{}

// Delay returns the additive delay metric (paper Sec. III-A:
// D(p) = sum over links, minimize).
func Delay() Metric { return delay{} }

func (delay) Name() string { return "delay" }
func (delay) Kind() Kind   { return Additive }

func (delay) Combine(pathValue, linkValue float64) float64 {
	return pathValue + linkValue
}

func (delay) Better(a, b float64) bool { return a < b }
func (delay) Identity() float64        { return 0 }
func (delay) Worst() float64           { return math.Inf(1) }

// hop is the unit additive metric counting links; it is the metric implied by
// the original OLSR "shortest path in number of hops" behaviour.
type hop struct{}

// Hop returns the hop-count metric: every link costs 1, fewer hops are
// better. It ignores the provided link value, so it can run on any graph.
func Hop() Metric { return hop{} }

func (hop) Name() string { return "hop" }
func (hop) Kind() Kind   { return Additive }

func (hop) Combine(pathValue, _ float64) float64 { return pathValue + 1 }
func (hop) Better(a, b float64) bool             { return a < b }
func (hop) Identity() float64                    { return 0 }
func (hop) Worst() float64                       { return math.Inf(1) }

// energy is an additive metric modelling transmission energy per link, the
// extension named in the paper's future-work section (Sec. V), following the
// residual-energy discussion it cites.
type energy struct{}

// Energy returns the additive energy metric: the energy of a path is the sum
// of per-link transmission costs and smaller is better.
func Energy() Metric { return energy{} }

func (energy) Name() string { return "energy" }
func (energy) Kind() Kind   { return Additive }

func (energy) Combine(pathValue, linkValue float64) float64 {
	return pathValue + linkValue
}

func (energy) Better(a, b float64) bool { return a < b }
func (energy) Identity() float64        { return 0 }
func (energy) Worst() float64           { return math.Inf(1) }

// Compile-time interface compliance checks.
var (
	_ Metric = bandwidth{}
	_ Metric = delay{}
	_ Metric = hop{}
	_ Metric = energy{}
)

// ByName returns the built-in metric with the given name. It recognises
// "bandwidth", "delay", "hop" and "energy".
func ByName(name string) (Metric, error) {
	switch name {
	case "bandwidth":
		return Bandwidth(), nil
	case "delay":
		return Delay(), nil
	case "hop":
		return Hop(), nil
	case "energy":
		return Energy(), nil
	default:
		return nil, fmt.Errorf("metric: unknown metric %q", name)
	}
}

// PathValue folds a sequence of link values with m, starting from the
// identity. An empty sequence yields m.Identity().
func PathValue(m Metric, linkValues []float64) float64 {
	v := m.Identity()
	for _, lv := range linkValues {
		v = m.Combine(v, lv)
	}
	return v
}
