package metric

import (
	"fmt"
	"math/rand"
)

// Interval is a closed interval [Lo, Hi] from which link weights are drawn
// uniformly at random, matching the paper's evaluation setup: "Weights (QoS
// values) on links are uniformly drawn at random in a fixed interval"
// (Sec. IV-A).
//
// With Integer set, draws are uniform over the integers {Lo, Lo+1, ..., Hi}.
// This is the reproduction's default: the paper's worked examples all use
// small integers, and its headline set-size behaviour (a flat FNBP curve,
// topology filtering inflated by "several paths with the best QoS" being
// tied) only materialises when optimal-value ties actually occur, which
// continuous weights make measure-zero.
type Interval struct {
	Lo, Hi  float64
	Integer bool
}

// DefaultInterval is the weight law used by the reproduction when a
// scenario does not override it: integers uniform in {1,...,10}, the range
// of the paper's worked examples.
func DefaultInterval() Interval { return Interval{Lo: 1, Hi: 10, Integer: true} }

// Validate reports whether the interval is usable for link weights: finite,
// ordered and strictly positive (zero-weight links would break additive
// optimal-path uniqueness arguments and are physically meaningless for both
// bandwidth and delay).
func (iv Interval) Validate() error {
	if !(iv.Lo > 0) {
		return fmt.Errorf("metric: interval lower bound %v must be > 0", iv.Lo)
	}
	if iv.Hi < iv.Lo {
		return fmt.Errorf("metric: interval upper bound %v below lower bound %v", iv.Hi, iv.Lo)
	}
	return nil
}

// Draw samples a weight uniformly from the interval using rng.
func (iv Interval) Draw(rng *rand.Rand) float64 {
	if iv.Hi == iv.Lo {
		return iv.Lo
	}
	if iv.Integer {
		span := int(iv.Hi) - int(iv.Lo) + 1
		return float64(int(iv.Lo) + rng.Intn(span))
	}
	return iv.Lo + rng.Float64()*(iv.Hi-iv.Lo)
}

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v float64) bool {
	return v >= iv.Lo && v <= iv.Hi
}

// String implements fmt.Stringer.
func (iv Interval) String() string {
	if iv.Integer {
		return fmt.Sprintf("{%g..%g}", iv.Lo, iv.Hi)
	}
	return fmt.Sprintf("[%g,%g]", iv.Lo, iv.Hi)
}
