package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBandwidthBasics(t *testing.T) {
	m := Bandwidth()
	if m.Name() != "bandwidth" {
		t.Errorf("Name() = %q, want bandwidth", m.Name())
	}
	if m.Kind() != Concave {
		t.Errorf("Kind() = %v, want Concave", m.Kind())
	}
	if got := m.Combine(5, 3); got != 3 {
		t.Errorf("Combine(5,3) = %v, want 3 (bottleneck)", got)
	}
	if got := m.Combine(3, 5); got != 3 {
		t.Errorf("Combine(3,5) = %v, want 3 (bottleneck)", got)
	}
	if !m.Better(5, 3) {
		t.Error("Better(5,3) = false, want true (wider is better)")
	}
	if m.Better(3, 5) {
		t.Error("Better(3,5) = true, want false")
	}
	if m.Better(4, 4) {
		t.Error("Better must be strict: Better(4,4) = true")
	}
	if got := m.Combine(m.Identity(), 7); got != 7 {
		t.Errorf("Combine(Identity,7) = %v, want 7", got)
	}
	if !m.Better(1e-9, m.Worst()) {
		t.Error("any finite bandwidth must beat Worst()")
	}
}

func TestDelayBasics(t *testing.T) {
	m := Delay()
	if m.Name() != "delay" {
		t.Errorf("Name() = %q, want delay", m.Name())
	}
	if m.Kind() != Additive {
		t.Errorf("Kind() = %v, want Additive", m.Kind())
	}
	if got := m.Combine(5, 3); got != 8 {
		t.Errorf("Combine(5,3) = %v, want 8 (sum)", got)
	}
	if !m.Better(3, 5) {
		t.Error("Better(3,5) = false, want true (smaller is better)")
	}
	if m.Better(5, 3) {
		t.Error("Better(5,3) = true, want false")
	}
	if m.Better(4, 4) {
		t.Error("Better must be strict: Better(4,4) = true")
	}
	if got := m.Combine(m.Identity(), 7); got != 7 {
		t.Errorf("Combine(Identity,7) = %v, want 7", got)
	}
	if !m.Better(1e12, m.Worst()) {
		t.Error("any finite delay must beat Worst()")
	}
}

func TestHopMetricIgnoresWeight(t *testing.T) {
	m := Hop()
	if got := m.Combine(2, 99); got != 3 {
		t.Errorf("Combine(2, 99) = %v, want 3", got)
	}
	if got := PathValue(m, []float64{5, 5, 5, 5}); got != 4 {
		t.Errorf("PathValue over 4 links = %v, want 4", got)
	}
}

func TestEnergyIsAdditive(t *testing.T) {
	m := Energy()
	if m.Kind() != Additive {
		t.Fatalf("Kind() = %v, want Additive", m.Kind())
	}
	if got := PathValue(m, []float64{1.5, 2.5}); got != 4 {
		t.Errorf("PathValue = %v, want 4", got)
	}
}

func TestKindString(t *testing.T) {
	if Additive.String() != "additive" || Concave.String() != "concave" {
		t.Errorf("Kind strings wrong: %v %v", Additive, Concave)
	}
	if got := Kind(42).String(); got != "Kind(42)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"bandwidth", "delay", "hop", "energy"} {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q) error: %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, m.Name())
		}
	}
	if _, err := ByName("jitterbug"); err == nil {
		t.Error("ByName(jitterbug) succeeded, want error")
	}
}

func TestBetterEqAndBest(t *testing.T) {
	bw := Bandwidth()
	if !BetterEq(bw, 5, 5) {
		t.Error("BetterEq(5,5) = false for bandwidth")
	}
	if !BetterEq(bw, 6, 5) {
		t.Error("BetterEq(6,5) = false for bandwidth")
	}
	if BetterEq(bw, 4, 5) {
		t.Error("BetterEq(4,5) = true for bandwidth")
	}
	if got := Best(bw, 4, 9); got != 9 {
		t.Errorf("Best(4,9) = %v, want 9", got)
	}
	d := Delay()
	if got := Best(d, 4, 9); got != 4 {
		t.Errorf("Best(4,9) = %v, want 4 for delay", got)
	}
	// Ties keep the first argument.
	if got := Best(d, 4, 4); got != 4 {
		t.Errorf("Best(4,4) = %v", got)
	}
}

func TestPathValueEmpty(t *testing.T) {
	if got := PathValue(Delay(), nil); got != 0 {
		t.Errorf("empty delay path = %v, want 0", got)
	}
	if got := PathValue(Bandwidth(), nil); !math.IsInf(got, 1) {
		t.Errorf("empty bandwidth path = %v, want +Inf", got)
	}
}

// Property: Combine is monotone for both built-in path metrics — extending a
// path never improves its value.
func TestCombineNeverImproves(t *testing.T) {
	for _, m := range []Metric{Bandwidth(), Delay(), Energy()} {
		m := m
		f := func(path, link float64) bool {
			path = math.Abs(path)
			link = math.Abs(link) + 1e-9
			ext := m.Combine(path, link)
			return !m.Better(ext, path)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: extension improved path value: %v", m.Name(), err)
		}
	}
}

// Property: Better is a strict weak order — irreflexive and asymmetric.
func TestBetterStrictness(t *testing.T) {
	for _, m := range []Metric{Bandwidth(), Delay(), Hop(), Energy()} {
		m := m
		f := func(a, b float64) bool {
			if m.Better(a, a) || m.Better(b, b) {
				return false
			}
			if m.Better(a, b) && m.Better(b, a) {
				return false
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: Better not a strict order: %v", m.Name(), err)
		}
	}
}

func TestIntervalValidate(t *testing.T) {
	cases := []struct {
		iv      Interval
		wantErr bool
	}{
		{Interval{Lo: 1, Hi: 10}, false},
		{Interval{Lo: 0.5, Hi: 0.5}, false},
		{Interval{Lo: 0, Hi: 10}, true},
		{Interval{Lo: -1, Hi: 10}, true},
		{Interval{Lo: 5, Hi: 4}, true},
	}
	for _, c := range cases {
		err := c.iv.Validate()
		if (err != nil) != c.wantErr {
			t.Errorf("Validate(%v) error = %v, wantErr = %v", c.iv, err, c.wantErr)
		}
	}
}

func TestIntervalDraw(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	iv := Interval{Lo: 2, Hi: 5}
	for i := 0; i < 1000; i++ {
		v := iv.Draw(rng)
		if !iv.Contains(v) {
			t.Fatalf("draw %v outside %v", v, iv)
		}
	}
	point := Interval{Lo: 3, Hi: 3}
	if got := point.Draw(rng); got != 3 {
		t.Errorf("degenerate interval draw = %v, want 3", got)
	}
}

func TestIntervalString(t *testing.T) {
	if got := (Interval{Lo: 1, Hi: 10}).String(); got != "[1,10]" {
		t.Errorf("String() = %q", got)
	}
	if got := (Interval{Lo: 1, Hi: 10, Integer: true}).String(); got != "{1..10}" {
		t.Errorf("String() = %q", got)
	}
}

func TestIntervalDrawInteger(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	iv := Interval{Lo: 1, Hi: 4, Integer: true}
	seen := map[float64]int{}
	for i := 0; i < 4000; i++ {
		v := iv.Draw(rng)
		if v != math.Trunc(v) || v < 1 || v > 4 {
			t.Fatalf("integer draw %v outside {1..4}", v)
		}
		seen[v]++
	}
	for v := 1.0; v <= 4; v++ {
		if seen[v] < 800 {
			t.Errorf("value %v drawn only %d times, want ~1000", v, seen[v])
		}
	}
}

func TestDefaultInterval(t *testing.T) {
	if err := DefaultInterval().Validate(); err != nil {
		t.Fatalf("default interval invalid: %v", err)
	}
}

func TestLexicographicSemiring(t *testing.T) {
	lex := Lexicographic{
		PrimaryMetric:   Bandwidth(),
		SecondaryMetric: Energy(),
		PrimaryWeight:   "bandwidth",
		SecondaryWeight: "energy",
	}
	if lex.Name() != "bandwidth+energy" {
		t.Errorf("Name() = %q", lex.Name())
	}
	a := LexCost{Primary: 5, Secondary: 2}
	b := LexCost{Primary: 5, Secondary: 1}
	if lex.Better(a, b) {
		t.Error("higher energy at same bandwidth should not be better")
	}
	if !lex.Better(b, a) {
		t.Error("lower energy at same bandwidth should be better")
	}
	wide := LexCost{Primary: 9, Secondary: 100}
	if !lex.Better(wide, b) {
		t.Error("wider path must dominate regardless of energy")
	}
	// Combine composes both channels with their own metric.
	got := lex.Combine(LexCost{Primary: 5, Secondary: 2}, LexCost{Primary: 3, Secondary: 4})
	if got.Primary != 3 || got.Secondary != 6 {
		t.Errorf("Combine = %+v, want {3 6}", got)
	}
	id := lex.Identity()
	if !math.IsInf(id.Primary, 1) || id.Secondary != 0 {
		t.Errorf("Identity = %+v", id)
	}
	w := lex.Worst()
	if !math.IsInf(w.Primary, -1) || !math.IsInf(w.Secondary, 1) {
		t.Errorf("Worst = %+v", w)
	}
}

func TestLexicographicLinkCost(t *testing.T) {
	lex := Lexicographic{
		PrimaryMetric:   Bandwidth(),
		SecondaryMetric: Energy(),
		PrimaryWeight:   "bandwidth",
		SecondaryWeight: "energy",
	}
	c, err := lex.LinkCost(map[string]float64{"bandwidth": 4, "energy": 7})
	if err != nil {
		t.Fatalf("LinkCost error: %v", err)
	}
	if c.Primary != 4 || c.Secondary != 7 {
		t.Errorf("LinkCost = %+v", c)
	}
	if _, err := lex.LinkCost(map[string]float64{"bandwidth": 4}); err == nil {
		t.Error("missing energy channel accepted")
	}
	if _, err := lex.LinkCost(map[string]float64{"energy": 4}); err == nil {
		t.Error("missing bandwidth channel accepted")
	}
}

func TestScalarSemiring(t *testing.T) {
	s := Scalar{Metric: Delay()}
	v, err := s.LinkCost(map[string]float64{"delay": 2.5})
	if err != nil {
		t.Fatalf("LinkCost error: %v", err)
	}
	if v != 2.5 {
		t.Errorf("LinkCost = %v", v)
	}
	if _, err := s.LinkCost(map[string]float64{"bandwidth": 1}); err == nil {
		t.Error("missing channel accepted")
	}
	custom := Scalar{Metric: Delay(), Weight: "rtt"}
	v, err = custom.LinkCost(map[string]float64{"rtt": 9})
	if err != nil || v != 9 {
		t.Errorf("custom channel LinkCost = %v, %v", v, err)
	}
	if s.Combine(1, 2) != 3 || !s.Better(1, 2) || s.Identity() != 0 {
		t.Error("Scalar does not delegate to wrapped metric")
	}
	if !math.IsInf(s.Worst(), 1) {
		t.Errorf("Worst = %v", s.Worst())
	}
	if s.Name() != "delay" {
		t.Errorf("Name = %q", s.Name())
	}
}
