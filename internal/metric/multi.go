package metric

import (
	"fmt"
	"math"
)

// Cost is a generic path value used by the generic (semiring) algorithms in
// internal/graph. The float64-based Metric interface covers the paper's two
// single-criterion metrics; Semiring covers the future-work multi-criterion
// case (Sec. V: "minimizing energy-consumption while providing good
// bandwidth").
type Cost any

// Semiring generalises Metric to arbitrary cost types. LinkCost converts a
// link's raw weight vector into a cost; Combine and Better compose and
// compare path costs.
type Semiring[C Cost] interface {
	Name() string
	// LinkCost maps the named weights of one link to a cost.
	LinkCost(weights map[string]float64) (C, error)
	Combine(pathCost, linkCost C) C
	Better(a, b C) bool
	Identity() C
	Worst() C
}

// LexCost is a two-level lexicographic cost: Primary decides, Secondary
// breaks ties.
type LexCost struct {
	Primary   float64
	Secondary float64
}

// Lexicographic combines two float64 metrics lexicographically: primary
// decides, and exact primary ties fall through to secondary. This realises
// the paper's future-work multi-criterion selection, e.g. maximise bandwidth
// and, among equally wide paths, minimise energy.
type Lexicographic struct {
	// PrimaryMetric and SecondaryMetric define composition and comparison
	// per level.
	PrimaryMetric, SecondaryMetric Metric
	// PrimaryWeight and SecondaryWeight name the link-weight channels the
	// two levels read (e.g. "bandwidth", "energy").
	PrimaryWeight, SecondaryWeight string
}

// Name implements Semiring.
func (l Lexicographic) Name() string {
	return l.PrimaryMetric.Name() + "+" + l.SecondaryMetric.Name()
}

// LinkCost implements Semiring.
func (l Lexicographic) LinkCost(weights map[string]float64) (LexCost, error) {
	p, ok := weights[l.PrimaryWeight]
	if !ok {
		return LexCost{}, fmt.Errorf("metric: link has no %q weight", l.PrimaryWeight)
	}
	s, ok := weights[l.SecondaryWeight]
	if !ok {
		return LexCost{}, fmt.Errorf("metric: link has no %q weight", l.SecondaryWeight)
	}
	return LexCost{Primary: p, Secondary: s}, nil
}

// Combine implements Semiring.
func (l Lexicographic) Combine(pathCost, linkCost LexCost) LexCost {
	return LexCost{
		Primary:   l.PrimaryMetric.Combine(pathCost.Primary, linkCost.Primary),
		Secondary: l.SecondaryMetric.Combine(pathCost.Secondary, linkCost.Secondary),
	}
}

// Better implements Semiring.
func (l Lexicographic) Better(a, b LexCost) bool {
	if l.PrimaryMetric.Better(a.Primary, b.Primary) {
		return true
	}
	if l.PrimaryMetric.Better(b.Primary, a.Primary) {
		return false
	}
	return l.SecondaryMetric.Better(a.Secondary, b.Secondary)
}

// Identity implements Semiring.
func (l Lexicographic) Identity() LexCost {
	return LexCost{Primary: l.PrimaryMetric.Identity(), Secondary: l.SecondaryMetric.Identity()}
}

// Worst implements Semiring.
func (l Lexicographic) Worst() LexCost {
	return LexCost{Primary: l.PrimaryMetric.Worst(), Secondary: l.SecondaryMetric.Worst()}
}

// Scalar adapts a float64 Metric into a Semiring over a single named weight
// channel, so the generic algorithms can also run the paper's metrics.
type Scalar struct {
	Metric Metric
	// Weight names the link-weight channel to read; when empty the
	// metric's own name is used.
	Weight string
}

// Name implements Semiring.
func (s Scalar) Name() string { return s.Metric.Name() }

// LinkCost implements Semiring.
func (s Scalar) LinkCost(weights map[string]float64) (float64, error) {
	channel := s.Weight
	if channel == "" {
		channel = s.Metric.Name()
	}
	w, ok := weights[channel]
	if !ok {
		return math.NaN(), fmt.Errorf("metric: link has no %q weight", channel)
	}
	return w, nil
}

// Combine implements Semiring.
func (s Scalar) Combine(pathCost, linkCost float64) float64 {
	return s.Metric.Combine(pathCost, linkCost)
}

// Better implements Semiring.
func (s Scalar) Better(a, b float64) bool { return s.Metric.Better(a, b) }

// Identity implements Semiring.
func (s Scalar) Identity() float64 { return s.Metric.Identity() }

// Worst implements Semiring.
func (s Scalar) Worst() float64 { return s.Metric.Worst() }

// Compile-time interface compliance checks.
var (
	_ Semiring[LexCost] = Lexicographic{}
	_ Semiring[float64] = Scalar{}
)
