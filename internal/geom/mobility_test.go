package geom

import (
	"math/rand"
	"testing"
	"time"
)

func testModel() Waypoint {
	return Waypoint{
		Field:    Field{Width: 200, Height: 200},
		MinSpeed: 5,
		MaxSpeed: 15,
		Pause:    time.Second,
	}
}

func TestWaypointValidate(t *testing.T) {
	if err := testModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Waypoint{
		{Field: Field{}, MinSpeed: 1, MaxSpeed: 2},
		{Field: Field{100, 100}, MinSpeed: 0, MaxSpeed: 2},
		{Field: Field{100, 100}, MinSpeed: 3, MaxSpeed: 2},
		{Field: Field{100, 100}, MinSpeed: 1, MaxSpeed: 2, Pause: -time.Second},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

func TestNewMobilityValidatesPositions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewMobility(testModel(), []Point{{500, 0}}, rng); err == nil {
		t.Error("out-of-field start accepted")
	}
}

func TestMobilityStaysInFieldAndMoves(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	model := testModel()
	initial := make([]Point, 20)
	for i := range initial {
		initial[i] = Point{rng.Float64() * model.Field.Width, rng.Float64() * model.Field.Height}
	}
	m, err := NewMobility(model, initial, rng)
	if err != nil {
		t.Fatal(err)
	}
	prev := m.Positions()
	moved := false
	for step := 1; step <= 60; step++ {
		m.AdvanceTo(time.Duration(step) * time.Second)
		cur := m.Positions()
		for i, p := range cur {
			if !model.Field.Contains(p) {
				t.Fatalf("node %d left the field: %v", i, p)
			}
			if p != prev[i] {
				moved = true
			}
		}
		prev = cur
	}
	if !moved {
		t.Error("no node ever moved")
	}
	if m.Now() != 60*time.Second {
		t.Errorf("Now = %v", m.Now())
	}
}

// Speed sanity: over one second, displacement must not exceed MaxSpeed (no
// teleporting), and over a long window the population must travel.
func TestMobilitySpeedBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	model := testModel()
	model.Pause = 0
	initial := []Point{{100, 100}, {50, 50}, {150, 150}}
	m, err := NewMobility(model, initial, rng)
	if err != nil {
		t.Fatal(err)
	}
	prev := m.Positions()
	for step := 1; step <= 120; step++ {
		m.AdvanceTo(time.Duration(step) * time.Second)
		cur := m.Positions()
		for i := range cur {
			d := cur[i].Dist(prev[i])
			if d > model.MaxSpeed+1e-9 {
				t.Fatalf("node %d moved %.2f in 1s, max speed %.2f", i, d, model.MaxSpeed)
			}
		}
		prev = cur
	}
}

func TestMobilityAdvanceBackwardsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, err := NewMobility(testModel(), []Point{{10, 10}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	m.AdvanceTo(10 * time.Second)
	before := m.Positions()[0]
	m.AdvanceTo(5 * time.Second) // past time: no-op
	if m.Positions()[0] != before || m.Now() != 10*time.Second {
		t.Error("backward advance changed state")
	}
}

func TestPositionsDefensiveCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := NewMobility(testModel(), []Point{{10, 10}, {50, 50}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	a := m.Positions()
	orig := a[0]
	a[0] = Point{X: -999, Y: -999} // mutate the returned slice
	b := m.Positions()
	if b[0] != orig {
		t.Errorf("mutating the returned slice changed internal state: %v", b[0])
	}
	if &a[0] == &b[0] {
		t.Error("Positions returned aliasing slices")
	}
}

func TestMobilityPauses(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	model := testModel()
	model.MinSpeed, model.MaxSpeed = 1000, 1000 // reach waypoints instantly
	model.Pause = 10 * time.Second
	m, err := NewMobility(model, []Point{{100, 100}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// After the first leg completes the node must dwell: two samples
	// close together during the pause window must match.
	m.AdvanceTo(time.Second)
	p1 := m.Positions()[0]
	m.AdvanceTo(time.Second + 500*time.Millisecond)
	p2 := m.Positions()[0]
	if p1 != p2 {
		t.Error("node moved during pause")
	}
}
