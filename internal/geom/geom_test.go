package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestPointDist(t *testing.T) {
	a := Point{0, 0}
	b := Point{3, 4}
	if got := a.Dist(b); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := a.Dist2(b); got != 25 {
		t.Errorf("Dist2 = %v, want 25", got)
	}
	if a.Dist(a) != 0 {
		t.Error("self distance not zero")
	}
}

func TestPointString(t *testing.T) {
	if got := (Point{1, 2}).String(); got != "(1.00,2.00)" {
		t.Errorf("String = %q", got)
	}
}

func TestFieldValidate(t *testing.T) {
	if err := PaperField().Validate(); err != nil {
		t.Fatalf("paper field invalid: %v", err)
	}
	for _, f := range []Field{{0, 10}, {10, 0}, {-1, 5}} {
		if err := f.Validate(); err == nil {
			t.Errorf("field %+v accepted", f)
		}
	}
}

func TestFieldContains(t *testing.T) {
	f := Field{100, 50}
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{100, 50}, true},
		{Point{50, 25}, true},
		{Point{-0.1, 25}, false},
		{Point{50, 50.1}, false},
	}
	for _, c := range cases {
		if got := f.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestGridWithinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	field := Field{Width: 500, Height: 300}
	const radius = 60
	pts := make([]Point, 400)
	for i := range pts {
		pts[i] = Point{rng.Float64() * field.Width, rng.Float64() * field.Height}
	}
	grid, err := NewGrid(field, radius, pts)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	if grid.Len() != len(pts) {
		t.Fatalf("Len = %d, want %d", grid.Len(), len(pts))
	}
	var got []int32
	for i := range pts {
		got = grid.Within(i, radius, got[:0])
		want := map[int32]bool{}
		for j := range pts {
			if i != j && pts[i].Dist(pts[j]) <= radius {
				want[int32(j)] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("point %d: got %d neighbors, want %d", i, len(got), len(want))
		}
		for _, j := range got {
			if !want[j] {
				t.Fatalf("point %d: spurious neighbor %d", i, j)
			}
		}
	}
}

func TestGridRejectsBadInput(t *testing.T) {
	field := Field{100, 100}
	if _, err := NewGrid(field, 0, nil); err == nil {
		t.Error("zero cell size accepted")
	}
	if _, err := NewGrid(field, 10, []Point{{200, 5}}); err == nil {
		t.Error("out-of-field point accepted")
	}
	if _, err := NewGrid(Field{0, 0}, 10, nil); err == nil {
		t.Error("invalid field accepted")
	}
}

func TestGridBoundaryPoints(t *testing.T) {
	// Points exactly on the far border must land in a valid cell.
	field := Field{100, 100}
	pts := []Point{{100, 100}, {0, 0}, {100, 0}, {0, 100}}
	grid, err := NewGrid(field, 30, pts)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	got := grid.Within(0, 30, nil)
	if len(got) != 0 {
		t.Errorf("corner point has %d neighbors within 30, want 0", len(got))
	}
}

func TestDeploymentValidate(t *testing.T) {
	if err := PaperDeployment(20).Validate(); err != nil {
		t.Fatalf("paper deployment invalid: %v", err)
	}
	bad := []Deployment{
		{Field: Field{0, 0}, Radius: 100, Degree: 10},
		{Field: PaperField(), Radius: 0, Degree: 10},
		{Field: PaperField(), Radius: 100, Degree: 0},
	}
	for _, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("deployment %+v accepted", d)
		}
	}
}

func TestDeploymentIntensity(t *testing.T) {
	d := PaperDeployment(20)
	wantLambda := 20 / (math.Pi * 100 * 100)
	if math.Abs(d.Intensity()-wantLambda) > 1e-15 {
		t.Errorf("Intensity = %v, want %v", d.Intensity(), wantLambda)
	}
	// Expected node count for δ=20 on the paper field: 20·10^6/(π·10^4) ≈ 637.
	if got := d.ExpectedNodes(); math.Abs(got-636.6) > 1 {
		t.Errorf("ExpectedNodes = %v, want ≈636.6", got)
	}
}

func TestSampleNodeCountConcentrates(t *testing.T) {
	d := PaperDeployment(15)
	rng := rand.New(rand.NewSource(42))
	var total float64
	const runs = 30
	for i := 0; i < runs; i++ {
		pts, err := d.Sample(rng)
		if err != nil {
			t.Fatalf("Sample: %v", err)
		}
		for _, p := range pts {
			if !d.Field.Contains(p) {
				t.Fatalf("sampled point %v outside field", p)
			}
		}
		total += float64(len(pts))
	}
	mean := total / runs
	want := d.ExpectedNodes()
	if math.Abs(mean-want) > want*0.05 {
		t.Errorf("empirical mean node count %v too far from %v", mean, want)
	}
}

func TestSampleInvalid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := (Deployment{}).Sample(rng); err == nil {
		t.Error("invalid deployment sampled")
	}
}

func TestPoissonDrawSmallMean(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var sum int
	const n = 20000
	for i := 0; i < n; i++ {
		sum += poissonDraw(rng, 3.5)
	}
	mean := float64(sum) / n
	if math.Abs(mean-3.5) > 0.1 {
		t.Errorf("small-mean Poisson empirical mean %v, want 3.5", mean)
	}
	if poissonDraw(rng, 0) != 0 {
		t.Error("zero mean must give zero")
	}
	if poissonDraw(rng, -5) != 0 {
		t.Error("negative mean must give zero")
	}
}

func TestPoissonDrawLargeMeanVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const mean = 500.0
	const n = 4000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := float64(poissonDraw(rng, mean))
		sum += v
		sumsq += v * v
	}
	m := sum / n
	variance := sumsq/n - m*m
	if math.Abs(m-mean) > 5 {
		t.Errorf("large-mean empirical mean %v, want %v", m, mean)
	}
	// Poisson variance equals the mean.
	if math.Abs(variance-mean) > mean*0.15 {
		t.Errorf("large-mean empirical variance %v, want ≈%v", variance, mean)
	}
}

func TestLinksMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	field := Field{Width: 400, Height: 400}
	const radius = 70
	pts := make([]Point, 150)
	for i := range pts {
		pts[i] = Point{rng.Float64() * field.Width, rng.Float64() * field.Height}
	}
	links, err := Links(field, radius, pts)
	if err != nil {
		t.Fatalf("Links: %v", err)
	}
	want := 0
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Dist(pts[j]) <= radius {
				want++
			}
		}
	}
	if len(links) != want {
		t.Fatalf("got %d links, want %d", len(links), want)
	}
	for _, l := range links {
		if l[0] >= l[1] {
			t.Fatalf("link %v not ordered", l)
		}
		if pts[l[0]].Dist(pts[l[1]]) > radius {
			t.Fatalf("link %v longer than radius", l)
		}
	}
}

func TestLinksEmpty(t *testing.T) {
	links, err := Links(Field{10, 10}, 5, nil)
	if err != nil {
		t.Fatalf("Links: %v", err)
	}
	if len(links) != 0 {
		t.Errorf("empty input produced %d links", len(links))
	}
}

// The mean observed degree of a sampled deployment should approach the target
// degree δ (up to border effects, which reduce it slightly).
func TestDeploymentDegreeCalibration(t *testing.T) {
	d := PaperDeployment(20)
	rng := rand.New(rand.NewSource(99))
	var degrees float64
	var count int
	for run := 0; run < 5; run++ {
		pts, err := d.Sample(rng)
		if err != nil {
			t.Fatalf("Sample: %v", err)
		}
		links, err := Links(d.Field, d.Radius, pts)
		if err != nil {
			t.Fatalf("Links: %v", err)
		}
		degrees += float64(2 * len(links))
		count += len(pts)
	}
	mean := degrees / float64(count)
	// Border effects lose ~10% of the disk for border nodes; accept 15–21.
	if mean < 15 || mean > 21 {
		t.Errorf("mean degree %v, want near 20 (minus border effects)", mean)
	}
}
