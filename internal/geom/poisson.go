package geom

import (
	"fmt"
	"math"
	"math/rand"
)

// Deployment describes a Poisson-point-process deployment in the paper's
// evaluation style: the target mean node degree δ and the communication
// radius R determine the process intensity λ = δ/(πR²), and the number of
// nodes dropped on the field is Poisson(λ · area) with independent uniform
// positions.
type Deployment struct {
	Field  Field
	Radius float64
	// Degree is the target mean node degree δ (the paper's x-axis).
	Degree float64
}

// PaperDeployment returns the paper's deployment with the given target
// degree: 1000×1000 field, R = 100.
func PaperDeployment(degree float64) Deployment {
	return Deployment{Field: PaperField(), Radius: 100, Degree: degree}
}

// Validate checks the deployment parameters.
func (d Deployment) Validate() error {
	if err := d.Field.Validate(); err != nil {
		return err
	}
	if !(d.Radius > 0) {
		return fmt.Errorf("geom: radius %g must be positive", d.Radius)
	}
	if !(d.Degree > 0) {
		return fmt.Errorf("geom: target degree %g must be positive", d.Degree)
	}
	return nil
}

// Intensity returns the process intensity λ = δ/(πR²).
func (d Deployment) Intensity() float64 {
	return d.Degree / (math.Pi * d.Radius * d.Radius)
}

// ExpectedNodes returns the expected number of deployed nodes λ·area.
func (d Deployment) ExpectedNodes() float64 {
	return d.Intensity() * d.Field.Area()
}

// Sample draws one realisation of the point process using rng. The number of
// points follows a Poisson law of mean ExpectedNodes(); positions are i.i.d.
// uniform over the field.
func (d Deployment) Sample(rng *rand.Rand) ([]Point, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n := poissonDraw(rng, d.ExpectedNodes())
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{
			X: rng.Float64() * d.Field.Width,
			Y: rng.Float64() * d.Field.Height,
		}
	}
	return pts, nil
}

// poissonDraw samples a Poisson random variate of the given mean. For small
// means it uses Knuth's product method; for large means (all realistic
// densities in the paper produce hundreds of nodes) it uses the normal
// approximation with continuity correction, which is indistinguishable at
// these scales and runs in constant time.
func poissonDraw(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		// Knuth: count multiplications until the product drops below e^-mean.
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	n := int(math.Round(mean + math.Sqrt(mean)*rng.NormFloat64()))
	if n < 0 {
		return 0
	}
	return n
}

// Links lists the unit-disk links among pts: every unordered pair at
// Euclidean distance at most radius, discovered through a spatial grid. The
// result is sorted lexicographically by (A, B) with A < B.
func Links(field Field, radius float64, pts []Point) ([][2]int32, error) {
	grid, err := NewGrid(field, radius, pts)
	if err != nil {
		return nil, err
	}
	var links [][2]int32
	var scratch []int32
	for i := range pts {
		scratch = grid.Within(i, radius, scratch[:0])
		for _, j := range scratch {
			if int32(i) < j {
				links = append(links, [2]int32{int32(i), j})
			}
		}
	}
	return links, nil
}
