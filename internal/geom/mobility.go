package geom

import (
	"fmt"
	"math/rand"
	"time"
)

// Waypoint is the classic random-waypoint mobility model: each node picks a
// uniform destination in the field, travels toward it at a uniform speed
// from [MinSpeed, MaxSpeed], pauses, and repeats. OLSR's soft-state design
// exists for exactly this regime; the mobility extension lets the
// reproduction exercise it.
type Waypoint struct {
	Field Field
	// MinSpeed and MaxSpeed bound the leg speed in field units per
	// second.
	MinSpeed, MaxSpeed float64
	// Pause is the dwell time at each waypoint.
	Pause time.Duration
}

// Validate checks the model parameters.
func (wp Waypoint) Validate() error {
	if err := wp.Field.Validate(); err != nil {
		return err
	}
	if !(wp.MinSpeed > 0) || wp.MaxSpeed < wp.MinSpeed {
		return fmt.Errorf("geom: speed range [%g,%g] invalid", wp.MinSpeed, wp.MaxSpeed)
	}
	if wp.Pause < 0 {
		return fmt.Errorf("geom: negative pause %v", wp.Pause)
	}
	return nil
}

type mobileState struct {
	pos        Point
	dest       Point
	speed      float64 // units per second
	pausedTill time.Duration
}

// Mobility advances a population of nodes under a waypoint model in virtual
// time.
type Mobility struct {
	model Waypoint
	now   time.Duration
	nodes []mobileState
	rng   *rand.Rand
}

// NewMobility starts every node at its initial position with a fresh leg.
func NewMobility(model Waypoint, initial []Point, rng *rand.Rand) (*Mobility, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	m := &Mobility{model: model, rng: rng, nodes: make([]mobileState, len(initial))}
	for i, p := range initial {
		if !model.Field.Contains(p) {
			return nil, fmt.Errorf("geom: initial position %v outside field", p)
		}
		m.nodes[i] = mobileState{pos: p}
		m.newLeg(i)
	}
	return m, nil
}

func (m *Mobility) newLeg(i int) {
	n := &m.nodes[i]
	n.dest = Point{
		X: m.rng.Float64() * m.model.Field.Width,
		Y: m.rng.Float64() * m.model.Field.Height,
	}
	n.speed = m.model.MinSpeed + m.rng.Float64()*(m.model.MaxSpeed-m.model.MinSpeed)
}

// AdvanceTo moves every node from the current virtual time to t.
func (m *Mobility) AdvanceTo(t time.Duration) {
	if t <= m.now {
		return
	}
	for i := range m.nodes {
		m.advanceNode(i, t)
	}
	m.now = t
}

func (m *Mobility) advanceNode(i int, until time.Duration) {
	n := &m.nodes[i]
	now := m.now
	for now < until {
		if n.pausedTill > now {
			// Dwelling at a waypoint.
			if n.pausedTill >= until {
				return
			}
			now = n.pausedTill
			m.newLeg(i)
			continue
		}
		remaining := n.pos.Dist(n.dest)
		if remaining == 0 {
			n.pausedTill = now + m.model.Pause
			if m.model.Pause == 0 {
				m.newLeg(i)
			}
			continue
		}
		budget := (until - now).Seconds() * n.speed
		if budget >= remaining {
			// Reach the waypoint within this step.
			travel := time.Duration(remaining / n.speed * float64(time.Second))
			n.pos = n.dest
			now += travel
			n.pausedTill = now + m.model.Pause
			if m.model.Pause == 0 {
				m.newLeg(i)
			}
			continue
		}
		frac := budget / remaining
		n.pos = Point{
			X: n.pos.X + (n.dest.X-n.pos.X)*frac,
			Y: n.pos.Y + (n.dest.Y-n.pos.Y)*frac,
		}
		return
	}
}

// Positions returns the current node positions as a defensive copy: the
// returned slice is freshly allocated on every call and never aliases the
// model's internal state, so callers (e.g. concurrent measurement probes)
// may retain or mutate it freely. Mobility itself is not goroutine-safe —
// AdvanceTo and Positions must still be serialized with each other.
func (m *Mobility) Positions() []Point {
	out := make([]Point, len(m.nodes))
	for i, n := range m.nodes {
		out[i] = n.pos
	}
	return out
}

// Now returns the model's current virtual time.
func (m *Mobility) Now() time.Duration { return m.now }
