// Package geom provides the geometric substrate of the reproduction: node
// placement by a Poisson point process over a square field, a spatial hash
// grid for radius queries, and unit-disk link extraction.
//
// The paper's evaluation (Sec. IV-A) deploys nodes "in a 1000 × 1000 square
// using a Poisson Point Process" with communication radius R = 100 and mean
// node degree δ, where the process intensity is λ = δ/(πR²).
package geom

import (
	"fmt"
	"math"
)

// Point is a position in the deployment field.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root for radius comparisons.
func (p Point) Dist2(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.2f,%.2f)", p.X, p.Y)
}

// Field is a rectangular deployment area [0,Width] × [0,Height].
type Field struct {
	Width, Height float64
}

// PaperField returns the 1000×1000 field from the paper's evaluation.
func PaperField() Field { return Field{Width: 1000, Height: 1000} }

// Validate reports whether the field has positive area.
func (f Field) Validate() error {
	if !(f.Width > 0) || !(f.Height > 0) {
		return fmt.Errorf("geom: field %gx%g must have positive dimensions", f.Width, f.Height)
	}
	return nil
}

// Area returns the field's area.
func (f Field) Area() float64 { return f.Width * f.Height }

// Contains reports whether p lies inside the field (borders included).
func (f Field) Contains(p Point) bool {
	return p.X >= 0 && p.X <= f.Width && p.Y >= 0 && p.Y <= f.Height
}
