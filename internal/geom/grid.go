package geom

import "fmt"

// Grid is a spatial hash over a field: points are bucketed into square cells
// of side equal to the query radius, so a radius query inspects at most the
// 3×3 cell block around the query point. It makes unit-disk graph extraction
// O(n · expected neighbors) instead of O(n²).
type Grid struct {
	cellSize float64
	cols     int
	rows     int
	points   []Point
	cells    map[int][]int32 // cell index -> point indices
}

// NewGrid indexes points over field with the given cell size (normally the
// communication radius). The points slice is retained; callers must not
// mutate it afterwards.
func NewGrid(field Field, cellSize float64, points []Point) (*Grid, error) {
	if err := field.Validate(); err != nil {
		return nil, err
	}
	if !(cellSize > 0) {
		return nil, fmt.Errorf("geom: cell size %g must be positive", cellSize)
	}
	g := &Grid{
		cellSize: cellSize,
		cols:     int(field.Width/cellSize) + 1,
		rows:     int(field.Height/cellSize) + 1,
		points:   points,
		cells:    make(map[int][]int32, len(points)),
	}
	for i, p := range points {
		if !field.Contains(p) {
			return nil, fmt.Errorf("geom: point %d at %v outside field %gx%g", i, p, field.Width, field.Height)
		}
		c := g.cellOf(p)
		g.cells[c] = append(g.cells[c], int32(i))
	}
	return g, nil
}

func (g *Grid) cellOf(p Point) int {
	cx := int(p.X / g.cellSize)
	cy := int(p.Y / g.cellSize)
	if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy >= g.rows {
		cy = g.rows - 1
	}
	return cy*g.cols + cx
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return len(g.points) }

// Point returns the indexed point i.
func (g *Grid) Point(i int) Point { return g.points[i] }

// Within appends to dst the indices of all points within radius of
// g.Point(i), excluding i itself, and returns the extended slice. Radius must
// not exceed the grid cell size.
func (g *Grid) Within(i int, radius float64, dst []int32) []int32 {
	p := g.points[i]
	r2 := radius * radius
	cx := int(p.X / g.cellSize)
	cy := int(p.Y / g.cellSize)
	for dy := -1; dy <= 1; dy++ {
		y := cy + dy
		if y < 0 || y >= g.rows {
			continue
		}
		for dx := -1; dx <= 1; dx++ {
			x := cx + dx
			if x < 0 || x >= g.cols {
				continue
			}
			for _, j := range g.cells[y*g.cols+x] {
				if int(j) == i {
					continue
				}
				if p.Dist2(g.points[j]) <= r2 {
					dst = append(dst, j)
				}
			}
		}
	}
	return dst
}
