package graph

import (
	"math/rand"
	"testing"

	"qolsr/internal/metric"
)

func TestDijkstraGenericScalarMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 15; trial++ {
		g := randomConnectedGraph(rng, 12, 0.3)
		src := int32(rng.Intn(12))
		for _, m := range []metric.Metric{metric.Delay(), metric.Bandwidth()} {
			w := metricWeights(g, m)
			plain := Dijkstra(g, m, w, src, nil, -1)
			gen, err := DijkstraGeneric[float64](g, metric.Scalar{Metric: m}, src, nil, -1)
			if err != nil {
				t.Fatalf("DijkstraGeneric: %v", err)
			}
			for x := 0; x < g.N(); x++ {
				if gen.Reached[x] != plain.Reachable(int32(x)) {
					t.Fatalf("%s: reachability differs at %d", m.Name(), x)
				}
				if gen.Reached[x] && gen.Cost[x] != plain.Dist[x] {
					t.Fatalf("%s: cost[%d] = %v, plain %v", m.Name(), x, gen.Cost[x], plain.Dist[x])
				}
			}
		}
	}
}

func TestDijkstraGenericMinHopThenBandwidth(t *testing.T) {
	// QOLSR routing semantics: among minimum-hop paths pick the widest.
	// Square 0-1-2 (wide) and 0-3-2 (narrow), both 2 hops; plus a wide
	// 4-hop detour 0-4-5-6-2 that min-hop routing must ignore.
	g := New(7)
	type ew struct {
		a, b int32
		w    float64
	}
	for _, s := range []ew{
		{0, 1, 5}, {1, 2, 5},
		{0, 3, 2}, {3, 2, 9},
		{0, 4, 10}, {4, 5, 10}, {5, 6, 10}, {6, 2, 10},
	} {
		e := g.MustAddEdge(s.a, s.b)
		if err := g.SetWeight("bandwidth", e, s.w); err != nil {
			t.Fatal(err)
		}
	}
	lex := metric.Lexicographic{
		PrimaryMetric:   metric.Hop(),
		SecondaryMetric: metric.Bandwidth(),
		PrimaryWeight:   "bandwidth", // Hop ignores the value
		SecondaryWeight: "bandwidth",
	}
	gs, err := DijkstraGeneric[metric.LexCost](g, lex, 0, nil, -1)
	if err != nil {
		t.Fatalf("DijkstraGeneric: %v", err)
	}
	got := gs.Cost[2]
	if got.Primary != 2 {
		t.Errorf("hops = %v, want 2", got.Primary)
	}
	if got.Secondary != 5 {
		t.Errorf("bandwidth among min-hop = %v, want 5 (wide 2-hop path)", got.Secondary)
	}
	path := gs.PathTo(2)
	if len(path) != 3 || path[1] != 1 {
		t.Errorf("path = %v, want through node 1", path)
	}
}

func TestDijkstraGenericLexBandwidthThenEnergy(t *testing.T) {
	// Future-work extension: among widest paths minimise energy.
	g := New(4)
	type ew struct {
		a, b   int32
		bw, en float64
	}
	for _, s := range []ew{
		{0, 1, 5, 10}, {1, 3, 5, 10}, // widest, expensive: bw 5, energy 20
		{0, 2, 5, 2}, {2, 3, 5, 3}, // widest, cheap: bw 5, energy 5
	} {
		e := g.MustAddEdge(s.a, s.b)
		if err := g.SetWeight("bandwidth", e, s.bw); err != nil {
			t.Fatal(err)
		}
		if err := g.SetWeight("energy", e, s.en); err != nil {
			t.Fatal(err)
		}
	}
	lex := metric.Lexicographic{
		PrimaryMetric:   metric.Bandwidth(),
		SecondaryMetric: metric.Energy(),
		PrimaryWeight:   "bandwidth",
		SecondaryWeight: "energy",
	}
	gs, err := DijkstraGeneric[metric.LexCost](g, lex, 0, nil, -1)
	if err != nil {
		t.Fatalf("DijkstraGeneric: %v", err)
	}
	if gs.Cost[3].Primary != 5 || gs.Cost[3].Secondary != 5 {
		t.Errorf("cost = %+v, want {5 5}", gs.Cost[3])
	}
	if path := gs.PathTo(3); len(path) != 3 || path[1] != 2 {
		t.Errorf("path = %v, want through node 2", path)
	}
}

func TestDijkstraGenericMissingChannel(t *testing.T) {
	g := New(2)
	e := g.MustAddEdge(0, 1)
	if err := g.SetWeight("bandwidth", e, 1); err != nil {
		t.Fatal(err)
	}
	lex := metric.Lexicographic{
		PrimaryMetric:   metric.Bandwidth(),
		SecondaryMetric: metric.Energy(),
		PrimaryWeight:   "bandwidth",
		SecondaryWeight: "energy",
	}
	if _, err := DijkstraGeneric[metric.LexCost](g, lex, 0, nil, -1); err == nil {
		t.Error("missing channel accepted")
	}
}

func TestDijkstraGenericExcludedSource(t *testing.T) {
	g := New(2)
	e := g.MustAddEdge(0, 1)
	if err := g.SetWeight("delay", e, 1); err != nil {
		t.Fatal(err)
	}
	gs, err := DijkstraGeneric[float64](g, metric.Scalar{Metric: metric.Delay()}, 0, nil, 0)
	if err != nil {
		t.Fatalf("DijkstraGeneric: %v", err)
	}
	if gs.Reached[0] || gs.Reached[1] {
		t.Error("excluded source searched")
	}
	if gs.PathTo(1) != nil {
		t.Error("path to unreached node")
	}
}
