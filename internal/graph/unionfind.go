package graph

// UnionFind is a disjoint-set forest with union by size and path halving,
// used by the concave first-hop sweep (descending-threshold connectivity).
type UnionFind struct {
	parent []int32
	size   []int32
}

// NewUnionFind returns a forest of n singletons.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int32, n),
		size:   make([]int32, n),
	}
	uf.Reset(n)
	return uf
}

// Reset reinitialises the forest to n singletons, reusing storage when
// possible.
func (uf *UnionFind) Reset(n int) {
	if cap(uf.parent) < n {
		uf.parent = make([]int32, n)
		uf.size = make([]int32, n)
	}
	uf.parent = uf.parent[:n]
	uf.size = uf.size[:n]
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.size[i] = 1
	}
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int32) int32 {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets of a and b and reports whether they were distinct.
func (uf *UnionFind) Union(a, b int32) bool {
	ra, rb := uf.Find(a), uf.Find(b)
	if ra == rb {
		return false
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
	return true
}

// Connected reports whether a and b are in the same set.
func (uf *UnionFind) Connected(a, b int32) bool {
	return uf.Find(a) == uf.Find(b)
}
