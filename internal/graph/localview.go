package graph

import "sort"

// Role classifies a node inside a local view.
type Role uint8

// Roles of nodes relative to the view's center u.
const (
	RoleOutside Role = iota
	RoleCenter       // u itself
	RoleOneHop       // N(u)
	RoleTwoHop       // N2(u)
)

// LocalView is the partial topology G_u = (V_u, E_u) node u knows after
// neighbor discovery (paper Sec. III-A):
//
//	V_u = {u} ∪ N(u) ∪ N2(u)
//	E_u = {(v,w) | v ∈ N(u) ∧ w ∈ V_u}
//
// i.e. all nodes within two hops and every edge incident to a 1-hop
// neighbor. Note that edges between two 2-hop neighbors are invisible (the
// paper's Fig. 2: u is not aware of link (v8,v9)).
type LocalView struct {
	G *Graph
	// U is the center node.
	U int32
	// N1 lists the 1-hop neighbors sorted by ascending NodeID, the
	// deterministic processing order of the selection algorithms.
	N1 []int32
	// N2 lists the 2-hop neighbors sorted by ascending NodeID.
	N2 []int32

	role    []Role  // per global node
	n1Index []int32 // global node -> position in N1, -1 otherwise
}

// NewLocalView computes the local view of u in g.
func NewLocalView(g *Graph, u int32) *LocalView {
	lv := &LocalView{
		G:       g,
		U:       u,
		role:    make([]Role, g.N()),
		n1Index: make([]int32, g.N()),
	}
	for i := range lv.n1Index {
		lv.n1Index[i] = -1
	}
	lv.role[u] = RoleCenter
	for _, arc := range g.Arcs(u) {
		lv.role[arc.To] = RoleOneHop
		lv.N1 = append(lv.N1, arc.To)
	}
	for _, n := range lv.N1 {
		for _, arc := range g.Arcs(n) {
			if lv.role[arc.To] == RoleOutside {
				lv.role[arc.To] = RoleTwoHop
				lv.N2 = append(lv.N2, arc.To)
			}
		}
	}
	byID := func(s []int32) {
		sort.Slice(s, func(i, j int) bool { return g.ID(s[i]) < g.ID(s[j]) })
	}
	byID(lv.N1)
	byID(lv.N2)
	for i, n := range lv.N1 {
		lv.n1Index[n] = int32(i)
	}
	return lv
}

// Role returns the role of global node x in the view.
func (lv *LocalView) Role(x int32) Role { return lv.role[x] }

// InView reports whether x belongs to V_u.
func (lv *LocalView) InView(x int32) bool { return lv.role[x] != RoleOutside }

// IsNeighbor reports whether x is a 1-hop neighbor of the center.
func (lv *LocalView) IsNeighbor(x int32) bool { return lv.role[x] == RoleOneHop }

// N1Index returns the position of x in N1, or -1 if x is not a 1-hop
// neighbor.
func (lv *LocalView) N1Index(x int32) int32 { return lv.n1Index[x] }

// HasViewEdge reports whether the arc tail->head is part of E_u: the edge
// must touch a 1-hop neighbor, and when the center is an endpoint the other
// endpoint is necessarily a 1-hop neighbor.
func (lv *LocalView) HasViewEdge(tail, head int32) bool {
	if !lv.InView(tail) || !lv.InView(head) {
		return false
	}
	return lv.role[tail] == RoleOneHop || lv.role[head] == RoleOneHop
}

// Targets returns the selection targets of the paper's Algorithms 1 and 2:
// first every 1-hop neighbor, then every 2-hop neighbor, each sorted by ID.
// The returned slice is freshly allocated.
func (lv *LocalView) Targets() []int32 {
	out := make([]int32, 0, len(lv.N1)+len(lv.N2))
	out = append(out, lv.N1...)
	out = append(out, lv.N2...)
	return out
}

// ViewEdges appends to dst every edge index of E_u and returns it. Each edge
// appears once.
func (lv *LocalView) ViewEdges(dst []int32) []int32 {
	g := lv.G
	for _, n := range lv.N1 {
		for _, arc := range g.Arcs(n) {
			if !lv.InView(arc.To) {
				continue
			}
			// Emit each edge once: from the 1-hop endpoint with the
			// smaller node index, or from the 1-hop endpoint when the
			// other side is not 1-hop.
			if lv.role[arc.To] == RoleOneHop && arc.To < n {
				continue
			}
			dst = append(dst, arc.Edge)
		}
	}
	return dst
}
