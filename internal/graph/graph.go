// Package graph provides the graph substrate of the reproduction: a compact
// undirected weighted graph, the two-hop local views G_u the paper's
// algorithms operate on, generalized Dijkstra searches for additive and
// concave metrics, exact first-hop-set (fP) computation, relative
// neighborhood graph reduction, and brute-force reference oracles used by the
// test suite.
package graph

import (
	"fmt"
	"math/rand"
	"sort"

	"qolsr/internal/metric"
)

// NodeID is the external identifier of a node. The paper's algorithms break
// ties on identifiers ("in case of ties, the smallest id is preferred"), so
// IDs are part of the algorithmic contract, not just labels.
type NodeID int64

// Arc is one direction of an undirected edge as stored in adjacency lists.
type Arc struct {
	// To is the head node of the arc.
	To int32
	// Edge is the index of the underlying undirected edge, usable with
	// Weights and EdgeEndpoints.
	Edge int32
}

// Graph is an undirected graph with multi-channel edge weights. Nodes are
// dense indices 0..N()-1 carrying external NodeIDs; edges are dense indices
// 0..M()-1. The zero value is not usable; construct with New or NewWithIDs.
type Graph struct {
	ids    []NodeID
	labels []string
	adj    [][]Arc
	ends   [][2]int32
	// identity is set while every node's ID equals its index (graph.New
	// and netgen fields): IndexOf is then a bounds check, no storage.
	// Otherwise index carries the id→index map, maintained across AddNode,
	// so reverse lookup and the AddNode uniqueness check are O(1) — the
	// incremental routing engine grows its graph one node at a time and a
	// scanning check would make that growth quadratic.
	identity bool
	index    map[NodeID]int32
	weights  map[string][]float64
}

// New returns a graph of n isolated nodes whose IDs are their indices.
func New(n int) *Graph {
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeID(i)
	}
	g, err := NewWithIDs(ids)
	if err != nil {
		// Sequential IDs are always unique; this cannot happen.
		panic(err)
	}
	return g
}

// NewWithIDs returns a graph whose node i carries ids[i]. IDs must be unique
// since the selection algorithms use them as total tie-breakers.
func NewWithIDs(ids []NodeID) (*Graph, error) {
	index := make(map[NodeID]int32, len(ids))
	identity := true
	for i, id := range ids {
		if _, dup := index[id]; dup {
			return nil, fmt.Errorf("graph: duplicate node id %d at index %d", id, i)
		}
		index[id] = int32(i)
		if id != NodeID(i) {
			identity = false
		}
	}
	if identity {
		index = nil // IndexOf is a bounds check; no reverse storage needed
	}
	return &Graph{
		ids:      append([]NodeID(nil), ids...),
		adj:      make([][]Arc, len(ids)),
		identity: identity,
		index:    index,
		weights:  make(map[string][]float64),
	}, nil
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.ids) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.ends) }

// ID returns the external identifier of node x.
func (g *Graph) ID(x int32) NodeID { return g.ids[x] }

// IndexOf returns the node index carrying id, or -1. It is O(1): identity
// graphs answer with a bounds check, others through the maintained reverse
// map.
func (g *Graph) IndexOf(id NodeID) int32 {
	if g.identity {
		if uint64(id) < uint64(len(g.ids)) {
			return int32(id)
		}
		return -1
	}
	if i, ok := g.index[id]; ok {
		return i
	}
	return -1
}

// SetLabel attaches a human-readable label to node x, used by the DOT writer
// and the worked-example fixtures.
func (g *Graph) SetLabel(x int32, label string) {
	if g.labels == nil {
		g.labels = make([]string, g.N())
	}
	g.labels[x] = label
}

// Label returns the label of node x, defaulting to "v<id>".
func (g *Graph) Label(x int32) string {
	if g.labels != nil && g.labels[x] != "" {
		return g.labels[x]
	}
	return fmt.Sprintf("v%d", g.ids[x])
}

// AddEdge inserts the undirected edge {a,b} and returns its edge index. It
// rejects self-loops, duplicate edges and out-of-range endpoints.
func (g *Graph) AddEdge(a, b int32) (int, error) {
	if a < 0 || int(a) >= g.N() || b < 0 || int(b) >= g.N() {
		return 0, fmt.Errorf("graph: edge endpoints (%d,%d) out of range [0,%d)", a, b, g.N())
	}
	if a == b {
		return 0, fmt.Errorf("graph: self-loop on node %d", a)
	}
	if _, ok := g.EdgeBetween(a, b); ok {
		return 0, fmt.Errorf("graph: duplicate edge {%d,%d}", a, b)
	}
	e := int32(len(g.ends))
	g.ends = append(g.ends, [2]int32{a, b})
	g.adj[a] = append(g.adj[a], Arc{To: b, Edge: e})
	g.adj[b] = append(g.adj[b], Arc{To: a, Edge: e})
	for ch := range g.weights {
		g.weights[ch] = append(g.weights[ch], 0)
	}
	return int(e), nil
}

// AddNode appends a new isolated node carrying id and returns its index.
// Appending never disturbs existing indices or edges, so incrementally
// maintained artifacts (cached SPF solutions, adjacency references) survive
// growth — canonical tie-breaking is by NodeID, not index, so index
// assignment order cannot leak into results.
func (g *Graph) AddNode(id NodeID) (int32, error) {
	if g.IndexOf(id) >= 0 {
		return 0, fmt.Errorf("graph: duplicate node id %d", id)
	}
	x := int32(len(g.ids))
	if g.identity && id != NodeID(x) {
		// The append breaks the identity mapping: materialise the reverse
		// map the identity fast path made unnecessary so far.
		g.identity = false
		g.index = make(map[NodeID]int32, len(g.ids)+1)
		for i, v := range g.ids {
			g.index[v] = int32(i)
		}
	}
	if !g.identity {
		g.index[id] = x
	}
	g.ids = append(g.ids, id)
	g.adj = append(g.adj, nil)
	if g.labels != nil {
		g.labels = append(g.labels, "")
	}
	return x, nil
}

// RemoveEdge deletes undirected edge e in O(degree): the last edge index is
// renumbered into the vacated slot (on every weight channel too), so edge
// indices stay dense but are not stable across removals. Adjacency order is
// not preserved — nothing in the package's algorithms depends on it.
func (g *Graph) RemoveEdge(e int) error {
	if e < 0 || e >= g.M() {
		return fmt.Errorf("graph: edge %d out of range [0,%d)", e, g.M())
	}
	for ch, ws := range g.weights {
		// Normalise channels created before edges existed, so the swap
		// below moves every channel coherently.
		if len(ws) != g.M() {
			grown := make([]float64, g.M())
			copy(grown, ws)
			g.weights[ch] = grown
		}
	}
	a, b := g.ends[e][0], g.ends[e][1]
	g.dropArc(a, int32(e))
	g.dropArc(b, int32(e))
	last := g.M() - 1
	if e != last {
		la, lb := g.ends[last][0], g.ends[last][1]
		g.ends[e] = g.ends[last]
		g.renumberArc(la, int32(last), int32(e))
		g.renumberArc(lb, int32(last), int32(e))
	}
	g.ends = g.ends[:last]
	for ch, ws := range g.weights {
		if e != last {
			ws[e] = ws[last]
		}
		g.weights[ch] = ws[:last]
	}
	return nil
}

// dropArc removes the arc with edge index e from x's adjacency list.
func (g *Graph) dropArc(x, e int32) {
	adj := g.adj[x]
	for i, arc := range adj {
		if arc.Edge == e {
			adj[i] = adj[len(adj)-1]
			g.adj[x] = adj[:len(adj)-1]
			return
		}
	}
}

// renumberArc rewrites x's arc carrying edge index from to carry to.
func (g *Graph) renumberArc(x, from, to int32) {
	adj := g.adj[x]
	for i, arc := range adj {
		if arc.Edge == from {
			adj[i].Edge = to
			return
		}
	}
}

// MustAddEdge is AddEdge for statically known-good fixtures; it panics on
// error and is meant for tests and worked examples only.
func (g *Graph) MustAddEdge(a, b int32) int {
	e, err := g.AddEdge(a, b)
	if err != nil {
		panic(err)
	}
	return e
}

// EdgeBetween returns the edge index joining a and b, if any.
func (g *Graph) EdgeBetween(a, b int32) (int, bool) {
	// Scan the smaller adjacency list.
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	for _, arc := range g.adj[a] {
		if arc.To == b {
			return int(arc.Edge), true
		}
	}
	return 0, false
}

// EdgeEndpoints returns the two endpoints of edge e.
func (g *Graph) EdgeEndpoints(e int) (int32, int32) {
	return g.ends[e][0], g.ends[e][1]
}

// Arcs returns the adjacency list of x. The returned slice is owned by the
// graph and must not be modified.
func (g *Graph) Arcs(x int32) []Arc { return g.adj[x] }

// Degree returns the number of neighbors of x.
func (g *Graph) Degree(x int32) int { return len(g.adj[x]) }

// SetWeight sets the weight of edge e on the named channel, creating the
// channel on first use.
func (g *Graph) SetWeight(channel string, e int, w float64) error {
	if e < 0 || e >= g.M() {
		return fmt.Errorf("graph: edge %d out of range [0,%d)", e, g.M())
	}
	ws, ok := g.weights[channel]
	if !ok {
		ws = make([]float64, g.M())
		g.weights[channel] = ws
	}
	ws[e] = w
	return nil
}

// Weights returns the per-edge weight slice of the named channel, indexed by
// edge index. The slice is owned by the graph.
func (g *Graph) Weights(channel string) ([]float64, error) {
	ws, ok := g.weights[channel]
	if !ok {
		return nil, fmt.Errorf("graph: unknown weight channel %q", channel)
	}
	if len(ws) != g.M() {
		// Channel created before edges were added; normalise length.
		grown := make([]float64, g.M())
		copy(grown, ws)
		g.weights[channel] = grown
		ws = grown
	}
	return ws, nil
}

// Channels returns the names of all weight channels in sorted order.
func (g *Graph) Channels() []string {
	out := make([]string, 0, len(g.weights))
	for ch := range g.weights {
		out = append(out, ch)
	}
	sort.Strings(out)
	return out
}

// AssignUniformWeights draws an independent weight from iv for every edge on
// the named channel, the paper's link-weight model (Sec. IV-A).
func (g *Graph) AssignUniformWeights(channel string, iv metric.Interval, rng *rand.Rand) error {
	if err := iv.Validate(); err != nil {
		return err
	}
	ws := make([]float64, g.M())
	for e := range ws {
		ws[e] = iv.Draw(rng)
	}
	g.weights[channel] = ws
	return nil
}

// LinkWeightMap returns the weights of the edges incident to x keyed by
// neighbor index; it is the per-neighbor view a HELLO message advertises.
func (g *Graph) LinkWeightMap(channel string, x int32) (map[int32]float64, error) {
	ws, err := g.Weights(channel)
	if err != nil {
		return nil, err
	}
	out := make(map[int32]float64, g.Degree(x))
	for _, arc := range g.adj[x] {
		out[arc.To] = ws[arc.Edge]
	}
	return out, nil
}

// Validate checks structural invariants: adjacency symmetry and weight
// channel lengths. It is used by tests and by the simulator after topology
// reconstruction.
func (g *Graph) Validate() error {
	for x := range g.adj {
		for _, arc := range g.adj[x] {
			a, b := g.ends[arc.Edge][0], g.ends[arc.Edge][1]
			if !(a == int32(x) && b == arc.To) && !(b == int32(x) && a == arc.To) {
				return fmt.Errorf("graph: arc %d->%d does not match edge %d endpoints (%d,%d)",
					x, arc.To, arc.Edge, a, b)
			}
		}
	}
	for ch, ws := range g.weights {
		if len(ws) != g.M() {
			return fmt.Errorf("graph: channel %q has %d weights for %d edges", ch, len(ws), g.M())
		}
	}
	return nil
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		ids:     append([]NodeID(nil), g.ids...),
		adj:     make([][]Arc, len(g.adj)),
		ends:    append([][2]int32(nil), g.ends...),
		weights: make(map[string][]float64, len(g.weights)),
	}
	if g.labels != nil {
		c.labels = append([]string(nil), g.labels...)
	}
	for i := range g.adj {
		c.adj[i] = append([]Arc(nil), g.adj[i]...)
	}
	for ch, ws := range g.weights {
		c.weights[ch] = append([]float64(nil), ws...)
	}
	return c
}
