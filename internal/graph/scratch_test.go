package graph

import (
	"math/rand"
	"testing"

	"qolsr/internal/metric"
)

// randomWeighted builds a random connected-ish graph for scratch tests.
func randomWeighted(t *testing.T, n int, p float64, channel string, seed int64) (*Graph, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	// A spanning path keeps the graph connected (and guarantees the weight
	// channel exists); random chords create tie-break opportunities.
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if b != a+1 && rng.Float64() > p {
				continue
			}
			e := g.MustAddEdge(int32(a), int32(b))
			if err := g.SetWeight(channel, e, 1+rng.Float64()*9); err != nil {
				t.Fatal(err)
			}
		}
	}
	w, err := g.Weights(channel)
	if err != nil {
		t.Fatal(err)
	}
	return g, w
}

// A Scratch reused across many searches — over graphs of different sizes and
// both metric kinds — must reproduce the one-shot Dijkstra bit for bit:
// distances, predecessors (via paths) and pop order.
func TestScratchDijkstraMatchesOneShot(t *testing.T) {
	for _, m := range []metric.Metric{metric.Bandwidth(), metric.Delay()} {
		var s Scratch
		for _, n := range []int{3, 17, 40, 9} { // shrinking sizes exercise buffer reuse
			g, w := randomWeighted(t, n, 0.2, m.Name(), int64(n)+7)
			for src := int32(0); int(src) < g.N(); src += 3 {
				want := Dijkstra(g, m, w, src, nil, -1)
				got := s.Dijkstra(g, m, w, src, nil, -1)
				for x := int32(0); int(x) < g.N(); x++ {
					if want.Reachable(x) != got.Reachable(x) {
						t.Fatalf("%s n=%d src=%d: reachability of %d differs", m.Name(), n, src, x)
					}
					if want.Dist[x] != got.Dist[x] {
						t.Fatalf("%s n=%d src=%d: dist[%d] = %v (scratch) vs %v", m.Name(), n, src, x, got.Dist[x], want.Dist[x])
					}
				}
				if len(want.Reached) != len(got.Reached) {
					t.Fatalf("%s n=%d src=%d: pop order lengths differ", m.Name(), n, src)
				}
				for i := range want.Reached {
					if want.Reached[i] != got.Reached[i] {
						t.Fatalf("%s n=%d src=%d: pop order differs at %d", m.Name(), n, src, i)
					}
				}
				for x := int32(0); int(x) < g.N(); x++ {
					wp, gp := want.PathTo(x), got.PathTo(x)
					if len(wp) != len(gp) {
						t.Fatalf("%s n=%d src=%d: path to %d differs in length", m.Name(), n, src, x)
					}
					for i := range wp {
						if wp[i] != gp[i] {
							t.Fatalf("%s n=%d src=%d: path to %d differs at hop %d", m.Name(), n, src, x, i)
						}
					}
				}
			}
		}
	}
}

// Shrinking the searched graph must not leak state from a larger earlier
// search: every returned buffer is cut to the new size, the pop order stays
// in range, and Reset releases the retained storage without affecting the
// correctness of later searches.
func TestScratchShrinkAndReset(t *testing.T) {
	m := metric.Delay()
	var s Scratch
	big, bw := randomWeighted(t, 120, 0.1, m.Name(), 11)
	s.Dijkstra(big, m, bw, 0, nil, -1)

	small, sw := randomWeighted(t, 7, 0.5, m.Name(), 13)
	got := s.Dijkstra(small, m, sw, 2, nil, -1)
	if len(got.Dist) != small.N() || len(got.prev) != small.N() || len(got.hops) != small.N() {
		t.Fatalf("buffer lengths (%d,%d,%d) not cut to n=%d after shrink",
			len(got.Dist), len(got.prev), len(got.hops), small.N())
	}
	for _, x := range got.Reached {
		if int(x) >= small.N() {
			t.Fatalf("pop order contains %d, outside the %d-node graph", x, small.N())
		}
	}
	want := Dijkstra(small, m, sw, 2, nil, -1)
	for x := int32(0); int(x) < small.N(); x++ {
		if want.Dist[x] != got.Dist[x] {
			t.Fatalf("dist[%d] = %v after shrink, want %v", x, got.Dist[x], want.Dist[x])
		}
	}

	s.Reset()
	if s.sp.Dist != nil || s.sp.prev != nil || s.sp.hops != nil || s.sp.Reached != nil || s.done != nil || s.heap != nil {
		t.Fatal("Reset left retained buffers behind")
	}
	got = s.Dijkstra(small, m, sw, 2, nil, -1)
	for x := int32(0); int(x) < small.N(); x++ {
		if want.Dist[x] != got.Dist[x] {
			t.Fatalf("dist[%d] = %v after Reset, want %v", x, got.Dist[x], want.Dist[x])
		}
	}
}

// FirstHops must agree with per-destination PathTo extraction.
func TestFirstHopsMatchesPathTo(t *testing.T) {
	for _, m := range []metric.Metric{metric.Bandwidth(), metric.Delay()} {
		g, w := randomWeighted(t, 30, 0.15, m.Name(), 3)
		var first, hops []int32
		for src := int32(0); src < 30; src += 7 {
			sp := Dijkstra(g, m, w, src, nil, -1)
			first, hops = sp.FirstHops(first, hops)
			for x := int32(0); int(x) < g.N(); x++ {
				path := sp.PathTo(x)
				switch {
				case len(path) == 0: // unreached
					if first[x] != -1 {
						t.Fatalf("%s src=%d: unreached %d has first hop %d", m.Name(), src, x, first[x])
					}
				case len(path) == 1: // the source
					if first[x] != -1 || hops[x] != 0 {
						t.Fatalf("%s src=%d: source entry = (%d,%d)", m.Name(), src, first[x], hops[x])
					}
				default:
					if first[x] != path[1] {
						t.Fatalf("%s src=%d: first hop to %d = %d, want %d", m.Name(), src, x, first[x], path[1])
					}
					if int(hops[x]) != len(path)-1 {
						t.Fatalf("%s src=%d: hops to %d = %d, want %d", m.Name(), src, x, hops[x], len(path)-1)
					}
				}
			}
		}
	}
}

// The edge accumulator must keep first-writer-wins precedence and insertion
// order across Reset cycles.
func TestEdgeAccumReuse(t *testing.T) {
	var acc EdgeAccum
	index := map[NodeID]int32{1: 0, 2: 1, 3: 2}
	for round := 0; round < 3; round++ {
		acc.Reset()
		acc.Add(1, 2, 5)
		acc.Add(2, 1, 9) // duplicate pair: first writer wins
		acc.Add(3, 3, 1) // self-loop: ignored
		acc.Add(2, 3, 7)
		g, err := NewWithIDs([]NodeID{1, 2, 3})
		if err != nil {
			t.Fatal(err)
		}
		acc.Build(g, index, "bw")
		if g.M() != 2 {
			t.Fatalf("round %d: %d edges, want 2", round, g.M())
		}
		w, err := g.Weights("bw")
		if err != nil {
			t.Fatal(err)
		}
		e12, ok := g.EdgeBetween(0, 1)
		if !ok || w[e12] != 5 {
			t.Errorf("round %d: edge 1-2 weight %v, want first-writer 5", round, w[e12])
		}
	}
}
