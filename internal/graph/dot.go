package graph

import (
	"fmt"
	"io"
	"sort"
)

// DOTOptions controls WriteDOT rendering.
type DOTOptions struct {
	// Name is the graph name in the DOT header.
	Name string
	// WeightChannel, when set, renders edge weights from that channel as
	// edge labels.
	WeightChannel string
	// HighlightNodes are drawn filled (e.g. a node's ANS selection).
	HighlightNodes map[int32]bool
	// HighlightEdges are drawn bold (e.g. advertised links).
	HighlightEdges map[int32]bool
	// DimEdges are drawn dashed (e.g. links removed by topology
	// filtering).
	DimEdges map[int32]bool
}

// WriteDOT renders g as an undirected Graphviz graph, used by cmd/qolsr-graph
// to reproduce the style of the paper's Fig. 5.
func WriteDOT(w io.Writer, g *Graph, opts DOTOptions) error {
	name := opts.Name
	if name == "" {
		name = "G"
	}
	if _, err := fmt.Fprintf(w, "graph %q {\n  node [shape=circle];\n", name); err != nil {
		return err
	}
	var weights []float64
	if opts.WeightChannel != "" {
		ws, err := g.Weights(opts.WeightChannel)
		if err != nil {
			return err
		}
		weights = ws
	}
	for x := int32(0); int(x) < g.N(); x++ {
		attrs := ""
		if opts.HighlightNodes[x] {
			attrs = " [style=filled, fillcolor=lightblue]"
		}
		if _, err := fmt.Fprintf(w, "  %q%s;\n", g.Label(x), attrs); err != nil {
			return err
		}
	}
	type edgeRow struct {
		e    int32
		a, b int32
	}
	rows := make([]edgeRow, 0, g.M())
	for e := 0; e < g.M(); e++ {
		a, b := g.EdgeEndpoints(e)
		rows = append(rows, edgeRow{e: int32(e), a: a, b: b})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].e < rows[j].e })
	for _, r := range rows {
		var attrs []string
		if weights != nil {
			attrs = append(attrs, fmt.Sprintf("label=%q", trimFloat(weights[r.e])))
		}
		if opts.HighlightEdges[r.e] {
			attrs = append(attrs, "style=bold", "penwidth=2")
		}
		if opts.DimEdges[r.e] {
			attrs = append(attrs, "style=dashed")
		}
		suffix := ""
		if len(attrs) > 0 {
			suffix = " [" + join(attrs, ", ") + "]"
		}
		if _, err := fmt.Fprintf(w, "  %q -- %q%s;\n", g.Label(r.a), g.Label(r.b), suffix); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}

func join(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}
