package graph

import (
	"math/rand"
	"testing"
)

func TestLocalViewSmall(t *testing.T) {
	// u(0) - a(1) - b(2) - c(3): N(u)={a}, N2(u)={b}, c outside.
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	lv := NewLocalView(g, 0)
	if len(lv.N1) != 1 || lv.N1[0] != 1 {
		t.Fatalf("N1 = %v", lv.N1)
	}
	if len(lv.N2) != 1 || lv.N2[0] != 2 {
		t.Fatalf("N2 = %v", lv.N2)
	}
	if lv.Role(0) != RoleCenter || lv.Role(1) != RoleOneHop || lv.Role(2) != RoleTwoHop || lv.Role(3) != RoleOutside {
		t.Error("roles wrong")
	}
	if !lv.InView(2) || lv.InView(3) {
		t.Error("InView wrong")
	}
	if !lv.IsNeighbor(1) || lv.IsNeighbor(2) {
		t.Error("IsNeighbor wrong")
	}
	if lv.N1Index(1) != 0 || lv.N1Index(2) != -1 {
		t.Error("N1Index wrong")
	}
	// Edge b-c is invisible: it touches no 1-hop neighbor.
	if lv.HasViewEdge(2, 3) {
		t.Error("edge (b,c) must be outside E_u")
	}
	if !lv.HasViewEdge(1, 2) || !lv.HasViewEdge(0, 1) {
		t.Error("edges of E_u missing")
	}
	targets := lv.Targets()
	if len(targets) != 2 || targets[0] != 1 || targets[1] != 2 {
		t.Errorf("Targets = %v", targets)
	}
}

// The defining property of E_u (paper Fig. 2): links between two 2-hop
// neighbors are invisible to u.
func TestLocalViewHidesTwoHopToTwoHopLinks(t *testing.T) {
	// u-a, u-b, a-x, b-y, x-y: x,y are both 2-hop; link x-y invisible.
	g := New(5)
	g.MustAddEdge(0, 1) // u-a
	g.MustAddEdge(0, 2) // u-b
	g.MustAddEdge(1, 3) // a-x
	g.MustAddEdge(2, 4) // b-y
	g.MustAddEdge(3, 4) // x-y
	lv := NewLocalView(g, 0)
	if lv.HasViewEdge(3, 4) {
		t.Error("2-hop to 2-hop link visible in E_u")
	}
	edges := lv.ViewEdges(nil)
	if len(edges) != 4 {
		t.Errorf("|E_u| = %d, want 4", len(edges))
	}
}

func TestLocalViewSortingByID(t *testing.T) {
	// IDs are reversed relative to indices; N1/N2 must sort by ID.
	g, err := NewWithIDs([]NodeID{50, 40, 30, 20, 10})
	if err != nil {
		t.Fatal(err)
	}
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(2, 4)
	lv := NewLocalView(g, 0)
	if g.ID(lv.N1[0]) != 30 || g.ID(lv.N1[1]) != 40 {
		t.Errorf("N1 IDs = %d,%d, want ascending", g.ID(lv.N1[0]), g.ID(lv.N1[1]))
	}
	if g.ID(lv.N2[0]) != 10 || g.ID(lv.N2[1]) != 20 {
		t.Errorf("N2 IDs = %d,%d, want ascending", g.ID(lv.N2[0]), g.ID(lv.N2[1]))
	}
}

func TestLocalViewMatchesBruteForceOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 30, 0.12)
		u := int32(rng.Intn(30))
		lv := NewLocalView(g, u)
		hops := HopDistances(g, u)
		for x := int32(0); int(x) < g.N(); x++ {
			var want Role
			switch {
			case x == u:
				want = RoleCenter
			case hops[x] == 1:
				want = RoleOneHop
			case hops[x] == 2:
				want = RoleTwoHop
			default:
				want = RoleOutside
			}
			if lv.Role(x) != want {
				t.Fatalf("trial %d: role of %d = %v, want %v", trial, x, lv.Role(x), want)
			}
		}
		// E_u: exactly the edges with at least one 1-hop endpoint and
		// both endpoints in the view.
		viewEdges := map[int32]bool{}
		for _, e := range lv.ViewEdges(nil) {
			if viewEdges[e] {
				t.Fatalf("trial %d: edge %d emitted twice", trial, e)
			}
			viewEdges[e] = true
		}
		for e := 0; e < g.M(); e++ {
			a, b := g.EdgeEndpoints(e)
			want := lv.InView(a) && lv.InView(b) && (hops[a] == 1 || hops[b] == 1)
			if viewEdges[int32(e)] != want {
				t.Fatalf("trial %d: edge %d (%d-%d) membership = %v, want %v",
					trial, e, a, b, viewEdges[int32(e)], want)
			}
			if lv.HasViewEdge(a, b) != want {
				t.Fatalf("trial %d: HasViewEdge(%d,%d) = %v, want %v",
					trial, a, b, lv.HasViewEdge(a, b), want)
			}
		}
	}
}
