package graph

import (
	"math/rand"
	"strings"
	"testing"

	"qolsr/internal/metric"
)

func TestNewAssignsSequentialIDs(t *testing.T) {
	g := New(4)
	if g.N() != 4 || g.M() != 0 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	for i := int32(0); i < 4; i++ {
		if g.ID(i) != NodeID(i) {
			t.Errorf("ID(%d) = %d", i, g.ID(i))
		}
	}
}

func TestNewWithIDsRejectsDuplicates(t *testing.T) {
	if _, err := NewWithIDs([]NodeID{1, 2, 1}); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
	g, err := NewWithIDs([]NodeID{10, 20, 30})
	if err != nil {
		t.Fatalf("NewWithIDs: %v", err)
	}
	if g.ID(1) != 20 {
		t.Errorf("ID(1) = %d, want 20", g.ID(1))
	}
	if g.IndexOf(30) != 2 {
		t.Errorf("IndexOf(30) = %d, want 2", g.IndexOf(30))
	}
	if g.IndexOf(99) != -1 {
		t.Errorf("IndexOf(99) = %d, want -1", g.IndexOf(99))
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if _, err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := g.AddEdge(0, 3); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if _, err := g.AddEdge(-1, 1); err == nil {
		t.Error("negative endpoint accepted")
	}
	if _, err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if _, err := g.AddEdge(1, 0); err == nil {
		t.Error("duplicate (reversed) edge accepted")
	}
}

func TestEdgeBetweenAndEndpoints(t *testing.T) {
	g := New(4)
	e01 := g.MustAddEdge(0, 1)
	e23 := g.MustAddEdge(2, 3)
	if e, ok := g.EdgeBetween(1, 0); !ok || e != e01 {
		t.Errorf("EdgeBetween(1,0) = %d,%v", e, ok)
	}
	if _, ok := g.EdgeBetween(0, 2); ok {
		t.Error("phantom edge found")
	}
	a, b := g.EdgeEndpoints(e23)
	if a != 2 || b != 3 {
		t.Errorf("EdgeEndpoints = (%d,%d)", a, b)
	}
	if g.Degree(0) != 1 || g.Degree(3) != 1 {
		t.Error("degrees wrong")
	}
}

func TestWeightsChannelLifecycle(t *testing.T) {
	g := New(3)
	e0 := g.MustAddEdge(0, 1)
	if err := g.SetWeight("bandwidth", e0, 5); err != nil {
		t.Fatalf("SetWeight: %v", err)
	}
	// Channel must grow when edges are added after creation.
	e1 := g.MustAddEdge(1, 2)
	if err := g.SetWeight("bandwidth", e1, 7); err != nil {
		t.Fatalf("SetWeight after growth: %v", err)
	}
	ws, err := g.Weights("bandwidth")
	if err != nil {
		t.Fatalf("Weights: %v", err)
	}
	if ws[e0] != 5 || ws[e1] != 7 {
		t.Errorf("weights = %v", ws)
	}
	if _, err := g.Weights("nope"); err == nil {
		t.Error("unknown channel accepted")
	}
	if err := g.SetWeight("bandwidth", 99, 1); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if got := g.Channels(); len(got) != 1 || got[0] != "bandwidth" {
		t.Errorf("Channels = %v", got)
	}
}

func TestAssignUniformWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomConnectedGraph(rng, 20, 0.3)
	iv := metric.Interval{Lo: 2, Hi: 4}
	if err := g.AssignUniformWeights("x", iv, rng); err != nil {
		t.Fatalf("AssignUniformWeights: %v", err)
	}
	ws, err := g.Weights("x")
	if err != nil {
		t.Fatalf("Weights: %v", err)
	}
	for e, w := range ws {
		if !iv.Contains(w) {
			t.Fatalf("edge %d weight %v outside %v", e, w, iv)
		}
	}
	if err := g.AssignUniformWeights("x", metric.Interval{Lo: 0, Hi: 1}, rng); err == nil {
		t.Error("invalid interval accepted")
	}
}

func TestLinkWeightMap(t *testing.T) {
	g := New(3)
	e0 := g.MustAddEdge(0, 1)
	e1 := g.MustAddEdge(0, 2)
	if err := g.SetWeight("delay", e0, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := g.SetWeight("delay", e1, 2.5); err != nil {
		t.Fatal(err)
	}
	m, err := g.LinkWeightMap("delay", 0)
	if err != nil {
		t.Fatalf("LinkWeightMap: %v", err)
	}
	if len(m) != 2 || m[1] != 1.5 || m[2] != 2.5 {
		t.Errorf("map = %v", m)
	}
	if _, err := g.LinkWeightMap("missing", 0); err == nil {
		t.Error("unknown channel accepted")
	}
}

func TestLabels(t *testing.T) {
	g := New(2)
	if g.Label(0) != "v0" {
		t.Errorf("default label = %q", g.Label(0))
	}
	g.SetLabel(0, "u")
	if g.Label(0) != "u" || g.Label(1) != "v1" {
		t.Errorf("labels = %q %q", g.Label(0), g.Label(1))
	}
}

func TestCloneIsDeep(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomConnectedGraph(rng, 10, 0.4)
	g.SetLabel(0, "origin")
	c := g.Clone()
	if c.N() != g.N() || c.M() != g.M() {
		t.Fatalf("clone dims differ")
	}
	// Mutating the clone must not affect the original.
	wc, _ := c.Weights("bandwidth")
	orig, _ := g.Weights("bandwidth")
	before := orig[0]
	wc[0] = before + 100
	if orig[0] != before {
		t.Error("clone shares weight storage")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("original invalidated: %v", err)
	}
	if c.Label(0) != "origin" {
		t.Error("labels not cloned")
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
	g.ends[0] = [2]int32{1, 2} // corrupt endpoint table
	if err := g.Validate(); err == nil {
		t.Error("corrupted graph accepted")
	}
}

func TestWriteDOT(t *testing.T) {
	g := New(3)
	g.SetLabel(0, "u")
	e0 := g.MustAddEdge(0, 1)
	e1 := g.MustAddEdge(1, 2)
	if err := g.SetWeight("bandwidth", e0, 4); err != nil {
		t.Fatal(err)
	}
	if err := g.SetWeight("bandwidth", e1, 2.5); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	err := WriteDOT(&sb, g, DOTOptions{
		Name:           "fig",
		WeightChannel:  "bandwidth",
		HighlightNodes: map[int32]bool{1: true},
		HighlightEdges: map[int32]bool{int32(e0): true},
		DimEdges:       map[int32]bool{int32(e1): true},
	})
	if err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		`graph "fig"`,
		`"u" -- "v1" [label="4", style=bold, penwidth=2];`,
		`"v1" -- "v2" [label="2.5", style=dashed];`,
		`"v1" [style=filled, fillcolor=lightblue];`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	if err := WriteDOT(&sb, g, DOTOptions{WeightChannel: "zzz"}); err == nil {
		t.Error("unknown weight channel accepted")
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Connected(0, 1) {
		t.Error("fresh sets connected")
	}
	if !uf.Union(0, 1) || !uf.Union(1, 2) {
		t.Error("unions reported as no-ops")
	}
	if uf.Union(0, 2) {
		t.Error("redundant union reported as merge")
	}
	if !uf.Connected(0, 2) || uf.Connected(0, 3) {
		t.Error("connectivity wrong")
	}
	uf.Reset(3)
	if uf.Connected(0, 1) {
		t.Error("Reset did not clear sets")
	}
}
