package graph

import (
	"fmt"
	"math/rand"
	"testing"

	"qolsr/internal/metric"
)

// checkCanonical verifies that the SPF solution is bit-identical to a full
// canonical Dijkstra rebuild on the same graph: values, hop counts,
// predecessors and first hops.
func checkCanonical(t *testing.T, s *SPF, m metric.Metric, scr *Scratch, step int) {
	t.Helper()
	g := s.Graph()
	w, err := g.Weights(m.Name())
	if err != nil {
		t.Fatal(err)
	}
	ref := scr.Dijkstra(g, m, w, s.Source(), nil, -1)
	refFirst, refHops := ref.FirstHops(nil, nil)
	first := s.FirstHops(nil)
	for x := int32(0); int(x) < g.N(); x++ {
		if s.Reachable(x) != ref.Reachable(x) {
			t.Fatalf("step %d: node %d reachable=%v, full rebuild says %v",
				step, x, s.Reachable(x), ref.Reachable(x))
		}
		if s.Value(x) != ref.Dist[x] {
			t.Fatalf("step %d: node %d value %v, full rebuild %v",
				step, x, s.Value(x), ref.Dist[x])
		}
		if !ref.Reachable(x) {
			continue
		}
		if s.Hops(x) != refHops[x] {
			t.Fatalf("step %d: node %d hops %d, full rebuild %d",
				step, x, s.Hops(x), refHops[x])
		}
		if s.Prev(x) != ref.prev[x] {
			t.Fatalf("step %d: node %d prev %d (id %v), full rebuild %d (id %v)",
				step, x, s.Prev(x), g.ID(s.Prev(x)), ref.prev[x], g.ID(ref.prev[x]))
		}
		if first[x] != refFirst[x] {
			t.Fatalf("step %d: node %d first hop %d, full rebuild %d",
				step, x, first[x], refFirst[x])
		}
	}
}

// mutateRandom applies one random topology mutation (add, remove, or
// reweight an edge; occasionally append a node) and reports it to the SPF.
func mutateRandom(t *testing.T, s *SPF, rng *rand.Rand, channel string) {
	t.Helper()
	g := s.Graph()
	switch op := rng.Intn(10); {
	case op == 0 && g.N() < 64:
		// Append a node and wire it in so it is not trivially isolated.
		idx, err := g.AddNode(NodeID(1000 + g.N()))
		if err != nil {
			t.Fatal(err)
		}
		other := int32(rng.Intn(int(idx)))
		e, err := g.AddEdge(idx, other)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.SetWeight(channel, e, 1+rng.Float64()*9); err != nil {
			t.Fatal(err)
		}
		s.Touch(idx, other)
	case op <= 3 && g.M() > 0:
		// Remove a random edge.
		e := rng.Intn(g.M())
		a, b := g.EdgeEndpoints(e)
		if err := g.RemoveEdge(e); err != nil {
			t.Fatal(err)
		}
		s.Touch(a, b)
	case op <= 6:
		// Add a random missing edge.
		a := int32(rng.Intn(g.N()))
		b := int32(rng.Intn(g.N()))
		if a == b {
			return
		}
		if _, ok := g.EdgeBetween(a, b); ok {
			return
		}
		e, err := g.AddEdge(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.SetWeight(channel, e, 1+rng.Float64()*9); err != nil {
			t.Fatal(err)
		}
		s.Touch(a, b)
	default:
		// Reweight a random edge.
		if g.M() == 0 {
			return
		}
		e := rng.Intn(g.M())
		if err := g.SetWeight(channel, e, 1+rng.Float64()*9); err != nil {
			t.Fatal(err)
		}
		a, b := g.EdgeEndpoints(e)
		s.Touch(a, b)
	}
}

// TestSPFRandomizedCrossCheck drives long randomized add/remove/reweight
// sequences and cross-checks the incrementally repaired solution against a
// full canonical Dijkstra rebuild after every batch — values, hops,
// predecessors and first hops must be bit-identical, for both the additive
// and the concave metric.
func TestSPFRandomizedCrossCheck(t *testing.T) {
	metrics := []metric.Metric{metric.Delay(), metric.Bandwidth(), metric.Hop()}
	for _, m := range metrics {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			for seed := int64(0); seed < 5; seed++ {
				rng := rand.New(rand.NewSource(seed))
				const n = 32
				// IDs deliberately not in index order: canonical
				// tie-breaking must follow IDs, never indices.
				ids := make([]NodeID, n)
				for i := range ids {
					ids[i] = NodeID((i*7 + 3) % (n * 7))
				}
				g, err := NewWithIDs(ids)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 3*n; i++ {
					a := int32(rng.Intn(n))
					b := int32(rng.Intn(n))
					if a == b {
						continue
					}
					if _, ok := g.EdgeBetween(a, b); ok {
						continue
					}
					e, err := g.AddEdge(a, b)
					if err != nil {
						t.Fatal(err)
					}
					// Small integer-ish weights force frequent metric
					// ties, stressing the canonical tie-break.
					if err := g.SetWeight(m.Name(), e, float64(1+rng.Intn(4))); err != nil {
						t.Fatal(err)
					}
				}
				s, err := NewSPF(g, m, m.Name(), 0)
				if err != nil {
					t.Fatal(err)
				}
				scr := new(Scratch)
				checkCanonical(t, s, m, scr, -1)
				for step := 0; step < 120; step++ {
					// Batch one to four mutations per repair.
					for k := 1 + rng.Intn(4); k > 0; k-- {
						mutateRandom(t, s, rng, m.Name())
					}
					if err := s.Repair(); err != nil {
						t.Fatal(err)
					}
					checkCanonical(t, s, m, scr, step)
				}
			}
		})
	}
}

// TestSPFRepairNoOp checks that a repair with no touches changes nothing
// and that Invalidate forces a full rebuild to the same solution.
func TestSPFRepairNoOp(t *testing.T) {
	g := New(4)
	m := metric.Delay()
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {2, 3}, {0, 3}} {
		idx, err := g.AddEdge(e[0], e[1])
		if err != nil {
			t.Fatal(err)
		}
		if err := g.SetWeight(m.Name(), idx, 1); err != nil {
			t.Fatal(err)
		}
	}
	s, err := NewSPF(g, m, m.Name(), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("%v %v", s.dist, s.prev)
	if err := s.Repair(); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprintf("%v %v", s.dist, s.prev); got != want {
		t.Fatalf("no-op repair changed solution: %s -> %s", want, got)
	}
	s.Invalidate()
	if err := s.Repair(); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprintf("%v %v", s.dist, s.prev); got != want {
		t.Fatalf("full rebuild changed solution: %s -> %s", want, got)
	}
}
