package graph

import "qolsr/internal/metric"

// ReducedView is a local view with relative-neighborhood-graph filtering
// applied to its edges, the topology reduction of Moraru & Simplot-Ryl used
// by the topology-filtering QANS baseline (paper Sec. II, [7], [10]).
type ReducedView struct {
	View *LocalView
	// Keep flags which global edge indices of E_u survive the reduction.
	Keep map[int32]bool
}

// ReduceRNG filters the edges of view under the relative neighborhood rule
// adapted to the metric: edge (x,y) is removed when some witness z adjacent
// to both inside G_u offers a strictly better two-hop detour on both legs:
//
//	m.Better(w(x,z), w(x,y))  ∧  m.Better(w(z,y), w(x,y))
//
// For delay this is Toussaint's classic lune condition (both legs shorter);
// for bandwidth both legs must be strictly wider. Strictness on both legs
// guarantees the reduction keeps a maximum (resp. minimum) spanning tree, so
// it preserves connectivity and, in particular, widest-path/least-delay
// reachability inside the view.
func ReduceRNG(view *LocalView, m metric.Metric, w []float64) *ReducedView {
	g := view.G
	edges := view.ViewEdges(nil)
	keep := make(map[int32]bool, len(edges))

	// neighborWeight[z] caches w(z,y) for the y currently being scanned,
	// stamped per edge to avoid clearing.
	neighborWeight := make([]float64, g.N())
	stamp := make([]int32, g.N())
	cur := int32(0)

	for _, e := range edges {
		x, y := g.EdgeEndpoints(int(e))
		cur++
		for _, arc := range g.Arcs(y) {
			if view.HasViewEdge(y, arc.To) {
				stamp[arc.To] = cur
				neighborWeight[arc.To] = w[arc.Edge]
			}
		}
		removed := false
		for _, arc := range g.Arcs(x) {
			z := arc.To
			if z == y || stamp[z] != cur || !view.HasViewEdge(x, z) {
				continue
			}
			if m.Better(w[arc.Edge], w[e]) && m.Better(neighborWeight[z], w[e]) {
				removed = true
				break
			}
		}
		keep[e] = !removed
	}
	return &ReducedView{View: view, Keep: keep}
}

// HasEdge reports whether the edge joining a and b is part of the reduced
// view.
func (rv *ReducedView) HasEdge(a, b int32) bool {
	e, ok := rv.View.G.EdgeBetween(a, b)
	if !ok {
		return false
	}
	return rv.Keep[int32(e)]
}

// SurvivingDegree returns how many reduced-view edges touch the center; the
// classic RNG result predicts a small constant (~2.6 for random geometric
// graphs), which is why topology filtering advertises fewer neighbors than
// QOLSR.
func (rv *ReducedView) SurvivingDegree() int {
	d := 0
	for _, arc := range rv.View.G.Arcs(rv.View.U) {
		if rv.Keep[arc.Edge] {
			d++
		}
	}
	return d
}
