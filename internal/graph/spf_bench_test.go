package graph

import (
	"fmt"
	"math/rand"
	"testing"

	"qolsr/internal/metric"
)

// benchGraph builds a connected random graph with ~deg mean degree: a
// spanning path plus uniform chords, weighted on the metric's channel.
func benchGraph(b *testing.B, n int, deg float64, m metric.Metric, seed int64) (*Graph, []float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	p := deg / float64(n-1)
	for a := 0; a < n; a++ {
		for c := a + 1; c < n; c++ {
			if c != a+1 && rng.Float64() > p {
				continue
			}
			e := g.MustAddEdge(int32(a), int32(c))
			if err := g.SetWeight(m.Name(), e, 1+rng.Float64()*9); err != nil {
				b.Fatal(err)
			}
		}
	}
	w, err := g.Weights(m.Name())
	if err != nil {
		b.Fatal(err)
	}
	return g, w
}

// BenchmarkSPF measures one full scratch Dijkstra over random graphs of
// growing size and density — the flat hot path every routing-table rebuild
// bottoms out in. The source rotates so the search isn't pinned to one
// corner of the graph.
func BenchmarkSPF(b *testing.B) {
	m := metric.Bandwidth()
	for _, n := range []int{100, 1000, 5000} {
		for _, deg := range []float64{6, 16} {
			b.Run(fmt.Sprintf("n=%d/deg=%g", n, deg), func(b *testing.B) {
				g, w := benchGraph(b, n, deg, m, int64(n)*31+int64(deg))
				var s Scratch
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					src := int32(i*37) % int32(n)
					sp := s.Dijkstra(g, m, w, src, nil, -1)
					if len(sp.Reached) == 0 {
						b.Fatal("empty search")
					}
				}
			})
		}
	}
}
