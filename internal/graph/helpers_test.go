package graph

import (
	"math/rand"

	"qolsr/internal/metric"
)

// randomGraph builds a G(n,p) random graph with integer weights in [1,12] on
// both "bandwidth" and "delay" channels. Integer weights make float equality
// in first-hop tie detection exact, so the fast paths and oracles can be
// compared bit-for-bit.
func randomGraph(rng *rand.Rand, n int, p float64) *Graph {
	g := New(n)
	for a := int32(0); int(a) < n; a++ {
		for b := a + 1; int(b) < n; b++ {
			if rng.Float64() < p {
				e := g.MustAddEdge(a, b)
				if err := g.SetWeight("bandwidth", e, float64(1+rng.Intn(12))); err != nil {
					panic(err)
				}
				if err := g.SetWeight("delay", e, float64(1+rng.Intn(12))); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

// randomConnectedGraph retries randomGraph until connected.
func randomConnectedGraph(rng *rand.Rand, n int, p float64) *Graph {
	for {
		g := randomGraph(rng, n, p)
		if Connected(g) {
			return g
		}
	}
}

func metricWeights(g *Graph, m metric.Metric) []float64 {
	w, err := g.Weights(m.Name())
	if err != nil {
		panic(err)
	}
	return w
}

// lineGraph builds a path v0-v1-...-v(n-1) with the given weights on channel
// ch.
func lineGraph(n int, ch string, ws []float64) *Graph {
	g := New(n)
	for i := 0; i < n-1; i++ {
		e := g.MustAddEdge(int32(i), int32(i+1))
		if err := g.SetWeight(ch, e, ws[i]); err != nil {
			panic(err)
		}
	}
	return g
}
