package graph

import (
	"fmt"
	"math/bits"
	"sort"

	"qolsr/internal/metric"
)

// FirstHops holds, for one local view centered at u, the optimal path value
// B̃W(u,v) / D̃(u,v) toward every node of the view and the first-hop sets
// fP(u,v): the 1-hop neighbors that start at least one optimal simple path
// from u to v inside G_u (paper Sec. III-A).
//
// Sets are bitsets over N1 positions (LocalView.N1Index). By the paper's
// observation, v ∈ fP(u,v) exactly when the direct link (u,v) is itself
// optimal.
type FirstHops struct {
	View *LocalView
	// Dist maps each global node to its optimal path value from the
	// center within G_u (metric.Worst() outside the view or unreached).
	Dist []float64
	// DirectWeight maps each N1 position to the weight of the direct link
	// from the center, used by the ≺ ordering.
	DirectWeight []float64

	blocks int
	sets   [][]uint64 // indexed by global node; nil when empty/unreached
}

// Contains reports whether the 1-hop neighbor at N1 position i belongs to
// fP(u, v).
func (fh *FirstHops) Contains(v int32, i int32) bool {
	s := fh.sets[v]
	if s == nil {
		return false
	}
	return s[i/64]&(1<<(uint(i)%64)) != 0
}

// Count returns |fP(u,v)|.
func (fh *FirstHops) Count(v int32) int {
	total := 0
	for _, b := range fh.sets[v] {
		total += popcount(b)
	}
	return total
}

// ForEach invokes fn with every N1 position in fP(u,v), in ascending
// position order (which is ascending NodeID order since N1 is ID-sorted).
func (fh *FirstHops) ForEach(v int32, fn func(i int32)) {
	for blk, b := range fh.sets[v] {
		for b != 0 {
			bit := trailingZeros(b)
			fn(int32(blk*64 + bit))
			b &= b - 1
		}
	}
}

// Members returns fP(u,v) as global node indices in ascending ID order.
func (fh *FirstHops) Members(v int32) []int32 {
	var out []int32
	fh.ForEach(v, func(i int32) {
		out = append(out, fh.View.N1[i])
	})
	return out
}

func popcount(b uint64) int { return bits.OnesCount64(b) }

func trailingZeros(b uint64) int { return bits.TrailingZeros64(b) }

func (fh *FirstHops) setBit(v int32, i int32) {
	if fh.sets[v] == nil {
		fh.sets[v] = make([]uint64, fh.blocks)
	}
	fh.sets[v][i/64] |= 1 << (uint(i) % 64)
}

func (fh *FirstHops) orInto(v int32, src []uint64) {
	if src == nil {
		return
	}
	if fh.sets[v] == nil {
		fh.sets[v] = make([]uint64, fh.blocks)
	}
	dst := fh.sets[v]
	for i := range src {
		dst[i] |= src[i]
	}
}

func newFirstHops(view *LocalView, m metric.Metric, w []float64) *FirstHops {
	fh := &FirstHops{
		View:         view,
		DirectWeight: make([]float64, len(view.N1)),
		blocks:       (len(view.N1) + 63) / 64,
		sets:         make([][]uint64, view.G.N()),
	}
	for i, n := range view.N1 {
		e, ok := view.G.EdgeBetween(view.U, n)
		if !ok {
			panic(fmt.Sprintf("graph: N1 node %d without edge to center %d", n, view.U))
		}
		fh.DirectWeight[i] = w[e]
	}
	return fh
}

// ComputeFirstHops computes optimal values and first-hop sets for the view
// under m, dispatching to the additive or concave fast path.
func ComputeFirstHops(view *LocalView, m metric.Metric, w []float64) (*FirstHops, error) {
	switch m.Kind() {
	case metric.Additive:
		return firstHopsAdditive(view, m, w), nil
	case metric.Concave:
		return firstHopsConcave(view, m, w), nil
	default:
		return nil, fmt.Errorf("graph: unsupported metric kind %v", m.Kind())
	}
}

// firstHopsAdditive runs one Dijkstra from the center and back-propagates
// first-hop bitsets along the shortest-path predecessor DAG. For strictly
// positive additive weights the pop order is strictly increasing along every
// optimal path, so processing nodes in pop order sees all predecessors
// finalised.
func firstHopsAdditive(view *LocalView, m metric.Metric, w []float64) *FirstHops {
	g := view.G
	fh := newFirstHops(view, m, w)
	sp := Dijkstra(g, m, w, view.U, view, -1)
	fh.Dist = sp.Dist
	for _, x := range sp.Reached {
		if x == view.U {
			continue
		}
		for _, arc := range g.Arcs(x) {
			y := arc.To
			if !view.HasViewEdge(y, x) || !sp.Reachable(y) {
				continue
			}
			if m.Combine(sp.Dist[y], w[arc.Edge]) != sp.Dist[x] {
				continue
			}
			if y == view.U {
				// Optimal path arrives directly from u: x itself is the
				// first hop (x is necessarily a 1-hop neighbor).
				fh.setBit(x, view.N1Index(x))
			} else {
				fh.orInto(x, fh.sets[y])
			}
		}
	}
	return fh
}

// concaveEdge is one E_u edge not incident to the center, a candidate for
// the descending-threshold sweep.
type concaveEdge struct {
	w    float64
	a, b int32
}

// firstHopsConcave runs one bottleneck Dijkstra from the center, then sweeps
// thresholds downward with a union-find over G_u − u:
//
//	w ∈ fP(u,v)  ⇔  weight(u,w) ⪰ t*  ∧  w ~ v in (G_u − u) restricted to
//	                edges ⪰ t*, where t* = B̃W(u,v)
//
// (with w == v connected trivially, recovering "direct link optimal"). This
// is exact for any concave metric because optimal walks shortcut to optimal
// simple paths, and simple paths starting u→w never revisit u.
func firstHopsConcave(view *LocalView, m metric.Metric, w []float64) *FirstHops {
	g := view.G
	fh := newFirstHops(view, m, w)
	sp := Dijkstra(g, m, w, view.U, view, -1)
	fh.Dist = sp.Dist

	// Collect E_u edges avoiding the center.
	var edges []concaveEdge
	scratch := view.ViewEdges(nil)
	for _, e := range scratch {
		a, b := g.EdgeEndpoints(int(e))
		if a == view.U || b == view.U {
			continue
		}
		edges = append(edges, concaveEdge{w: w[e], a: a, b: b})
	}
	sort.Slice(edges, func(i, j int) bool { return m.Better(edges[i].w, edges[j].w) })

	// Order targets by descending (better-first) optimal value.
	targets := view.Targets()
	sort.SliceStable(targets, func(i, j int) bool {
		return m.Better(sp.Dist[targets[i]], sp.Dist[targets[j]])
	})

	uf := NewUnionFind(g.N())
	next := 0
	for _, v := range targets {
		if !sp.Reachable(v) {
			continue
		}
		t := sp.Dist[v]
		for next < len(edges) && metric.BetterEq(m, edges[next].w, t) {
			uf.Union(edges[next].a, edges[next].b)
			next++
		}
		for i, hop := range view.N1 {
			if !metric.BetterEq(m, fh.DirectWeight[i], t) {
				continue
			}
			if hop == v || uf.Connected(hop, v) {
				fh.setBit(v, int32(i))
			}
		}
	}
	return fh
}

// FirstHopsReference computes the same result as ComputeFirstHops directly
// from the definition: for every 1-hop neighbor w it searches G_u − u from w
// and tests combine(weight(u,w), dist_{G_u−u}(w,v)) == dist_{G_u}(u,v). It
// works for any metric and serves as the correctness oracle in tests; the
// fast paths are asymptotically cheaper (one search instead of |N(u)|).
func FirstHopsReference(view *LocalView, m metric.Metric, w []float64) *FirstHops {
	g := view.G
	fh := newFirstHops(view, m, w)
	sp := Dijkstra(g, m, w, view.U, view, -1)
	fh.Dist = sp.Dist
	for i, hop := range view.N1 {
		sub := Dijkstra(g, m, w, hop, view, view.U)
		for _, v := range view.Targets() {
			if !sp.Reachable(v) || !sub.Reachable(v) {
				continue
			}
			if m.Combine(fh.DirectWeight[i], sub.Dist[v]) == sp.Dist[v] {
				fh.setBit(v, int32(i))
			}
		}
	}
	return fh
}
