package graph

import (
	"math/rand"
	"testing"

	"qolsr/internal/metric"
)

func TestDijkstraLineDelay(t *testing.T) {
	g := lineGraph(4, "delay", []float64{1, 2, 3})
	sp := Dijkstra(g, metric.Delay(), metricWeights(g, metric.Delay()), 0, nil, -1)
	want := []float64{0, 1, 3, 6}
	for i, w := range want {
		if sp.Dist[i] != w {
			t.Errorf("Dist[%d] = %v, want %v", i, sp.Dist[i], w)
		}
	}
	path := sp.PathTo(3)
	if len(path) != 4 || path[0] != 0 || path[3] != 3 {
		t.Errorf("PathTo(3) = %v", path)
	}
}

func TestDijkstraLineBandwidth(t *testing.T) {
	g := lineGraph(4, "bandwidth", []float64{9, 2, 7})
	sp := Dijkstra(g, metric.Bandwidth(), metricWeights(g, metric.Bandwidth()), 0, nil, -1)
	want := []float64{0, 9, 2, 2} // Dist[0] is Identity = +Inf; checked separately
	for i := 1; i < 4; i++ {
		if sp.Dist[i] != want[i] {
			t.Errorf("Dist[%d] = %v, want %v", i, sp.Dist[i], want[i])
		}
	}
}

func TestDijkstraWidestChoosesLongerPath(t *testing.T) {
	// Triangle: direct 0-2 is narrow (1); detour 0-1-2 is wide (5,5).
	g := New(3)
	e02 := g.MustAddEdge(0, 2)
	e01 := g.MustAddEdge(0, 1)
	e12 := g.MustAddEdge(1, 2)
	for _, ew := range []struct {
		e int
		w float64
	}{{e02, 1}, {e01, 5}, {e12, 5}} {
		if err := g.SetWeight("bandwidth", ew.e, ew.w); err != nil {
			t.Fatal(err)
		}
	}
	sp := Dijkstra(g, metric.Bandwidth(), metricWeights(g, metric.Bandwidth()), 0, nil, -1)
	if sp.Dist[2] != 5 {
		t.Errorf("widest value = %v, want 5", sp.Dist[2])
	}
	path := sp.PathTo(2)
	if len(path) != 3 || path[1] != 1 {
		t.Errorf("widest path = %v, want through node 1", path)
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3)
	e := g.MustAddEdge(0, 1)
	if err := g.SetWeight("delay", e, 1); err != nil {
		t.Fatal(err)
	}
	sp := Dijkstra(g, metric.Delay(), metricWeights(g, metric.Delay()), 0, nil, -1)
	if sp.Reachable(2) {
		t.Error("isolated node reported reachable")
	}
	if sp.PathTo(2) != nil {
		t.Error("PathTo returned a path to an unreachable node")
	}
	if len(sp.Reached) != 2 {
		t.Errorf("Reached = %v", sp.Reached)
	}
}

func TestDijkstraExcludeNode(t *testing.T) {
	// 0-1-2 with 1 excluded: 2 unreachable.
	g := lineGraph(3, "delay", []float64{1, 1})
	sp := Dijkstra(g, metric.Delay(), metricWeights(g, metric.Delay()), 0, nil, 1)
	if sp.Reachable(2) {
		t.Error("path through excluded node used")
	}
	// Excluded source: empty result.
	sp = Dijkstra(g, metric.Delay(), metricWeights(g, metric.Delay()), 1, nil, 1)
	if sp.Reachable(1) || len(sp.Reached) != 0 {
		t.Error("excluded source searched")
	}
}

func TestDijkstraRestrictedToView(t *testing.T) {
	// u(0)-a(1)-x(2)-b(3)-u: square plus an edge x-y(4) with y adjacent
	// only to x... make y 3 hops so the view excludes it.
	g := New(5)
	edges := [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {2, 4}}
	for _, ab := range edges {
		e := g.MustAddEdge(ab[0], ab[1])
		if err := g.SetWeight("delay", e, 1); err != nil {
			t.Fatal(err)
		}
	}
	// From u=0: N1={1,3}, N2={2}; node 4 is 3 hops away -> outside view.
	lv := NewLocalView(g, 0)
	sp := Dijkstra(g, metric.Delay(), metricWeights(g, metric.Delay()), 0, lv, -1)
	if !sp.Reachable(2) || sp.Dist[2] != 2 {
		t.Errorf("2-hop neighbor: dist %v reachable %v", sp.Dist[2], sp.Reachable(2))
	}
	if sp.Reachable(4) {
		t.Error("node outside the view reached")
	}
}

// Restricted search must ignore edges between two 2-hop neighbors, which is
// the paper's Fig. 2 localization argument (u unaware of link v8-v9).
func TestDijkstraViewIgnoresHiddenLinks(t *testing.T) {
	// u(0)-a(1) w=10, a-x(2) w=10, u-b(3) w=3, b-y(4) w=3, x-y w=10.
	// In the full graph the widest u->y is 3 via b... no: u-a-x-y = 10.
	// In G_u the x-y link is hidden, so the widest u->y is u-b-y = 3.
	g := New(5)
	type ew struct {
		a, b int32
		w    float64
	}
	for _, s := range []ew{{0, 1, 10}, {1, 2, 10}, {0, 3, 3}, {3, 4, 3}, {2, 4, 10}} {
		e := g.MustAddEdge(s.a, s.b)
		if err := g.SetWeight("bandwidth", e, s.w); err != nil {
			t.Fatal(err)
		}
	}
	m := metric.Bandwidth()
	w := metricWeights(g, m)
	full := Dijkstra(g, m, w, 0, nil, -1)
	if full.Dist[4] != 10 {
		t.Fatalf("full-graph widest = %v, want 10", full.Dist[4])
	}
	lv := NewLocalView(g, 0)
	local := Dijkstra(g, m, w, 0, lv, -1)
	if local.Dist[4] != 3 {
		t.Errorf("local-view widest = %v, want 3 (hidden link must not be used)", local.Dist[4])
	}
}

func TestDijkstraMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	metrics := []metric.Metric{metric.Delay(), metric.Bandwidth()}
	for trial := 0; trial < 30; trial++ {
		g := randomConnectedGraph(rng, 9, 0.35)
		for _, m := range metrics {
			w := metricWeights(g, m)
			src := int32(rng.Intn(g.N()))
			sp := Dijkstra(g, m, w, src, nil, -1)
			for dst := int32(0); int(dst) < g.N(); dst++ {
				if dst == src {
					continue
				}
				want, ok := BruteBestValue(g, m, w, src, dst, nil, -1)
				if ok != sp.Reachable(dst) {
					t.Fatalf("%s: reachability mismatch %d->%d", m.Name(), src, dst)
				}
				if ok && want != sp.Dist[dst] {
					t.Fatalf("%s: dist %d->%d = %v, want %v", m.Name(), src, dst, sp.Dist[dst], want)
				}
				// The extracted path must realise the optimal value.
				if ok {
					if got := PathValue(g, m, w, sp.PathTo(dst)); got != want {
						t.Fatalf("%s: PathTo value %v, want %v", m.Name(), got, want)
					}
				}
			}
		}
	}
}

func TestDijkstraRestrictedMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	metrics := []metric.Metric{metric.Delay(), metric.Bandwidth()}
	for trial := 0; trial < 20; trial++ {
		g := randomConnectedGraph(rng, 10, 0.3)
		u := int32(rng.Intn(g.N()))
		lv := NewLocalView(g, u)
		for _, m := range metrics {
			w := metricWeights(g, m)
			sp := Dijkstra(g, m, w, u, lv, -1)
			for _, v := range lv.Targets() {
				want, ok := BruteBestValue(g, m, w, u, v, lv, -1)
				if !ok {
					t.Fatalf("view target %d not brute-reachable", v)
				}
				if sp.Dist[v] != want {
					t.Fatalf("%s: view dist %d->%d = %v, want %v", m.Name(), u, v, sp.Dist[v], want)
				}
			}
		}
	}
}

func TestHopDistancesAndComponents(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(3, 4)
	hops := HopDistances(g, 0)
	if hops[2] != 2 || hops[3] != -1 {
		t.Errorf("hops = %v", hops)
	}
	comp, n := Components(g)
	if n != 2 {
		t.Fatalf("components = %d, want 2", n)
	}
	if comp[0] != comp[2] || comp[0] == comp[3] || comp[3] != comp[4] {
		t.Errorf("component ids = %v", comp)
	}
	if Connected(g) {
		t.Error("disconnected graph reported connected")
	}
	if !Connected(New(1)) || !Connected(New(0)) {
		t.Error("trivial graphs must be connected")
	}
	seen := Reachable(g, 3)
	if !seen[4] || seen[0] {
		t.Errorf("Reachable = %v", seen)
	}
}
