package graph

import "qolsr/internal/metric"

// The brute-force oracles in this file enumerate simple paths explicitly.
// They are exponential and intended for the test suite and for very small
// worked examples only.

// EnumerateSimplePaths calls fn with every simple path from src to dst in g
// whose edges all satisfy allowEdge (nil allows everything) and whose length
// does not exceed maxLen edges (0 means unlimited). The path slice passed to
// fn is reused; callers must copy it to retain it. fn returning false stops
// the enumeration early.
func EnumerateSimplePaths(g *Graph, src, dst int32, maxLen int, allowEdge func(e int32) bool, fn func(path []int32) bool) {
	onPath := make([]bool, g.N())
	path := []int32{src}
	onPath[src] = true
	var dfs func() bool
	dfs = func() bool {
		x := path[len(path)-1]
		if x == dst {
			return fn(path)
		}
		if maxLen > 0 && len(path)-1 >= maxLen {
			return true
		}
		for _, arc := range g.Arcs(x) {
			if onPath[arc.To] {
				continue
			}
			if allowEdge != nil && !allowEdge(arc.Edge) {
				continue
			}
			path = append(path, arc.To)
			onPath[arc.To] = true
			ok := dfs()
			onPath[arc.To] = false
			path = path[:len(path)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	dfs()
}

// PathValue folds the metric over the consecutive links of path (node
// indices); it panics if a link is missing, since brute-force callers always
// pass real paths.
func PathValue(g *Graph, m metric.Metric, w []float64, path []int32) float64 {
	v := m.Identity()
	for i := 0; i+1 < len(path); i++ {
		e, ok := g.EdgeBetween(path[i], path[i+1])
		if !ok {
			panic("graph: PathValue called with a non-path")
		}
		v = m.Combine(v, w[e])
	}
	return v
}

// BruteBestValue returns the optimal value over all simple paths from src to
// dst (restricted to view edges when view is non-nil, excluding the node
// exclude when >= 0), and whether any path exists.
func BruteBestValue(g *Graph, m metric.Metric, w []float64, src, dst int32, view *LocalView, exclude int32) (float64, bool) {
	best := m.Worst()
	found := false
	if exclude >= 0 && (src == exclude || dst == exclude) {
		return best, false
	}
	allow := func(e int32) bool {
		a, b := g.EdgeEndpoints(int(e))
		if exclude >= 0 && (a == exclude || b == exclude) {
			return false
		}
		if view != nil && !view.HasViewEdge(a, b) {
			return false
		}
		return true
	}
	EnumerateSimplePaths(g, src, dst, 0, allow, func(path []int32) bool {
		v := PathValue(g, m, w, path)
		if !found || m.Better(v, best) {
			best = v
			found = true
		}
		return true
	})
	return best, found
}

// BruteFirstHops returns fP(u,v) per the definition: the set of neighbors w
// of view.U such that some optimal simple path from U to v inside G_u starts
// with the link (U,w). The result maps global node index -> membership.
func BruteFirstHops(view *LocalView, m metric.Metric, w []float64, v int32) map[int32]bool {
	g := view.G
	best, found := BruteBestValue(g, m, w, view.U, v, view, -1)
	out := make(map[int32]bool)
	if !found {
		return out
	}
	allow := func(e int32) bool {
		a, b := g.EdgeEndpoints(int(e))
		return view.HasViewEdge(a, b)
	}
	EnumerateSimplePaths(g, view.U, v, 0, allow, func(path []int32) bool {
		if PathValue(g, m, w, path) == best && len(path) > 1 {
			out[path[1]] = true
		}
		return true
	})
	return out
}
