package graph

import (
	"math/rand"
	"testing"

	"qolsr/internal/metric"
)

// wideStar builds a hub with n direct neighbors (n > 64 exercises the
// multi-block bitsets) plus one 2-hop target behind every neighbor.
func wideStar(t *testing.T, n int, rng *rand.Rand) *Graph {
	t.Helper()
	g := New(1 + 2*n)
	for i := 1; i <= n; i++ {
		e := g.MustAddEdge(0, int32(i))
		if err := g.SetWeight("bandwidth", e, float64(1+rng.Intn(12))); err != nil {
			t.Fatal(err)
		}
		e = g.MustAddEdge(int32(i), int32(n+i))
		if err := g.SetWeight("bandwidth", e, float64(1+rng.Intn(12))); err != nil {
			t.Fatal(err)
		}
	}
	// A few cross links among neighbors so indirect optimal paths exist.
	for i := 1; i < n; i += 3 {
		if _, ok := g.EdgeBetween(int32(i), int32(i+1)); !ok {
			e := g.MustAddEdge(int32(i), int32(i+1))
			if err := g.SetWeight("bandwidth", e, float64(1+rng.Intn(12))); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g
}

// With more than 64 one-hop neighbors the first-hop bitsets span multiple
// 64-bit blocks; the fast paths must agree with the reference there too.
func TestFirstHopsMultiBlockBitsets(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	const n = 90
	g := wideStar(t, n, rng)
	lv := NewLocalView(g, 0)
	if len(lv.N1) != n {
		t.Fatalf("N1 = %d, want %d", len(lv.N1), n)
	}
	m := metric.Bandwidth()
	w := metricWeights(g, m)
	fast, err := ComputeFirstHops(lv, m, w)
	if err != nil {
		t.Fatal(err)
	}
	ref := FirstHopsReference(lv, m, w)
	for _, v := range lv.Targets() {
		for i := int32(0); int(i) < len(lv.N1); i++ {
			if fast.Contains(v, i) != ref.Contains(v, i) {
				t.Fatalf("target %d hop pos %d: fast=%v ref=%v",
					v, i, fast.Contains(v, i), ref.Contains(v, i))
			}
		}
		if fast.Count(v) != ref.Count(v) {
			t.Fatalf("target %d: Count fast=%d ref=%d", v, fast.Count(v), ref.Count(v))
		}
	}
	// ForEach must emit ascending positions and cover high blocks.
	sawHigh := false
	for _, v := range lv.Targets() {
		last := int32(-1)
		fast.ForEach(v, func(i int32) {
			if i <= last {
				t.Fatalf("ForEach order violated: %d after %d", i, last)
			}
			last = i
			if i >= 64 {
				sawHigh = true
			}
		})
	}
	if !sawHigh {
		t.Error("no first hop beyond position 64; test lost its point")
	}
}

// FNBP-style consumers use Members; verify it matches ForEach on wide views.
func TestFirstHopsMembersWide(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	g := wideStar(t, 70, rng)
	lv := NewLocalView(g, 0)
	m := metric.Bandwidth()
	w := metricWeights(g, m)
	fh, err := ComputeFirstHops(lv, m, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range lv.Targets() {
		members := fh.Members(v)
		if len(members) != fh.Count(v) {
			t.Fatalf("target %d: |Members| %d != Count %d", v, len(members), fh.Count(v))
		}
		for _, x := range members {
			if !fh.Contains(v, lv.N1Index(x)) {
				t.Fatalf("target %d: member %d not Contained", v, x)
			}
		}
	}
}
