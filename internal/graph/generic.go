package graph

import (
	"fmt"

	"qolsr/internal/metric"
)

// GenericSearch is the result of a semiring Dijkstra: optimal costs of
// arbitrary comparable type, used by the multi-criterion future-work
// extension (metric.Lexicographic) and by QOLSR's min-hop-then-QoS routing.
type GenericSearch[C metric.Cost] struct {
	Source  int32
	Cost    []C
	Reached []bool
	prev    []int32
}

// PathTo returns one optimal path to t (source first), or nil when t was not
// reached.
func (gs *GenericSearch[C]) PathTo(t int32) []int32 {
	if !gs.Reached[t] {
		return nil
	}
	var rev []int32
	for x := t; x != -1; x = gs.prev[x] {
		rev = append(rev, x)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// DijkstraGeneric computes optimal path costs from src under semiring s. Link
// costs are derived from the graph's weight channels via s.LinkCost; every
// channel the semiring needs must be populated for every edge. When view is
// non-nil the search is confined to E_view; when exclude >= 0 that node is
// treated as absent.
func DijkstraGeneric[C metric.Cost](g *Graph, s metric.Semiring[C], src int32, view *LocalView, exclude int32) (*GenericSearch[C], error) {
	n := g.N()
	gs := &GenericSearch[C]{
		Source:  src,
		Cost:    make([]C, n),
		Reached: make([]bool, n),
		prev:    make([]int32, n),
	}
	for i := range gs.prev {
		gs.prev[i] = -2
		gs.Cost[i] = s.Worst()
	}
	if src == exclude || (view != nil && !view.InView(src)) {
		return gs, nil
	}

	// Precompute link costs once per edge.
	linkCost := make([]C, g.M())
	channels := make(map[string][]float64)
	for _, ch := range g.Channels() {
		ws, err := g.Weights(ch)
		if err != nil {
			return nil, err
		}
		channels[ch] = ws
	}
	wmap := make(map[string]float64, len(channels))
	for e := 0; e < g.M(); e++ {
		for ch, ws := range channels {
			wmap[ch] = ws[e]
		}
		c, err := s.LinkCost(wmap)
		if err != nil {
			return nil, fmt.Errorf("graph: edge %d: %w", e, err)
		}
		linkCost[e] = c
	}

	gs.Cost[src] = s.Identity()
	gs.prev[src] = -1
	done := make([]bool, n)
	type item struct {
		cost C
		node int32
	}
	heap := []item{{cost: gs.Cost[src], node: src}}
	push := func(it item) {
		heap = append(heap, it)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !s.Better(heap[i].cost, heap[p].cost) {
				break
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	pop := func() item {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			l, r, best := 2*i+1, 2*i+2, i
			if l < len(heap) && s.Better(heap[l].cost, heap[best].cost) {
				best = l
			}
			if r < len(heap) && s.Better(heap[r].cost, heap[best].cost) {
				best = r
			}
			if best == i {
				break
			}
			heap[i], heap[best] = heap[best], heap[i]
			i = best
		}
		return top
	}

	for len(heap) > 0 {
		top := pop()
		x := top.node
		if done[x] {
			continue
		}
		done[x] = true
		gs.Reached[x] = true
		for _, arc := range g.Arcs(x) {
			y := arc.To
			if y == exclude || done[y] {
				continue
			}
			if view != nil && !view.HasViewEdge(x, y) {
				continue
			}
			c := s.Combine(gs.Cost[x], linkCost[arc.Edge])
			if gs.prev[y] == -2 || s.Better(c, gs.Cost[y]) {
				gs.Cost[y] = c
				gs.prev[y] = x
				push(item{cost: c, node: y})
			}
		}
	}
	return gs, nil
}
