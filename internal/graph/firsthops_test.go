package graph

import (
	"math/rand"
	"testing"

	"qolsr/internal/metric"
)

// firstHopImplementations enumerates the three fP implementations so every
// test can cross-check them.
func firstHopImplementations(view *LocalView, m metric.Metric, w []float64, t *testing.T) map[string]*FirstHops {
	t.Helper()
	fast, err := ComputeFirstHops(view, m, w)
	if err != nil {
		t.Fatalf("ComputeFirstHops: %v", err)
	}
	ref := FirstHopsReference(view, m, w)
	return map[string]*FirstHops{"fast": fast, "reference": ref}
}

func TestFirstHopsDirectLinkOptimal(t *testing.T) {
	// u(0)-v(1) direct link 10, alternative u-w(2)-v of bottleneck 5:
	// fP(u,v) = {v} (direct optimal).
	g := New(3)
	type ew struct {
		a, b int32
		w    float64
	}
	for _, s := range []ew{{0, 1, 10}, {0, 2, 5}, {2, 1, 9}} {
		e := g.MustAddEdge(s.a, s.b)
		if err := g.SetWeight("bandwidth", e, s.w); err != nil {
			t.Fatal(err)
		}
	}
	lv := NewLocalView(g, 0)
	m := metric.Bandwidth()
	w := metricWeights(g, m)
	for name, fh := range firstHopImplementations(lv, m, w, t) {
		members := fh.Members(1)
		if len(members) != 1 || members[0] != 1 {
			t.Errorf("%s: fP(u,v) = %v, want {v}", name, members)
		}
		if fh.Dist[1] != 10 {
			t.Errorf("%s: value = %v, want 10", name, fh.Dist[1])
		}
	}
}

func TestFirstHopsIndirectBetter(t *testing.T) {
	// Paper Fig. 2 situation for v4: direct link u-v4 = 3, path
	// u-v1-v5-v4 = 5: fP = {v1}.
	g := New(4) // 0=u 1=v1 2=v5 3=v4
	type ew struct {
		a, b int32
		w    float64
	}
	for _, s := range []ew{{0, 3, 3}, {0, 1, 5}, {1, 2, 5}, {2, 3, 5}} {
		e := g.MustAddEdge(s.a, s.b)
		if err := g.SetWeight("bandwidth", e, s.w); err != nil {
			t.Fatal(err)
		}
	}
	lv := NewLocalView(g, 0)
	m := metric.Bandwidth()
	w := metricWeights(g, m)
	for name, fh := range firstHopImplementations(lv, m, w, t) {
		members := fh.Members(3)
		if len(members) != 1 || members[0] != 1 {
			t.Errorf("%s: fP(u,v4) = %v, want {v1}", name, members)
		}
		if fh.Dist[3] != 5 {
			t.Errorf("%s: B̃W(u,v4) = %v, want 5", name, fh.Dist[3])
		}
		// Direct link weight exposed for the ≺ ordering.
		if got := fh.DirectWeight[lv.N1Index(3)]; got != 3 {
			t.Errorf("%s: direct weight = %v, want 3", name, got)
		}
	}
}

func TestFirstHopsTiedPaths(t *testing.T) {
	// Paper Fig. 2: PBW(u,v3) = {u v2 v3, u v1 v3}, both of value 4 ->
	// fP = {v1, v2}.
	g := New(4) // 0=u 1=v1 2=v2 3=v3
	type ew struct {
		a, b int32
		w    float64
	}
	for _, s := range []ew{{0, 1, 5}, {0, 2, 5}, {1, 3, 4}, {2, 3, 4}} {
		e := g.MustAddEdge(s.a, s.b)
		if err := g.SetWeight("bandwidth", e, s.w); err != nil {
			t.Fatal(err)
		}
	}
	lv := NewLocalView(g, 0)
	m := metric.Bandwidth()
	w := metricWeights(g, m)
	for name, fh := range firstHopImplementations(lv, m, w, t) {
		members := fh.Members(3)
		if len(members) != 2 || members[0] != 1 || members[1] != 2 {
			t.Errorf("%s: fP(u,v3) = %v, want {v1,v2}", name, members)
		}
		if fh.Count(3) != 2 {
			t.Errorf("%s: Count = %d", name, fh.Count(3))
		}
	}
}

func TestFirstHopsDelayLine(t *testing.T) {
	// u(0)-a(1)-b(2), delays 1,1; plus direct u-b of delay 5:
	// fP(u,b) = {a}; fP(u,a) = {a}.
	g := New(3)
	type ew struct {
		a, b int32
		w    float64
	}
	for _, s := range []ew{{0, 1, 1}, {1, 2, 1}, {0, 2, 5}} {
		e := g.MustAddEdge(s.a, s.b)
		if err := g.SetWeight("delay", e, s.w); err != nil {
			t.Fatal(err)
		}
	}
	lv := NewLocalView(g, 0)
	m := metric.Delay()
	w := metricWeights(g, m)
	for name, fh := range firstHopImplementations(lv, m, w, t) {
		if got := fh.Members(2); len(got) != 1 || got[0] != 1 {
			t.Errorf("%s: fP(u,b) = %v, want {a}", name, got)
		}
		if got := fh.Members(1); len(got) != 1 || got[0] != 1 {
			t.Errorf("%s: fP(u,a) = %v, want {a}", name, got)
		}
		if fh.Dist[2] != 2 {
			t.Errorf("%s: D̃(u,b) = %v, want 2", name, fh.Dist[2])
		}
	}
}

// Paths through a 2-hop neighbor to another 2-hop neighbor are legal inside
// G_u as long as every edge touches a 1-hop neighbor.
func TestFirstHopsPathThroughTwoHopNode(t *testing.T) {
	// u(0)-a(1)-x(2)-b(3): wait, x-b is a 2hop-2hop edge... instead:
	// u-a, a-x, x-c? Use: u-a(1) w5, a-x(2) w5, u-b(3) w1, b-y(4) w1,
	// x-b w5 => y reachable as u-a-x-b-y? x-b touches b in N1: visible.
	type ew struct {
		a, b int32
		w    float64
	}
	g := New(5)
	for _, s := range []ew{{0, 1, 5}, {1, 2, 5}, {0, 3, 1}, {3, 4, 1}, {2, 3, 5}} {
		e := g.MustAddEdge(s.a, s.b)
		if err := g.SetWeight("bandwidth", e, s.w); err != nil {
			t.Fatal(err)
		}
	}
	lv := NewLocalView(g, 0)
	m := metric.Bandwidth()
	w := metricWeights(g, m)
	for name, fh := range firstHopImplementations(lv, m, w, t) {
		// Widest u->y: u-a-x-b-y bottleneck 1 vs u-b-y bottleneck 1:
		// tie at 1 (last link limits). Both a and b are first hops.
		members := fh.Members(4)
		if len(members) != 2 {
			t.Errorf("%s: fP(u,y) = %v, want {a,b}", name, members)
		}
		// Widest u->b must be 5 through a,x.
		if fh.Dist[3] != 5 {
			t.Errorf("%s: B̃W(u,b) = %v, want 5", name, fh.Dist[3])
		}
		if got := fh.Members(3); len(got) != 1 || got[0] != 1 {
			t.Errorf("%s: fP(u,b) = %v, want {a}", name, got)
		}
	}
}

func TestFirstHopsFastMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	metrics := []metric.Metric{metric.Delay(), metric.Bandwidth()}
	for trial := 0; trial < 40; trial++ {
		n := 8 + rng.Intn(10)
		g := randomConnectedGraph(rng, n, 0.25)
		u := int32(rng.Intn(n))
		lv := NewLocalView(g, u)
		for _, m := range metrics {
			w := metricWeights(g, m)
			fast, err := ComputeFirstHops(lv, m, w)
			if err != nil {
				t.Fatalf("ComputeFirstHops: %v", err)
			}
			ref := FirstHopsReference(lv, m, w)
			for _, v := range lv.Targets() {
				for i := int32(0); int(i) < len(lv.N1); i++ {
					if fast.Contains(v, i) != ref.Contains(v, i) {
						t.Fatalf("trial %d %s: fP(u=%d,v=%d) disagreement on hop %d: fast=%v ref=%v (fast=%v ref=%v)",
							trial, m.Name(), u, v, lv.N1[i],
							fast.Contains(v, i), ref.Contains(v, i),
							fast.Members(v), ref.Members(v))
					}
				}
			}
		}
	}
}

func TestFirstHopsFastMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	metrics := []metric.Metric{metric.Delay(), metric.Bandwidth()}
	for trial := 0; trial < 25; trial++ {
		n := 7 + rng.Intn(5)
		g := randomConnectedGraph(rng, n, 0.3)
		u := int32(rng.Intn(n))
		lv := NewLocalView(g, u)
		for _, m := range metrics {
			w := metricWeights(g, m)
			fast, err := ComputeFirstHops(lv, m, w)
			if err != nil {
				t.Fatalf("ComputeFirstHops: %v", err)
			}
			for _, v := range lv.Targets() {
				want := BruteFirstHops(lv, m, w, v)
				got := fast.Members(v)
				if len(got) != len(want) {
					t.Fatalf("trial %d %s: fP(u=%d,v=%d) = %v, brute = %v",
						trial, m.Name(), u, v, got, want)
				}
				for _, x := range got {
					if !want[x] {
						t.Fatalf("trial %d %s: spurious first hop %d for v=%d",
							trial, m.Name(), x, v)
					}
				}
			}
		}
	}
}

// v ∈ fP(u,v) iff the direct link is optimal (paper Sec. III-B) — verified
// structurally across random graphs.
func TestFirstHopsSelfMembershipIffDirectOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	for trial := 0; trial < 20; trial++ {
		g := randomConnectedGraph(rng, 12, 0.3)
		u := int32(rng.Intn(12))
		lv := NewLocalView(g, u)
		for _, m := range []metric.Metric{metric.Delay(), metric.Bandwidth()} {
			w := metricWeights(g, m)
			fh, err := ComputeFirstHops(lv, m, w)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range lv.N1 {
				directOptimal := fh.DirectWeight[i] == fh.Dist[v]
				if fh.Contains(v, int32(i)) != directOptimal {
					t.Fatalf("%s: self-membership of %d = %v, direct-optimal = %v",
						m.Name(), v, fh.Contains(v, int32(i)), directOptimal)
				}
			}
		}
	}
}

func TestComputeFirstHopsRejectsUnknownKind(t *testing.T) {
	g := New(2)
	e := g.MustAddEdge(0, 1)
	if err := g.SetWeight("x", e, 1); err != nil {
		t.Fatal(err)
	}
	lv := NewLocalView(g, 0)
	w, _ := g.Weights("x")
	if _, err := ComputeFirstHops(lv, badKindMetric{}, w); err == nil {
		t.Error("unknown metric kind accepted")
	}
}

type badKindMetric struct{ metric.Metric }

func (badKindMetric) Kind() metric.Kind { return metric.Kind(99) }
func (badKindMetric) Name() string      { return "bad" }
