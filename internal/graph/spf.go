package graph

import (
	"fmt"

	"qolsr/internal/metric"
)

// SPF maintains a single-source shortest-path solution over a mutating
// graph, repairing only the affected region instead of rebuilding from
// scratch. It is the dynamic counterpart of Scratch.Dijkstra and converges
// to the exact same canonical solution, which is a pure function of the
// current edge set, weights and node IDs — the property that makes
// "repair" and "rebuild from scratch" bit-identical (the cross-check tests
// pin this down).
//
// The canonical solution is hierarchical. First, optimal path values under
// the metric (unique for admissible metrics). Then, hop counts: the
// shortest hop distance from the source over the *tight* arcs — arcs x→y
// with Combine(dist[x], w) == dist[y] — i.e. the fewest hops among paths
// every prefix of which is value-optimal. Last, the predecessor: among
// tight minimum-hop predecessors, the one with the smallest NodeID. The
// one-pass canonical Dijkstra computes the same triple thanks to its
// global best-first order.
//
// Repair mirrors that hierarchy in two waves, because for concave metrics
// a single lexicographic (value, hops) label is not monotone under edge
// extension: a node's value can improve while paths through it lose hops
// support, so one label-correcting wave could retain hop counts a full
// rebuild would never produce. Wave 1 settles values (classic dynamic SPF:
// invalidate the subtrees hanging off touched tree edges, reseed from the
// intact frontier, run a monotone label-correcting wave). Wave 2 then
// rebuilds hop counts and predecessors over the tight-arc graph for every
// node whose value changed or that a touched edge could re-support —
// strictly monotone (+1 per arc), hence incrementally sound.
//
// Usage: mutate the underlying graph (AddEdge / RemoveEdge / SetWeight /
// AddNode), report every touched endpoint pair with Touch, then call
// Repair before reading the solution. Touches accumulate, so a batch of
// topology changes costs one repair.
type SPF struct {
	g       *Graph
	m       metric.Metric
	channel string
	src     int32

	dist []float64
	hops []int32
	prev []int32 // -1 source, -2 unreached

	touched [][2]int32 // endpoint pairs mutated since the last Repair
	full    bool       // a full rebuild is pending (initial state)

	// Repair scratch.
	vheap   []heapItem
	hheap   []hopItem
	mark    []uint8 // per-repair affected classification
	changed []bool  // nodes whose value changed this repair
	chain   []int32
	seeded  []bool
}

const (
	markUnknown uint8 = iota
	markAffected
	markSafe
)

// hopInf is the "hops unknown" sentinel during wave 2.
const hopInf = int32(1) << 30

// hopItem is one pending entry of the hop wave's frontier.
type hopItem struct {
	hops int32
	node int32
}

// NewSPF builds the solver and computes the initial solution from src over
// the named weight channel.
func NewSPF(g *Graph, m metric.Metric, channel string, src int32) (*SPF, error) {
	if _, err := g.Weights(channel); err != nil {
		return nil, err
	}
	if src < 0 || int(src) >= g.N() {
		return nil, fmt.Errorf("graph: spf source %d out of range [0,%d)", src, g.N())
	}
	s := &SPF{g: g, m: m, channel: channel, src: src, full: true}
	if err := s.Repair(); err != nil {
		return nil, err
	}
	return s, nil
}

// Graph returns the underlying (mutable) graph.
func (s *SPF) Graph() *Graph { return s.g }

// Source returns the search origin.
func (s *SPF) Source() int32 { return s.src }

// Touch records that the edge between a and b was added, removed, or
// reweighted. Call it after the graph mutation; order within a batch does
// not matter.
func (s *SPF) Touch(a, b int32) {
	s.touched = append(s.touched, [2]int32{a, b})
}

// Invalidate discards the cached solution; the next Repair rebuilds from
// scratch. It is the escape hatch for callers that lost track of deltas.
func (s *SPF) Invalidate() { s.full = true }

// Value returns the optimal path value to x, or the metric's Worst when x
// is unreachable.
func (s *SPF) Value(x int32) float64 { return s.dist[x] }

// Hops returns the canonical hop count of x's recorded path (0 for the
// source and for unreachable nodes).
func (s *SPF) Hops(x int32) int32 { return s.hops[x] }

// Reachable reports whether x is currently reachable from the source.
func (s *SPF) Reachable(x int32) bool { return s.prev[x] != -2 }

// Prev returns the canonical predecessor of x (-1 for the source, -2 when
// unreachable).
func (s *SPF) Prev(x int32) int32 { return s.prev[x] }

// Repair processes all recorded touches and restores the canonical
// solution. With no touches pending it is a no-op (unless a full rebuild
// is scheduled).
func (s *SPF) Repair() error {
	w, err := s.g.Weights(s.channel)
	if err != nil {
		return err
	}
	s.grow()
	if s.full {
		s.full = false
		s.touched = s.touched[:0]
		s.rebuild(w)
		return nil
	}
	if len(s.touched) == 0 {
		return nil
	}
	n := s.g.N()
	changed := s.changed[:n]
	for i := range changed {
		changed[i] = false
	}

	// Wave 1 — values. Invalidate the value of every node whose shortest-
	// path tree ran through a touched tree edge, then settle values with a
	// label-correcting wave seeded from the intact frontier and the
	// touched endpoints.
	mark := s.mark[:n]
	for i := range mark {
		mark[i] = markUnknown
	}
	mark[s.src] = markSafe
	roots := false
	for _, p := range s.touched {
		a, b := p[0], p[1]
		if s.prev[b] == a {
			mark[b] = markAffected
			roots = true
		} else if s.prev[a] == b {
			mark[a] = markAffected
			roots = true
		}
	}
	worst := s.m.Worst()
	if roots {
		for x := int32(0); int(x) < n; x++ {
			s.classify(x, mark)
		}
		for x := int32(0); int(x) < n; x++ {
			if mark[x] == markAffected {
				s.dist[x] = worst
				changed[x] = true
			}
		}
	}
	seeded := s.seeded[:n]
	for i := range seeded {
		seeded[i] = false
	}
	vheap := s.vheap[:0]
	vpush := func(x int32) {
		if !seeded[x] && s.dist[x] != worst {
			seeded[x] = true
			vheap = pushHeap(vheap, s.m, heapItem{value: s.dist[x], node: x})
		}
	}
	if roots {
		for x := int32(0); int(x) < n; x++ {
			if mark[x] != markAffected {
				continue
			}
			for _, arc := range s.g.Arcs(x) {
				if mark[arc.To] != markAffected {
					vpush(arc.To)
				}
			}
		}
	}
	for _, p := range s.touched {
		vpush(p[0])
		vpush(p[1])
	}
	s.valueWave(vheap, w, changed)

	// Wave 2 — hops and predecessors over the tight arcs. Every node whose
	// value changed, plus every touched endpoint, may have gained or lost
	// hop support; so may anything downstream of them in the predecessor
	// tree. Invalidate that closure and settle it again.
	for i := range mark {
		mark[i] = markUnknown
	}
	mark[s.src] = markSafe
	for x := int32(0); int(x) < n; x++ {
		if changed[x] && x != s.src {
			mark[x] = markAffected
		}
	}
	for _, p := range s.touched {
		if p[0] != s.src {
			mark[p[0]] = markAffected
		}
		if p[1] != s.src {
			mark[p[1]] = markAffected
		}
	}
	s.touched = s.touched[:0]
	for x := int32(0); int(x) < n; x++ {
		s.classify(x, mark)
	}
	for i := range seeded {
		seeded[i] = false
	}
	hheap := s.hheap[:0]
	for x := int32(0); int(x) < n; x++ {
		if mark[x] != markAffected {
			continue
		}
		s.hops[x] = hopInf
		s.prev[x] = -2
	}
	for x := int32(0); int(x) < n; x++ {
		if mark[x] != markAffected {
			continue
		}
		for _, arc := range s.g.Arcs(x) {
			z := arc.To
			if mark[z] != markAffected && !seeded[z] && (s.prev[z] != -2 || z == s.src) {
				seeded[z] = true
				hheap = pushHopHeap(hheap, hopItem{hops: s.hops[z], node: z})
			}
		}
	}
	s.hopWave(hheap, w)
	for x := int32(0); int(x) < n; x++ {
		if mark[x] == markAffected && s.prev[x] == -2 {
			s.hops[x] = 0 // unreachable: normalise
		}
	}
	return nil
}

// grow extends the label arrays when nodes were appended to the graph.
func (s *SPF) grow() {
	n := s.g.N()
	for len(s.dist) < n {
		s.dist = append(s.dist, s.m.Worst())
		s.hops = append(s.hops, 0)
		s.prev = append(s.prev, -2)
	}
	if cap(s.mark) < n {
		s.mark = make([]uint8, n)
	}
	s.mark = s.mark[:n]
	if cap(s.changed) < n {
		s.changed = make([]bool, n)
	}
	s.changed = s.changed[:n]
	if cap(s.seeded) < n {
		s.seeded = make([]bool, n)
	}
	s.seeded = s.seeded[:n]
}

// classify resolves x's affected/safe state by walking its prev chain to
// the first node with a known state, then unwinding. Unreached nodes and
// the source anchor safe chains.
func (s *SPF) classify(x int32, mark []uint8) {
	if mark[x] != markUnknown {
		return
	}
	chain := s.chain[:0]
	c := x
	var verdict uint8
	for {
		if mark[c] != markUnknown {
			verdict = mark[c]
			break
		}
		p := s.prev[c]
		if p < 0 {
			verdict = markSafe
			break
		}
		chain = append(chain, c)
		c = p
	}
	for _, y := range chain {
		mark[y] = verdict
	}
	s.chain = chain[:0]
}

// rebuild recomputes the full solution in place: a value wave seeded with
// the source over cleared labels (which degenerates to Dijkstra), then a
// hop wave from the source over the tight arcs.
func (s *SPF) rebuild(w []float64) {
	worst := s.m.Worst()
	for i := range s.dist {
		s.dist[i] = worst
		s.hops[i] = hopInf
		s.prev[i] = -2
	}
	s.dist[s.src] = s.m.Identity()
	vheap := s.vheap[:0]
	vheap = pushHeap(vheap, s.m, heapItem{value: s.dist[s.src], node: s.src})
	s.valueWave(vheap, w, nil)
	s.hops[s.src] = 0
	s.prev[s.src] = -1
	hheap := s.hheap[:0]
	hheap = pushHopHeap(hheap, hopItem{hops: 0, node: s.src})
	s.hopWave(hheap, w)
	for i := range s.hops {
		if s.prev[i] == -2 {
			s.hops[i] = 0
		}
	}
}

// valueWave settles path values: a lazy-deletion best-first loop that
// re-pushes on strict improvement. Values only ever improve during the
// wave, the metric's Combine never improves a path, and a popped entry
// equal to the node's current value is final — so the wave converges to
// the unique value fixpoint from any correct seed set. changed, when
// non-nil, records every node whose value was written.
func (s *SPF) valueWave(heap []heapItem, w []float64, changed []bool) {
	g, m := s.g, s.m
	worst := m.Worst()
	for len(heap) > 0 {
		var top heapItem
		top, heap = popHeap(heap, m)
		x := top.node
		if s.dist[x] == worst || top.value != s.dist[x] {
			continue // stale entry
		}
		for _, arc := range g.Arcs(x) {
			y := arc.To
			cand := m.Combine(s.dist[x], w[arc.Edge])
			if s.dist[y] == worst || m.Better(cand, s.dist[y]) {
				if y == s.src {
					continue
				}
				s.dist[y] = cand
				if changed != nil {
					changed[y] = true
				}
				heap = pushHeap(heap, m, heapItem{value: cand, node: y})
			}
		}
	}
	s.vheap = heap[:0]
}

// hopWave settles hop counts and canonical predecessors over the tight
// arcs (arcs whose extension reproduces the head's settled value). Hop
// extension is strictly monotone (+1), so this is plain dynamic BFS: every
// minimum-hop tight predecessor pops before its successors, improvements
// re-push, and equal-hop offers from smaller NodeIDs rewrite the
// predecessor in place.
func (s *SPF) hopWave(heap []hopItem, w []float64) {
	g, m := s.g, s.m
	worst := m.Worst()
	for len(heap) > 0 {
		var top hopItem
		top, heap = popHopHeap(heap)
		x := top.node
		if top.hops != s.hops[x] || s.prev[x] == -2 {
			continue // stale entry
		}
		for _, arc := range g.Arcs(x) {
			y := arc.To
			if y == s.src || s.dist[y] == worst {
				continue
			}
			if m.Combine(s.dist[x], w[arc.Edge]) != s.dist[y] {
				continue // not a tight arc
			}
			switch cand := s.hops[x] + 1; {
			case cand < s.hops[y]:
				s.hops[y] = cand
				s.prev[y] = x
				heap = pushHopHeap(heap, hopItem{hops: cand, node: y})
			case cand == s.hops[y] && g.ID(x) < g.ID(s.prev[y]):
				s.prev[y] = x
			}
		}
	}
	s.hheap = heap[:0]
}

// pushHopHeap inserts it into the min-heap ordered by hops.
func pushHopHeap(h []hopItem, it hopItem) []hopItem {
	h = append(h, it)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[i].hops >= h[parent].hops {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

// popHopHeap removes and returns the minimum entry.
func popHopHeap(h []hopItem) (hopItem, []hopItem) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && h[l].hops < h[min].hops {
			min = l
		}
		if r < len(h) && h[r].hops < h[min].hops {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top, h
}

// FirstHops fills first[x] with the first hop after the source on the
// canonical path to x (-1 for the source and unreachable nodes), reusing
// the buffer when large enough. It resolves predecessor chains with
// memoised walks, so the pass is linear even though repair leaves no
// global pop order behind.
func (s *SPF) FirstHops(first []int32) []int32 {
	n := s.g.N()
	first = resizeInt32(first, n)
	const unset = -3
	for i := range first {
		first[i] = unset
	}
	first[s.src] = -1
	for x := int32(0); int(x) < n; x++ {
		if first[x] != unset {
			continue
		}
		chain := s.chain[:0]
		c := x
		for first[c] == unset {
			p := s.prev[c]
			if p == -2 {
				first[c] = -1
				break
			}
			if p == s.src {
				first[c] = c
				break
			}
			chain = append(chain, c)
			c = p
		}
		for i := len(chain) - 1; i >= 0; i-- {
			y := chain[i]
			if p := s.prev[y]; p == s.src {
				first[y] = y
			} else {
				first[y] = first[p]
			}
		}
		s.chain = chain[:0]
	}
	return first
}
