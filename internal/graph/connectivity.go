package graph

// Reachable returns a bitmap of the nodes reachable from src by BFS.
func Reachable(g *Graph, src int32) []bool {
	seen := make([]bool, g.N())
	if g.N() == 0 {
		return seen
	}
	seen[src] = true
	queue := []int32{src}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, arc := range g.Arcs(x) {
			if !seen[arc.To] {
				seen[arc.To] = true
				queue = append(queue, arc.To)
			}
		}
	}
	return seen
}

// Connected reports whether the graph is connected (vacuously true for
// n <= 1).
func Connected(g *Graph) bool {
	if g.N() <= 1 {
		return true
	}
	seen := Reachable(g, 0)
	for _, s := range seen {
		if !s {
			return false
		}
	}
	return true
}

// Components returns the connected component id of every node and the number
// of components.
func Components(g *Graph) ([]int32, int) {
	comp := make([]int32, g.N())
	for i := range comp {
		comp[i] = -1
	}
	next := int32(0)
	for s := int32(0); int(s) < g.N(); s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = next
		queue := []int32{s}
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, arc := range g.Arcs(x) {
				if comp[arc.To] == -1 {
					comp[arc.To] = next
					queue = append(queue, arc.To)
				}
			}
		}
		next++
	}
	return comp, int(next)
}

// HopDistances returns BFS hop counts from src (-1 when unreachable).
func HopDistances(g *Graph, src int32) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{src}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, arc := range g.Arcs(x) {
			if dist[arc.To] == -1 {
				dist[arc.To] = dist[x] + 1
				queue = append(queue, arc.To)
			}
		}
	}
	return dist
}
