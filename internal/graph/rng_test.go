package graph

import (
	"math/rand"
	"testing"

	"qolsr/internal/metric"
)

func TestReduceRNGRemovesDominatedEdge(t *testing.T) {
	// Triangle with bandwidth: edge 0-1 (w=2) dominated by 0-2 (w=5) and
	// 2-1 (w=5): removed. For delay the same weights mean 0-1 is the
	// cheapest edge: kept, while 0-2 and 2-1 survive too (no witness).
	build := func() *Graph {
		g := New(3)
		type ew struct {
			a, b int32
			w    float64
		}
		for _, s := range []ew{{0, 1, 2}, {0, 2, 5}, {2, 1, 5}} {
			e := g.MustAddEdge(s.a, s.b)
			if err := g.SetWeight("bandwidth", e, s.w); err != nil {
				t.Fatal(err)
			}
			if err := g.SetWeight("delay", e, s.w); err != nil {
				t.Fatal(err)
			}
		}
		return g
	}

	g := build()
	lv := NewLocalView(g, 0)
	rv := ReduceRNG(lv, metric.Bandwidth(), metricWeights(g, metric.Bandwidth()))
	if rv.HasEdge(0, 1) {
		t.Error("bandwidth: dominated edge 0-1 kept")
	}
	if !rv.HasEdge(0, 2) || !rv.HasEdge(2, 1) {
		t.Error("bandwidth: wide edges removed")
	}
	if rv.SurvivingDegree() != 1 {
		t.Errorf("SurvivingDegree = %d, want 1", rv.SurvivingDegree())
	}

	rvD := ReduceRNG(lv, metric.Delay(), metricWeights(g, metric.Delay()))
	if !rvD.HasEdge(0, 1) {
		t.Error("delay: cheapest edge removed")
	}
	// Edge 0-2 (w=5): witness node 1 with legs 0-1 (2) and 1-2 (5): leg
	// 1-2 is not strictly better than 5, so 0-2 survives.
	if !rvD.HasEdge(0, 2) {
		t.Error("delay: edge 0-2 removed without strict witness")
	}
}

func TestReduceRNGEqualWeightsKeepEverything(t *testing.T) {
	// Strictness on both legs: an equilateral triangle loses no edge.
	g := New(3)
	for _, ab := range [][2]int32{{0, 1}, {1, 2}, {0, 2}} {
		e := g.MustAddEdge(ab[0], ab[1])
		if err := g.SetWeight("delay", e, 3); err != nil {
			t.Fatal(err)
		}
	}
	lv := NewLocalView(g, 0)
	rv := ReduceRNG(lv, metric.Delay(), metricWeights(g, metric.Delay()))
	for _, ab := range [][2]int32{{0, 1}, {1, 2}, {0, 2}} {
		if !rv.HasEdge(ab[0], ab[1]) {
			t.Errorf("edge %v removed despite equal weights", ab)
		}
	}
}

func TestReduceRNGHasEdgeMissing(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	if err := g.SetWeight("delay", 0, 1); err != nil {
		t.Fatal(err)
	}
	lv := NewLocalView(g, 0)
	rv := ReduceRNG(lv, metric.Delay(), metricWeights(g, metric.Delay()))
	if rv.HasEdge(0, 2) {
		t.Error("nonexistent edge reported present")
	}
}

// Property: the reduction never breaks connectivity of the view, because a
// removed edge always has a strictly better two-leg detour (the reduction
// contains a maximum/minimum spanning tree).
func TestReduceRNGPreservesViewConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		g := randomConnectedGraph(rng, 14, 0.3)
		u := int32(rng.Intn(14))
		lv := NewLocalView(g, u)
		for _, m := range []metric.Metric{metric.Delay(), metric.Bandwidth()} {
			w := metricWeights(g, m)
			rv := ReduceRNG(lv, m, w)
			// BFS from u over surviving view edges.
			seen := map[int32]bool{u: true}
			queue := []int32{u}
			for len(queue) > 0 {
				x := queue[0]
				queue = queue[1:]
				for _, arc := range g.Arcs(x) {
					if !lv.HasViewEdge(x, arc.To) || !rv.Keep[arc.Edge] || seen[arc.To] {
						continue
					}
					seen[arc.To] = true
					queue = append(queue, arc.To)
				}
			}
			for _, v := range lv.Targets() {
				if !seen[v] {
					t.Fatalf("trial %d %s: node %d disconnected by reduction", trial, m.Name(), v)
				}
			}
		}
	}
}

// Property: every surviving edge is not strictly dominated; every removed
// edge has a strict witness.
func TestReduceRNGWitnessSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 20; trial++ {
		g := randomConnectedGraph(rng, 12, 0.35)
		u := int32(rng.Intn(12))
		lv := NewLocalView(g, u)
		m := metric.Bandwidth()
		w := metricWeights(g, m)
		rv := ReduceRNG(lv, m, w)
		for _, e := range lv.ViewEdges(nil) {
			a, b := g.EdgeEndpoints(int(e))
			hasWitness := false
			for _, arcA := range g.Arcs(a) {
				z := arcA.To
				if z == b || !lv.HasViewEdge(a, z) {
					continue
				}
				eZB, ok := g.EdgeBetween(z, b)
				if !ok || !lv.HasViewEdge(z, b) {
					continue
				}
				if m.Better(w[arcA.Edge], w[e]) && m.Better(w[eZB], w[e]) {
					hasWitness = true
					break
				}
			}
			if rv.Keep[e] == hasWitness {
				t.Fatalf("trial %d: edge %d keep=%v but witness=%v", trial, e, rv.Keep[e], hasWitness)
			}
		}
	}
}
