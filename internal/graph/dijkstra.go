package graph

import (
	"qolsr/internal/metric"
)

// ShortestPaths is the result of a Dijkstra search: optimal path values from
// one source under one metric, with a single optimal predecessor per node for
// path extraction.
//
// The recorded predecessor tree is canonical: among paths of equal metric
// value the search prefers fewer hops, and among those the predecessor with
// the smallest node ID. The (Dist, prev) pair is therefore a pure function
// of the edge set, the weights, and the node IDs — independent of edge
// insertion order, node index assignment, and heap mechanics — which is the
// property that lets incremental SPF repair (see SPF) reproduce a full
// rebuild bit for bit.
type ShortestPaths struct {
	// Source is the search origin.
	Source int32
	// Dist maps each node to its optimal path value from Source, or
	// metric.Worst() when unreachable (or outside the searched view).
	Dist []float64
	// Reached lists reached nodes in pop order (Source first), which is
	// nondecreasing in the canonical (value, hops) key.
	Reached []int32

	prev []int32
	hops []int32
}

// PathTo returns one optimal path from the source to t as node indices
// (source first), or nil if t was not reached.
func (sp *ShortestPaths) PathTo(t int32) []int32 {
	if sp.prev[t] == -2 {
		return nil
	}
	var rev []int32
	for x := t; x != -1; x = sp.prev[x] {
		rev = append(rev, x)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Reachable reports whether t was reached by the search.
func (sp *ShortestPaths) Reachable(t int32) bool { return sp.prev[t] != -2 }

// FirstHops derives, for every reached node, the first hop after the source
// on the recorded optimal path and the path's hop count, in one linear pass
// over the pop order (a node's predecessor is always popped before the node,
// so predecessors are resolved first). first[x] is -1 for the source and for
// unreached nodes. The passed buffers are reused when large enough; pass nil
// to allocate fresh ones. It replaces one PathTo walk (and allocation) per
// destination when a whole routing table is being extracted.
func (sp *ShortestPaths) FirstHops(first, hops []int32) (f, h []int32) {
	n := len(sp.Dist)
	first = resizeInt32(first, n)
	hops = resizeInt32(hops, n)
	for i := range first {
		first[i] = -1
		hops[i] = 0
	}
	for _, x := range sp.Reached {
		switch p := sp.prev[x]; p {
		case -1: // the source itself
		case sp.Source:
			first[x] = x
			hops[x] = 1
		default:
			first[x] = first[p]
			hops[x] = hops[p] + 1
		}
	}
	return first, hops
}

// heapItem is one pending entry of the search frontier (lazy deletion).
type heapItem struct {
	value float64
	hops  int32
	node  int32
}

// keyLess is the canonical frontier order: better metric value first, fewer
// hops on ties. The predecessor-ID tie-break needs no heap participation —
// equal-key candidates only ever update prev in place.
func keyLess(m metric.Metric, a, b heapItem) bool {
	if m.Better(a.value, b.value) {
		return true
	}
	if m.Better(b.value, a.value) {
		return false
	}
	return a.hops < b.hops
}

// Dijkstra computes optimal path values from src in g under metric m with
// per-edge weights w (indexed by edge index, typically g.Weights(channel)).
//
// When view is non-nil the search is confined to the local view G_view: only
// edges of E_view are relaxed, so the result equals a search in the subgraph
// the paper calls G_u. When exclude >= 0 that node is treated as absent,
// which is how the first-hop oracle evaluates paths that must not revisit u.
//
// The metric's Combine must never improve a path (guaranteed by both
// additive metrics with positive weights and concave bottleneck metrics),
// which is the standard Dijkstra admissibility condition. Note that the
// canonical (value, hops, predecessor-ID) order is admissible whenever the
// metric is: extending a path never improves its value, and on equal values
// strictly increases its hop count.
//
// The result owns freshly-allocated buffers; repeated searches that do not
// retain their results should go through a Scratch instead.
func Dijkstra(g *Graph, m metric.Metric, w []float64, src int32, view *LocalView, exclude int32) *ShortestPaths {
	return new(Scratch).Dijkstra(g, m, w, src, view, exclude)
}

// Scratch holds reusable Dijkstra buffers so repeated searches over
// similarly-sized graphs allocate nothing once warm. It is the routing-table
// rebuild workhorse: a protocol node keeps one Scratch and re-runs its
// shortest-path search in place whenever its cached table is invalidated.
//
// The zero value is ready to use. A Scratch is not safe for concurrent use,
// and the ShortestPaths returned by its Dijkstra aliases the scratch buffers:
// it is valid only until the next call on the same Scratch.
type Scratch struct {
	sp   ShortestPaths
	done []bool
	heap []heapItem
}

// Reset releases the scratch's retained buffers. Buffers grow to the largest
// graph ever searched and are otherwise kept warm for reuse, so a scratch
// that served a one-off search over a big field pins O(N) memory for its
// owner's lifetime; Reset returns it to the zero value. The ShortestPaths
// most recently returned by Dijkstra aliases the released buffers and must
// not be used afterwards.
func (s *Scratch) Reset() { *s = Scratch{} }

// resizeInt32 returns buf with length n, reusing its storage when possible.
func resizeInt32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// Dijkstra is the package-level Dijkstra computed in the scratch's reusable
// buffers. The returned ShortestPaths is owned by the Scratch and is
// overwritten by the next call.
func (s *Scratch) Dijkstra(g *Graph, m metric.Metric, w []float64, src int32, view *LocalView, exclude int32) *ShortestPaths {
	n := g.N()
	sp := &s.sp
	sp.Source = src
	if cap(sp.Dist) < n {
		sp.Dist = make([]float64, n)
	}
	sp.Dist = sp.Dist[:n]
	sp.prev = resizeInt32(sp.prev, n)
	sp.hops = resizeInt32(sp.hops, n)
	sp.Reached = sp.Reached[:0]
	worst := m.Worst()
	for i := range sp.Dist {
		sp.Dist[i] = worst
		sp.prev[i] = -2
		sp.hops[i] = 0
	}
	if src == exclude || (view != nil && !view.InView(src)) {
		return sp
	}
	sp.Dist[src] = m.Identity()
	sp.prev[src] = -1

	if cap(s.done) < n {
		s.done = make([]bool, n)
	}
	done := s.done[:n]
	for i := range done {
		done[i] = false
	}
	heap := s.heap[:0]
	heap = pushHeap(heap, m, heapItem{value: sp.Dist[src], hops: 0, node: src})
	for len(heap) > 0 {
		var top heapItem
		top, heap = popHeap(heap, m)
		x := top.node
		if done[x] {
			continue
		}
		done[x] = true
		sp.Reached = append(sp.Reached, x)
		for _, arc := range g.Arcs(x) {
			y := arc.To
			if y == exclude || done[y] {
				continue
			}
			if view != nil && !view.HasViewEdge(x, y) {
				continue
			}
			cand := heapItem{
				value: m.Combine(sp.Dist[x], w[arc.Edge]),
				hops:  sp.hops[x] + 1,
				node:  y,
			}
			switch {
			case sp.prev[y] == -2 || keyLess(m, cand, heapItem{value: sp.Dist[y], hops: sp.hops[y]}):
				sp.Dist[y] = cand.value
				sp.hops[y] = cand.hops
				sp.prev[y] = x
				heap = pushHeap(heap, m, cand)
			case cand.value == sp.Dist[y] && cand.hops == sp.hops[y] && g.ID(x) < g.ID(sp.prev[y]):
				// Equal canonical key through a smaller-ID predecessor:
				// reroute the tree edge in place. The label (value, hops)
				// is unchanged, so no re-push is needed — and every such
				// candidate arrives before y pops, because its offerer's
				// key is strictly smaller than y's.
				sp.prev[y] = x
			}
		}
	}
	s.heap = heap[:0]
	return sp
}

// pushHeap inserts it into the binary heap ordered so that the best
// canonical key (under keyLess) sits at index 0.
func pushHeap(h []heapItem, m metric.Metric, it heapItem) []heapItem {
	h = append(h, it)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !keyLess(m, h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

// popHeap removes and returns the best entry.
func popHeap(h []heapItem, m metric.Metric) (heapItem, []heapItem) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h) && keyLess(m, h[l], h[best]) {
			best = l
		}
		if r < len(h) && keyLess(m, h[r], h[best]) {
			best = r
		}
		if best == i {
			break
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
	return top, h
}
