package graph

// EdgeAccum collects undirected weighted edges with first-writer-wins
// deduplication in a deterministic insertion order. It is the staging buffer
// for assembling a Graph from several per-source link maps whose precedence
// matters: insertion order decides downstream Dijkstra tie-breaks, so it must
// be a pure function of what was added, never of map iteration order.
//
// Reset lets one accumulator be reused across rebuilds without reallocating;
// the zero value needs a Reset (or a first Add) before use.
type EdgeAccum struct {
	order [][2]NodeID
	w     map[[2]NodeID]float64
}

// Reset clears the accumulator, keeping its storage for reuse.
func (ea *EdgeAccum) Reset() {
	ea.order = ea.order[:0]
	if ea.w == nil {
		ea.w = make(map[[2]NodeID]float64)
	} else {
		clear(ea.w)
	}
}

// Add stages the undirected edge {a,b} with weight w. Self-loops are ignored;
// the first writer of a pair wins.
func (ea *EdgeAccum) Add(a, b NodeID, w float64) {
	if a == b {
		return
	}
	if a > b {
		a, b = b, a
	}
	if ea.w == nil {
		ea.w = make(map[[2]NodeID]float64)
	}
	key := [2]NodeID{a, b}
	if _, dup := ea.w[key]; dup {
		return
	}
	ea.w[key] = w
	ea.order = append(ea.order, key)
}

// Build inserts the accumulated edges into g, in accumulation order, using
// index to map identifiers to node indices. Edges with an unmapped endpoint
// are skipped.
func (ea *EdgeAccum) Build(g *Graph, index map[NodeID]int32, channel string) {
	for _, key := range ea.order {
		ia, ok := index[key[0]]
		if !ok {
			continue
		}
		ib, ok := index[key[1]]
		if !ok {
			continue
		}
		e, err := g.AddEdge(ia, ib)
		if err != nil {
			continue
		}
		_ = g.SetWeight(channel, e, ea.w[key])
	}
}
