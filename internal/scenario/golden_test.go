package scenario

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// Regenerate the golden files after an intentional encoding change with:
//
//	go test ./internal/scenario -run TestGolden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite the scenario encoder golden files")

// goldenResult executes the ladder fixture for two replicates — the exact
// document the encoders must keep producing byte for byte.
func goldenResult(t *testing.T) *Result {
	t.Helper()
	sc := ladderScenario().WithDefaults()
	res := &Result{Scenario: sc, Seed: 1}
	for run := 0; run < 2; run++ {
		rr, err := Execute(context.Background(), sc, 1, run, nil)
		if err != nil {
			t.Fatal(err)
		}
		res.Runs = append(res.Runs, rr)
	}
	return res
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file; inspect the diff and rerun with -update-golden if intended\ngot:\n%s", name, got)
	}
}

func TestGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenResult(t).EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "ladder.json.golden", buf.Bytes())
}

func TestGoldenCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenResult(t).EncodeCSV(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "ladder.csv.golden", buf.Bytes())
}
