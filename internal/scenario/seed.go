package scenario

import "qolsr/internal/rng"

// deriveSeed chains the scenario's base seed with a purpose label and the
// run index into an independent RNG stream (splitmix64, the same mixing
// function the sweep harness uses). Labeled streams keep topology, protocol
// jitter, traffic and event randomness decoupled: changing the flow count,
// say, never perturbs the sampled topology.
func deriveSeed(base int64, label string, run int) int64 {
	h := rng.Splitmix64(uint64(base))
	for _, c := range label {
		h = rng.Splitmix64(h ^ uint64(c))
	}
	h = rng.Splitmix64(h ^ uint64(run))
	return int64(h)
}
