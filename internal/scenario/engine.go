package scenario

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"qolsr/internal/core"
	"qolsr/internal/geom"
	"qolsr/internal/graph"
	"qolsr/internal/metric"
	"qolsr/internal/mpr"
	"qolsr/internal/obs"
	"qolsr/internal/olsr"
	"qolsr/internal/route"
	"qolsr/internal/sim"
	"qolsr/internal/traffic"
)

// propDelay is the per-hop radio delay scenarios run with; the probe drain
// window is derived from it, so the engine pins it rather than inheriting
// the simulator default.
const propDelay = time.Millisecond

// flow is one persistent probe (source, destination) pair.
type flow struct{ src, dst int32 }

// ctrlSnapshot carries the control-byte counters between samples so each
// sample's rates diff against the previous sample, not the drain window.
type ctrlSnapshot struct {
	// total is HELLO + TC bytes on the air; fwd the TC relay share.
	total, fwd uint64
}

// disruption records one fired disruptive phase for reconvergence tracking.
type disruption struct {
	desc string
	at   time.Duration
}

// Execute runs one replicate of sc: every RNG stream derives from (seed,
// run) alone, so replicates are independent and the same (scenario, seed,
// run) triple always reproduces the same RunResult bit for bit. emit, when
// non-nil, receives each Sample as soon as it is measured. Cancelling ctx
// stops between samples and returns ctx.Err().
func Execute(ctx context.Context, sc Scenario, seed int64, run int, emit func(Sample)) (*RunResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sc = sc.WithDefaults()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if seed == 0 {
		seed = 1
	}

	pts, err := samplePoints(sc, seed, run)
	if err != nil {
		return nil, err
	}
	cfg, err := protocolConfig(sc.Protocol)
	if err != nil {
		return nil, err
	}
	channel := cfg.Metric.Name()
	field := sc.Topology.field()
	radius := sc.Topology.radius()
	medium, lossy, err := buildMedium(sc.Medium, seed, run)
	if err != nil {
		return nil, err
	}
	netOpts := sim.NetworkOptions{
		PropDelay: propDelay,
		Seed:      deriveSeed(seed, "protocol", run),
		Medium:    medium,
	}

	// Deploy: a mobile population or a static unit-disk network. Both use
	// stable per-pair link weights, so a link that breaks and re-forms
	// keeps its QoS value.
	var (
		nw *sim.Network
		ms *sim.MobileSim
	)
	if sc.Mobility != nil {
		model := sc.Mobility.Model
		model.Field = field
		ms, err = sim.NewMobileSim(model, pts, radius, cfg, netOpts,
			sc.Mobility.RebuildEvery, deriveSeed(seed, "mobility", run))
		if err != nil {
			return nil, err
		}
		nw = ms.NW
	} else {
		g, err := sim.UnitDiskTopology(field, radius, pts, channel, netOpts.Seed)
		if err != nil {
			return nil, err
		}
		nw, err = sim.NewNetwork(g, cfg, netOpts)
		if err != nil {
			return nil, err
		}
	}

	// Distance-dependent loss needs the node geometry; only static
	// topologies have a stable one (under mobility the captured positions
	// would go stale, so the component stays off — see Medium docs).
	if lossy != nil && ms == nil {
		lossy.SetGeometry(pts, radius)
	}

	// Path tracing: the tracer seed derives from (seed, run) like every
	// other stream, and sampling is keyed by packet identity, so the trace
	// is a pure function of the run — byte-identical at any worker count.
	var tracer *obs.Tracer
	if sc.Obs.TraceEvery > 0 {
		tracer = obs.NewTracer(deriveSeed(seed, "trace", run), sc.Obs.TraceEvery, run)
		nw.Tracer = tracer
	}

	positions := func() []geom.Point {
		if ms != nil {
			ms.Mob.AdvanceTo(nw.Engine.Now())
			return ms.Mob.Positions()
		}
		return pts
	}

	flowCount := sc.Traffic.Flows
	if len(sc.Traffic.Mix) > 0 {
		flowCount = 0
		for _, sp := range sc.Traffic.Mix {
			flowCount += sp.Count
		}
	}
	flows := drawFlows(flowCount, nw.Phys.N(), deriveSeed(seed, "traffic", run))
	sources := flowSources(flows)

	if ms != nil {
		ms.Start()
	} else {
		nw.Start()
	}

	// Engine mode: the flow-class mix rides the live stack as sustained
	// load — admission-gated at each flow's start, contending for the
	// medium's transmit queues until the run ends.
	var eng *traffic.Engine
	if len(sc.Traffic.Mix) > 0 {
		pairs := make([][2]int32, len(flows))
		for i, f := range flows {
			pairs[i] = [2]int32{f.src, f.dst}
		}
		tFlows, err := traffic.FlowsFromSpecs(sc.Traffic.Mix, pairs, sc.Warmup)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		eng = traffic.NewEngine(nw, deriveSeed(seed, "flows", run))
		for _, f := range tFlows {
			if err := eng.Add(f); err != nil {
				return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
			}
		}
		if err := eng.Start(sc.Duration); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
	}

	// Metrics: the registry reads the run's counters lazily at snapshot
	// time, so attaching it costs nothing during the run. Engine collectors
	// register after every Add (class collectors are per known class).
	var reg *obs.Registry
	if sc.Obs.Metrics {
		reg = obs.New()
		nw.Instrument(reg)
		if eng != nil {
			eng.Instrument(reg)
		}
	}

	// Timeline: apply each phase at its virtual time. Equal-time phases
	// fire in timeline order (the engine breaks ties by scheduling order).
	env := &actionEnv{
		nw:        nw,
		field:     field,
		rng:       rand.New(rand.NewSource(deriveSeed(seed, "events", run))),
		lossy:     lossy,
		positions: positions,
	}
	phases := append([]Phase(nil), sc.Phases...)
	sort.SliceStable(phases, func(i, j int) bool { return phases[i].At < phases[j].At })
	var (
		disruptions []disruption
		phaseErr    error
	)
	for _, ph := range phases {
		ph := ph
		nw.Engine.At(ph.At, func() {
			if phaseErr != nil {
				return
			}
			if err := ph.Action.apply(env); err != nil {
				phaseErr = fmt.Errorf("scenario %s: phase %q at %v: %w", sc.Name, ph.Action.Describe(), ph.At, err)
				return
			}
			if ph.Action.Disruptive() {
				disruptions = append(disruptions, disruption{desc: ph.Action.Describe(), at: nw.Engine.Now()})
			}
		})
	}

	res := &RunResult{Run: run, Nodes: nw.Phys.N()}
	// Probe packets traverse at most TTL hops, each bounded by the
	// medium's per-hop latency bound (propDelay exactly on the ideal
	// medium; queueing and jitter widen it on the lossy one).
	drain := time.Duration(sim.DefaultDataTTL+2) * nw.HopDelayBound()
	var (
		prevT    time.Duration
		prevCtrl ctrlSnapshot
		prevCnt  traffic.Counters
		prevReb  olsr.RebuildStats
	)
	for _, t := range sc.SampleTimes() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		nw.Run(t)
		if phaseErr != nil {
			return nil, phaseErr
		}
		// Rebuild barrier: bring every flow source's routing table up to
		// date before measuring, fanning the SPF work across the worker
		// budget. The tables measure and the data plane then read are
		// cache hits; results are bit-identical at every worker count.
		if _, err := nw.RebuildRoutes(sources, sc.Workers); err != nil {
			return nil, fmt.Errorf("scenario %s: route rebuild at %v: %w", sc.Name, t, err)
		}
		s, ctrl, err := measure(nw, cfg.Metric, channel, flows, t, prevT, prevCtrl, drain, eng, prevCnt)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: sample at %v: %w", sc.Name, t, err)
		}
		reb := nw.RebuildTotals()
		s.TopoBuilds = int(reb.TopoBuilds - prevReb.TopoBuilds)
		s.SPFFull = int(reb.SPFFull - prevReb.SPFFull)
		s.SPFIncremental = int(reb.SPFIncremental - prevReb.SPFIncremental)
		if refr, chg := reb.AdvRefresh-prevReb.AdvRefresh, reb.AdvChange-prevReb.AdvChange; refr+chg > 0 {
			s.SharedAdvRate = float64(refr) / float64(refr+chg)
		}
		prevReb = reb
		prevT = t
		prevCtrl = ctrl
		if eng != nil {
			prevCnt = eng.Counters()
		}
		res.Samples = append(res.Samples, s)
		if emit != nil {
			emit(s)
		}
	}
	// Phases may be scheduled after the last sample time (Validate allows
	// any At <= Duration): run the timeline out so they fire, and surface
	// errors they raise — including ones raised during the final sample's
	// drain window above.
	nw.Run(sc.Duration)
	if phaseErr != nil {
		return nil, phaseErr
	}
	if eng != nil {
		// Let in-flight packets complete before the final accounting
		// (sources stop at Duration; only deliveries and periodic
		// control emissions happen in this window). The drain flushes
		// bounded queues, not a saturated backlog — under sustained
		// overload, packets still queued at the horizon count as sent
		// but never complete, deflating end-of-run delivery exactly as a
		// real measurement window would.
		nw.Run(sc.Duration + drain)
		res.Traffic = eng.Report()
	}

	res.Reconvergence = reconvergence(res.Samples, disruptions, sc.Duration)
	res.Control = nw.Stats
	res.Data = nw.Data
	res.Rebuild = nw.RebuildTotals()
	if ms != nil {
		res.Rebuilds = ms.Rebuilds
	}
	if reg != nil {
		res.Metrics = reg.Snapshot()
	}
	if tracer != nil {
		res.Trace = tracer.Events()
	}
	return res, nil
}

// reconvergence derives the recovery record of each disruptive phase from
// the sample series. Recovery means the delivery ratio is back at the
// pre-event baseline — the last sample strictly before the event (full
// delivery when none exists; protocols like FNBP can sit below full
// delivery in steady state, so an absolute criterion would be unreachable).
// Degradation may surface only after the soft-state hold time, so the
// search first finds the delivery trough in the event's window, then the
// first sample at or after the trough that is back at baseline. A window
// with no dip below baseline recovers at its first sample. Both searches
// stop at the next disruption: delivery restored only after a later phase
// intervened (e.g. a scheduled heal) is that phase's doing, and attributing
// it here would mask the protocol's own recovery speed — the window reports
// not-recovered instead.
//
// Window membership honours the engine's event order: phases at time t fire
// before the sample at t is measured, so a sample taken exactly at a
// phase's fire time reflects that phase and belongs to its window, not the
// previous one.
func reconvergence(samples []Sample, disruptions []disruption, duration time.Duration) []Reconvergence {
	var out []Reconvergence
	for i, d := range disruptions {
		rc := Reconvergence{Phase: d.desc, EventTime: d.at}
		baseline := 1.0
		for _, s := range samples {
			if s.Time >= d.at {
				break
			}
			baseline = s.Delivery
		}
		// The last window runs through the end of the run inclusive;
		// earlier windows end exclusively at the next disruption.
		inWindow := func(t time.Duration) bool { return t >= d.at && t <= duration }
		if i+1 < len(disruptions) {
			next := disruptions[i+1].at
			inWindow = func(t time.Duration) bool { return t >= d.at && t < next }
		}
		troughAt := time.Duration(-1)
		trough := baseline
		for _, s := range samples {
			if !inWindow(s.Time) {
				continue
			}
			if s.Delivery < trough {
				trough = s.Delivery
				troughAt = s.Time
			}
		}
		for _, s := range samples {
			if !inWindow(s.Time) || s.Time < troughAt {
				continue
			}
			if s.Delivery >= baseline {
				rc.Recovered = true
				rc.RecoveredAt = s.Time
				break
			}
		}
		out = append(out, rc)
	}
	return out
}

// measure takes one sample at virtual time t: it snapshots control traffic
// and advertised sets, evaluates the sources' routing tables against the
// centralized optimum on the current effective topology, and measures the
// data plane. In legacy probe mode it injects one probe packet per flow and
// runs the engine through the drain window so every packet completes; in
// traffic-engine mode (eng non-nil) the sustained flows are already in
// flight, so the sample diffs the engine's counters over the window instead
// (Delivery is then delivered/completed packets of the window) and no time
// advances. It returns the sample and the control-byte counter as of t —
// the caller must carry that (not the post-drain counter) into the next
// sample's rate, or control messages sent during each drain window would
// vanish from every rate. A routing-table failure aborts the sample: it is
// surfaced to the caller instead of being silently sampled as an empty
// table.
func measure(nw *sim.Network, m metric.Metric, channel string, flows []flow, t, prevT time.Duration, prev ctrlSnapshot, drain time.Duration, eng *traffic.Engine, prevCnt traffic.Counters) (Sample, ctrlSnapshot, error) {
	s := Sample{Time: t, Nodes: nw.Phys.N()}

	ctrl := ctrlSnapshot{
		total: nw.Stats.HelloBytes + nw.Stats.TCBytes,
		fwd:   nw.Stats.TCForwardedBytes,
	}
	if secs := (t - prevT).Seconds(); secs > 0 {
		s.ControlBPS = float64(ctrl.total-prev.total) / secs
		s.TCFwdBPS = float64(ctrl.fwd-prev.fwd) / secs
	}
	if sets, err := nw.ANSSets(); err == nil && len(sets) > 0 {
		total := 0
		for _, set := range sets {
			total += len(set)
		}
		s.SetSize = float64(total) / float64(len(sets))
	}

	eff, w := effectiveTopology(nw, channel)
	s.Links = eff.M()

	// Per-source searches are shared across flows with the same source.
	// The routing tables are the nodes' own cached snapshots, not copies:
	// caching them per source here only avoids re-running the nodes'
	// (cheap) validity checks.
	hopSPs := make(map[int32]*graph.ShortestPaths)
	optSPs := make(map[int32]*graph.ShortestPaths)
	tables := make(map[int32]*olsr.Routes)
	var (
		stretchSum  float64
		stretchN    int
		overheadSum float64
		overheadN   int
	)
	for _, f := range flows {
		if eff.M() == 0 {
			break
		}
		hopSP := hopSPs[f.src]
		if hopSP == nil {
			hopSP = graph.Dijkstra(eff, metric.Hop(), w, f.src, nil, -1)
			hopSPs[f.src] = hopSP
		}
		if !hopSP.Reachable(f.dst) {
			continue
		}
		s.Connected++
		optHops := hopSP.Dist[f.dst]

		// Routing-table overhead: what the source would achieve right
		// now against the optimum on the live physical topology.
		table, ok := tables[f.src]
		if !ok {
			var err error
			table, err = nw.Nodes[f.src].Routes(nw.Engine.Now())
			if err != nil {
				return Sample{}, ctrlSnapshot{}, fmt.Errorf("routing table of node %d: %w", nw.Phys.ID(f.src), err)
			}
			tables[f.src] = table
		}
		if entry, ok := table.Lookup(int64(nw.Phys.ID(f.dst))); ok {
			optSP := optSPs[f.src]
			if optSP == nil {
				optSP = graph.Dijkstra(eff, m, w, f.src, nil, -1)
				optSPs[f.src] = optSP
			}
			if optSP.Reachable(f.dst) {
				overheadSum += route.Overhead(m, entry.Value, optSP.Dist[f.dst])
				overheadN++
			}
		}

		if eng != nil {
			// Sustained flows are already offering load; probes would
			// only distort the queues they contend for.
			continue
		}
		nw.SendData(f.src, f.dst, func(ok bool, hops int, _ time.Duration) {
			if !ok {
				return
			}
			s.Delivered++
			if optHops > 0 {
				stretchSum += float64(hops) / optHops
				stretchN++
			}
		})
	}
	if eng == nil {
		nw.Run(t + drain)
		s.Delivery = 1
		if s.Connected > 0 {
			s.Delivery = float64(s.Delivered) / float64(s.Connected)
		}
	} else {
		cnt := eng.Counters()
		s.TrafficSent = int(cnt.Sent - prevCnt.Sent)
		s.TrafficCompleted = int(cnt.Completed - prevCnt.Completed)
		s.TrafficDelivered = int(cnt.Delivered - prevCnt.Delivered)
		if secs := (t - prevT).Seconds(); secs > 0 {
			s.TrafficThroughputBps = float64(cnt.BytesDelivered-prevCnt.BytesDelivered) / secs
		}
		s.Delivered = s.TrafficDelivered
		s.Delivery = 1
		if s.TrafficCompleted > 0 {
			s.Delivery = float64(s.TrafficDelivered) / float64(s.TrafficCompleted)
		}
	}
	if stretchN > 0 {
		s.HopStretch = stretchSum / float64(stretchN)
	}
	s.OverheadFlows = overheadN
	if overheadN > 0 {
		s.Overhead = overheadSum / float64(overheadN)
	}
	return s, ctrl, nil
}

// effectiveTopology returns the physical graph minus failed links, with the
// metric channel's weights copied over — what an omniscient router could
// use right now. The weight slice is nil when the graph has no edges.
func effectiveTopology(nw *sim.Network, channel string) (*graph.Graph, []float64) {
	phys := nw.Phys
	w, err := phys.Weights(channel)
	if err != nil {
		return graph.New(phys.N()), nil
	}
	eff := graph.New(phys.N())
	for a := int32(0); int(a) < phys.N(); a++ {
		for _, arc := range phys.Arcs(a) {
			if a >= arc.To || !nw.LinkUp(a, arc.To) {
				continue
			}
			e, err := eff.AddEdge(a, arc.To)
			if err != nil {
				continue
			}
			_ = eff.SetWeight(channel, e, w[arc.Edge])
		}
	}
	ew, err := eff.Weights(channel)
	if err != nil {
		return eff, nil
	}
	return eff, ew
}

// buildMedium materialises the radio model for one run. The lossy medium's
// draw seed derives from (seed, run) like every other stream, so replicate
// runs see independent loss realisations and stay bit-reproducible at any
// worker count.
func buildMedium(spec Medium, seed int64, run int) (sim.Medium, *sim.LossyMedium, error) {
	switch spec.Kind {
	case "", "ideal":
		return sim.NewIdealMedium(propDelay), nil, nil
	case "lossy":
		lm := sim.NewLossyMedium(sim.LossyConfig{
			Loss:         spec.Loss,
			DistanceLoss: spec.DistanceLoss,
			BytesPerSec:  spec.BytesPerSec,
			Jitter:       spec.Jitter,
			PropDelay:    propDelay,
			Seed:         deriveSeed(seed, "medium", run),
		})
		return lm, lm, nil
	default:
		return nil, nil, fmt.Errorf("scenario: unknown medium %q", spec.Kind)
	}
}

// samplePoints realises the topology source for one run.
func samplePoints(sc Scenario, seed int64, run int) ([]geom.Point, error) {
	if sc.Topology.Deployment == nil {
		return sc.Topology.Points, nil
	}
	rng := rand.New(rand.NewSource(deriveSeed(seed, "topology", run)))
	// Very sparse deployments can realise fewer than two nodes; resample
	// a bounded number of times from the same stream (still a pure
	// function of (seed, run)) before giving up.
	for try := 0; try < 8; try++ {
		pts, err := sc.Topology.Deployment.Sample(rng)
		if err != nil {
			return nil, err
		}
		if len(pts) >= 2 {
			return pts, nil
		}
	}
	return nil, fmt.Errorf("scenario %s: deployment too sparse, fewer than 2 nodes in 8 draws", sc.Name)
}

// protocolConfig materialises the per-node stack configuration.
func protocolConfig(p Protocol) (olsr.Config, error) {
	sel, err := core.ByName(p.Selector)
	if err != nil {
		return olsr.Config{}, fmt.Errorf("scenario: %w", err)
	}
	cfg := olsr.DefaultConfig(p.Metric)
	cfg.Selector = sel
	cfg.MeasuredQoS = p.MeasuredQoS
	cfg.DeltaTC = p.DeltaTC
	cfg.FisheyeTTLs = append([]int(nil), p.FisheyeTTLs...)
	if p.MinRelay {
		cfg.FloodRelay = mpr.MinCover
	}
	if p.HelloInterval > 0 {
		cfg.HelloInterval = p.HelloInterval
		cfg.NeighborHoldTime = 3 * p.HelloInterval
	}
	if p.TCInterval > 0 {
		cfg.TCInterval = p.TCInterval
		cfg.TopologyHoldTime = 3 * p.TCInterval
	}
	return cfg, nil
}

// flowSources returns the unique flow sources in ascending index order —
// the node set whose routing tables every sample barrier brings up to date.
func flowSources(flows []flow) []int32 {
	seen := make(map[int32]bool, len(flows))
	out := make([]int32, 0, len(flows))
	for _, f := range flows {
		if !seen[f.src] {
			seen[f.src] = true
			out = append(out, f.src)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// drawFlows picks the persistent flow endpoints: uniform ordered
// (src, dst) pairs with src != dst, clamped to the number of distinct
// pairs (sim.DrawPairs — the draw sequence is locked by the goldens).
func drawFlows(count, n int, seed int64) []flow {
	pairs := sim.DrawPairs(n, count, seed)
	if len(pairs) == 0 {
		return nil
	}
	out := make([]flow, len(pairs))
	for i, p := range pairs {
		out[i] = flow{src: p[0], dst: p[1]}
	}
	return out
}
