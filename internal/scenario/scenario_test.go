package scenario

import (
	"context"
	"reflect"
	"testing"
	"time"

	"qolsr/internal/geom"
)

// ladderScenario is the deterministic test fixture: a 2×4 ladder (explicit
// positions, so every run sees the same geometry) with redundant paths, a
// mid-run failure of one named link and its restore.
func ladderScenario() Scenario {
	pts := []geom.Point{
		{X: 20, Y: 60}, {X: 100, Y: 60}, {X: 180, Y: 60}, {X: 260, Y: 60},
		{X: 20, Y: 140}, {X: 100, Y: 140}, {X: 180, Y: 140}, {X: 260, Y: 140},
	}
	return Scenario{
		Name:        "test-ladder",
		Description: "2x4 ladder with one link flap",
		Topology:    Topology{Points: pts, Field: geom.Field{Width: 300, Height: 300}, Radius: 100},
		Protocol:    Protocol{Selector: "fnbp"},
		Traffic:     Traffic{Flows: 6},
		Duration:    30 * time.Second,
		Warmup:      16 * time.Second,
		SampleEvery: 2 * time.Second,
		Phases: []Phase{
			{At: 21 * time.Second, Action: FailLink{A: 1, B: 2}},
			{At: 27 * time.Second, Action: RestoreLink{A: 1, B: 2}},
		},
	}
}

func TestExecuteLadder(t *testing.T) {
	sc := ladderScenario()
	var streamed []Sample
	res, err := Execute(context.Background(), sc, 1, 0, func(s Sample) { streamed = append(streamed, s) })
	if err != nil {
		t.Fatal(err)
	}
	times := sc.SampleTimes()
	if len(res.Samples) != len(times) {
		t.Fatalf("samples = %d, want %d", len(res.Samples), len(times))
	}
	if !reflect.DeepEqual(streamed, res.Samples) {
		t.Error("streamed samples differ from stored samples")
	}
	if res.Nodes != 8 {
		t.Errorf("nodes = %d, want 8", res.Nodes)
	}
	for i, s := range res.Samples {
		if s.Time != times[i] {
			t.Errorf("sample %d at %v, want %v", i, s.Time, times[i])
		}
	}
	// The ladder has 10 links; the converged pre-failure sample delivers
	// every connected flow.
	pre := res.Samples[2] // t = 20s, one second before the failure
	if pre.Links != 10 {
		t.Errorf("pre-failure links = %d, want 10", pre.Links)
	}
	if pre.Connected == 0 || pre.Delivery != 1 {
		t.Errorf("pre-failure delivery = %g over %d connected flows, want full",
			pre.Delivery, pre.Connected)
	}
	if pre.SetSize <= 0 {
		t.Errorf("pre-failure set size = %g, want positive", pre.SetSize)
	}
	if pre.ControlBPS <= 0 {
		t.Errorf("pre-failure control rate = %g, want positive", pre.ControlBPS)
	}
	// During the failure the link count drops; the ladder stays connected.
	during := res.Samples[3] // t = 22s
	if during.Links != 9 {
		t.Errorf("links during failure = %d, want 9", during.Links)
	}
	if during.Connected != pre.Connected {
		t.Errorf("connected flows changed %d -> %d; ladder should stay connected",
			pre.Connected, during.Connected)
	}
	// Both the failure and the restore open reconvergence windows.
	if len(res.Reconvergence) != 2 {
		t.Fatalf("reconvergence records = %d, want 2", len(res.Reconvergence))
	}
	for _, rc := range res.Reconvergence {
		if !rc.Recovered {
			t.Errorf("phase %q at %v never recovered", rc.Phase, rc.EventTime)
		} else if rc.Duration() <= 0 {
			t.Errorf("phase %q reconvergence %v, want positive", rc.Phase, rc.Duration())
		}
	}
	// The final sample is fully healed.
	last := res.Samples[len(res.Samples)-1]
	if last.Links != 10 || last.Delivery != 1 {
		t.Errorf("final sample links=%d delivery=%g, want healed full delivery", last.Links, last.Delivery)
	}
	if res.Data.Sent == 0 || res.Control.TCBytes == 0 {
		t.Errorf("totals empty: data=%+v control=%+v", res.Data, res.Control)
	}
}

func TestExecuteDeterministic(t *testing.T) {
	sc := ladderScenario()
	a, err := Execute(context.Background(), sc, 7, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Execute(context.Background(), sc, 7, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same (scenario, seed, run) produced different results")
	}
	c, err := Execute(context.Background(), sc, 7, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Samples, c.Samples) {
		t.Error("different runs produced identical samples; streams are not independent")
	}
}

func TestExecuteCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Execute(ctx, ladderScenario(), 1, 0, nil); err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestExecuteMobility(t *testing.T) {
	sc := ladderScenario()
	sc.Name = "test-mobile"
	sc.Phases = nil
	sc.Mobility = &Mobility{
		Model:        geom.Waypoint{MinSpeed: 1, MaxSpeed: 5, Pause: time.Second},
		RebuildEvery: time.Second,
	}
	res, err := Execute(context.Background(), sc, 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebuilds == 0 {
		t.Error("mobility run performed no topology rebuilds")
	}
	if len(res.Samples) != len(sc.SampleTimes()) {
		t.Errorf("samples = %d, want %d", len(res.Samples), len(sc.SampleTimes()))
	}
}

func TestBuiltinRegistry(t *testing.T) {
	names := Names()
	if len(names) != 10 {
		t.Fatalf("built-ins = %d, want 10: %v", len(names), names)
	}
	for _, name := range names {
		for _, sel := range []string{"", "fnbp", "topofilter", "qolsr", "full"} {
			sc, err := ByName(name, sel)
			if err != nil {
				t.Fatalf("ByName(%q, %q): %v", name, sel, err)
			}
			if err := sc.Validate(); err != nil {
				t.Errorf("built-in %q (%q) invalid: %v", name, sel, err)
			}
			want := sel
			if want == "" {
				want = "fnbp"
			}
			if sc.Protocol.Selector != want {
				t.Errorf("ByName(%q, %q) selector = %q", name, sel, sc.Protocol.Selector)
			}
		}
	}
	if _, err := ByName("nope", ""); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := ByName("static-baseline", "nope"); err == nil {
		t.Error("unknown selector accepted")
	}
}

func TestValidateRejects(t *testing.T) {
	base := ladderScenario()
	cases := map[string]func(sc *Scenario){
		"no topology":       func(sc *Scenario) { sc.Topology = Topology{} },
		"both sources":      func(sc *Scenario) { sc.Topology.Deployment = builtinDeployment(10) },
		"bad selector":      func(sc *Scenario) { sc.Protocol.Selector = "nope" },
		"nil action":        func(sc *Scenario) { sc.Phases = []Phase{{At: time.Second}} },
		"phase past end":    func(sc *Scenario) { sc.Phases = []Phase{{At: time.Hour, Action: RestoreAll{}}} },
		"warmup past end":   func(sc *Scenario) { sc.Warmup = sc.Duration + time.Second },
		"tiny sampling":     func(sc *Scenario) { sc.SampleEvery = time.Millisecond },
		"self-loop fail":    func(sc *Scenario) { sc.Phases = []Phase{{At: time.Second, Action: FailLink{A: 1, B: 1}}} },
		"bad fail fraction": func(sc *Scenario) { sc.Phases = []Phase{{At: time.Second, Action: FailFraction{Fraction: 1.5}}} },
		"bad fail count":    func(sc *Scenario) { sc.Phases = []Phase{{At: time.Second, Action: FailRandom{}}} },
		"point off field":   func(sc *Scenario) { sc.Topology.Points[0].X = -5 },
	}
	for name, mutate := range cases {
		sc := base.WithDefaults()
		sc.Topology.Points = append([]geom.Point(nil), base.Topology.Points...)
		mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
	if err := base.WithDefaults().Validate(); err != nil {
		t.Errorf("fixture invalid: %v", err)
	}
}

func TestSampleTimes(t *testing.T) {
	sc := Scenario{Duration: 10 * time.Second, Warmup: 4 * time.Second, SampleEvery: 3 * time.Second}
	got := sc.SampleTimes()
	want := []time.Duration{4 * time.Second, 7 * time.Second, 10 * time.Second}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SampleTimes = %v, want %v", got, want)
	}
}

func TestDrawFlows(t *testing.T) {
	flows := drawFlows(10, 2, 1)
	if len(flows) != 2 {
		t.Fatalf("flows on 2 nodes = %d, want clamped to 2", len(flows))
	}
	seen := map[flow]bool{}
	for _, f := range drawFlows(12, 6, 5) {
		if f.src == f.dst {
			t.Errorf("self flow %v", f)
		}
		if f.src < 0 || f.src >= 6 || f.dst < 0 || f.dst >= 6 {
			t.Errorf("flow out of range %v", f)
		}
		if seen[f] {
			t.Errorf("duplicate flow %v", f)
		}
		seen[f] = true
	}
	if drawFlows(4, 1, 1) != nil {
		t.Error("flows on 1 node should be empty")
	}
}

func TestLatePhasesFireAndSurfaceErrors(t *testing.T) {
	// A phase scheduled after the last sample time (29s > last sample 28s
	// with warmup 16s, every 4s) must still fire and be recorded.
	sc := ladderScenario()
	sc.SampleEvery = 4 * time.Second // samples at 16,20,24,28; duration 30
	sc.Phases = []Phase{{At: 29 * time.Second, Action: FailLink{A: 1, B: 2}}}
	res, err := Execute(context.Background(), sc, 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reconvergence) != 1 {
		t.Fatalf("late phase not recorded: %+v", res.Reconvergence)
	}
	if res.Reconvergence[0].Recovered {
		t.Error("phase after the last sample cannot have observed recovery")
	}

	// An erroring late phase must fail the run, not be swallowed.
	sc.Phases = []Phase{{At: 29 * time.Second, Action: FailLink{A: 0, B: 7}}} // no such link
	if _, err := Execute(context.Background(), sc, 1, 0, nil); err == nil {
		t.Error("error from a phase after the last sample was swallowed")
	}
}

func TestRestoreAllSurvivesTopologyChanges(t *testing.T) {
	// RestoreAll must clear failures even for pairs absent from the
	// current topology (mobility can move endpoints out of range between
	// the failure and the heal).
	sc := ladderScenario()
	sc.Phases = []Phase{
		{At: 18 * time.Second, Action: FailLink{A: 1, B: 2}},
		{At: 22 * time.Second, Action: RestoreAll{}},
	}
	res, err := Execute(context.Background(), sc, 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Samples[len(res.Samples)-1]
	if last.Links != 10 {
		t.Errorf("links after restore-all = %d, want 10", last.Links)
	}
}

func TestReconvergenceTroughSemantics(t *testing.T) {
	sec := func(s int) time.Duration { return time.Duration(s) * time.Second }
	mk := func(tS int, delivery float64) Sample { return Sample{Time: sec(tS), Delivery: delivery} }

	// Degradation surfaces only at t=18 (soft-state expiry), long after
	// the event at t=11; an early back-at-baseline sample must not count
	// as recovery.
	samples := []Sample{
		mk(10, 0.9),              // pre-event baseline 0.9
		mk(12, 0.9), mk(14, 0.9), // stale routes still "work"
		mk(16, 0.6), mk(18, 0.5), // delayed trough
		mk(20, 0.7), mk(22, 0.9), // climb back
	}
	rcs := reconvergence(samples, []disruption{{desc: "fail", at: sec(11)}}, sec(22))
	if len(rcs) != 1 || !rcs[0].Recovered {
		t.Fatalf("reconvergence = %+v", rcs)
	}
	if rcs[0].RecoveredAt != sec(22) {
		t.Errorf("recovered at %v, want 22s (after the delayed trough)", rcs[0].RecoveredAt)
	}

	// A window with no dip recovers at its first sample.
	rcs = reconvergence(samples[:3], []disruption{{desc: "noop", at: sec(11)}}, sec(14))
	if !rcs[0].Recovered || rcs[0].RecoveredAt != sec(12) {
		t.Errorf("no-dip window = %+v, want recovery at 12s", rcs[0])
	}

	// Both searches stop at the next disruption: the fail event must not
	// claim the recovery the scheduled heal caused, so its window reports
	// not-recovered. The heal's own baseline is the degraded 0.5, so it
	// recovers at its first sample.
	rcs = reconvergence(samples, []disruption{
		{desc: "fail", at: sec(11)},
		{desc: "heal", at: sec(19)},
	}, sec(22))
	if rcs[0].Recovered {
		t.Errorf("fail window claimed the heal's recovery: %+v", rcs[0])
	}
	if !rcs[1].Recovered || rcs[1].RecoveredAt != sec(20) {
		t.Errorf("heal window = %+v, want recovery at 20s", rcs[1])
	}

	// A sample taken exactly at a disruption's fire time reflects that
	// disruption (phases fire before the sample is measured), so it
	// belongs to the new window: the fail at 11s must not claim the
	// back-at-baseline sample measured at the heal's own fire time 20s.
	rcs = reconvergence(samples, []disruption{
		{desc: "fail", at: sec(11)},
		{desc: "heal", at: sec(20)},
	}, sec(22))
	if rcs[0].Recovered {
		t.Errorf("fail window claimed the sample at the heal's fire time: %+v", rcs[0])
	}
	if !rcs[1].Recovered || rcs[1].RecoveredAt != sec(20) {
		t.Errorf("heal window = %+v, want recovery at its own fire-time sample", rcs[1])
	}

	// Never climbing back means never recovered.
	rcs = reconvergence(samples[:6], []disruption{{desc: "fail", at: sec(11)}}, sec(20))
	if rcs[0].Recovered {
		t.Errorf("recovered without reaching baseline: %+v", rcs[0])
	}
}

func TestActionDescriptions(t *testing.T) {
	cases := map[Action]string{
		FailLink{A: 1, B: 2}:        "fail-link 1-2",
		RestoreLink{A: 3, B: 4}:     "restore-link 3-4",
		FailFraction{Fraction: 0.1}: "fail-fraction 0.10",
		FailRandom{Count: 2}:        "fail-random 2",
		RestoreAll{}:                "restore-all",
		Partition{}:                 "partition",
	}
	for a, want := range cases {
		if got := a.Describe(); got != want {
			t.Errorf("Describe = %q, want %q", got, want)
		}
	}
}
