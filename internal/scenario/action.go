package scenario

import (
	"fmt"
	"math/rand"

	"qolsr/internal/geom"
	"qolsr/internal/sim"
)

// Action is one timeline effect on the running network. Implementations are
// value types; the engine applies them at their phase time with access to
// the network, the current node positions and the run's event RNG, so an
// action's outcome is a pure function of (scenario, seed, run).
type Action interface {
	// Describe returns the action's stable string form, used by the JSON
	// encoder and the tables.
	Describe() string
	// Disruptive marks actions that start a reconvergence measurement:
	// the engine records the fire time and later reports how long the
	// protocol took to re-deliver every connected probe flow.
	Disruptive() bool

	validate() error
	apply(env *actionEnv) error
}

// actionEnv is what an action may touch when it fires.
type actionEnv struct {
	nw    *sim.Network
	field geom.Field
	rng   *rand.Rand
	// lossy is the run's lossy medium, nil on the ideal medium (the
	// loss-shaping actions require it; Validate enforces this before the
	// run starts).
	lossy *sim.LossyMedium
	// positions returns the node positions at fire time (mobility-aware).
	positions func() []geom.Point
}

// upLinks lists the currently usable physical links.
func (env *actionEnv) upLinks() [][2]int32 {
	var links [][2]int32
	g := env.nw.Phys
	for a := int32(0); int(a) < g.N(); a++ {
		for _, arc := range g.Arcs(a) {
			if a < arc.To && env.nw.LinkUp(a, arc.To) {
				links = append(links, [2]int32{a, arc.To})
			}
		}
	}
	return links
}

// FailLink takes one named physical link down.
type FailLink struct{ A, B int32 }

// Describe implements Action.
func (f FailLink) Describe() string { return fmt.Sprintf("fail-link %d-%d", f.A, f.B) }

// Disruptive implements Action.
func (FailLink) Disruptive() bool { return true }

func (f FailLink) validate() error {
	if f.A == f.B || f.A < 0 || f.B < 0 {
		return fmt.Errorf("fail-link needs two distinct node indices, got %d-%d", f.A, f.B)
	}
	return nil
}

func (f FailLink) apply(env *actionEnv) error { return env.nw.FailLink(f.A, f.B) }

// RestoreLink brings one named physical link back.
type RestoreLink struct{ A, B int32 }

// Describe implements Action.
func (r RestoreLink) Describe() string { return fmt.Sprintf("restore-link %d-%d", r.A, r.B) }

// Disruptive implements Action. Restores also perturb routing (better
// routes appear), so they open a reconvergence window too.
func (RestoreLink) Disruptive() bool { return true }

func (r RestoreLink) validate() error {
	if r.A == r.B || r.A < 0 || r.B < 0 {
		return fmt.Errorf("restore-link needs two distinct node indices, got %d-%d", r.A, r.B)
	}
	return nil
}

func (r RestoreLink) apply(env *actionEnv) error { return env.nw.RestoreLink(r.A, r.B) }

// FailFraction fails a uniformly random fraction of the currently-up links,
// drawn from the run's event RNG — the churn-storm primitive.
type FailFraction struct {
	// Fraction of up links to fail, in (0,1].
	Fraction float64
}

// Describe implements Action.
func (f FailFraction) Describe() string { return fmt.Sprintf("fail-fraction %.2f", f.Fraction) }

// Disruptive implements Action.
func (FailFraction) Disruptive() bool { return true }

func (f FailFraction) validate() error {
	if !(f.Fraction > 0) || f.Fraction > 1 {
		return fmt.Errorf("fail-fraction %g outside (0,1]", f.Fraction)
	}
	return nil
}

func (f FailFraction) apply(env *actionEnv) error {
	links := env.upLinks()
	if len(links) == 0 {
		return nil
	}
	count := int(float64(len(links))*f.Fraction + 0.5)
	if count < 1 {
		count = 1
	}
	if count > len(links) {
		count = len(links)
	}
	env.rng.Shuffle(len(links), func(i, j int) { links[i], links[j] = links[j], links[i] })
	for _, l := range links[:count] {
		if err := env.nw.FailLink(l[0], l[1]); err != nil {
			return err
		}
	}
	return nil
}

// FailRandom fails a fixed number of uniformly random up links, drawn from
// the run's event RNG — the single-link-flap primitive.
type FailRandom struct {
	// Count is the number of links to fail (clamped to the up links).
	Count int
}

// Describe implements Action.
func (f FailRandom) Describe() string { return fmt.Sprintf("fail-random %d", f.Count) }

// Disruptive implements Action.
func (FailRandom) Disruptive() bool { return true }

func (f FailRandom) validate() error {
	if f.Count < 1 {
		return fmt.Errorf("fail-random needs a positive count, got %d", f.Count)
	}
	return nil
}

func (f FailRandom) apply(env *actionEnv) error {
	links := env.upLinks()
	if len(links) == 0 {
		return nil
	}
	count := f.Count
	if count > len(links) {
		count = len(links)
	}
	env.rng.Shuffle(len(links), func(i, j int) { links[i], links[j] = links[j], links[i] })
	for _, l := range links[:count] {
		if err := env.nw.FailLink(l[0], l[1]); err != nil {
			return err
		}
	}
	return nil
}

// RestoreAll brings every failed link back — the heal primitive.
type RestoreAll struct{}

// Describe implements Action.
func (RestoreAll) Describe() string { return "restore-all" }

// Disruptive implements Action.
func (RestoreAll) Disruptive() bool { return true }

func (RestoreAll) validate() error { return nil }

func (RestoreAll) apply(env *actionEnv) error {
	// Clear the down-set wholesale rather than iterating current edges:
	// under mobility a failed pair can be momentarily out of range, and
	// it must come back up when the geometry re-forms the link.
	env.nw.RestoreAllLinks()
	return nil
}

// Partition fails every link crossing the field's vertical midline at the
// node positions current when the action fires, splitting the network into
// two halves. Heal with RestoreAll.
type Partition struct{}

// Describe implements Action.
func (Partition) Describe() string { return "partition" }

// Disruptive implements Action.
func (Partition) Disruptive() bool { return true }

func (Partition) validate() error { return nil }

func (p Partition) apply(env *actionEnv) error {
	pos := env.positions()
	mid := env.field.Width / 2
	g := env.nw.Phys
	for a := int32(0); int(a) < g.N(); a++ {
		for _, arc := range g.Arcs(a) {
			if a >= arc.To {
				continue
			}
			if (pos[a].X < mid) != (pos[arc.To].X < mid) {
				if err := env.nw.FailLink(a, arc.To); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// SetLoss replaces the lossy medium's base packet-error rate mid-run — the
// radio-degradation primitive (weather, interference, jamming). Requires
// the lossy medium.
type SetLoss struct {
	// Loss is the new base packet-error rate, in [0, 1).
	Loss float64
}

// Describe implements Action.
func (s SetLoss) Describe() string { return fmt.Sprintf("set-loss %.2f", s.Loss) }

// Disruptive implements Action: raising loss degrades delivery, lowering it
// perturbs routing as links recover — either way a reconvergence window
// opens.
func (SetLoss) Disruptive() bool { return true }

func (s SetLoss) validate() error {
	if s.Loss < 0 || s.Loss >= 1 {
		return fmt.Errorf("set-loss %g outside [0,1)", s.Loss)
	}
	return nil
}

func (s SetLoss) apply(env *actionEnv) error {
	if env.lossy == nil {
		return fmt.Errorf("set-loss requires the lossy medium")
	}
	env.lossy.SetBaseLoss(s.Loss)
	return nil
}

// DegradeLink overrides the packet-error rate of one physical link — a
// single fading link while the rest of the radio stays healthy. A negative
// rate clears the override. Requires the lossy medium.
type DegradeLink struct {
	A, B int32
	// Loss is the link's packet-error rate in [0, 1); negative clears the
	// override (the link reverts to the base rate).
	Loss float64
}

// Describe implements Action.
func (d DegradeLink) Describe() string {
	return fmt.Sprintf("degrade-link %d-%d %.2f", d.A, d.B, d.Loss)
}

// Disruptive implements Action.
func (DegradeLink) Disruptive() bool { return true }

func (d DegradeLink) validate() error {
	if d.A == d.B || d.A < 0 || d.B < 0 {
		return fmt.Errorf("degrade-link needs two distinct node indices, got %d-%d", d.A, d.B)
	}
	if d.Loss >= 1 {
		return fmt.Errorf("degrade-link loss %g outside [0,1) (negative clears)", d.Loss)
	}
	return nil
}

func (d DegradeLink) apply(env *actionEnv) error {
	if env.lossy == nil {
		return fmt.Errorf("degrade-link requires the lossy medium")
	}
	if err := env.nw.CheckLink(d.A, d.B); err != nil {
		return fmt.Errorf("degrade-link: %w", err)
	}
	env.lossy.SetLinkLoss(d.A, d.B, d.Loss)
	return nil
}

// Compile-time interface compliance checks.
var (
	_ Action = FailLink{}
	_ Action = RestoreLink{}
	_ Action = FailFraction{}
	_ Action = FailRandom{}
	_ Action = RestoreAll{}
	_ Action = Partition{}
	_ Action = SetLoss{}
	_ Action = DegradeLink{}
)
