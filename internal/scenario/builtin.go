package scenario

import (
	"fmt"
	"strings"
	"time"

	"qolsr/internal/core"
	"qolsr/internal/geom"
	"qolsr/internal/traffic"
)

// Definition is one named, parameterisable built-in scenario.
type Definition struct {
	// Name is the registry key.
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Build materialises the scenario for one advertised-set selector.
	Build func(selector string) Scenario
}

// builtinField keeps the live-stack simulations affordable, matching the
// control-traffic experiment's deployment area.
func builtinField() geom.Field { return geom.Field{Width: 600, Height: 600} }

func builtinDeployment(degree float64) *geom.Deployment {
	return &geom.Deployment{Field: builtinField(), Radius: 100, Degree: degree}
}

func waypoint(minSpeed, maxSpeed float64) *Mobility {
	return &Mobility{
		Model: geom.Waypoint{
			Field:    builtinField(),
			MinSpeed: minSpeed,
			MaxSpeed: maxSpeed,
			Pause:    2 * time.Second,
		},
		RebuildEvery: time.Second,
	}
}

// BuiltIn returns the built-in scenario registry, in listing order.
func BuiltIn() []Definition {
	return []Definition{
		{
			Name:        "static-baseline",
			Description: "static Poisson deployment, no dynamics — the paper's regime on the live stack",
			Build: func(sel string) Scenario {
				return Scenario{
					Name:        "static-baseline",
					Description: "static Poisson deployment, no dynamics",
					Topology:    Topology{Deployment: builtinDeployment(10)},
					Protocol:    Protocol{Selector: sel},
					Duration:    90 * time.Second,
				}
			},
		},
		{
			Name:        "single-link-flap",
			Description: "one random link fails mid-run and comes back — soft-state expiry and reroute",
			Build: func(sel string) Scenario {
				return Scenario{
					Name:        "single-link-flap",
					Description: "one random link fails at 45s, restores at 75s",
					Topology:    Topology{Deployment: builtinDeployment(10)},
					Protocol:    Protocol{Selector: sel},
					Duration:    120 * time.Second,
					Phases: []Phase{
						{At: 45 * time.Second, Action: FailRandom{Count: 1}},
						{At: 75 * time.Second, Action: RestoreAll{}},
					},
				}
			},
		},
		{
			Name:        "partition-heal",
			Description: "the field splits along its midline and later heals — state expiry and re-merge",
			Build: func(sel string) Scenario {
				return Scenario{
					Name:        "partition-heal",
					Description: "partition at 40s across the field midline, heal at 80s",
					Topology:    Topology{Deployment: builtinDeployment(12)},
					Protocol:    Protocol{Selector: sel},
					Duration:    120 * time.Second,
					Phases: []Phase{
						{At: 40 * time.Second, Action: Partition{}},
						{At: 80 * time.Second, Action: RestoreAll{}},
					},
				}
			},
		},
		{
			Name:        "random-waypoint-sparse",
			Description: "sparse random-waypoint mobility — link churn at low density",
			Build: func(sel string) Scenario {
				return Scenario{
					Name:        "random-waypoint-sparse",
					Description: "random waypoint, 1-5 units/s, target degree 6",
					Topology:    Topology{Deployment: builtinDeployment(6)},
					Protocol:    Protocol{Selector: sel},
					Mobility:    waypoint(1, 5),
					Duration:    120 * time.Second,
				}
			},
		},
		{
			Name:        "random-waypoint-dense",
			Description: "dense random-waypoint mobility — link churn with redundant paths",
			Build: func(sel string) Scenario {
				return Scenario{
					Name:        "random-waypoint-dense",
					Description: "random waypoint, 1-5 units/s, target degree 14",
					Topology:    Topology{Deployment: builtinDeployment(14)},
					Protocol:    Protocol{Selector: sel},
					Mobility:    waypoint(1, 5),
					Duration:    120 * time.Second,
				}
			},
		},
		{
			Name:        "lossy-baseline",
			Description: "static deployment over the lossy radio — measured-ETX link quality instead of oracle weights",
			Build: func(sel string) Scenario {
				return Scenario{
					Name:        "lossy-baseline",
					Description: "lossy radio (10% base loss + distance loss), measured link quality",
					Topology:    Topology{Deployment: builtinDeployment(10)},
					Protocol:    Protocol{Selector: sel, MeasuredQoS: true},
					Medium:      Medium{Kind: "lossy", Loss: 0.1, DistanceLoss: 0.2},
					Duration:    120 * time.Second,
				}
			},
		},
		{
			Name:        "lossy-degrade",
			Description: "the radio degrades mid-run and recovers — measured link quality tracks the loss change",
			Build: func(sel string) Scenario {
				return Scenario{
					Name:        "lossy-degrade",
					Description: "base loss 5%, degraded to 35% at 60s, restored at 100s",
					Topology:    Topology{Deployment: builtinDeployment(10)},
					Protocol:    Protocol{Selector: sel, MeasuredQoS: true},
					Medium:      Medium{Kind: "lossy", Loss: 0.05},
					Duration:    150 * time.Second,
					Phases: []Phase{
						{At: 60 * time.Second, Action: SetLoss{Loss: 0.35}},
						{At: 100 * time.Second, Action: SetLoss{Loss: 0.05}},
					},
				}
			},
		},
		{
			Name:        "load-ramp",
			Description: "CBR offered load steps up in three waves over the lossy radio — admission and QoS violation under growing load",
			Build: func(sel string) Scenario {
				// Each wave adds flows at double the previous per-flow
				// rate; the delay ceiling is what the queues eventually
				// break.
				ceil := traffic.Requirements{MaxDelay: 60 * time.Millisecond}
				return Scenario{
					Name:        "load-ramp",
					Description: "three CBR waves (16/32/64 kB/s per flow) joining at 30s/60s/90s, 60ms delay ceiling",
					Topology:    Topology{Deployment: builtinDeployment(10)},
					Protocol:    Protocol{Selector: sel},
					Medium:      Medium{Kind: "lossy", Loss: 0.02},
					Duration:    120 * time.Second,
					Traffic: Traffic{Mix: []traffic.Spec{
						{Class: traffic.ClassCBR, Count: 6, RateBps: 16384, Start: 30 * time.Second, QoS: ceil},
						{Class: traffic.ClassCBR, Count: 6, RateBps: 32768, Start: 60 * time.Second, QoS: ceil},
						{Class: traffic.ClassCBR, Count: 6, RateBps: 65536, Start: 90 * time.Second, QoS: ceil},
					}},
				}
			},
		},
		{
			Name:        "video-vs-cbr",
			Description: "bursty video flows with delay+jitter bounds compete with CBR — per-class admission and violation metrics",
			Build: func(sel string) Scenario {
				return Scenario{
					Name:        "video-vs-cbr",
					Description: "8 on-off video flows (24 kB/s, 80ms/15ms bounds, bandwidth floor 2) vs 8 CBR flows (12 kB/s, 60ms ceiling)",
					Topology:    Topology{Deployment: builtinDeployment(10)},
					Protocol:    Protocol{Selector: sel},
					Medium:      Medium{Kind: "lossy", Loss: 0.05},
					Duration:    120 * time.Second,
					Traffic: Traffic{Mix: []traffic.Spec{
						{Class: traffic.ClassVideo, Count: 8, RateBps: 24576, QoS: traffic.Requirements{
							MinBandwidth: 2, MaxDelay: 80 * time.Millisecond, MaxJitter: 15 * time.Millisecond}},
						{Class: traffic.ClassCBR, Count: 8, RateBps: 12288, QoS: traffic.Requirements{
							MaxDelay: 60 * time.Millisecond}},
					}},
				}
			},
		},
		{
			Name:        "churn-storm",
			Description: "waves of mass link failure and healing — repeated reconvergence under stress",
			Build: func(sel string) Scenario {
				sc := Scenario{
					Name:        "churn-storm",
					Description: "six waves: 10% of links fail, heal 5s later",
					Topology:    Topology{Deployment: builtinDeployment(10)},
					Protocol:    Protocol{Selector: sel},
					Duration:    150 * time.Second,
				}
				for k := 0; k < 6; k++ {
					at := time.Duration(30+10*k) * time.Second
					sc.Phases = append(sc.Phases,
						Phase{At: at, Action: FailFraction{Fraction: 0.1}},
						Phase{At: at + 5*time.Second, Action: RestoreAll{}},
					)
				}
				return sc
			},
		},
	}
}

// Names lists the built-in scenario names in listing order.
func Names() []string {
	defs := BuiltIn()
	names := make([]string, len(defs))
	for i, d := range defs {
		names[i] = d.Name
	}
	return names
}

// ByName materialises a built-in scenario for one advertised-set selector
// ("fnbp", "topofilter", "qolsr" or "full"; empty means "fnbp"). The result
// is fully defaulted and valid.
func ByName(name, selector string) (Scenario, error) {
	if selector == "" {
		selector = "fnbp"
	}
	if _, err := core.ByName(selector); err != nil {
		return Scenario{}, fmt.Errorf("scenario: %w", err)
	}
	for _, d := range BuiltIn() {
		if d.Name == name {
			return d.Build(selector).WithDefaults(), nil
		}
	}
	return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (have %s)", name, strings.Join(Names(), ", "))
}
