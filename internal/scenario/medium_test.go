package scenario

import (
	"context"
	"testing"
	"time"

	"qolsr/internal/geom"
)

func TestMediumValidation(t *testing.T) {
	sc := ladderScenario()
	sc.Medium = Medium{Kind: "nope"}
	if err := sc.WithDefaults().Validate(); err == nil {
		t.Error("unknown medium accepted")
	}
	sc.Medium = Medium{Kind: "lossy", Loss: 1.5}
	if err := sc.WithDefaults().Validate(); err == nil {
		t.Error("loss above 1 accepted")
	}
	sc.Medium = Medium{Kind: "lossy", Loss: 0.2, DistanceLoss: 2}
	if err := sc.WithDefaults().Validate(); err == nil {
		t.Error("distance loss above 1 accepted")
	}
	sc.Medium = Medium{Kind: "lossy", Loss: 0.2}
	if err := sc.WithDefaults().Validate(); err != nil {
		t.Errorf("valid lossy medium rejected: %v", err)
	}
	// Lossy-only knobs on the (default) ideal medium would be silently
	// ignored at run time — Validate must reject them.
	sc.Medium = Medium{Loss: 0.3}
	if err := sc.WithDefaults().Validate(); err == nil {
		t.Error("loss on the ideal medium accepted")
	}
	sc.Medium = Medium{Kind: "ideal", Jitter: time.Millisecond}
	if err := sc.WithDefaults().Validate(); err == nil {
		t.Error("jitter on the ideal medium accepted")
	}
}

func TestLossActionsRequireLossyMedium(t *testing.T) {
	sc := ladderScenario()
	sc.Phases = []Phase{{At: 20 * time.Second, Action: SetLoss{Loss: 0.3}}}
	if err := sc.WithDefaults().Validate(); err == nil {
		t.Error("set-loss accepted on the ideal medium")
	}
	sc.Phases = []Phase{{At: 20 * time.Second, Action: DegradeLink{A: 0, B: 1, Loss: 0.5}}}
	if err := sc.WithDefaults().Validate(); err == nil {
		t.Error("degrade-link accepted on the ideal medium")
	}
	sc.Medium = Medium{Kind: "lossy"}
	if err := sc.WithDefaults().Validate(); err != nil {
		t.Errorf("degrade-link rejected on the lossy medium: %v", err)
	}
	// Action-level validation still applies.
	sc.Phases = []Phase{{At: 20 * time.Second, Action: SetLoss{Loss: 1}}}
	if err := sc.WithDefaults().Validate(); err == nil {
		t.Error("set-loss 1 accepted")
	}
	sc.Phases = []Phase{{At: 20 * time.Second, Action: DegradeLink{A: 1, B: 1, Loss: 0.5}}}
	if err := sc.WithDefaults().Validate(); err == nil {
		t.Error("degrade-link with equal endpoints accepted")
	}
}

// TestLossyLadderExecutes runs the ladder fixture over the lossy medium
// with measured QoS and checks the medium actually bites: frames are lost,
// the loss-shaping phases fire, and the run is reproducible.
func TestLossyLadderExecutes(t *testing.T) {
	sc := ladderScenario()
	sc.Medium = Medium{Kind: "lossy", Loss: 0.3}
	sc.Protocol.MeasuredQoS = true
	sc.Phases = []Phase{
		{At: 20 * time.Second, Action: SetLoss{Loss: 0.6}},
		{At: 26 * time.Second, Action: SetLoss{Loss: 0.1}},
	}
	run := func() *RunResult {
		rr, err := Execute(context.Background(), sc, 3, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rr
	}
	r1 := run()
	r2 := run()
	if r1.Data != r2.Data || r1.Control != r2.Control {
		t.Errorf("lossy run not reproducible: %+v/%+v vs %+v/%+v", r1.Data, r1.Control, r2.Data, r2.Control)
	}
	if r1.Data.Lost == 0 {
		t.Error("lossy medium lost no data packets over a 30% loss run")
	}
	if len(r1.Reconvergence) != 2 {
		t.Errorf("reconvergence records = %d, want 2 (both set-loss phases)", len(r1.Reconvergence))
	}
}

// TestDegradeLinkExecutes drives a degrade/clear cycle on an explicit
// two-node topology.
func TestDegradeLinkExecutes(t *testing.T) {
	sc := Scenario{
		Name: "degrade-pair",
		Topology: Topology{
			Points: []geom.Point{{X: 10, Y: 10}, {X: 60, Y: 10}},
			Field:  geom.Field{Width: 100, Height: 100},
			Radius: 100,
		},
		Medium:      Medium{Kind: "lossy"},
		Traffic:     Traffic{Flows: 2},
		Duration:    30 * time.Second,
		Warmup:      10 * time.Second,
		SampleEvery: 2 * time.Second,
		Phases: []Phase{
			{At: 14 * time.Second, Action: DegradeLink{A: 0, B: 1, Loss: 0.9}},
			{At: 24 * time.Second, Action: DegradeLink{A: 0, B: 1, Loss: -1}},
		},
	}
	rr, err := Execute(context.Background(), sc, 5, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Data.Lost == 0 {
		t.Error("degraded link lost nothing at 90% loss")
	}
	// A degrade targeting a non-existent link surfaces as a phase error.
	sc.Phases = []Phase{{At: 14 * time.Second, Action: DegradeLink{A: 0, B: 5, Loss: 0.9}}}
	if _, err := Execute(context.Background(), sc, 5, 0, nil); err == nil {
		t.Error("degrade-link on a missing link did not fail the run")
	}
}
