package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"qolsr/internal/stats"
	"qolsr/internal/traffic"
)

// SchemaVersion identifies the scenario JSON encoding; bump it on breaking
// changes to the document shape.
const SchemaVersion = "qolsr-scenario/v1"

// r6 rounds to 6 decimals so encoded documents are stable and readable.
func r6(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Round(x*1e6) / 1e6
}

func secs(d time.Duration) float64 { return r6(d.Seconds()) }

// jsonStat is one accumulated series in machine-readable form.
type jsonStat struct {
	Mean float64 `json:"mean"`
	CI95 float64 `json:"ci95"`
	N    int     `json:"n"`
}

func statOf(a *stats.Accumulator) jsonStat {
	return jsonStat{Mean: r6(a.Mean()), CI95: r6(a.CI95()), N: a.N()}
}

type jsonPhase struct {
	AtS    float64 `json:"at_s"`
	Action string  `json:"action"`
}

type jsonScenario struct {
	Name        string      `json:"name"`
	Description string      `json:"description,omitempty"`
	Selector    string      `json:"selector"`
	Metric      string      `json:"metric"`
	Medium      string      `json:"medium"`
	Loss        float64     `json:"loss,omitempty"`
	MeasuredQoS bool        `json:"measured_qos,omitempty"`
	DeltaTC     bool        `json:"delta_tc,omitempty"`
	FisheyeTTLs []int       `json:"fisheye_ttls,omitempty"`
	MinRelay    bool        `json:"min_relay,omitempty"`
	DurationS   float64     `json:"duration_s"`
	WarmupS     float64     `json:"warmup_s"`
	SampleS     float64     `json:"sample_every_s"`
	Flows       int         `json:"flows"`
	Mix         []jsonSpec  `json:"traffic_mix,omitempty"`
	Mobility    bool        `json:"mobility"`
	Phases      []jsonPhase `json:"phases,omitempty"`
}

// jsonSpec is one traffic-mix entry.
type jsonSpec struct {
	Class        string  `json:"class"`
	Count        int     `json:"count"`
	RateBps      float64 `json:"rate_bps"`
	PacketBytes  int     `json:"packet_bytes"`
	StartS       float64 `json:"start_s,omitempty"`
	MinBandwidth float64 `json:"min_bandwidth,omitempty"`
	MaxDelayS    float64 `json:"max_delay_s,omitempty"`
	MaxJitterS   float64 `json:"max_jitter_s,omitempty"`
}

type jsonSample struct {
	TimeS         float64 `json:"t_s"`
	Nodes         int     `json:"nodes"`
	Links         int     `json:"links"`
	Connected     int     `json:"connected"`
	Delivered     int     `json:"delivered"`
	Delivery      float64 `json:"delivery"`
	HopStretch    float64 `json:"hop_stretch"`
	Overhead      float64 `json:"overhead"`
	OverheadFlows int     `json:"overhead_flows"`
	ControlBPS    float64 `json:"control_bps"`
	TCFwdBPS      float64 `json:"tc_fwd_bps"`
	SetSize       float64 `json:"set_size"`
	// Traffic-engine window fields, omitted in legacy probe mode.
	TrafficSent       int     `json:"traffic_sent,omitempty"`
	TrafficCompleted  int     `json:"traffic_completed,omitempty"`
	TrafficDelivered  int     `json:"traffic_delivered,omitempty"`
	TrafficThroughput float64 `json:"traffic_throughput_bps,omitempty"`
	// Rebuild-observability window fields.
	TopoBuilds     int     `json:"topo_builds"`
	SPFFull        int     `json:"spf_full"`
	SPFIncremental int     `json:"spf_incremental"`
	SharedAdvRate  float64 `json:"shared_adv_rate"`
}

type jsonReconvergence struct {
	Phase       string  `json:"phase"`
	EventS      float64 `json:"event_s"`
	Recovered   bool    `json:"recovered"`
	RecoveredS  float64 `json:"recovered_s,omitempty"`
	ReconvergeS float64 `json:"reconverge_s,omitempty"`
}

type jsonTotals struct {
	HelloMessages uint64 `json:"hello_messages"`
	HelloBytes    uint64 `json:"hello_bytes"`
	TCMessages    uint64 `json:"tc_messages"`
	TCBytes       uint64 `json:"tc_bytes"`
	// The TC byte/message split: tc_bytes = originated + forwarded.
	TCOrigBytes   uint64 `json:"tc_originated_bytes"`
	TCForwarded   uint64 `json:"tc_forwarded"`
	TCFwdBytes    uint64 `json:"tc_forwarded_bytes"`
	DataSent      uint64 `json:"data_sent"`
	DataDelivered uint64 `json:"data_delivered"`
	DataNoRoute   uint64 `json:"data_no_route"`
	DataLost      uint64 `json:"data_lost"`
	DataExpired   uint64 `json:"data_expired"`
}

// jsonRebuild is one run's routing-compute totals: advertisement interning
// hits, topology builds, and the full/incremental SPF split.
type jsonRebuild struct {
	AdvRefresh     uint64  `json:"adv_refresh"`
	AdvShared      uint64  `json:"adv_shared"`
	AdvChange      uint64  `json:"adv_change"`
	TopoBuilds     uint64  `json:"topo_builds"`
	SPFFull        uint64  `json:"spf_full"`
	SPFIncremental uint64  `json:"spf_incremental"`
	EpochHitRate   float64 `json:"epoch_hit_rate"`
}

type jsonRun struct {
	Run           int                 `json:"run"`
	Nodes         int                 `json:"nodes"`
	Rebuilds      int                 `json:"rebuilds,omitempty"`
	Samples       []jsonSample        `json:"samples"`
	Reconvergence []jsonReconvergence `json:"reconvergence,omitempty"`
	Totals        jsonTotals          `json:"totals"`
	Rebuild       jsonRebuild         `json:"rebuild"`
	Traffic       *jsonTraffic        `json:"traffic,omitempty"`
}

// jsonFlow is one flow's end-of-run record.
type jsonFlow struct {
	ID            int     `json:"id"`
	Class         string  `json:"class"`
	Src           int32   `json:"src"`
	Dst           int32   `json:"dst"`
	Verdict       string  `json:"verdict"`
	Reason        string  `json:"reason,omitempty"`
	Hops          int     `json:"hops,omitempty"`
	Sent          uint64  `json:"sent"`
	Delivered     uint64  `json:"delivered"`
	Delivery      float64 `json:"delivery"`
	ThroughputBps float64 `json:"throughput_bps"`
	DelayMeanS    float64 `json:"delay_mean_s"`
	DelayP50S     float64 `json:"delay_p50_s"`
	DelayP95S     float64 `json:"delay_p95_s"`
	DelayP99S     float64 `json:"delay_p99_s"`
	JitterS       float64 `json:"jitter_s"`
}

// jsonClass is one class's (or the mix total's) end-of-run aggregate.
type jsonClass struct {
	Class          string  `json:"class"`
	Flows          int     `json:"flows"`
	Admitted       int     `json:"admitted"`
	Satisfied      int     `json:"satisfied"`
	Violated       int     `json:"violated"`
	CorrectReject  int     `json:"correct_reject"`
	FalseReject    int     `json:"false_reject"`
	ViolationRatio float64 `json:"violation_ratio"`
	Sent           uint64  `json:"sent"`
	Delivered      uint64  `json:"delivered"`
	Delivery       float64 `json:"delivery"`
	ThroughputBps  float64 `json:"throughput_bps"`
	DelayMeanS     float64 `json:"delay_mean_s"`
	DelayP95S      float64 `json:"delay_p95_s"`
	DelayP99S      float64 `json:"delay_p99_s"`
	JitterS        float64 `json:"jitter_s"`
}

// jsonTraffic is one run's traffic-engine accounting.
type jsonTraffic struct {
	Flows   []jsonFlow  `json:"flows"`
	Classes []jsonClass `json:"classes"`
	Total   jsonClass   `json:"total"`
}

func classJSON(c traffic.ClassReport) jsonClass {
	return jsonClass{
		Class:          c.Class,
		Flows:          c.Flows,
		Admitted:       c.Admitted,
		Satisfied:      c.Satisfied,
		Violated:       c.Violated,
		CorrectReject:  c.CorrectReject,
		FalseReject:    c.FalseReject,
		ViolationRatio: r6(c.ViolationRatio()),
		Sent:           c.Sent,
		Delivered:      c.Delivered,
		Delivery:       r6(c.Delivery),
		ThroughputBps:  r6(c.Throughput),
		DelayMeanS:     secs(c.DelayMean),
		DelayP95S:      secs(c.DelayP95),
		DelayP99S:      secs(c.DelayP99),
		JitterS:        secs(c.Jitter),
	}
}

func trafficJSON(rep *traffic.Report) *jsonTraffic {
	if rep == nil {
		return nil
	}
	jt := &jsonTraffic{Total: classJSON(rep.Total)}
	for _, f := range rep.Flows {
		jt.Flows = append(jt.Flows, jsonFlow{
			ID:            f.ID,
			Class:         f.Class,
			Src:           f.Src,
			Dst:           f.Dst,
			Verdict:       string(f.Verdict),
			Reason:        f.Reason,
			Hops:          f.Decision.Hops,
			Sent:          f.Sent,
			Delivered:     f.Delivered,
			Delivery:      r6(f.Delivery),
			ThroughputBps: r6(f.Throughput),
			DelayMeanS:    secs(f.DelayMean),
			DelayP50S:     secs(f.DelayP50),
			DelayP95S:     secs(f.DelayP95),
			DelayP99S:     secs(f.DelayP99),
			JitterS:       secs(f.Jitter),
		})
	}
	for _, c := range rep.Classes {
		jt.Classes = append(jt.Classes, classJSON(c))
	}
	return jt
}

type jsonAggregate struct {
	TimeS      float64  `json:"t_s"`
	Delivery   jsonStat `json:"delivery"`
	HopStretch jsonStat `json:"hop_stretch"`
	Overhead   jsonStat `json:"overhead"`
	ControlBPS jsonStat `json:"control_bps"`
	SetSize    jsonStat `json:"set_size"`
}

type jsonDoc struct {
	Schema     string           `json:"schema"`
	Scenario   jsonScenario     `json:"scenario"`
	Seed       int64            `json:"seed"`
	Runs       int              `json:"runs"`
	RunData    []jsonRun        `json:"run_results"`
	Aggregate  []jsonAggregate  `json:"aggregate"`
	TrafficAgg []jsonTrafficAgg `json:"traffic_aggregate,omitempty"`
}

// jsonTrafficAgg is one flow class's cross-run aggregate.
type jsonTrafficAgg struct {
	Class         string   `json:"class"`
	Flows         int      `json:"flows"`
	Admitted      int      `json:"admitted"`
	Satisfied     int      `json:"satisfied"`
	Violated      int      `json:"violated"`
	CorrectReject int      `json:"correct_reject"`
	FalseReject   int      `json:"false_reject"`
	Violation     jsonStat `json:"violation_ratio"`
	Delivery      jsonStat `json:"delivery"`
	ThroughputBps jsonStat `json:"throughput_bps"`
	DelayP95S     jsonStat `json:"delay_p95_s"`
	JitterS       jsonStat `json:"jitter_s"`
}

func sampleJSON(s Sample) jsonSample {
	return jsonSample{
		TimeS:             secs(s.Time),
		Nodes:             s.Nodes,
		Links:             s.Links,
		Connected:         s.Connected,
		Delivered:         s.Delivered,
		Delivery:          r6(s.Delivery),
		HopStretch:        r6(s.HopStretch),
		Overhead:          r6(s.Overhead),
		OverheadFlows:     s.OverheadFlows,
		ControlBPS:        r6(s.ControlBPS),
		TCFwdBPS:          r6(s.TCFwdBPS),
		SetSize:           r6(s.SetSize),
		TrafficSent:       s.TrafficSent,
		TrafficCompleted:  s.TrafficCompleted,
		TrafficDelivered:  s.TrafficDelivered,
		TrafficThroughput: r6(s.TrafficThroughputBps),
		TopoBuilds:        s.TopoBuilds,
		SPFFull:           s.SPFFull,
		SPFIncremental:    s.SPFIncremental,
		SharedAdvRate:     r6(s.SharedAdvRate),
	}
}

// EncodeJSON writes the result as an indented JSON document (schema
// "qolsr-scenario/v1"): the executed program, per-run samples,
// reconvergence records and traffic totals, and the cross-run aggregate.
func (r *Result) EncodeJSON(w io.Writer) error {
	sc := r.Scenario.WithDefaults()
	doc := jsonDoc{
		Schema: SchemaVersion,
		Scenario: jsonScenario{
			Name:        sc.Name,
			Description: sc.Description,
			Selector:    sc.Protocol.Selector,
			Metric:      sc.Protocol.Metric.Name(),
			Medium:      sc.Medium.Kind,
			Loss:        r6(sc.Medium.Loss),
			MeasuredQoS: sc.Protocol.MeasuredQoS,
			DurationS:   secs(sc.Duration),
			WarmupS:     secs(sc.Warmup),
			SampleS:     secs(sc.SampleEvery),
			Flows:       sc.Traffic.Flows,
			Mobility:    sc.Mobility != nil,
		},
		Seed: r.Seed,
		Runs: len(r.Runs),
	}
	for _, sp := range sc.Traffic.Mix {
		doc.Scenario.Mix = append(doc.Scenario.Mix, jsonSpec{
			Class:        sp.Class,
			Count:        sp.Count,
			RateBps:      r6(sp.RateBps),
			PacketBytes:  sp.PacketBytes,
			StartS:       secs(sp.Start),
			MinBandwidth: r6(sp.QoS.MinBandwidth),
			MaxDelayS:    secs(sp.QoS.MaxDelay),
			MaxJitterS:   secs(sp.QoS.MaxJitter),
		})
	}
	for _, ph := range sc.Phases {
		doc.Scenario.Phases = append(doc.Scenario.Phases, jsonPhase{AtS: secs(ph.At), Action: ph.Action.Describe()})
	}
	for _, run := range r.Runs {
		if run == nil {
			continue
		}
		jr := jsonRun{
			Run:      run.Run,
			Nodes:    run.Nodes,
			Rebuilds: run.Rebuilds,
			Totals: jsonTotals{
				HelloMessages: run.Control.HelloMessages,
				HelloBytes:    run.Control.HelloBytes,
				TCMessages:    run.Control.TCMessages,
				TCBytes:       run.Control.TCBytes,
				TCOrigBytes:   run.Control.TCOriginatedBytes,
				TCForwarded:   run.Control.TCForwarded,
				TCFwdBytes:    run.Control.TCForwardedBytes,
				DataSent:      run.Data.Sent,
				DataDelivered: run.Data.Delivered,
				DataNoRoute:   run.Data.NoRoute,
				DataLost:      run.Data.Lost,
				DataExpired:   run.Data.Expired,
			},
			Rebuild: jsonRebuild{
				AdvRefresh:     run.Rebuild.AdvRefresh,
				AdvShared:      run.Rebuild.AdvShared,
				AdvChange:      run.Rebuild.AdvChange,
				TopoBuilds:     run.Rebuild.TopoBuilds,
				SPFFull:        run.Rebuild.SPFFull,
				SPFIncremental: run.Rebuild.SPFIncremental,
				EpochHitRate:   r6(run.Rebuild.EpochHitRate()),
			},
			Traffic: trafficJSON(run.Traffic),
		}
		for _, s := range run.Samples {
			jr.Samples = append(jr.Samples, sampleJSON(s))
		}
		for _, rc := range run.Reconvergence {
			jrc := jsonReconvergence{Phase: rc.Phase, EventS: secs(rc.EventTime), Recovered: rc.Recovered}
			if rc.Recovered {
				jrc.RecoveredS = secs(rc.RecoveredAt)
				jrc.ReconvergeS = secs(rc.Duration())
			}
			jr.Reconvergence = append(jr.Reconvergence, jrc)
		}
		doc.RunData = append(doc.RunData, jr)
	}
	for _, agg := range r.Aggregate() {
		doc.Aggregate = append(doc.Aggregate, jsonAggregate{
			TimeS:      secs(agg.Time),
			Delivery:   statOf(&agg.Delivery),
			HopStretch: statOf(&agg.HopStretch),
			Overhead:   statOf(&agg.Overhead),
			ControlBPS: statOf(&agg.ControlBPS),
			SetSize:    statOf(&agg.SetSize),
		})
	}
	for _, agg := range r.AggregateTraffic() {
		agg := agg
		doc.TrafficAgg = append(doc.TrafficAgg, jsonTrafficAgg{
			Class:         agg.Class,
			Flows:         agg.Flows,
			Admitted:      agg.Admitted,
			Satisfied:     agg.Satisfied,
			Violated:      agg.Violated,
			CorrectReject: agg.CorrectReject,
			FalseReject:   agg.FalseReject,
			Violation:     statOf(&agg.Violation),
			Delivery:      statOf(&agg.Delivery),
			ThroughputBps: statOf(&agg.Throughput),
			DelayP95S:     statOf(&agg.DelayP95),
			JitterS:       statOf(&agg.Jitter),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// EncodeCSV writes the result in long form, one row per (run, sample time,
// quantity) — the shape plotting tools group and pivot directly. Each
// reconvergence record adds one "reconverge_s" row at its event time (value
// -1 when the run never recovered).
func (r *Result) EncodeCSV(w io.Writer) error {
	sc := r.Scenario.WithDefaults()
	if _, err := fmt.Fprintln(w, "scenario,selector,run,time_s,quantity,value"); err != nil {
		return err
	}
	row := func(run int, t, quantity, value string) error {
		_, err := fmt.Fprintf(w, "%s,%s,%d,%s,%s,%s\n", sc.Name, sc.Protocol.Selector, run, t, quantity, value)
		return err
	}
	for _, run := range r.Runs {
		if run == nil {
			continue
		}
		for _, s := range run.Samples {
			t := fmt.Sprintf("%g", secs(s.Time))
			cells := []struct {
				q, v string
			}{
				{"nodes", fmt.Sprintf("%d", s.Nodes)},
				{"links", fmt.Sprintf("%d", s.Links)},
				{"connected", fmt.Sprintf("%d", s.Connected)},
				{"delivered", fmt.Sprintf("%d", s.Delivered)},
				{"delivery", fmt.Sprintf("%.6f", r6(s.Delivery))},
				{"hop_stretch", fmt.Sprintf("%.6f", r6(s.HopStretch))},
				{"overhead", fmt.Sprintf("%.6f", r6(s.Overhead))},
				{"overhead_flows", fmt.Sprintf("%d", s.OverheadFlows)},
				{"control_bps", fmt.Sprintf("%.6f", r6(s.ControlBPS))},
				{"tc_fwd_bps", fmt.Sprintf("%.6f", r6(s.TCFwdBPS))},
				{"set_size", fmt.Sprintf("%.6f", r6(s.SetSize))},
				{"topo_builds", fmt.Sprintf("%d", s.TopoBuilds)},
				{"spf_full", fmt.Sprintf("%d", s.SPFFull)},
				{"spf_incremental", fmt.Sprintf("%d", s.SPFIncremental)},
				{"shared_adv_rate", fmt.Sprintf("%.6f", r6(s.SharedAdvRate))},
			}
			if run.Traffic != nil {
				cells = append(cells,
					struct{ q, v string }{"traffic_sent", fmt.Sprintf("%d", s.TrafficSent)},
					struct{ q, v string }{"traffic_delivered", fmt.Sprintf("%d", s.TrafficDelivered)},
					struct{ q, v string }{"traffic_throughput_bps", fmt.Sprintf("%.6f", r6(s.TrafficThroughputBps))},
				)
			}
			for _, c := range cells {
				if err := row(run.Run, t, c.q, c.v); err != nil {
					return err
				}
			}
		}
		if run.Traffic != nil {
			// One verdict summary row group per class at the end of the
			// run, plus the mix total.
			end := fmt.Sprintf("%g", secs(sc.Duration))
			emit := func(c jsonClass) error {
				prefix := "traffic_" + c.Class + "_"
				cells := []struct{ q, v string }{
					{prefix + "admitted", fmt.Sprintf("%d", c.Admitted)},
					{prefix + "violated", fmt.Sprintf("%d", c.Violated)},
					{prefix + "correct_reject", fmt.Sprintf("%d", c.CorrectReject)},
					{prefix + "false_reject", fmt.Sprintf("%d", c.FalseReject)},
					{prefix + "violation_ratio", fmt.Sprintf("%.6f", c.ViolationRatio)},
					{prefix + "delivery", fmt.Sprintf("%.6f", c.Delivery)},
					{prefix + "throughput_bps", fmt.Sprintf("%.6f", c.ThroughputBps)},
					{prefix + "delay_p95_s", fmt.Sprintf("%.6f", c.DelayP95S)},
				}
				for _, cell := range cells {
					if err := row(run.Run, end, cell.q, cell.v); err != nil {
						return err
					}
				}
				return nil
			}
			for _, c := range run.Traffic.Classes {
				if err := emit(classJSON(c)); err != nil {
					return err
				}
			}
			if err := emit(classJSON(run.Traffic.Total)); err != nil {
				return err
			}
		}
		for _, rc := range run.Reconvergence {
			v := "-1"
			if rc.Recovered {
				v = fmt.Sprintf("%.6f", secs(rc.Duration()))
			}
			if err := row(run.Run, fmt.Sprintf("%g", secs(rc.EventTime)), "reconverge_s", v); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteTable renders the cross-run aggregate as an aligned text table, plus
// a reconvergence summary per disruptive phase.
func (r *Result) WriteTable(w io.Writer) error {
	sc := r.Scenario.WithDefaults()
	var nodes stats.Accumulator
	for _, run := range r.Runs {
		if run != nil {
			nodes.Add(float64(run.Nodes))
		}
	}
	if _, err := fmt.Fprintf(w, "# scenario %s — selector %s (%d runs, %.0f nodes avg)\n",
		sc.Name, sc.Protocol.Selector, len(r.Runs), nodes.Mean()); err != nil {
		return err
	}
	header := []string{"t_s", "delivery", "±95%", "stretch", "overhead", "ctrlB/s", "set"}
	if _, err := fmt.Fprintln(w, strings.Join(padCells(header), "  ")); err != nil {
		return err
	}
	for _, agg := range r.Aggregate() {
		cells := []string{
			fmt.Sprintf("%g", secs(agg.Time)),
			fmt.Sprintf("%.4f", agg.Delivery.Mean()),
			fmt.Sprintf("%.4f", agg.Delivery.CI95()),
			fmt.Sprintf("%.3f", agg.HopStretch.Mean()),
			fmt.Sprintf("%.4f", agg.Overhead.Mean()),
			fmt.Sprintf("%.0f", agg.ControlBPS.Mean()),
			fmt.Sprintf("%.2f", agg.SetSize.Mean()),
		}
		if _, err := fmt.Fprintln(w, strings.Join(padCells(cells), "  ")); err != nil {
			return err
		}
	}
	if err := r.writeTraffic(w); err != nil {
		return err
	}
	return r.writeReconvergence(w)
}

// writeTraffic summarises the traffic engine's cross-run class aggregates —
// admission and verdict counts, the QoS-violation ratio, and the measured
// delivery/delay/jitter. Silent in legacy probe mode.
func (r *Result) writeTraffic(w io.Writer) error {
	aggs := r.AggregateTraffic()
	if len(aggs) == 0 {
		return nil
	}
	if _, err := fmt.Fprintln(w, "# traffic (summed across runs; rates/delays are per-run means)"); err != nil {
		return err
	}
	header := []string{"class", "flows", "admit", "viol", "c-rej", "f-rej", "violratio", "delivery", "thru_B/s", "p95_ms", "jit_ms"}
	if _, err := fmt.Fprintln(w, strings.Join(padCells(header), "  ")); err != nil {
		return err
	}
	for _, agg := range aggs {
		cells := []string{
			agg.Class,
			fmt.Sprintf("%d", agg.Flows),
			fmt.Sprintf("%d", agg.Admitted),
			fmt.Sprintf("%d", agg.Violated),
			fmt.Sprintf("%d", agg.CorrectReject),
			fmt.Sprintf("%d", agg.FalseReject),
			fmt.Sprintf("%.3f", agg.Violation.Mean()),
			fmt.Sprintf("%.3f", agg.Delivery.Mean()),
			fmt.Sprintf("%.0f", agg.Throughput.Mean()),
			fmt.Sprintf("%.2f", agg.DelayP95.Mean()*1e3),
			fmt.Sprintf("%.2f", agg.Jitter.Mean()*1e3),
		}
		if _, err := fmt.Fprintln(w, strings.Join(padCells(cells), "  ")); err != nil {
			return err
		}
	}
	return nil
}

// writeReconvergence summarises recovery per disruptive phase across runs.
func (r *Result) writeReconvergence(w io.Writer) error {
	type key struct {
		phase  string
		eventS float64
	}
	var order []key
	recovered := make(map[key]int)
	total := make(map[key]int)
	durations := make(map[key]*stats.Accumulator)
	for _, run := range r.Runs {
		if run == nil {
			continue
		}
		for _, rc := range run.Reconvergence {
			k := key{phase: rc.Phase, eventS: secs(rc.EventTime)}
			if total[k] == 0 {
				order = append(order, k)
				durations[k] = &stats.Accumulator{}
			}
			total[k]++
			if rc.Recovered {
				recovered[k]++
				durations[k].Add(rc.Duration().Seconds())
			}
		}
	}
	if len(order) == 0 {
		return nil
	}
	if _, err := fmt.Fprintln(w, "# reconvergence"); err != nil {
		return err
	}
	for _, k := range order {
		mean := "n/a"
		if recovered[k] > 0 {
			mean = fmt.Sprintf("%.1fs", durations[k].Mean())
		}
		if _, err := fmt.Fprintf(w, "%s @%gs: mean %s (%d/%d runs recovered)\n",
			k.phase, k.eventS, mean, recovered[k], total[k]); err != nil {
			return err
		}
	}
	return nil
}

func padCells(cells []string) []string {
	const width = 10
	out := make([]string, len(cells))
	for i, c := range cells {
		if len(c) < width {
			c = c + strings.Repeat(" ", width-len(c))
		}
		out[i] = c
	}
	return out
}
