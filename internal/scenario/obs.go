package scenario

import (
	"encoding/json"
	"io"

	"qolsr/internal/obs"
)

// MetricsSchemaVersion identifies the metrics JSON encoding; bump it on
// breaking changes to the document shape. It is deliberately separate from
// SchemaVersion — metrics evolve with the instrumentation while the
// measurement document stays golden-pinned.
const MetricsSchemaVersion = "qolsr-metrics/v1"

// metricsDoc is the -metrics-out document: the registry snapshots of every
// replicate run merged into one reading.
type metricsDoc struct {
	Schema   string               `json:"schema"`
	Scenario string               `json:"scenario"`
	Selector string               `json:"selector"`
	Seed     int64                `json:"seed"`
	Runs     int                  `json:"runs"`
	Metrics  []obs.SnapshotMetric `json:"metrics"`
}

// MergedMetrics folds the per-run registry snapshots into one: counters and
// histograms sum across runs, gauges keep the maximum (every registered
// gauge is a peak). Empty when no run collected metrics.
func (r *Result) MergedMetrics() obs.Snapshot {
	snaps := make([]obs.Snapshot, 0, len(r.Runs))
	for _, run := range r.Runs {
		if run != nil {
			snaps = append(snaps, run.Metrics)
		}
	}
	return obs.Merge(snaps...)
}

// EncodeMetrics writes the merged metrics snapshot as an indented JSON
// document (schema "qolsr-metrics/v1"). The encoding is deterministic:
// metrics sort by (name, labels) and values are exact integers for counters.
func (r *Result) EncodeMetrics(w io.Writer) error {
	sc := r.Scenario.WithDefaults()
	doc := metricsDoc{
		Schema:   MetricsSchemaVersion,
		Scenario: sc.Name,
		Selector: sc.Protocol.Selector,
		Seed:     r.Seed,
		Runs:     len(r.Runs),
		Metrics:  r.MergedMetrics().Metrics,
	}
	if doc.Metrics == nil {
		doc.Metrics = []obs.SnapshotMetric{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// EncodeTrace writes the runs' sampled packet-path traces as one Chrome
// trace-event JSON document, loadable in Perfetto or chrome://tracing.
// Events concatenate in run order; each run's events carry the run index as
// their pid, so the viewer groups them as one process per run with one
// track per flow.
func (r *Result) EncodeTrace(w io.Writer) error {
	var events []obs.TraceEvent
	for _, run := range r.Runs {
		if run != nil {
			events = append(events, run.Trace...)
		}
	}
	return obs.WriteTrace(w, events)
}
