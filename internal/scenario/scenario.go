// Package scenario defines deterministic, composable dynamic-network
// scenarios for the live OLSR/QOLSR stack: a topology source, a protocol
// configuration, a timeline of phases (mobility, link-failure/restore
// schedules, partitions), a probe-traffic workload on the data plane, and
// measurement samples taken at a fixed virtual-time cadence (delivery
// ratio, hop stretch, routing overhead vs. the optimum, control traffic,
// advertised-set sizes, reconvergence time after churn).
//
// The paper evaluates FNBP only on static random graphs; scenarios exercise
// the regime OLSR's soft-state design exists for — mobility, link churn and
// partition healing — on the same protocol implementations. Every scenario
// run is a pure function of (scenario, seed, run index): replicate runs are
// independent, so the runner can parallelize them while keeping results
// bit-identical for any worker count.
package scenario

import (
	"fmt"
	"time"

	"qolsr/internal/core"
	"qolsr/internal/geom"
	"qolsr/internal/metric"
	"qolsr/internal/traffic"
)

// Topology chooses where the scenario's nodes come from. Exactly one of
// Deployment and Points must be set.
type Topology struct {
	// Deployment, when non-nil, samples node positions from the Poisson
	// point process independently per run (the paper's deployment model).
	Deployment *geom.Deployment
	// Points places nodes explicitly; every run then starts from the same
	// geometry. Field and Radius are required alongside Points.
	Points []geom.Point
	// Field is the deployment area for explicit Points.
	Field geom.Field
	// Radius is the unit-disk communication radius for explicit Points.
	Radius float64
}

// Validate checks the topology source.
func (t Topology) Validate() error {
	switch {
	case t.Deployment != nil && len(t.Points) > 0:
		return fmt.Errorf("scenario: topology sets both Deployment and Points")
	case t.Deployment != nil:
		return t.Deployment.Validate()
	case len(t.Points) > 0:
		if err := t.Field.Validate(); err != nil {
			return err
		}
		if !(t.Radius > 0) {
			return fmt.Errorf("scenario: radius %g must be positive", t.Radius)
		}
		for i, p := range t.Points {
			if !t.Field.Contains(p) {
				return fmt.Errorf("scenario: point %d %v outside field", i, p)
			}
		}
		return nil
	default:
		return fmt.Errorf("scenario: topology needs a Deployment or explicit Points")
	}
}

// field returns the deployment area regardless of the source.
func (t Topology) field() geom.Field {
	if t.Deployment != nil {
		return t.Deployment.Field
	}
	return t.Field
}

// radius returns the communication radius regardless of the source.
func (t Topology) radius() float64 {
	if t.Deployment != nil {
		return t.Deployment.Radius
	}
	return t.Radius
}

// Protocol configures the stack every node runs. The zero value means FNBP
// selection under the bandwidth metric with RFC-style timers.
type Protocol struct {
	// Metric is the QoS metric driving selection and routing (default
	// bandwidth).
	Metric metric.Metric
	// Selector names the advertised-set scheme: "fnbp", "topofilter",
	// "qolsr" or "full" (default "fnbp").
	Selector string
	// HelloInterval and TCInterval override the emission periods when
	// positive (defaults 2s and 5s, RFC 3626).
	HelloInterval time.Duration
	TCInterval    time.Duration
	// MeasuredQoS switches link sensing from the topology oracle to
	// measurement: link weights come from windowed HELLO delivery ratios
	// (ETX-style), the regime the lossy medium exists for.
	MeasuredQoS bool
	// DeltaTC switches TC dissemination to delta encoding: full TCs anchor
	// a chain of incremental updates, cutting steady-state TC bytes.
	DeltaTC bool
	// FisheyeTTLs, when non-empty, scopes successive TC emissions with this
	// cyclic TTL schedule (0 = unlimited). With DeltaTC, the schedule must
	// contain a 0 entry — full TCs ride the unlimited emissions.
	FisheyeTTLs []int
	// MinRelay floods through a coverage-minimal relay set instead of the
	// QoS-driven advertised set, decoupling flooding cost from QoS coverage.
	MinRelay bool
}

// Medium selects the radio model a scenario runs on. The zero value is the
// ideal MAC the paper assumes.
type Medium struct {
	// Kind is "ideal" (default) or "lossy".
	Kind string
	// Loss is the lossy medium's base per-link packet-error rate, in
	// [0, 1).
	Loss float64
	// DistanceLoss adds distance-dependent loss on static topologies: a
	// link at the full communication radius suffers this much extra error
	// rate, scaled by (d/R)². Ignored under mobility (the geometry the
	// medium captures would go stale).
	DistanceLoss float64
	// Jitter bounds the lossy per-hop jitter (default 200µs).
	Jitter time.Duration
	// BytesPerSec overrides the serialization rate of a unit-bandwidth
	// link (default 125000).
	BytesPerSec float64
}

// Validate checks the medium spec.
func (m Medium) Validate() error {
	switch m.Kind {
	case "", "ideal":
		// Lossy-only knobs on the ideal medium would be silently ignored
		// — reject them so a forgotten Kind can't simulate a perfect
		// radio while the user believes they configured loss.
		if m.Loss != 0 || m.DistanceLoss != 0 || m.Jitter != 0 || m.BytesPerSec != 0 {
			return fmt.Errorf("scenario: medium knobs (loss/jitter/rate) require Kind \"lossy\", got %q", m.Kind)
		}
	case "lossy":
	default:
		return fmt.Errorf("scenario: unknown medium %q (have ideal, lossy)", m.Kind)
	}
	if m.Loss < 0 || m.Loss >= 1 {
		return fmt.Errorf("scenario: medium loss %g outside [0,1)", m.Loss)
	}
	if m.DistanceLoss < 0 || m.DistanceLoss > 1 {
		return fmt.Errorf("scenario: medium distance loss %g outside [0,1]", m.DistanceLoss)
	}
	if m.Jitter < 0 {
		return fmt.Errorf("scenario: negative medium jitter %v", m.Jitter)
	}
	return nil
}

// Mobility couples the scenario to a waypoint model for its whole duration.
type Mobility struct {
	// Model is the random-waypoint parameterisation (field is overridden
	// by the scenario's topology field).
	Model geom.Waypoint
	// RebuildEvery is the topology-refresh period (default 1s).
	RebuildEvery time.Duration
}

// Traffic is the data-plane workload. Exactly one of the two forms is
// active: the legacy probe workload (Flows), or a sustained flow-class mix
// (Mix) driven by the traffic engine.
type Traffic struct {
	// Flows is the legacy probe workload: persistent random (source,
	// destination) flows, each sending one data-plane packet per
	// measurement sample — equivalent to a minimal CBR probe class paced
	// by the sample clock. Default 10 (clamped to the available ordered
	// pairs) when Mix is empty; must be unset when Mix is given.
	Flows int
	// Mix, when non-empty, replaces the probes with sustained flows: each
	// spec contributes Count flows of its class (cbr, poisson, video),
	// admission-controlled against their QoS requirements and driven
	// packet by packet through the routing tables and the radio medium.
	// Specs with a zero Start begin at the scenario warmup.
	Mix []traffic.Spec
}

// Obs configures the observability layer of a run. The zero value keeps
// everything off: no registry is attached, the tracer stays nil (one nil
// compare per packet on the data plane), and every measurement golden stays
// bit-identical.
type Obs struct {
	// Metrics attaches a metrics registry to every run and snapshots it at
	// the end of the run (RunResult.Metrics). The registry reads the run's
	// existing counters lazily at snapshot time — it adds nothing to the
	// event hot path.
	Metrics bool
	// TraceEvery, when positive, samples one in TraceEvery data packets for
	// hop-by-hop path tracing (RunResult.Trace, Chrome trace-event format).
	// Sampling is keyed by packet identity (flow, seq), never by arrival
	// order, so the trace is byte-identical at every worker count.
	TraceEvery int
}

// Phase is one timeline entry: an action applied at a virtual time.
type Phase struct {
	// At is the virtual time the action fires.
	At time.Duration
	// Action is what happens.
	Action Action
}

// Scenario is one declarative dynamic-network program. Build literals, or
// fetch a parameterised built-in with ByName.
type Scenario struct {
	// Name identifies the scenario in encodings and tables.
	Name string
	// Description is a one-line summary (built-ins fill it).
	Description string
	// Topology is the node source.
	Topology Topology
	// Protocol configures the per-node stack.
	Protocol Protocol
	// Medium is the radio model (default ideal).
	Medium Medium
	// Mobility, when non-nil, moves the nodes for the whole run.
	Mobility *Mobility
	// Traffic is the probe workload.
	Traffic Traffic
	// Phases is the timeline of actions, in any order (the engine sorts).
	Phases []Phase
	// Duration is the simulated virtual time per run (default 60s).
	Duration time.Duration
	// Warmup is the first sample time — earlier behaviour is protocol
	// cold-start, not scenario signal (default min(Duration/3, 20s)).
	Warmup time.Duration
	// SampleEvery is the measurement cadence (default 2s, minimum 100ms
	// so probe packets drain between samples).
	SampleEvery time.Duration
	// Workers bounds the goroutines the engine fans route-table rebuilds
	// across at each sample barrier (0 = GOMAXPROCS, 1 = serial). It
	// affects wall-clock time only: each node's table is a pure function
	// of that node's state, so results are bit-identical at every setting.
	Workers int
	// Obs configures metrics collection and packet path tracing (default
	// all off).
	Obs Obs
}

// WithDefaults returns a copy with every unset knob at its default.
func (sc Scenario) WithDefaults() Scenario {
	if sc.Name == "" {
		sc.Name = "custom"
	}
	if sc.Protocol.Metric == nil {
		sc.Protocol.Metric = metric.Bandwidth()
	}
	if sc.Protocol.Selector == "" {
		sc.Protocol.Selector = "fnbp"
	}
	if sc.Medium.Kind == "" {
		sc.Medium.Kind = "ideal"
	}
	if len(sc.Traffic.Mix) == 0 {
		if sc.Traffic.Flows <= 0 {
			sc.Traffic.Flows = 10
		}
	} else {
		mix := make([]traffic.Spec, len(sc.Traffic.Mix))
		for i, sp := range sc.Traffic.Mix {
			mix[i] = sp.WithDefaults()
		}
		sc.Traffic.Mix = mix
	}
	if sc.Duration <= 0 {
		sc.Duration = 60 * time.Second
	}
	if sc.Warmup <= 0 {
		sc.Warmup = sc.Duration / 3
		if sc.Warmup > 20*time.Second {
			sc.Warmup = 20 * time.Second
		}
	}
	if sc.SampleEvery <= 0 {
		sc.SampleEvery = 2 * time.Second
	}
	if sc.Mobility != nil && sc.Mobility.RebuildEvery <= 0 {
		m := *sc.Mobility
		m.RebuildEvery = time.Second
		sc.Mobility = &m
	}
	return sc
}

// minSampleEvery keeps the probe drain window (TTL hops of propagation
// delay) strictly inside one sampling interval.
const minSampleEvery = 100 * time.Millisecond

// Validate checks the scenario after defaulting. ByName output and
// WithDefaults results always validate.
func (sc Scenario) Validate() error {
	if err := sc.Topology.Validate(); err != nil {
		return err
	}
	if sc.Protocol.Metric == nil {
		return fmt.Errorf("scenario: protocol needs a metric")
	}
	if _, err := core.ByName(sc.Protocol.Selector); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if err := sc.Medium.Validate(); err != nil {
		return err
	}
	if sc.Duration <= 0 {
		return fmt.Errorf("scenario: non-positive duration %v", sc.Duration)
	}
	if len(sc.Traffic.Mix) > 0 {
		if sc.Traffic.Flows > 0 {
			return fmt.Errorf("scenario: traffic sets both the legacy Flows probe count and a Mix — use one")
		}
		for i, sp := range sc.Traffic.Mix {
			if err := sp.WithDefaults().Validate(); err != nil {
				return fmt.Errorf("scenario: traffic mix %d: %w", i, err)
			}
			if sp.Start > sc.Duration {
				return fmt.Errorf("scenario: traffic mix %d starts at %v, after the %v duration", i, sp.Start, sc.Duration)
			}
		}
	}
	if sc.Obs.TraceEvery < 0 {
		return fmt.Errorf("scenario: negative trace sampling period %d", sc.Obs.TraceEvery)
	}
	if sc.SampleEvery < minSampleEvery {
		return fmt.Errorf("scenario: sample interval %v below minimum %v", sc.SampleEvery, minSampleEvery)
	}
	if sc.Warmup > sc.Duration {
		return fmt.Errorf("scenario: warmup %v exceeds duration %v", sc.Warmup, sc.Duration)
	}
	if sc.Mobility != nil {
		model := sc.Mobility.Model
		model.Field = sc.Topology.field()
		if err := model.Validate(); err != nil {
			return err
		}
	}
	for i, ph := range sc.Phases {
		if ph.Action == nil {
			return fmt.Errorf("scenario: phase %d has no action", i)
		}
		if ph.At < 0 || ph.At > sc.Duration {
			return fmt.Errorf("scenario: phase %d at %v outside [0,%v]", i, ph.At, sc.Duration)
		}
		if err := ph.Action.validate(); err != nil {
			return fmt.Errorf("scenario: phase %d: %w", i, err)
		}
		if sc.Medium.Kind != "lossy" {
			switch ph.Action.(type) {
			case SetLoss, DegradeLink:
				return fmt.Errorf("scenario: phase %d (%s) requires the lossy medium", i, ph.Action.Describe())
			}
		}
	}
	return nil
}

// SampleTimes returns the virtual times measurements are taken at, after
// defaulting: Warmup, Warmup+SampleEvery, ... up to Duration.
func (sc Scenario) SampleTimes() []time.Duration {
	sc = sc.WithDefaults()
	var ts []time.Duration
	for t := sc.Warmup; t <= sc.Duration; t += sc.SampleEvery {
		ts = append(ts, t)
	}
	return ts
}
