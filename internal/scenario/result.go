package scenario

import (
	"time"

	"qolsr/internal/obs"
	"qolsr/internal/olsr"
	"qolsr/internal/sim"
	"qolsr/internal/stats"
	"qolsr/internal/traffic"
)

// Sample is one measurement at one virtual time of one run.
type Sample struct {
	// Time is the virtual sample time.
	Time time.Duration
	// Nodes and Links describe the physical topology at sample time
	// (Links counts only currently-up links).
	Nodes int
	Links int
	// Connected counts probe flows whose pair is physically connected at
	// sample time; Delivered counts those whose probe packet arrived.
	Connected int
	Delivered int
	// Delivery is Delivered/Connected (1 when no flow is connected — an
	// empty obligation is met).
	Delivery float64
	// HopStretch is the mean ratio of delivered path length to the
	// hop-optimal path on the current physical topology (0 when nothing
	// was delivered).
	HopStretch float64
	// Overhead is the mean relative regret of the sources' routing-table
	// values against the centralized optimum on the current physical
	// topology — the paper's overhead metric, live (0 when no source has
	// a route). It compares what the source *believes* its route achieves,
	// so transiently negative values are a churn signal: the table still
	// values a route through a link that just died.
	Overhead float64
	// OverheadFlows counts the connected flows whose source had a
	// routing-table entry contributing to Overhead — route availability,
	// and the discriminator between "overhead 0 = optimal" and
	// "overhead 0 = no data".
	OverheadFlows int
	// ControlBPS is the control-traffic rate (HELLO+TC bytes per virtual
	// second) since the previous sample.
	ControlBPS float64
	// TCFwdBPS is the relay re-broadcast share of ControlBPS — TC bytes
	// forwarded (not originated) per virtual second since the previous
	// sample. The flooding-cost component the relay-set optimisations act
	// on.
	TCFwdBPS float64
	// SetSize is the mean advertised-set size across nodes.
	SetSize float64

	// Traffic-engine fields, set only when the scenario runs a flow-class
	// Mix (zero in legacy probe mode). In engine mode Delivery is
	// packet-based — TrafficDelivered/TrafficCompleted over the window
	// ending at Time — while Connected still counts physically-connected
	// flow pairs.

	// TrafficSent counts flow packets handed to the data plane in the
	// window.
	TrafficSent int
	// TrafficCompleted counts flow packets that finished (delivered or
	// dropped) in the window.
	TrafficCompleted int
	// TrafficDelivered counts flow packets delivered in the window.
	TrafficDelivered int
	// TrafficThroughputBps is the delivered payload rate over the window,
	// bytes per virtual second.
	TrafficThroughputBps float64

	// Rebuild-observability fields: routing-compute activity across all
	// nodes in the window ending at Time (see olsr.RebuildStats).

	// TopoBuilds counts topology-graph materialisations in the window.
	TopoBuilds int
	// SPFFull and SPFIncremental split the window's shortest-path
	// recomputations into full Dijkstra runs and incremental repairs.
	SPFFull        int
	SPFIncremental int
	// SharedAdvRate is the fraction of ingested advertisements in the
	// window that left the stored set untouched (the shared-epoch hit
	// rate; 0 when the window ingested nothing).
	SharedAdvRate float64
}

// Reconvergence reports how the protocol recovered from one disruptive
// phase: the first sample at or after the post-event delivery trough whose
// delivery ratio is back at the pre-event baseline (the last sample before
// the event; full delivery when the event precedes all samples). Both the
// trough and the recovery are searched only up to the next disruption —
// soft-state expiry can delay the visible degradation by several seconds,
// and recovery caused by a later phase (a scheduled heal) belongs to that
// phase, so an event whose window ends first reports not-recovered.
type Reconvergence struct {
	// Phase describes the disruptive action.
	Phase string
	// EventTime is when the action fired.
	EventTime time.Duration
	// Recovered reports whether full delivery was observed again before
	// the run ended.
	Recovered bool
	// RecoveredAt is the sample time of recovery (zero when !Recovered).
	RecoveredAt time.Duration
}

// Duration returns the reconvergence time, or -1 when never recovered.
func (rc Reconvergence) Duration() time.Duration {
	if !rc.Recovered {
		return -1
	}
	return rc.RecoveredAt - rc.EventTime
}

// RunResult is one replicate run of a scenario.
type RunResult struct {
	// Run is the replicate index.
	Run int
	// Nodes is the deployed node count.
	Nodes int
	// Samples holds one entry per sample time, in time order.
	Samples []Sample
	// Reconvergence holds one entry per disruptive phase, in fire order.
	Reconvergence []Reconvergence
	// Control and Data are the run's final traffic totals.
	Control sim.TrafficStats
	Data    sim.DataStats
	// Traffic is the flow engine's end-of-run accounting: per-flow and
	// per-class delivery, delay quantiles, jitter and QoS verdicts. Nil
	// in legacy probe mode.
	Traffic *traffic.Report
	// Rebuilds counts mobility topology refreshes (0 when static).
	Rebuilds int
	// Rebuild is the run's final routing-compute totals summed across
	// nodes: advertisement interning hits, topology builds, and the
	// full/incremental SPF split.
	Rebuild olsr.RebuildStats
	// Metrics is the run's end-of-run observability-registry snapshot.
	// Empty unless the scenario sets Obs.Metrics.
	Metrics obs.Snapshot
	// Trace holds the run's sampled packet-path trace events in virtual
	// event order. Nil unless the scenario sets a positive Obs.TraceEvery.
	Trace []obs.TraceEvent
}

// Result is a completed scenario execution: Runs replicate runs of the same
// program under independent derived seeds.
type Result struct {
	// Scenario is the executed program, fully defaulted.
	Scenario Scenario
	// Seed is the base seed every run's streams derive from.
	Seed int64
	// Runs holds one result per replicate, by run index.
	Runs []*RunResult
}

// AggregateSample accumulates one sample time across runs.
type AggregateSample struct {
	Time       time.Duration
	Delivery   stats.Accumulator
	HopStretch stats.Accumulator
	Overhead   stats.Accumulator
	ControlBPS stats.Accumulator
	SetSize    stats.Accumulator
	// Throughput accumulates the traffic engine's windowed delivered
	// rate; its N is zero in legacy probe mode.
	Throughput stats.Accumulator
}

// Aggregate folds the per-run samples into one accumulator per sample
// time, in run order (deterministic for a fixed seed).
func (r *Result) Aggregate() []AggregateSample {
	times := r.Scenario.SampleTimes()
	agg := make([]AggregateSample, len(times))
	for i, t := range times {
		agg[i].Time = t
	}
	for _, run := range r.Runs {
		if run == nil {
			continue
		}
		for i, s := range run.Samples {
			if i >= len(agg) {
				break
			}
			agg[i].Delivery.Add(s.Delivery)
			// HopStretch and Overhead are 0-valued sentinels when no
			// flow contributed; folding those into the mean would
			// report "better than optimal" exactly when the network
			// is at its worst. Their accumulators' N reflects the
			// runs with data. The guard is on the value (a measured
			// stretch is always >= 1): in traffic-engine mode Delivered
			// counts flow packets while no probe stretch is measured at
			// all, so a Delivered-based guard would fold the sentinel.
			if s.HopStretch > 0 {
				agg[i].HopStretch.Add(s.HopStretch)
			}
			if s.OverheadFlows > 0 {
				agg[i].Overhead.Add(s.Overhead)
			}
			agg[i].ControlBPS.Add(s.ControlBPS)
			agg[i].SetSize.Add(s.SetSize)
			if s.TrafficSent > 0 || s.TrafficCompleted > 0 {
				agg[i].Throughput.Add(s.TrafficThroughputBps)
			}
		}
	}
	return agg
}

// ClassAggregate folds one flow class's end-of-run records across runs:
// verdict counts are summed, rates and quantiles accumulate the per-run
// values.
type ClassAggregate struct {
	Class string
	// Summed verdict counts across runs.
	Flows, Admitted, Satisfied, Violated, CorrectReject, FalseReject int
	// Per-run accumulators.
	Delivery   stats.Accumulator
	Throughput stats.Accumulator
	DelayP95   stats.Accumulator // seconds
	Jitter     stats.Accumulator // seconds
	Violation  stats.Accumulator // per-run violation ratio
}

// AggregateTraffic folds the runs' traffic reports per flow class, in
// first-seen class order with the all-classes total last. Nil when no run
// carried a traffic report (legacy probe mode).
func (r *Result) AggregateTraffic() []ClassAggregate {
	var (
		order []string
		byCls = make(map[string]*ClassAggregate)
	)
	get := func(name string) *ClassAggregate {
		if a, ok := byCls[name]; ok {
			return a
		}
		order = append(order, name)
		a := &ClassAggregate{Class: name}
		byCls[name] = a
		return a
	}
	fold := func(a *ClassAggregate, c traffic.ClassReport) {
		a.Flows += c.Flows
		a.Admitted += c.Admitted
		a.Satisfied += c.Satisfied
		a.Violated += c.Violated
		a.CorrectReject += c.CorrectReject
		a.FalseReject += c.FalseReject
		a.Delivery.Add(c.Delivery)
		a.Throughput.Add(c.Throughput)
		a.DelayP95.Add(c.DelayP95.Seconds())
		a.Jitter.Add(c.Jitter.Seconds())
		a.Violation.Add(c.ViolationRatio())
	}
	for _, run := range r.Runs {
		if run == nil || run.Traffic == nil {
			continue
		}
		for _, c := range run.Traffic.Classes {
			fold(get(c.Class), c)
		}
	}
	if len(order) == 0 {
		return nil
	}
	for _, run := range r.Runs {
		if run == nil || run.Traffic == nil {
			continue
		}
		fold(get("all"), run.Traffic.Total)
	}
	out := make([]ClassAggregate, len(order))
	for i, name := range order {
		out[i] = *byCls[name]
	}
	return out
}
