package scenario

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// The rebuild barrier's worker budget must never reach the results: a
// churn-heavy run on the lossy medium — link-failure waves, loss draws,
// soft-state expiry, incremental SPF repairs — must encode to the same
// JSON document byte for byte whether the per-sample route rebuilds run
// serially or fanned across eight goroutines.
func TestWorkersDeterminism(t *testing.T) {
	base := Scenario{
		Name:        "churn-workers",
		Description: "worker-count determinism fixture",
		Topology:    Topology{Deployment: builtinDeployment(10)},
		Protocol:    Protocol{Selector: "fnbp"},
		Medium:      Medium{Kind: "lossy", Loss: 0.08, DistanceLoss: 0.15},
		Duration:    40 * time.Second,
		Warmup:      10 * time.Second,
	}
	for k := 0; k < 3; k++ {
		at := time.Duration(12+8*k) * time.Second
		base.Phases = append(base.Phases,
			Phase{At: at, Action: FailFraction{Fraction: 0.15}},
			Phase{At: at + 4*time.Second, Action: RestoreAll{}},
		)
	}

	encode := func(workers int) []byte {
		sc := base
		sc.Workers = workers
		res := &Result{Scenario: sc.WithDefaults(), Seed: 7}
		for run := 0; run < 2; run++ {
			rr, err := Execute(context.Background(), sc, 7, run, nil)
			if err != nil {
				t.Fatalf("workers=%d run %d: %v", workers, run, err)
			}
			res.Runs = append(res.Runs, rr)
		}
		var buf bytes.Buffer
		if err := res.EncodeJSON(&buf); err != nil {
			t.Fatalf("workers=%d: encode: %v", workers, err)
		}
		return buf.Bytes()
	}

	serial := encode(1)
	parallel := encode(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("workers=1 and workers=8 encoded different documents")
	}
}
