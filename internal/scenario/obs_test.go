package scenario

import (
	"bytes"
	"context"
	"testing"
	"time"

	"qolsr/internal/obs"
	"qolsr/internal/traffic"
)

// executeRuns materialises a Result with the given replicate count.
func executeRuns(t *testing.T, sc Scenario, seed int64, runs int) *Result {
	t.Helper()
	res := &Result{Scenario: sc.WithDefaults(), Seed: seed}
	for run := 0; run < runs; run++ {
		rr, err := Execute(context.Background(), sc, seed, run, nil)
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		res.Runs = append(res.Runs, rr)
	}
	return res
}

// TestGoldenMetrics pins the -metrics-out document byte for byte on the
// ladder fixture: the registry's collector set, label order and merged
// values across two replicates. Regenerate with -update-golden after an
// intentional instrumentation change.
func TestGoldenMetrics(t *testing.T) {
	sc := ladderScenario()
	sc.Obs.Metrics = true
	res := executeRuns(t, sc.WithDefaults(), 1, 2)
	var buf bytes.Buffer
	if err := res.EncodeMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "ladder.metrics.json.golden", buf.Bytes())
}

// Observability must be a pure read layer: running the same scenario with
// metrics and tracing fully on must encode the measurement document to
// exactly the bytes the disabled run produces — no RNG draw, no event
// reordering, no sample perturbation.
func TestObsKeepsMeasurementsBitIdentical(t *testing.T) {
	encode := func(o Obs) []byte {
		sc := mixScenario()
		sc.Obs = o
		res := executeRuns(t, sc, 3, 2)
		var buf bytes.Buffer
		if err := res.EncodeJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	off := encode(Obs{})
	on := encode(Obs{Metrics: true, TraceEvery: 2})
	if !bytes.Equal(off, on) {
		t.Fatal("enabling metrics+tracing changed the measurement document")
	}
}

// churnTraceScenario is a churn-heavy lossy fixture under sustained flows —
// link-failure waves, loss draws and queueing give the tracer every event
// shape (multi-hop spans, waits, all drop reasons are possible).
func churnTraceScenario() Scenario {
	sc := Scenario{
		Name:        "churn-trace",
		Description: "trace determinism fixture",
		Topology:    Topology{Deployment: builtinDeployment(10)},
		Protocol:    Protocol{Selector: "fnbp"},
		Medium:      Medium{Kind: "lossy", Loss: 0.08, DistanceLoss: 0.15},
		Traffic: Traffic{Mix: []traffic.Spec{
			{Class: "cbr", Count: 4, RateBps: 8192},
			{Class: "poisson", Count: 2, RateBps: 8192},
		}},
		Duration: 30 * time.Second,
		Warmup:   10 * time.Second,
		Obs:      Obs{TraceEvery: 2},
	}
	for k := 0; k < 2; k++ {
		at := time.Duration(12+8*k) * time.Second
		sc.Phases = append(sc.Phases,
			Phase{At: at, Action: FailFraction{Fraction: 0.15}},
			Phase{At: at + 4*time.Second, Action: RestoreAll{}},
		)
	}
	return sc
}

// The trace is part of the determinism contract: the rebuild barrier's
// worker budget must never reach it. A churn-heavy lossy run must serialize
// to the same Chrome trace-event document byte for byte at workers=1 and
// workers=8, and the document must satisfy the trace-event schema.
func TestTraceWorkersDeterminism(t *testing.T) {
	encode := func(workers int) []byte {
		sc := churnTraceScenario()
		sc.Workers = workers
		res := executeRuns(t, sc, 7, 2)
		traced := 0
		for _, run := range res.Runs {
			traced += len(run.Trace)
		}
		if traced == 0 {
			t.Fatalf("workers=%d: churn fixture produced no trace events", workers)
		}
		var buf bytes.Buffer
		if err := res.EncodeTrace(&buf); err != nil {
			t.Fatalf("workers=%d: encode: %v", workers, err)
		}
		return buf.Bytes()
	}
	serial := encode(1)
	parallel := encode(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("workers=1 and workers=8 serialized different traces")
	}
	if err := obs.ValidateTrace(serial); err != nil {
		t.Fatalf("trace document fails schema validation: %v", err)
	}
}

// A result with no collected metrics must still encode a well-formed
// document with an empty metrics array, so -metrics-out never emits null.
func TestEncodeMetricsEmpty(t *testing.T) {
	res := &Result{Scenario: ladderScenario().WithDefaults(), Seed: 1}
	var buf bytes.Buffer
	if err := res.EncodeMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"metrics": []`)) {
		t.Fatalf("empty result encoded without an empty metrics array:\n%s", buf.String())
	}
}
