package scenario

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"qolsr/internal/traffic"
)

// mixScenario is the ladder fixture under a sustained flow-class mix
// instead of probes.
func mixScenario() Scenario {
	sc := ladderScenario()
	sc.Name = "test-ladder-mix"
	sc.Phases = nil
	sc.Traffic = Traffic{Mix: []traffic.Spec{
		{Class: "cbr", Count: 2, RateBps: 8192, QoS: traffic.Requirements{MaxDelay: 50 * time.Millisecond}},
		{Class: "video", Count: 2, RateBps: 8192},
	}}
	return sc
}

// TestLegacyProbeCompat locks the satellite contract: a scenario using the
// legacy Traffic.Flows probe field keeps its exact pre-engine behaviour —
// the defaulting, the probe workload, and byte-identical encodings (the
// golden tests enforce the bytes; this test checks the shape).
func TestLegacyProbeCompat(t *testing.T) {
	sc := ladderScenario().WithDefaults()
	if sc.Traffic.Flows != 6 || len(sc.Traffic.Mix) != 0 {
		t.Fatalf("legacy traffic mangled by defaults: %+v", sc.Traffic)
	}
	zero := Scenario{Topology: ladderScenario().Topology}.WithDefaults()
	if zero.Traffic.Flows != 10 {
		t.Errorf("zero traffic defaults to %d probes, want 10", zero.Traffic.Flows)
	}

	res, err := Execute(context.Background(), sc, 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Traffic != nil {
		t.Error("legacy probe run produced a traffic report")
	}
	for _, s := range res.Samples {
		if s.TrafficSent != 0 || s.TrafficCompleted != 0 || s.TrafficDelivered != 0 || s.TrafficThroughputBps != 0 {
			t.Fatalf("legacy sample carries traffic fields: %+v", s)
		}
	}

	// The JSON document must not grow any traffic keys in legacy mode —
	// that is what keeps the golden files valid.
	full := &Result{Scenario: sc, Seed: 1, Runs: []*RunResult{res}}
	var buf bytes.Buffer
	if err := full.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"traffic_sent", "traffic_mix", "\"traffic\"", "traffic_aggregate"} {
		if strings.Contains(buf.String(), key) {
			t.Errorf("legacy JSON contains %s", key)
		}
	}
	if !strings.Contains(buf.String(), "\"flows\": 6") {
		t.Error("legacy JSON lost the flows field")
	}
}

func TestTrafficMixValidation(t *testing.T) {
	both := mixScenario()
	both.Traffic.Flows = 5
	if err := both.WithDefaults().Validate(); err == nil {
		t.Error("Flows+Mix accepted")
	}
	badClass := mixScenario()
	badClass.Traffic.Mix[0].Class = "warez"
	if err := badClass.WithDefaults().Validate(); err == nil {
		t.Error("unknown flow class accepted")
	}
	late := mixScenario()
	late.Traffic.Mix[0].Start = time.Hour
	if err := late.WithDefaults().Validate(); err == nil {
		t.Error("start past duration accepted")
	}
	if err := mixScenario().WithDefaults().Validate(); err != nil {
		t.Fatalf("valid mix rejected: %v", err)
	}
}

func TestExecuteMixScenario(t *testing.T) {
	sc := mixScenario()
	res, err := Execute(context.Background(), sc, 1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Traffic == nil {
		t.Fatal("mix run has no traffic report")
	}
	rep := res.Traffic
	if len(rep.Flows) != 4 {
		t.Fatalf("flow reports = %d, want 4", len(rep.Flows))
	}
	if rep.Total.Sent == 0 {
		t.Fatal("no packets offered")
	}
	if rep.Total.Delivered == 0 || rep.Total.Delivered > rep.Total.Sent {
		t.Fatalf("implausible delivery %d/%d", rep.Total.Delivered, rep.Total.Sent)
	}
	// Ideal medium, small static ladder: admitted flows should be
	// satisfied, nothing violated.
	if rep.Total.Admitted == 0 {
		t.Error("no flow admitted on a converged static ladder")
	}
	if rep.Total.Violated != 0 {
		t.Errorf("violations on the ideal medium at trivial load: %+v", rep.Total)
	}

	// Samples after warmup must account the sustained load and carry a
	// packet-based delivery ratio.
	var sawTraffic bool
	for _, s := range res.Samples {
		if s.TrafficSent > 0 {
			sawTraffic = true
		}
		if s.TrafficCompleted > 0 && s.Delivery != float64(s.TrafficDelivered)/float64(s.TrafficCompleted) {
			t.Fatalf("engine-mode delivery %g != %d/%d", s.Delivery, s.TrafficDelivered, s.TrafficCompleted)
		}
	}
	if !sawTraffic {
		t.Error("no sample saw traffic")
	}

	// The encoders must surface the traffic block and aggregate.
	full := &Result{Scenario: sc.WithDefaults(), Seed: 1, Runs: []*RunResult{res}}
	var buf bytes.Buffer
	if err := full.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"\"traffic\"", "traffic_mix", "traffic_aggregate", "violation_ratio", "\"class\": \"video\""} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("mix JSON missing %s", key)
		}
	}
	var csv bytes.Buffer
	if err := full.EncodeCSV(&csv); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"traffic_sent", "traffic_all_violation_ratio", "traffic_cbr_admitted"} {
		if !strings.Contains(csv.String(), key) {
			t.Errorf("mix CSV missing %s rows", key)
		}
	}
	var tbl bytes.Buffer
	if err := full.WriteTable(&tbl); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.String(), "# traffic") {
		t.Error("table missing traffic section")
	}
}

func TestExecuteMixDeterministic(t *testing.T) {
	sc := mixScenario()
	run := func() *bytes.Buffer {
		res, err := Execute(context.Background(), sc, 3, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		full := &Result{Scenario: sc.WithDefaults(), Seed: 3, Runs: []*RunResult{res}}
		var buf bytes.Buffer
		if err := full.EncodeJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	if !bytes.Equal(run().Bytes(), run().Bytes()) {
		t.Error("identical mix executions encode differently")
	}
}
