package paperex

import (
	"testing"

	"qolsr/internal/graph"
	"qolsr/internal/metric"
)

func weightsOf(t *testing.T, f *Fixture) []float64 {
	t.Helper()
	w, err := f.G.Weights(Channel)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func linkWeight(t *testing.T, f *Fixture, a, b string) float64 {
	t.Helper()
	e, ok := f.G.EdgeBetween(f.Node(a), f.Node(b))
	if !ok {
		t.Fatalf("missing edge %s-%s", a, b)
	}
	return weightsOf(t, f)[e]
}

func directWeight(t *testing.T, f *Fixture, x int32) float64 {
	t.Helper()
	e, ok := f.G.EdgeBetween(f.Node("u"), x)
	if !ok {
		t.Fatalf("no direct link u-%s", f.G.Label(x))
	}
	return weightsOf(t, f)[e]
}

func TestFixturesAreValidGraphs(t *testing.T) {
	for name, f := range map[string]*Fixture{
		"fig1": Figure1(), "fig2": Figure2(), "fig4": Figure4(), "fig5": Figure5(),
	} {
		if err := f.G.Validate(); err != nil {
			t.Errorf("%s: invalid graph: %v", name, err)
		}
		if !graph.Connected(f.G) {
			t.Errorf("%s: fixture not connected", name)
		}
		for nm, idx := range f.Nodes {
			if f.G.Label(idx) != nm {
				t.Errorf("%s: label of %q = %q", name, nm, f.G.Label(idx))
			}
			if f.Node(nm) != idx {
				t.Errorf("%s: Node(%q) inconsistent", name, nm)
			}
		}
	}
}

func TestNodePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown node name did not panic")
		}
	}()
	Figure1().Node("nope")
}

// Figure 1's stated facts: route via v2 bottlenecks at 6; the ring path
// v1-v6-v5-v4-v3 carries 10 and is the widest.
func TestFigure1Facts(t *testing.T) {
	f := Figure1()
	m := metric.Bandwidth()
	w := weightsOf(t, f)
	v1, v3 := f.Node("v1"), f.Node("v3")
	sp := graph.Dijkstra(f.G, m, w, v1, nil, -1)
	if sp.Dist[v3] != 10 {
		t.Errorf("widest v1->v3 = %v, want 10", sp.Dist[v3])
	}
	path := sp.PathTo(v3)
	if len(path) != 5 {
		t.Errorf("widest path = %d nodes, want 5 (the ring way)", len(path))
	}
	viaV2 := metric.PathValue(m, []float64{
		linkWeight(t, f, "v1", "v2"), linkWeight(t, f, "v2", "v3"),
	})
	if viaV2 != 6 {
		t.Errorf("v1-v2-v3 value = %v, want 6", viaV2)
	}
}

// Figure 2's stated facts, one by one (Sec. III of the paper).
func TestFigure2Facts(t *testing.T) {
	f := Figure2()
	m := metric.Bandwidth()
	w := weightsOf(t, f)
	u := f.Node("u")

	if linkWeight(t, f, "u", "v1") != linkWeight(t, f, "u", "v2") {
		t.Error("BW(u,v1) != BW(u,v2)")
	}
	if !(linkWeight(t, f, "u", "v5") < linkWeight(t, f, "u", "v1")) {
		t.Error("BW(u,v5) not < BW(u,v1)")
	}
	if linkWeight(t, f, "u", "v4") != 3 {
		t.Error("direct u-v4 must be 3")
	}
	if !(linkWeight(t, f, "u", "v6") > linkWeight(t, f, "u", "v2")) {
		t.Error("BW(u,v6) not > BW(u,v2)")
	}

	lv := graph.NewLocalView(f.G, u)
	fh, err := graph.ComputeFirstHops(lv, m, w)
	if err != nil {
		t.Fatal(err)
	}
	// PBW(u,v3) has value 4 with first hops {v1, v2}.
	v3 := f.Node("v3")
	if fh.Dist[v3] != 4 {
		t.Errorf("B̃W(u,v3) = %v, want 4", fh.Dist[v3])
	}
	members := fh.Members(v3)
	if len(members) != 2 || members[0] != f.Node("v1") || members[1] != f.Node("v2") {
		t.Errorf("fP(u,v3) = %v, want {v1,v2}", members)
	}
	// u v1 v5 v4 achieves 5 > direct 3.
	v4 := f.Node("v4")
	if fh.Dist[v4] != 5 {
		t.Errorf("B̃W(u,v4) = %v, want 5", fh.Dist[v4])
	}
	if got := fh.Members(v4); len(got) != 1 || got[0] != f.Node("v1") {
		t.Errorf("fP(u,v4) = %v, want {v1}", got)
	}
	// Direct link u-v7 is optimal.
	v7 := f.Node("v7")
	if !fh.Contains(v7, lv.N1Index(v7)) {
		t.Error("direct u-v7 not optimal")
	}
	// fP(u,v11) ⊇ {v2, v6} and the ≺-best member is v6 (the paper: "u
	// will choose v6 instead of v2 ... better bandwidth"). Exact equality
	// fP = {v2,v6} cannot coexist with the v3 facts under bottleneck
	// ties; see the fixture's doc comment.
	v11 := f.Node("v11")
	hasV2, hasV6 := false, false
	best := int32(-1)
	for _, x := range fh.Members(v11) {
		if x == f.Node("v2") {
			hasV2 = true
		}
		if x == f.Node("v6") {
			hasV6 = true
		}
		if best < 0 || directWeight(t, f, x) > directWeight(t, f, best) {
			best = x
		}
	}
	if !hasV2 || !hasV6 {
		t.Errorf("fP(u,v11) = %v, must contain v2 and v6", fh.Members(v11))
	}
	if best != f.Node("v6") {
		t.Errorf("≺-best member of fP(u,v11) = %v, want v6", f.G.Label(best))
	}
	// fP(u,v10) contains v1 and v5 (plus tie-chains; see fixture docs).
	v10 := f.Node("v10")
	hasV1, hasV5 := false, false
	for _, x := range fh.Members(v10) {
		if x == f.Node("v1") {
			hasV1 = true
		}
		if x == f.Node("v5") {
			hasV5 = true
		}
	}
	if !hasV1 || !hasV5 {
		t.Errorf("fP(u,v10) = %v, must contain v1 and v5", fh.Members(v10))
	}
}

// The (v8,v9) link is between two 2-hop neighbors and therefore invisible in
// G_u, which is the paper's localization-limit argument.
func TestFigure2HiddenLink(t *testing.T) {
	f := Figure2()
	lv := graph.NewLocalView(f.G, f.Node("u"))
	if lv.Role(f.Node("v8")) != graph.RoleTwoHop || lv.Role(f.Node("v9")) != graph.RoleTwoHop {
		t.Fatal("v8/v9 must be 2-hop neighbors")
	}
	if lv.HasViewEdge(f.Node("v8"), f.Node("v9")) {
		t.Error("link (v8,v9) visible in G_u")
	}
}

// Figure 4's stated facts: D-E is limiting (weight 1), every optimal path
// A->E bottlenecks at 1, and w(A,D) > w(A,B) so max≺ prefers D.
func TestFigure4Facts(t *testing.T) {
	f := Figure4()
	m := metric.Bandwidth()
	w := weightsOf(t, f)
	if linkWeight(t, f, "D", "E") != 1 {
		t.Error("last link D-E must be the limiting weight 1")
	}
	if !(linkWeight(t, f, "A", "D") > linkWeight(t, f, "A", "B")) {
		t.Error("w(A,D) must exceed w(A,B) for max≺ to pick D")
	}
	lv := graph.NewLocalView(f.G, f.Node("A"))
	fh, err := graph.ComputeFirstHops(lv, m, w)
	if err != nil {
		t.Fatal(err)
	}
	E := f.Node("E")
	if fh.Dist[E] != 1 {
		t.Errorf("B̃W(A,E) = %v, want 1", fh.Dist[E])
	}
	got := fh.Members(E)
	if len(got) != 2 || got[0] != f.Node("B") || got[1] != f.Node("D") {
		t.Errorf("fP(A,E) = %v, want {B,D}", got)
	}
	// E's only neighbor is D.
	if f.G.Degree(E) != 1 {
		t.Error("E must have D as its only access")
	}
}
