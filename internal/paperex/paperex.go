// Package paperex builds executable versions of the paper's worked examples
// (Figures 1, 2 and 4). The published figures specify weights and claims but
// not complete adjacency, so each fixture is a reconstruction that satisfies
// every fact stated in the text; the accompanying tests assert those facts.
package paperex

import (
	"fmt"

	"qolsr/internal/graph"
)

// Channel is the weight channel used by all fixtures.
const Channel = "bandwidth"

// Fixture is a worked example: a graph plus the node indices the paper's
// narrative refers to.
type Fixture struct {
	G *graph.Graph
	// Nodes maps the paper's node names ("u", "v1", "A", ...) to node
	// indices.
	Nodes map[string]int32
}

// Node returns the index of the named node; it panics on unknown names since
// fixtures are static.
func (f *Fixture) Node(name string) int32 {
	x, ok := f.Nodes[name]
	if !ok {
		panic(fmt.Sprintf("paperex: unknown node %q", name))
	}
	return x
}

type edgeSpec struct {
	a, b string
	w    float64
}

func build(names []string, edges []edgeSpec) *Fixture {
	ids := make([]graph.NodeID, len(names))
	for i := range ids {
		ids[i] = graph.NodeID(i)
	}
	g, err := graph.NewWithIDs(ids)
	if err != nil {
		panic(err)
	}
	f := &Fixture{G: g, Nodes: make(map[string]int32, len(names))}
	for i, n := range names {
		f.Nodes[n] = int32(i)
		g.SetLabel(int32(i), n)
	}
	for _, e := range edges {
		idx, err := g.AddEdge(f.Node(e.a), f.Node(e.b))
		if err != nil {
			panic(err)
		}
		if err := g.SetWeight(Channel, idx, e.w); err != nil {
			panic(err)
		}
	}
	return f
}

// Figure1 reconstructs the phenomenon of the paper's Fig. 1: a six-node ring
// where QOLSR's two-hop routing uses the path v1-v2-v3 of bandwidth 6 while
// the widest path v1-v6-v5-v4-v3 of bandwidth 10 exists and is never used.
//
// The published figure's exact adjacency is not recoverable from the text
// (twelve weights are listed without endpoints), so this fixture is the
// minimal topology exhibiting the same numbers: the route via v2 bottlenecks
// at 6, the long way around carries 10.
func Figure1() *Fixture {
	names := []string{"v1", "v2", "v3", "v4", "v5", "v6"}
	// Node IDs follow name order: v1=0, ..., v6=5.
	return build(names, []edgeSpec{
		{"v1", "v2", 7},
		{"v2", "v3", 6},
		{"v3", "v4", 10},
		{"v4", "v5", 10},
		{"v5", "v6", 10},
		{"v6", "v1", 10},
	})
}

// Figure2 reconstructs the paper's Fig. 2 example network around node u. It
// satisfies every fact stated in Sec. III:
//
//   - BW(u,v1) = BW(u,v2) and v1 ≺ v2 by identifier;
//   - BW(u,v5) < BW(u,v1);
//   - PBW(u,v3) = {u v2 v3, u v1 v3} with value 4, fP = {v1, v2};
//   - the direct link u-v4 has bandwidth 3 while u v1 v5 v4 achieves 5;
//   - the direct link u-v7 is the best way to reach v7;
//   - u reaches v9 at bandwidth 3 via v7 inside G_u, while the full graph
//     contains u v6 v8 v9 of bandwidth 5 through the link (v8,v9) that u
//     cannot see (both endpoints are 2-hop neighbors);
//   - fP(u,v10) ⊇ {v1, v5}: covering v5 with v1 also covers v10 (bottleneck
//     ties add v2, whose chain v2-v3-v1-v5 also bottlenecks at the limiting
//     last link);
//   - fP(u,v11) ⊇ {v2, v6} with BW(u,v6) > BW(u,v2), so v6 is the ≺-best
//     choice, as the narrative requires.
//
// One stated fact is relaxed: fP(u,v11) cannot equal {v2, v6} exactly while
// the v3 facts hold. v11's access links bridge v6's region to v2's, so under
// bottleneck semantics either that bridge ties the optimal value to v3
// (polluting fP(u,v3)) or v2's backdoor through v3 ties the optimal value to
// v11 (polluting fP(u,v11)) — for every weight assignment. This fixture
// keeps fP(u,v3) exact (weights 1 on the v11 links, so every neighbor
// reaching v11 at the limiting value 1 joins its fP) and preserves the
// narrative's operative content: v6 is selected for v11.
func Figure2() *Fixture {
	names := []string{"u", "v1", "v2", "v3", "v4", "v5", "v6", "v7", "v8", "v9", "v10", "v11"}
	return build(names, []edgeSpec{
		{"u", "v1", 5},
		{"u", "v2", 5},
		{"u", "v4", 3},
		{"u", "v5", 3},
		{"u", "v6", 6},
		{"u", "v7", 4},
		{"v1", "v3", 4},
		{"v2", "v3", 4},
		{"v1", "v5", 5},
		{"v5", "v4", 5},
		{"v7", "v9", 3},
		{"v6", "v8", 5},
		{"v8", "v9", 5}, // invisible to u: both endpoints are 2-hop
		{"v5", "v10", 2},
		{"v2", "v11", 1},
		{"v6", "v11", 1},
	})
}

// Figure4 reconstructs the paper's Fig. 4 pathology: the last link D-E is
// the limiting one (weight 1 bottlenecks every path to E), so A and B each
// find the other on an optimal path to E and, without the loop-fix rule,
// assign each other as next hop for E — a forwarding loop that leaves E
// unserved, "since node D is the only access to E" (D ends up selected by
// no one).
//
// With the rule, A — whose identifier is smaller than every member of
// fP(A,E) = {B,D} — additionally selects max≺(fP) = D (the link A-D is
// wider than A-B), restoring delivery.
func Figure4() *Fixture {
	names := []string{"A", "B", "C", "D", "E"}
	return build(names, []edgeSpec{
		{"A", "B", 3},
		{"A", "D", 4},
		{"B", "C", 2},
		{"B", "D", 1},
		{"D", "E", 1},
	})
}

// Figure5 is a ten-node sample network in the spirit of the paper's Fig. 5,
// used by cmd/qolsr-graph and the paperfigures example to render the MPR
// set, the topology-filtered ANS and the FNBP ANS side by side.
func Figure5() *Fixture {
	names := []string{"u", "a", "b", "c", "d", "e", "f", "g", "h", "i"}
	return build(names, []edgeSpec{
		{"u", "a", 4}, {"u", "b", 2}, {"u", "c", 3}, {"u", "d", 5},
		{"a", "b", 4}, {"b", "c", 4}, {"c", "d", 4},
		{"a", "e", 4}, {"b", "f", 3}, {"c", "g", 2}, {"d", "g", 4},
		{"d", "h", 5}, {"e", "f", 2}, {"g", "i", 3}, {"h", "i", 4},
	})
}
