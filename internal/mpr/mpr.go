// Package mpr implements the multipoint-relay selection heuristics the paper
// builds on and compares against:
//
//   - Greedy: the original OLSR heuristic (RFC 3626, Qayyum et al.): cover
//     all 2-hop neighbors with few relays, ignoring link quality.
//   - QOLSR1: Badis & Agha's MPR-1 — greedy coverage with QoS tie-breaking.
//   - QOLSR2: Badis & Agha's MPR-2 — pick relays by link QoS alone until the
//     2-hop neighborhood is covered. This is the heuristic the paper's
//     "Original QOLSR" evaluation curve uses.
//
// All three share the mandatory first phase: a 1-hop neighbor that is the
// only cover of some 2-hop neighbor must be selected (the paper cites [3]:
// ~75% of MPRs are selected by this phase alone, which is why QoS-aware
// tie-breaking changes so little).
package mpr

import (
	"fmt"
	"sort"

	"qolsr/internal/graph"
	"qolsr/internal/metric"
)

// Heuristic names an MPR selection rule.
type Heuristic int

// Available heuristics.
const (
	// Greedy is the RFC 3626 coverage heuristic (QoS-blind).
	Greedy Heuristic = iota + 1
	// QOLSR1 is MPR-1: max coverage first, QoS breaks ties.
	QOLSR1
	// QOLSR2 is MPR-2: best QoS link among useful candidates.
	QOLSR2
	// MinCover is the flooding-minimal relay set: the Greedy coverage
	// heuristic followed by the RFC 3626 §8.3.1 optional optimisation — a
	// pruning pass that drops every selected relay whose covered 2-hop
	// neighbors are all covered by other selected relays. It exists for the
	// two-relay-set model (Config.FloodRelay): QoS-driven selection is what
	// the paper wants advertised, but floods only need coverage, and the
	// smallest covering set is what bounds TC forwards in dense fields.
	MinCover
)

// String implements fmt.Stringer.
func (h Heuristic) String() string {
	switch h {
	case Greedy:
		return "olsr-greedy"
	case QOLSR1:
		return "qolsr-mpr1"
	case QOLSR2:
		return "qolsr-mpr2"
	case MinCover:
		return "min-cover"
	default:
		return fmt.Sprintf("Heuristic(%d)", int(h))
	}
}

// Select computes the MPR set of the view's center under the given
// heuristic. For QOLSR1/QOLSR2 the metric m and weight slice w drive the QoS
// comparisons; Greedy ignores them (they may be nil). The result lists
// global node indices of selected 1-hop neighbors in ascending NodeID order.
func Select(view *graph.LocalView, h Heuristic, m metric.Metric, w []float64) ([]int32, error) {
	if h != Greedy && h != MinCover && (m == nil || w == nil) {
		return nil, fmt.Errorf("mpr: heuristic %v requires a metric and weights", h)
	}
	g := view.G

	// Coverage structures: for each N1 position, the set of N2 nodes it
	// covers; for each N2 node, how many N1 nodes cover it.
	covers := make([][]int32, len(view.N1))
	coverCount := make(map[int32]int, len(view.N2))
	for i, n := range view.N1 {
		for _, arc := range g.Arcs(n) {
			if view.Role(arc.To) == graph.RoleTwoHop {
				covers[i] = append(covers[i], arc.To)
				coverCount[arc.To]++
			}
		}
	}

	selected := make([]bool, len(view.N1))
	covered := make(map[int32]bool, len(view.N2))
	remaining := len(view.N2)

	selectIdx := func(i int) {
		if selected[i] {
			return
		}
		selected[i] = true
		for _, v := range covers[i] {
			if !covered[v] {
				covered[v] = true
				remaining--
			}
		}
	}

	// Phase 1 (all heuristics): neighbors that are the only cover of some
	// 2-hop neighbor are mandatory.
	for i := range view.N1 {
		for _, v := range covers[i] {
			if coverCount[v] == 1 {
				selectIdx(i)
				break
			}
		}
	}

	// directWeight is used by the QoS heuristics.
	var direct []float64
	if h != Greedy && h != MinCover {
		direct = make([]float64, len(view.N1))
		for i, n := range view.N1 {
			e, ok := g.EdgeBetween(view.U, n)
			if !ok {
				return nil, fmt.Errorf("mpr: missing edge %d-%d", view.U, n)
			}
			direct[i] = w[e]
		}
	}

	newlyCovered := func(i int) int {
		c := 0
		for _, v := range covers[i] {
			if !covered[v] {
				c++
			}
		}
		return c
	}

	// Phase 2: repeat until every 2-hop neighbor is covered.
	//
	// Greedy and MPR-1 only consider candidates that cover something new;
	// MPR-2, per its description ("does not consider the number of covered
	// 2-hop neighbors but the bandwidth or delay when choosing the next
	// node"), walks neighbors in pure QoS order until coverage is
	// reached, which is what makes the original QOLSR advertised set big
	// and density-growing in the paper's Figs. 6-7.
	for remaining > 0 {
		best := -1
		bestGain := 0
		for i := range view.N1 {
			if selected[i] {
				continue
			}
			gain := newlyCovered(i)
			if gain == 0 && h != QOLSR2 {
				continue
			}
			if best == -1 {
				best, bestGain = i, gain
				continue
			}
			switch h {
			case Greedy, MinCover:
				// Max gain; ties by higher degree, then smaller ID
				// (RFC 3626's reachability/degree tie-break).
				if gain > bestGain ||
					(gain == bestGain && g.Degree(view.N1[i]) > g.Degree(view.N1[best])) {
					best, bestGain = i, gain
				}
			case QOLSR1:
				// Max gain; ties by better QoS link, then smaller ID.
				if gain > bestGain ||
					(gain == bestGain && m.Better(direct[i], direct[best])) {
					best, bestGain = i, gain
				}
			case QOLSR2:
				// Best QoS link, ties by smaller ID (position order).
				if m.Better(direct[i], direct[best]) {
					best, bestGain = i, gain
				}
			default:
				return nil, fmt.Errorf("mpr: unknown heuristic %v", h)
			}
		}
		if best == -1 {
			// Unreachable: every N2 node has a covering neighbor by
			// construction of the view.
			return nil, fmt.Errorf("mpr: %d two-hop neighbors uncoverable", remaining)
		}
		selectIdx(best)
	}

	if h == MinCover {
		prune(view, covers, selected)
	}

	out := make([]int32, 0, len(view.N1))
	for i, sel := range selected {
		if sel {
			out = append(out, view.N1[i])
		}
	}
	sort.Slice(out, func(a, b int) bool { return g.ID(out[a]) < g.ID(out[b]) })
	return out, nil
}

// prune drops redundant relays from a covering selection: a selected relay
// is removed when every 2-hop neighbor it covers is covered by at least one
// other selected relay (RFC 3626 §8.3.1's optional optimisation). Candidates
// are tried smallest coverage first (ties by ascending NodeID) — the relays
// a greedy pass selects early and later picks make redundant — so the order,
// and with it the result, is a pure function of the view.
func prune(view *graph.LocalView, covers [][]int32, selected []bool) {
	selCover := make(map[int32]int, len(view.N2))
	for i, sel := range selected {
		if !sel {
			continue
		}
		for _, v := range covers[i] {
			selCover[v]++
		}
	}
	order := make([]int, 0, len(view.N1))
	for i, sel := range selected {
		if sel {
			order = append(order, i)
		}
	}
	g := view.G
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if len(covers[ia]) != len(covers[ib]) {
			return len(covers[ia]) < len(covers[ib])
		}
		return g.ID(view.N1[ia]) < g.ID(view.N1[ib])
	})
	for _, i := range order {
		redundant := true
		for _, v := range covers[i] {
			if selCover[v] < 2 {
				redundant = false
				break
			}
		}
		if !redundant {
			continue
		}
		selected[i] = false
		for _, v := range covers[i] {
			selCover[v]--
		}
	}
}

// VerifyCoverage reports whether every 2-hop neighbor of the view is
// adjacent to at least one member of set — the MPR correctness invariant.
func VerifyCoverage(view *graph.LocalView, set []int32) bool {
	g := view.G
	inSet := make(map[int32]bool, len(set))
	for _, x := range set {
		inSet[x] = true
	}
	for _, v := range view.N2 {
		ok := false
		for _, arc := range g.Arcs(v) {
			if inSet[arc.To] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
