package mpr

import (
	"math/rand"
	"reflect"
	"testing"

	"qolsr/internal/graph"
	"qolsr/internal/metric"
)

// star builds u(0) with 1-hop neighbors 1..k and the provided 2-hop
// adjacency (neighbor -> list of 2-hop nodes, ids k+1..).
func star(t *testing.T, k int, twoHop map[int32][]int32, bw map[[2]int32]float64) *graph.Graph {
	t.Helper()
	maxNode := int32(k)
	for _, vs := range twoHop {
		for _, v := range vs {
			if v > maxNode {
				maxNode = v
			}
		}
	}
	g := graph.New(int(maxNode) + 1)
	addW := func(a, b int32) {
		e := g.MustAddEdge(a, b)
		w := 1.0
		if bw != nil {
			if v, ok := bw[[2]int32{a, b}]; ok {
				w = v
			}
		}
		if err := g.SetWeight("bandwidth", e, w); err != nil {
			t.Fatal(err)
		}
	}
	for i := int32(1); i <= int32(k); i++ {
		addW(0, i)
	}
	for n, vs := range twoHop {
		for _, v := range vs {
			addW(n, v)
		}
	}
	return g
}

func weights(t *testing.T, g *graph.Graph) []float64 {
	t.Helper()
	w, err := g.Weights("bandwidth")
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPhase1MandatorySelection(t *testing.T) {
	// Neighbor 1 uniquely covers node 4; neighbors 2,3 both cover node 5.
	g := star(t, 3, map[int32][]int32{1: {4}, 2: {5}, 3: {5}}, nil)
	lv := graph.NewLocalView(g, 0)
	for _, h := range []Heuristic{Greedy, QOLSR1, QOLSR2} {
		set, err := Select(lv, h, metric.Bandwidth(), weights(t, g))
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		found := false
		for _, x := range set {
			if x == 1 {
				found = true
			}
		}
		if !found {
			t.Errorf("%v: unique cover 1 not selected: %v", h, set)
		}
		if !VerifyCoverage(lv, set) {
			t.Errorf("%v: coverage violated", h)
		}
	}
}

func TestGreedyPrefersLargestGain(t *testing.T) {
	// Neighbor 1 covers {4,5,6}; neighbors 2 and 3 cover {4} and {5}.
	// Greedy should pick only neighbor 1.
	g := star(t, 3, map[int32][]int32{1: {4, 5, 6}, 2: {4}, 3: {5}}, nil)
	lv := graph.NewLocalView(g, 0)
	set, err := Select(lv, Greedy, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 || set[0] != 1 {
		t.Errorf("greedy set = %v, want [1]", set)
	}
}

func TestQOLSR2PicksBestLinkEvenWithSmallGain(t *testing.T) {
	// Neighbor 1 covers {4,5}, link bw 1. Neighbor 2 covers {4}, link bw
	// 9. Neighbor 3 covers {5}, link bw 8. No unique covers... node 4 is
	// covered by {1,2}, node 5 by {1,3}. MPR-2 picks by bandwidth: 2
	// first (bw 9), then 3 (bw 8). Greedy would pick just 1.
	bw := map[[2]int32]float64{{0, 1}: 1, {0, 2}: 9, {0, 3}: 8}
	g := star(t, 3, map[int32][]int32{1: {4, 5}, 2: {4}, 3: {5}}, bw)
	lv := graph.NewLocalView(g, 0)

	set2, err := Select(lv, QOLSR2, metric.Bandwidth(), weights(t, g))
	if err != nil {
		t.Fatal(err)
	}
	if len(set2) != 2 || set2[0] != 2 || set2[1] != 3 {
		t.Errorf("MPR-2 set = %v, want [2 3]", set2)
	}

	setG, err := Select(lv, Greedy, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(setG) != 1 || setG[0] != 1 {
		t.Errorf("greedy set = %v, want [1]", setG)
	}
}

func TestQOLSR1TieBreaksOnQoS(t *testing.T) {
	// Neighbors 1 and 2 both cover exactly {4}; neighbor 2 has the wider
	// link, so MPR-1 must choose 2.
	bw := map[[2]int32]float64{{0, 1}: 3, {0, 2}: 7}
	g := star(t, 2, map[int32][]int32{1: {4}, 2: {4}}, bw)
	lv := graph.NewLocalView(g, 0)
	set, err := Select(lv, QOLSR1, metric.Bandwidth(), weights(t, g))
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 || set[0] != 2 {
		t.Errorf("MPR-1 set = %v, want [2]", set)
	}
	// With delay (smaller better), neighbor 1 (delay 3) wins instead.
	d := metric.Delay()
	setD, err := Select(lv, QOLSR1, d, weights(t, g))
	if err != nil {
		t.Fatal(err)
	}
	if len(setD) != 1 || setD[0] != 1 {
		t.Errorf("MPR-1 delay set = %v, want [1]", setD)
	}
}

func TestSelectEmptyTwoHop(t *testing.T) {
	// No 2-hop neighborhood: the MPR set is empty for all heuristics.
	g := star(t, 3, nil, nil)
	lv := graph.NewLocalView(g, 0)
	for _, h := range []Heuristic{Greedy, QOLSR1, QOLSR2} {
		set, err := Select(lv, h, metric.Bandwidth(), weights(t, g))
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if len(set) != 0 {
			t.Errorf("%v: set = %v, want empty", h, set)
		}
	}
}

func TestSelectRequiresMetricForQoS(t *testing.T) {
	g := star(t, 1, nil, nil)
	lv := graph.NewLocalView(g, 0)
	if _, err := Select(lv, QOLSR2, nil, nil); err == nil {
		t.Error("QOLSR2 without metric accepted")
	}
	if _, err := Select(lv, Heuristic(42), metric.Delay(), weights(t, g)); err == nil {
		// Unknown heuristics only fail once phase 2 runs; with no 2-hop
		// neighbors they trivially return empty, which is acceptable.
		t.Skip("unknown heuristic with empty phase 2 returns empty set")
	}
}

func TestHeuristicString(t *testing.T) {
	if Greedy.String() != "olsr-greedy" || QOLSR1.String() != "qolsr-mpr1" || QOLSR2.String() != "qolsr-mpr2" {
		t.Error("heuristic names wrong")
	}
	if Heuristic(9).String() != "Heuristic(9)" {
		t.Error("unknown heuristic name wrong")
	}
}

// Property: all heuristics produce covering sets on random geometric-ish
// graphs, and greedy is never larger than... (no such guarantee; just check
// coverage and determinism).
func TestCoverageInvariantRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 30; trial++ {
		g := graph.New(25)
		for a := int32(0); a < 25; a++ {
			for b := a + 1; b < 25; b++ {
				if rng.Float64() < 0.12 {
					e := g.MustAddEdge(a, b)
					if err := g.SetWeight("bandwidth", e, float64(1+rng.Intn(10))); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		u := int32(rng.Intn(25))
		lv := graph.NewLocalView(g, u)
		for _, h := range []Heuristic{Greedy, QOLSR1, QOLSR2} {
			set, err := Select(lv, h, metric.Bandwidth(), weights(t, g))
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, h, err)
			}
			if !VerifyCoverage(lv, set) {
				t.Fatalf("trial %d %v: coverage violated", trial, h)
			}
			// Deterministic: same inputs, same output.
			set2, err := Select(lv, h, metric.Bandwidth(), weights(t, g))
			if err != nil {
				t.Fatal(err)
			}
			if len(set) != len(set2) {
				t.Fatalf("trial %d %v: nondeterministic size", trial, h)
			}
			for i := range set {
				if set[i] != set2[i] {
					t.Fatalf("trial %d %v: nondeterministic member", trial, h)
				}
			}
		}
	}
}

// The paper (citing [3]) notes most MPRs come from the mandatory phase; as a
// sanity check, phase-1-only selection must be a subset of the final set.
func TestMandatoryPhaseSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 10; trial++ {
		g := graph.New(30)
		for a := int32(0); a < 30; a++ {
			for b := a + 1; b < 30; b++ {
				if rng.Float64() < 0.1 {
					e := g.MustAddEdge(a, b)
					if err := g.SetWeight("bandwidth", e, float64(1+rng.Intn(10))); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		u := int32(rng.Intn(30))
		lv := graph.NewLocalView(g, u)
		// Compute unique-cover neighbors directly.
		coverCount := map[int32]int{}
		coverer := map[int32]int32{}
		for _, n := range lv.N1 {
			for _, arc := range g.Arcs(n) {
				if lv.Role(arc.To) == graph.RoleTwoHop {
					coverCount[arc.To]++
					coverer[arc.To] = n
				}
			}
		}
		mandatory := map[int32]bool{}
		for v, c := range coverCount {
			if c == 1 {
				mandatory[coverer[v]] = true
			}
		}
		for _, h := range []Heuristic{Greedy, QOLSR1, QOLSR2} {
			set, err := Select(lv, h, metric.Bandwidth(), weights(t, g))
			if err != nil {
				t.Fatal(err)
			}
			inSet := map[int32]bool{}
			for _, x := range set {
				inSet[x] = true
			}
			for n := range mandatory {
				if !inSet[n] {
					t.Fatalf("trial %d %v: mandatory neighbor %d missing", trial, h, n)
				}
			}
		}
	}
}

func TestMinCoverPrunesRedundantRelay(t *testing.T) {
	// Greedy's tie-breaks pick neighbor 1 {6,7} first, then 2 (for 8) and
	// 3 (for 9) — which between them re-cover everything 1 covers.
	// Neighbors 4 and 5 only exist to keep 8 and 9 non-uniquely covered so
	// the mandatory phase stays empty.
	g := star(t, 5, map[int32][]int32{
		1: {6, 7}, 2: {6, 8}, 3: {7, 9}, 4: {8}, 5: {9},
	}, nil)
	lv := graph.NewLocalView(g, 0)
	greedy, err := Select(lv, Greedy, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int32{1, 2, 3}; !reflect.DeepEqual(greedy, want) {
		t.Fatalf("greedy = %v, want %v", greedy, want)
	}
	// MinCover needs neither metric nor weights.
	minc, err := Select(lv, MinCover, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int32{2, 3}; !reflect.DeepEqual(minc, want) {
		t.Fatalf("min-cover = %v, want %v", minc, want)
	}
	if !VerifyCoverage(lv, minc) {
		t.Error("pruned relay set lost coverage")
	}
}

func TestMinCoverCoverageInvariantRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		k := 2 + rng.Intn(6)
		twoHop := map[int32][]int32{}
		seen := map[[2]int32]bool{}
		next := int32(k + 1)
		for i := int32(1); i <= int32(k); i++ {
			for j := 0; j < rng.Intn(4); j++ {
				v := next
				if rng.Intn(2) == 0 && next > int32(k+1) {
					// Re-cover an existing 2-hop node.
					v = int32(k+1) + rng.Int31n(next-int32(k+1))
				} else {
					next++
				}
				if seen[[2]int32{i, v}] {
					continue
				}
				seen[[2]int32{i, v}] = true
				twoHop[i] = append(twoHop[i], v)
			}
		}
		g := star(t, k, twoHop, nil)
		lv := graph.NewLocalView(g, 0)
		greedy, err := Select(lv, Greedy, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		minc, err := Select(lv, MinCover, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !VerifyCoverage(lv, minc) {
			t.Fatalf("trial %d: min-cover set %v loses coverage", trial, minc)
		}
		if len(minc) > len(greedy) {
			t.Fatalf("trial %d: min-cover %v bigger than greedy %v", trial, minc, greedy)
		}
	}
}
