package eval

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"qolsr/internal/geom"
	"qolsr/internal/graph"
	"qolsr/internal/metric"
	"qolsr/internal/netgen"
	"qolsr/internal/olsr"
	"qolsr/internal/rng"
	"qolsr/internal/sim"
	"qolsr/internal/stats"
	"qolsr/internal/traffic"
)

// The satisfaction-vs-offered-load sweep (experiment A8): drive sustained
// CBR flows through the live stack over the lossy queued radio at growing
// per-flow rates and measure what fraction of admitted flows had their QoS
// honored. It compares the paper's QoS-based selection (FNBP under the
// bandwidth metric — wide links, faster serialization, shorter queues)
// against hop-count selection (the same machinery under the hop metric),
// in both link-sensing modes (oracle weights vs measured link quality).
// The QoS-violation ratio — admitted flows whose measured delay then broke
// the ceiling — is the honest score of a neighbor-selection policy under
// load: high delivery means little if it was bought by violating what
// admission promised.

// LoadSweepOptions configures the A8 experiment.
type LoadSweepOptions struct {
	// Loads is the per-flow offered-load axis, as multipliers of
	// BaseRateBps (default 0.5, 1, 2, 4).
	Loads []float64
	// BaseRateBps is the per-flow offered load at multiplier 1 (default
	// 16384 — 16 kB/s per flow).
	BaseRateBps float64
	// Flows is the number of concurrent CBR flows (default 16).
	Flows int
	// MaxDelay is the flows' end-to-end delay ceiling (default 60ms).
	MaxDelay time.Duration
	// Loss is the lossy medium's base packet-error rate (default 0.02).
	Loss float64
	// Runs is the number of independent fields per load point (default 3).
	Runs int
	// SimTime is the traffic duration per run, after a convergence
	// warmup (default 30s).
	SimTime time.Duration
	// Seed derives field, protocol, medium and flow randomness.
	Seed int64
	// Field is the deployment area (default 600×600).
	Field geom.Field
	// Degree is the deployment target mean degree (default 10).
	Degree float64
}

// loadWarmup is the protocol convergence time before flows start.
const loadWarmup = 25 * time.Second

// LoadSelections returns the compared selection policies in column order:
// the paper's QoS-based selection and hop-count selection.
func LoadSelections() []string { return []string{"qos", "hop"} }

// LoadPoint is one (load, selection, sensing-mode) measurement.
type LoadPoint struct {
	// Load is the per-flow rate multiplier.
	Load float64
	// Selection is "qos" or "hop"; Mode is "oracle" or "measured".
	Selection string
	Mode      string
	// Admitted and Rejected accumulate flow counts per run.
	Admitted stats.Accumulator
	// Violation is the per-run QoS-violation ratio (violated/admitted).
	Violation stats.Accumulator
	// CorrectReject is the per-run count of rejections the oracle agreed
	// with.
	CorrectReject stats.Accumulator
	// Delivery is the per-run packet delivery ratio of the mix.
	Delivery stats.Accumulator
	// DelayP95 is the per-run 95th-percentile delivered delay, seconds.
	DelayP95 stats.Accumulator
	// ThroughputBps is the per-run aggregate delivered rate.
	ThroughputBps stats.Accumulator
}

// LoadSweepResult is the outcome of RunLoadSweep.
type LoadSweepResult struct {
	Options LoadSweepOptions
	// Points is indexed [load][selection×mode], column order
	// (qos,oracle), (qos,measured), (hop,oracle), (hop,measured).
	Points [][]*LoadPoint
	// Columns names the column order as "selection/mode".
	Columns []string
}

// loadColumns enumerates (selection, mode) pairs in column order.
func loadColumns() [][2]string {
	var cols [][2]string
	for _, sel := range LoadSelections() {
		for _, mode := range LossModes() {
			cols = append(cols, [2]string{sel, mode})
		}
	}
	return cols
}

// RunLoadSweep measures QoS satisfaction against offered load on the live
// stack. Cancelling ctx stops between simulations and returns ctx.Err().
func RunLoadSweep(ctx context.Context, opts LoadSweepOptions) (*LoadSweepResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(opts.Loads) == 0 {
		opts.Loads = []float64{0.5, 1, 2, 4, 8}
	}
	if opts.BaseRateBps <= 0 {
		opts.BaseRateBps = 16384
	}
	if opts.Flows <= 0 {
		opts.Flows = 16
	}
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = 60 * time.Millisecond
	}
	if opts.Loss <= 0 {
		opts.Loss = 0.02
	}
	if opts.Runs <= 0 {
		opts.Runs = 3
	}
	if opts.SimTime <= 0 {
		opts.SimTime = 30 * time.Second
	}
	if opts.Field == (geom.Field{}) {
		opts.Field = geom.Field{Width: 600, Height: 600}
	}
	if opts.Degree <= 0 {
		opts.Degree = 10
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}

	cols := loadColumns()
	res := &LoadSweepResult{Options: opts}
	for _, c := range cols {
		res.Columns = append(res.Columns, c[0]+"/"+c[1])
	}
	for li, load := range opts.Loads {
		row := make([]*LoadPoint, len(cols))
		for ci, c := range cols {
			row[ci] = &LoadPoint{Load: load, Selection: c[0], Mode: c[1]}
		}
		for run := 0; run < opts.Runs; run++ {
			// One field and one flow set per (load-axis, run), shared by
			// every column so the comparison is paired.
			fieldSeed := RunSeed(opts.Seed, opts.Degree, run)
			fieldRNG := rand.New(rand.NewSource(fieldSeed))
			dep := geom.Deployment{Field: opts.Field, Radius: 100, Degree: opts.Degree}
			g, err := netgen.Build(dep, "bandwidth", metric.DefaultInterval(), fieldRNG)
			if err != nil {
				return nil, err
			}
			if g.N() < 4 {
				continue
			}
			// The hop metric routes on its own channel; every link costs
			// one regardless, so the weight value is immaterial — but the
			// channel must exist.
			for a := int32(0); int(a) < g.N(); a++ {
				for _, arc := range g.Arcs(a) {
					if a < arc.To {
						if err := g.SetWeight("hop", int(arc.Edge), 1); err != nil {
							return nil, err
						}
					}
				}
			}
			pairs := sim.DrawPairs(g.N(), opts.Flows, int64(rng.Mix(uint64(fieldSeed), 0xF10)))

			for ci, c := range cols {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				if err := runLoadCell(row[ci], g, pairs, load, c[0], c[1], fieldSeed, li, opts); err != nil {
					return nil, err
				}
			}
		}
		res.Points = append(res.Points, row)
	}
	return res, nil
}

// runLoadCell executes one (field, load, selection, mode) simulation and
// folds its results into the point.
func runLoadCell(p *LoadPoint, g *graph.Graph, pairs [][2]int32, load float64, selection, mode string, fieldSeed int64, li int, opts LoadSweepOptions) error {
	m := metric.Bandwidth()
	if selection == "hop" {
		m = metric.Hop()
	}
	cfg := olsr.DefaultConfig(m)
	cfg.MeasuredQoS = mode == "measured"
	medium := sim.NewLossyMedium(sim.LossyConfig{
		Loss: opts.Loss,
		Seed: int64(rng.Mix(uint64(fieldSeed), uint64(li), 0x4D)),
	})
	nw, err := sim.NewNetwork(g, cfg, sim.NetworkOptions{
		Seed:   RunSeed(fieldSeed, opts.Degree, li),
		Medium: medium,
	})
	if err != nil {
		return err
	}
	nw.Start()
	nw.Run(loadWarmup)

	eng := traffic.NewEngine(nw, int64(rng.Mix(uint64(fieldSeed), 0xF70, uint64(li))))
	for i, pr := range pairs {
		if err := eng.Add(traffic.Flow{
			ID:          i,
			Class:       traffic.ClassCBR,
			Src:         pr[0],
			Dst:         pr[1],
			RateBps:     opts.BaseRateBps * load,
			PacketBytes: traffic.DefaultPacketBytes,
			Start:       loadWarmup,
			Req:         traffic.Requirements{MaxDelay: opts.MaxDelay},
		}); err != nil {
			return err
		}
	}
	stop := loadWarmup + opts.SimTime
	if err := eng.Start(stop); err != nil {
		return err
	}
	// Drain in-flight packets before the verdicts are read. This flushes
	// bounded queues; a saturated backlog cannot drain by construction,
	// so at overload the horizon counts still-queued packets as sent but
	// undelivered — part of the violation signal, not an artifact to
	// hide.
	nw.Run(stop + time.Second)

	rep := eng.Report()
	p.Admitted.Add(float64(rep.Total.Admitted))
	p.Violation.Add(rep.Total.ViolationRatio())
	p.CorrectReject.Add(float64(rep.Total.CorrectReject))
	p.Delivery.Add(rep.Total.Delivery)
	p.DelayP95.Add(rep.Total.DelayP95.Seconds())
	p.ThroughputBps.Add(rep.Total.Throughput)
	return nil
}

// WriteTable renders the sweep as an aligned table: one row per load, one
// column group per selection/mode.
func (r *LoadSweepResult) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# A8 — QoS satisfaction vs offered load (%d flows, %v ceiling, loss %g, %d runs/point, %v traffic)\n",
		r.Options.Flows, r.Options.MaxDelay, r.Options.Loss, r.Options.Runs, r.Options.SimTime); err != nil {
		return err
	}
	header := []string{"load"}
	for _, c := range r.Columns {
		header = append(header, c+"_viol", c+"_dlv", c+"_p95ms")
	}
	if _, err := fmt.Fprintln(w, strings.Join(pad(header), "  ")); err != nil {
		return err
	}
	for li, row := range r.Points {
		cells := []string{fmt.Sprintf("%g", r.Options.Loads[li])}
		for _, p := range row {
			cells = append(cells,
				fmt.Sprintf("%.3f", p.Violation.Mean()),
				fmt.Sprintf("%.3f", p.Delivery.Mean()),
				fmt.Sprintf("%.1f", p.DelayP95.Mean()*1e3))
		}
		if _, err := fmt.Fprintln(w, strings.Join(pad(cells), "  ")); err != nil {
			return err
		}
	}
	return nil
}
