package eval

import (
	"context"
	"testing"
	"time"
)

// The 1000-node scale point is the perf canary: after the shared-topology
// interning, dense slot tables and flat SPF work it runs in ~2s of wall
// time on one modest core. The ceiling is deliberately loose (slow CI
// hardware, race-detector runs) — it exists to catch an order-of-magnitude
// regression in the hot path, not jitter.
func TestScaleWallCeiling1000(t *testing.T) {
	if testing.Short() {
		t.Skip("scale point too heavy for -short")
	}
	const ceiling = 90 * time.Second
	res, err := RunScaleSweep(context.Background(), ScaleSweepOptions{Nodes: []int{1000}})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Points[0]
	if wall := p.WallSeconds.Mean(); wall > ceiling.Seconds() {
		t.Fatalf("1000-node point took %.1fs wall, ceiling %v", wall, ceiling)
	}
	if dlv := p.Delivery.Mean(); dlv < 0.95 {
		t.Fatalf("1000-node delivery %.3f, want >= 0.95", dlv)
	}
}
