package eval

import (
	"context"
	"strings"
	"testing"

	"qolsr/internal/geom"
	"qolsr/internal/metric"
)

// smallScenario keeps tests fast: low density, few runs, small field.
func smallScenario(m metric.Metric, degree float64, runs int) Scenario {
	return Scenario{
		Deployment:     geom.Deployment{Field: geom.Field{Width: 400, Height: 400}, Radius: 100, Degree: degree},
		Metric:         m,
		WeightInterval: metric.DefaultInterval(),
		Runs:           runs,
		Seed:           42,
	}
}

func TestRunPointBasics(t *testing.T) {
	sc := smallScenario(metric.Bandwidth(), 10, 4)
	res, err := RunPoint(context.Background(), sc, PaperProtocols())
	if err != nil {
		t.Fatal(err)
	}
	if res.Degree != 10 {
		t.Errorf("Degree = %v", res.Degree)
	}
	if res.Nodes.N() != 4 {
		t.Errorf("node samples = %d, want 4", res.Nodes.N())
	}
	for _, name := range []string{"qolsr", "topofilter", "fnbp"} {
		pp := res.Protocols[name]
		if pp == nil {
			t.Fatalf("missing protocol %s", name)
		}
		if pp.SetSize.N() == 0 {
			t.Errorf("%s: no set-size samples", name)
		}
		if pp.SetSize.Mean() < 0 {
			t.Errorf("%s: negative set size", name)
		}
		if pp.Delivery.N()+res.SkippedRuns < 4 {
			t.Errorf("%s: delivery samples %d + skipped %d < runs", name, pp.Delivery.N(), res.SkippedRuns)
		}
	}
}

// Determinism: the same scenario yields bit-identical accumulators
// regardless of worker count.
func TestRunPointDeterministic(t *testing.T) {
	sc := smallScenario(metric.Delay(), 8, 6)
	sc.Workers = 1
	a, err := RunPoint(context.Background(), sc, PaperProtocols())
	if err != nil {
		t.Fatal(err)
	}
	sc.Workers = 4
	b, err := RunPoint(context.Background(), sc, PaperProtocols())
	if err != nil {
		t.Fatal(err)
	}
	for name, pa := range a.Protocols {
		pb := b.Protocols[name]
		if pa.SetSize.Mean() != pb.SetSize.Mean() || pa.SetSize.N() != pb.SetSize.N() {
			t.Errorf("%s: set size differs across worker counts", name)
		}
		if pa.Overhead.Mean() != pb.Overhead.Mean() {
			t.Errorf("%s: overhead differs across worker counts", name)
		}
	}
}

func TestRunPointValidation(t *testing.T) {
	sc := smallScenario(metric.Bandwidth(), 10, 0)
	if _, err := RunPoint(context.Background(), sc, PaperProtocols()); err == nil {
		t.Error("zero runs accepted")
	}
	sc = smallScenario(metric.Bandwidth(), 10, 1)
	sc.WeightInterval = metric.Interval{Lo: 0, Hi: 1}
	if _, err := RunPoint(context.Background(), sc, PaperProtocols()); err == nil {
		t.Error("invalid interval accepted")
	}
	sc = smallScenario(metric.Bandwidth(), 0, 1)
	if _, err := RunPoint(context.Background(), sc, PaperProtocols()); err == nil {
		t.Error("invalid deployment accepted")
	}
}

// The headline size claim at a single mid density: FNBP advertises fewer
// neighbors than topology filtering, which advertises fewer than QOLSR's
// MPR-2 set.
func TestSizeOrderingAtMidDensity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run evaluation")
	}
	sc := smallScenario(metric.Bandwidth(), 18, 8)
	res, err := RunPoint(context.Background(), sc, PaperProtocols())
	if err != nil {
		t.Fatal(err)
	}
	fnbp := res.Protocols["fnbp"].SetSize.Mean()
	tf := res.Protocols["topofilter"].SetSize.Mean()
	qolsr := res.Protocols["qolsr"].SetSize.Mean()
	if !(fnbp < tf && tf < qolsr) {
		t.Errorf("size ordering violated: fnbp=%.2f topofilter=%.2f qolsr=%.2f", fnbp, tf, qolsr)
	}
}

// The headline overhead claim: FNBP's regret is far below QOLSR's.
func TestOverheadOrderingAtMidDensity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run evaluation")
	}
	sc := smallScenario(metric.Bandwidth(), 18, 8)
	res, err := RunPoint(context.Background(), sc, PaperProtocols())
	if err != nil {
		t.Fatal(err)
	}
	fnbp := res.Protocols["fnbp"].Overhead.Mean()
	qolsr := res.Protocols["qolsr"].Overhead.Mean()
	if fnbp >= qolsr {
		t.Errorf("overhead ordering violated: fnbp=%.4f qolsr=%.4f", fnbp, qolsr)
	}
}

func TestPaperFiguresDefinitions(t *testing.T) {
	figs := PaperFigures()
	if len(figs) != 4 {
		t.Fatalf("figures = %d, want 4", len(figs))
	}
	wantMetric := map[string]string{
		"fig6": "bandwidth", "fig7": "delay",
		"fig8": "bandwidth", "fig9": "delay",
	}
	for _, f := range figs {
		if f.Metric.Name() != wantMetric[f.ID] {
			t.Errorf("%s metric = %s", f.ID, f.Metric.Name())
		}
		if len(f.Degrees) != 6 {
			t.Errorf("%s degrees = %v", f.ID, f.Degrees)
		}
		if len(f.Protocols) != 3 {
			t.Errorf("%s protocols = %d", f.ID, len(f.Protocols))
		}
	}
	if _, err := FigureByID("fig8"); err != nil {
		t.Error(err)
	}
	if _, err := FigureByID("fig99"); err == nil {
		t.Error("unknown figure accepted")
	}
}

// runFigureSerial assembles a FigureResult point by point, the way the
// runner package does in parallel.
func runFigureSerial(t *testing.T, fig Figure, runs int, seed int64) *FigureResult {
	t.Helper()
	res := &FigureResult{Figure: fig, Runs: runs}
	for _, deg := range fig.Degrees {
		sc := fig.Scenario(deg, runs, seed, metric.DefaultInterval())
		// Tests sweep sub-paper densities on a small field for speed.
		sc.Deployment = geom.Deployment{Field: geom.Field{Width: 400, Height: 400}, Radius: 100, Degree: deg}
		point, err := RunPoint(context.Background(), sc, fig.Protocols)
		if err != nil {
			t.Fatal(err)
		}
		res.Points = append(res.Points, point)
	}
	return res
}

func TestFigureWriters(t *testing.T) {
	fig := Figure{
		ID:        "figtest",
		Title:     "tiny smoke figure",
		Metric:    metric.Bandwidth(),
		Degrees:   []float64{8, 12},
		Quantity:  QuantitySetSize,
		Protocols: PaperProtocols(),
	}
	res := runFigureSerial(t, fig, 2, 7)
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}

	var tbl strings.Builder
	if err := res.WriteTable(&tbl); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"figtest", "density", "qolsr", "fnbp"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("table missing %q:\n%s", want, tbl.String())
		}
	}
	var csv strings.Builder
	if err := res.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 {
		t.Errorf("csv lines = %d, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "density,qolsr_mean,qolsr_ci95") {
		t.Errorf("csv header = %s", lines[0])
	}
	var del strings.Builder
	if err := res.WriteDeliveryTable(&del); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(del.String(), "delivery ratio") {
		t.Error("delivery table header missing")
	}
	if v := res.Value(0, "fnbp"); v < 0 {
		t.Errorf("Value = %v", v)
	}
}

func TestProtocolSpecFactories(t *testing.T) {
	if len(LoopFixAblation()) != 3 {
		t.Error("loop-fix ablation size")
	}
	if len(LocalLinksAblation()) != 4 {
		t.Error("local-links ablation size")
	}
	if len(UpperBoundProtocols()) != 4 {
		t.Error("upper-bound protocols size")
	}
	if len(MPRHeuristicAblation()) != 3 {
		t.Error("mpr ablation size")
	}
	names := map[string]bool{}
	for _, p := range UpperBoundProtocols() {
		if names[p.Name] {
			t.Errorf("duplicate protocol name %s", p.Name)
		}
		names[p.Name] = true
	}
}

// Directed-advertisement delivery (ablation A1): with the loop fix the
// ratio must not be lower than without it.
func TestDirectedDeliveryAblation(t *testing.T) {
	sc := smallScenario(metric.Bandwidth(), 10, 4)
	sc.MeasureDirectedDelivery = true
	res, err := RunPoint(context.Background(), sc, LoopFixAblation())
	if err != nil {
		t.Fatal(err)
	}
	withFix := res.Protocols["fnbp"].DirectedDelivery
	without := res.Protocols["fnbp-nofix"].DirectedDelivery
	if withFix.N() == 0 {
		t.Fatal("no directed delivery samples")
	}
	if withFix.Mean() < without.Mean() {
		t.Errorf("loop fix reduced directed delivery: %.4f < %.4f",
			withFix.Mean(), without.Mean())
	}
	if withFix.Mean() <= 0 || withFix.Mean() > 1 {
		t.Errorf("delivery ratio out of range: %v", withFix.Mean())
	}
}

func TestControlSweep(t *testing.T) {
	res, err := RunControlSweep(context.Background(), ControlSweepOptions{
		Degrees: []float64{8},
		Runs:    1,
		SimTime: 15 * 1e9, // 15s virtual
		Seed:    3,
		Field:   geom.Field{Width: 300, Height: 300},
		Metric:  metric.Bandwidth(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 || len(res.Points[0]) != 3 {
		t.Fatalf("points shape wrong: %d rows", len(res.Points))
	}
	for _, p := range res.Points[0] {
		if p.TCBytesPerSec.Mean() <= 0 {
			t.Errorf("%s: no TC traffic", p.Selector)
		}
		if p.HelloBytesPerSec.Mean() <= 0 {
			t.Errorf("%s: no HELLO traffic", p.Selector)
		}
	}
	// QOLSR's bigger advertised sets must cost more TC bytes than FNBP's.
	var fnbpRate, qolsrRate float64
	for _, p := range res.Points[0] {
		switch p.Selector {
		case "fnbp":
			fnbpRate = p.TCBytesPerSec.Mean()
		case "qolsr-qolsr-mpr2":
			qolsrRate = p.TCBytesPerSec.Mean()
		}
	}
	if fnbpRate >= qolsrRate {
		t.Errorf("TC rate ordering violated: fnbp %.0f >= qolsr %.0f", fnbpRate, qolsrRate)
	}
	var sb strings.Builder
	if err := res.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "A4") {
		t.Error("table header missing")
	}
}

func TestPointResultSortedNames(t *testing.T) {
	sc := smallScenario(metric.Bandwidth(), 8, 1)
	res, err := RunPoint(context.Background(), sc, PaperProtocols())
	if err != nil {
		t.Fatal(err)
	}
	names := res.SortedProtocolNames()
	if len(names) != 3 || names[0] != "fnbp" {
		t.Errorf("sorted names = %v", names)
	}
}

func TestRunPointCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sc := smallScenario(metric.Bandwidth(), 10, 8)
	if _, err := RunPoint(ctx, sc, PaperProtocols()); err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestSweepRegistry(t *testing.T) {
	if len(Ablations()) != 6 {
		t.Errorf("ablations = %d", len(Ablations()))
	}
	ids := SweepIDs()
	if len(ids) != 10 {
		t.Errorf("sweep IDs = %v", ids)
	}
	for _, id := range ids {
		f, err := SweepByID(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if f.ID != id || len(f.Protocols) < 2 || len(f.Degrees) == 0 || f.Metric == nil {
			t.Errorf("%s: incomplete figure %+v", id, f)
		}
	}
	// Short forms resolve to the prefixed ID.
	f, err := SweepByID("mprs")
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "ablation-mprs" {
		t.Errorf("short form resolved to %q", f.ID)
	}
	if _, err := SweepByID("fig99"); err == nil {
		t.Error("unknown sweep accepted")
	}
}

func TestQuantityByName(t *testing.T) {
	for _, name := range []string{"set-size", "overhead", "delivery", "directed-delivery"} {
		q, err := QuantityByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if string(q) != name {
			t.Errorf("%s resolved to %q", name, q)
		}
	}
	if _, err := QuantityByName("bogus"); err == nil {
		t.Error("unknown quantity accepted")
	}
}
