package eval

import "math"

// splitmix64 is the finalizer of the SplitMix64 generator (Steele, Lea,
// Flood 2014). It is a high-quality 64-bit mixing function: every input bit
// avalanches into every output bit, so nearby inputs produce uncorrelated
// outputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RunSeed derives the RNG stream for one run of one density point from the
// experiment's base seed. The naive `seed + run + deg*constant` scheme
// collides whenever run deltas cancel degree deltas (e.g. run 7919 of degree
// d equals run 0 of degree d+1); chaining splitmix64 over the three inputs
// makes every (seed, degree, run) triple an independent stream.
func RunSeed(seed int64, degree float64, run int) int64 {
	h := splitmix64(uint64(seed))
	h = splitmix64(h ^ math.Float64bits(degree))
	h = splitmix64(h ^ uint64(run))
	return int64(h)
}
