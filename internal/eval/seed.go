package eval

import (
	"math"

	"qolsr/internal/rng"
)

// RunSeed derives the RNG stream for one run of one density point from the
// experiment's base seed. The naive `seed + run + deg*constant` scheme
// collides whenever run deltas cancel degree deltas (e.g. run 7919 of degree
// d equals run 0 of degree d+1); chaining splitmix64 over the three inputs
// makes every (seed, degree, run) triple an independent stream.
func RunSeed(seed int64, degree float64, run int) int64 {
	h := rng.Splitmix64(uint64(seed))
	h = rng.Splitmix64(h ^ math.Float64bits(degree))
	h = rng.Splitmix64(h ^ uint64(run))
	return int64(h)
}
