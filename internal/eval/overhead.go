package eval

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"
	"time"

	"qolsr/internal/core"
	"qolsr/internal/geom"
	"qolsr/internal/graph"
	"qolsr/internal/metric"
	"qolsr/internal/mpr"
	"qolsr/internal/netgen"
	"qolsr/internal/olsr"
	"qolsr/internal/sim"
	"qolsr/internal/stats"
)

// The overhead-vs-density sweep (experiment O1): the paper's QoS-driven
// selection trades flooding efficiency for QoS coverage, so its control
// traffic grows superlinearly with degree. This sweep runs the original
// QOLSR control plane (QOLSR MPR-2 for both advertisement and flooding)
// against each control-plane optimisation — delta-encoded TCs, fish-eye
// scoping, min-cover flood relays — and all three together, on the same
// fields and seeds, and reports control bytes split into originated and
// forwarded, TC forward counts, data delivery and hop stretch. The claim
// under test: the optimised plane's control bytes grow sublinearly where
// the baseline's grow superlinearly, at equal delivery.

// OverheadSweepOptions configures the O1 experiment.
type OverheadSweepOptions struct {
	// Degrees is the density axis (default {5, 10, 15, 20, 30} — past the
	// paper's 5-20 range, where flooding cost takes over).
	Degrees []float64
	// Runs is the number of fields per density (default 3).
	Runs int
	// SimTime is the virtual time simulated per field (default 60s).
	SimTime time.Duration
	// Seed derives field and jitter randomness.
	Seed int64
	// Field is the deployment area (default 600×600, shared with the A4
	// control sweep).
	Field geom.Field
	// Metric drives selection (default bandwidth).
	Metric metric.Metric
}

// overheadVariants names the compared control planes in column order.
func overheadVariants() []string {
	return []string{"baseline", "delta", "fisheye", "minrelay", "all"}
}

// overheadConfig builds the variant's protocol configuration. The base is
// the paper's original QOLSR — MPR-2 drives both the advertised set and the
// flooding relays — so each optimisation is measured against the control
// plane whose density scaling motivates it.
func overheadConfig(variant string, m metric.Metric) olsr.Config {
	cfg := olsr.DefaultConfig(m)
	cfg.Selector = core.QOLSRAdapter{Heuristic: mpr.QOLSR2}
	cfg.MPRHeuristic = mpr.QOLSR2
	switch variant {
	case "delta":
		cfg.DeltaTC = true
	case "fisheye":
		cfg.FisheyeTTLs = olsr.DefaultFisheyeTTLs()
	case "minrelay":
		cfg.FloodRelay = mpr.MinCover
	case "all":
		cfg.DeltaTC = true
		cfg.FisheyeTTLs = olsr.DefaultFisheyeTTLs()
		cfg.FloodRelay = mpr.MinCover
	}
	return cfg
}

// OverheadPoint is one (density, variant) measurement.
type OverheadPoint struct {
	Degree  float64
	Variant string
	// ControlBytesPerSec is the total control rate (HELLO + TC, forwards
	// included) over the simulated window.
	ControlBytesPerSec stats.Accumulator
	// TCOrigBytesPerSec and TCFwdBytesPerSec split the TC rate into
	// origin transmissions and relay re-broadcasts.
	TCOrigBytesPerSec stats.Accumulator
	TCFwdBytesPerSec  stats.Accumulator
	// TCForwards counts relay re-broadcasts over the window.
	TCForwards stats.Accumulator
	// Delivery is the post-warmup sweep delivery to node 0 and HopStretch
	// the delivered-path inflation against the hop-optimal path — the
	// equal-service check the byte savings must hold at.
	Delivery   stats.Accumulator
	HopStretch stats.Accumulator
}

// OverheadSweepResult is the outcome of RunOverheadSweep.
type OverheadSweepResult struct {
	Options OverheadSweepOptions
	// Points is indexed [density][variant], variants in
	// overheadVariants() order.
	Points [][]*OverheadPoint
	// Variants is the column order.
	Variants []string
}

// RunOverheadSweep measures control overhead against density per
// control-plane variant, on identical fields and seeds across variants.
// Cancelling ctx stops between simulations and returns ctx.Err().
func RunOverheadSweep(ctx context.Context, opts OverheadSweepOptions) (*OverheadSweepResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(opts.Degrees) == 0 {
		opts.Degrees = []float64{5, 10, 15, 20, 30}
	}
	if opts.Runs <= 0 {
		opts.Runs = 3
	}
	if opts.SimTime <= 0 {
		opts.SimTime = 60 * time.Second
	}
	if opts.Field == (geom.Field{}) {
		opts.Field = geom.Field{Width: 600, Height: 600}
	}
	if opts.Metric == nil {
		opts.Metric = metric.Bandwidth()
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}

	variants := overheadVariants()
	res := &OverheadSweepResult{Options: opts, Variants: variants}
	for _, deg := range opts.Degrees {
		row := make([]*OverheadPoint, len(variants))
		for vi, v := range variants {
			row[vi] = &OverheadPoint{Degree: deg, Variant: v}
		}
		for run := 0; run < opts.Runs; run++ {
			fieldSeed := RunSeed(opts.Seed, deg, run)
			rng := rand.New(rand.NewSource(fieldSeed))
			dep := geom.Deployment{Field: opts.Field, Radius: 100, Degree: deg}
			g, err := netgen.Build(dep, opts.Metric.Name(), metric.DefaultInterval(), rng)
			if err != nil {
				return nil, err
			}
			if g.N() < 2 {
				continue
			}
			for vi, v := range variants {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				// Every variant sees the same field and the same jitter
				// seed: the only degree of freedom is the control plane.
				nw, err := sim.NewNetwork(g, overheadConfig(v, opts.Metric), sim.NetworkOptions{Seed: RunSeed(fieldSeed, deg, run)})
				if err != nil {
					return nil, err
				}
				nw.Start()
				nw.Run(opts.SimTime)
				secs := opts.SimTime.Seconds()
				p := row[vi]
				p.ControlBytesPerSec.Add(float64(nw.Stats.HelloBytes+nw.Stats.TCBytes) / secs)
				p.TCOrigBytesPerSec.Add(float64(nw.Stats.TCOriginatedBytes) / secs)
				p.TCFwdBytesPerSec.Add(float64(nw.Stats.TCForwardedBytes) / secs)
				p.TCForwards.Add(float64(nw.Stats.TCForwarded))
				dlv, stretch := deliveryAndStretch(nw, 0)
				p.Delivery.Add(dlv)
				if stretch > 0 {
					p.HopStretch.Add(stretch)
				}
			}
		}
		res.Points = append(res.Points, row)
	}
	return res, nil
}

// deliveryAndStretch sends one packet from every physically-connected node
// to dst, returning the delivered fraction and the mean hop stretch of the
// delivered paths against the hop-optimal path on the physical topology.
func deliveryAndStretch(nw *sim.Network, dst int32) (delivery, stretch float64) {
	w, err := nw.Phys.Weights(nw.Metric().Name())
	if err != nil {
		return 0, 0
	}
	hopSP := graph.Dijkstra(nw.Phys, metric.Hop(), w, dst, nil, -1)
	var delivered, total, stretchN int
	var stretchSum float64
	for s := int32(0); int(s) < nw.Phys.N(); s++ {
		if s == dst || !hopSP.Reachable(s) {
			continue
		}
		total++
		opt := hopSP.Dist[s]
		nw.SendData(s, dst, func(ok bool, hops int, _ time.Duration) {
			if !ok {
				return
			}
			delivered++
			if opt > 0 {
				stretchSum += float64(hops) / opt
				stretchN++
			}
		})
	}
	nw.Run(nw.Engine.Now() + time.Duration(sim.DefaultDataTTL+1)*nw.HopDelayBound())
	if total == 0 {
		return 1, 0
	}
	delivery = float64(delivered) / float64(total)
	if stretchN > 0 {
		stretch = stretchSum / float64(stretchN)
	}
	return delivery, stretch
}

// WriteTable renders the sweep as an aligned table.
func (r *OverheadSweepResult) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# O1 — control overhead vs density per control plane (%d runs/point, %v sim time)\n",
		r.Options.Runs, r.Options.SimTime); err != nil {
		return err
	}
	header := []string{"density"}
	for _, v := range r.Variants {
		header = append(header, v+"_ctlB/s", v+"_fwd", v+"_dlv")
	}
	if _, err := fmt.Fprintln(w, strings.Join(pad(header), "  ")); err != nil {
		return err
	}
	for di, row := range r.Points {
		cells := []string{fmt.Sprintf("%g", r.Options.Degrees[di])}
		for _, p := range row {
			cells = append(cells,
				fmt.Sprintf("%.0f", p.ControlBytesPerSec.Mean()),
				fmt.Sprintf("%.0f", p.TCForwards.Mean()),
				fmt.Sprintf("%.3f", p.Delivery.Mean()))
		}
		if _, err := fmt.Fprintln(w, strings.Join(pad(cells), "  ")); err != nil {
			return err
		}
	}
	return nil
}

// jsonOverheadPoint is the BENCH_overhead.json row form.
type jsonOverheadPoint struct {
	Degree        float64 `json:"degree"`
	Variant       string  `json:"variant"`
	CtrlBPS       float64 `json:"ctrl_bps"`
	TCOrigBPS     float64 `json:"tc_orig_bps"`
	TCFwdBPS      float64 `json:"tc_fwd_bps"`
	TCForwards    float64 `json:"tc_forwards"`
	Delivery      float64 `json:"delivery"`
	HopStretch    float64 `json:"hop_stretch"`
	CtrlBPSStddev float64 `json:"ctrl_bps_stddev"`
}

// EncodeJSON writes the sweep in the BENCH_overhead.json format: one row
// per (density, variant) with the byte split, forwards, delivery and
// stretch.
func (r *OverheadSweepResult) EncodeJSON(w io.Writer) error {
	type doc struct {
		Experiment string              `json:"experiment"`
		Degrees    []float64           `json:"degrees"`
		Runs       int                 `json:"runs"`
		SimSeconds float64             `json:"sim_seconds"`
		Seed       int64               `json:"seed"`
		Variants   []string            `json:"variants"`
		Points     []jsonOverheadPoint `json:"points"`
	}
	d := doc{
		Experiment: "overhead-vs-density",
		Degrees:    r.Options.Degrees,
		Runs:       r.Options.Runs,
		SimSeconds: r.Options.SimTime.Seconds(),
		Seed:       r.Options.Seed,
		Variants:   r.Variants,
	}
	// Accumulators with too few samples yield NaN (single-run stddev,
	// stretch with no delivered paths); JSON has no NaN, so encode 0.
	fin := func(x float64) float64 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0
		}
		return x
	}
	for _, row := range r.Points {
		for _, p := range row {
			d.Points = append(d.Points, jsonOverheadPoint{
				Degree:        p.Degree,
				Variant:       p.Variant,
				CtrlBPS:       fin(p.ControlBytesPerSec.Mean()),
				TCOrigBPS:     fin(p.TCOrigBytesPerSec.Mean()),
				TCFwdBPS:      fin(p.TCFwdBytesPerSec.Mean()),
				TCForwards:    fin(p.TCForwards.Mean()),
				Delivery:      fin(p.Delivery.Mean()),
				HopStretch:    fin(p.HopStretch.Mean()),
				CtrlBPSStddev: fin(p.ControlBytesPerSec.Std()),
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
