package eval

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"qolsr/internal/core"
	"qolsr/internal/geom"
	"qolsr/internal/metric"
	"qolsr/internal/mpr"
	"qolsr/internal/netgen"
	"qolsr/internal/olsr"
	"qolsr/internal/sim"
	"qolsr/internal/stats"
)

// ControlSweepOptions configures the A4 experiment: the live protocol stack
// is run per selector and the control-traffic cost of the advertised sets is
// measured on the wire, connecting Figs. 6-7 (set sizes) to actual TC bytes.
type ControlSweepOptions struct {
	// Degrees is the density axis (default {5, 10, 15, 20}).
	Degrees []float64
	// Runs is the number of fields per density (default 3).
	Runs int
	// SimTime is the virtual time simulated per field (default 60s).
	SimTime time.Duration
	// Seed derives field and jitter randomness.
	Seed int64
	// Field is the deployment area (default 600×600 to keep the stack
	// simulation affordable).
	Field geom.Field
	// Metric drives selection (default bandwidth).
	Metric metric.Metric
}

// ControlPoint is one (density, selector) measurement.
type ControlPoint struct {
	Degree   float64
	Selector string
	// TCBytesPerSec is the TC traffic rate including MPR forwards.
	TCBytesPerSec stats.Accumulator
	// HelloBytesPerSec is the HELLO rate (selector-independent up to
	// jitter; reported for scale).
	HelloBytesPerSec stats.Accumulator
	// SetSize is the mean advertised-set size observed on the wire.
	SetSize stats.Accumulator
	// Delivery is the data-plane delivery ratio of a full sweep to node 0
	// after SimTime: every node forwards one packet to the sink over its
	// own routing table. Cheap under the versioned routing core (tables
	// are cached per node), it ties the control-plane cost directly to
	// what the data plane gets for it.
	Delivery stats.Accumulator
}

// ControlSweepResult is the outcome of RunControlSweep.
type ControlSweepResult struct {
	Options ControlSweepOptions
	// Points is indexed [density][selector].
	Points [][]*ControlPoint
	// Selectors is the column order.
	Selectors []string
}

// controlSelectors are the compared advertised-set schemes.
func controlSelectors() []core.Selector {
	return []core.Selector{
		core.FNBP{},
		core.TopologyFilter{},
		core.QOLSRAdapter{Heuristic: mpr.QOLSR2},
	}
}

// RunControlSweep measures control-plane cost per selector and density on
// the live protocol stack. Cancelling ctx stops between simulations and
// returns ctx.Err().
func RunControlSweep(ctx context.Context, opts ControlSweepOptions) (*ControlSweepResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(opts.Degrees) == 0 {
		opts.Degrees = []float64{5, 10, 15, 20}
	}
	if opts.Runs <= 0 {
		opts.Runs = 3
	}
	if opts.SimTime <= 0 {
		opts.SimTime = 60 * time.Second
	}
	if opts.Field == (geom.Field{}) {
		opts.Field = geom.Field{Width: 600, Height: 600}
	}
	if opts.Metric == nil {
		opts.Metric = metric.Bandwidth()
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}

	selectors := controlSelectors()
	res := &ControlSweepResult{Options: opts}
	for _, sel := range selectors {
		res.Selectors = append(res.Selectors, sel.Name())
	}
	for _, deg := range opts.Degrees {
		row := make([]*ControlPoint, len(selectors))
		for si, sel := range selectors {
			row[si] = &ControlPoint{Degree: deg, Selector: sel.Name()}
		}
		for run := 0; run < opts.Runs; run++ {
			fieldSeed := RunSeed(opts.Seed, deg, run)
			rng := rand.New(rand.NewSource(fieldSeed))
			dep := geom.Deployment{Field: opts.Field, Radius: 100, Degree: deg}
			g, err := netgen.Build(dep, opts.Metric.Name(), metric.DefaultInterval(), rng)
			if err != nil {
				return nil, err
			}
			if g.N() < 2 {
				continue
			}
			for si, sel := range selectors {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				cfg := olsr.DefaultConfig(opts.Metric)
				cfg.Selector = sel
				// Chain the mix once more for the protocol jitter so the
				// simulation stream is independent of the field stream.
				nw, err := sim.NewNetwork(g, cfg, sim.NetworkOptions{Seed: RunSeed(fieldSeed, deg, run)})
				if err != nil {
					return nil, err
				}
				nw.Start()
				nw.Run(opts.SimTime)
				secs := opts.SimTime.Seconds()
				row[si].TCBytesPerSec.Add(float64(nw.Stats.TCBytes) / secs)
				row[si].HelloBytesPerSec.Add(float64(nw.Stats.HelloBytes) / secs)
				sets, err := nw.ANSSets()
				if err != nil {
					return nil, err
				}
				var total int
				for _, s := range sets {
					total += len(s)
				}
				row[si].SetSize.Add(float64(total) / float64(len(sets)))
				// Data-plane check after the counters are snapshotted
				// (the sweep advances virtual time, so more control
				// traffic flows during it).
				row[si].Delivery.Add(nw.DeliverySweep(0))
			}
		}
		res.Points = append(res.Points, row)
	}
	return res, nil
}

// WriteTable renders the sweep as an aligned table.
func (r *ControlSweepResult) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# A4 — control traffic on the live stack (%d runs/point, %v sim time)\n",
		r.Options.Runs, r.Options.SimTime); err != nil {
		return err
	}
	header := []string{"density"}
	for _, s := range r.Selectors {
		header = append(header, s+"_tcB/s", s+"_set", s+"_dlv")
	}
	if _, err := fmt.Fprintln(w, strings.Join(pad(header), "  ")); err != nil {
		return err
	}
	for di, row := range r.Points {
		cells := []string{fmt.Sprintf("%g", r.Options.Degrees[di])}
		for _, p := range row {
			cells = append(cells,
				fmt.Sprintf("%.0f", p.TCBytesPerSec.Mean()),
				fmt.Sprintf("%.2f", p.SetSize.Mean()),
				fmt.Sprintf("%.2f", p.Delivery.Mean()))
		}
		if _, err := fmt.Fprintln(w, strings.Join(pad(cells), "  ")); err != nil {
			return err
		}
	}
	return nil
}
