package eval

import "testing"

// The old derivation (seed + run + deg*7919) collided whenever a run delta
// cancelled a degree delta; the mixed derivation must keep every
// (degree, run) stream distinct for a fixed seed.
func TestRunSeedNoCollisions(t *testing.T) {
	seen := make(map[int64][2]float64)
	for _, deg := range []float64{5, 10, 15, 20, 25, 30, 35} {
		for run := 0; run < 10000; run++ {
			s := RunSeed(1, deg, run)
			if prev, dup := seen[s]; dup {
				t.Fatalf("stream collision: (deg=%g, run=%d) and (deg=%g, run=%g) both derive %d",
					deg, run, prev[0], prev[1], s)
			}
			seen[s] = [2]float64{deg, float64(run)}
		}
	}
}

// The specific overlap class of the old scheme: run 7919 of degree d must
// no longer share a stream with run 0 of degree d+1.
func TestRunSeedOldOverlapClassGone(t *testing.T) {
	if RunSeed(1, 10, 7919) == RunSeed(1, 11, 0) {
		t.Error("adjacent-degree stream overlap survived the mix")
	}
}

func TestRunSeedVariesWithBaseSeed(t *testing.T) {
	if RunSeed(1, 10, 0) == RunSeed(2, 10, 0) {
		t.Error("base seed ignored")
	}
}
