package eval

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"qolsr/internal/geom"
	"qolsr/internal/graph"
	"qolsr/internal/metric"
	"qolsr/internal/netgen"
	"qolsr/internal/route"
	"qolsr/internal/stats"
)

// Scenario describes one density point of the paper's evaluation.
type Scenario struct {
	// Deployment is the Poisson deployment (field, radius, degree).
	Deployment geom.Deployment
	// Metric is the QoS metric under study.
	Metric metric.Metric
	// WeightInterval is the uniform law of link weights.
	WeightInterval metric.Interval
	// Runs is the number of independent topologies (the paper uses 100).
	Runs int
	// Seed derives each run's RNG stream via RunSeed(Seed, Degree, run),
	// which is what makes all protocols see identical topologies and
	// pairs while keeping streams independent across runs and densities.
	Seed int64
	// PairTries bounds source resampling when hunting for a connected
	// pair (default 64).
	PairTries int
	// Workers bounds run-level parallelism (default GOMAXPROCS).
	Workers int
	// MeasureDirectedDelivery additionally evaluates the all-pairs
	// delivery ratio under directed-advertisement semantics (the Fig. 4
	// reachability model; ablation A1). Quadratic in node count — meant
	// for moderate densities.
	MeasureDirectedDelivery bool
}

// ProtocolPoint aggregates one protocol's behaviour at one density.
type ProtocolPoint struct {
	// SetSize is the per-node advertised-set size (Figs. 6-7 quantity).
	SetSize stats.Accumulator
	// Overhead is the per-pair relative regret vs the centralized
	// optimum, over delivered pairs (Figs. 8-9 quantity).
	Overhead stats.Accumulator
	// Delivery is the per-pair delivery indicator (1 delivered, 0 not).
	Delivery stats.Accumulator
	// Hops is the used path length over delivered pairs.
	Hops stats.Accumulator
	// DirectedDelivery is the all-pairs delivery ratio under the
	// directed-advertisement model (only populated when the scenario
	// requests it).
	DirectedDelivery stats.Accumulator
}

// PointResult is the outcome of one density point for every protocol.
type PointResult struct {
	Degree    float64
	Nodes     stats.Accumulator // realised node counts per run
	Protocols map[string]*ProtocolPoint
	// SkippedRuns counts runs without a usable connected pair (sparse
	// densities); their topologies still contribute set sizes.
	SkippedRuns int
}

// runSample is one run's contribution, merged deterministically.
type runSample struct {
	nodes    float64
	skipped  bool
	setSize  []stats.Accumulator
	overhead []stats.Accumulator
	delivery []stats.Accumulator
	hops     []stats.Accumulator
	directed []stats.Accumulator
	err      error
}

// RunPoint evaluates every protocol on Runs independent topologies at the
// scenario's density. All protocols within a run share the topology, the
// link weights and the (source, destination) pair, mirroring the paper's
// "each approach is run on the same topology with the same source and
// destination".
//
// Cancelling ctx stops the worker pool promptly and returns ctx.Err().
// Results are bit-identical for a given scenario regardless of Workers:
// every run draws its RNG stream from RunSeed and samples are merged in run
// order.
func RunPoint(ctx context.Context, sc Scenario, protocols []ProtocolSpec) (*PointResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if sc.Runs <= 0 {
		return nil, fmt.Errorf("eval: Runs must be positive, got %d", sc.Runs)
	}
	if err := sc.Deployment.Validate(); err != nil {
		return nil, err
	}
	if err := sc.WeightInterval.Validate(); err != nil {
		return nil, err
	}
	pairTries := sc.PairTries
	if pairTries <= 0 {
		pairTries = 64
	}
	workers := sc.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > sc.Runs {
		workers = sc.Runs
	}

	samples := make([]runSample, sc.Runs)
	var wg sync.WaitGroup
	runCh := make(chan int)
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for run := range runCh {
				if ctx.Err() != nil {
					continue // drain without doing work
				}
				samples[run] = evalRun(sc, protocols, run, pairTries)
			}
		}()
	}
dispatch:
	for run := 0; run < sc.Runs; run++ {
		select {
		case runCh <- run:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(runCh)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res := &PointResult{
		Degree:    sc.Deployment.Degree,
		Protocols: make(map[string]*ProtocolPoint, len(protocols)),
	}
	for _, p := range protocols {
		res.Protocols[p.Name] = &ProtocolPoint{}
	}
	for run := range samples {
		s := &samples[run]
		if s.err != nil {
			return nil, fmt.Errorf("eval: run %d: %w", run, s.err)
		}
		res.Nodes.Add(s.nodes)
		if s.skipped {
			res.SkippedRuns++
		}
		for i, p := range protocols {
			pp := res.Protocols[p.Name]
			pp.SetSize.Merge(&s.setSize[i])
			pp.Overhead.Merge(&s.overhead[i])
			pp.Delivery.Merge(&s.delivery[i])
			pp.Hops.Merge(&s.hops[i])
			pp.DirectedDelivery.Merge(&s.directed[i])
		}
	}
	return res, nil
}

func evalRun(sc Scenario, protocols []ProtocolSpec, run, pairTries int) runSample {
	s := runSample{
		setSize:  make([]stats.Accumulator, len(protocols)),
		overhead: make([]stats.Accumulator, len(protocols)),
		delivery: make([]stats.Accumulator, len(protocols)),
		hops:     make([]stats.Accumulator, len(protocols)),
		directed: make([]stats.Accumulator, len(protocols)),
	}
	rng := rand.New(rand.NewSource(RunSeed(sc.Seed, sc.Deployment.Degree, run)))
	channel := sc.Metric.Name()
	g, err := netgen.Build(sc.Deployment, channel, sc.WeightInterval, rng)
	if err != nil {
		s.err = err
		return s
	}
	s.nodes = float64(g.N())
	w, err := g.Weights(channel)
	if err != nil {
		s.err = err
		return s
	}

	// Per-node selections, shared state across protocols via the view.
	sets := make([][][]int32, len(protocols)) // protocol -> node -> set
	for i := range sets {
		sets[i] = make([][]int32, g.N())
	}
	for u := int32(0); int(u) < g.N(); u++ {
		view := graph.NewLocalView(g, u)
		for i, p := range protocols {
			set, err := p.Selector.Select(view, sc.Metric, w)
			if err != nil {
				s.err = fmt.Errorf("%s at node %d: %w", p.Name, u, err)
				return s
			}
			sets[i][u] = set
			s.setSize[i].Add(float64(len(set)))
		}
	}

	if sc.MeasureDirectedDelivery {
		for i := range protocols {
			d, err := route.BuildDirectedAdvertised(g, sets[i])
			if err != nil {
				s.err = fmt.Errorf("%s: %w", protocols[i].Name, err)
				return s
			}
			s.directed[i].Add(d.DeliveryRatio())
		}
	}

	src, dst, err := netgen.PickConnectedPair(g, rng, pairTries)
	if err != nil {
		// Sparse run without a usable pair: keep the set sizes, skip
		// the routing measurement.
		s.skipped = true
		return s
	}

	for i, p := range protocols {
		adv, err := route.BuildAdvertised(g, sets[i], channel)
		if err != nil {
			s.err = fmt.Errorf("%s: %w", p.Name, err)
			return s
		}
		// Local-delivery rule: the destination's own links are always
		// usable as the last hop — its neighbors know them from HELLO
		// exchange even when nobody advertises them in TCs (a leaf
		// behind a direct-optimal link is advertised by no one, yet
		// OLSR delivers to it). Without this, delivery failures would
		// be an artifact of the advertised-graph abstraction rather
		// than of the selection algorithms.
		adv, err = route.WithLocalLinks(adv, g, channel, dst)
		if err != nil {
			s.err = fmt.Errorf("%s: %w", p.Name, err)
			return s
		}
		if p.LocalLinks {
			adv, err = route.WithLocalLinks(adv, g, channel, src)
			if err != nil {
				s.err = fmt.Errorf("%s: %w", p.Name, err)
				return s
			}
		}
		ev, err := route.EvaluatePair(g, adv, sc.Metric, channel, src, dst, p.Policy)
		if err != nil {
			s.err = fmt.Errorf("%s: %w", p.Name, err)
			return s
		}
		if ev.Delivered {
			s.delivery[i].Add(1)
			s.overhead[i].Add(ev.Overhead)
			s.hops[i].Add(float64(ev.Hops))
		} else {
			s.delivery[i].Add(0)
		}
	}
	return s
}
