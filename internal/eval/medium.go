package eval

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"qolsr/internal/geom"
	"qolsr/internal/metric"
	"qolsr/internal/netgen"
	"qolsr/internal/olsr"
	"qolsr/internal/rng"
	"qolsr/internal/sim"
	"qolsr/internal/stats"
)

// The delivery-vs-loss sweep (experiment A7): run the live protocol stack
// over the lossy radio at increasing packet-error rates and measure what
// the data plane delivers, comparing oracle link weights against measured
// link quality (Config.MeasuredQoS). It is the experiment the medium layer
// exists for: the quality-routing literature (ETX and friends) claims
// measured metrics earn their keep exactly when the radio is lossy.

// LossSweepOptions configures the A7 experiment.
type LossSweepOptions struct {
	// Losses is the base packet-error-rate axis (default 0, 0.1 .. 0.4).
	Losses []float64
	// Runs is the number of independent fields per loss point (default 3).
	Runs int
	// SimTime is the virtual time simulated per field (default 60s).
	SimTime time.Duration
	// Seed derives field, jitter and medium randomness.
	Seed int64
	// Field is the deployment area (default 600×600).
	Field geom.Field
	// Degree is the deployment target mean degree (default 10).
	Degree float64
	// Metric drives selection and routing (default bandwidth).
	Metric metric.Metric
}

// LossModes are the compared link-sensing modes.
func LossModes() []string { return []string{"oracle", "measured"} }

// LossPoint is one (loss rate, mode) measurement.
type LossPoint struct {
	Loss float64
	Mode string
	// Delivery is the data-plane delivery ratio of a full sweep to node 0
	// after SimTime.
	Delivery stats.Accumulator
	// ControlBPS is the total control traffic rate.
	ControlBPS stats.Accumulator
	// LostFrac is the fraction of data packets the medium dropped in
	// flight (vs. routed into oblivion).
	LostFrac stats.Accumulator
}

// LossSweepResult is the outcome of RunLossSweep.
type LossSweepResult struct {
	Options LossSweepOptions
	// Points is indexed [loss][mode].
	Points [][]*LossPoint
	// Modes is the column order.
	Modes []string
}

// RunLossSweep measures delivery against medium loss on the live stack,
// oracle-weighted vs. measured link quality. Cancelling ctx stops between
// simulations and returns ctx.Err().
func RunLossSweep(ctx context.Context, opts LossSweepOptions) (*LossSweepResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(opts.Losses) == 0 {
		opts.Losses = []float64{0, 0.1, 0.2, 0.3, 0.4}
	}
	if opts.Runs <= 0 {
		opts.Runs = 3
	}
	if opts.SimTime <= 0 {
		opts.SimTime = 60 * time.Second
	}
	if opts.Field == (geom.Field{}) {
		opts.Field = geom.Field{Width: 600, Height: 600}
	}
	if opts.Degree <= 0 {
		opts.Degree = 10
	}
	if opts.Metric == nil {
		opts.Metric = metric.Bandwidth()
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}

	res := &LossSweepResult{Options: opts, Modes: LossModes()}
	for li, loss := range opts.Losses {
		row := make([]*LossPoint, len(res.Modes))
		for mi, mode := range res.Modes {
			row[mi] = &LossPoint{Loss: loss, Mode: mode}
		}
		for run := 0; run < opts.Runs; run++ {
			// One field per (loss, run), shared by both modes so the
			// comparison is paired.
			fieldSeed := RunSeed(opts.Seed, opts.Degree, run)
			fieldRNG := rand.New(rand.NewSource(fieldSeed))
			dep := geom.Deployment{Field: opts.Field, Radius: 100, Degree: opts.Degree}
			g, err := netgen.Build(dep, opts.Metric.Name(), metric.DefaultInterval(), fieldRNG)
			if err != nil {
				return nil, err
			}
			if g.N() < 2 {
				continue
			}
			for mi, mode := range res.Modes {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				cfg := olsr.DefaultConfig(opts.Metric)
				cfg.MeasuredQoS = mode == "measured"
				medium := sim.NewLossyMedium(sim.LossyConfig{
					Loss: loss,
					Seed: int64(rng.Mix(uint64(fieldSeed), uint64(li))),
				})
				nw, err := sim.NewNetwork(g, cfg, sim.NetworkOptions{
					Seed:   RunSeed(fieldSeed, opts.Degree, run),
					Medium: medium,
				})
				if err != nil {
					return nil, err
				}
				nw.Start()
				nw.Run(opts.SimTime)
				row[mi].ControlBPS.Add(nw.ControlBytesPerSecond())
				row[mi].Delivery.Add(nw.DeliverySweep(0))
				if nw.Data.Sent > 0 {
					row[mi].LostFrac.Add(float64(nw.Data.Lost) / float64(nw.Data.Sent))
				}
			}
		}
		res.Points = append(res.Points, row)
	}
	return res, nil
}

// WriteTable renders the sweep as an aligned table.
func (r *LossSweepResult) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# A7 — delivery vs. medium loss on the live stack (%d runs/point, %v sim time, degree %g)\n",
		r.Options.Runs, r.Options.SimTime, r.Options.Degree); err != nil {
		return err
	}
	header := []string{"loss"}
	for _, m := range r.Modes {
		header = append(header, m+"_dlv", m+"_ctlB/s", m+"_lost")
	}
	if _, err := fmt.Fprintln(w, strings.Join(pad(header), "  ")); err != nil {
		return err
	}
	for li, row := range r.Points {
		cells := []string{fmt.Sprintf("%g", r.Options.Losses[li])}
		for _, p := range row {
			cells = append(cells,
				fmt.Sprintf("%.3f", p.Delivery.Mean()),
				fmt.Sprintf("%.0f", p.ControlBPS.Mean()),
				fmt.Sprintf("%.3f", p.LostFrac.Mean()))
		}
		if _, err := fmt.Fprintln(w, strings.Join(pad(cells), "  ")); err != nil {
			return err
		}
	}
	return nil
}
