package eval

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"qolsr/internal/geom"
)

// smokeOverheadOptions is the CI-sized O1 configuration: one mid-density
// point, one field, a short window — enough for the control planes to
// settle and diverge, small enough for a test.
func smokeOverheadOptions() OverheadSweepOptions {
	return OverheadSweepOptions{
		Degrees: []float64{10},
		Runs:    1,
		SimTime: 30 * time.Second,
		Field:   geom.Field{Width: 400, Height: 400},
		Seed:    1,
	}
}

// TestOverheadSweepOptimizedBeatsBaseline is the deterministic acceptance
// check behind the PR's claim: with every optimisation on, control bytes
// drop below the baseline QOLSR plane while delivery stays within a
// percentage point — on the same field and jitter seed.
func TestOverheadSweepOptimizedBeatsBaseline(t *testing.T) {
	res, err := RunOverheadSweep(context.Background(), smokeOverheadOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 1 || len(res.Points[0]) != len(overheadVariants()) {
		t.Fatalf("unexpected result shape: %d rows", len(res.Points))
	}
	byVariant := map[string]*OverheadPoint{}
	for _, p := range res.Points[0] {
		byVariant[p.Variant] = p
	}
	base, all := byVariant["baseline"], byVariant["all"]
	if base == nil || all == nil {
		t.Fatal("baseline or all variant missing")
	}
	if base.ControlBytesPerSec.Mean() <= 0 {
		t.Fatal("baseline measured no control traffic")
	}
	if got, want := all.ControlBytesPerSec.Mean(), base.ControlBytesPerSec.Mean(); got >= want {
		t.Errorf("optimized control rate %.0f B/s not below baseline %.0f B/s", got, want)
	}
	if d := math.Abs(all.Delivery.Mean() - base.Delivery.Mean()); d > 0.01 {
		t.Errorf("delivery gap %.3f exceeds 1%% (baseline %.3f, optimized %.3f)",
			d, base.Delivery.Mean(), all.Delivery.Mean())
	}
	// Each single optimisation must at least not raise the control rate:
	// they are independent savings, not trade-offs against each other.
	for _, v := range []string{"delta", "fisheye", "minrelay"} {
		p := byVariant[v]
		if p == nil {
			t.Fatalf("variant %s missing", v)
		}
		if p.ControlBytesPerSec.Mean() > base.ControlBytesPerSec.Mean() {
			t.Errorf("%s control rate %.0f B/s above baseline %.0f B/s",
				v, p.ControlBytesPerSec.Mean(), base.ControlBytesPerSec.Mean())
		}
	}
}

// TestOverheadSweepDeterministic pins the sweep's bit-level reproducibility
// for a fixed seed, which the BENCH_overhead.json artifact depends on.
func TestOverheadSweepDeterministic(t *testing.T) {
	encode := func() string {
		res, err := RunOverheadSweep(context.Background(), smokeOverheadOptions())
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := res.EncodeJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, b := encode(), encode()
	if a != b {
		t.Error("identical seeds produced different overhead sweeps")
	}
}

// TestOverheadSweepEncoders exercises the table and JSON forms.
func TestOverheadSweepEncoders(t *testing.T) {
	opts := smokeOverheadOptions()
	opts.SimTime = 15 * time.Second
	res, err := RunOverheadSweep(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	var tab bytes.Buffer
	if err := res.WriteTable(&tab); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# O1", "baseline_ctlB/s", "all_dlv"} {
		if !strings.Contains(tab.String(), want) {
			t.Errorf("table missing %q", want)
		}
	}
	var js bytes.Buffer
	if err := res.EncodeJSON(&js); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Experiment string `json:"experiment"`
		Variants   []string
		Points     []map[string]any
	}
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Experiment != "overhead-vs-density" {
		t.Errorf("experiment = %q", doc.Experiment)
	}
	if want := len(opts.Degrees) * len(overheadVariants()); len(doc.Points) != want {
		t.Errorf("points = %d, want %d", len(doc.Points), want)
	}
	for _, p := range doc.Points {
		for _, k := range []string{"ctrl_bps", "tc_orig_bps", "tc_fwd_bps", "delivery"} {
			if _, ok := p[k]; !ok {
				t.Fatalf("point missing %q: %v", k, p)
			}
		}
	}
}

// TestOverheadSweepCancellation verifies ctx stops the sweep between
// simulations.
func TestOverheadSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunOverheadSweep(ctx, smokeOverheadOptions()); err == nil {
		t.Error("cancelled sweep returned no error")
	}
}
