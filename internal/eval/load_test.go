package eval

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"qolsr/internal/geom"
)

// smallLoadOptions keeps the sweep affordable for the test suite while
// preserving the contended-radio regime the experiment exists for.
func smallLoadOptions() LoadSweepOptions {
	return LoadSweepOptions{
		Loads:   []float64{0.5, 6},
		Flows:   12,
		Runs:    1,
		SimTime: 20 * time.Second,
		Field:   geom.Field{Width: 400, Height: 400},
		Degree:  8,
		Seed:    1,
	}
}

func TestLoadSweepViolationWorsensAndQoSWins(t *testing.T) {
	res, err := RunLoadSweep(context.Background(), smallLoadOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 || len(res.Points[0]) != 4 {
		t.Fatalf("points shape %dx%d, want 2x4", len(res.Points), len(res.Points[0]))
	}
	col := func(name string) int {
		for i, c := range res.Columns {
			if c == name {
				return i
			}
		}
		t.Fatalf("column %s missing from %v", name, res.Columns)
		return -1
	}
	qosO, hopO := col("qos/oracle"), col("hop/oracle")
	qosM, hopM := col("qos/measured"), col("hop/measured")

	for li, row := range res.Points {
		for _, p := range row {
			if p.Admitted.Mean() == 0 {
				t.Errorf("load %g %s/%s admitted nothing", p.Load, p.Selection, p.Mode)
			}
			_ = li
		}
	}

	// The QoS-violation ratio worsens with offered load: under hop-count
	// selection the jump from half-rate to 6x saturates narrow links.
	lowHop := res.Points[0][hopO].Violation.Mean()
	highHop := res.Points[1][hopO].Violation.Mean()
	if !(highHop > lowHop) {
		t.Errorf("hop/oracle violation did not worsen with load: %.3f -> %.3f", lowHop, highHop)
	}
	// The paper's QoS-based selection routes around narrow links, so at
	// equal offered load it violates no more than hop-count selection —
	// and strictly less once the hop paths saturate.
	for li, row := range res.Points {
		if row[qosO].Violation.Mean() > row[hopO].Violation.Mean() {
			t.Errorf("load %g: qos/oracle violation %.3f above hop/oracle %.3f",
				res.Options.Loads[li], row[qosO].Violation.Mean(), row[hopO].Violation.Mean())
		}
	}
	if !(res.Points[1][qosO].Violation.Mean() < highHop) {
		t.Errorf("at top load qos/oracle %.3f does not beat hop/oracle %.3f",
			res.Points[1][qosO].Violation.Mean(), highHop)
	}
	// Both sensing modes are reported alongside.
	if res.Points[1][qosM].Admitted.Mean() == 0 || res.Points[1][hopM].Admitted.Mean() == 0 {
		t.Error("measured-mode columns empty")
	}

	var buf bytes.Buffer
	if err := res.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"A8", "qos/oracle_viol", "hop/measured_p95ms"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("table missing %q", want)
		}
	}
}

func TestLoadSweepDeterministic(t *testing.T) {
	opts := smallLoadOptions()
	opts.Loads = []float64{2}
	opts.Flows = 6
	opts.SimTime = 10 * time.Second
	run := func() string {
		res, err := RunLoadSweep(context.Background(), opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteTable(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("identical sweeps rendered differently:\n%s\nvs\n%s", a, b)
	}
}

func TestLoadSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunLoadSweep(ctx, smallLoadOptions()); err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
