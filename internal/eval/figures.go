package eval

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"qolsr/internal/geom"
	"qolsr/internal/metric"
)

// Quantity selects which measured series a figure reports.
type Quantity string

// Quantities reported by the paper's figures.
const (
	// QuantitySetSize is the mean advertised-set size per node.
	QuantitySetSize Quantity = "set-size"
	// QuantityOverhead is the mean relative regret vs the optimum.
	QuantityOverhead Quantity = "overhead"
	// QuantityDelivery is the delivery ratio (ablations only).
	QuantityDelivery Quantity = "delivery"
	// QuantityDirectedDelivery is the all-pairs delivery ratio under
	// directed-advertisement semantics (ablation A1).
	QuantityDirectedDelivery Quantity = "directed-delivery"
)

// Figure describes one paper figure to regenerate.
type Figure struct {
	// ID is the figure identifier ("fig6" ... "fig9").
	ID string
	// Title is the paper's caption summary.
	Title string
	// Metric is the QoS metric of the sweep.
	Metric metric.Metric
	// Degrees is the density x-axis.
	Degrees []float64
	// Quantity is the reported series.
	Quantity Quantity
	// Protocols are the compared curves.
	Protocols []ProtocolSpec
}

// PaperFigures returns the four evaluation figures with the paper's
// parameters. The x-ranges follow the plots: bandwidth sweeps density 10-35,
// delay sweeps 5-30.
func PaperFigures() []Figure {
	return []Figure{
		{
			ID:        "fig6",
			Title:     "Size of the advertised set vs density (bandwidth)",
			Metric:    metric.Bandwidth(),
			Degrees:   []float64{10, 15, 20, 25, 30, 35},
			Quantity:  QuantitySetSize,
			Protocols: PaperProtocols(),
		},
		{
			ID:        "fig7",
			Title:     "Size of the advertised set vs density (delay)",
			Metric:    metric.Delay(),
			Degrees:   []float64{5, 10, 15, 20, 25, 30},
			Quantity:  QuantitySetSize,
			Protocols: PaperProtocols(),
		},
		{
			ID:        "fig8",
			Title:     "Bandwidth overhead vs density",
			Metric:    metric.Bandwidth(),
			Degrees:   []float64{10, 15, 20, 25, 30, 35},
			Quantity:  QuantityOverhead,
			Protocols: PaperProtocols(),
		},
		{
			ID:        "fig9",
			Title:     "Delay overhead vs density",
			Metric:    metric.Delay(),
			Degrees:   []float64{5, 10, 15, 20, 25, 30},
			Quantity:  QuantityOverhead,
			Protocols: PaperProtocols(),
		},
	}
}

// FigureByID returns the paper figure with the given ID.
func FigureByID(id string) (Figure, error) {
	for _, f := range PaperFigures() {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("eval: unknown figure %q (have fig6..fig9)", id)
}

// quantities is the canonical registry, in listing order; QuantityByName
// and QuantityNames both derive from it so the two can never drift apart.
func quantities() []Quantity {
	return []Quantity{QuantitySetSize, QuantityOverhead, QuantityDelivery, QuantityDirectedDelivery}
}

// QuantityByName resolves a quantity's string form ("set-size", "overhead",
// "delivery" or "directed-delivery").
func QuantityByName(name string) (Quantity, error) {
	for _, q := range quantities() {
		if string(q) == name {
			return q, nil
		}
	}
	return "", fmt.Errorf("eval: unknown quantity %q", name)
}

// QuantityNames lists every reportable quantity's string form.
func QuantityNames() []string {
	qs := quantities()
	names := make([]string, len(qs))
	for i, q := range qs {
		names[i] = string(q)
	}
	return names
}

// Ablations returns the repository's ablation sweeps, composable by ID like
// the paper figures. Each reuses the bandwidth density axis of Fig. 6.
func Ablations() []Figure {
	degrees := []float64{10, 15, 20, 25, 30, 35}
	return []Figure{
		{
			ID:        "ablation-loopfix",
			Title:     "A1: FNBP loop-fix variants (directed-advertisement delivery ratio)",
			Metric:    metric.Bandwidth(),
			Degrees:   degrees,
			Quantity:  QuantityDirectedDelivery,
			Protocols: LoopFixAblation(),
		},
		{
			ID:        "ablation-loopfix-size",
			Title:     "A1: FNBP loop-fix variants (advertised-set size)",
			Metric:    metric.Bandwidth(),
			Degrees:   degrees,
			Quantity:  QuantitySetSize,
			Protocols: LoopFixAblation(),
		},
		{
			ID:        "ablation-locallinks",
			Title:     "A2: overhead with and without the source's local links",
			Metric:    metric.Bandwidth(),
			Degrees:   degrees,
			Quantity:  QuantityOverhead,
			Protocols: LocalLinksAblation(),
		},
		{
			ID:        "ablation-mprs",
			Title:     "MPR heuristics as advertised sets (set size)",
			Metric:    metric.Bandwidth(),
			Degrees:   degrees,
			Quantity:  QuantitySetSize,
			Protocols: MPRHeuristicAblation(),
		},
		{
			ID:        "ablation-policy",
			Title:     "A6: QOLSR routing-policy readings (overhead)",
			Metric:    metric.Bandwidth(),
			Degrees:   degrees,
			Quantity:  QuantityOverhead,
			Protocols: RoutingPolicyAblation(),
		},
		{
			ID:        "ablation-upper",
			Title:     "Paper protocols + full link-state bound (overhead)",
			Metric:    metric.Bandwidth(),
			Degrees:   degrees,
			Quantity:  QuantityOverhead,
			Protocols: UpperBoundProtocols(),
		},
	}
}

// SweepByID resolves a figure or ablation by ID. Ablations also answer to
// their short form without the "ablation-" prefix ("loopfix", "mprs", ...).
func SweepByID(id string) (Figure, error) {
	if f, err := FigureByID(id); err == nil {
		return f, nil
	}
	for _, f := range Ablations() {
		if f.ID == id || f.ID == "ablation-"+id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("eval: unknown sweep %q (have %s)", id, strings.Join(SweepIDs(), ", "))
}

// SweepIDs lists every composable sweep ID: the paper figures followed by
// the ablations.
func SweepIDs() []string {
	var ids []string
	for _, f := range PaperFigures() {
		ids = append(ids, f.ID)
	}
	for _, f := range Ablations() {
		ids = append(ids, f.ID)
	}
	return ids
}

// Scenario returns the figure's density point at the given degree, ready
// for RunPoint. Runs, Seed and the weight law come from the caller.
func (f Figure) Scenario(deg float64, runs int, seed int64, iv metric.Interval) Scenario {
	return Scenario{
		Deployment:              geom.PaperDeployment(deg),
		Metric:                  f.Metric,
		WeightInterval:          iv,
		Runs:                    runs,
		Seed:                    seed,
		MeasureDirectedDelivery: f.Quantity == QuantityDirectedDelivery,
	}
}

// FigureResult is a regenerated figure: one PointResult per density.
type FigureResult struct {
	Figure Figure
	Points []*PointResult
	// Runs is the per-point run count used.
	Runs int
}

// series extracts the figure's quantity for one protocol at one point.
func (fr *FigureResult) series(p *PointResult, name string) (mean, ci float64) {
	pp := p.Protocols[name]
	if pp == nil {
		return 0, 0
	}
	switch fr.Figure.Quantity {
	case QuantitySetSize:
		return pp.SetSize.Mean(), pp.SetSize.CI95()
	case QuantityOverhead:
		return pp.Overhead.Mean(), pp.Overhead.CI95()
	case QuantityDelivery:
		return pp.Delivery.Mean(), pp.Delivery.CI95()
	case QuantityDirectedDelivery:
		return pp.DirectedDelivery.Mean(), pp.DirectedDelivery.CI95()
	default:
		return 0, 0
	}
}

// ProtocolNames returns the figure's protocol column order.
func (fr *FigureResult) ProtocolNames() []string {
	names := make([]string, 0, len(fr.Figure.Protocols))
	for _, p := range fr.Figure.Protocols {
		names = append(names, p.Name)
	}
	return names
}

// Value returns the mean series value for one protocol at the i-th density.
func (fr *FigureResult) Value(i int, protocol string) float64 {
	v, _ := fr.series(fr.Points[i], protocol)
	return v
}

// WriteTable renders the figure as an aligned text table with 95% CIs —
// the same rows the paper plots.
func (fr *FigureResult) WriteTable(w io.Writer) error {
	names := fr.ProtocolNames()
	if _, err := fmt.Fprintf(w, "# %s — %s (%d runs/point)\n", fr.Figure.ID, fr.Figure.Title, fr.Runs); err != nil {
		return err
	}
	header := []string{"density"}
	for _, n := range names {
		header = append(header, n, "±95%")
	}
	if _, err := fmt.Fprintln(w, strings.Join(pad(header), "  ")); err != nil {
		return err
	}
	for i, p := range fr.Points {
		row := []string{fmt.Sprintf("%g", fr.Figure.Degrees[i])}
		for _, n := range names {
			mean, ci := fr.series(p, n)
			row = append(row, fmt.Sprintf("%.4f", mean), fmt.Sprintf("%.4f", ci))
		}
		if _, err := fmt.Fprintln(w, strings.Join(pad(row), "  ")); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the figure as CSV (density plus one mean and one CI
// column per protocol).
func (fr *FigureResult) WriteCSV(w io.Writer) error {
	names := fr.ProtocolNames()
	cols := []string{"density"}
	for _, n := range names {
		cols = append(cols, n+"_mean", n+"_ci95")
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i, p := range fr.Points {
		row := []string{fmt.Sprintf("%g", fr.Figure.Degrees[i])}
		for _, n := range names {
			mean, ci := fr.series(p, n)
			row = append(row, fmt.Sprintf("%.6f", mean), fmt.Sprintf("%.6f", ci))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteDeliveryTable renders per-protocol delivery ratios, used by the
// loop-fix ablation.
func (fr *FigureResult) WriteDeliveryTable(w io.Writer) error {
	names := fr.ProtocolNames()
	if _, err := fmt.Fprintf(w, "# %s — delivery ratio\n", fr.Figure.ID); err != nil {
		return err
	}
	for i, p := range fr.Points {
		parts := []string{fmt.Sprintf("density %g:", fr.Figure.Degrees[i])}
		for _, n := range names {
			pp := p.Protocols[n]
			parts = append(parts, fmt.Sprintf("%s=%.4f", n, pp.Delivery.Mean()))
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, " ")); err != nil {
			return err
		}
	}
	return nil
}

func pad(cells []string) []string {
	const width = 12
	out := make([]string, len(cells))
	for i, c := range cells {
		if len(c) < width {
			c = c + strings.Repeat(" ", width-len(c))
		}
		out[i] = c
	}
	return out
}

// SortedProtocolNames lists the protocols of a point result in stable
// order, for callers iterating a bare PointResult.
func (p *PointResult) SortedProtocolNames() []string {
	names := make([]string, 0, len(p.Protocols))
	for n := range p.Protocols {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
