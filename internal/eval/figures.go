package eval

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"qolsr/internal/geom"
	"qolsr/internal/metric"
)

// Quantity selects which measured series a figure reports.
type Quantity string

// Quantities reported by the paper's figures.
const (
	// QuantitySetSize is the mean advertised-set size per node.
	QuantitySetSize Quantity = "set-size"
	// QuantityOverhead is the mean relative regret vs the optimum.
	QuantityOverhead Quantity = "overhead"
	// QuantityDelivery is the delivery ratio (ablations only).
	QuantityDelivery Quantity = "delivery"
	// QuantityDirectedDelivery is the all-pairs delivery ratio under
	// directed-advertisement semantics (ablation A1).
	QuantityDirectedDelivery Quantity = "directed-delivery"
)

// Figure describes one paper figure to regenerate.
type Figure struct {
	// ID is the figure identifier ("fig6" ... "fig9").
	ID string
	// Title is the paper's caption summary.
	Title string
	// Metric is the QoS metric of the sweep.
	Metric metric.Metric
	// Degrees is the density x-axis.
	Degrees []float64
	// Quantity is the reported series.
	Quantity Quantity
	// Protocols are the compared curves.
	Protocols []ProtocolSpec
}

// PaperFigures returns the four evaluation figures with the paper's
// parameters. The x-ranges follow the plots: bandwidth sweeps density 10-35,
// delay sweeps 5-30.
func PaperFigures() []Figure {
	return []Figure{
		{
			ID:        "fig6",
			Title:     "Size of the advertised set vs density (bandwidth)",
			Metric:    metric.Bandwidth(),
			Degrees:   []float64{10, 15, 20, 25, 30, 35},
			Quantity:  QuantitySetSize,
			Protocols: PaperProtocols(),
		},
		{
			ID:        "fig7",
			Title:     "Size of the advertised set vs density (delay)",
			Metric:    metric.Delay(),
			Degrees:   []float64{5, 10, 15, 20, 25, 30},
			Quantity:  QuantitySetSize,
			Protocols: PaperProtocols(),
		},
		{
			ID:        "fig8",
			Title:     "Bandwidth overhead vs density",
			Metric:    metric.Bandwidth(),
			Degrees:   []float64{10, 15, 20, 25, 30, 35},
			Quantity:  QuantityOverhead,
			Protocols: PaperProtocols(),
		},
		{
			ID:        "fig9",
			Title:     "Delay overhead vs density",
			Metric:    metric.Delay(),
			Degrees:   []float64{5, 10, 15, 20, 25, 30},
			Quantity:  QuantityOverhead,
			Protocols: PaperProtocols(),
		},
	}
}

// FigureByID returns the paper figure with the given ID.
func FigureByID(id string) (Figure, error) {
	for _, f := range PaperFigures() {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("eval: unknown figure %q (have fig6..fig9)", id)
}

// FigureOptions tunes a figure run without changing its definition.
type FigureOptions struct {
	// Runs overrides the per-point run count (default 100, the paper's).
	Runs int
	// Seed is the base RNG seed (default 1).
	Seed int64
	// WeightInterval overrides the link weight law (default [1,10]).
	WeightInterval metric.Interval
	// Workers bounds run-level parallelism.
	Workers int
	// Progress, when non-nil, receives a line per completed density.
	Progress func(format string, args ...any)
}

// FigureResult is a regenerated figure: one PointResult per density.
type FigureResult struct {
	Figure Figure
	Points []*PointResult
	// Runs is the per-point run count used.
	Runs int
}

// RunFigure regenerates a figure.
func RunFigure(fig Figure, opts FigureOptions) (*FigureResult, error) {
	runs := opts.Runs
	if runs <= 0 {
		runs = 100
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	iv := opts.WeightInterval
	if iv == (metric.Interval{}) {
		iv = metric.DefaultInterval()
	}
	res := &FigureResult{Figure: fig, Runs: runs}
	for _, deg := range fig.Degrees {
		sc := Scenario{
			Deployment:     geom.PaperDeployment(deg),
			Metric:         fig.Metric,
			WeightInterval: iv,
			Runs:           runs,
			// Decorrelate densities while keeping runs reproducible.
			Seed:                    seed + int64(deg)*100003,
			Workers:                 opts.Workers,
			MeasureDirectedDelivery: fig.Quantity == QuantityDirectedDelivery,
		}
		point, err := RunPoint(sc, fig.Protocols)
		if err != nil {
			return nil, fmt.Errorf("eval: %s degree %g: %w", fig.ID, deg, err)
		}
		res.Points = append(res.Points, point)
		if opts.Progress != nil {
			opts.Progress("%s density %g done (%d runs, %.0f nodes avg)",
				fig.ID, deg, runs, point.Nodes.Mean())
		}
	}
	return res, nil
}

// series extracts the figure's quantity for one protocol at one point.
func (fr *FigureResult) series(p *PointResult, name string) (mean, ci float64) {
	pp := p.Protocols[name]
	if pp == nil {
		return 0, 0
	}
	switch fr.Figure.Quantity {
	case QuantitySetSize:
		return pp.SetSize.Mean(), pp.SetSize.CI95()
	case QuantityOverhead:
		return pp.Overhead.Mean(), pp.Overhead.CI95()
	case QuantityDelivery:
		return pp.Delivery.Mean(), pp.Delivery.CI95()
	case QuantityDirectedDelivery:
		return pp.DirectedDelivery.Mean(), pp.DirectedDelivery.CI95()
	default:
		return 0, 0
	}
}

// ProtocolNames returns the figure's protocol column order.
func (fr *FigureResult) ProtocolNames() []string {
	names := make([]string, 0, len(fr.Figure.Protocols))
	for _, p := range fr.Figure.Protocols {
		names = append(names, p.Name)
	}
	return names
}

// Value returns the mean series value for one protocol at the i-th density.
func (fr *FigureResult) Value(i int, protocol string) float64 {
	v, _ := fr.series(fr.Points[i], protocol)
	return v
}

// WriteTable renders the figure as an aligned text table with 95% CIs —
// the same rows the paper plots.
func (fr *FigureResult) WriteTable(w io.Writer) error {
	names := fr.ProtocolNames()
	if _, err := fmt.Fprintf(w, "# %s — %s (%d runs/point)\n", fr.Figure.ID, fr.Figure.Title, fr.Runs); err != nil {
		return err
	}
	header := []string{"density"}
	for _, n := range names {
		header = append(header, n, "±95%")
	}
	if _, err := fmt.Fprintln(w, strings.Join(pad(header), "  ")); err != nil {
		return err
	}
	for i, p := range fr.Points {
		row := []string{fmt.Sprintf("%g", fr.Figure.Degrees[i])}
		for _, n := range names {
			mean, ci := fr.series(p, n)
			row = append(row, fmt.Sprintf("%.4f", mean), fmt.Sprintf("%.4f", ci))
		}
		if _, err := fmt.Fprintln(w, strings.Join(pad(row), "  ")); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the figure as CSV (density plus one mean and one CI
// column per protocol).
func (fr *FigureResult) WriteCSV(w io.Writer) error {
	names := fr.ProtocolNames()
	cols := []string{"density"}
	for _, n := range names {
		cols = append(cols, n+"_mean", n+"_ci95")
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i, p := range fr.Points {
		row := []string{fmt.Sprintf("%g", fr.Figure.Degrees[i])}
		for _, n := range names {
			mean, ci := fr.series(p, n)
			row = append(row, fmt.Sprintf("%.6f", mean), fmt.Sprintf("%.6f", ci))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteDeliveryTable renders per-protocol delivery ratios, used by the
// loop-fix ablation.
func (fr *FigureResult) WriteDeliveryTable(w io.Writer) error {
	names := fr.ProtocolNames()
	if _, err := fmt.Fprintf(w, "# %s — delivery ratio\n", fr.Figure.ID); err != nil {
		return err
	}
	for i, p := range fr.Points {
		parts := []string{fmt.Sprintf("density %g:", fr.Figure.Degrees[i])}
		for _, n := range names {
			pp := p.Protocols[n]
			parts = append(parts, fmt.Sprintf("%s=%.4f", n, pp.Delivery.Mean()))
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, " ")); err != nil {
			return err
		}
	}
	return nil
}

func pad(cells []string) []string {
	const width = 12
	out := make([]string, len(cells))
	for i, c := range cells {
		if len(c) < width {
			c = c + strings.Repeat(" ", width-len(c))
		}
		out[i] = c
	}
	return out
}

// SortedProtocolNames lists the protocols of a point result in stable
// order, for callers iterating a bare PointResult.
func (p *PointResult) SortedProtocolNames() []string {
	names := make([]string, 0, len(p.Protocols))
	for n := range p.Protocols {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
