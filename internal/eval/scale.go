package eval

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"qolsr/internal/geom"
	"qolsr/internal/metric"
	"qolsr/internal/mpr"
	"qolsr/internal/netgen"
	"qolsr/internal/olsr"
	"qolsr/internal/rng"
	"qolsr/internal/sim"
	"qolsr/internal/stats"
	"qolsr/internal/traffic"
)

// The node-count scaling sweep (experiment S1): run the full live stack —
// deterministic event core, incremental SPF, MPR flooding, sustained CBR
// traffic — on fields of growing node count at constant density, and report
// how the simulator itself scales: wall-clock time, events executed, and
// event throughput per point, alongside the delivery ratio as a correctness
// pulse. Unlike the density sweeps (which grow degree on a fixed field),
// the field area grows with N so the mean degree stays put and the axis
// isolates population size.

// ScaleSweepOptions configures the S1 experiment.
type ScaleSweepOptions struct {
	// Nodes is the node-count axis (default: the standard axis {50, 100,
	// 250, 500, 1000, 2500, 5000, 10000} cut at MaxNodes). Each point
	// deploys exactly that many nodes — the field is sized for constant
	// density, so ~Degree mean degree at every N.
	Nodes []int
	// MaxNodes caps the default axis (default 1000; ignored when Nodes is
	// set explicitly). The points past 1000 are where the control-plane
	// optimisations earn their keep — raise the cap to reach them.
	MaxNodes int
	// MinNodes cuts the default axis from below (ignored when Nodes is set
	// explicitly): points smaller than it are skipped, so a big-field
	// measurement need not re-run the whole ladder beneath it.
	MinNodes int
	// Optimize runs the control plane with every scaling optimisation on:
	// delta-encoded TCs, the default fish-eye schedule, and min-cover
	// flood relays.
	Optimize bool
	// Degree is the constant target mean degree (default 10).
	Degree float64
	// Flows is the number of concurrent CBR flows at every point (a fixed
	// offered load, so the axis measures core scaling, not traffic
	// scaling; default 32).
	Flows int
	// RateBps is the per-flow offered load (default 16384).
	RateBps float64
	// Warmup is the protocol convergence time before flows start
	// (default 10s).
	Warmup time.Duration
	// SimTime is the traffic duration after warmup (default 10s).
	SimTime time.Duration
	// Runs is the number of independent fields per point (default 1 —
	// the big points are the expensive part and the quantities of
	// interest are throughput, not protocol statistics).
	Runs int
	// Workers bounds the goroutines the post-warmup route-rebuild barrier
	// fans the flow sources' SPF work across (0 = GOMAXPROCS, 1 =
	// serial). Wall-clock only: results are bit-identical at every
	// setting.
	Workers int
	// Seed derives field, protocol and flow randomness.
	Seed int64
}

// ScalePoint is one node-count measurement.
type ScalePoint struct {
	Nodes int
	// Edges is the realized physical edge count.
	Edges stats.Accumulator
	// WallSeconds is the wall-clock time of the whole point: protocol
	// start, warmup, and the traffic phase.
	WallSeconds stats.Accumulator
	// Events is the number of discrete events the engine executed.
	Events stats.Accumulator
	// EventsPerSec is Events over wall time — the engine's realized
	// throughput at this scale.
	EventsPerSec stats.Accumulator
	// HeapHighWater is the deepest the engine's timed heap got — the
	// event-core memory axis the throughput numbers alone hide (a point can
	// stay fast while its pending set balloons).
	HeapHighWater stats.Accumulator
	// Delivery is the traffic mix's packet delivery ratio.
	Delivery stats.Accumulator
}

// ScaleSweepResult is the outcome of RunScaleSweep.
type ScaleSweepResult struct {
	Options ScaleSweepOptions
	// Points is indexed by the Nodes axis.
	Points []*ScalePoint
}

// RunScaleSweep measures simulator throughput against node count on the
// live stack. Cancelling ctx stops between simulations and returns
// ctx.Err().
func RunScaleSweep(ctx context.Context, opts ScaleSweepOptions) (*ScaleSweepResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(opts.Nodes) == 0 {
		max := opts.MaxNodes
		if max <= 0 {
			max = 1000
		}
		for _, n := range []int{50, 100, 250, 500, 1000, 2500, 5000, 10000} {
			if n >= opts.MinNodes && n <= max {
				opts.Nodes = append(opts.Nodes, n)
			}
		}
	}
	if opts.Degree <= 0 {
		opts.Degree = 10
	}
	if opts.Flows <= 0 {
		opts.Flows = 32
	}
	if opts.RateBps <= 0 {
		opts.RateBps = 16384
	}
	if opts.Warmup <= 0 {
		opts.Warmup = 10 * time.Second
	}
	if opts.SimTime <= 0 {
		opts.SimTime = 10 * time.Second
	}
	if opts.Runs <= 0 {
		opts.Runs = 1
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}

	res := &ScaleSweepResult{Options: opts}
	for _, n := range opts.Nodes {
		p := &ScalePoint{Nodes: n}
		for run := 0; run < opts.Runs; run++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := runScalePoint(p, n, run, opts); err != nil {
				return nil, err
			}
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// scaleRadius is the communication radius shared with the other sweeps.
const scaleRadius = 100

// runScalePoint executes one (node count, run) simulation and folds its
// measurements into the point.
func runScalePoint(p *ScalePoint, n, run int, opts ScaleSweepOptions) error {
	fieldSeed := RunSeed(opts.Seed, float64(n), run)
	fieldRNG := rand.New(rand.NewSource(fieldSeed))
	// Size the square field so a uniform drop of exactly n nodes hits the
	// target density: degree ≈ λπR² with λ = n/area, so side =
	// R·sqrt(πn/degree). Sampling exactly n (instead of a Poisson draw)
	// keeps the axis label honest — a 1000-node point has 1000 nodes.
	side := scaleRadius * math.Sqrt(math.Pi*float64(n)/opts.Degree)
	field := geom.Field{Width: side, Height: side}
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: fieldRNG.Float64() * side, Y: fieldRNG.Float64() * side}
	}
	g, err := netgen.FromPoints(field, scaleRadius, pts, "bandwidth", metric.DefaultInterval(), fieldRNG)
	if err != nil {
		return err
	}
	pairs := sim.DrawPairs(g.N(), opts.Flows, int64(rng.Mix(uint64(fieldSeed), 0x5CA1E)))

	cfg := olsr.DefaultConfig(metric.Bandwidth())
	if opts.Optimize {
		cfg.DeltaTC = true
		cfg.FisheyeTTLs = olsr.DefaultFisheyeTTLs()
		cfg.FloodRelay = mpr.MinCover
	}
	nw, err := sim.NewNetwork(g, cfg, sim.NetworkOptions{Seed: RunSeed(fieldSeed, float64(n), run)})
	if err != nil {
		return err
	}

	start := time.Now()
	nw.Start()
	nw.Run(opts.Warmup)
	// Rebuild barrier: the converged field's flow sources all need fresh
	// routing tables before the first packet; fan that SPF work across the
	// worker budget instead of paying it serially inside the event loop.
	// Results are bit-identical at every worker count.
	if _, err := nw.RebuildRoutes(flowSources(pairs), opts.Workers); err != nil {
		return err
	}
	eng := traffic.NewEngine(nw, int64(rng.Mix(uint64(fieldSeed), 0x5CA1E, uint64(run))))
	for i, pr := range pairs {
		if err := eng.Add(traffic.Flow{
			ID:          i,
			Class:       traffic.ClassCBR,
			Src:         pr[0],
			Dst:         pr[1],
			RateBps:     opts.RateBps,
			PacketBytes: traffic.DefaultPacketBytes,
			Start:       opts.Warmup,
		}); err != nil {
			return err
		}
	}
	stop := opts.Warmup + opts.SimTime
	if err := eng.Start(stop); err != nil {
		return err
	}
	nw.Run(stop)
	wall := time.Since(start).Seconds()

	rep := eng.Report()
	events := float64(nw.Engine.Executed)
	p.Edges.Add(float64(g.M()))
	p.WallSeconds.Add(wall)
	p.Events.Add(events)
	if wall > 0 {
		p.EventsPerSec.Add(events / wall)
	}
	p.HeapHighWater.Add(float64(nw.Engine.HeapHighWater))
	p.Delivery.Add(rep.Total.Delivery)
	return nil
}

// flowSources returns the unique flow sources in ascending index order.
func flowSources(pairs [][2]int32) []int32 {
	seen := make(map[int32]bool, len(pairs))
	out := make([]int32, 0, len(pairs))
	for _, p := range pairs {
		if !seen[p[0]] {
			seen[p[0]] = true
			out = append(out, p[0])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WriteTable renders the sweep as an aligned table.
func (r *ScaleSweepResult) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# S1 — simulator scaling vs node count (degree %g, %d flows, %v warmup + %v traffic, %d runs/point)\n",
		r.Options.Degree, r.Options.Flows, r.Options.Warmup, r.Options.SimTime, r.Options.Runs); err != nil {
		return err
	}
	header := []string{"nodes", "edges", "wall_s", "events", "Mev/s", "heap_hw", "dlv"}
	if _, err := fmt.Fprintln(w, strings.Join(pad(header), "  ")); err != nil {
		return err
	}
	for _, p := range r.Points {
		cells := []string{
			fmt.Sprintf("%d", p.Nodes),
			fmt.Sprintf("%.0f", p.Edges.Mean()),
			fmt.Sprintf("%.2f", p.WallSeconds.Mean()),
			fmt.Sprintf("%.0f", p.Events.Mean()),
			fmt.Sprintf("%.2f", p.EventsPerSec.Mean()/1e6),
			fmt.Sprintf("%.0f", p.HeapHighWater.Mean()),
			fmt.Sprintf("%.3f", p.Delivery.Mean()),
		}
		if _, err := fmt.Fprintln(w, strings.Join(pad(cells), "  ")); err != nil {
			return err
		}
	}
	return nil
}
