package eval

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"qolsr/internal/geom"
)

// smallLossOpts keeps the live-stack sweep affordable in tests.
func smallLossOpts() LossSweepOptions {
	return LossSweepOptions{
		Losses:  []float64{0, 0.3},
		Runs:    2,
		SimTime: 30 * time.Second,
		Seed:    1,
		Field:   geom.Field{Width: 300, Height: 300},
		Degree:  8,
	}
}

func TestRunLossSweep(t *testing.T) {
	res, err := RunLossSweep(context.Background(), smallLossOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 || len(res.Points[0]) != len(LossModes()) {
		t.Fatalf("points shape = %dx%d, want 2x%d", len(res.Points), len(res.Points[0]), len(LossModes()))
	}
	for li, row := range res.Points {
		for _, p := range row {
			if p.Delivery.N() == 0 {
				t.Errorf("loss %g mode %s: no delivery samples", p.Loss, p.Mode)
			}
			if d := p.Delivery.Mean(); d < 0 || d > 1 {
				t.Errorf("loss %g mode %s: delivery %g outside [0,1]", p.Loss, p.Mode, d)
			}
		}
		// At zero loss nothing should be lost in flight; at 0.3 the medium
		// must visibly bite.
		for _, p := range row {
			if li == 0 && p.LostFrac.Mean() != 0 {
				t.Errorf("zero-loss point lost %g of data frames", p.LostFrac.Mean())
			}
			if li == 1 && p.LostFrac.Mean() == 0 {
				t.Errorf("30%%-loss point (%s) lost nothing", p.Mode)
			}
		}
	}
	// Delivery at heavy loss must not beat delivery at zero loss (paired
	// fields, same seeds).
	for mi := range LossModes() {
		if res.Points[1][mi].Delivery.Mean() > res.Points[0][mi].Delivery.Mean() {
			t.Errorf("mode %s: delivery rose with loss (%g > %g)", res.Modes[mi],
				res.Points[1][mi].Delivery.Mean(), res.Points[0][mi].Delivery.Mean())
		}
	}

	var buf bytes.Buffer
	if err := res.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"A7", "oracle_dlv", "measured_dlv", "0.3"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestRunLossSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunLossSweep(ctx, smallLossOpts()); err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
