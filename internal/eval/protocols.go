// Package eval reproduces the paper's evaluation (Sec. IV): Poisson
// deployments on a 1000×1000 field with R = 100, uniform link weights, 100
// runs per density point, one random connected (source, destination) pair
// per run, identical topologies across protocols, and the four reported
// quantities — advertised-set size (Figs. 6, 7) and bandwidth/delay overhead
// against the centralized optimum (Figs. 8, 9).
package eval

import (
	"qolsr/internal/core"
	"qolsr/internal/mpr"
	"qolsr/internal/route"
)

// ProtocolSpec binds an advertised-set selector to the routing policy the
// corresponding protocol uses over the advertised topology.
type ProtocolSpec struct {
	// Name labels the table column.
	Name string
	// Selector computes each node's advertised set.
	Selector core.Selector
	// Policy is how the protocol routes over what is advertised.
	Policy route.Policy
	// LocalLinks additionally lets the source use its own (possibly
	// unadvertised) links for the first hop — ablation A2.
	LocalLinks bool
}

// PaperProtocols returns the paper's three curves:
//
//   - "qolsr": the original QOLSR — the MPR-2 set is both flooded and
//     routed on, with minimum-hop routing and QoS tie-breaks (the paper,
//     Sec. II: QOLSR "does not allow to choose a path longer than two hops
//     in order to maintain shortest paths in terms of number of hops";
//     Fig. 1 shows exactly this hop-limited behaviour);
//   - "topofilter": the RNG topology-filtering QANS of [7], QoS-optimal
//     routing over the advertised topology;
//   - "fnbp": the paper's selection, same routing.
func PaperProtocols() []ProtocolSpec {
	return []ProtocolSpec{
		{Name: "qolsr", Selector: core.QOLSRAdapter{Heuristic: mpr.QOLSR2}, Policy: route.MinHopThenQoS},
		{Name: "topofilter", Selector: core.TopologyFilter{}, Policy: route.QoSOptimal},
		{Name: "fnbp", Selector: core.FNBP{}, Policy: route.QoSOptimal},
	}
}

// RoutingPolicyAblation contrasts the two defensible readings of QOLSR's
// routing over its advertised topology (ablation A6): hop-limited routing
// (the paper's description, large overheads) against QoS-optimal routing
// (overheads closer to the magnitudes Fig. 8 reports).
func RoutingPolicyAblation() []ProtocolSpec {
	return []ProtocolSpec{
		{Name: "qolsr-minhop", Selector: core.QOLSRAdapter{Heuristic: mpr.QOLSR2}, Policy: route.MinHopThenQoS},
		{Name: "qolsr-qosopt", Selector: core.QOLSRAdapter{Heuristic: mpr.QOLSR2}, Policy: route.QoSOptimal},
		{Name: "fnbp", Selector: core.FNBP{}, Policy: route.QoSOptimal},
	}
}

// LoopFixAblation compares the paper's loop-fix variants (ablation A1).
func LoopFixAblation() []ProtocolSpec {
	return []ProtocolSpec{
		{Name: "fnbp", Selector: core.FNBP{}, Policy: route.QoSOptimal},
		{Name: "fnbp-adjfix", Selector: core.FNBP{LoopFix: core.LoopFixAdjacent}, Policy: route.QoSOptimal},
		{Name: "fnbp-nofix", Selector: core.FNBP{LoopFix: core.LoopFixOff}, Policy: route.QoSOptimal},
	}
}

// LocalLinksAblation measures how much adding the source's own links to the
// usable topology changes the overhead (ablation A2).
func LocalLinksAblation() []ProtocolSpec {
	return []ProtocolSpec{
		{Name: "fnbp", Selector: core.FNBP{}, Policy: route.QoSOptimal},
		{Name: "fnbp+local", Selector: core.FNBP{}, Policy: route.QoSOptimal, LocalLinks: true},
		{Name: "qolsr", Selector: core.QOLSRAdapter{Heuristic: mpr.QOLSR2}, Policy: route.MinHopThenQoS},
		{Name: "qolsr+local", Selector: core.QOLSRAdapter{Heuristic: mpr.QOLSR2}, Policy: route.MinHopThenQoS, LocalLinks: true},
	}
}

// UpperBoundProtocols adds the full link-state selector, which bounds what
// any advertised-set scheme can achieve.
func UpperBoundProtocols() []ProtocolSpec {
	return append(PaperProtocols(),
		ProtocolSpec{Name: "full", Selector: core.FullAdvertise{}, Policy: route.QoSOptimal})
}

// MPRHeuristicAblation compares the three MPR heuristics used as advertised
// sets (the paper's Sec. II discussion of MPR-1 vs MPR-2).
func MPRHeuristicAblation() []ProtocolSpec {
	return []ProtocolSpec{
		{Name: "olsr-greedy", Selector: core.QOLSRAdapter{Heuristic: mpr.Greedy}, Policy: route.MinHopThenQoS},
		{Name: "qolsr-mpr1", Selector: core.QOLSRAdapter{Heuristic: mpr.QOLSR1}, Policy: route.MinHopThenQoS},
		{Name: "qolsr-mpr2", Selector: core.QOLSRAdapter{Heuristic: mpr.QOLSR2}, Policy: route.MinHopThenQoS},
	}
}
