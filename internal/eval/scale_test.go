package eval

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestRunScaleSweep runs a small node-count sweep twice and checks the
// deterministic quantities (node/edge counts, events executed, delivery)
// are identical across invocations — wall time is the only nondeterministic
// column.
func TestRunScaleSweep(t *testing.T) {
	opts := ScaleSweepOptions{
		Nodes:   []int{30, 60},
		Flows:   8,
		Warmup:  5 * time.Second,
		SimTime: 5 * time.Second,
		Seed:    7,
	}
	first, err := RunScaleSweep(context.Background(), opts)
	if err != nil {
		t.Fatalf("RunScaleSweep: %v", err)
	}
	if len(first.Points) != len(opts.Nodes) {
		t.Fatalf("points = %d, want %d", len(first.Points), len(opts.Nodes))
	}
	for i, p := range first.Points {
		if p.Nodes != opts.Nodes[i] {
			t.Errorf("point %d: Nodes = %d, want %d", i, p.Nodes, opts.Nodes[i])
		}
		if p.Events.Mean() <= 0 {
			t.Errorf("point %d: no events executed", i)
		}
		if p.Delivery.Mean() <= 0 {
			t.Errorf("point %d: zero delivery", i)
		}
	}

	second, err := RunScaleSweep(context.Background(), opts)
	if err != nil {
		t.Fatalf("RunScaleSweep (second): %v", err)
	}
	for i := range first.Points {
		a, b := first.Points[i], second.Points[i]
		if a.Edges.Mean() != b.Edges.Mean() {
			t.Errorf("point %d: edges differ across runs: %g vs %g", i, a.Edges.Mean(), b.Edges.Mean())
		}
		if a.Events.Mean() != b.Events.Mean() {
			t.Errorf("point %d: events differ across runs: %g vs %g", i, a.Events.Mean(), b.Events.Mean())
		}
		if a.Delivery.Mean() != b.Delivery.Mean() {
			t.Errorf("point %d: delivery differs across runs: %g vs %g", i, a.Delivery.Mean(), b.Delivery.Mean())
		}
	}

	var sb strings.Builder
	if err := first.WriteTable(&sb); err != nil {
		t.Fatalf("WriteTable: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"nodes", "Mev/s", "30", "60"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

// TestRunScaleSweepCancel checks ctx cancellation stops the sweep.
func TestRunScaleSweepCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunScaleSweep(ctx, ScaleSweepOptions{Nodes: []int{20}}); err == nil {
		t.Fatal("cancelled sweep returned nil error")
	}
}
