package traffic

import (
	"reflect"
	"testing"
	"time"

	"qolsr/internal/graph"
	"qolsr/internal/metric"
	"qolsr/internal/olsr"
	"qolsr/internal/sim"
)

// runLine drives one CBR flow 0->3 over the 4-node gate topology with the
// direct link down, so packets take the 3-hop chain.
func runLine(t *testing.T, req Requirements) *Report {
	t.Helper()
	nw := gateNetwork(t)
	if err := nw.FailLink(0, 3); err != nil {
		t.Fatal(err)
	}
	nw.Run(nw.Engine.Now() + 30*time.Second)

	eng := NewEngine(nw, 42)
	err := eng.Add(Flow{
		ID: 0, Class: ClassCBR, Src: 0, Dst: 3,
		RateBps: 8192, PacketBytes: 512,
		Start: nw.Engine.Now(), Req: req,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := nw.Engine.Now() + 10*time.Second
	if err := eng.Start(stop); err != nil {
		t.Fatal(err)
	}
	nw.Run(stop + time.Second)
	return eng.Report()
}

func TestEngineDeliversCBROnIdealMedium(t *testing.T) {
	rep := runLine(t, Requirements{MaxDelay: 10 * time.Millisecond})
	if len(rep.Flows) != 1 {
		t.Fatalf("flows = %d", len(rep.Flows))
	}
	fr := rep.Flows[0]
	if fr.Rejected {
		t.Fatalf("flow rejected: %+v", fr.Decision)
	}
	// 8192 B/s in 512-byte packets is 16 packets/s for 10s.
	if fr.Sent < 155 || fr.Sent > 165 {
		t.Errorf("sent = %d, want ~160", fr.Sent)
	}
	if fr.Delivered != fr.Sent || fr.Delivery != 1 {
		t.Errorf("ideal medium lost packets: %d/%d", fr.Delivered, fr.Sent)
	}
	// Every packet crosses the 3-hop chain at 1ms/hop, with zero jitter.
	if fr.DelayMean != 3*time.Millisecond || fr.DelayP50 != 3*time.Millisecond ||
		fr.DelayP95 != 3*time.Millisecond || fr.DelayP99 != 3*time.Millisecond {
		t.Errorf("delay stats = %v/%v/%v/%v, want 3ms across", fr.DelayMean, fr.DelayP50, fr.DelayP95, fr.DelayP99)
	}
	if fr.Jitter != 0 {
		t.Errorf("jitter = %v on the ideal medium", fr.Jitter)
	}
	if fr.HopsMean != 3 {
		t.Errorf("hops mean = %g, want 3", fr.HopsMean)
	}
	if fr.Verdict != VerdictSatisfied {
		t.Errorf("verdict = %s, want satisfied", fr.Verdict)
	}
	if rep.Total.Admitted != 1 || rep.Total.ViolationRatio() != 0 {
		t.Errorf("totals wrong: %+v", rep.Total)
	}
	if fr.Throughput < 7000 || fr.Throughput > 9000 {
		t.Errorf("throughput = %.0f B/s, want ~8192", fr.Throughput)
	}
}

func TestEngineRejectedFlowStaysSilent(t *testing.T) {
	rep := runLine(t, Requirements{MaxDelay: 2 * time.Millisecond})
	fr := rep.Flows[0]
	if !fr.Rejected || fr.Verdict != VerdictCorrectReject {
		t.Fatalf("3-hop flow not correctly rejected: %+v", fr)
	}
	if fr.Sent != 0 {
		t.Errorf("rejected flow sent %d packets", fr.Sent)
	}
	if rep.Total.CorrectReject != 1 || rep.Total.Admitted != 0 {
		t.Errorf("totals wrong: %+v", rep.Total)
	}
}

func TestEngineDeterministic(t *testing.T) {
	a := runLine(t, Requirements{MaxDelay: 10 * time.Millisecond})
	b := runLine(t, Requirements{MaxDelay: 10 * time.Millisecond})
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical runs produced different reports:\n%+v\nvs\n%+v", a, b)
	}
}

func TestEngineMixedClassesOnLossyMedium(t *testing.T) {
	// A denser network over the lossy queued radio: all three classes
	// offer load; the run must account every packet exactly once.
	g := graph.New(6)
	for _, l := range [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 2}, {1, 3}, {2, 4}, {3, 5}} {
		e := g.MustAddEdge(l[0], l[1])
		if err := g.SetWeight("bandwidth", e, 4); err != nil {
			t.Fatal(err)
		}
	}
	medium := sim.NewLossyMedium(sim.LossyConfig{Loss: 0.05, Seed: 9})
	nw, err := sim.NewNetwork(g, olsr.DefaultConfig(metric.Bandwidth()), sim.NetworkOptions{Seed: 5, Medium: medium})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	nw.Run(20 * time.Second)

	eng := NewEngine(nw, 7)
	flows, err := FlowsFromSpecs([]Spec{
		{Class: "cbr", Count: 2, RateBps: 4096},
		{Class: "poisson", Count: 2, RateBps: 4096},
		{Class: "video", Count: 2, RateBps: 4096},
	}, [][2]int32{{0, 5}, {5, 0}, {1, 4}, {4, 1}, {2, 5}, {3, 0}}, nw.Engine.Now())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range flows {
		if err := eng.Add(f); err != nil {
			t.Fatal(err)
		}
	}
	stop := nw.Engine.Now() + 15*time.Second
	if err := eng.Start(stop); err != nil {
		t.Fatal(err)
	}
	// Drain well past the stop so in-flight packets complete.
	nw.Run(stop + 2*time.Second)

	c := eng.Counters()
	if c.Sent == 0 || c.Completed != c.Sent {
		t.Fatalf("counters unbalanced: %+v", c)
	}
	if c.Delivered == 0 || c.Delivered > c.Sent {
		t.Fatalf("implausible delivery: %+v", c)
	}
	rep := eng.Report()
	if len(rep.Classes) != 3 {
		t.Fatalf("classes = %d, want 3", len(rep.Classes))
	}
	var sent, delivered uint64
	for _, cls := range rep.Classes {
		sent += cls.Sent
		delivered += cls.Delivered
	}
	if sent != c.Sent || delivered != c.Delivered {
		t.Errorf("class totals (%d/%d) disagree with counters (%d/%d)", delivered, sent, c.Delivered, c.Sent)
	}
	if rep.Total.Sent != sent || rep.Total.Delivered != delivered {
		t.Errorf("grand total disagrees: %+v", rep.Total)
	}
	// On a queued lossy radio the delay distribution must be spread out.
	if rep.Total.DelayP99 < rep.Total.DelayP50 {
		t.Errorf("p99 %v below p50 %v", rep.Total.DelayP99, rep.Total.DelayP50)
	}
	if rep.Total.Jitter <= 0 {
		t.Errorf("zero jitter on a jittery medium")
	}
}

func TestEngineAddValidation(t *testing.T) {
	nw := gateNetwork(t)
	eng := NewEngine(nw, 1)
	bad := []Flow{
		{ID: 0, Class: "nope", Src: 0, Dst: 1, RateBps: 100, PacketBytes: 512},
		{ID: 1, Class: "cbr", Src: 0, Dst: 1, RateBps: 100, PacketBytes: 512}, // out-of-order ID
		{ID: 0, Class: "cbr", Src: 2, Dst: 2, RateBps: 100, PacketBytes: 512},
		{ID: 0, Class: "cbr", Src: 0, Dst: 9, RateBps: 100, PacketBytes: 512},
		{ID: 0, Class: "cbr", Src: 0, Dst: 1, RateBps: 0, PacketBytes: 512},
	}
	for i, f := range bad {
		if err := eng.Add(f); err == nil {
			t.Errorf("bad flow %d accepted", i)
		}
	}
	if err := eng.Add(Flow{ID: 0, Class: "cbr", Src: 0, Dst: 1, RateBps: 100, PacketBytes: 512}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(time.Minute); err == nil {
		t.Error("double Start accepted")
	}
	if err := eng.Add(Flow{ID: 1, Class: "cbr", Src: 1, Dst: 2, RateBps: 100, PacketBytes: 512}); err == nil {
		t.Error("Add after Start accepted")
	}
}
