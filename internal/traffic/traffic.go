// Package traffic is the QoS traffic engine: sustained packet-level flows
// driven hop-by-hop through the live routing tables and the radio medium,
// gated by admission control and accounted per flow.
//
// The paper's premise is selecting neighbors so that flows with bandwidth
// and delay requirements are satisfied — yet a probe packet per sample tick
// exercises none of that. This package closes the gap: flow classes (CBR,
// Poisson, on-off bursty "video") offer load continuously, an admission
// gate checks each flow's requested QoS against the selected path's
// composed bandwidth/delay values (the protocol's own belief, oracle or
// measured) before admitting it, and per-flow accounting produces delivery
// ratio, throughput, delay mean/p50/p95/p99, jitter, and the QoS verdicts
// (admitted-but-violated vs. correctly-rejected) that honestly measure a
// neighbor-selection policy under load.
//
// Every packet arrival and size draw is keyed through splitmix64 per
// (seed, flow, packet-sequence), so a simulation is reproducible bit for
// bit at any harness worker count.
package traffic

import (
	"fmt"
	"strings"
	"time"
)

// Requirements is a flow's requested QoS.
type Requirements struct {
	// MinBandwidth is the path bottleneck floor, in oracle
	// bandwidth-channel units (the physical link-capacity weights).
	// Admission composes it along the path the protocol's routing tables
	// actually select — under oracle sensing that is the source route's
	// own concave value; under measured sensing (whose route values are
	// delivery products, a different unit) the oracle capacities along
	// the measured-selected path are composed instead, so the floor
	// stays unit-coherent in every mode. Zero means no floor.
	MinBandwidth float64
	// MaxDelay is the end-to-end delay ceiling, checked at admission
	// against the path's composed per-hop delay bound and after the run
	// against the measured p95 delay. Zero means no ceiling.
	MaxDelay time.Duration
	// MaxJitter bounds the measured mean inter-packet delay variation.
	// It has no composable path estimate, so it is checked only against
	// measured traffic. Zero means no bound.
	MaxJitter time.Duration
}

// zero reports whether no requirement is set.
func (r Requirements) zero() bool {
	return r.MinBandwidth == 0 && r.MaxDelay == 0 && r.MaxJitter == 0
}

// Validate checks the requirements.
func (r Requirements) Validate() error {
	if r.MinBandwidth < 0 {
		return fmt.Errorf("traffic: negative bandwidth floor %g", r.MinBandwidth)
	}
	if r.MaxDelay < 0 {
		return fmt.Errorf("traffic: negative delay ceiling %v", r.MaxDelay)
	}
	if r.MaxJitter < 0 {
		return fmt.Errorf("traffic: negative jitter bound %v", r.MaxJitter)
	}
	return nil
}

// Built-in flow-class names.
const (
	// ClassCBR emits fixed-size packets at constant bit rate — the
	// synthetic multimedia stream of the QoS-routing literature.
	ClassCBR = "cbr"
	// ClassPoisson emits fixed-size packets with exponential
	// inter-arrival times — memoryless background load.
	ClassPoisson = "poisson"
	// ClassVideo is an on-off bursty source: exponential on/off periods,
	// double-rate emission while on (long-run average equals the
	// configured rate) and variable packet sizes — a coarse VBR video
	// model.
	ClassVideo = "video"
)

// ClassInfo describes one built-in flow class for listings.
type ClassInfo struct {
	Name        string
	Description string
}

// Classes returns the built-in flow classes in listing order.
func Classes() []ClassInfo {
	return []ClassInfo{
		{ClassCBR, "constant bit rate, fixed-size packets"},
		{ClassPoisson, "Poisson arrivals (exponential inter-arrival), fixed-size packets"},
		{ClassVideo, "on-off bursty VBR: exponential on/off periods, variable packet sizes"},
	}
}

// ClassNames lists the built-in flow-class names in listing order.
func ClassNames() []string {
	infos := Classes()
	names := make([]string, len(infos))
	for i, c := range infos {
		names[i] = c.Name
	}
	return names
}

// CheckClass validates a flow-class name, listing the valid names on error.
func CheckClass(name string) error {
	for _, c := range ClassNames() {
		if c == name {
			return nil
		}
	}
	return fmt.Errorf("traffic: unknown flow class %q (have %s)", name, strings.Join(ClassNames(), ", "))
}

// Default per-flow parameters.
const (
	// DefaultRateBps is the default offered load per flow (8 kB/s).
	DefaultRateBps = 8192
	// DefaultPacketBytes is the default packet size.
	DefaultPacketBytes = 512
	// MinPacketBytes floors drawn packet sizes.
	MinPacketBytes = 64
)

// Spec describes one flow-class entry of a traffic mix: Count flows of one
// class, each offering RateBps with the given QoS requirements.
type Spec struct {
	// Class names the arrival process: "cbr", "poisson" or "video".
	Class string
	// Count is the number of flows of this class.
	Count int
	// RateBps is the mean offered load per flow in bytes per virtual
	// second (default DefaultRateBps).
	RateBps float64
	// PacketBytes is the nominal packet size (default DefaultPacketBytes;
	// the video class draws sizes in [½, 1½] of it).
	PacketBytes int
	// Start is the virtual time the spec's flows request admission
	// (harnesses default it to their warmup time when zero).
	Start time.Duration
	// QoS is the per-flow requested QoS.
	QoS Requirements
}

// WithDefaults returns a copy with unset knobs at their defaults.
func (s Spec) WithDefaults() Spec {
	if s.RateBps <= 0 {
		s.RateBps = DefaultRateBps
	}
	if s.PacketBytes <= 0 {
		s.PacketBytes = DefaultPacketBytes
	}
	return s
}

// Validate checks the spec after defaulting.
func (s Spec) Validate() error {
	if err := CheckClass(s.Class); err != nil {
		return err
	}
	if s.Count < 1 {
		return fmt.Errorf("traffic: spec %q needs a positive flow count, got %d", s.Class, s.Count)
	}
	if s.RateBps <= 0 {
		return fmt.Errorf("traffic: spec %q needs a positive rate, got %g", s.Class, s.RateBps)
	}
	if s.PacketBytes < MinPacketBytes {
		return fmt.Errorf("traffic: spec %q packet size %d below minimum %d", s.Class, s.PacketBytes, MinPacketBytes)
	}
	if s.Start < 0 {
		return fmt.Errorf("traffic: spec %q negative start %v", s.Class, s.Start)
	}
	return s.QoS.Validate()
}

// Flow is one concrete flow: a spec entry bound to a (source, destination)
// pair. Src and Dst are graph indices of the network the engine runs on.
type Flow struct {
	// ID is the flow's index in the engine; it keys the flow's RNG
	// draws, so it must be stable across runs.
	ID int
	// Class names the arrival process.
	Class string
	// Src and Dst are the endpoints, as graph indices.
	Src, Dst int32
	// RateBps is the mean offered load in bytes per virtual second.
	RateBps float64
	// PacketBytes is the nominal packet size.
	PacketBytes int
	// Start is the virtual time the flow requests admission.
	Start time.Duration
	// Req is the requested QoS.
	Req Requirements
}
