package traffic

import (
	"math"
	"time"

	"qolsr/internal/graph"
	"qolsr/internal/metric"
	"qolsr/internal/sim"
)

// Rejection reasons (Decision.Reason; empty on admission).
const (
	// ReasonNoRoute means the source's table walk never reached the
	// destination (no entry, a stale next hop, or a down link).
	ReasonNoRoute = "no-route"
	// ReasonBandwidth means the path's composed bandwidth value falls
	// below the flow's floor.
	ReasonBandwidth = "bandwidth"
	// ReasonDelay means the path's composed delay bound exceeds the
	// flow's ceiling.
	ReasonDelay = "delay"
)

// Decision is one admission-control verdict with the path evidence it was
// made on.
type Decision struct {
	// Admitted reports whether the flow may start.
	Admitted bool
	// Reason names the failed check when not admitted.
	Reason string
	// Hops is the length of the walked forwarding path (0 when no route).
	Hops int
	// PathValue is the source routing table's metric-composed value for
	// the destination — the protocol's own belief about the path, in the
	// routing metric's units (oracle weights or measured link quality).
	PathValue float64
	// PathBandwidth is the concave-composed capacity of the walked path,
	// in oracle bandwidth-channel units: the routing metric's own value
	// when the protocol routes on those units (concave metric, oracle
	// sensing), else the minimum oracle bandwidth-channel weight along
	// the walk (+Inf when the channel is absent — the floor is then
	// unenforceable).
	PathBandwidth float64
	// PathDelay is the composed delay bound of the walked path: hops
	// times the medium's per-hop latency bound.
	PathDelay time.Duration
	// Feasible reports the oracle judgment at decision time: whether any
	// path on the current effective topology satisfies the requirements.
	// A rejected-but-feasible flow is a false reject; a
	// rejected-and-infeasible flow was correctly rejected.
	Feasible bool
}

// bandwidthChannel is the oracle weight channel the feasibility judge and
// the additive-metric bandwidth check read.
const bandwidthChannel = "bandwidth"

// Gate is the admission controller of one network: it decides a flow's
// admission from the selected path the live routing tables actually forward
// on, composing the protocol's own link values (oracle-fed or measured)
// into path bandwidth and delay and checking them against the flow's
// requirements.
type Gate struct {
	// NW is the network whose routing state gates admissions.
	NW *sim.Network
}

// Decide evaluates one flow at the network's current virtual time. It walks
// the forwarding path hop by hop through each node's own routing table —
// the path packets will actually take — and checks the composed values
// against req.
func (g *Gate) Decide(src, dst int32, req Requirements) Decision {
	nw := g.NW
	now := nw.Engine.Now()
	m := nw.Metric()
	dec := Decision{PathValue: m.Worst(), PathBandwidth: math.Inf(1)}

	oracleBW, _ := nw.Phys.Weights(bandwidthChannel)

	// Walk the forwarding path. Mirrors the data plane's per-hop checks
	// (sim.SendData): a next hop must exist in the table, be a live
	// physical link, and make progress within the TTL.
	at := src
	reached := false
	for ttl := sim.DefaultDataTTL; ttl > 0 && !reached; ttl-- {
		routes, err := nw.Nodes[at].Routes(now)
		if err != nil {
			break
		}
		entry, ok := routes.Lookup(int64(nw.Phys.ID(dst)))
		if !ok {
			break
		}
		if at == src {
			dec.PathValue = entry.Value
		}
		next := nw.Phys.IndexOf(graph.NodeID(entry.NextHop))
		if next < 0 {
			break
		}
		e, exists := nw.Phys.EdgeBetween(at, next)
		if !exists || !nw.LinkUp(at, next) {
			break
		}
		if oracleBW != nil && oracleBW[e] < dec.PathBandwidth {
			dec.PathBandwidth = oracleBW[e]
		}
		dec.Hops++
		at = next
		reached = at == dst
	}

	dec.Feasible = g.feasible(src, dst, req)
	if !reached {
		dec.Hops = 0
		dec.Reason = ReasonNoRoute
		return dec
	}
	dec.PathDelay = time.Duration(dec.Hops) * nw.HopDelayBound()

	// The bandwidth floor is specified in oracle bandwidth-channel units
	// (link capacities). When the protocol itself routes on those units —
	// a concave metric fed by the oracle — the source's composed route
	// value IS the path bottleneck and is what the floor is checked
	// against (the protocol's own belief, staleness included). Under
	// measured sensing the route values are delivery products in [0,1] —
	// a different unit — so the floor is instead composed from the oracle
	// capacities along the measured-selected path, keeping the check (and
	// the feasibility judge, which prunes by the same channel) unit-
	// coherent in every mode. Additive routing metrics likewise fall back
	// to the oracle-channel min accumulated during the walk.
	if m.Kind() == metric.Concave && !nw.MeasuredQoS() {
		dec.PathBandwidth = dec.PathValue
	}
	if req.MinBandwidth > 0 && dec.PathBandwidth < req.MinBandwidth {
		dec.Reason = ReasonBandwidth
		return dec
	}
	if req.MaxDelay > 0 && dec.PathDelay > req.MaxDelay {
		dec.Reason = ReasonDelay
		return dec
	}
	dec.Admitted = true
	return dec
}

// feasible is the oracle judge: on the current effective topology (physical
// graph minus failed links, minus links below the bandwidth floor when the
// oracle channel exists), does any path satisfy the delay ceiling? It is
// what classifies a rejection as correct (infeasible) or false (feasible).
func (g *Gate) feasible(src, dst int32, req Requirements) bool {
	nw := g.NW
	oracleBW, _ := nw.Phys.Weights(bandwidthChannel)

	// Breadth-first hop counts over admissible links.
	n := nw.Phys.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{src}
	for len(queue) > 0 {
		at := queue[0]
		queue = queue[1:]
		if at == dst {
			break
		}
		for _, arc := range nw.Phys.Arcs(at) {
			if dist[arc.To] >= 0 || !nw.LinkUp(at, arc.To) {
				continue
			}
			if req.MinBandwidth > 0 && oracleBW != nil && oracleBW[arc.Edge] < req.MinBandwidth {
				continue
			}
			dist[arc.To] = dist[at] + 1
			queue = append(queue, arc.To)
		}
	}
	if dist[dst] < 0 {
		return false
	}
	if req.MaxDelay > 0 {
		return time.Duration(dist[dst])*nw.HopDelayBound() <= req.MaxDelay
	}
	return true
}
