package traffic

import (
	"testing"
	"time"

	"qolsr/internal/sim"
)

// TestSteadyStateProfile drives the benchmark workload for a long stretch
// under -run so a CPU profile captures only steady state (benchmark CPU
// profiles include the untimed setup). Skipped unless -steadyprofile-like
// long mode is requested via -timeout abuse; gated on testing.Short? Keep
// it opt-in via the short flag inversion.
func TestSteadyStateProfile(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("profiling helper; run with -v")
	}
	nw := benchNetwork(t, sim.NewIdealMedium(0))
	eng := NewEngine(nw, 12)
	pairs := make([][2]int32, 16)
	for k := range pairs {
		pairs[k] = [2]int32{int32(k % 50), int32((k*7 + 13) % 50)}
	}
	flows, err := FlowsFromSpecs([]Spec{
		{Class: "cbr", Count: 8, RateBps: 16384},
		{Class: "video", Count: 8, RateBps: 16384},
	}, pairs, nw.Engine.Now())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range flows {
		if err := eng.Add(f); err != nil {
			t.Fatal(err)
		}
	}
	stop := nw.Engine.Now() + 600*time.Second
	if err := eng.Start(stop); err != nil {
		t.Fatal(err)
	}
	nw.Run(stop + time.Second)
	t.Logf("sent=%d", eng.Counters().Sent)
}
