package traffic

import (
	"math"
	"time"

	"qolsr/internal/rng"
)

// Draw kinds separating the independent random streams of one flow. Every
// draw is a pure function of (engine seed, flow ID, kind, sequence), so a
// flow's packet schedule never depends on how other flows interleave.
const (
	drawPhase uint64 = iota + 1
	drawArrival
	drawSize
	drawOn
	drawOff
)

// On-off ("video") class shape: exponential on and off periods of these
// means, double-rate emission while on — the long-run average offered load
// equals the flow's configured rate.
const (
	videoMeanOn  = time.Second
	videoMeanOff = time.Second
	// videoPeriodFloor keeps degenerate zero-length draws from stalling
	// the burst walk.
	videoPeriodFloor = time.Millisecond
	// expCap bounds exponential draws at this many means, so one extreme
	// tail draw cannot silence a source for a whole run.
	expCap = 8.0
)

// source is one flow's arrival process: departure times and packet sizes,
// both pure functions of the flow's keyed draws.
type source interface {
	// first returns the flow's first departure time at or after start.
	first(start time.Duration) time.Duration
	// next returns the departure time following the departure at prev of
	// packet seq-1 (seq counts emitted packets).
	next(prev time.Duration, seq uint64) time.Duration
	// size returns the size of packet seq in bytes.
	size(seq uint64) int
}

// newSource builds the arrival process of one flow. base is the engine's
// derived draw key; f.Class must be valid.
func newSource(base uint64, f Flow) source {
	interval := byteInterval(f.PacketBytes, f.RateBps)
	key := rng.Mix(base, uint64(f.ID))
	switch f.Class {
	case ClassPoisson:
		return &poissonSource{key: key, mean: interval, bytes: f.PacketBytes}
	case ClassVideo:
		return &videoSource{
			key:   key,
			peak:  byteInterval(f.PacketBytes, 2*f.RateBps),
			bytes: f.PacketBytes,
		}
	default: // ClassCBR
		return &cbrSource{key: key, interval: interval, bytes: f.PacketBytes}
	}
}

// byteInterval is the inter-departure time of size-byte packets at rate
// bytes per second.
func byteInterval(size int, rate float64) time.Duration {
	return time.Duration(float64(size) / rate * float64(time.Second))
}

// expDraw maps a keyed uniform draw onto an exponential of the given mean,
// capped at expCap means.
func expDraw(key uint64, mean time.Duration) time.Duration {
	u := rng.Unit(key)
	x := -math.Log(1 - u)
	if x > expCap {
		x = expCap
	}
	return time.Duration(x * float64(mean))
}

// phase spreads the first departure uniformly over one mean interval, so
// same-class flows admitted together do not emit in lockstep.
func phase(key uint64, mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(rng.Unit(rng.Mix(key, drawPhase)) * float64(mean))
}

// cbrSource emits fixed-size packets at a constant interval.
type cbrSource struct {
	key      uint64
	interval time.Duration
	bytes    int
}

func (s *cbrSource) first(start time.Duration) time.Duration {
	return start + phase(s.key, s.interval)
}

func (s *cbrSource) next(prev time.Duration, _ uint64) time.Duration {
	return prev + s.interval
}

func (s *cbrSource) size(uint64) int { return s.bytes }

// poissonSource emits fixed-size packets with exponential inter-arrivals.
type poissonSource struct {
	key   uint64
	mean  time.Duration
	bytes int
}

func (s *poissonSource) first(start time.Duration) time.Duration {
	return start + phase(s.key, s.mean)
}

func (s *poissonSource) next(prev time.Duration, seq uint64) time.Duration {
	return prev + expDraw(rng.Mix(s.key, drawArrival, seq), s.mean)
}

func (s *poissonSource) size(uint64) int { return s.bytes }

// videoSource is the on-off bursty class: during an on period it emits at
// twice the configured rate; off periods are silent. Period lengths are
// exponential, keyed by the burst counter, and packet sizes vary uniformly
// in [½, 1½] of the nominal size.
type videoSource struct {
	key   uint64
	peak  time.Duration
	bytes int

	onUntil time.Duration
	burst   uint64
}

func (s *videoSource) first(start time.Duration) time.Duration {
	s.onUntil = start + s.period(drawOn, 0, videoMeanOn)
	return start + phase(s.key, s.peak)
}

func (s *videoSource) next(prev time.Duration, _ uint64) time.Duration {
	t := prev + s.peak
	for t > s.onUntil {
		// The on period ended before this departure: idle through an
		// off period, then open the next burst.
		s.burst++
		onStart := s.onUntil + s.period(drawOff, s.burst, videoMeanOff)
		s.onUntil = onStart + s.period(drawOn, s.burst, videoMeanOn)
		t = onStart
	}
	return t
}

func (s *videoSource) period(kind, burst uint64, mean time.Duration) time.Duration {
	d := expDraw(rng.Mix(s.key, kind, burst), mean)
	if d < videoPeriodFloor {
		d = videoPeriodFloor
	}
	return d
}

func (s *videoSource) size(seq uint64) int {
	half := s.bytes / 2
	n := half + int(rng.Unit(rng.Mix(s.key, drawSize, seq))*float64(s.bytes))
	if n < MinPacketBytes {
		n = MinPacketBytes
	}
	return n
}
