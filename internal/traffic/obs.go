package traffic

import "qolsr/internal/obs"

// Instrument registers the engine's packet totals and per-class admission/
// violation accounting on reg as lazy collectors — evaluated at snapshot
// time only, nothing on the emit/completion hot path. Call it after every
// Add (class collectors are registered per known class). A nil registry is
// a no-op.
func (e *Engine) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c := &e.counters
	reg.CounterFunc("qolsr_traffic_packets_total", "flow packets by outcome", func() uint64 { return c.Sent }, obs.Label{Key: "outcome", Value: "sent"})
	reg.CounterFunc("qolsr_traffic_packets_total", "flow packets by outcome", func() uint64 { return c.Completed }, obs.Label{Key: "outcome", Value: "completed"})
	reg.CounterFunc("qolsr_traffic_packets_total", "flow packets by outcome", func() uint64 { return c.Delivered }, obs.Label{Key: "outcome", Value: "delivered"})
	reg.CounterFunc("qolsr_traffic_bytes_delivered_total", "payload bytes delivered", func() uint64 { return c.BytesDelivered })

	for _, name := range e.classes {
		name := name
		a := e.classAcc[name]
		cls := obs.Label{Key: "class", Value: name}
		reg.CounterFunc("qolsr_traffic_flows_total", "admission decisions by class", func() uint64 { return a.admitted }, cls, obs.Label{Key: "decision", Value: "admitted"})
		reg.CounterFunc("qolsr_traffic_flows_total", "admission decisions by class", func() uint64 { return a.rejected }, cls, obs.Label{Key: "decision", Value: "rejected"})
		reg.CounterFunc("qolsr_traffic_class_packets_total", "class packets by outcome", func() uint64 { return a.sent }, cls, obs.Label{Key: "outcome", Value: "sent"})
		reg.CounterFunc("qolsr_traffic_class_packets_total", "class packets by outcome", func() uint64 { return a.delivered }, cls, obs.Label{Key: "outcome", Value: "delivered"})
		reg.CounterFunc("qolsr_traffic_class_violations_total", "admitted flows measured in violation of their QoS requirements", func() uint64 {
			return e.classViolations(name)
		}, cls)
	}
}

// classViolations measures the class's admitted flows against their
// requirements — the same test Report runs, evaluated lazily so violations
// appear in metrics snapshots without an explicit report pass.
func (e *Engine) classViolations(class string) uint64 {
	var n uint64
	for _, fs := range e.flows {
		if fs.Class == class && fs.decided && fs.decision.Admitted && fs.violated() {
			n++
		}
	}
	return n
}
