package traffic

import (
	"strings"
	"testing"
	"time"

	"qolsr/internal/graph"
	"qolsr/internal/metric"
	"qolsr/internal/olsr"
	"qolsr/internal/sim"
)

func TestClassRegistry(t *testing.T) {
	names := ClassNames()
	if len(names) != 3 || names[0] != "cbr" || names[1] != "poisson" || names[2] != "video" {
		t.Errorf("ClassNames = %v", names)
	}
	for _, c := range Classes() {
		if c.Description == "" {
			t.Errorf("class %s has no description", c.Name)
		}
		if err := CheckClass(c.Name); err != nil {
			t.Errorf("CheckClass(%s): %v", c.Name, err)
		}
	}
	err := CheckClass("tcp")
	if err == nil {
		t.Fatal("unknown class accepted")
	}
	for _, want := range ClassNames() {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not list %q", err, want)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	good := Spec{Class: "cbr", Count: 2}.WithDefaults()
	if err := good.Validate(); err != nil {
		t.Fatalf("defaulted spec invalid: %v", err)
	}
	if good.RateBps != DefaultRateBps || good.PacketBytes != DefaultPacketBytes {
		t.Errorf("defaults not applied: %+v", good)
	}
	bad := []Spec{
		{Class: "nope", Count: 1, RateBps: 100, PacketBytes: 512},
		{Class: "cbr", Count: 0, RateBps: 100, PacketBytes: 512},
		{Class: "cbr", Count: 1, RateBps: -1, PacketBytes: 512},
		{Class: "cbr", Count: 1, RateBps: 100, PacketBytes: 8},
		{Class: "cbr", Count: 1, RateBps: 100, PacketBytes: 512, Start: -time.Second},
		{Class: "cbr", Count: 1, RateBps: 100, PacketBytes: 512, QoS: Requirements{MinBandwidth: -1}},
	}
	for i, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, sp)
		}
	}
}

func TestFlowsFromSpecs(t *testing.T) {
	pairs := [][2]int32{{0, 1}, {1, 2}, {2, 0}}
	specs := []Spec{
		{Class: "cbr", Count: 2},
		{Class: "video", Count: 1, Start: 5 * time.Second},
	}
	flows, err := FlowsFromSpecs(specs, pairs, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 3 {
		t.Fatalf("flows = %d, want 3", len(flows))
	}
	if flows[0].Start != 10*time.Second || flows[2].Start != 5*time.Second {
		t.Errorf("start defaulting wrong: %v %v", flows[0].Start, flows[2].Start)
	}
	if flows[2].Class != "video" || flows[2].Src != 2 || flows[2].Dst != 0 {
		t.Errorf("third flow wrong: %+v", flows[2])
	}
	for i, f := range flows {
		if f.ID != i {
			t.Errorf("flow %d has ID %d", i, f.ID)
		}
	}
	if _, err := FlowsFromSpecs([]Spec{{Class: "cbr", Count: 4}}, pairs, 0); err == nil {
		t.Error("mix larger than pair budget accepted")
	}
}

func TestSourceSchedulesDeterministic(t *testing.T) {
	for _, class := range ClassNames() {
		f := Flow{ID: 3, Class: class, RateBps: 8192, PacketBytes: 512}
		walk := func() []time.Duration {
			s := newSource(99, f)
			var ts []time.Duration
			at := s.first(2 * time.Second)
			for i := 0; i < 200; i++ {
				ts = append(ts, at)
				at = s.next(at, uint64(i+1))
			}
			return ts
		}
		a, b := walk(), walk()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: departure %d differs across identical walks: %v vs %v", class, i, a[i], b[i])
			}
			if i > 0 && a[i] < a[i-1] {
				t.Fatalf("%s: departures not monotone at %d: %v then %v", class, i, a[i-1], a[i])
			}
		}
	}
}

func TestSourceMeanRates(t *testing.T) {
	// Each class's long-run offered rate should approximate RateBps.
	for _, class := range ClassNames() {
		f := Flow{ID: 1, Class: class, RateBps: 8192, PacketBytes: 512}
		s := newSource(7, f)
		var bytes int
		at := s.first(0)
		horizon := 200 * time.Second
		for i := uint64(0); at < horizon; i++ {
			bytes += s.size(i)
			at = s.next(at, i+1)
		}
		rate := float64(bytes) / horizon.Seconds()
		if rate < 0.7*f.RateBps || rate > 1.3*f.RateBps {
			t.Errorf("%s: long-run rate %.0f B/s, want ~%.0f", class, rate, f.RateBps)
		}
	}
}

// gateNetwork builds a 4-node topology with a wide direct link 0-3 and a
// narrow 3-hop chain 0-1-2-3, runs the protocol to convergence, and
// returns the network.
//
//	0 ──(10)── 3
//	0 ─(5)─ 1 ─(5)─ 2 ─(5)─ 3
func gateNetwork(t *testing.T) *sim.Network {
	t.Helper()
	g := graph.New(4)
	for _, l := range []struct {
		a, b int32
		w    float64
	}{{0, 3, 10}, {0, 1, 5}, {1, 2, 5}, {2, 3, 5}} {
		e := g.MustAddEdge(l.a, l.b)
		if err := g.SetWeight("bandwidth", e, l.w); err != nil {
			t.Fatal(err)
		}
	}
	nw, err := sim.NewNetwork(g, olsr.DefaultConfig(metric.Bandwidth()), sim.NetworkOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	nw.Run(30 * time.Second)
	return nw
}

func TestAdmissionDelayBoundAndRestore(t *testing.T) {
	nw := gateNetwork(t)
	gate := &Gate{NW: nw}

	// The ideal medium's hop bound is 1ms: the direct path (1 hop)
	// satisfies a 2ms ceiling, the 3-hop chain does not.
	req := Requirements{MaxDelay: 2 * time.Millisecond}
	dec := gate.Decide(0, 3, req)
	if !dec.Admitted || dec.Hops != 1 {
		t.Fatalf("direct path not admitted: %+v", dec)
	}
	if dec.PathBandwidth != 10 {
		t.Errorf("direct path bandwidth = %g, want 10", dec.PathBandwidth)
	}

	// Fail the direct link: the protocol reroutes over the chain, whose
	// composed delay bound exceeds the ceiling — the gate must reject,
	// and the oracle agrees no satisfying path exists (correct reject).
	if err := nw.FailLink(0, 3); err != nil {
		t.Fatal(err)
	}
	nw.Run(nw.Engine.Now() + 30*time.Second)
	dec = gate.Decide(0, 3, req)
	if dec.Admitted {
		t.Fatalf("3-hop chain admitted past a 2ms ceiling: %+v", dec)
	}
	if dec.Reason != ReasonDelay {
		t.Errorf("reject reason = %q, want %q", dec.Reason, ReasonDelay)
	}
	if dec.Hops != 3 || dec.PathDelay != 3*time.Millisecond {
		t.Errorf("walked path = %d hops, delay %v; want 3 hops, 3ms", dec.Hops, dec.PathDelay)
	}
	if dec.Feasible {
		t.Error("oracle found a satisfying path while the only route is 3 hops")
	}

	// Restore the link and let the protocol reconverge: admitted again.
	if err := nw.RestoreLink(0, 3); err != nil {
		t.Fatal(err)
	}
	nw.Run(nw.Engine.Now() + 30*time.Second)
	dec = gate.Decide(0, 3, req)
	if !dec.Admitted {
		t.Fatalf("flow still rejected after RestoreLink: %+v", dec)
	}
}

func TestAdmissionBandwidthFloor(t *testing.T) {
	nw := gateNetwork(t)
	gate := &Gate{NW: nw}

	// The best path 0->3 is the direct weight-10 link; a floor of 8
	// passes, a floor of 12 cannot be met by any path.
	if dec := gate.Decide(0, 3, Requirements{MinBandwidth: 8}); !dec.Admitted {
		t.Fatalf("floor 8 rejected on a weight-10 path: %+v", dec)
	}
	dec := gate.Decide(0, 3, Requirements{MinBandwidth: 12})
	if dec.Admitted {
		t.Fatalf("floor 12 admitted on a weight-10 path: %+v", dec)
	}
	if dec.Reason != ReasonBandwidth {
		t.Errorf("reject reason = %q, want %q", dec.Reason, ReasonBandwidth)
	}
	if dec.Feasible {
		t.Error("oracle found a 12-wide path on a max-weight-10 graph")
	}
}

func TestAdmissionNoRoute(t *testing.T) {
	// Two isolated components: no route, and the oracle agrees.
	g := graph.New(3)
	e := g.MustAddEdge(0, 1)
	if err := g.SetWeight("bandwidth", e, 5); err != nil {
		t.Fatal(err)
	}
	nw, err := sim.NewNetwork(g, olsr.DefaultConfig(metric.Bandwidth()), sim.NetworkOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	nw.Run(20 * time.Second)
	dec := (&Gate{NW: nw}).Decide(0, 2, Requirements{})
	if dec.Admitted || dec.Reason != ReasonNoRoute || dec.Feasible {
		t.Errorf("isolated destination decision: %+v", dec)
	}
}
