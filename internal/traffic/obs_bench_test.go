package traffic

import (
	"testing"
	"time"

	"qolsr/internal/obs"
	"qolsr/internal/sim"
)

// runTrafficWorkload is the BenchmarkTrafficEngine/ideal workload with the
// observability layer in one of three states: absent, registry-instrumented
// (lazy collectors only), or fully on with 1-in-64 packet tracing.
func runTrafficWorkload(b *testing.B, instrument bool, traceEvery int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		nw := benchNetwork(b, sim.NewIdealMedium(0))
		if traceEvery > 0 {
			nw.Tracer = obs.NewTracer(12, traceEvery, 0)
		}
		eng := NewEngine(nw, 12)
		pairs := make([][2]int32, 16)
		for k := range pairs {
			pairs[k] = [2]int32{int32(k % 50), int32((k*7 + 13) % 50)}
		}
		flows, err := FlowsFromSpecs([]Spec{
			{Class: "cbr", Count: 8, RateBps: 16384},
			{Class: "video", Count: 8, RateBps: 16384},
		}, pairs, nw.Engine.Now())
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range flows {
			if err := eng.Add(f); err != nil {
				b.Fatal(err)
			}
		}
		if instrument {
			reg := obs.New()
			nw.Instrument(reg)
			eng.Instrument(reg)
		}
		stop := nw.Engine.Now() + 20*time.Second
		if err := eng.Start(stop); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		nw.Run(stop + time.Second)
	}
}

// BenchmarkTrafficEngineObs puts numbers on the observability layer's cost
// against BenchmarkTrafficEngine/ideal: "registry" is lazy collectors only
// (the disabled hot path), "traced" adds 1-in-64 packet path tracing.
func BenchmarkTrafficEngineObs(b *testing.B) {
	b.Run("registry", func(b *testing.B) { runTrafficWorkload(b, true, 0) })
	b.Run("traced", func(b *testing.B) { runTrafficWorkload(b, true, 64) })
}

// TestObsRegistryAddsNoAllocs is the CI guard on the tentpole's zero-cost
// claim: running the BenchmarkTrafficEngine workload with the registry
// instrumented must allocate exactly what the plain run allocates — the
// collectors are lazy, so nothing of the obs layer touches the packet hot
// path. (The companion claim — that disabled handles and a nil tracer are
// themselves zero-alloc — is pinned in internal/obs/registry_test.go.)
func TestObsRegistryAddsNoAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed; skipped in -short")
	}
	measure := func(instrument bool) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			runTrafficWorkload(b, instrument, 0)
		})
	}
	plain := measure(false)
	instrumented := measure(true)
	if extra := instrumented.AllocsPerOp() - plain.AllocsPerOp(); extra > 0 {
		t.Errorf("registry instrumentation added %d allocs/op (plain %d, instrumented %d)",
			extra, plain.AllocsPerOp(), instrumented.AllocsPerOp())
	}
}
