package traffic

import (
	"math"
	"time"
)

// Verdict is a flow's end-of-run QoS classification.
type Verdict string

const (
	// VerdictSatisfied: admitted and every requirement measured as met.
	VerdictSatisfied Verdict = "satisfied"
	// VerdictViolated: admitted, but the measured traffic broke a
	// requirement — the admission gate's false accept, the honest cost
	// of optimistic neighbor selection.
	VerdictViolated Verdict = "violated"
	// VerdictCorrectReject: rejected while the oracle also found no
	// satisfying path — the gate protected the network.
	VerdictCorrectReject Verdict = "correct-reject"
	// VerdictFalseReject: rejected although a satisfying path existed —
	// the selection starved the protocol of the links it needed.
	VerdictFalseReject Verdict = "false-reject"
)

// BandwidthDeliveryFloor is the delivery ratio below which a flow with a
// bandwidth floor counts as violated: a path that drops more than this
// fraction of the offered packets is not providing the admitted bandwidth,
// whatever its nominal capacity.
const BandwidthDeliveryFloor = 0.9

// FlowReport is one flow's end-of-run record.
type FlowReport struct {
	ID        int
	Class     string
	Src, Dst  int32
	Rejected  bool
	Reason    string
	Verdict   Verdict
	Decision  Decision
	Sent      uint64
	Delivered uint64
	// Delivery is Delivered/Sent over the flow's whole life. Packets
	// still queued at the run horizon count as sent but undelivered —
	// negligible for bounded queues (the harness drains them), and part
	// of the violation signal under sustained overload.
	Delivery   float64
	Throughput float64 // delivered bytes per active virtual second
	DelayMean  time.Duration
	DelayP50   time.Duration
	DelayP95   time.Duration
	DelayP99   time.Duration
	Jitter     time.Duration // mean inter-packet delay variation
	HopsMean   float64
}

// ClassReport aggregates one flow class (or the whole mix, Class "all").
type ClassReport struct {
	Class string
	// Verdict counts.
	Flows, Admitted, Satisfied, Violated, CorrectReject, FalseReject int
	// Packet totals over the class's admitted flows.
	Sent, Delivered uint64
	Delivery        float64
	// Throughput is the class's aggregate delivered rate (sum over
	// flows), in bytes per virtual second.
	Throughput float64
	// Delay quantiles over every delivered packet of the class.
	DelayMean, DelayP50, DelayP95, DelayP99 time.Duration
	// Jitter is the mean inter-packet delay variation over the class.
	Jitter   time.Duration
	HopsMean float64
}

// ViolationRatio is violated / admitted — the fraction of admitted flows
// whose QoS the network then failed to honor (0 when nothing was admitted).
func (c ClassReport) ViolationRatio() float64 {
	if c.Admitted == 0 {
		return 0
	}
	return float64(c.Violated) / float64(c.Admitted)
}

// Report is the engine's end-of-run accounting.
type Report struct {
	// Flows holds one record per flow, in flow-ID order.
	Flows []FlowReport
	// Classes aggregates per flow class, in first-seen order.
	Classes []ClassReport
	// Total aggregates the whole mix (Class "all").
	Total ClassReport
}

// violated measures an admitted flow's traffic against its requirements.
func (fs *flowState) violated() bool {
	req := fs.Req
	if req.zero() || fs.sent == 0 {
		return false
	}
	if fs.delivered == 0 {
		return true
	}
	ratio := float64(fs.delivered) / float64(fs.sent)
	if req.MinBandwidth > 0 && ratio < BandwidthDeliveryFloor {
		return true
	}
	if req.MaxDelay > 0 && secsDur(fs.p95.Value()) > req.MaxDelay {
		return true
	}
	if req.MaxJitter > 0 && secsDur(fs.jitter.Mean()) > req.MaxJitter {
		return true
	}
	return false
}

// secsDur converts a seconds value to a Duration, mapping NaN to 0.
func secsDur(s float64) time.Duration {
	if math.IsNaN(s) {
		return 0
	}
	return time.Duration(s * float64(time.Second))
}

// Report builds the end-of-run accounting. Call it after the network has
// drained past the engine's stop time; it is a pure read.
func (e *Engine) Report() *Report {
	rep := &Report{}
	classOf := make(map[string]*ClassReport, len(e.classes))
	for _, name := range e.classes {
		rep.Classes = append(rep.Classes, ClassReport{Class: name})
	}
	for i := range rep.Classes {
		classOf[rep.Classes[i].Class] = &rep.Classes[i]
	}
	total := &rep.Total
	total.Class = "all"

	for _, fs := range e.flows {
		fr := FlowReport{
			ID:        fs.ID,
			Class:     fs.Class,
			Src:       fs.Src,
			Dst:       fs.Dst,
			Decision:  fs.decision,
			Sent:      fs.sent,
			Delivered: fs.delivered,
		}
		if fs.sent > 0 {
			fr.Delivery = float64(fs.delivered) / float64(fs.sent)
		}
		if span := (e.stop - fs.Start).Seconds(); span > 0 {
			fr.Throughput = float64(fs.bytesDelivered) / span
		}
		fr.DelayMean = secsDur(fs.delay.Mean())
		fr.DelayP50 = secsDur(fs.p50.Value())
		fr.DelayP95 = secsDur(fs.p95.Value())
		fr.DelayP99 = secsDur(fs.p99.Value())
		fr.Jitter = secsDur(fs.jitter.Mean())
		if fs.hops.N() > 0 {
			fr.HopsMean = fs.hops.Mean()
		}

		cls := classOf[fs.Class]
		cls.Flows++
		total.Flows++
		switch {
		case !fs.decided || fs.decision.Admitted:
			// An undecided flow (start time past the run end) counts as
			// admitted-and-satisfied-by-vacuity only if it was actually
			// decided; otherwise it is skipped from verdicts below.
			if fs.decided {
				cls.Admitted++
				total.Admitted++
				if fs.violated() {
					fr.Verdict = VerdictViolated
					cls.Violated++
					total.Violated++
				} else {
					fr.Verdict = VerdictSatisfied
					cls.Satisfied++
					total.Satisfied++
				}
			}
		case fs.decision.Feasible:
			fr.Rejected = true
			fr.Reason = fs.decision.Reason
			fr.Verdict = VerdictFalseReject
			cls.FalseReject++
			total.FalseReject++
		default:
			fr.Rejected = true
			fr.Reason = fs.decision.Reason
			fr.Verdict = VerdictCorrectReject
			cls.CorrectReject++
			total.CorrectReject++
		}
		rep.Flows = append(rep.Flows, fr)

		cls.Sent += fs.sent
		cls.Delivered += fs.delivered
		cls.Throughput += fr.Throughput
		total.Sent += fs.sent
		total.Delivered += fs.delivered
		total.Throughput += fr.Throughput
	}

	for i := range rep.Classes {
		cls := &rep.Classes[i]
		fillClassStats(cls, e.classAcc[cls.Class])
	}
	fillClassStats(total, &e.totalAcc)
	return rep
}

// fillClassStats copies an accumulator's distribution into a class report.
func fillClassStats(cls *ClassReport, acc *accum) {
	if acc == nil {
		return
	}
	if cls.Sent > 0 {
		cls.Delivery = float64(cls.Delivered) / float64(cls.Sent)
	}
	cls.DelayMean = secsDur(acc.delay.Mean())
	cls.DelayP50 = secsDur(acc.p50.Value())
	cls.DelayP95 = secsDur(acc.p95.Value())
	cls.DelayP99 = secsDur(acc.p99.Value())
	cls.Jitter = secsDur(acc.jitter.Mean())
	if acc.hops.N() > 0 {
		cls.HopsMean = acc.hops.Mean()
	}
}
