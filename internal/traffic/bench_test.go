package traffic

import (
	"math/rand"
	"testing"
	"time"

	"qolsr/internal/geom"
	"qolsr/internal/metric"
	"qolsr/internal/olsr"
	"qolsr/internal/sim"
)

// benchNetwork builds a 50-node unit-disk network and converges it.
func benchNetwork(b testing.TB, medium sim.Medium) *sim.Network {
	b.Helper()
	const n = 50
	field := geom.Field{Width: 600, Height: 600}
	rng := rand.New(rand.NewSource(12))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * field.Width, Y: rng.Float64() * field.Height}
	}
	g, err := sim.UnitDiskTopology(field, 160, pts, "bandwidth", 12)
	if err != nil {
		b.Fatal(err)
	}
	nw, err := sim.NewNetwork(g, olsr.DefaultConfig(metric.Bandwidth()), sim.NetworkOptions{Seed: 12, Medium: medium})
	if err != nil {
		b.Fatal(err)
	}
	nw.Start()
	nw.Run(15 * time.Second)
	return nw
}

// benchTraffic drives a 16-flow CBR+video mix for 20 virtual seconds and
// reports packets per wall-clock second.
func benchTraffic(b *testing.B, makeMedium func() sim.Medium) {
	b.ReportAllocs()
	var packets uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		nw := benchNetwork(b, makeMedium())
		eng := NewEngine(nw, 12)
		pairs := make([][2]int32, 16)
		for k := range pairs {
			pairs[k] = [2]int32{int32(k % 50), int32((k*7 + 13) % 50)}
		}
		flows, err := FlowsFromSpecs([]Spec{
			{Class: "cbr", Count: 8, RateBps: 16384},
			{Class: "video", Count: 8, RateBps: 16384},
		}, pairs, nw.Engine.Now())
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range flows {
			if err := eng.Add(f); err != nil {
				b.Fatal(err)
			}
		}
		stop := nw.Engine.Now() + 20*time.Second
		if err := eng.Start(stop); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		nw.Run(stop + time.Second)
		packets += eng.Counters().Sent
	}
	b.ReportMetric(float64(packets)/b.Elapsed().Seconds(), "pkts/s")
}

// BenchmarkTrafficEngine measures sustained-flow forwarding throughput at
// 50 nodes: packets driven through the live routing tables per wall-clock
// second, on the ideal MAC and on the lossy queued radio.
func BenchmarkTrafficEngine(b *testing.B) {
	b.Run("ideal", func(b *testing.B) {
		benchTraffic(b, func() sim.Medium { return sim.NewIdealMedium(0) })
	})
	b.Run("lossy", func(b *testing.B) {
		benchTraffic(b, func() sim.Medium {
			return sim.NewLossyMedium(sim.LossyConfig{Loss: 0.05, Seed: 12})
		})
	})
}
