package traffic

import (
	"testing"
	"time"

	"qolsr/internal/sim"
)

// BenchmarkControlPlaneOnly isolates the protocol-maintenance cost of the
// traffic benchmark's timed region: the same converged 50-node network run
// for the same 21 virtual seconds, with no flows. The difference against
// BenchmarkTrafficEngine/ideal is the data plane's marginal cost.
func BenchmarkControlPlaneOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		nw := benchNetwork(b, sim.NewIdealMedium(0))
		b.StartTimer()
		nw.Run(nw.Engine.Now() + 21*time.Second)
	}
}
