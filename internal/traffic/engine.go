package traffic

import (
	"fmt"
	"time"

	"qolsr/internal/obs"
	"qolsr/internal/rng"
	"qolsr/internal/sim"
	"qolsr/internal/stats"
)

// Counters are the engine's cumulative packet totals, cheap to snapshot —
// harnesses diff them per sampling window.
type Counters struct {
	// Sent counts packets handed to the data plane.
	Sent uint64
	// Completed counts packets that finished (delivered or dropped).
	Completed uint64
	// Delivered counts packets that reached their destination.
	Delivered uint64
	// BytesDelivered sums the sizes of delivered packets.
	BytesDelivered uint64
}

// accum aggregates one traffic population's measured QoS: packet counts,
// delivered-delay distribution (streaming quantiles) and inter-packet delay
// variation.
type accum struct {
	sent, completed, delivered uint64
	bytesSent, bytesDelivered  uint64
	// admitted / rejected count admission-gate decisions (class and total
	// accumulators only; flows carry the Decision itself).
	admitted, rejected uint64
	hops               stats.Accumulator
	delay              stats.Accumulator
	p50, p95, p99      *stats.Quantile
	jitter             stats.Accumulator
}

func newAccum() accum {
	return accum{
		p50: stats.NewQuantile(0.50),
		p95: stats.NewQuantile(0.95),
		p99: stats.NewQuantile(0.99),
	}
}

// record folds one delivered packet.
func (a *accum) record(hops int, latency time.Duration) {
	a.hops.Add(float64(hops))
	secs := latency.Seconds()
	a.delay.Add(secs)
	a.p50.Add(secs)
	a.p95.Add(secs)
	a.p99.Add(secs)
}

// flowState is one flow's live state inside the engine. It is also the
// flow's departure event: once admitted, the flowState reschedules itself
// for every packet, so a sustained flow costs zero allocations per packet
// on the scheduling side.
type flowState struct {
	Flow
	eng      *Engine
	cls      *accum // the flow's class accumulator
	src      source
	decision Decision
	decided  bool
	seq      uint64 // emitted-packet sequence

	accum
	lastDelay time.Duration
	hasLast   bool
}

// Fire implements des.Event: emit the flow's next packet and book the one
// after, exactly the emit-then-reschedule cycle the closure API used to
// allocate per packet.
func (fs *flowState) Fire(now time.Duration) {
	e := fs.eng
	e.emit(fs)
	if next := fs.src.next(now, fs.seq); next <= e.stop {
		e.nw.Engine.Queue.At(next, fs)
	}
}

// Engine drives sustained flows through a live network: each admitted flow
// emits packets on its class's arrival process, every packet traverses the
// routing tables and the radio medium hop by hop (contending for the
// per-node transmit queues like any other frame), and deliveries feed the
// per-flow accounting. The engine schedules everything on the network's
// own event engine; the caller advances virtual time with Network.Run.
type Engine struct {
	nw      *sim.Network
	gate    Gate
	base    uint64
	stop    time.Duration
	started bool

	flows    []*flowState
	classes  []string
	classAcc map[string]*accum
	totalAcc accum
	counters Counters
}

// NewEngine builds a traffic engine over the network. seed keys every
// packet arrival and size draw (domain-separated from the network's other
// streams).
func NewEngine(nw *sim.Network, seed int64) *Engine {
	return &Engine{
		nw:       nw,
		gate:     Gate{NW: nw},
		base:     rng.Mix(uint64(seed), 0x7F10), // domain-separate the flow draws
		classAcc: make(map[string]*accum),
		totalAcc: newAccum(),
	}
}

// Gate returns the engine's admission controller.
func (e *Engine) Gate() *Gate { return &e.gate }

// Add registers one flow. All flows must be added before Start; the flow's
// ID must equal its Add order (it keys the flow's RNG draws).
func (e *Engine) Add(f Flow) error {
	if e.started {
		return fmt.Errorf("traffic: Add after Start")
	}
	if err := CheckClass(f.Class); err != nil {
		return err
	}
	if f.ID != len(e.flows) {
		return fmt.Errorf("traffic: flow ID %d out of order (want %d)", f.ID, len(e.flows))
	}
	if f.Src == f.Dst || f.Src < 0 || f.Dst < 0 || int(f.Src) >= e.nw.Phys.N() || int(f.Dst) >= e.nw.Phys.N() {
		return fmt.Errorf("traffic: flow %d endpoints %d->%d invalid", f.ID, f.Src, f.Dst)
	}
	if f.RateBps <= 0 || f.PacketBytes < MinPacketBytes {
		return fmt.Errorf("traffic: flow %d needs positive rate and packet size >= %d", f.ID, MinPacketBytes)
	}
	fs := &flowState{Flow: f, eng: e, accum: newAccum()}
	fs.src = newSource(e.base, f)
	e.flows = append(e.flows, fs)
	if _, ok := e.classAcc[f.Class]; !ok {
		e.classes = append(e.classes, f.Class)
		a := newAccum()
		e.classAcc[f.Class] = &a
	}
	fs.cls = e.classAcc[f.Class]
	return nil
}

// FlowsFromSpecs expands a mix of specs into concrete flows over the given
// endpoint pairs, in spec order: spec i's Count flows take the next Count
// pairs. It errors when the mix needs more pairs than provided.
func FlowsFromSpecs(specs []Spec, pairs [][2]int32, defaultStart time.Duration) ([]Flow, error) {
	var flows []Flow
	next := 0
	for _, sp := range specs {
		sp = sp.WithDefaults()
		if err := sp.Validate(); err != nil {
			return nil, err
		}
		start := sp.Start
		if start == 0 {
			start = defaultStart
		}
		for k := 0; k < sp.Count; k++ {
			if next >= len(pairs) {
				return nil, fmt.Errorf("traffic: mix needs %d endpoint pairs, have %d", next+1, len(pairs))
			}
			flows = append(flows, Flow{
				ID:          len(flows),
				Class:       sp.Class,
				Src:         pairs[next][0],
				Dst:         pairs[next][1],
				RateBps:     sp.RateBps,
				PacketBytes: sp.PacketBytes,
				Start:       start,
				Req:         sp.QoS,
			})
			next++
		}
	}
	return flows, nil
}

// Start schedules every flow's admission decision at its start time; flows
// emit no packet after stop. Call once, before advancing the network past
// the earliest flow start.
func (e *Engine) Start(stop time.Duration) error {
	if e.started {
		return fmt.Errorf("traffic: Start called twice")
	}
	e.started = true
	e.stop = stop
	for _, fs := range e.flows {
		fs := fs
		at := fs.Start
		if now := e.nw.Engine.Now(); at < now {
			at = now
		}
		e.nw.Engine.At(at, func() { e.admit(fs) })
	}
	return nil
}

// admit runs the admission gate on one flow and, when admitted, opens its
// packet schedule.
func (e *Engine) admit(fs *flowState) {
	fs.decision = e.gate.Decide(fs.Src, fs.Dst, fs.Req)
	fs.decided = true
	if !fs.decision.Admitted {
		fs.cls.rejected++
		e.totalAcc.rejected++
		return
	}
	fs.cls.admitted++
	e.totalAcc.admitted++
	if first := fs.src.first(e.nw.Engine.Now()); first <= e.stop {
		e.nw.Engine.Queue.At(first, fs)
	}
}

// emit sends one packet of fs on the allocation-free data path; the packet
// completes through PacketDone with the flow and size packed in the cookie.
func (e *Engine) emit(fs *flowState) {
	seq := fs.seq
	fs.seq++
	size := fs.src.size(seq)

	fs.sent++
	fs.bytesSent += uint64(size)
	fs.cls.sent++
	fs.cls.bytesSent += uint64(size)
	e.counters.Sent++

	// Path tracing samples by packet identity (flow, seq) — the keyed draw
	// lives in the tracer; with tracing off this is one nil compare.
	var pt *obs.PacketTrace
	if tr := e.nw.Tracer; tr != nil {
		pt = tr.Start(uint32(fs.ID), seq)
	}
	e.nw.SendDataTraced(fs.Src, fs.Dst, size, e, uint64(fs.ID)<<32|uint64(uint32(size)), pt)
}

// PacketDone implements sim.DataSink: one packet of the cookie's flow
// finished (delivered or dropped), fold it into the accounting.
func (e *Engine) PacketDone(cookie uint64, delivered bool, hops int, latency time.Duration) {
	fs := e.flows[cookie>>32]
	size := uint64(uint32(cookie))
	cls := fs.cls
	fs.completed++
	cls.completed++
	e.counters.Completed++
	if !delivered {
		return
	}
	fs.delivered++
	fs.bytesDelivered += size
	cls.delivered++
	cls.bytesDelivered += size
	e.counters.Delivered++
	e.counters.BytesDelivered += size
	fs.record(hops, latency)
	cls.record(hops, latency)
	e.totalAcc.record(hops, latency)
	if fs.hasLast {
		diff := latency - fs.lastDelay
		if diff < 0 {
			diff = -diff
		}
		fs.jitter.Add(diff.Seconds())
		cls.jitter.Add(diff.Seconds())
		e.totalAcc.jitter.Add(diff.Seconds())
	}
	fs.lastDelay = latency
	fs.hasLast = true
}

// Counters snapshots the engine's cumulative packet totals.
func (e *Engine) Counters() Counters { return e.counters }

// Flows returns the number of registered flows.
func (e *Engine) Flows() int { return len(e.flows) }
