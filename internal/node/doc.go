// Package node runs the OLSR/QOLSR protocol machinery of internal/olsr as a
// deployable daemon over real transports: the step from reproduction to
// system.
//
// The simulator drives olsr.Node with virtual timestamps; a Daemon drives the
// very same state machine with wall-clock elapsed time — HELLO and TC
// emission on real timers, soft-state expiry from the monotonic clock, frames
// crossing a Transport (UDP sockets in deployment, an in-memory fabric in
// tests) instead of a simulated radio. The protocol core is untouched: one
// implementation, two clocks.
//
// The pieces:
//
//   - wire.go — the versioned frame layer. Every datagram is a Frame: magic,
//     version, kind (control or data), sender identifier, and the echo
//     timestamp triplet (TxTime/EchoTime/EchoDelay) that lets each link end
//     measure real round-trip time with no clock synchronisation. Control
//     frames carry the olsr HELLO/TC wire encodings unchanged; data frames
//     carry routable DataPackets. Decoding is hardened against hostile
//     input: bad magic, foreign versions, truncations and length mismatches
//     are errors, never panics.
//   - transport.go, memnet.go — the Transport interface with the UDP
//     implementation and the in-memory MemNetwork used by tests (per-sender
//     FIFO delivery, optional loss injection).
//   - daemon.go, peers.go, rtt.go — the Daemon event loop: a static peer
//     table (node ID → address) standing in for radio range, per-peer
//     smoothed RTT estimation from the frame echoes, and link sensing that
//     feeds olsr.Node.UpdateLink with either measured RTT delay weights
//     (Config.Measured) or operator-declared oracle weights. Data packets
//     are forwarded hop by hop through the daemon's own routing table.
//   - status.go — an introspection snapshot (neighbors, measured RTTs, MPR
//     set, selectors, routing table, traffic counters) served as JSON over a
//     loopback HTTP endpoint.
//
// cmd/qolsr-node wraps a Daemon in a CLI; the integration test in this
// package converges a 20-daemon mesh on 127.0.0.1 UDP ports and routes live
// data through it.
package node
