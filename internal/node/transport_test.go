package node

import (
	"fmt"
	"testing"
	"time"
)

// TestMemNetworkFIFOPerSender locks the fabric's delivery contract: frames
// from one sender to one receiver arrive in send order, even when another
// sender interleaves.
func TestMemNetworkFIFOPerSender(t *testing.T) {
	mn := NewMemNetwork()
	rx, err := mn.Listen("rx")
	if err != nil {
		t.Fatal(err)
	}
	a, _ := mn.Listen("a")
	b, _ := mn.Listen("b")
	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send("rx", []byte(fmt.Sprintf("a-%03d", i))); err != nil {
			t.Fatal(err)
		}
		if err := b.Send("rx", []byte(fmt.Sprintf("b-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	var nextA, nextB int
	for i := 0; i < 2*n; i++ {
		select {
		case in := <-rx.Inbound():
			switch in.From {
			case "a":
				want := fmt.Sprintf("a-%03d", nextA)
				if string(in.Data) != want {
					t.Fatalf("from a: got %q, want %q", in.Data, want)
				}
				nextA++
			case "b":
				want := fmt.Sprintf("b-%03d", nextB)
				if string(in.Data) != want {
					t.Fatalf("from b: got %q, want %q", in.Data, want)
				}
				nextB++
			default:
				t.Fatalf("unknown sender %q", in.From)
			}
		case <-time.After(time.Second):
			t.Fatalf("timed out after %d deliveries", i)
		}
	}
	if nextA != n || nextB != n {
		t.Fatalf("delivered a=%d b=%d, want %d each", nextA, nextB, n)
	}
}

func TestMemNetworkSemantics(t *testing.T) {
	mn := NewMemNetwork()
	a, err := mn.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mn.Listen("a"); err == nil {
		t.Fatal("double bind accepted")
	}
	// Sends to nowhere vanish silently, like UDP.
	if err := a.Send("ghost", []byte("x")); err != nil {
		t.Fatalf("send to unknown addr: %v", err)
	}
	// Frames are copied on delivery: mutating the sent buffer afterwards
	// must not corrupt the receiver's view.
	b, _ := mn.Listen("b")
	buf := []byte("fresh")
	if err := a.Send("b", buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "stale")
	in := <-b.Inbound()
	if string(in.Data) != "fresh" {
		t.Fatalf("delivered frame aliases sender buffer: %q", in.Data)
	}
	// Loss injection drops everything when told to.
	mn.SetDrop(func(from, to string) bool { return true })
	a.Send("b", []byte("lost"))
	mn.SetDrop(nil)
	a.Send("b", []byte("kept"))
	in = <-b.Inbound()
	if string(in.Data) != "kept" {
		t.Fatalf("got %q through a dropping fabric", in.Data)
	}
	// Close ends the stream exactly once.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-b.Inbound(); ok {
		t.Fatal("inbound channel still open after Close")
	}
}

// TestUDPTransportLoopback exercises the real-socket transport: bind two
// ephemeral loopback ports, exchange datagrams both ways, then close and
// observe the stream end.
func TestUDPTransportLoopback(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Send(b.LocalAddr(), []byte("ping")); err != nil {
		t.Fatal(err)
	}
	select {
	case in := <-b.Inbound():
		if string(in.Data) != "ping" {
			t.Fatalf("got %q, want ping", in.Data)
		}
		if in.From != a.LocalAddr() {
			t.Fatalf("from %q, want %q", in.From, a.LocalAddr())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("datagram never arrived")
	}
	if err := b.Send(a.LocalAddr(), []byte("pong")); err != nil {
		t.Fatal(err)
	}
	select {
	case in := <-a.Inbound():
		if string(in.Data) != "pong" {
			t.Fatalf("got %q, want pong", in.Data)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reply never arrived")
	}

	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-a.Inbound():
		if ok {
			t.Fatal("unexpected datagram after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("inbound channel not closed after Close")
	}
}

func TestParsePeerList(t *testing.T) {
	peers, err := ParsePeerList("2@127.0.0.1:9002, 3@127.0.0.1:9003#2.5,")
	if err != nil {
		t.Fatal(err)
	}
	want := []Peer{
		{ID: 2, Addr: "127.0.0.1:9002"},
		{ID: 3, Addr: "127.0.0.1:9003", Weight: 2.5},
	}
	if len(peers) != len(want) {
		t.Fatalf("got %d peers, want %d", len(peers), len(want))
	}
	for i := range want {
		if peers[i] != want[i] {
			t.Fatalf("peer %d = %+v, want %+v", i, peers[i], want[i])
		}
	}
	for _, bad := range []string{"nope", "x@1:2", "1@", "1@addr#w"} {
		if _, err := ParsePeerList(bad); err == nil {
			t.Fatalf("ParsePeerList(%q) accepted", bad)
		}
	}
}
