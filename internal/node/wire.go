package node

import (
	"encoding/binary"
	"fmt"
)

// The frame layer wraps every datagram a daemon sends — the olsr HELLO/TC
// encodings and routable data packets alike — in a fixed header that makes
// the wire format versioned, attributable and measurable:
//
//	offset size field
//	0      4    magic "QLSR"
//	4      1    version (FrameVersion)
//	5      1    kind (KindControl | KindData)
//	6      8    sender node identifier
//	14     8    TxTime: sender-clock nanoseconds at transmission
//	22     8    EchoTime: the TxTime of the newest frame received from the
//	            destination (0 when none has been received yet)
//	30     8    EchoDelay: nanoseconds the echoed stamp spent at the sender
//	38     2    payload length
//	40     ...  payload
//
// The TxTime/EchoTime/EchoDelay triplet is the RTT instrument: a node
// stamps its own clock on every transmission, the destination echoes the
// newest stamp back together with how long it held it, and the original
// sender computes rtt = now − EchoTime − EchoDelay entirely in its own
// clock — no synchronisation between the two ends is needed. The periodic
// HELLO exchange therefore doubles as a continuous round-trip probe stream,
// which is what feeds measured delay weights into the protocol.
//
// All integers are big-endian. Decoding faces untrusted network bytes and
// must never panic or allocate more than the datagram holds.

// FrameVersion is the wire format version this implementation speaks.
// Frames carrying any other version are rejected by UnmarshalFrame.
const FrameVersion = 1

// frameMagic guards against cross-protocol datagrams hitting our port.
var frameMagic = [4]byte{'Q', 'L', 'S', 'R'}

// FrameKind discriminates the payload of a frame.
type FrameKind uint8

// Frame kinds.
const (
	// KindControl frames carry one olsr wire message (HELLO or TC).
	KindControl FrameKind = iota + 1
	// KindData frames carry one DataPacket routed through daemon tables.
	KindData
)

// String implements fmt.Stringer.
func (k FrameKind) String() string {
	switch k {
	case KindControl:
		return "control"
	case KindData:
		return "data"
	default:
		return fmt.Sprintf("FrameKind(%d)", int(k))
	}
}

const (
	frameHeaderLen = 4 + 1 + 1 + 8 + 8 + 8 + 8 + 2
	// MaxPayload bounds a frame's payload so every frame fits one UDP
	// datagram with headroom to spare.
	MaxPayload = 65000
)

// Frame is one decoded datagram.
type Frame struct {
	Kind   FrameKind
	Sender int64
	// TxTime is the sender's monotonic clock (nanoseconds) at
	// transmission. It is opaque to the receiver, which echoes it back
	// verbatim; 0 means unset.
	TxTime uint64
	// EchoTime is the TxTime of the newest frame the sender had received
	// from this frame's destination, or 0 if none.
	EchoTime uint64
	// EchoDelay is how long (nanoseconds) the sender held EchoTime before
	// transmitting this frame; the destination subtracts it so processing
	// time does not inflate the measured round trip.
	EchoDelay uint64
	// Payload is the encapsulated message bytes.
	Payload []byte
}

// MarshalFrame encodes f into a fresh byte slice.
func MarshalFrame(f *Frame) ([]byte, error) {
	if len(f.Payload) > MaxPayload {
		return nil, fmt.Errorf("node: frame payload too large (%d bytes)", len(f.Payload))
	}
	if f.Kind != KindControl && f.Kind != KindData {
		return nil, fmt.Errorf("node: cannot marshal frame of kind %d", f.Kind)
	}
	buf := make([]byte, 0, frameHeaderLen+len(f.Payload))
	buf = append(buf, frameMagic[:]...)
	buf = append(buf, FrameVersion, byte(f.Kind))
	buf = binary.BigEndian.AppendUint64(buf, uint64(f.Sender))
	buf = binary.BigEndian.AppendUint64(buf, f.TxTime)
	buf = binary.BigEndian.AppendUint64(buf, f.EchoTime)
	buf = binary.BigEndian.AppendUint64(buf, f.EchoDelay)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(f.Payload)))
	buf = append(buf, f.Payload...)
	return buf, nil
}

// UnmarshalFrame decodes one datagram. The returned Frame's Payload aliases
// buf. Truncated, oversize, foreign-magic and foreign-version input returns
// an error; no input panics.
func UnmarshalFrame(buf []byte) (*Frame, error) {
	if len(buf) < frameHeaderLen {
		return nil, fmt.Errorf("node: frame too short (%d bytes)", len(buf))
	}
	if [4]byte(buf[:4]) != frameMagic {
		return nil, fmt.Errorf("node: bad frame magic %x", buf[:4])
	}
	if buf[4] != FrameVersion {
		return nil, fmt.Errorf("node: unsupported frame version %d (speak %d)", buf[4], FrameVersion)
	}
	kind := FrameKind(buf[5])
	if kind != KindControl && kind != KindData {
		return nil, fmt.Errorf("node: unknown frame kind %d", buf[5])
	}
	n := int(binary.BigEndian.Uint16(buf[38:40]))
	if n > MaxPayload {
		return nil, fmt.Errorf("node: frame payload too large (%d bytes claimed)", n)
	}
	if len(buf) != frameHeaderLen+n {
		return nil, fmt.Errorf("node: frame length mismatch (%d bytes claimed, %d present)",
			n, len(buf)-frameHeaderLen)
	}
	return &Frame{
		Kind:      kind,
		Sender:    int64(binary.BigEndian.Uint64(buf[6:14])),
		TxTime:    binary.BigEndian.Uint64(buf[14:22]),
		EchoTime:  binary.BigEndian.Uint64(buf[22:30]),
		EchoDelay: binary.BigEndian.Uint64(buf[30:38]),
		Payload:   buf[frameHeaderLen:],
	}, nil
}

// DataPacket is the payload of a KindData frame: a unicast application
// packet routed hop by hop through the daemons' own routing tables.
//
//	offset size field
//	0      8    destination node identifier
//	8      8    source node identifier
//	16     8    sequence number (per source)
//	24     1    TTL, decremented per forward
//	25     2    body length
//	27     ...  body
type DataPacket struct {
	Dst, Src int64
	Seq      uint64
	TTL      uint8
	Body     []byte
}

const (
	dataHeaderLen = 8 + 8 + 8 + 1 + 2
	// MaxDataBody bounds a data packet's body so the encoded packet fits a
	// frame payload.
	MaxDataBody = MaxPayload - dataHeaderLen
)

// MarshalData encodes p into a fresh byte slice.
func MarshalData(p *DataPacket) ([]byte, error) {
	if len(p.Body) > MaxDataBody {
		return nil, fmt.Errorf("node: data body too large (%d bytes)", len(p.Body))
	}
	buf := make([]byte, 0, dataHeaderLen+len(p.Body))
	buf = binary.BigEndian.AppendUint64(buf, uint64(p.Dst))
	buf = binary.BigEndian.AppendUint64(buf, uint64(p.Src))
	buf = binary.BigEndian.AppendUint64(buf, p.Seq)
	buf = append(buf, p.TTL)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(p.Body)))
	buf = append(buf, p.Body...)
	return buf, nil
}

// UnmarshalData decodes a data packet. The returned Body aliases buf.
func UnmarshalData(buf []byte) (*DataPacket, error) {
	if len(buf) < dataHeaderLen {
		return nil, fmt.Errorf("node: data packet too short (%d bytes)", len(buf))
	}
	n := int(binary.BigEndian.Uint16(buf[25:27]))
	if len(buf) != dataHeaderLen+n {
		return nil, fmt.Errorf("node: data length mismatch (%d bytes claimed, %d present)",
			n, len(buf)-dataHeaderLen)
	}
	return &DataPacket{
		Dst:  int64(binary.BigEndian.Uint64(buf[0:8])),
		Src:  int64(binary.BigEndian.Uint64(buf[8:16])),
		Seq:  binary.BigEndian.Uint64(buf[16:24]),
		TTL:  buf[24],
		Body: buf[dataHeaderLen:],
	}, nil
}
