package node

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"
)

// NeighborStatus is one configured peer in a status report.
type NeighborStatus struct {
	ID   int64  `json:"id"`
	Addr string `json:"addr"`
	// Weight is the current link weight the routing graph uses, absent
	// while the link is unproven (no HELLO yet, or no completed round
	// trip in measured mode).
	Weight float64 `json:"weight,omitempty"`
	Linked bool    `json:"linked"`
	// RTTms is the smoothed round-trip time in milliseconds, absent
	// before the first completed round trip.
	RTTms float64 `json:"rtt_ms,omitempty"`
	// LastHeardS is seconds since the peer's newest frame, -1 if never.
	LastHeardS float64 `json:"last_heard_s"`
}

// RouteStatus is one routing-table entry in a status report.
type RouteStatus struct {
	Dst     int64   `json:"dst"`
	NextHop int64   `json:"next_hop"`
	Value   float64 `json:"value"`
	Hops    int     `json:"hops"`
}

// StatusReport is a consistent snapshot of a daemon's protocol state,
// assembled inside the event loop.
type StatusReport struct {
	ID        int64            `json:"id"`
	Addr      string           `json:"addr"`
	UptimeS   float64          `json:"uptime_s"`
	Mode      string           `json:"mode"` // "measured" or "oracle"
	Metric    string           `json:"metric"`
	Neighbors []NeighborStatus `json:"neighbors"`
	MPRs      []int64          `json:"mprs"`
	Selectors []int64          `json:"selectors"`
	Routes    []RouteStatus    `json:"routes"`
	Stats     Stats            `json:"stats"`
}

// buildStatus assembles the snapshot. Runs on the event-loop goroutine.
func (d *Daemon) buildStatus() StatusReport {
	now := d.now()
	r := StatusReport{
		ID:      d.cfg.ID,
		Addr:    d.tr.LocalAddr(),
		UptimeS: now.Seconds(),
		Mode:    "oracle",
		Metric:  d.cfg.Metric.Name(),
		Stats:   d.metrics.stats(d.tr),
	}
	if d.cfg.Measured {
		r.Mode = "measured"
	}
	for _, id := range d.order {
		p := d.peers[id]
		ns := NeighborStatus{ID: id, Addr: p.addr, LastHeardS: -1}
		if w, ok := d.node.LinkWeight(id, now); ok {
			ns.Weight, ns.Linked = w, true
		}
		if rtt, ok := p.rtt.smoothed(); ok {
			ns.RTTms = float64(rtt) / float64(time.Millisecond)
		}
		if p.heard > 0 {
			ns.LastHeardS = (now - p.heard).Seconds()
		}
		r.Neighbors = append(r.Neighbors, ns)
	}
	r.MPRs = d.node.MPRSet(now)
	r.Selectors = d.node.Selectors(now)
	if routes, err := d.node.Routes(now); err == nil {
		for i := 0; i < routes.Len(); i++ {
			dst, rt := routes.At(i)
			r.Routes = append(r.Routes, RouteStatus{
				Dst: dst, NextHop: rt.NextHop,
				Value: rt.Value, Hops: rt.Hops,
			})
		}
	}
	return r
}

// Status returns a consistent snapshot of the daemon's state. It blocks
// until the run loop serves the request and fails once the daemon stopped.
func (d *Daemon) Status() (StatusReport, error) {
	req := make(chan StatusReport, 1)
	select {
	case d.statusCh <- req:
		select {
		case r := <-req:
			return r, nil
		case <-d.done:
			return StatusReport{}, errors.New("node: daemon stopped")
		}
	case <-d.done:
		return StatusReport{}, errors.New("node: daemon stopped")
	}
}

// StatusHandler returns an HTTP handler serving the daemon's StatusReport
// as JSON on "/" and "/status", and its metrics registry in Prometheus text
// format on "/metrics". Bind it to a loopback listener: the report is
// operator introspection, not a public API.
func (d *Daemon) StatusHandler() http.Handler {
	mux := http.NewServeMux()
	serve := func(w http.ResponseWriter, req *http.Request) {
		r, err := d.Status()
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r)
	}
	mux.HandleFunc("/", serve)
	mux.HandleFunc("/status", serve)
	mux.Handle("/metrics", d.MetricsHandler())
	return mux
}
