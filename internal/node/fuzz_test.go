package node

import (
	"bytes"
	"testing"

	"qolsr/internal/olsr"
)

// The frame and data codecs sit directly on the UDP socket: every byte they
// see is untrusted. The fuzzers assert no input panics and that accepted
// input re-encodes bit-identically — the frame layer's wire form is
// canonical, so anything that decodes is something a daemon could have
// sent.

func FuzzUnmarshalFrame(f *testing.F) {
	mustFrame := func(fr *Frame) []byte {
		buf, err := MarshalFrame(fr)
		if err != nil {
			panic(err)
		}
		return buf
	}
	f.Add(mustFrame(&Frame{Kind: KindControl, Sender: 1, TxTime: 100,
		Payload: olsr.MarshalHello(&olsr.Hello{Origin: 1, Seq: 3})}))
	f.Add(mustFrame(&Frame{Kind: KindControl, Sender: -2, TxTime: 7, EchoTime: 3, EchoDelay: 1,
		Payload: olsr.MarshalTC(&olsr.TC{Origin: -2, Seq: 9, ANSN: 4,
			Links: []olsr.LinkInfo{{Neighbor: 5, Weight: 1.25}}})}))
	data, err := MarshalData(&DataPacket{Dst: 3, Src: 1, Seq: 42, TTL: 8, Body: []byte("payload")})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(mustFrame(&Frame{Kind: KindData, Sender: 1, TxTime: 55, Payload: data}))
	f.Add([]byte("QLSR garbage that is long enough to clear the header check......"))

	f.Fuzz(func(t *testing.T, buf []byte) {
		fr, err := UnmarshalFrame(buf)
		if err != nil {
			return
		}
		out, err := MarshalFrame(fr)
		if err != nil {
			t.Fatalf("accepted frame fails to re-encode: %v", err)
		}
		if !bytes.Equal(out, buf) {
			t.Fatalf("non-canonical frame: decode/encode changed %x to %x", buf, out)
		}
	})
}

func FuzzUnmarshalData(f *testing.F) {
	seed, err := MarshalData(&DataPacket{Dst: -7, Src: 2, Seq: 1 << 33, TTL: 32, Body: []byte("abc")})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	empty, err := MarshalData(&DataPacket{Dst: 1, Src: 2})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	f.Fuzz(func(t *testing.T, buf []byte) {
		p, err := UnmarshalData(buf)
		if err != nil {
			return
		}
		out, err := MarshalData(p)
		if err != nil {
			t.Fatalf("accepted packet fails to re-encode: %v", err)
		}
		if !bytes.Equal(out, buf) {
			t.Fatalf("non-canonical data packet: decode/encode changed %x to %x", buf, out)
		}
	})
}
