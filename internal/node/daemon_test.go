package node

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"qolsr/internal/metric"
	"qolsr/internal/olsr"
)

// mesh spins one daemon per topology entry over a shared fabric and tears
// everything down with the test.
type mesh struct {
	daemons map[int64]*Daemon
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

// delivery is one data packet that reached its destination.
type delivery struct {
	at, src int64
	seq     uint64
	body    string
}

// startMesh launches daemons over mn with the given adjacency (ids must be
// symmetric: if a lists b, b must list a for links to form). Delivered data
// packets go to sink when non-nil.
func startMesh(t *testing.T, mn *MemNetwork, adj map[int64][]int64, measured bool, sink chan delivery) *mesh {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	m := &mesh{daemons: make(map[int64]*Daemon), cancel: cancel}
	addr := func(id int64) string { return fmt.Sprintf("n%d", id) }
	for id, peers := range adj {
		tr, err := mn.Listen(addr(id))
		if err != nil {
			t.Fatal(err)
		}
		var ps []Peer
		for _, p := range peers {
			ps = append(ps, Peer{ID: p, Addr: addr(p)})
		}
		id := id
		d, err := New(Config{
			ID:            id,
			Transport:     tr,
			Peers:         ps,
			HelloInterval: 50 * time.Millisecond,
			TCInterval:    120 * time.Millisecond,
			Measured:      measured,
			OnData: func(src int64, seq uint64, body []byte) {
				if sink != nil {
					sink <- delivery{at: id, src: src, seq: seq, body: string(body)}
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		m.daemons[id] = d
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			d.Run(ctx)
		}()
	}
	t.Cleanup(m.stop)
	return m
}

func (m *mesh) stop() {
	m.cancel()
	m.wg.Wait()
}

// waitConverged polls until every daemon has a route to every other, or the
// deadline passes.
func (m *mesh) waitConverged(t *testing.T, deadline time.Duration) {
	t.Helper()
	end := time.Now().Add(deadline)
	for {
		missing := 0
		for id, d := range m.daemons {
			st, err := d.Status()
			if err != nil {
				t.Fatal(err)
			}
			have := make(map[int64]bool, len(st.Routes))
			for _, r := range st.Routes {
				have[r.Dst] = true
			}
			for other := range m.daemons {
				if other != id && !have[other] {
					missing++
				}
			}
		}
		if missing == 0 {
			return
		}
		if time.Now().After(end) {
			t.Fatalf("not converged after %v: %d missing routes", deadline, missing)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// line returns the adjacency of a path graph 1-2-...-n.
func line(n int64) map[int64][]int64 {
	adj := make(map[int64][]int64)
	for i := int64(1); i <= n; i++ {
		if i > 1 {
			adj[i] = append(adj[i], i-1)
		}
		if i < n {
			adj[i] = append(adj[i], i+1)
		}
	}
	return adj
}

// TestDaemonLineConvergesAndRoutes converges a 1-2-3 line in measured mode
// and routes a packet end to end: 1 has no link to 3, so delivery proves
// multi-hop forwarding through 2's table.
func TestDaemonLineConvergesAndRoutes(t *testing.T) {
	sink := make(chan delivery, 16)
	m := startMesh(t, NewMemNetwork(), line(3), true, sink)
	m.waitConverged(t, 10*time.Second)

	st, err := m.daemons[1].Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "measured" || st.Metric != "delay" {
		t.Fatalf("mode=%q metric=%q, want measured/delay", st.Mode, st.Metric)
	}
	// The measured link must carry an RTT-derived weight.
	var linked bool
	for _, nb := range st.Neighbors {
		if nb.ID == 2 {
			linked = nb.Linked
			if nb.Weight <= 0 {
				t.Fatalf("link 1-2 weight = %v, want > 0", nb.Weight)
			}
			if nb.RTTms <= 0 {
				t.Fatalf("link 1-2 rtt = %v, want > 0", nb.RTTms)
			}
		}
	}
	if !linked {
		t.Fatal("node 1 never proved its link to 2")
	}
	// Route 1->3 must go through 2.
	var via int64
	for _, r := range st.Routes {
		if r.Dst == 3 {
			via = r.NextHop
			if r.Hops != 2 {
				t.Fatalf("route 1->3 hops = %d, want 2", r.Hops)
			}
		}
	}
	if via != 2 {
		t.Fatalf("route 1->3 next hop = %d, want 2", via)
	}

	if err := m.daemons[1].Send(3, []byte("end to end")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-sink:
		want := delivery{at: 3, src: 1, seq: 0, body: "end to end"}
		if got != want {
			t.Fatalf("delivered %+v, want %+v", got, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("packet never delivered")
	}
	// The middle node's counters must show the forward.
	st2, err := m.daemons[2].Status()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Stats.DataForwarded == 0 {
		t.Fatal("node 2 forwarded nothing; packet did not ride the tables")
	}
}

// TestDaemonOracleWeights checks that declared peer weights drive routing
// when measurement is off: with the direct 1-3 link weighing 10 and the
// 1-2, 2-3 links weighing 1 each, delay routing must prefer the two-hop
// path.
func TestDaemonOracleWeights(t *testing.T) {
	mn := NewMemNetwork()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	defer wg.Wait() // LIFO: cancel below runs first, so the daemons exit
	defer cancel()

	mk := func(id int64, peers []Peer) *Daemon {
		tr, err := mn.Listen(fmt.Sprintf("n%d", id))
		if err != nil {
			t.Fatal(err)
		}
		d, err := New(Config{
			ID: id, Transport: tr, Peers: peers,
			HelloInterval: 50 * time.Millisecond,
			TCInterval:    120 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() { defer wg.Done(); d.Run(ctx) }()
		return d
	}
	d1 := mk(1, []Peer{{ID: 2, Addr: "n2"}, {ID: 3, Addr: "n3", Weight: 10}})
	mk(2, []Peer{{ID: 1, Addr: "n1"}, {ID: 3, Addr: "n3"}})
	mk(3, []Peer{{ID: 1, Addr: "n1", Weight: 10}, {ID: 2, Addr: "n2"}})

	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := d1.Status()
		if err != nil {
			t.Fatal(err)
		}
		var r *RouteStatus
		for i := range st.Routes {
			if st.Routes[i].Dst == 3 {
				r = &st.Routes[i]
			}
		}
		if r != nil && r.NextHop == 2 && r.Value == 2 && r.Hops == 2 {
			return // the cheap two-hop path won
		}
		if time.Now().After(deadline) {
			t.Fatalf("route 1->3 never settled on the cheap path: %+v", r)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDaemonIgnoresHostileInput feeds a daemon garbage, foreign-sender
// frames and spoofed HELLOs; it must count and drop them all without
// touching protocol state.
func TestDaemonIgnoresHostileInput(t *testing.T) {
	mn := NewMemNetwork()
	m := startMesh(t, mn, map[int64][]int64{1: {2}, 2: {1}}, false, nil)
	attacker, err := mn.Listen("attacker")
	if err != nil {
		t.Fatal(err)
	}
	// Raw garbage.
	attacker.Send("n1", []byte("not a frame at all"))
	// A valid frame from an unknown sender.
	buf, err := MarshalFrame(&Frame{Kind: KindControl, Sender: 666, TxTime: 1, Payload: []byte{1}})
	if err != nil {
		t.Fatal(err)
	}
	attacker.Send("n1", buf)
	// A spoofed HELLO: frame sender 2 (a real peer), HELLO origin 666.
	spoof, err := MarshalFrame(&Frame{Kind: KindControl, Sender: 2, TxTime: 1,
		Payload: olsr.MarshalHello(&olsr.Hello{Origin: 666})})
	if err != nil {
		t.Fatal(err)
	}
	attacker.Send("n1", spoof)

	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := m.daemons[1].Status()
		if err != nil {
			t.Fatal(err)
		}
		if st.Stats.DecodeErrors >= 1 && st.Stats.UnknownSender >= 1 && st.Stats.SpoofRejects >= 1 {
			for _, nb := range st.Neighbors {
				if nb.ID == 666 {
					t.Fatal("attacker appeared in the neighbor table")
				}
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("hostile input not accounted: %+v", st.Stats)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestStatusEndpoint serves the HTTP status handler and decodes the JSON.
func TestStatusEndpoint(t *testing.T) {
	m := startMesh(t, NewMemNetwork(), line(2), true, nil)
	m.waitConverged(t, 10*time.Second)
	srv := httptest.NewServer(m.daemons[1].StatusHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatusReport
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ID != 1 || len(st.Routes) != 1 || st.Routes[0].Dst != 2 {
		t.Fatalf("unexpected status over HTTP: %+v", st)
	}
}

// TestMetricsEndpoint scrapes /metrics off the status listener: the
// Prometheus text must carry the daemon's frame counters, the RTT histogram
// and the gauges, and the values must agree with the status report (both
// read the same registry cells).
func TestMetricsEndpoint(t *testing.T) {
	m := startMesh(t, NewMemNetwork(), line(2), true, nil)
	m.waitConverged(t, 10*time.Second)
	srv := httptest.NewServer(m.daemons[1].StatusHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`qolsr_node_frames_total{dir="in"}`,
		`qolsr_node_frames_total{dir="out"}`,
		`qolsr_node_ctrl_in_total{type="hello"}`,
		"qolsr_node_rtt_seconds_count",
		"qolsr_node_neighbors_linked",
		"qolsr_node_routes",
		"qolsr_node_uptime_seconds",
		"qolsr_node_transport_drops_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	// The scrape and the status JSON read the same cells: frames_in on
	// /metrics must be at least the value the (earlier) status snapshot saw.
	st, err := m.daemons[1].Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats.FramesIn == 0 || st.Stats.HellosIn == 0 {
		t.Fatalf("status stats not registry-backed: %+v", st.Stats)
	}
	re := regexp.MustCompile(`qolsr_node_ctrl_in_total\{type="hello"\} (\d+)`)
	match := re.FindStringSubmatch(text)
	if match == nil {
		t.Fatal("hello counter sample not found in exposition")
	}
	if n, _ := strconv.ParseUint(match[1], 10, 64); n == 0 || n > st.Stats.HellosIn {
		t.Errorf("scraped hellos=%d, later status=%d; want 0 < scraped <= status", n, st.Stats.HellosIn)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{ID: 1}); err == nil {
		t.Fatal("accepted nil transport")
	}
	mn := NewMemNetwork()
	tr, _ := mn.Listen("a")
	if _, err := New(Config{ID: 1, Transport: tr, Peers: []Peer{{ID: 1, Addr: "a"}}}); err == nil {
		t.Fatal("accepted self in peer table")
	}
	if _, err := New(Config{ID: 1, Transport: tr,
		Peers: []Peer{{ID: 2, Addr: "b"}, {ID: 2, Addr: "c"}}}); err == nil {
		t.Fatal("accepted duplicate peer id")
	}
	if _, err := New(Config{ID: 1, Transport: tr, Metric: metric.Delay()}); err != nil {
		t.Fatalf("rejected minimal valid config: %v", err)
	}
}
