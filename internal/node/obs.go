package node

import (
	"net/http"
	"time"

	"qolsr/internal/obs"
)

// transportDrops is the optional Transport facet surfacing receive-queue
// drops (UDPTransport implements it; the in-memory test transport may not).
type transportDrops interface{ Drops() uint64 }

// daemonMetrics is the daemon's registry-backed accounting. Every Stats
// counter is an atomic registry cell: the run loop increments through the
// handles and the /metrics scrape goroutine reads the same cells — no lock,
// no channel round trip, and no second copy that could drift from the
// status JSON (Stats is derived from these cells, see stats).
type daemonMetrics struct {
	reg *obs.Registry

	framesIn, framesOut, bytesIn, bytesOut                    obs.Counter
	decodeErrors, unknownSender, spoofRejects, sendErrors     obs.Counter
	hellosIn, tcsIn, tcsForwarded                             obs.Counter
	dataOriginated, dataForwarded, dataDelivered, dataDropped obs.Counter

	// rtt observes every closed HELLO round trip, in seconds.
	rtt obs.Histogram
	// linkedNeighbors and routes mirror protocol-state sizes; the run loop
	// refreshes them on every HELLO tick (they are event-loop state, so the
	// scrape goroutine must never compute them itself).
	linkedNeighbors, routes obs.Gauge
}

// newDaemonMetrics builds the daemon's registry. Uptime and transport drops
// register as lazy collectors — both sources are safe to read from the
// scrape goroutine directly.
func newDaemonMetrics(start time.Time, tr Transport) *daemonMetrics {
	reg := obs.New()
	m := &daemonMetrics{reg: reg}
	dir := func(v string) obs.Label { return obs.Label{Key: "dir", Value: v} }
	reason := func(v string) obs.Label { return obs.Label{Key: "reason", Value: v} }
	event := func(v string) obs.Label { return obs.Label{Key: "event", Value: v} }

	m.framesIn = reg.Counter("qolsr_node_frames_total", "frames moved, by direction", dir("in"))
	m.framesOut = reg.Counter("qolsr_node_frames_total", "frames moved, by direction", dir("out"))
	m.bytesIn = reg.Counter("qolsr_node_bytes_total", "frame bytes moved, by direction", dir("in"))
	m.bytesOut = reg.Counter("qolsr_node_bytes_total", "frame bytes moved, by direction", dir("out"))
	m.decodeErrors = reg.Counter("qolsr_node_rejects_total", "inbound frames rejected, by reason", reason("decode"))
	m.unknownSender = reg.Counter("qolsr_node_rejects_total", "inbound frames rejected, by reason", reason("unknown-sender"))
	m.spoofRejects = reg.Counter("qolsr_node_rejects_total", "inbound frames rejected, by reason", reason("spoof"))
	m.sendErrors = reg.Counter("qolsr_node_send_errors_total", "frames that failed to marshal or transmit")
	m.hellosIn = reg.Counter("qolsr_node_ctrl_in_total", "control messages ingested, by type", obs.Label{Key: "type", Value: "hello"})
	m.tcsIn = reg.Counter("qolsr_node_ctrl_in_total", "control messages ingested, by type", obs.Label{Key: "type", Value: "tc"})
	m.tcsForwarded = reg.Counter("qolsr_node_tc_forwarded_total", "TCs re-flooded because the sender selected us as MPR")
	m.dataOriginated = reg.Counter("qolsr_node_data_total", "data packets, by event", event("originated"))
	m.dataForwarded = reg.Counter("qolsr_node_data_total", "data packets, by event", event("forwarded"))
	m.dataDelivered = reg.Counter("qolsr_node_data_total", "data packets, by event", event("delivered"))
	m.dataDropped = reg.Counter("qolsr_node_data_total", "data packets, by event", event("dropped"))
	m.rtt = reg.Histogram("qolsr_node_rtt_seconds", "measured HELLO round-trip time", obs.ExpBuckets(0.0005, 2, 12))
	m.linkedNeighbors = reg.Gauge("qolsr_node_neighbors_linked", "peers with a live, proven link")
	m.routes = reg.Gauge("qolsr_node_routes", "routing-table entries")

	reg.GaugeFunc("qolsr_node_uptime_seconds", "seconds since the daemon started", func() float64 {
		return time.Since(start).Seconds()
	})
	if td, ok := tr.(transportDrops); ok {
		reg.CounterFunc("qolsr_node_transport_drops_total", "inbound datagrams dropped on a full transport receive queue", td.Drops)
	}
	return m
}

// stats derives the status-report Stats from the registry cells.
func (m *daemonMetrics) stats(tr Transport) Stats {
	s := Stats{
		FramesIn:       m.framesIn.Value(),
		FramesOut:      m.framesOut.Value(),
		BytesIn:        m.bytesIn.Value(),
		BytesOut:       m.bytesOut.Value(),
		DecodeErrors:   m.decodeErrors.Value(),
		UnknownSender:  m.unknownSender.Value(),
		SpoofRejects:   m.spoofRejects.Value(),
		SendErrors:     m.sendErrors.Value(),
		HellosIn:       m.hellosIn.Value(),
		TCsIn:          m.tcsIn.Value(),
		TCsForwarded:   m.tcsForwarded.Value(),
		DataOriginated: m.dataOriginated.Value(),
		DataForwarded:  m.dataForwarded.Value(),
		DataDelivered:  m.dataDelivered.Value(),
		DataDropped:    m.dataDropped.Value(),
	}
	if td, ok := tr.(transportDrops); ok {
		s.TransportDrops = td.Drops()
	}
	return s
}

// Registry exposes the daemon's metrics registry (for embedding daemons that
// want programmatic snapshots next to the HTTP surface).
func (d *Daemon) Registry() *obs.Registry { return d.metrics.reg }

// MetricsHandler serves the daemon's registry in Prometheus text exposition
// format. The registry cells are atomics and the lazy collectors read only
// scrape-safe sources, so the handler never touches the event loop — a
// scrape succeeds even while the daemon is saturated or stopped.
func (d *Daemon) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", obs.PrometheusContentType)
		d.metrics.reg.WritePrometheus(w)
	})
}

// refreshGauges mirrors event-loop-owned state sizes into the registry's
// atomic gauges. Runs on the event loop (every HELLO tick).
func (d *Daemon) refreshGauges() {
	now := d.now()
	linked := 0
	for _, id := range d.order {
		if _, ok := d.node.LinkWeight(id, now); ok {
			linked++
		}
	}
	d.metrics.linkedNeighbors.Set(int64(linked))
	// Read the route count only when the table is already computed: a gauge
	// refresh must never be the reason an SPF runs on the hot tick path.
	if !d.node.RoutesDirty(now) {
		if routes, err := d.node.Routes(now); err == nil {
			d.metrics.routes.Set(int64(routes.Len()))
		}
	}
}
