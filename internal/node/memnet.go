package node

import (
	"fmt"
	"sync"
	"time"
)

// MemNetwork is an in-process datagram fabric for tests: a set of named
// endpoints exchanging frames with UDP semantics — best-effort, unordered
// across senders but FIFO per (sender, receiver) pair, silently void toward
// addresses nobody listens on — without sockets, so daemon logic is testable
// hermetically and deterministically.
type MemNetwork struct {
	mu   sync.Mutex
	eps  map[string]*MemTransport
	drop func(from, to string) bool
}

// NewMemNetwork returns an empty fabric.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{eps: make(map[string]*MemTransport)}
}

// SetDrop installs a loss hook consulted once per delivery; returning true
// discards the frame. Pass nil to restore lossless delivery.
func (mn *MemNetwork) SetDrop(f func(from, to string) bool) {
	mn.mu.Lock()
	defer mn.mu.Unlock()
	mn.drop = f
}

// Listen claims an address on the fabric.
func (mn *MemNetwork) Listen(addr string) (*MemTransport, error) {
	mn.mu.Lock()
	defer mn.mu.Unlock()
	if _, taken := mn.eps[addr]; taken {
		return nil, fmt.Errorf("node: memnet address %q already bound", addr)
	}
	t := &MemTransport{
		net:  mn,
		addr: addr,
		in:   make(chan Inbound, inboundBuffer),
	}
	mn.eps[addr] = t
	return t, nil
}

// deliver routes one frame to the destination endpoint. It runs under the
// fabric lock, so deliveries serialise: frames from one sender to one
// receiver arrive in send order. A full receive buffer drops the frame, as
// does a closed or unknown destination — exactly UDP's contract.
func (mn *MemNetwork) deliver(from, to string, frame []byte) {
	mn.mu.Lock()
	defer mn.mu.Unlock()
	dst := mn.eps[to]
	if dst == nil {
		return
	}
	if mn.drop != nil && mn.drop(from, to) {
		return
	}
	data := make([]byte, len(frame))
	copy(data, frame)
	select {
	case dst.in <- Inbound{From: from, Data: data, At: time.Now()}:
	default:
		dst.drops++
	}
}

// MemTransport is one endpoint of a MemNetwork.
type MemTransport struct {
	net   *MemNetwork
	addr  string
	in    chan Inbound
	drops uint64 // guarded by net.mu
}

// Send implements Transport.
func (t *MemTransport) Send(addr string, frame []byte) error {
	t.net.deliver(t.addr, addr, frame)
	return nil
}

// Inbound implements Transport.
func (t *MemTransport) Inbound() <-chan Inbound { return t.in }

// LocalAddr implements Transport.
func (t *MemTransport) LocalAddr() string { return t.addr }

// Drops reports frames discarded at this endpoint's full receive buffer.
func (t *MemTransport) Drops() uint64 {
	t.net.mu.Lock()
	defer t.net.mu.Unlock()
	return t.drops
}

// Close implements Transport: the endpoint leaves the fabric and the inbound
// channel closes. Frames in flight toward it are dropped.
func (t *MemTransport) Close() error {
	t.net.mu.Lock()
	defer t.net.mu.Unlock()
	if t.net.eps[t.addr] == t {
		delete(t.net.eps, t.addr)
		close(t.in)
	}
	return nil
}

// Compile-time interface compliance checks.
var (
	_ Transport = (*UDPTransport)(nil)
	_ Transport = (*MemTransport)(nil)
)
