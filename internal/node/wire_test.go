package node

import (
	"bytes"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	f := &Frame{
		Kind:      KindControl,
		Sender:    -42,
		TxTime:    123456789,
		EchoTime:  987654321,
		EchoDelay: 555,
		Payload:   []byte("hello payload"),
	}
	buf, err := MarshalFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != f.Kind || got.Sender != f.Sender || got.TxTime != f.TxTime ||
		got.EchoTime != f.EchoTime || got.EchoDelay != f.EchoDelay ||
		!bytes.Equal(got.Payload, f.Payload) {
		t.Fatalf("round trip mismatch: %+v != %+v", got, f)
	}
}

func TestFrameRoundTripEmptyPayload(t *testing.T) {
	buf, err := MarshalFrame(&Frame{Kind: KindData, Sender: 7, TxTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Payload) != 0 {
		t.Fatalf("payload = %q, want empty", got.Payload)
	}
}

func TestFrameRejectsBadInput(t *testing.T) {
	good, err := MarshalFrame(&Frame{Kind: KindControl, Sender: 1, TxTime: 1, Payload: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		buf  []byte
		want string
	}{
		{"empty", nil, "too short"},
		{"truncated header", good[:frameHeaderLen-1], "too short"},
		{"bad magic", append([]byte("NOPE"), good[4:]...), "bad frame magic"},
		{"version mismatch", func() []byte {
			b := bytes.Clone(good)
			b[4] = FrameVersion + 1
			return b
		}(), "unsupported frame version"},
		{"unknown kind", func() []byte {
			b := bytes.Clone(good)
			b[5] = 99
			return b
		}(), "unknown frame kind"},
		{"truncated payload", good[:len(good)-1], "length mismatch"},
		{"trailing garbage", append(bytes.Clone(good), 0xff), "length mismatch"},
		{"oversize claim", func() []byte {
			b := bytes.Clone(good)
			b[38], b[39] = 0xff, 0xff // claims 65535 > MaxPayload
			return b
		}(), "payload too large"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := UnmarshalFrame(tc.buf)
			if err == nil {
				t.Fatal("decode accepted malformed frame")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestMarshalFrameRejectsOversizePayload(t *testing.T) {
	_, err := MarshalFrame(&Frame{Kind: KindControl, Payload: make([]byte, MaxPayload+1)})
	if err == nil {
		t.Fatal("marshal accepted oversize payload")
	}
	if _, err := MarshalFrame(&Frame{Kind: 0}); err == nil {
		t.Fatal("marshal accepted zero kind")
	}
}

func TestDataPacketRoundTrip(t *testing.T) {
	p := &DataPacket{Dst: 9, Src: -3, Seq: 1 << 40, TTL: 17, Body: []byte("data body")}
	buf, err := MarshalData(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalData(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dst != p.Dst || got.Src != p.Src || got.Seq != p.Seq || got.TTL != p.TTL ||
		!bytes.Equal(got.Body, p.Body) {
		t.Fatalf("round trip mismatch: %+v != %+v", got, p)
	}
}

func TestDataPacketRejectsBadInput(t *testing.T) {
	good, err := MarshalData(&DataPacket{Dst: 1, Src: 2, TTL: 3, Body: []byte("b")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalData(good[:dataHeaderLen-1]); err == nil {
		t.Fatal("accepted truncated header")
	}
	if _, err := UnmarshalData(good[:len(good)-1]); err == nil {
		t.Fatal("accepted truncated body")
	}
	if _, err := UnmarshalData(append(bytes.Clone(good), 0)); err == nil {
		t.Fatal("accepted trailing garbage")
	}
	if _, err := MarshalData(&DataPacket{Body: make([]byte, MaxDataBody+1)}); err == nil {
		t.Fatal("marshal accepted oversize body")
	}
}
