package node

import (
	"math"
	"time"
)

// rttEstimator turns per-peer round-trip samples into a link delay
// estimate. Samples arrive from the frame layer's echo triplet, so every
// received frame that completes a round trip contributes one.
//
// Two filters run side by side:
//
//   - an RFC 6298-style exponentially weighted mean (gain 1/8), reported in
//     status output as the link's current RTT;
//   - a windowed minimum, which is what the routing weight derives from.
//     Host scheduling and queueing only ever add latency to a sample, never
//     subtract, so the minimum over a short window isolates the link's
//     propagation floor from load noise — feeding the raw mean to the
//     routing layer would let a busy CPU masquerade as a degraded link and
//     flap routes (the BBR argument, applied to neighbor selection).
type rttEstimator struct {
	srtt    float64 // smoothed RTT, nanoseconds
	samples uint64

	// window is a ring of recent samples for the minimum filter.
	window [rttWindow]float64
	pos    int
	filled int
}

// rttWindow is the minimum-filter span in samples; at one sample per
// HELLO interval this covers the last ~window intervals.
const rttWindow = 16

// maxSaneRTT discards samples a mesh link cannot plausibly produce —
// defensive against a peer echoing garbage stamps.
const maxSaneRTT = 10 * time.Second

func (e *rttEstimator) sample(rtt time.Duration) {
	if rtt < 0 || rtt > maxSaneRTT {
		return
	}
	v := float64(rtt)
	if e.samples == 0 {
		e.srtt = v
	} else {
		e.srtt += (v - e.srtt) / 8
	}
	e.samples++
	e.window[e.pos] = v
	e.pos = (e.pos + 1) % rttWindow
	if e.filled < rttWindow {
		e.filled++
	}
}

// smoothed returns the mean-filtered estimate, false before the first
// sample.
func (e *rttEstimator) smoothed() (time.Duration, bool) {
	if e.samples == 0 {
		return 0, false
	}
	return time.Duration(e.srtt), true
}

// minRTT returns the windowed minimum, false before the first sample.
func (e *rttEstimator) minRTT() (time.Duration, bool) {
	if e.filled == 0 {
		return 0, false
	}
	min := e.window[0]
	for _, v := range e.window[1:e.filled] {
		if v < min {
			min = v
		}
	}
	return time.Duration(min), true
}

// weightQuantum is the granularity measured delay weights snap to
// (1/32 ms). Sub-quantum wobble must not reach UpdateLink: every distinct
// weight bumps the node's topology version and forces a routing rebuild,
// so a link's weight should move only when the link itself did.
const weightQuantum = 1.0 / 32

// weight returns the link's delay weight — windowed-minimum RTT in
// milliseconds, quantised, floored at one quantum so a live link never
// weighs zero — and false before any round trip completed.
func (e *rttEstimator) weight() (float64, bool) {
	min, ok := e.minRTT()
	if !ok {
		return 0, false
	}
	ms := float64(min) / float64(time.Millisecond)
	q := math.Round(ms/weightQuantum) * weightQuantum
	if q < weightQuantum {
		q = weightQuantum
	}
	return q, true
}
