package node

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Inbound is one received datagram: the raw bytes, the source address they
// arrived from, and the arrival instant. Frames authenticate their sender by
// the header's node identifier, not by address — the address is
// informational. At is stamped by the transport the moment the datagram
// leaves the wire, before it waits in the receive channel: round-trip
// measurement must not charge the link for time the receiver's event loop
// spent busy.
type Inbound struct {
	From string
	Data []byte
	At   time.Time
}

// Transport moves datagrams between daemons. Implementations deliver
// best-effort (sends to unreachable or unknown addresses may vanish
// silently, like UDP) and surface received datagrams on a channel the
// daemon's event loop selects on. The channel closes when the transport
// closes.
type Transport interface {
	// Send transmits one datagram to the given address.
	Send(addr string, frame []byte) error
	// Inbound returns the receive channel. It is closed on Close.
	Inbound() <-chan Inbound
	// LocalAddr returns the address peers should send to.
	LocalAddr() string
	// Close releases the transport and closes the inbound channel.
	Close() error
}

// inboundBuffer is the receive-channel depth: past it, like any radio whose
// listener has fallen behind, datagrams drop.
const inboundBuffer = 1024

// UDPTransport is the real-socket Transport: one bound UDP socket, a reader
// goroutine feeding the inbound channel, and a cache of resolved peer
// addresses.
type UDPTransport struct {
	conn *net.UDPConn
	in   chan Inbound

	drops atomic.Uint64

	mu       sync.Mutex
	resolved map[string]*net.UDPAddr

	closeOnce sync.Once
	closeErr  error
}

// ListenUDP binds a UDP socket on addr (e.g. "127.0.0.1:0" for an ephemeral
// loopback port) and starts receiving.
func ListenUDP(addr string) (*UDPTransport, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("node: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("node: listen %q: %w", addr, err)
	}
	t := &UDPTransport{
		conn:     conn,
		in:       make(chan Inbound, inboundBuffer),
		resolved: make(map[string]*net.UDPAddr),
	}
	go t.readLoop()
	return t, nil
}

func (t *UDPTransport) readLoop() {
	defer close(t.in)
	buf := make([]byte, MaxPayload+frameHeaderLen+1)
	for {
		n, from, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			// The socket closed (or broke): end the stream.
			return
		}
		data := make([]byte, n)
		copy(data, buf[:n])
		select {
		case t.in <- Inbound{From: from.String(), Data: data, At: time.Now()}:
		default:
			t.drops.Add(1)
		}
	}
}

// Send implements Transport.
func (t *UDPTransport) Send(addr string, frame []byte) error {
	t.mu.Lock()
	ua := t.resolved[addr]
	t.mu.Unlock()
	if ua == nil {
		var err error
		if ua, err = net.ResolveUDPAddr("udp", addr); err != nil {
			return fmt.Errorf("node: resolve %q: %w", addr, err)
		}
		t.mu.Lock()
		t.resolved[addr] = ua
		t.mu.Unlock()
	}
	_, err := t.conn.WriteToUDP(frame, ua)
	return err
}

// Inbound implements Transport.
func (t *UDPTransport) Inbound() <-chan Inbound { return t.in }

// LocalAddr implements Transport. After binding port 0 it reports the
// kernel-assigned port.
func (t *UDPTransport) LocalAddr() string { return t.conn.LocalAddr().String() }

// Drops reports datagrams discarded because the inbound channel was full.
func (t *UDPTransport) Drops() uint64 { return t.drops.Load() }

// Close implements Transport.
func (t *UDPTransport) Close() error {
	t.closeOnce.Do(func() { t.closeErr = t.conn.Close() })
	return t.closeErr
}
