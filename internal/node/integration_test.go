package node

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLoopbackMesh is the acceptance harness for the daemon subsystem: 20
// in-process daemons on real 127.0.0.1 UDP ports, wired as a chorded ring
// (each node peers with its ring neighbors at distance 1 and 2, so the mesh
// is multi-hop: diameter 5), running RTT-measured QoS. It must fully
// converge — every ordered pair of daemons holds a route — within 30
// seconds of wall clock, then deliver at least 99% of live data packets
// routed hop by hop through the daemons' own tables.
func TestLoopbackMesh(t *testing.T) {
	const (
		n                = 20
		helloInterval    = 100 * time.Millisecond
		tcInterval       = 250 * time.Millisecond
		convergeDeadline = 30 * time.Second
	)

	// Bind all sockets first so every peer table can name real ports.
	transports := make([]*UDPTransport, n)
	addrs := make([]string, n)
	for i := range transports {
		tr, err := ListenUDP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		transports[i] = tr
		addrs[i] = tr.LocalAddr()
	}

	// delivered counts data packets that reached their addressed daemon.
	var delivered atomic.Uint64
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	defer wg.Wait() // LIFO: cancel below runs first, so the daemons exit
	defer cancel()

	id := func(i int) int64 { return int64(i + 1) }
	daemons := make([]*Daemon, n)
	for i := range daemons {
		var peers []Peer
		for _, d := range []int{-2, -1, 1, 2} {
			j := ((i+d)%n + n) % n
			peers = append(peers, Peer{ID: id(j), Addr: addrs[j]})
		}
		d, err := New(Config{
			ID:            id(i),
			Transport:     transports[i],
			Peers:         peers,
			HelloInterval: helloInterval,
			TCInterval:    tcInterval,
			Measured:      true,
			OnData: func(src int64, seq uint64, body []byte) {
				delivered.Add(1)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		daemons[i] = d
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Run(ctx)
		}()
	}

	// Phase 1: convergence. Every pair must hold a route within the
	// acceptance deadline.
	start := time.Now()
	for {
		missing := 0
		for i, d := range daemons {
			st, err := d.Status()
			if err != nil {
				t.Fatal(err)
			}
			have := make(map[int64]bool, len(st.Routes))
			for _, r := range st.Routes {
				have[r.Dst] = true
			}
			for j := range daemons {
				if j != i && !have[id(j)] {
					missing++
				}
			}
		}
		if missing == 0 {
			break
		}
		if time.Since(start) > convergeDeadline {
			t.Fatalf("mesh not converged after %v: %d of %d pair routes missing",
				convergeDeadline, missing, n*(n-1))
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Logf("20-daemon mesh converged in %v", time.Since(start))

	// Sanity: the chords keep the mesh genuinely multi-hop — node 1 must
	// reach the far side of the ring through an intermediate.
	st, err := daemons[0].Status()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range st.Routes {
		if r.Dst == id(n/2) && r.Hops < 2 {
			t.Fatalf("route 1->%d has %d hops; topology is not multi-hop", id(n/2), r.Hops)
		}
	}

	// Phase 2: live traffic. Every daemon sends one packet to every other
	// node; packets ride the daemons' own routing tables hop by hop.
	var sent, unrouted uint64
	for i, d := range daemons {
		for j := range daemons {
			if i == j {
				continue
			}
			sent++
			if err := d.Send(id(j), []byte(fmt.Sprintf("pkt %d->%d", id(i), id(j)))); err != nil {
				unrouted++
			}
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for delivered.Load() < sent-unrouted && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if ratio := float64(delivered.Load()) / float64(sent); ratio < 0.99 {
		t.Fatalf("delivered %d of %d data packets (%.1f%%, %d unrouted); want >= 99%%",
			delivered.Load(), sent, 100*ratio, unrouted)
	}
	t.Logf("delivered %d/%d data packets through daemon tables", delivered.Load(), sent)

	// The mesh must be forwarding, not short-circuiting: with diameter 5,
	// a large share of pairs are multi-hop, so intermediate daemons must
	// show forwarded traffic.
	var forwarded uint64
	for _, d := range daemons {
		st, err := d.Status()
		if err != nil {
			t.Fatal(err)
		}
		forwarded += st.Stats.DataForwarded
	}
	if forwarded == 0 {
		t.Fatal("no daemon forwarded data; traffic did not ride the mesh")
	}
}
