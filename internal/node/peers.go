package node

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Peer declares one configured neighbor: the peer table is the daemon's
// stand-in for radio range. Only frames whose header names a configured peer
// are processed — everything else is treated as out-of-range noise — and
// control broadcasts go to every configured peer.
type Peer struct {
	// ID is the peer's protocol identifier.
	ID int64 `json:"id"`
	// Addr is where the peer's transport listens ("host:port" for UDP).
	Addr string `json:"addr"`
	// Weight is the link's oracle QoS weight, used when the daemon runs
	// with operator-declared weights instead of measured RTT. Zero means
	// the default of 1.
	Weight float64 `json:"weight,omitempty"`
}

// ParsePeerList parses the CLI peer syntax: comma-separated
// "id@host:port" entries with an optional "#weight" suffix, e.g.
//
//	2@127.0.0.1:9002,3@127.0.0.1:9003#2.5
func ParsePeerList(s string) ([]Peer, error) {
	var peers []Peer
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, rest, ok := strings.Cut(entry, "@")
		if !ok {
			return nil, fmt.Errorf("node: peer %q: want id@host:port", entry)
		}
		pid, err := strconv.ParseInt(id, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("node: peer %q: bad id: %w", entry, err)
		}
		p := Peer{ID: pid}
		addr, w, hasW := strings.Cut(rest, "#")
		p.Addr = addr
		if hasW {
			if p.Weight, err = strconv.ParseFloat(w, 64); err != nil {
				return nil, fmt.Errorf("node: peer %q: bad weight: %w", entry, err)
			}
		}
		if p.Addr == "" {
			return nil, fmt.Errorf("node: peer %q: empty address", entry)
		}
		peers = append(peers, p)
	}
	return peers, nil
}

// ReadPeersFile loads a JSON peer table: an array of {"id", "addr",
// "weight"} objects.
func ReadPeersFile(path string) ([]Peer, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var peers []Peer
	if err := json.Unmarshal(data, &peers); err != nil {
		return nil, fmt.Errorf("node: peers file %s: %w", path, err)
	}
	return peers, nil
}
