package node

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"qolsr/internal/core"
	"qolsr/internal/metric"
	"qolsr/internal/olsr"
)

// Config parameterises a Daemon.
type Config struct {
	// ID is this node's protocol identifier. Required, and must be unique
	// across the mesh.
	ID int64
	// Transport carries the daemon's frames. Required; the daemon owns it
	// and closes it when Run returns.
	Transport Transport
	// Peers is the static peer table (see Peer). Frames from senders not
	// in it are dropped.
	Peers []Peer
	// HelloInterval and TCInterval are the emission periods (defaults:
	// the olsr RFC-style 2s and 5s; tests shrink them).
	HelloInterval time.Duration
	TCInterval    time.Duration
	// Metric is the QoS metric routing optimises (default metric.Delay(),
	// the natural domain for measured RTT weights).
	Metric metric.Metric
	// Selector computes the advertised neighbor set (default the paper's
	// core.FNBP).
	Selector core.Selector
	// Measured switches link weights from the peer table's declared
	// values to real round-trip measurement: each link's weight is the
	// smoothed RTT in milliseconds derived from the frame layer's echo
	// timestamps — the deployed analogue of the simulator's MeasuredQoS
	// link sensing.
	Measured bool
	// TTL is the initial hop budget of originated data packets
	// (default 32).
	TTL uint8
	// OnData receives data packets addressed to this node. It is called
	// from the daemon's event loop; handlers must not block.
	OnData func(src int64, seq uint64, body []byte)
	// Logf, when set, receives debug-level event lines.
	Logf func(format string, args ...any)
}

// Stats counts a daemon's traffic. All fields are cumulative.
type Stats struct {
	FramesIn  uint64 `json:"frames_in"`
	FramesOut uint64 `json:"frames_out"`
	BytesIn   uint64 `json:"bytes_in"`
	BytesOut  uint64 `json:"bytes_out"`
	// DecodeErrors counts frames or payloads rejected by the codecs —
	// hostile, truncated or foreign input.
	DecodeErrors uint64 `json:"decode_errors"`
	// UnknownSender counts well-formed frames from nodes outside the peer
	// table.
	UnknownSender uint64 `json:"unknown_sender"`
	// SpoofRejects counts HELLOs whose origin disagrees with the frame
	// sender — spoofed or relayed one-hop messages.
	SpoofRejects uint64 `json:"spoof_rejects"`
	// TransportDrops counts inbound datagrams the transport discarded on a
	// full receive queue (before the daemon ever saw them).
	TransportDrops uint64 `json:"transport_drops"`
	SendErrors     uint64 `json:"send_errors"`
	HellosIn       uint64 `json:"hellos_in"`
	TCsIn          uint64 `json:"tcs_in"`
	TCsForwarded   uint64 `json:"tcs_forwarded"`
	DataOriginated uint64 `json:"data_originated"`
	DataForwarded  uint64 `json:"data_forwarded"`
	DataDelivered  uint64 `json:"data_delivered"`
	// DataDropped counts data packets discarded for a dead TTL, a missing
	// route, or a next hop outside the peer table.
	DataDropped uint64 `json:"data_dropped"`
}

// peerState is the daemon's per-peer bookkeeping around the static Peer
// declaration: the echo stamps the RTT instrument needs, the RTT estimator
// itself, and liveness.
type peerState struct {
	id     int64
	addr   string
	weight float64 // declared oracle weight

	rtt rttEstimator
	// linkW is the weight most recently fed to UpdateLink in measured
	// mode, the anchor for the hysteresis band; 0 before the first.
	linkW float64
	// lastRxTx is the TxTime of the newest frame received from the peer
	// (their clock, echoed back verbatim); lastRxAt is our clock at its
	// arrival, so the echo can report how long we held the stamp.
	lastRxTx uint64
	lastRxAt uint64
	// heard is our clock at the newest frame from the peer, 0 if never.
	heard time.Duration
}

type dataSend struct {
	dst  int64
	body []byte
	res  chan error
}

// Daemon runs one olsr.Node over a Transport in wall-clock time. All
// protocol state is owned by the Run loop's goroutine; Status and Send
// communicate with it through channels, so a Daemon is safe for concurrent
// use around a single Run.
type Daemon struct {
	cfg   Config
	node  *olsr.Node
	tr    Transport
	peers map[int64]*peerState
	// order is the sorted peer-ID broadcast order: emission must be a
	// pure function of configuration, not of map iteration.
	order []int64

	start   time.Time
	dataSeq uint64
	// metrics is the authoritative traffic accounting: registry cells the
	// run loop increments and the /metrics scrape reads concurrently. The
	// status report's Stats is derived from it.
	metrics *daemonMetrics

	statusCh chan chan StatusReport
	sendCh   chan dataSend
	done     chan struct{}
}

// New builds a Daemon. The underlying olsr.Node runs with external link
// sensing: the daemon owns the link table and feeds it measured RTT weights
// or the peer table's declared ones.
func New(cfg Config) (*Daemon, error) {
	if cfg.Transport == nil {
		return nil, errors.New("node: config needs a transport")
	}
	if cfg.Metric == nil {
		cfg.Metric = metric.Delay()
	}
	ocfg := olsr.DefaultConfig(cfg.Metric)
	if cfg.HelloInterval > 0 {
		ocfg.HelloInterval = cfg.HelloInterval
		ocfg.NeighborHoldTime = 3 * cfg.HelloInterval
	}
	if cfg.TCInterval > 0 {
		ocfg.TCInterval = cfg.TCInterval
		ocfg.TopologyHoldTime = 3 * cfg.TCInterval
	}
	cfg.HelloInterval = ocfg.HelloInterval
	cfg.TCInterval = ocfg.TCInterval
	if cfg.Selector != nil {
		ocfg.Selector = cfg.Selector
	}
	if cfg.TTL == 0 {
		cfg.TTL = 32
	}
	ocfg.ExternalLinkSensing = true
	n, err := olsr.NewNode(cfg.ID, ocfg)
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		cfg:      cfg,
		node:     n,
		tr:       cfg.Transport,
		peers:    make(map[int64]*peerState, len(cfg.Peers)),
		start:    time.Now(),
		statusCh: make(chan chan StatusReport),
		sendCh:   make(chan dataSend),
		done:     make(chan struct{}),
	}
	for _, p := range cfg.Peers {
		if p.ID == cfg.ID {
			return nil, fmt.Errorf("node: peer table lists our own id %d", p.ID)
		}
		if _, dup := d.peers[p.ID]; dup {
			return nil, fmt.Errorf("node: duplicate peer id %d", p.ID)
		}
		w := p.Weight
		if w <= 0 {
			w = 1
		}
		d.peers[p.ID] = &peerState{id: p.ID, addr: p.Addr, weight: w}
		d.order = append(d.order, p.ID)
	}
	sort.Slice(d.order, func(i, j int) bool { return d.order[i] < d.order[j] })
	d.metrics = newDaemonMetrics(d.start, d.tr)
	return d, nil
}

// now is the daemon's protocol clock: monotonic elapsed time since New, the
// wall-clock counterpart of the simulator's virtual timestamps.
func (d *Daemon) now() time.Duration { return time.Since(d.start) }

func (d *Daemon) logf(format string, args ...any) {
	if d.cfg.Logf != nil {
		d.cfg.Logf(format, args...)
	}
}

// Run drives the daemon until ctx is cancelled or the transport closes. It
// owns all protocol state; call it exactly once. The transport is closed on
// the way out.
func (d *Daemon) Run(ctx context.Context) error {
	defer close(d.done)
	defer d.tr.Close()
	helloT := time.NewTicker(d.cfg.HelloInterval)
	defer helloT.Stop()
	tcT := time.NewTicker(d.cfg.TCInterval)
	defer tcT.Stop()
	// An immediate HELLO bootstraps the echo exchange a full interval
	// early; cold-start convergence is bounded by round trips, not timers.
	d.emitHello()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-helloT.C:
			d.emitHello()
		case <-tcT.C:
			d.emitTC()
		case in, ok := <-d.tr.Inbound():
			if !ok {
				return errors.New("node: transport closed")
			}
			d.handleFrame(in)
		case req := <-d.statusCh:
			req <- d.buildStatus()
		case s := <-d.sendCh:
			s.res <- d.originate(s.dst, s.body)
		}
	}
}

// emitHello broadcasts the node's periodic HELLO to every configured peer.
// The HELLO tick doubles as the gauge refresh cadence.
func (d *Daemon) emitHello() {
	h := d.node.GenerateHello(d.now())
	d.broadcast(KindControl, olsr.MarshalHello(h))
	d.refreshGauges()
}

// emitTC floods the node's periodic TC, if it has an advertised set.
func (d *Daemon) emitTC() {
	t := d.node.GenerateTC(d.now())
	if t == nil {
		return
	}
	d.broadcast(KindControl, olsr.MarshalTC(t))
}

// broadcast sends one payload to every configured peer, each in its own
// frame (the echo stamps are per-destination).
func (d *Daemon) broadcast(kind FrameKind, payload []byte) {
	for _, id := range d.order {
		d.sendTo(d.peers[id], kind, payload)
	}
}

// sendTo frames and transmits one payload to one peer, stamping the RTT
// echo triplet: our clock now, the peer's newest stamp, and how long we
// have held it.
func (d *Daemon) sendTo(p *peerState, kind FrameKind, payload []byte) {
	nowN := uint64(d.now())
	f := Frame{Kind: kind, Sender: d.cfg.ID, TxTime: nowN, Payload: payload}
	if p.lastRxTx != 0 {
		f.EchoTime = p.lastRxTx
		f.EchoDelay = nowN - p.lastRxAt
	}
	buf, err := MarshalFrame(&f)
	if err != nil {
		d.metrics.sendErrors.Inc()
		return
	}
	if err := d.tr.Send(p.addr, buf); err != nil {
		d.metrics.sendErrors.Inc()
		d.logf("node %d: send to %d (%s): %v", d.cfg.ID, p.id, p.addr, err)
		return
	}
	d.metrics.framesOut.Inc()
	d.metrics.bytesOut.Add(uint64(len(buf)))
}

// handleFrame ingests one datagram: authenticate the sender against the
// peer table, harvest the RTT echo, then dispatch by kind.
func (d *Daemon) handleFrame(in Inbound) {
	d.metrics.framesIn.Inc()
	d.metrics.bytesIn.Add(uint64(len(in.Data)))
	f, err := UnmarshalFrame(in.Data)
	if err != nil {
		d.metrics.decodeErrors.Inc()
		return
	}
	p := d.peers[f.Sender]
	if p == nil {
		// Not in our peer table: out of radio range, or noise. Either
		// way it contributes no protocol state.
		d.metrics.unknownSender.Inc()
		return
	}
	// Timestamp-sensitive state uses the transport's arrival stamp, not
	// the processing instant: time the frame waited in the receive queue
	// is the host's, and must be charged neither to the round trip we
	// close here nor to the echo we will emit.
	at := d.now()
	if !in.At.IsZero() {
		if e := in.At.Sub(d.start); e >= 0 && e < at {
			at = e
		}
	}
	if f.TxTime != 0 {
		p.lastRxTx = f.TxTime
		p.lastRxAt = uint64(at)
	}
	p.heard = at
	if f.EchoTime != 0 {
		// The peer echoed one of our stamps: close the round trip in our
		// own clock, net of the time the peer held it.
		rtt := time.Duration(int64(at) - int64(f.EchoTime) - int64(f.EchoDelay))
		p.rtt.sample(rtt)
		if rtt >= 0 {
			d.metrics.rtt.Observe(rtt.Seconds())
		}
	}
	switch f.Kind {
	case KindControl:
		d.handleControl(p, f.Payload)
	case KindData:
		d.handleData(f.Payload)
	}
}

// handleControl dispatches one olsr wire message from an authenticated
// peer.
func (d *Daemon) handleControl(p *peerState, payload []byte) {
	t, err := olsr.PeekType(payload)
	if err != nil {
		d.metrics.decodeErrors.Inc()
		return
	}
	now := d.now()
	switch t {
	case olsr.MsgHello:
		h, err := olsr.UnmarshalHello(payload)
		if err != nil {
			d.metrics.decodeErrors.Inc()
			return
		}
		if h.Origin != p.id {
			// A HELLO whose origin disagrees with the frame sender is
			// spoofed or relayed; HELLOs are strictly one-hop.
			d.metrics.spoofRejects.Inc()
			return
		}
		d.metrics.hellosIn.Inc()
		d.senseLink(p, now)
		d.node.HandleHello(h, now)
	case olsr.MsgTC:
		tc, err := olsr.UnmarshalTC(payload)
		if err != nil {
			d.metrics.decodeErrors.Inc()
			return
		}
		d.metrics.tcsIn.Inc()
		if d.node.HandleTC(tc, p.id, now) {
			// RFC 3626 forwarding: the sender selected us as MPR —
			// re-flood the TC to our whole neighborhood. Duplicate
			// suppression in HandleTC bounds the storm.
			d.metrics.tcsForwarded.Inc()
			d.broadcast(KindControl, payload)
		}
	}
}

// senseLink refreshes this node's link to the peer on HELLO receipt: the
// daemon is the link-sensing layer the simulator's oracle used to be. In
// measured mode the weight is the smoothed round-trip time in milliseconds;
// until a first round trip completes the link stays unproven and forms no
// routing edge (measurement-enforced bidirectionality). Oracle mode trusts
// the peer table's declared weight, with the HELLO as the liveness proof.
func (d *Daemon) senseLink(p *peerState, now time.Duration) {
	w := p.weight
	if d.cfg.Measured {
		var ok bool
		if w, ok = p.rtt.weight(); !ok {
			return
		}
		// Hysteresis: hold the link at its standing weight until the
		// measurement moves by more than a quarter — the refresh then
		// only extends the validity deadline, leaving the routing caches
		// (and the mesh's route choices) undisturbed by residual noise.
		if p.linkW > 0 && math.Abs(w-p.linkW) < p.linkW/4 {
			w = p.linkW
		}
		p.linkW = w
	}
	d.node.UpdateLink(p.id, w, now)
}

// handleData delivers or forwards one data packet through the node's own
// routing table.
func (d *Daemon) handleData(payload []byte) {
	pkt, err := UnmarshalData(payload)
	if err != nil {
		d.metrics.decodeErrors.Inc()
		return
	}
	if pkt.Dst == d.cfg.ID {
		d.metrics.dataDelivered.Inc()
		if d.cfg.OnData != nil {
			d.cfg.OnData(pkt.Src, pkt.Seq, pkt.Body)
		}
		return
	}
	if pkt.TTL == 0 {
		d.metrics.dataDropped.Inc()
		return
	}
	pkt.TTL--
	if err := d.routeData(pkt); err != nil {
		d.metrics.dataDropped.Inc()
		d.logf("node %d: drop data %d->%d: %v", d.cfg.ID, pkt.Src, pkt.Dst, err)
		return
	}
	d.metrics.dataForwarded.Inc()
}

// routeData looks the packet's destination up in the routing table and
// transmits it to the next hop.
func (d *Daemon) routeData(pkt *DataPacket) error {
	routes, err := d.node.Routes(d.now())
	if err != nil {
		return err
	}
	r, ok := routes.Lookup(pkt.Dst)
	if !ok {
		return fmt.Errorf("no route to %d", pkt.Dst)
	}
	next := d.peers[r.NextHop]
	if next == nil {
		return fmt.Errorf("next hop %d not a peer", r.NextHop)
	}
	buf, err := MarshalData(pkt)
	if err != nil {
		return err
	}
	d.sendTo(next, KindData, buf)
	return nil
}

// originate injects a locally-sourced data packet.
func (d *Daemon) originate(dst int64, body []byte) error {
	pkt := &DataPacket{
		Dst: dst, Src: d.cfg.ID,
		Seq: d.dataSeq, TTL: d.cfg.TTL,
		Body: body,
	}
	d.dataSeq++
	if err := d.routeData(pkt); err != nil {
		return err
	}
	d.metrics.dataOriginated.Inc()
	return nil
}

// Send originates one data packet toward dst, routed hop by hop through the
// daemons' tables. It blocks until the run loop accepts it and returns an
// error when no usable route exists. Valid only while Run is active.
func (d *Daemon) Send(dst int64, body []byte) error {
	req := dataSend{dst: dst, body: body, res: make(chan error, 1)}
	select {
	case d.sendCh <- req:
		select {
		case err := <-req.res:
			return err
		case <-d.done:
			return errors.New("node: daemon stopped")
		}
	case <-d.done:
		return errors.New("node: daemon stopped")
	}
}
