package olsr

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestHelloRoundTrip(t *testing.T) {
	h := &Hello{
		Origin: 42,
		Seq:    1001,
		Links: []LinkInfo{
			{Neighbor: 7, Weight: 3.25},
			{Neighbor: 9, Weight: 8},
		},
		MPRs: []int64{7},
	}
	got, err := UnmarshalHello(MarshalHello(h))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h, got) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", h, got)
	}
}

func TestTCRoundTrip(t *testing.T) {
	tc := &TC{
		Origin: 3,
		ANSN:   77,
		Seq:    12,
		Links:  []LinkInfo{{Neighbor: 5, Weight: 1.5}},
	}
	got, err := UnmarshalTC(MarshalTC(tc))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tc, got) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", tc, got)
	}
}

func TestEmptyMessagesRoundTrip(t *testing.T) {
	h, err := UnmarshalHello(MarshalHello(&Hello{Origin: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Links) != 0 || len(h.MPRs) != 0 {
		t.Error("empty hello grew content")
	}
	tc, err := UnmarshalTC(MarshalTC(&TC{Origin: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if len(tc.Links) != 0 {
		t.Error("empty tc grew content")
	}
}

// Property: round trips preserve arbitrary messages.
func TestHelloRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(origin int64, seq uint16, nLinks, nMPRs uint8) bool {
		h := &Hello{Origin: origin, Seq: seq}
		for i := 0; i < int(nLinks%32); i++ {
			h.Links = append(h.Links, LinkInfo{Neighbor: rng.Int63(), Weight: rng.Float64() * 100})
		}
		for i := 0; i < int(nMPRs%16); i++ {
			h.MPRs = append(h.MPRs, rng.Int63())
		}
		got, err := UnmarshalHello(MarshalHello(h))
		if err != nil {
			return false
		}
		if got.Origin != h.Origin || got.Seq != h.Seq ||
			len(got.Links) != len(h.Links) || len(got.MPRs) != len(h.MPRs) {
			return false
		}
		for i := range h.Links {
			if got.Links[i] != h.Links[i] {
				return false
			}
		}
		for i := range h.MPRs {
			if got.MPRs[i] != h.MPRs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTCRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(origin int64, seq, ansn uint16, nLinks uint8) bool {
		tc := &TC{Origin: origin, Seq: seq, ANSN: ansn}
		for i := 0; i < int(nLinks%32); i++ {
			tc.Links = append(tc.Links, LinkInfo{Neighbor: rng.Int63(), Weight: rng.Float64() * 100})
		}
		got, err := UnmarshalTC(MarshalTC(tc))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(tcNorm(tc), tcNorm(got))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func tcNorm(t *TC) TC {
	c := *t
	if len(c.Links) == 0 {
		c.Links = nil
	}
	return c
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalHello(nil); err == nil {
		t.Error("nil hello accepted")
	}
	if _, err := UnmarshalTC([]byte{byte(MsgTC), 0, 1}); err == nil {
		t.Error("short tc accepted")
	}
	if _, err := UnmarshalHello(MarshalTC(&TC{Origin: 1})); err == nil {
		t.Error("tc decoded as hello")
	}
	if _, err := UnmarshalTC(MarshalHello(&Hello{Origin: 1})); err == nil {
		t.Error("hello decoded as tc")
	}
	// Truncated link section.
	h := MarshalHello(&Hello{Origin: 1, Links: []LinkInfo{{Neighbor: 2, Weight: 3}}})
	if _, err := UnmarshalHello(h[:len(h)-4]); err == nil {
		t.Error("truncated hello accepted")
	}
	tc := MarshalTC(&TC{Origin: 1, Links: []LinkInfo{{Neighbor: 2, Weight: 3}}})
	if _, err := UnmarshalTC(tc[:len(tc)-1]); err == nil {
		t.Error("truncated tc accepted")
	}
	if _, err := PeekType([]byte{99}); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := PeekType(nil); err == nil {
		t.Error("empty buffer accepted")
	}
	if tp, err := PeekType(MarshalHello(&Hello{Origin: 1})); err != nil || tp != MsgHello {
		t.Error("PeekType failed on hello")
	}
}

func TestMsgTypeString(t *testing.T) {
	if MsgHello.String() != "HELLO" || MsgTC.String() != "TC" {
		t.Error("message type names")
	}
	if MsgType(9).String() != "MsgType(9)" {
		t.Error("unknown type name")
	}
}

func TestTCDeltaRoundTrip(t *testing.T) {
	for _, d := range []*TCDelta{
		{Origin: 3, Seq: 12, ANSN: 77, FullSeq: 9, Index: 3,
			Add: []LinkInfo{{Neighbor: 5, Weight: 1.5}, {Neighbor: 8, Weight: 2}},
			Del: []int64{2, -6}},
		{Origin: -1, Seq: 65535, ANSN: 0, FullSeq: 65534, Index: 1},
		{Origin: 4, Seq: 1, FullSeq: 0, Index: 2, Del: []int64{9}},
	} {
		got, err := UnmarshalTCDelta(MarshalTCDelta(d))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(d, got) {
			t.Errorf("round trip mismatch:\n%+v\n%+v", d, got)
		}
	}
	if tp, err := PeekType(MarshalTCDelta(&TCDelta{Origin: 1, Index: 1})); err != nil || tp != MsgTCDelta {
		t.Error("PeekType failed on tc delta")
	}
	if MsgTCDelta.String() != "TC-DELTA" {
		t.Error("tc delta type name")
	}
}

func TestTCDeltaRejectsMalformed(t *testing.T) {
	if _, err := UnmarshalTCDelta(nil); err == nil {
		t.Error("nil delta accepted")
	}
	if _, err := UnmarshalTCDelta(MarshalTC(&TC{Origin: 1})); err == nil {
		t.Error("tc decoded as delta")
	}
	// A zero chain index is never emitted: Index is 1-based, the full TC
	// itself being position 0.
	if _, err := UnmarshalTCDelta(MarshalTCDelta(&TCDelta{Origin: 1, Index: 0})); err == nil {
		t.Error("zero chain index accepted")
	}
	d := MarshalTCDelta(&TCDelta{Origin: 1, Index: 1,
		Add: []LinkInfo{{Neighbor: 2, Weight: 3}}, Del: []int64{4}})
	if _, err := UnmarshalTCDelta(d[:len(d)-1]); err == nil {
		t.Error("truncated delta accepted")
	}
	if _, err := UnmarshalTCDelta(append(append([]byte(nil), d...), 0xff)); err == nil {
		t.Error("delta with trailing garbage accepted")
	}
}
