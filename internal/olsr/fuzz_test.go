package olsr

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// The message decoders face raw network bytes once the daemon runs the
// protocol over real sockets. The fuzzers assert the hardening contract: no
// input panics or over-allocates, and every accepted input re-encodes
// bit-identically (the wire form is canonical), so a decoded message is
// always one the marshaller could have produced.

func helloSeeds() [][]byte {
	return [][]byte{
		MarshalHello(&Hello{Origin: 1, Seq: 7}),
		MarshalHello(&Hello{
			Origin: -3, Seq: 65535,
			Links: []LinkInfo{{Neighbor: 2, Weight: 1.5}, {Neighbor: 3, Weight: 0.25}},
			MPRs:  []int64{2},
		}),
		MarshalHello(&Hello{
			Origin: 9, Seq: 1,
			Links: []LinkInfo{{Neighbor: 4, Weight: 12}},
			MPRs:  []int64{4, 5},
			LQs:   []LinkInfo{{Neighbor: 4, Weight: 0.75}, {Neighbor: 5, Weight: 1}},
		}),
	}
}

func FuzzUnmarshalHello(f *testing.F) {
	for _, s := range helloSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, buf []byte) {
		h, err := UnmarshalHello(buf)
		if err != nil {
			return
		}
		for _, l := range h.Links {
			if !validWeight(l.Weight) {
				t.Fatalf("accepted invalid link weight %v", l.Weight)
			}
		}
		for _, l := range h.LQs {
			if !validWeight(l.Weight) {
				t.Fatalf("accepted invalid lq weight %v", l.Weight)
			}
		}
		if out := MarshalHello(h); !bytes.Equal(out, buf) {
			t.Fatalf("non-canonical hello: decode/encode changed %x to %x", buf, out)
		}
	})
}

func FuzzUnmarshalTC(f *testing.F) {
	f.Add(MarshalTC(&TC{Origin: 1, Seq: 2, ANSN: 3}))
	f.Add(MarshalTC(&TC{
		Origin: -9, Seq: 65535, ANSN: 32768,
		Links: []LinkInfo{{Neighbor: 1, Weight: 0}, {Neighbor: 7, Weight: 123.5}},
	}))
	f.Fuzz(func(t *testing.T, buf []byte) {
		tc, err := UnmarshalTC(buf)
		if err != nil {
			return
		}
		for _, l := range tc.Links {
			if !validWeight(l.Weight) {
				t.Fatalf("accepted invalid link weight %v", l.Weight)
			}
		}
		if out := MarshalTC(tc); !bytes.Equal(out, buf) {
			t.Fatalf("non-canonical tc: decode/encode changed %x to %x", buf, out)
		}
	})
}

func FuzzUnmarshalTCDelta(f *testing.F) {
	f.Add(MarshalTCDelta(&TCDelta{Origin: 1, Seq: 2, ANSN: 3, FullSeq: 1, Index: 1}))
	f.Add(MarshalTCDelta(&TCDelta{
		Origin: -9, Seq: 65535, ANSN: 32768, FullSeq: 65530, Index: 5,
		Add: []LinkInfo{{Neighbor: 1, Weight: 0}, {Neighbor: 7, Weight: 123.5}},
		Del: []int64{3, -4},
	}))
	f.Add(MarshalTCDelta(&TCDelta{Origin: 4, Seq: 9, FullSeq: 8, Index: 1, Del: []int64{12}}))
	f.Fuzz(func(t *testing.T, buf []byte) {
		d, err := UnmarshalTCDelta(buf)
		if err != nil {
			return
		}
		if d.Index == 0 {
			t.Fatal("accepted zero chain index")
		}
		for _, l := range d.Add {
			if !validWeight(l.Weight) {
				t.Fatalf("accepted invalid link weight %v", l.Weight)
			}
		}
		if out := MarshalTCDelta(d); !bytes.Equal(out, buf) {
			t.Fatalf("non-canonical tc delta: decode/encode changed %x to %x", buf, out)
		}
	})
}

// corruptWeight rewrites the first link weight of an encoded message in
// place. Layout: type(1) origin(8) seq(2) count(2) for HELLOs, plus ANSN
// before the count for TCs; the first weight sits 8 bytes into the first
// link entry.
func corruptWeight(buf []byte, linkOff int, w float64) []byte {
	out := bytes.Clone(buf)
	binary.BigEndian.PutUint64(out[linkOff+8:], math.Float64bits(w))
	return out
}

// TestUnmarshalRejectsHostileWeights locks the validation the fuzzers rely
// on: NaN, infinite and negative weights — expressible on the wire, never
// produced by a legitimate sender — are decode errors, not poison that
// reaches the metric comparisons.
func TestUnmarshalRejectsHostileWeights(t *testing.T) {
	hello := MarshalHello(&Hello{Origin: 1, Links: []LinkInfo{{Neighbor: 2, Weight: 3}}})
	tc := MarshalTC(&TC{Origin: 1, Links: []LinkInfo{{Neighbor: 2, Weight: 3}}})
	for _, w := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1} {
		if _, err := UnmarshalHello(corruptWeight(hello, 13, w)); err == nil {
			t.Errorf("hello with link weight %v accepted", w)
		}
		if _, err := UnmarshalTC(corruptWeight(tc, 15, w)); err == nil {
			t.Errorf("tc with link weight %v accepted", w)
		}
	}
	lq := MarshalHello(&Hello{Origin: 1, LQs: []LinkInfo{{Neighbor: 2, Weight: 0.5}}})
	// The LQ block starts after header(13) + mpr count(2) + lq count(2).
	if _, err := UnmarshalHello(corruptWeight(lq, 17, math.NaN())); err == nil {
		t.Error("hello with NaN lq weight accepted")
	}
	// The delta's Add block starts after header(13) + fullseq(2) +
	// index(2) + add count(2).
	delta := MarshalTCDelta(&TCDelta{Origin: 1, Index: 1, Add: []LinkInfo{{Neighbor: 2, Weight: 3}}})
	if _, err := UnmarshalTCDelta(corruptWeight(delta, 19, math.NaN())); err == nil {
		t.Error("tc delta with NaN add weight accepted")
	}
}

func TestUnmarshalRejectsNonCanonicalEncodings(t *testing.T) {
	// An explicit zero-count LQ block: the marshaller omits empty blocks.
	h := MarshalHello(&Hello{Origin: 1, MPRs: []int64{2}})
	if _, err := UnmarshalHello(append(bytes.Clone(h), 0, 0)); err == nil {
		t.Error("hello with explicit empty lq block accepted")
	}
	// Trailing bytes after a complete TC.
	tc := MarshalTC(&TC{Origin: 1, Links: []LinkInfo{{Neighbor: 2, Weight: 3}}})
	if _, err := UnmarshalTC(append(bytes.Clone(tc), 0xff)); err == nil {
		t.Error("tc with trailing garbage accepted")
	}
}

// TestUnmarshalAbsurdCounts claims far more entries than the buffer holds;
// the decoders must error out before allocating for the claim.
func TestUnmarshalAbsurdCounts(t *testing.T) {
	hello := MarshalHello(&Hello{Origin: 1})
	for _, off := range []int{11} { // link count field
		b := bytes.Clone(hello)
		binary.BigEndian.PutUint16(b[off:], 65535)
		if _, err := UnmarshalHello(b); err == nil {
			t.Errorf("hello claiming 65535 entries at offset %d accepted", off)
		}
	}
	tc := MarshalTC(&TC{Origin: 1})
	b := bytes.Clone(tc)
	binary.BigEndian.PutUint16(b[13:], 65535)
	if _, err := UnmarshalTC(b); err == nil {
		t.Error("tc claiming 65535 links accepted")
	}
	delta := MarshalTCDelta(&TCDelta{Origin: 1, Index: 1})
	for _, off := range []int{17, 19} { // add count, del count
		b := bytes.Clone(delta)
		binary.BigEndian.PutUint16(b[off:], 65535)
		if _, err := UnmarshalTCDelta(b); err == nil {
			t.Errorf("tc delta claiming 65535 entries at offset %d accepted", off)
		}
	}
}
