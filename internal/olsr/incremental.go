package olsr

import (
	"cmp"
	"fmt"
	"slices"

	"qolsr/internal/graph"
)

// Incremental routing: instead of rebuilding the known-topology graph and
// re-running Dijkstra from scratch on every state change, the node maintains
// a long-lived routing graph and an incremental SPF solution (graph.SPF)
// over it, and repairs only what a change touched.
//
// The unit of change is the unordered node pair. Every handler that alters
// protocol state records the pairs whose effective link may have changed
// (the dirty set); at the next table rebuild each dirty pair is re-resolved
// against the authoritative state maps and the graph edge is added, removed
// or reweighted to match, feeding graph.SPF.Touch. Resolution reproduces the
// full rebuild's first-writer-wins precedence exactly — own links, then
// HELLO-learned two-hop links (smaller direct-neighbor contributor first),
// then TC-learned links (smaller origin first) — so the repaired table is
// bit-identical to the one buildKnownTopology plus canonical Dijkstra
// produces (Config.RouteCrossCheck pins this down in tests).
//
// The routing graph only ever grows its node set: nodes that drop out of the
// protocol state just lose their edges and become unreachable, which keeps
// every index (and the cached SPF labels) stable. Canonical tie-breaking is
// by NodeID, never index, so the append order cannot leak into routes.

// pairKey is an unordered node pair in normalised (lo <= hi) form.
type pairKey struct {
	lo, hi int64
}

// markPair records that the effective link between a and b may have changed.
// Self-pairs are ignored, mirroring the edge accumulator's self-loop skip.
// The record is an append to the dirty list — the handlers' hot path —
// deferring deduplication to the sort the consumer performs anyway.
func (n *Node) markPair(a, b int64) {
	if a == b {
		return
	}
	if a > b {
		a, b = b, a
	}
	n.dirty = append(n.dirty, pairKey{lo: a, hi: b})
}

// markNeighborPairs marks every pair the given neighbor's HELLO table
// advertises. It is called when the neighbor's directness toggles (its own
// link appearing or expiring), which changes the eligibility of all its
// advertised links at once.
func (n *Node) markNeighborPairs(nb int64) {
	if tbl := n.neighbors.get(nb); tbl != nil {
		for _, l := range tbl.adv {
			n.markPair(nb, l.Neighbor)
		}
	}
}

// resolvePair returns the current effective weight of the link between a and
// b, consulting the state maps in the full rebuild's precedence order: own
// links first, then HELLO advertisements from direct neighbors (the smaller
// endpoint's advertisement wins), then TC advertisements (the smaller origin
// wins). The second return is false when no valid state supports the link.
func (n *Node) resolvePair(a, b int64) (float64, bool) {
	if a == n.ID {
		if l, ok := n.links.get(b); ok {
			return l.weight, true
		}
	} else if b == n.ID {
		if l, ok := n.links.get(a); ok {
			return l.weight, true
		}
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	if w, ok := n.helloAdvertised(lo, hi); ok {
		return w, true
	}
	if w, ok := n.helloAdvertised(hi, lo); ok {
		return w, true
	}
	if t := n.topology.get(lo); t != nil {
		if w, ok := advWeight(t.adv, hi); ok {
			return w, true
		}
	}
	if t := n.topology.get(hi); t != nil {
		if w, ok := advWeight(t.adv, lo); ok {
			return w, true
		}
	}
	return 0, false
}

// helloAdvertised returns nb's advertised weight for its link to peer, when
// nb is a direct neighbor (we hold our own link to it) with a live HELLO
// table. Links to ourselves never come from this tier (our own link table is
// authoritative for those) and neither end can be us as contributor.
func (n *Node) helloAdvertised(nb, peer int64) (float64, bool) {
	if nb == n.ID || peer == n.ID {
		return 0, false
	}
	if !n.links.has(nb) {
		return 0, false
	}
	tbl := n.neighbors.get(nb)
	if tbl == nil {
		return 0, false
	}
	return advWeight(tbl.adv, peer)
}

// applyPair reconciles one dirty pair: re-resolve its effective weight and
// make the routing graph agree, reporting any resulting edge change to the
// incremental SPF.
func (n *Node) applyPair(p pairKey, channel string) error {
	w, ok := n.resolvePair(p.lo, p.hi)
	ia, haveA := n.rindex[p.lo]
	ib, haveB := n.rindex[p.hi]
	if !ok {
		// No supporting state: drop the edge if it exists.
		if haveA && haveB {
			if e, exists := n.rg.EdgeBetween(ia, ib); exists {
				if err := n.rg.RemoveEdge(e); err != nil {
					return err
				}
				if n.rspf != nil {
					n.rspf.Touch(ia, ib)
				}
			}
		}
		return nil
	}
	if !haveA {
		idx, err := n.rg.AddNode(graph.NodeID(p.lo))
		if err != nil {
			return err
		}
		ia = idx
		n.rindex[p.lo] = ia
	}
	if !haveB {
		idx, err := n.rg.AddNode(graph.NodeID(p.hi))
		if err != nil {
			return err
		}
		ib = idx
		n.rindex[p.hi] = ib
	}
	if e, exists := n.rg.EdgeBetween(ia, ib); exists {
		ws, err := n.rg.Weights(channel)
		if err != nil {
			return err
		}
		if ws[e] != w {
			if err := n.rg.SetWeight(channel, e, w); err != nil {
				return err
			}
			if n.rspf != nil {
				n.rspf.Touch(ia, ib)
			}
		}
		return nil
	}
	e, err := n.rg.AddEdge(ia, ib)
	if err != nil {
		return err
	}
	if err := n.rg.SetWeight(channel, e, w); err != nil {
		return err
	}
	if n.rspf != nil {
		n.rspf.Touch(ia, ib)
	}
	return nil
}

// incrementalRoutes reconciles the dirty pairs into the routing graph,
// repairs the incremental SPF and extracts a fresh routing-table snapshot.
// Callers must have run expire(now) first.
func (n *Node) incrementalRoutes() (*Routes, error) {
	channel := n.cfg.Metric.Name()
	if n.rg == nil {
		g, err := graph.NewWithIDs([]graph.NodeID{graph.NodeID(n.ID)})
		if err != nil {
			return nil, err
		}
		n.rg = g
		n.rindex = map[int64]int32{n.ID: 0}
	}
	if len(n.dirty) > 0 {
		// Process in sorted order so node append order (hence index
		// assignment) is a pure function of the protocol state, not of
		// arrival order; deduplicate so each pair resolves once.
		slices.SortFunc(n.dirty, func(a, b pairKey) int {
			if a.lo != b.lo {
				return cmp.Compare(a.lo, b.lo)
			}
			return cmp.Compare(a.hi, b.hi)
		})
		for _, p := range slices.Compact(n.dirty) {
			if err := n.applyPair(p, channel); err != nil {
				return nil, err
			}
		}
		n.dirty = n.dirty[:0]
	}
	r := &Routes{}
	if n.rspf == nil {
		if n.rg.M() == 0 {
			return r, nil
		}
		spf, err := graph.NewSPF(n.rg, n.cfg.Metric, channel, n.rindex[n.ID])
		if err != nil {
			return nil, err
		}
		n.rspf = spf
		n.stats.SPFFull++
	} else {
		if err := n.rspf.Repair(); err != nil {
			return nil, err
		}
		n.stats.SPFIncremental++
	}
	// The permutation of indices in ascending NodeID order only changes when
	// nodes are appended.
	if len(n.perm) != n.rg.N() {
		n.perm = n.perm[:0]
		for i := 0; i < n.rg.N(); i++ {
			n.perm = append(n.perm, int32(i))
		}
		slices.SortFunc(n.perm, func(a, b int32) int { return cmp.Compare(n.rg.ID(a), n.rg.ID(b)) })
	}
	n.rfirst = n.rspf.FirstHops(n.rfirst)
	self := n.rindex[n.ID]
	for _, x := range n.perm {
		if x == self || !n.rspf.Reachable(x) {
			continue
		}
		r.dsts = append(r.dsts, int64(n.rg.ID(x)))
		r.routes = append(r.routes, Route{
			NextHop: int64(n.rg.ID(n.rfirst[x])),
			Value:   n.rspf.Value(x),
			Hops:    int(n.rspf.Hops(x)),
		})
	}
	return r, nil
}

// routesIdentical reports whether two routing tables carry identical content.
func routesIdentical(a, b *Routes) bool {
	if len(a.dsts) != len(b.dsts) {
		return false
	}
	for i := range a.dsts {
		if a.dsts[i] != b.dsts[i] || a.routes[i] != b.routes[i] {
			return false
		}
	}
	return true
}

// crossCheckRoutes validates an incremental table against a from-scratch
// rebuild (Config.RouteCrossCheck, the test mode).
func (n *Node) crossCheckRoutes(inc *Routes) error {
	full, err := n.fullRoutes()
	if err != nil {
		return err
	}
	if !routesIdentical(inc, full) {
		return fmt.Errorf("olsr: incremental routing table diverged from full rebuild:\nincremental: %v\nfull:        %v",
			inc.Table(), full.Table())
	}
	return nil
}
