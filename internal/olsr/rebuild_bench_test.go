package olsr

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// benchTopoNode builds one node holding a full n-node topology: direct
// links to its ring neighbors, and one ingested TC per remote origin
// advertising that origin's ring edges plus random chords (~deg mean
// degree). The returned advs slice is the per-origin link block, so a
// benchmark can re-send or perturb individual origins.
func benchTopoNode(b *testing.B, n int, deg float64, seed int64) (*Node, [][]LinkInfo, time.Duration) {
	b.Helper()
	cfg := testConfig()
	cfg.DenseIDs = n
	// The simulator owns duplicate suppression at the flood layer; without
	// this the never-advancing clock would grow the dup window without
	// bound as the benchmark re-sends the same origin.
	cfg.ExternalDupSuppression = true
	nd, err := NewNode(0, cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	now := time.Duration(0)
	nd.UpdateLink(1, 1+rng.Float64()*9, now)
	nd.UpdateLink(int64(n-1), 1+rng.Float64()*9, now)

	// Each origin advertises its two ring neighbors and deg-2 chords; the
	// weight of edge (a, b) is a pure function of the pair, so both
	// endpoints advertise the same value.
	weight := func(a, b int64) float64 {
		if a > b {
			a, b = b, a
		}
		return 1 + float64((a*2654435761+b)%1000)/111
	}
	advs := make([][]LinkInfo, n)
	chords := rand.New(rand.NewSource(seed + 1))
	neighbors := make([]map[int64]bool, n)
	for i := range neighbors {
		neighbors[i] = map[int64]bool{
			int64((i + 1) % n):     true,
			int64((i + n - 1) % n): true,
		}
	}
	extra := int(float64(n) * (deg - 2) / 2)
	for k := 0; k < extra; k++ {
		a, c := chords.Intn(n), chords.Intn(n)
		if a == c {
			continue
		}
		neighbors[a][int64(c)] = true
		neighbors[c][int64(a)] = true
	}
	for i := 1; i < n; i++ {
		var adv []LinkInfo
		for nb := range neighbors[i] {
			adv = append(adv, LinkInfo{Neighbor: nb, Weight: weight(int64(i), nb)})
		}
		adv = normalizeAdv(adv)
		advs[i] = adv
		nd.HandleTC(&TC{Origin: int64(i), ANSN: 1, Seq: uint16(i), Links: adv}, 1, now)
	}
	if _, err := nd.Routes(now); err != nil {
		b.Fatal(err)
	}
	return nd, advs, now
}

// BenchmarkTopologyRebuild measures the two steady-state ingest-and-rebuild
// paths against topology size and density. "refresh" re-sends an origin's
// unchanged link block (the interning fast path: deadline refresh, cached
// table stays valid). "change" flips one origin's link weight and rebuilds
// the routing table (dirty-pair marking plus incremental SPF repair).
func BenchmarkTopologyRebuild(b *testing.B) {
	for _, n := range []int{250, 1000, 2500} {
		for _, deg := range []float64{6, 12} {
			name := fmt.Sprintf("n=%d/deg=%g", n, deg)
			b.Run(name+"/refresh", func(b *testing.B) {
				nd, advs, now := benchTopoNode(b, n, deg, int64(n))
				origin := int64(n / 2)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					nd.HandleTC(&TC{Origin: origin, ANSN: 1, Seq: uint16(i), Links: advs[origin]}, 1, now)
					if _, err := nd.Routes(now); err != nil {
						b.Fatal(err)
					}
				}
				if s := nd.RebuildStats(); s.AdvChange > uint64(n) {
					b.Fatalf("refresh loop changed topology %d times", s.AdvChange)
				}
			})
			b.Run(name+"/change", func(b *testing.B) {
				nd, advs, now := benchTopoNode(b, n, deg, int64(n))
				origin := int64(n / 2)
				base := advs[origin]
				bumped := append([]LinkInfo(nil), base...)
				bumped[0].Weight++
				variants := [2][]LinkInfo{base, bumped}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					nd.HandleTC(&TC{Origin: origin, ANSN: 1, Seq: uint16(i), Links: variants[i%2]}, 1, now)
					if _, err := nd.Routes(now); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
