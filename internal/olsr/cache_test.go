package olsr

import (
	"testing"
	"time"
)

// Two queries against unchanged state must return the same snapshot — the
// versioned cache's basic contract.
func TestRoutesCachedWhileStateUnchanged(t *testing.T) {
	n, _ := NewNode(1, testConfig())
	now := time.Duration(0)
	n.UpdateLink(2, 5, now)
	r1, err := n.Routes(now)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r1.Lookup(2); !ok {
		t.Fatal("no route to direct neighbor")
	}
	r2, err := n.Routes(now + time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("unchanged state rebuilt the routing table")
	}
	g1, err := n.KnownTopology(now + time.Second)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := n.KnownTopology(now + 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("unchanged state rebuilt the known topology")
	}
}

// A refresh that re-announces identical content (the steady-state regime:
// the link oracle re-feeding stable weights, neighbors re-sending unchanged
// HELLOs) must not invalidate the cache.
func TestRoutesCacheSurvivesContentIdenticalRefresh(t *testing.T) {
	n, _ := NewNode(1, testConfig())
	now := time.Duration(0)
	n.UpdateLink(2, 5, now)
	h := &Hello{Origin: 2, Seq: 1, Links: []LinkInfo{
		{Neighbor: 1, Weight: 5}, {Neighbor: 3, Weight: 7},
	}}
	n.HandleHello(h, now)
	r1, err := n.Routes(now)
	if err != nil {
		t.Fatal(err)
	}
	// Same links re-announced later: deadlines move, content does not.
	now += time.Second
	n.UpdateLink(2, 5, now)
	n.HandleHello(&Hello{Origin: 2, Seq: 2, Links: h.Links}, now)
	r2, err := n.Routes(now)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("content-identical refresh invalidated the table")
	}
	// A weight change is a content change.
	now += time.Second
	n.UpdateLink(2, 6, now)
	r3, err := n.Routes(now)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r2 {
		t.Error("weight change did not invalidate the table")
	}
	if r, _ := r3.Lookup(2); r.Value != 6 {
		t.Errorf("route value = %v after weight change, want 6", r.Value)
	}
}

// The satellite requirement: a table must refresh after link expiry with no
// intervening message — pure passage of virtual time crosses the expiry
// watermark and invalidates the cache.
func TestRoutesRefreshAfterExpiryWithoutMessages(t *testing.T) {
	n, _ := NewNode(1, testConfig())
	now := time.Duration(0)
	n.UpdateLink(2, 5, now)
	n.HandleHello(&Hello{Origin: 2, Seq: 1, Links: []LinkInfo{
		{Neighbor: 1, Weight: 5}, {Neighbor: 3, Weight: 7},
	}}, now)
	r, err := n.Routes(now)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("initial table has %d routes, want 2 (neighbor and two-hop)", r.Len())
	}
	// Past the neighbor hold time (6s default), with no handler invoked in
	// between, the cached table must be dropped and recomputed empty.
	r, err = n.Routes(now + 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Errorf("table after expiry has %d routes, want 0", r.Len())
	}
}

// TC-learned topology expires independently of the neighborhood, on its own
// (longer) hold time, and must also invalidate the cached table when it goes.
func TestRoutesRefreshAfterTopologyExpiry(t *testing.T) {
	cfg := testConfig()
	n, _ := NewNode(4, cfg)
	now := time.Duration(0)
	refresh := func(at time.Duration, seq uint16) {
		n.UpdateLink(3, 9, at)
		n.HandleHello(&Hello{Origin: 3, Seq: seq, Links: []LinkInfo{
			{Neighbor: 2, Weight: 6}, {Neighbor: 4, Weight: 9},
		}}, at)
	}
	refresh(now, 1)
	n.HandleTC(&TC{Origin: 2, ANSN: 1, Seq: 1, Links: []LinkInfo{
		{Neighbor: 1, Weight: 4}, {Neighbor: 3, Weight: 6},
	}}, 3, now)
	r, err := n.Routes(now)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Lookup(1); !ok {
		t.Fatal("no TC-learned route to node 1")
	}
	// Keep the neighborhood alive past the topology hold time (15s): the
	// remote destination must drop out when its TC entry expires.
	for i := 1; i <= 4; i++ {
		refresh(time.Duration(i)*4*time.Second, uint16(i+1))
	}
	r, err = n.Routes(16 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Lookup(1); ok {
		t.Error("route via expired TC entry survived")
	}
	if _, ok := r.Lookup(3); !ok {
		t.Error("refreshed neighbor route lost with the TC expiry")
	}
}

// The expiry watermark must not suppress later deadlines once the earliest
// has fired: entries expiring at different times drop out in order.
func TestExpiryWatermarkStaggeredDeadlines(t *testing.T) {
	n, _ := NewNode(1, testConfig())
	n.UpdateLink(2, 5, 0)                     // expires at 6s
	n.UpdateLink(3, 7, 2*time.Second)         // expires at 8s
	r, _ := n.Routes(6500 * time.Millisecond) // first deadline passed
	if _, ok := r.Lookup(2); ok {
		t.Error("first link survived its deadline")
	}
	if _, ok := r.Lookup(3); !ok {
		t.Error("second link expired early")
	}
	r, _ = n.Routes(8500 * time.Millisecond)
	if r.Len() != 0 {
		t.Errorf("table has %d routes after all deadlines, want 0", r.Len())
	}
}

// A cached snapshot handed to a caller must stay internally consistent after
// the node moves on: rebuilds allocate fresh artifacts instead of mutating
// the old ones.
func TestRoutesSnapshotStableAfterRebuild(t *testing.T) {
	n, _ := NewNode(1, testConfig())
	now := time.Duration(0)
	n.UpdateLink(2, 5, now)
	old, err := n.Routes(now)
	if err != nil {
		t.Fatal(err)
	}
	oldRoute, ok := old.Lookup(2)
	if !ok {
		t.Fatal("no initial route")
	}
	n.UpdateLink(2, 9, now) // content change: rebuild on next query
	if _, err := n.Routes(now); err != nil {
		t.Fatal(err)
	}
	if r, ok := old.Lookup(2); !ok || r != oldRoute {
		t.Error("retained snapshot changed under a rebuild")
	}
}
