package olsr

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"time"

	"qolsr/internal/core"
	"qolsr/internal/graph"
	"qolsr/internal/metric"
	"qolsr/internal/mpr"
)

// Config parameterises a protocol node. The zero value is not usable; use
// DefaultConfig as a base.
type Config struct {
	// HelloInterval and TCInterval are emission periods (RFC 3626
	// defaults: 2s and 5s).
	HelloInterval time.Duration
	TCInterval    time.Duration
	// NeighborHoldTime and TopologyHoldTime are state validity windows
	// (RFC 3626: 3x the emission interval).
	NeighborHoldTime time.Duration
	TopologyHoldTime time.Duration
	// Metric is the QoS metric driving ANS selection and routing.
	Metric metric.Metric
	// Selector computes the advertised neighbor set (default core.FNBP).
	Selector core.Selector
	// MPRHeuristic computes the flooding relay set (default RFC greedy).
	MPRHeuristic mpr.Heuristic
	// MeasuredQoS switches link sensing from the oracle to measurement:
	// instead of weights fed by UpdateLink from the topology, the node
	// derives them from windowed HELLO delivery ratios (ETX for additive
	// metrics, the delivery product for concave ones — see linkquality.go)
	// and HELLOs carry the LQ block so both link ends converge on the
	// same bidirectional estimate.
	MeasuredQoS bool
	// LQWindow is the HELLO-history window measured ratios average over
	// (default DefaultLQWindow). Only read under MeasuredQoS.
	LQWindow int
	// ExternalLinkSensing disables the protocol's own link sensing on
	// HELLO receipt (both the oracle adoption of the sender's advertised
	// weight and the MeasuredQoS delivery estimator): the embedding host
	// owns the link table and feeds it through UpdateLink. The deployable
	// daemon uses this to drive weights from real round-trip timing — the
	// protocol machinery must not overwrite a measurement it cannot make.
	ExternalLinkSensing bool
	// RouteCrossCheck is the incremental engine's validation mode, meant
	// for tests: every routing table produced by the incremental repair is
	// compared against a from-scratch rebuild and Routes errors on any
	// divergence. It turns every table rebuild into a full one — do not
	// enable it outside tests.
	RouteCrossCheck bool
}

// DefaultConfig returns RFC-style timers with FNBP selection under the given
// metric.
func DefaultConfig(m metric.Metric) Config {
	return Config{
		HelloInterval:    2 * time.Second,
		TCInterval:       5 * time.Second,
		NeighborHoldTime: 6 * time.Second,
		TopologyHoldTime: 15 * time.Second,
		Metric:           m,
		Selector:         core.FNBP{},
		MPRHeuristic:     mpr.Greedy,
	}
}

type linkEntry struct {
	weight  float64
	expires time.Duration
}

type neighborTable struct {
	links map[int64]float64 // the neighbor's own links, from its HELLO
	// adv is the advertisement the table was built from, retained for the
	// re-announcement fast path: emitters publish replace-on-change link
	// blocks (never mutated after emission), so one slices.Equal against
	// the latest message detects the steady state without a map probe per
	// link.
	adv     []LinkInfo
	expires time.Duration
}

type topoEntry struct {
	ansn    uint16
	links   map[int64]float64
	adv     []LinkInfo // see neighborTable.adv
	expires time.Duration
}

// dupSeq is one duplicate-suppression entry: a TC sequence number seen from
// an origin, live until expires. Liveness is checked lazily at probe time —
// under the node's monotone event clock that is exactly the eager-drain
// semantics (an entry is a duplicate iff expires > now), with no expiry
// bookkeeping on the flooding hot path.
type dupSeq struct {
	seq     uint16
	expires time.Duration
}

// Route is one routing-table entry.
type Route struct {
	// NextHop is the neighbor to forward through.
	NextHop int64
	// Value is the QoS value of the route under the node's metric.
	Value float64
	// Hops is the route length.
	Hops int
}

// noExpiry is the watermark value when no tracked deadline is pending.
const noExpiry = time.Duration(math.MaxInt64)

// Node is one OLSR/QOLSR protocol participant. Nodes are single-goroutine
// state machines driven by the simulator: handlers must be called from one
// goroutine.
//
// Everything derived from the soft state — the local view, the MPR/ANS
// selection, the known topology and the routing table — is a cached artifact
// under a version counter: link-state style, routes are recomputed when the
// state changes (message ingestion that alters content, or soft-state
// expiry), not on every lookup. Handlers that re-announce unchanged content
// only refresh validity deadlines, so a converged network serves routing
// lookups from cache indefinitely.
type Node struct {
	// ID is the node's unique protocol identifier (also its tie-break
	// identity in the selection algorithms).
	ID  int64
	cfg Config

	// links are this node's own measured links (fed by the link oracle;
	// metric computation is out of the paper's scope).
	links map[int64]linkEntry
	// neighbors holds per-neighbor HELLO state.
	neighbors map[int64]neighborTable
	// topology holds TC-learned advertised links per origin.
	topology map[int64]topoEntry
	// dups suppresses re-flooding (origin, seq) pairs, held per origin: a
	// probe is one small-int-keyed map access plus a scan of the origin's
	// few live entries (about hold-time/TC-interval of them), and expired
	// slots are recycled in place during that same scan. Dup entries are
	// the one soft-state category whose deadlines are all distinct (every
	// flooded message makes one), so keeping them out of the global
	// watermark is what keeps expire O(1) on the per-packet path.
	dups map[int64][]dupSeq
	// lq holds the per-neighbor HELLO delivery estimators (MeasuredQoS
	// link sensing; nil in oracle mode).
	lq map[int64]*lqEstimator

	helloSeq uint16
	tcSeq    uint16
	ansn     uint16

	// Cached emission link blocks (rebuilt when nhVersion moves): the
	// converged network emits the same HELLO/TC content every period, so
	// the sorted link collection is built once per content change and the
	// slice is shared read-only with every message until then. Rebuilds
	// allocate fresh slices — receivers retain the old ones.
	helloAt  uint64
	helloAdv []LinkInfo
	tcAt     uint64
	tcAdv    []LinkInfo

	mprSet    []int64
	ansSet    []int64
	selectors map[int64]time.Duration // nodes that chose us as MPR

	// nhVersion counts content changes to the neighborhood state (links,
	// neighbor tables) and topoVersion counts content changes to anything
	// the routing graph depends on (neighborhood plus TC-learned
	// topology). Cached derivations compare their build version against
	// the current one instead of recomputing per call.
	nhVersion   uint64
	topoVersion uint64
	// nextExpiry is the earliest deadline across all soft state: expire
	// is a no-op while now is before it, so handlers and queries don't
	// scan the five state maps when nothing can be stale.
	nextExpiry time.Duration

	// selAt is the nhVersion mprSet/ansSet were computed at.
	selAt uint64

	// Cached local view (viewBuilt distinguishes "not built yet" from a
	// legitimately nil view when the node has no links).
	viewAt    uint64
	viewBuilt bool
	view      *graph.LocalView
	viewG     *graph.Graph
	viewW     []float64

	// Cached known-topology graph and routing table, with the reusable
	// build and search scratch.
	topoAt   uint64
	topoG    *graph.Graph
	routesAt uint64
	routes   *Routes

	build       buildScratch
	sp          graph.Scratch
	first, hops []int32

	// Incremental routing state (see incremental.go): the dirty pair set
	// accumulated by the handlers, the long-lived routing graph with its
	// id-to-index map and incremental SPF solution, the ascending-ID index
	// permutation for table extraction, and reusable scratch.
	dirty   map[pairKey]struct{}
	rg      *graph.Graph
	rindex  map[int64]int32
	rspf    *graph.SPF
	perm    []int32
	rfirst  []int32
	pairBuf []pairKey
}

// NewNode returns a node with the given identity and configuration.
func NewNode(id int64, cfg Config) (*Node, error) {
	if cfg.HelloInterval <= 0 || cfg.TCInterval <= 0 {
		return nil, fmt.Errorf("olsr: non-positive intervals in config")
	}
	if cfg.Metric == nil {
		return nil, fmt.Errorf("olsr: config needs a metric")
	}
	if cfg.Selector == nil {
		cfg.Selector = core.FNBP{}
	}
	if cfg.MPRHeuristic == 0 {
		cfg.MPRHeuristic = mpr.Greedy
	}
	if cfg.NeighborHoldTime <= 0 {
		cfg.NeighborHoldTime = 3 * cfg.HelloInterval
	}
	if cfg.TopologyHoldTime <= 0 {
		cfg.TopologyHoldTime = 3 * cfg.TCInterval
	}
	return &Node{
		ID:         id,
		cfg:        cfg,
		links:      make(map[int64]linkEntry),
		neighbors:  make(map[int64]neighborTable),
		topology:   make(map[int64]topoEntry),
		dups:       make(map[int64][]dupSeq),
		selectors:  make(map[int64]time.Duration),
		nextExpiry: noExpiry,
	}, nil
}

// touchNeighborhood records a content change to links or neighbor tables,
// invalidating every derived cache (the routing graph includes the
// neighborhood, so the topology version moves too).
func (n *Node) touchNeighborhood() {
	n.nhVersion++
	n.topoVersion++
}

// touchTopology records a content change to the TC-learned topology, which
// invalidates the routing caches but not the MPR/ANS selection (selection
// reads only the two-hop neighborhood).
func (n *Node) touchTopology() {
	n.topoVersion++
}

// track lowers the expiry watermark to cover a new deadline. The watermark
// may be conservative (an overwritten entry's earlier deadline can linger
// until the next scan); that only costs an occasional empty scan, never a
// missed expiry.
func (n *Node) track(deadline time.Duration) {
	if deadline < n.nextExpiry {
		n.nextExpiry = deadline
	}
}

// UpdateLink records (or refreshes) this node's own link to a neighbor with
// its current QoS weight, as measured by the out-of-scope metric layer. A
// refresh at an unchanged weight only extends the validity deadline and
// leaves the cached derivations intact.
func (n *Node) UpdateLink(neighbor int64, weight float64, now time.Duration) {
	if neighbor == n.ID {
		return // no self-links
	}
	e := linkEntry{weight: weight, expires: now + n.cfg.NeighborHoldTime}
	old, ok := n.links[neighbor]
	n.links[neighbor] = e
	n.track(e.expires)
	if !ok || old.weight != weight {
		n.touchNeighborhood()
		n.markPair(n.ID, neighbor)
	}
	if !ok {
		// The neighbor became direct: its HELLO-advertised links are now
		// eligible as routing edges.
		n.markNeighborPairs(neighbor)
	}
}

// expire drops stale state. It is O(1) while the current time is before the
// earliest tracked deadline; past it, one scan drops everything stale and
// re-derives the watermark from the survivors. Duplicate-set entries are
// expired lazily at probe time and never scanned here. This wrapper is one
// compare on the converged path — it runs on every handler and every
// routing lookup, so it must inline.
func (n *Node) expire(now time.Duration) {
	if now >= n.nextExpiry {
		n.expireScan(now)
	}
}

// expireScan is expire's slow path: one scan over the deadline-carrying
// state maps, dropping everything stale and re-deriving the watermark.
func (n *Node) expireScan(now time.Duration) {
	next := noExpiry
	for id, l := range n.links {
		if l.expires <= now {
			delete(n.links, id)
			n.touchNeighborhood()
			n.markPair(n.ID, id)
			// The neighbor stopped being direct: its HELLO-advertised
			// links lose routing-edge eligibility.
			n.markNeighborPairs(id)
		} else if l.expires < next {
			next = l.expires
		}
	}
	for id, t := range n.neighbors {
		if t.expires <= now {
			delete(n.neighbors, id)
			n.touchNeighborhood()
			for peer := range t.links {
				n.markPair(id, peer)
			}
		} else if t.expires < next {
			next = t.expires
		}
	}
	for id, t := range n.topology {
		if t.expires <= now {
			delete(n.topology, id)
			n.touchTopology()
			for peer := range t.links {
				n.markPair(id, peer)
			}
		} else if t.expires < next {
			next = t.expires
		}
	}
	for id, e := range n.selectors {
		if e <= now {
			delete(n.selectors, id)
		} else if e < next {
			next = e
		}
	}
	for id, e := range n.lq {
		if e.expires <= now {
			// Dropping an estimator is not a content change: the links
			// map (which expires on its own deadline) is what derived
			// state reads.
			delete(n.lq, id)
		} else if e.expires < next {
			next = e.expires
		}
	}
	n.nextExpiry = next
}

// GenerateHello produces this node's periodic HELLO.
func (n *Node) GenerateHello(now time.Duration) *Hello {
	n.expire(now)
	n.recompute()
	if n.helloAdv == nil || n.helloAt != n.nhVersion {
		n.helloAt = n.nhVersion
		adv := make([]LinkInfo, 0, len(n.links))
		for id, l := range n.links {
			adv = append(adv, LinkInfo{Neighbor: id, Weight: l.weight})
		}
		slices.SortFunc(adv, func(a, b LinkInfo) int { return cmp.Compare(a.Neighbor, b.Neighbor) })
		n.helloAdv = adv
	}
	// The link block and MPR set are shared read-only (both replaced, never
	// mutated, on content change).
	h := &Hello{Origin: n.ID, Seq: n.helloSeq, Links: n.helloAdv, MPRs: n.mprSet}
	n.helloSeq++
	if n.cfg.MeasuredQoS {
		// Report the raw forward delivery ratio per heard neighbor so
		// receivers can form the bidirectional estimate (sorted: the
		// wire form must be a pure function of protocol state).
		for _, id := range sortedKeys(n.lq) {
			h.LQs = append(h.LQs, LinkInfo{Neighbor: id, Weight: n.lq[id].ratio()})
		}
	}
	return h
}

// HandleHello ingests a neighbor's HELLO. A HELLO that re-announces the
// neighbor's known link set only refreshes deadlines; one that changes it
// invalidates the cached derivations.
func (n *Node) HandleHello(h *Hello, now time.Duration) {
	if h.Origin == n.ID {
		return // discard own messages (RFC 3626 looped-back traffic)
	}
	n.expire(now)
	switch {
	case n.cfg.ExternalLinkSensing:
		// The host senses links (e.g. from measured round-trip timing)
		// and calls UpdateLink itself; the HELLO only feeds the
		// neighborhood tables below.
	case n.cfg.MeasuredQoS:
		// Measured link sensing: the HELLO is a probe observation; the
		// link weight comes from the bidirectional delivery estimate,
		// not from any advertised value.
		n.observeHello(h, now)
	default:
		// Receiving a HELLO proves the link (ideal symmetric MAC); adopt
		// the neighbor's advertised weight toward us when present so both
		// ends agree on the link weight.
		for _, l := range h.Links {
			if l.Neighbor == n.ID {
				n.UpdateLink(h.Origin, l.Weight, now)
			}
		}
	}
	for _, m := range h.MPRs {
		if m == n.ID {
			deadline := now + n.cfg.NeighborHoldTime
			n.selectors[h.Origin] = deadline
			n.track(deadline)
		}
	}
	old, known := n.neighbors[h.Origin]
	// The steady-state HELLO re-announces an unchanged link block (the
	// retained adv slice compares equal): refresh the deadline on the
	// existing table without building a new one. Only the advertised links
	// feed the derived state, so equal content means every cached artifact
	// stays valid. An equal-content message with a differently ordered
	// block merely takes the slow path and rebuilds to identical state.
	if known && slices.Equal(old.adv, h.Links) {
		old.expires = now + n.cfg.NeighborHoldTime
		n.neighbors[h.Origin] = old
		n.track(old.expires)
		return
	}
	tbl := neighborTable{
		links:   make(map[int64]float64, len(h.Links)),
		adv:     h.Links,
		expires: now + n.cfg.NeighborHoldTime,
	}
	for _, l := range h.Links {
		tbl.links[l.Neighbor] = l.Weight
	}
	n.neighbors[h.Origin] = tbl
	n.track(tbl.expires)
	if !known || !equalLinkMaps(old.links, tbl.links) {
		n.touchNeighborhood()
		n.markLinkMapDiff(h.Origin, old.links, tbl.links)
	}
}

// GenerateTC produces this node's periodic TC advertising its ANS, or nil
// when it has nothing to advertise (RFC behaviour: nodes with an empty
// advertised set may stay silent).
func (n *Node) GenerateTC(now time.Duration) *TC {
	n.expire(now)
	n.recompute()
	if len(n.ansSet) == 0 {
		return nil
	}
	if n.tcAdv == nil || n.tcAt != n.nhVersion {
		n.tcAt = n.nhVersion
		adv := make([]LinkInfo, 0, len(n.ansSet))
		for _, id := range n.ansSet {
			if l, ok := n.links[id]; ok {
				adv = append(adv, LinkInfo{Neighbor: id, Weight: l.weight})
			}
		}
		n.tcAdv = adv
	}
	t := &TC{Origin: n.ID, Seq: n.tcSeq, ANSN: n.ansn, Links: n.tcAdv}
	n.tcSeq++
	return t
}

// HandleTC ingests a flooded TC received from the direct neighbor sender
// and reports whether this node must re-broadcast it (RFC 3626 forwarding
// rule: forward once, and only if the sender selected us as MPR). A TC that
// re-advertises an origin's known link set only refreshes its deadline.
func (n *Node) HandleTC(t *TC, sender int64, now time.Duration) (forward bool) {
	n.expire(now)
	// Duplicate suppression: scan the origin's window, recycling the first
	// expired slot for the new entry.
	row := n.dups[t.Origin]
	slot := -1
	for i := range row {
		if row[i].expires <= now {
			if slot < 0 {
				slot = i
			}
			continue
		}
		if row[i].seq == t.Seq {
			return false
		}
	}
	if slot >= 0 {
		row[slot] = dupSeq{seq: t.Seq, expires: now + n.cfg.TopologyHoldTime}
	} else {
		n.dups[t.Origin] = append(row, dupSeq{seq: t.Seq, expires: now + n.cfg.TopologyHoldTime})
	}
	if t.Origin != n.ID {
		cur, ok := n.topology[t.Origin]
		// Accept unless stale (ANSN regression within the validity
		// window).
		switch {
		case ok && ansnNewer(cur.ansn, t.ANSN):
			// Stale: ignore.
		case ok && slices.Equal(cur.adv, t.Links):
			// The steady-state TC re-advertises an unchanged link block:
			// refresh the entry in place, no rebuild and no cache
			// invalidation.
			cur.ansn = t.ANSN
			cur.expires = now + n.cfg.TopologyHoldTime
			n.topology[t.Origin] = cur
			n.track(cur.expires)
		default:
			entry := topoEntry{
				ansn:    t.ANSN,
				links:   make(map[int64]float64, len(t.Links)),
				adv:     t.Links,
				expires: now + n.cfg.TopologyHoldTime,
			}
			for _, l := range t.Links {
				entry.links[l.Neighbor] = l.Weight
			}
			n.topology[t.Origin] = entry
			n.track(entry.expires)
			if !ok || !equalLinkMaps(cur.links, entry.links) {
				n.touchTopology()
				n.markLinkMapDiff(t.Origin, cur.links, entry.links)
			}
		}
	}
	_, senderSelectedUs := n.selectors[sender]
	return senderSelectedUs
}

// ansnNewer reports whether current is strictly newer than candidate under
// wrap-around sequence comparison.
func ansnNewer(current, candidate uint16) bool {
	return int16(current-candidate) > 0
}

// recompute refreshes the MPR set, the ANS and the ANSN when the underlying
// neighborhood changed since the last computation.
func (n *Node) recompute() {
	if n.selAt == n.nhVersion {
		return
	}
	n.selAt = n.nhVersion

	view, g, w, err := n.localView()
	if err != nil || view == nil {
		n.mprSet, n.ansSet = nil, nil
		return
	}
	mprs, err := mpr.Select(view, n.cfg.MPRHeuristic, n.cfg.Metric, w)
	if err != nil {
		mprs = nil
	}
	ans, err := n.cfg.Selector.Select(view, n.cfg.Metric, w)
	if err != nil {
		ans = nil
	}
	toIDs := func(idx []int32) []int64 {
		out := make([]int64, len(idx))
		for i, x := range idx {
			out[i] = int64(g.ID(x))
		}
		return out
	}
	n.mprSet = toIDs(mprs)
	newANS := toIDs(ans)
	if !equalIDs(newANS, n.ansSet) {
		n.ansSet = newANS
		n.ansn++
	}
}

func equalIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// equalLinkMaps reports whether two advertised link sets carry identical
// content — the test deciding whether a re-announcement can leave the cached
// derivations untouched.
func equalLinkMaps(a, b map[int64]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// sortedKeys returns a map's keys in ascending order. The node's tables are
// Go maps, whose iteration order is randomized per range: everything
// derived from them (graph edge insertion order, hence Dijkstra tie-breaks,
// hence chosen routes) must iterate in sorted order instead, or routing
// becomes nondeterministic across processes.
func sortedKeys[V any](m map[int64]V) []int64 {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// buildScratch holds the reusable intermediates of a topology rebuild: the
// identifier set, the sorted id slice, the id-to-index map and the edge
// accumulator. Rebuilds are rare under the version cache, but dense churny
// networks still perform them in bursts; reusing the staging storage keeps
// those bursts allocation-light.
type buildScratch struct {
	idset map[int64]struct{}
	ids   []graph.NodeID
	index map[graph.NodeID]int32
	acc   graph.EdgeAccum
}

func (b *buildScratch) reset() {
	if b.idset == nil {
		b.idset = make(map[int64]struct{})
	} else {
		clear(b.idset)
	}
	b.ids = b.ids[:0]
	b.acc.Reset()
}

func (b *buildScratch) addID(id int64) {
	b.idset[id] = struct{}{}
}

// materialise sorts the collected identifiers, builds the node-only graph
// and fills the id-to-index map.
func (b *buildScratch) materialise() (*graph.Graph, error) {
	for id := range b.idset {
		b.ids = append(b.ids, graph.NodeID(id))
	}
	slices.Sort(b.ids)
	g, err := graph.NewWithIDs(b.ids)
	if err != nil {
		return nil, err
	}
	if b.index == nil {
		b.index = make(map[graph.NodeID]int32, len(b.ids))
	} else {
		clear(b.index)
	}
	for i, id := range b.ids {
		b.index[id] = int32(i)
	}
	return g, nil
}

// collectNeighborhoodIDs stages the identifiers the neighborhood
// contributes: self, direct neighbors, and everything the neighbors
// advertise.
func (n *Node) collectNeighborhoodIDs() {
	b := &n.build
	b.addID(n.ID)
	for id := range n.links {
		b.addID(id)
	}
	for _, tbl := range n.neighbors {
		for id := range tbl.links {
			b.addID(id)
		}
	}
}

// accumulateNeighborhood stages this node's own links and the two-hop links
// learned from HELLOs, in sorted-key order with own links taking precedence.
func (n *Node) accumulateNeighborhood() {
	acc := &n.build.acc
	for _, id := range sortedKeys(n.links) {
		acc.Add(graph.NodeID(n.ID), graph.NodeID(id), n.links[id].weight)
	}
	for _, nb := range sortedKeys(n.neighbors) {
		if _, direct := n.links[nb]; !direct {
			continue
		}
		tbl := n.neighbors[nb]
		for _, peer := range sortedKeys(tbl.links) {
			if peer != n.ID {
				acc.Add(graph.NodeID(nb), graph.NodeID(peer), tbl.links[peer])
			}
		}
	}
}

// localView materialises the node's current knowledge of G_u as a graph and
// returns the local view centered at this node. The result is cached per
// neighborhood version: repeated calls between state changes are free.
func (n *Node) localView() (*graph.LocalView, *graph.Graph, []float64, error) {
	if n.viewBuilt && n.viewAt == n.nhVersion {
		return n.view, n.viewG, n.viewW, nil
	}
	view, g, w, err := n.buildLocalView()
	if err != nil {
		return nil, nil, nil, err
	}
	n.view, n.viewG, n.viewW = view, g, w
	n.viewBuilt, n.viewAt = true, n.nhVersion
	return view, g, w, nil
}

func (n *Node) buildLocalView() (*graph.LocalView, *graph.Graph, []float64, error) {
	if len(n.links) == 0 {
		return nil, nil, nil, nil
	}
	b := &n.build
	b.reset()
	n.collectNeighborhoodIDs()
	g, err := b.materialise()
	if err != nil {
		return nil, nil, nil, err
	}
	channel := n.cfg.Metric.Name()
	// Accumulate edges in sorted-key order (own links take precedence
	// over neighbor-advertised ones) so the view is identical for
	// identical protocol state, whatever the map iteration order.
	n.accumulateNeighborhood()
	b.acc.Build(g, b.index, channel)
	w, err := g.Weights(channel)
	if err != nil {
		return nil, nil, nil, err
	}
	view := graph.NewLocalView(g, b.index[graph.NodeID(n.ID)])
	return view, g, w, nil
}

// MPRSet returns the current multipoint relay set (flooding).
func (n *Node) MPRSet(now time.Duration) []int64 {
	n.expire(now)
	n.recompute()
	return append([]int64(nil), n.mprSet...)
}

// ANS returns the current advertised neighbor set (routing).
func (n *Node) ANS(now time.Duration) []int64 {
	n.expire(now)
	n.recompute()
	return append([]int64(nil), n.ansSet...)
}

// Selectors returns the nodes that currently select this node as MPR.
func (n *Node) Selectors(now time.Duration) []int64 {
	n.expire(now)
	out := make([]int64, 0, len(n.selectors))
	for id := range n.selectors {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// KnownTopology assembles the node's routing graph: its own links plus
// every valid advertised link learned from TCs and the two-hop links
// learned from HELLOs. The returned graph is the node's cached snapshot,
// shared across calls until the state changes — callers must treat it as
// read-only. A retained snapshot stays internally consistent after the node
// moves on (rebuilds allocate a fresh graph rather than mutating the old
// one).
func (n *Node) KnownTopology(now time.Duration) (*graph.Graph, error) {
	n.expire(now)
	return n.knownTopology()
}

// knownTopology returns the cached routing graph, rebuilding it when the
// topology version moved. Callers must have run expire(now) first.
func (n *Node) knownTopology() (*graph.Graph, error) {
	if n.topoG != nil && n.topoAt == n.topoVersion {
		return n.topoG, nil
	}
	g, err := n.buildKnownTopology()
	if err != nil {
		return nil, err
	}
	n.topoG = g
	n.topoAt = n.topoVersion
	return g, nil
}

func (n *Node) buildKnownTopology() (*graph.Graph, error) {
	b := &n.build
	b.reset()
	n.collectNeighborhoodIDs()
	for origin, t := range n.topology {
		b.addID(origin)
		for id := range t.links {
			b.addID(id)
		}
	}
	g, err := b.materialise()
	if err != nil {
		return nil, err
	}
	channel := n.cfg.Metric.Name()
	// Accumulate edges in sorted-key order with fixed source precedence
	// (own links, then HELLO-learned two-hop links, then TC links): edge
	// insertion order decides Dijkstra tie-breaks downstream, so it must
	// be a pure function of the protocol state, not of map iteration.
	n.accumulateNeighborhood()
	for _, origin := range sortedKeys(n.topology) {
		t := n.topology[origin]
		for _, peer := range sortedKeys(t.links) {
			b.acc.Add(graph.NodeID(origin), graph.NodeID(peer), t.links[peer])
		}
	}
	b.acc.Build(g, b.index, channel)
	return g, nil
}

// Routes returns the node's current routing table: QoS routes to every known
// destination over the known topology under the node's metric, with the next
// hop being the first node of the canonical best path.
//
// The table is a cached artifact rebuilt only when the protocol state
// changed (by message content or expiry) since the last call: the common
// data-plane case — many lookups against an unchanged topology — returns the
// same read-only snapshot without recomputing or allocating anything. When
// the state did change, the table is repaired incrementally: the handlers
// record which node pairs a change touched, and the rebuild re-resolves only
// those against the state maps and repairs the affected region of the cached
// shortest-path solution (see incremental.go), instead of rebuilding graph
// and search from scratch. Both paths produce bit-identical tables
// (Config.RouteCrossCheck asserts it).
func (n *Node) Routes(now time.Duration) (*Routes, error) {
	n.expire(now)
	if n.routes != nil && n.routesAt == n.topoVersion {
		return n.routes, nil
	}
	r, err := n.incrementalRoutes()
	if err != nil {
		return nil, err
	}
	if n.cfg.RouteCrossCheck {
		if err := n.crossCheckRoutes(r); err != nil {
			return nil, err
		}
	}
	n.routes = r
	n.routesAt = n.topoVersion
	return r, nil
}

// fullRoutes computes the routing table from scratch: materialise the known
// topology and run one canonical Dijkstra over it. It is the reference the
// incremental engine is checked against (and the original implementation of
// Routes). Callers must have run expire(now) first.
func (n *Node) fullRoutes() (*Routes, error) {
	g, err := n.knownTopology()
	if err != nil {
		return nil, err
	}
	r := &Routes{}
	// A missing weight channel means the topology has no edges at all:
	// the table is empty.
	if w, err := g.Weights(n.cfg.Metric.Name()); err == nil {
		if self := g.IndexOf(graph.NodeID(n.ID)); self >= 0 {
			sp := n.sp.Dijkstra(g, n.cfg.Metric, w, self, nil, -1)
			n.first, n.hops = sp.FirstHops(n.first, n.hops)
			if reached := len(sp.Reached); reached > 1 {
				r.dsts = make([]int64, 0, reached-1)
				r.routes = make([]Route, 0, reached-1)
			}
			for x := int32(0); int(x) < g.N(); x++ {
				if x == self || !sp.Reachable(x) {
					continue
				}
				// The graph's identifiers are sorted, so index
				// order yields ascending destinations — the
				// order Routes.Lookup binary-searches.
				r.dsts = append(r.dsts, int64(g.ID(x)))
				r.routes = append(r.routes, Route{
					NextHop: int64(g.ID(n.first[x])),
					Value:   sp.Dist[x],
					Hops:    int(n.hops[x]),
				})
			}
		}
	}
	return r, nil
}
