package olsr

import (
	"fmt"
	"sort"
	"time"

	"qolsr/internal/core"
	"qolsr/internal/graph"
	"qolsr/internal/metric"
	"qolsr/internal/mpr"
)

// Config parameterises a protocol node. The zero value is not usable; use
// DefaultConfig as a base.
type Config struct {
	// HelloInterval and TCInterval are emission periods (RFC 3626
	// defaults: 2s and 5s).
	HelloInterval time.Duration
	TCInterval    time.Duration
	// NeighborHoldTime and TopologyHoldTime are state validity windows
	// (RFC 3626: 3x the emission interval).
	NeighborHoldTime time.Duration
	TopologyHoldTime time.Duration
	// Metric is the QoS metric driving ANS selection and routing.
	Metric metric.Metric
	// Selector computes the advertised neighbor set (default core.FNBP).
	Selector core.Selector
	// MPRHeuristic computes the flooding relay set (default RFC greedy).
	MPRHeuristic mpr.Heuristic
}

// DefaultConfig returns RFC-style timers with FNBP selection under the given
// metric.
func DefaultConfig(m metric.Metric) Config {
	return Config{
		HelloInterval:    2 * time.Second,
		TCInterval:       5 * time.Second,
		NeighborHoldTime: 6 * time.Second,
		TopologyHoldTime: 15 * time.Second,
		Metric:           m,
		Selector:         core.FNBP{},
		MPRHeuristic:     mpr.Greedy,
	}
}

type linkEntry struct {
	weight  float64
	expires time.Duration
}

type neighborTable struct {
	links   map[int64]float64 // the neighbor's own links, from its HELLO
	mprs    map[int64]bool    // neighbors the neighbor selected as MPR
	expires time.Duration
}

type topoEntry struct {
	ansn    uint16
	links   map[int64]float64
	expires time.Duration
}

type dupKey struct {
	origin int64
	seq    uint16
}

// Route is one routing-table entry.
type Route struct {
	// NextHop is the neighbor to forward through.
	NextHop int64
	// Value is the QoS value of the route under the node's metric.
	Value float64
	// Hops is the route length.
	Hops int
}

// Node is one OLSR/QOLSR protocol participant. Nodes are single-goroutine
// state machines driven by the simulator: handlers must be called from one
// goroutine.
type Node struct {
	// ID is the node's unique protocol identifier (also its tie-break
	// identity in the selection algorithms).
	ID  int64
	cfg Config

	// links are this node's own measured links (fed by the link oracle;
	// metric computation is out of the paper's scope).
	links map[int64]linkEntry
	// neighbors holds per-neighbor HELLO state.
	neighbors map[int64]neighborTable
	// topology holds TC-learned advertised links per origin.
	topology map[int64]topoEntry
	// dups suppresses re-flooding (origin, seq) pairs.
	dups map[dupKey]time.Duration

	helloSeq uint16
	tcSeq    uint16
	ansn     uint16

	mprSet    []int64
	ansSet    []int64
	selectors map[int64]time.Duration // nodes that chose us as MPR

	// dirty marks that ANS/MPR need recomputation before the next use.
	dirty bool
}

// NewNode returns a node with the given identity and configuration.
func NewNode(id int64, cfg Config) (*Node, error) {
	if cfg.HelloInterval <= 0 || cfg.TCInterval <= 0 {
		return nil, fmt.Errorf("olsr: non-positive intervals in config")
	}
	if cfg.Metric == nil {
		return nil, fmt.Errorf("olsr: config needs a metric")
	}
	if cfg.Selector == nil {
		cfg.Selector = core.FNBP{}
	}
	if cfg.MPRHeuristic == 0 {
		cfg.MPRHeuristic = mpr.Greedy
	}
	if cfg.NeighborHoldTime <= 0 {
		cfg.NeighborHoldTime = 3 * cfg.HelloInterval
	}
	if cfg.TopologyHoldTime <= 0 {
		cfg.TopologyHoldTime = 3 * cfg.TCInterval
	}
	return &Node{
		ID:        id,
		cfg:       cfg,
		links:     make(map[int64]linkEntry),
		neighbors: make(map[int64]neighborTable),
		topology:  make(map[int64]topoEntry),
		dups:      make(map[dupKey]time.Duration),
		selectors: make(map[int64]time.Duration),
	}, nil
}

// UpdateLink records (or refreshes) this node's own link to a neighbor with
// its current QoS weight, as measured by the out-of-scope metric layer.
func (n *Node) UpdateLink(neighbor int64, weight float64, now time.Duration) {
	n.links[neighbor] = linkEntry{weight: weight, expires: now + n.cfg.NeighborHoldTime}
	n.dirty = true
}

// expire drops stale state.
func (n *Node) expire(now time.Duration) {
	for id, l := range n.links {
		if l.expires <= now {
			delete(n.links, id)
			n.dirty = true
		}
	}
	for id, t := range n.neighbors {
		if t.expires <= now {
			delete(n.neighbors, id)
			n.dirty = true
		}
	}
	for id, t := range n.topology {
		if t.expires <= now {
			delete(n.topology, id)
		}
	}
	for id, e := range n.selectors {
		if e <= now {
			delete(n.selectors, id)
		}
	}
	for k, e := range n.dups {
		if e <= now {
			delete(n.dups, k)
		}
	}
}

// GenerateHello produces this node's periodic HELLO.
func (n *Node) GenerateHello(now time.Duration) *Hello {
	n.expire(now)
	n.recompute()
	h := &Hello{Origin: n.ID, Seq: n.helloSeq}
	n.helloSeq++
	for id, l := range n.links {
		h.Links = append(h.Links, LinkInfo{Neighbor: id, Weight: l.weight})
	}
	sort.Slice(h.Links, func(i, j int) bool { return h.Links[i].Neighbor < h.Links[j].Neighbor })
	h.MPRs = append(h.MPRs, n.mprSet...)
	return h
}

// HandleHello ingests a neighbor's HELLO.
func (n *Node) HandleHello(h *Hello, now time.Duration) {
	n.expire(now)
	// Receiving a HELLO proves the link (ideal symmetric MAC); adopt the
	// neighbor's advertised weight toward us when present so both ends
	// agree on the link weight.
	for _, l := range h.Links {
		if l.Neighbor == n.ID {
			n.UpdateLink(h.Origin, l.Weight, now)
		}
	}
	tbl := neighborTable{
		links:   make(map[int64]float64, len(h.Links)),
		mprs:    make(map[int64]bool, len(h.MPRs)),
		expires: now + n.cfg.NeighborHoldTime,
	}
	for _, l := range h.Links {
		tbl.links[l.Neighbor] = l.Weight
	}
	for _, m := range h.MPRs {
		tbl.mprs[m] = true
		if m == n.ID {
			n.selectors[h.Origin] = now + n.cfg.NeighborHoldTime
		}
	}
	n.neighbors[h.Origin] = tbl
	n.dirty = true
}

// GenerateTC produces this node's periodic TC advertising its ANS, or nil
// when it has nothing to advertise (RFC behaviour: nodes with an empty
// advertised set may stay silent).
func (n *Node) GenerateTC(now time.Duration) *TC {
	n.expire(now)
	n.recompute()
	if len(n.ansSet) == 0 {
		return nil
	}
	t := &TC{Origin: n.ID, Seq: n.tcSeq, ANSN: n.ansn}
	n.tcSeq++
	for _, id := range n.ansSet {
		if l, ok := n.links[id]; ok {
			t.Links = append(t.Links, LinkInfo{Neighbor: id, Weight: l.weight})
		}
	}
	return t
}

// HandleTC ingests a flooded TC received from the direct neighbor sender
// and reports whether this node must re-broadcast it (RFC 3626 forwarding
// rule: forward once, and only if the sender selected us as MPR).
func (n *Node) HandleTC(t *TC, sender int64, now time.Duration) (forward bool) {
	n.expire(now)
	key := dupKey{origin: t.Origin, seq: t.Seq}
	if _, dup := n.dups[key]; dup {
		return false
	}
	n.dups[key] = now + n.cfg.TopologyHoldTime
	if t.Origin != n.ID {
		cur, ok := n.topology[t.Origin]
		// Accept unless stale (ANSN regression within the validity
		// window).
		if !ok || !ansnNewer(cur.ansn, t.ANSN) {
			entry := topoEntry{
				ansn:    t.ANSN,
				links:   make(map[int64]float64, len(t.Links)),
				expires: now + n.cfg.TopologyHoldTime,
			}
			for _, l := range t.Links {
				entry.links[l.Neighbor] = l.Weight
			}
			n.topology[t.Origin] = entry
		}
	}
	_, senderSelectedUs := n.selectors[sender]
	return senderSelectedUs
}

// ansnNewer reports whether current is strictly newer than candidate under
// wrap-around sequence comparison.
func ansnNewer(current, candidate uint16) bool {
	return int16(current-candidate) > 0
}

// recompute refreshes the MPR set, the ANS and the ANSN when the underlying
// neighborhood changed.
func (n *Node) recompute() {
	if !n.dirty {
		return
	}
	n.dirty = false

	view, g, w, err := n.localView()
	if err != nil || view == nil {
		n.mprSet, n.ansSet = nil, nil
		return
	}
	mprs, err := mpr.Select(view, n.cfg.MPRHeuristic, n.cfg.Metric, w)
	if err != nil {
		mprs = nil
	}
	ans, err := n.cfg.Selector.Select(view, n.cfg.Metric, w)
	if err != nil {
		ans = nil
	}
	toIDs := func(idx []int32) []int64 {
		out := make([]int64, len(idx))
		for i, x := range idx {
			out[i] = int64(g.ID(x))
		}
		return out
	}
	n.mprSet = toIDs(mprs)
	newANS := toIDs(ans)
	if !equalIDs(newANS, n.ansSet) {
		n.ansSet = newANS
		n.ansn++
	}
}

func equalIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortedKeys returns a map's keys in ascending order. The node's tables are
// Go maps, whose iteration order is randomized per range: everything
// derived from them (graph edge insertion order, hence Dijkstra tie-breaks,
// hence chosen routes) must iterate in sorted order instead, or routing
// becomes nondeterministic across processes.
func sortedKeys[V any](m map[int64]V) []int64 {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// edgeAccum collects undirected weighted edges with first-writer-wins
// deduplication in a deterministic insertion order.
type edgeAccum struct {
	order [][2]int64
	w     map[[2]int64]float64
}

func newEdgeAccum() *edgeAccum {
	return &edgeAccum{w: make(map[[2]int64]float64)}
}

func (ea *edgeAccum) add(a, b int64, w float64) {
	if a == b {
		return
	}
	if a > b {
		a, b = b, a
	}
	key := [2]int64{a, b}
	if _, dup := ea.w[key]; dup {
		return
	}
	ea.w[key] = w
	ea.order = append(ea.order, key)
}

// build inserts the accumulated edges into g, in accumulation order, using
// index to map identifiers to node indices.
func (ea *edgeAccum) build(g *graph.Graph, index map[int64]int32, channel string) {
	for _, key := range ea.order {
		ia, ok := index[key[0]]
		if !ok {
			continue
		}
		ib, ok := index[key[1]]
		if !ok {
			continue
		}
		e, err := g.AddEdge(ia, ib)
		if err != nil {
			continue
		}
		_ = g.SetWeight(channel, e, ea.w[key])
	}
}

// localView materialises the node's current knowledge of G_u as a graph and
// returns the local view centered at this node.
func (n *Node) localView() (*graph.LocalView, *graph.Graph, []float64, error) {
	if len(n.links) == 0 {
		return nil, nil, nil, nil
	}
	// Collect known identifiers: self, direct neighbors, and everything
	// the neighbors advertise.
	idset := map[int64]bool{n.ID: true}
	for id := range n.links {
		idset[id] = true
	}
	for _, tbl := range n.neighbors {
		for id := range tbl.links {
			idset[id] = true
		}
	}
	ids := make([]graph.NodeID, 0, len(idset))
	for id := range idset {
		ids = append(ids, graph.NodeID(id))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	g, err := graph.NewWithIDs(ids)
	if err != nil {
		return nil, nil, nil, err
	}
	index := make(map[int64]int32, len(ids))
	for i, id := range ids {
		index[int64(id)] = int32(i)
	}
	channel := n.cfg.Metric.Name()
	// Accumulate edges in sorted-key order (own links take precedence
	// over neighbor-advertised ones) so the view is identical for
	// identical protocol state, whatever the map iteration order.
	acc := newEdgeAccum()
	for _, id := range sortedKeys(n.links) {
		acc.add(n.ID, id, n.links[id].weight)
	}
	for _, nb := range sortedKeys(n.neighbors) {
		if _, direct := n.links[nb]; !direct {
			continue
		}
		tbl := n.neighbors[nb]
		for _, peer := range sortedKeys(tbl.links) {
			if peer != n.ID {
				acc.add(nb, peer, tbl.links[peer])
			}
		}
	}
	acc.build(g, index, channel)
	w, err := g.Weights(channel)
	if err != nil {
		return nil, nil, nil, err
	}
	view := graph.NewLocalView(g, index[n.ID])
	return view, g, w, nil
}

// MPRSet returns the current multipoint relay set (flooding).
func (n *Node) MPRSet(now time.Duration) []int64 {
	n.expire(now)
	n.recompute()
	return append([]int64(nil), n.mprSet...)
}

// ANS returns the current advertised neighbor set (routing).
func (n *Node) ANS(now time.Duration) []int64 {
	n.expire(now)
	n.recompute()
	return append([]int64(nil), n.ansSet...)
}

// Selectors returns the nodes that currently select this node as MPR.
func (n *Node) Selectors(now time.Duration) []int64 {
	n.expire(now)
	out := make([]int64, 0, len(n.selectors))
	for id := range n.selectors {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// KnownTopology assembles the node's routing graph: its own links plus
// every valid advertised link learned from TCs and the two-hop links
// learned from HELLOs.
func (n *Node) KnownTopology(now time.Duration) (*graph.Graph, error) {
	n.expire(now)
	idset := map[int64]bool{n.ID: true}
	for id := range n.links {
		idset[id] = true
	}
	for _, tbl := range n.neighbors {
		for id := range tbl.links {
			idset[id] = true
		}
	}
	for origin, t := range n.topology {
		idset[origin] = true
		for id := range t.links {
			idset[id] = true
		}
	}
	ids := make([]graph.NodeID, 0, len(idset))
	for id := range idset {
		ids = append(ids, graph.NodeID(id))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	g, err := graph.NewWithIDs(ids)
	if err != nil {
		return nil, err
	}
	index := make(map[int64]int32, len(ids))
	for i, id := range ids {
		index[int64(id)] = int32(i)
	}
	channel := n.cfg.Metric.Name()
	// Accumulate edges in sorted-key order with fixed source precedence
	// (own links, then HELLO-learned two-hop links, then TC links): edge
	// insertion order decides Dijkstra tie-breaks downstream, so it must
	// be a pure function of the protocol state, not of map iteration.
	acc := newEdgeAccum()
	for _, id := range sortedKeys(n.links) {
		acc.add(n.ID, id, n.links[id].weight)
	}
	for _, nb := range sortedKeys(n.neighbors) {
		if _, direct := n.links[nb]; !direct {
			continue
		}
		tbl := n.neighbors[nb]
		for _, peer := range sortedKeys(tbl.links) {
			if peer != n.ID {
				acc.add(nb, peer, tbl.links[peer])
			}
		}
	}
	for _, origin := range sortedKeys(n.topology) {
		t := n.topology[origin]
		for _, peer := range sortedKeys(t.links) {
			acc.add(origin, peer, t.links[peer])
		}
	}
	acc.build(g, index, channel)
	return g, nil
}

// RoutingTable computes QoS routes to every known destination: a QoS-metric
// Dijkstra over the known topology, next hop being the first node of the
// best path.
func (n *Node) RoutingTable(now time.Duration) (map[int64]Route, error) {
	g, err := n.KnownTopology(now)
	if err != nil {
		return nil, err
	}
	channel := n.cfg.Metric.Name()
	w, err := g.Weights(channel)
	if err != nil {
		// No edges at all: empty table.
		return map[int64]Route{}, nil
	}
	self := g.IndexOf(graph.NodeID(n.ID))
	if self < 0 {
		return map[int64]Route{}, nil
	}
	sp := graph.Dijkstra(g, n.cfg.Metric, w, self, nil, -1)
	table := make(map[int64]Route)
	for x := int32(0); int(x) < g.N(); x++ {
		if x == self || !sp.Reachable(x) {
			continue
		}
		path := sp.PathTo(x)
		if len(path) < 2 {
			continue
		}
		table[int64(g.ID(x))] = Route{
			NextHop: int64(g.ID(path[1])),
			Value:   sp.Dist[x],
			Hops:    len(path) - 1,
		}
	}
	return table, nil
}
