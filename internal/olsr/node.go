package olsr

import (
	"fmt"
	"math"
	"slices"
	"time"

	"qolsr/internal/core"
	"qolsr/internal/graph"
	"qolsr/internal/metric"
	"qolsr/internal/mpr"
)

// Config parameterises a protocol node. The zero value is not usable; use
// DefaultConfig as a base.
type Config struct {
	// HelloInterval and TCInterval are emission periods (RFC 3626
	// defaults: 2s and 5s).
	HelloInterval time.Duration
	TCInterval    time.Duration
	// NeighborHoldTime and TopologyHoldTime are state validity windows
	// (RFC 3626: 3x the emission interval).
	NeighborHoldTime time.Duration
	TopologyHoldTime time.Duration
	// Metric is the QoS metric driving ANS selection and routing.
	Metric metric.Metric
	// Selector computes the advertised neighbor set (default core.FNBP).
	Selector core.Selector
	// MPRHeuristic computes the flooding relay set (default RFC greedy).
	MPRHeuristic mpr.Heuristic
	// MeasuredQoS switches link sensing from the oracle to measurement:
	// instead of weights fed by UpdateLink from the topology, the node
	// derives them from windowed HELLO delivery ratios (ETX for additive
	// metrics, the delivery product for concave ones — see linkquality.go)
	// and HELLOs carry the LQ block so both link ends converge on the
	// same bidirectional estimate.
	MeasuredQoS bool
	// LQWindow is the HELLO-history window measured ratios average over
	// (default DefaultLQWindow). Only read under MeasuredQoS.
	LQWindow int
	// ExternalDupSuppression disables the node's own duplicate-suppression
	// window for flooded TC-family messages: the embedding host guarantees
	// each flooded (origin, seq) message is handed to the node at most
	// once. The simulator owns one visited set per flood (a pooled bitset
	// shared along the flood's relay chain), which replaces N per-node
	// duplicate tables with one bit probe per delivery — the handlers then
	// skip their own window entirely.
	ExternalDupSuppression bool
	// ExternalLinkSensing disables the protocol's own link sensing on
	// HELLO receipt (both the oracle adoption of the sender's advertised
	// weight and the MeasuredQoS delivery estimator): the embedding host
	// owns the link table and feeds it through UpdateLink. The deployable
	// daemon uses this to drive weights from real round-trip timing — the
	// protocol machinery must not overwrite a measurement it cannot make.
	ExternalLinkSensing bool
	// RouteCrossCheck is the incremental engine's validation mode, meant
	// for tests: every routing table produced by the incremental repair is
	// compared against a from-scratch rebuild and Routes errors on any
	// divergence. It turns every table rebuild into a full one — do not
	// enable it outside tests.
	RouteCrossCheck bool
	// DeltaTC enables delta-encoded topology control (GenerateTCUpdate):
	// between periodic full TCs the node floods only the changes against
	// what it last flooded — in the converged steady state an empty
	// header-sized keepalive. Receivers apply deltas only when synchronised
	// on the origin's chain and resynchronise from the next full TC after
	// any gap, so the full-TC cadence bounds the staleness a lost delta can
	// cause.
	DeltaTC bool
	// TCFullEvery is the full-TC refresh period in TC emissions under
	// DeltaTC (default DefaultTCFullEvery). When FisheyeTTLs is also set
	// the unlimited-scope emissions carry the full TC instead — they are
	// the only ones distant receivers get, and a delta would be
	// unappliable there.
	TCFullEvery int
	// FisheyeTTLs is the fish-eye scoping schedule (GenerateTCUpdate):
	// emission k floods with TTL FisheyeTTLs[k mod len], where 0 means
	// unlimited. Near neighbors then see every topology update while
	// distant ones see only the unlimited emissions — frequent updates
	// near, rare far — so per-TC flooding cost stops scaling with the
	// whole field. The unlimited period times TCInterval must stay under
	// TopologyHoldTime or distant state thrashes between refresh and
	// expiry.
	FisheyeTTLs []int
	// DenseIDs, when positive, declares that every node identifier in the
	// field lies in [0, DenseIDs). The per-identifier soft-state tables
	// (links, neighbor tables, topology, selectors) then use flat slot
	// arrays indexed by the identifier itself instead of hash maps: the
	// per-delivery probe becomes one bounds-checked load and ascending-ID
	// iteration becomes the plain array walk, with identical observable
	// behaviour (identifiers outside the declared range read as absent and
	// are never retained). Zero keeps the map representation for arbitrary
	// identifier spaces (the deployable daemon).
	DenseIDs int
	// FloodRelay selects a second relay set computed alongside the
	// MPRHeuristic one, announced to neighbors as this node's relay choice
	// and therefore gating TC forwarding (zero: the MPRHeuristic set
	// serves both roles, the classic single-set behaviour). The paper's
	// QoS-driven selection deliberately over-selects for QoS coverage;
	// mpr.MinCover here keeps routing advertising the QoS set while floods
	// traverse a coverage-minimal set.
	FloodRelay mpr.Heuristic
}

// DefaultTCFullEvery is the DeltaTC full-refresh period when Config leaves
// TCFullEvery unset: every 4th emission re-floods the whole advertised set.
const DefaultTCFullEvery = 4

// DefaultFisheyeTTLs returns the default fish-eye schedule: alternate
// 2-hop-scoped and unlimited emissions. With RFC timers that gives near
// nodes the full TC rate and distant nodes half of it (10s period, safely
// under the 15s topology hold time).
func DefaultFisheyeTTLs() []int { return []int{2, 0} }

// DefaultConfig returns RFC-style timers with FNBP selection under the given
// metric.
func DefaultConfig(m metric.Metric) Config {
	return Config{
		HelloInterval:    2 * time.Second,
		TCInterval:       5 * time.Second,
		NeighborHoldTime: 6 * time.Second,
		TopologyHoldTime: 15 * time.Second,
		Metric:           m,
		Selector:         core.FNBP{},
		MPRHeuristic:     mpr.Greedy,
	}
}

type linkEntry struct {
	weight  float64
	expires time.Duration
}

type neighborTable struct {
	// adv is the neighbor's own link set from its HELLO, in normalised
	// (sorted) form — the interned content itself, shared read-only with
	// the emitter and every other receiver of the same block (see
	// advert.go). Emitters publish replace-on-change blocks that are never
	// mutated after emission, so the steady state detects itself with one
	// pointer compare.
	adv     []LinkInfo
	expires time.Duration
}

type topoEntry struct {
	ansn    uint16
	adv     []LinkInfo // normalised advertised set; see neighborTable.adv
	expires time.Duration
	// Delta-chain position (DeltaTC receivers): the entry holds the
	// origin's state as of full TC fullSeq plus the first chain deltas.
	// synced is false when a chain gap was detected — the links stay the
	// best known state, but no further delta may apply until the next full
	// TC rebases the chain.
	fullSeq uint16
	chain   uint16
	synced  bool
}

// dupSeq is one duplicate-suppression entry: a TC sequence number seen from
// an origin, live until expires. Liveness is checked lazily at probe time —
// under the node's monotone event clock that is exactly the eager-drain
// semantics (an entry is a duplicate iff expires > now), with no expiry
// bookkeeping on the flooding hot path.
type dupSeq struct {
	seq     uint16
	expires time.Duration
}

// RebuildStats counts the node's routing-compute activity: how often
// advertised content was re-announced unchanged (the interning fast paths)
// versus actually changed, and how the routing table was repaired. The
// counters are monotone over the node's lifetime; hosts diff snapshots to
// window them.
type RebuildStats struct {
	// AdvRefresh counts ingested HELLO/TC-family announcements whose
	// content matched the retained entry (deadline refresh only).
	AdvRefresh uint64
	// AdvShared counts the AdvRefresh subset detected by pointer identity
	// with the retained block — the interned-epoch hit, where sender and
	// receiver provably share one allocation.
	AdvShared uint64
	// AdvChange counts announcements that replaced the retained content
	// and invalidated the routing caches.
	AdvChange uint64
	// TopoBuilds counts from-scratch known-topology graph materialisations
	// (the full-rebuild path; the incremental engine avoids them).
	TopoBuilds uint64
	// SPFFull counts full shortest-path recomputations; SPFIncremental
	// counts incremental repairs that reused the cached solution.
	SPFFull        uint64
	SPFIncremental uint64
	// DupHits counts flooded TC-family messages dropped by the node's own
	// duplicate-suppression window (0 under ExternalDupSuppression — the
	// simulator counts its flood-level equivalent itself).
	DupHits uint64
	// DeltaResyncs counts delta-TC chain breaks that desynchronised an
	// origin's topology entry, forcing the next full TC to re-anchor it.
	DeltaResyncs uint64
}

// EpochHitRate returns the fraction of content-carrying announcements served
// by the interning fast paths (refreshes over refreshes plus changes), or 0
// before any announcement.
func (s RebuildStats) EpochHitRate() float64 {
	total := s.AdvRefresh + s.AdvChange
	if total == 0 {
		return 0
	}
	return float64(s.AdvRefresh) / float64(total)
}

// Route is one routing-table entry.
type Route struct {
	// NextHop is the neighbor to forward through.
	NextHop int64
	// Value is the QoS value of the route under the node's metric.
	Value float64
	// Hops is the route length.
	Hops int
}

// noExpiry is the watermark value when no tracked deadline is pending.
const noExpiry = time.Duration(math.MaxInt64)

// Node is one OLSR/QOLSR protocol participant. Nodes are single-goroutine
// state machines driven by the simulator: handlers must be called from one
// goroutine.
//
// Everything derived from the soft state — the local view, the MPR/ANS
// selection, the known topology and the routing table — is a cached artifact
// under a version counter: link-state style, routes are recomputed when the
// state changes (message ingestion that alters content, or soft-state
// expiry), not on every lookup. Handlers that re-announce unchanged content
// only refresh validity deadlines, so a converged network serves routing
// lookups from cache indefinitely.
type Node struct {
	// ID is the node's unique protocol identifier (also its tie-break
	// identity in the selection algorithms).
	ID  int64
	cfg Config

	// links are this node's own measured links (fed by the link oracle;
	// metric computation is out of the paper's scope).
	links slotTable[linkEntry]
	// neighbors holds per-neighbor HELLO state. Entries are pointers so the
	// steady-state refresh (every HELLO period, per neighbor) mutates the
	// deadline through one table probe instead of a lookup-plus-store pair.
	neighbors ptrTable[neighborTable]
	// topology holds TC-learned advertised links per origin; pointers for
	// the same reason — every TC delivery refreshes its origin's entry.
	topology ptrTable[topoEntry]
	// dups suppresses re-flooding (origin, seq) pairs, held per origin: a
	// probe is one small-int-keyed map access plus a scan of the origin's
	// few live entries (about hold-time/TC-interval of them), and expired
	// slots are recycled in place during that same scan. Dup entries are
	// the one soft-state category whose deadlines are all distinct (every
	// flooded message makes one), so keeping them out of the global
	// watermark is what keeps expire O(1) on the per-packet path.
	dups map[int64][]dupSeq
	// lq holds the per-neighbor HELLO delivery estimators (MeasuredQoS
	// link sensing; nil in oracle mode).
	lq map[int64]*lqEstimator

	helloSeq uint16
	tcSeq    uint16
	ansn     uint16

	// Cached emission link blocks (rebuilt when nhVersion moves): the
	// converged network emits the same HELLO/TC content every period, so
	// the sorted link collection is built once per content change and the
	// slice is shared read-only with every message until then. Rebuilds
	// allocate fresh slices — receivers retain the old ones.
	helloAt  uint64
	helloAdv []LinkInfo
	tcAt     uint64
	tcAdv    []LinkInfo

	mprSet    []int64
	ansSet    []int64
	relaySet  []int64                  // flooding relay set announced in HELLOs (== mprSet unless Config.FloodRelay)
	selectors slotTable[time.Duration] // nodes that chose us as MPR, by selection deadline

	// Delta-TC emission state (GenerateTCUpdate): the emission counter
	// driving the fish-eye/full-refresh schedules, and the chain anchor —
	// the advertised content and flooding Seq of the last full TC plus the
	// number of deltas emitted since it.
	tcEmit      uint64
	lastAdv     []LinkInfo
	lastFullSeq uint16
	chainIdx    uint16
	haveFull    bool

	// nhVersion counts content changes to the neighborhood state (links,
	// neighbor tables) and topoVersion counts content changes to anything
	// the routing graph depends on (neighborhood plus TC-learned
	// topology). Cached derivations compare their build version against
	// the current one instead of recomputing per call.
	nhVersion   uint64
	topoVersion uint64
	// nextExpiry is the earliest deadline across all soft state: expire
	// is a no-op while now is before it, so handlers and queries don't
	// scan the five state maps when nothing can be stale.
	nextExpiry time.Duration

	// selAt is the nhVersion mprSet/ansSet were computed at.
	selAt uint64

	// Cached local view (viewBuilt distinguishes "not built yet" from a
	// legitimately nil view when the node has no links).
	viewAt    uint64
	viewBuilt bool
	view      *graph.LocalView
	viewG     *graph.Graph
	viewW     []float64

	// Cached known-topology graph and routing table, with the reusable
	// build and search scratch.
	topoAt   uint64
	topoG    *graph.Graph
	routesAt uint64
	routes   *Routes

	build       buildScratch
	sp          graph.Scratch
	first, hops []int32

	// Incremental routing state (see incremental.go): the dirty pair list
	// accumulated by the handlers (append-only between rebuilds, sorted
	// and deduplicated when consumed), the long-lived routing graph with
	// its id-to-index map and incremental SPF solution, and the
	// ascending-ID index permutation for table extraction.
	dirty  []pairKey
	rg     *graph.Graph
	rindex map[int64]int32
	rspf   *graph.SPF
	perm   []int32
	rfirst []int32

	// stats counts rebuild and interning activity (see RebuildStats).
	stats RebuildStats
}

// RebuildStats returns a snapshot of the node's rebuild counters.
func (n *Node) RebuildStats() RebuildStats { return n.stats }

// RoutesDirty reports whether the next Routes call must rebuild the table —
// the protocol state (after expiring what is stale as of now) moved past
// the cached snapshot. Hosts batching table rebuilds use it to tell a
// rebuild from a cache hit.
func (n *Node) RoutesDirty(now time.Duration) bool {
	n.expire(now)
	return n.routes == nil || n.routesAt != n.topoVersion
}

// NewNode returns a node with the given identity and configuration.
func NewNode(id int64, cfg Config) (*Node, error) {
	if cfg.HelloInterval <= 0 || cfg.TCInterval <= 0 {
		return nil, fmt.Errorf("olsr: non-positive intervals in config")
	}
	if cfg.Metric == nil {
		return nil, fmt.Errorf("olsr: config needs a metric")
	}
	if cfg.Selector == nil {
		cfg.Selector = core.FNBP{}
	}
	if cfg.MPRHeuristic == 0 {
		cfg.MPRHeuristic = mpr.Greedy
	}
	if cfg.NeighborHoldTime <= 0 {
		cfg.NeighborHoldTime = 3 * cfg.HelloInterval
	}
	if cfg.TopologyHoldTime <= 0 {
		cfg.TopologyHoldTime = 3 * cfg.TCInterval
	}
	if cfg.DeltaTC && cfg.TCFullEvery <= 0 {
		cfg.TCFullEvery = DefaultTCFullEvery
	}
	for _, ttl := range cfg.FisheyeTTLs {
		if ttl < 0 {
			return nil, fmt.Errorf("olsr: negative TTL %d in fish-eye schedule", ttl)
		}
	}
	if cfg.DeltaTC && len(cfg.FisheyeTTLs) > 0 && !slices.Contains(cfg.FisheyeTTLs, 0) {
		// Scoped emissions only: distant nodes would never hear a full TC
		// and could never apply a delta — the combination cannot converge.
		return nil, fmt.Errorf("olsr: DeltaTC with fish-eye scoping needs an unlimited (0) schedule entry")
	}
	if cfg.DenseIDs < 0 {
		return nil, fmt.Errorf("olsr: negative DenseIDs %d", cfg.DenseIDs)
	}
	if cfg.DenseIDs > 0 && !slotIn(id, cfg.DenseIDs) {
		return nil, fmt.Errorf("olsr: node id %d outside declared dense range [0, %d)", id, cfg.DenseIDs)
	}
	n := &Node{
		ID:         id,
		cfg:        cfg,
		dups:       make(map[int64][]dupSeq),
		nextExpiry: noExpiry,
	}
	n.links.init(cfg.DenseIDs)
	n.neighbors.init(cfg.DenseIDs)
	n.topology.init(cfg.DenseIDs)
	n.selectors.init(cfg.DenseIDs)
	return n, nil
}

// touchNeighborhood records a content change to links or neighbor tables,
// invalidating every derived cache (the routing graph includes the
// neighborhood, so the topology version moves too).
func (n *Node) touchNeighborhood() {
	n.nhVersion++
	n.topoVersion++
}

// touchTopology records a content change to the TC-learned topology, which
// invalidates the routing caches but not the MPR/ANS selection (selection
// reads only the two-hop neighborhood).
func (n *Node) touchTopology() {
	n.topoVersion++
}

// track lowers the expiry watermark to cover a new deadline. The watermark
// may be conservative (an overwritten entry's earlier deadline can linger
// until the next scan); that only costs an occasional empty scan, never a
// missed expiry.
func (n *Node) track(deadline time.Duration) {
	if deadline < n.nextExpiry {
		n.nextExpiry = deadline
	}
}

// UpdateLink records (or refreshes) this node's own link to a neighbor with
// its current QoS weight, as measured by the out-of-scope metric layer. A
// refresh at an unchanged weight only extends the validity deadline and
// leaves the cached derivations intact.
func (n *Node) UpdateLink(neighbor int64, weight float64, now time.Duration) {
	if neighbor == n.ID {
		return // no self-links
	}
	e := linkEntry{weight: weight, expires: now + n.cfg.NeighborHoldTime}
	old, ok := n.links.get(neighbor)
	n.links.put(neighbor, e)
	n.track(e.expires)
	if !ok || old.weight != weight {
		n.touchNeighborhood()
		n.markPair(n.ID, neighbor)
	}
	if !ok {
		// The neighbor became direct: its HELLO-advertised links are now
		// eligible as routing edges.
		n.markNeighborPairs(neighbor)
	}
}

// expire drops stale state. It is O(1) while the current time is before the
// earliest tracked deadline; past it, one scan drops everything stale and
// re-derives the watermark from the survivors. Duplicate-set entries are
// expired lazily at probe time and never scanned here. This wrapper is one
// compare on the converged path — it runs on every handler and every
// routing lookup, so it must inline.
func (n *Node) expire(now time.Duration) {
	if now >= n.nextExpiry {
		n.expireScan(now)
	}
}

// expireScan is expire's slow path: one scan over the deadline-carrying
// state tables, dropping everything stale and re-deriving the watermark.
// Visit order is free here — every drop records commutative dirty pairs and
// the watermark is a min — so the unordered walk suffices.
func (n *Node) expireScan(now time.Duration) {
	next := noExpiry
	n.links.each(func(id int64, l *linkEntry) {
		if l.expires <= now {
			n.links.del(id)
			n.touchNeighborhood()
			n.markPair(n.ID, id)
			// The neighbor stopped being direct: its HELLO-advertised
			// links lose routing-edge eligibility.
			n.markNeighborPairs(id)
		} else if l.expires < next {
			next = l.expires
		}
	})
	n.neighbors.each(func(id int64, t *neighborTable) {
		if t.expires <= now {
			n.neighbors.del(id)
			n.touchNeighborhood()
			for _, l := range t.adv {
				n.markPair(id, l.Neighbor)
			}
		} else if t.expires < next {
			next = t.expires
		}
	})
	n.topology.each(func(id int64, t *topoEntry) {
		if t.expires <= now {
			n.topology.del(id)
			n.touchTopology()
			for _, l := range t.adv {
				n.markPair(id, l.Neighbor)
			}
		} else if t.expires < next {
			next = t.expires
		}
	})
	n.selectors.each(func(id int64, e *time.Duration) {
		if *e <= now {
			n.selectors.del(id)
		} else if *e < next {
			next = *e
		}
	})
	for id, e := range n.lq {
		if e.expires <= now {
			// Dropping an estimator is not a content change: the links
			// map (which expires on its own deadline) is what derived
			// state reads.
			delete(n.lq, id)
		} else if e.expires < next {
			next = e.expires
		}
	}
	n.nextExpiry = next
}

// GenerateHello produces this node's periodic HELLO.
func (n *Node) GenerateHello(now time.Duration) *Hello {
	n.expire(now)
	n.recompute()
	if n.helloAdv == nil || n.helloAt != n.nhVersion {
		n.helloAt = n.nhVersion
		adv := make([]LinkInfo, 0, n.links.len())
		n.links.eachAsc(func(id int64, l *linkEntry) {
			adv = append(adv, LinkInfo{Neighbor: id, Weight: l.weight})
		})
		n.helloAdv = adv
	}
	// The link block and relay set are shared read-only (both replaced,
	// never mutated, on content change). The announced MPRs field is the
	// flooding relay set — the mprSet itself unless Config.FloodRelay
	// splits the roles — because selector state is what gates TC
	// forwarding at the listed neighbors.
	h := &Hello{Origin: n.ID, Seq: n.helloSeq, Links: n.helloAdv, MPRs: n.relaySet}
	n.helloSeq++
	if n.cfg.MeasuredQoS {
		// Report the raw forward delivery ratio per heard neighbor so
		// receivers can form the bidirectional estimate (sorted: the
		// wire form must be a pure function of protocol state).
		for _, id := range sortedKeys(n.lq) {
			h.LQs = append(h.LQs, LinkInfo{Neighbor: id, Weight: n.lq[id].ratio()})
		}
	}
	return h
}

// HandleHello ingests a neighbor's HELLO. A HELLO that re-announces the
// neighbor's known link set only refreshes deadlines; one that changes it
// invalidates the cached derivations.
func (n *Node) HandleHello(h *Hello, now time.Duration) {
	if h.Origin == n.ID {
		return // discard own messages (RFC 3626 looped-back traffic)
	}
	n.expire(now)
	switch {
	case n.cfg.ExternalLinkSensing:
		// The host senses links (e.g. from measured round-trip timing)
		// and calls UpdateLink itself; the HELLO only feeds the
		// neighborhood tables below.
	case n.cfg.MeasuredQoS:
		// Measured link sensing: the HELLO is a probe observation; the
		// link weight comes from the bidirectional delivery estimate,
		// not from any advertised value.
		n.observeHello(h, now)
	default:
		// Receiving a HELLO proves the link (ideal symmetric MAC); adopt
		// the neighbor's advertised weight toward us when present so both
		// ends agree on the link weight.
		for _, l := range h.Links {
			if l.Neighbor == n.ID {
				n.UpdateLink(h.Origin, l.Weight, now)
			}
		}
	}
	for _, m := range h.MPRs {
		if m == n.ID {
			deadline := now + n.cfg.NeighborHoldTime
			n.selectors.put(h.Origin, deadline)
			n.track(deadline)
		}
	}
	tbl := n.neighbors.get(h.Origin)
	// The steady-state HELLO re-announces an unchanged link block — in the
	// common case the very same shared slice the previous announcement
	// carried, detected by pointer identity: refresh the deadline on the
	// existing table without touching content. Only the advertised links
	// feed the derived state, so equal content means every cached artifact
	// stays valid. An equal-content message with a differently ordered
	// block merely takes the slow path and rebuilds to identical state.
	if tbl != nil && sameAdv(tbl.adv, h.Links) {
		if sharedAdv(tbl.adv, h.Links) {
			n.stats.AdvShared++
		}
		n.stats.AdvRefresh++
		tbl.expires = now + n.cfg.NeighborHoldTime
		n.track(tbl.expires)
		return
	}
	adv := normalizeAdv(h.Links)
	var old []LinkInfo
	if tbl == nil {
		tbl = &neighborTable{}
		n.neighbors.insert(h.Origin, tbl)
	} else {
		old = tbl.adv
	}
	tbl.adv = adv
	tbl.expires = now + n.cfg.NeighborHoldTime
	n.track(tbl.expires)
	if !slices.Equal(old, adv) {
		n.stats.AdvChange++
		n.touchNeighborhood()
		n.markAdvDiff(h.Origin, old, adv)
	} else {
		n.stats.AdvRefresh++
	}
}

// GenerateTC produces this node's periodic TC advertising its ANS, or nil
// when it has nothing to advertise (RFC behaviour: nodes with an empty
// advertised set may stay silent).
func (n *Node) GenerateTC(now time.Duration) *TC {
	n.expire(now)
	n.recompute()
	if len(n.ansSet) == 0 {
		return nil
	}
	t := &TC{Origin: n.ID, Seq: n.tcSeq, ANSN: n.ansn, Links: n.currentTCAdv()}
	n.tcSeq++
	return t
}

// currentTCAdv returns the cached advertised link block for the current ANS
// (rebuilt when the neighborhood version moved; the slice is shared
// read-only with every emitted message until the next content change).
// Callers must have run recompute().
func (n *Node) currentTCAdv() []LinkInfo {
	if n.tcAdv == nil || n.tcAt != n.nhVersion {
		n.tcAt = n.nhVersion
		adv := make([]LinkInfo, 0, len(n.ansSet))
		for _, id := range n.ansSet {
			if l, ok := n.links.get(id); ok {
				adv = append(adv, LinkInfo{Neighbor: id, Weight: l.weight})
			}
		}
		n.tcAdv = adv
	}
	return n.tcAdv
}

// GenerateTCUpdate produces this node's periodic topology-control emission
// under the control-plane optimisations, returning exactly one of full and
// delta (both nil when there is nothing to advertise) plus the fish-eye TTL
// scope for this emission (0 = unlimited flood).
//
// A full TC goes out when DeltaTC is off, when no full has been flooded
// since the advertised set was last empty, and on the periodic refresh —
// every TCFullEvery-th emission, or, under a fish-eye schedule, on every
// unlimited-scope emission (those are the only ones distant receivers get,
// so they must be self-contained). Every other emission carries the delta
// against the previously flooded content; in the converged steady state
// that is an empty header-sized keepalive. Full and delta emissions share
// the origin's flooding sequence space, so duplicate suppression and the
// delta chain anchor (FullSeq) both work off the same counter.
func (n *Node) GenerateTCUpdate(now time.Duration) (full *TC, delta *TCDelta, ttl int) {
	n.expire(now)
	n.recompute()
	emit := n.tcEmit
	n.tcEmit++
	if s := n.cfg.FisheyeTTLs; len(s) > 0 {
		ttl = s[emit%uint64(len(s))]
	}
	if len(n.ansSet) == 0 {
		// Nothing to advertise: stay silent (RFC behaviour). Receivers
		// expire the old state on their own; when content returns the
		// chain restarts from a full TC.
		n.haveFull = false
		return nil, nil, ttl
	}
	adv := n.currentTCAdv()
	wantFull := !n.cfg.DeltaTC || !n.haveFull || n.chainIdx == math.MaxUint16
	if !wantFull {
		if len(n.cfg.FisheyeTTLs) > 0 {
			wantFull = ttl == 0
		} else {
			wantFull = emit%uint64(n.cfg.TCFullEvery) == 0
		}
	}
	seq := n.tcSeq
	n.tcSeq++
	if wantFull {
		n.lastAdv = adv
		n.lastFullSeq = seq
		n.chainIdx = 0
		n.haveFull = true
		return &TC{Origin: n.ID, Seq: seq, ANSN: n.ansn, Links: adv}, nil, ttl
	}
	add, del := diffAdv(n.lastAdv, adv)
	n.lastAdv = adv
	n.chainIdx++
	return nil, &TCDelta{
		Origin:  n.ID,
		Seq:     seq,
		ANSN:    n.ansn,
		FullSeq: n.lastFullSeq,
		Index:   n.chainIdx,
		Add:     add,
		Del:     del,
	}, ttl
}

// diffAdv computes the change from one advertised link block to the next.
// Both are sorted by neighbor (selection output is ascending-ID), so one
// linear merge yields the additions/reweights and the removals.
func diffAdv(old, cur []LinkInfo) (add []LinkInfo, del []int64) {
	i, j := 0, 0
	for i < len(old) && j < len(cur) {
		switch {
		case old[i].Neighbor == cur[j].Neighbor:
			if old[i].Weight != cur[j].Weight {
				add = append(add, cur[j])
			}
			i++
			j++
		case old[i].Neighbor < cur[j].Neighbor:
			del = append(del, old[i].Neighbor)
			i++
		default:
			add = append(add, cur[j])
			j++
		}
	}
	for ; i < len(old); i++ {
		del = append(del, old[i].Neighbor)
	}
	for ; j < len(cur); j++ {
		add = append(add, cur[j])
	}
	return add, del
}

// HandleTCDelta ingests a flooded delta TC received from the direct
// neighbor sender and reports whether this node must re-broadcast it (same
// forwarding rule and duplicate-suppression window as HandleTC — full and
// delta share the origin's sequence space). The content applies only when
// this node is synchronised on the origin's chain, holding the state at
// exactly (FullSeq, Index-1); on any gap the message still floods, but the
// receiver marks the origin desynchronised and waits for the next full TC
// to rebase. The stale entry is kept meanwhile — it remains the best known
// state until rebased or expired.
func (n *Node) HandleTCDelta(d *TCDelta, sender int64, now time.Duration) (forward bool) {
	n.expire(now)
	if !n.cfg.ExternalDupSuppression && n.dupSeen(d.Origin, d.Seq, now) {
		return false
	}
	if d.Origin != n.ID {
		n.applyTCDelta(d, now)
	}
	return n.selectors.has(sender)
}

// applyTCDelta merges an in-chain delta into the origin's topology entry,
// or flags the entry desynchronised on a chain gap.
func (n *Node) applyTCDelta(d *TCDelta, now time.Duration) {
	cur := n.topology.get(d.Origin)
	if cur == nil || !cur.synced || cur.fullSeq != d.FullSeq || d.Index != cur.chain+1 {
		if cur != nil && cur.synced {
			if cur.fullSeq == d.FullSeq && d.Index <= cur.chain {
				// At or below the applied chain position: a stale
				// reordering, not a desync.
				return
			}
			cur.synced = false
			n.stats.DeltaResyncs++
		}
		return
	}
	cur.chain = d.Index
	cur.ansn = d.ANSN
	cur.expires = now + n.cfg.TopologyHoldTime
	n.track(cur.expires)
	if len(d.Add) == 0 && len(d.Del) == 0 {
		// The steady-state keepalive: refresh in place, no rebuild and no
		// cache invalidation.
		return
	}
	adv := applyDeltaToAdv(cur.adv, normalizeAdv(d.Add), normalizeDel(d.Del))
	old := cur.adv
	cur.adv = adv
	if !slices.Equal(old, adv) {
		n.stats.AdvChange++
		n.touchTopology()
		n.markAdvDiff(d.Origin, old, adv)
	} else {
		n.stats.AdvRefresh++
	}
}

// HandleTC ingests a flooded TC received from the direct neighbor sender
// and reports whether this node must re-broadcast it (RFC 3626 forwarding
// rule: forward once, and only if the sender selected us as MPR). A TC that
// re-advertises an origin's known link set only refreshes its deadline.
func (n *Node) HandleTC(t *TC, sender int64, now time.Duration) (forward bool) {
	n.expire(now)
	if !n.cfg.ExternalDupSuppression && n.dupSeen(t.Origin, t.Seq, now) {
		return false
	}
	if t.Origin != n.ID {
		cur := n.topology.get(t.Origin)
		// Accept unless stale (ANSN regression within the validity
		// window).
		switch {
		case cur != nil && ansnNewer(cur.ansn, t.ANSN):
			// Stale: ignore.
		case cur != nil && sameAdv(cur.adv, t.Links):
			// The steady-state TC re-advertises an unchanged link block —
			// usually the very shared slice the previous flood carried:
			// refresh the entry in place, no rebuild and no cache
			// invalidation. A full TC is always a valid chain anchor.
			if sharedAdv(cur.adv, t.Links) {
				n.stats.AdvShared++
			}
			n.stats.AdvRefresh++
			cur.ansn = t.ANSN
			cur.expires = now + n.cfg.TopologyHoldTime
			cur.fullSeq, cur.chain, cur.synced = t.Seq, 0, true
			n.track(cur.expires)
		default:
			adv := normalizeAdv(t.Links)
			var old []LinkInfo
			if cur == nil {
				cur = &topoEntry{}
				n.topology.insert(t.Origin, cur)
			} else {
				old = cur.adv
			}
			cur.ansn = t.ANSN
			cur.adv = adv
			cur.expires = now + n.cfg.TopologyHoldTime
			cur.fullSeq, cur.chain, cur.synced = t.Seq, 0, true
			n.track(cur.expires)
			if !slices.Equal(old, adv) {
				n.stats.AdvChange++
				n.touchTopology()
				n.markAdvDiff(t.Origin, old, adv)
			} else {
				n.stats.AdvRefresh++
			}
		}
	}
	return n.selectors.has(sender)
}

// dupSeen probes (and on a first sighting, records) the (origin, seq)
// duplicate-suppression window shared by every flooded TC-family message:
// one scan of the origin's few live entries, recycling the first expired
// slot for the new entry.
func (n *Node) dupSeen(origin int64, seq uint16, now time.Duration) bool {
	row := n.dups[origin]
	slot := -1
	for i := range row {
		if row[i].expires <= now {
			if slot < 0 {
				slot = i
			}
			continue
		}
		if row[i].seq == seq {
			n.stats.DupHits++
			return true
		}
	}
	if slot >= 0 {
		row[slot] = dupSeq{seq: seq, expires: now + n.cfg.TopologyHoldTime}
	} else {
		n.dups[origin] = append(row, dupSeq{seq: seq, expires: now + n.cfg.TopologyHoldTime})
	}
	return false
}

// ansnNewer reports whether current is strictly newer than candidate under
// wrap-around sequence comparison.
func ansnNewer(current, candidate uint16) bool {
	return int16(current-candidate) > 0
}

// recompute refreshes the MPR set, the ANS and the ANSN when the underlying
// neighborhood changed since the last computation.
func (n *Node) recompute() {
	if n.selAt == n.nhVersion {
		return
	}
	n.selAt = n.nhVersion

	view, g, w, err := n.localView()
	if err != nil || view == nil {
		n.mprSet, n.ansSet, n.relaySet = nil, nil, nil
		return
	}
	mprs, err := mpr.Select(view, n.cfg.MPRHeuristic, n.cfg.Metric, w)
	if err != nil {
		mprs = nil
	}
	ans, err := n.cfg.Selector.Select(view, n.cfg.Metric, w)
	if err != nil {
		ans = nil
	}
	toIDs := func(idx []int32) []int64 {
		out := make([]int64, len(idx))
		for i, x := range idx {
			out[i] = int64(g.ID(x))
		}
		return out
	}
	n.mprSet = toIDs(mprs)
	if fr := n.cfg.FloodRelay; fr != 0 && fr != n.cfg.MPRHeuristic {
		rel, err := mpr.Select(view, fr, n.cfg.Metric, w)
		if err != nil {
			rel = nil
		}
		n.relaySet = toIDs(rel)
	} else {
		n.relaySet = n.mprSet
	}
	newANS := toIDs(ans)
	if !equalIDs(newANS, n.ansSet) {
		n.ansSet = newANS
		n.ansn++
	}
}

func equalIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortedKeys returns a map's keys in ascending order. The node's tables are
// Go maps, whose iteration order is randomized per range: everything
// derived from them (graph edge insertion order, hence Dijkstra tie-breaks,
// hence chosen routes) must iterate in sorted order instead, or routing
// becomes nondeterministic across processes.
func sortedKeys[V any](m map[int64]V) []int64 {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// buildScratch holds the reusable intermediates of a topology rebuild: the
// identifier set, the sorted id slice, the id-to-index map and the edge
// accumulator. Rebuilds are rare under the version cache, but dense churny
// networks still perform them in bursts; reusing the staging storage keeps
// those bursts allocation-light.
type buildScratch struct {
	idset map[int64]struct{}
	ids   []graph.NodeID
	index map[graph.NodeID]int32
	acc   graph.EdgeAccum
}

func (b *buildScratch) reset() {
	if b.idset == nil {
		b.idset = make(map[int64]struct{})
	} else {
		clear(b.idset)
	}
	b.ids = b.ids[:0]
	b.acc.Reset()
}

func (b *buildScratch) addID(id int64) {
	b.idset[id] = struct{}{}
}

// materialise sorts the collected identifiers, builds the node-only graph
// and fills the id-to-index map.
func (b *buildScratch) materialise() (*graph.Graph, error) {
	for id := range b.idset {
		b.ids = append(b.ids, graph.NodeID(id))
	}
	slices.Sort(b.ids)
	g, err := graph.NewWithIDs(b.ids)
	if err != nil {
		return nil, err
	}
	if b.index == nil {
		b.index = make(map[graph.NodeID]int32, len(b.ids))
	} else {
		clear(b.index)
	}
	for i, id := range b.ids {
		b.index[id] = int32(i)
	}
	return g, nil
}

// collectNeighborhoodIDs stages the identifiers the neighborhood
// contributes: self, direct neighbors, and everything the neighbors
// advertise.
func (n *Node) collectNeighborhoodIDs() {
	b := &n.build
	b.addID(n.ID)
	n.links.each(func(id int64, _ *linkEntry) {
		b.addID(id)
	})
	n.neighbors.each(func(_ int64, tbl *neighborTable) {
		for _, l := range tbl.adv {
			b.addID(l.Neighbor)
		}
	})
}

// accumulateNeighborhood stages this node's own links and the two-hop links
// learned from HELLOs, in sorted-key order with own links taking precedence.
func (n *Node) accumulateNeighborhood() {
	acc := &n.build.acc
	n.links.eachAsc(func(id int64, l *linkEntry) {
		acc.Add(graph.NodeID(n.ID), graph.NodeID(id), l.weight)
	})
	n.neighbors.eachAsc(func(nb int64, tbl *neighborTable) {
		if !n.links.has(nb) {
			return
		}
		// adv is normalised (ascending by Neighbor): iterating it directly
		// preserves the sorted-key insertion order determinism demands.
		for _, l := range tbl.adv {
			if l.Neighbor != n.ID {
				acc.Add(graph.NodeID(nb), graph.NodeID(l.Neighbor), l.Weight)
			}
		}
	})
}

// localView materialises the node's current knowledge of G_u as a graph and
// returns the local view centered at this node. The result is cached per
// neighborhood version: repeated calls between state changes are free.
func (n *Node) localView() (*graph.LocalView, *graph.Graph, []float64, error) {
	if n.viewBuilt && n.viewAt == n.nhVersion {
		return n.view, n.viewG, n.viewW, nil
	}
	view, g, w, err := n.buildLocalView()
	if err != nil {
		return nil, nil, nil, err
	}
	n.view, n.viewG, n.viewW = view, g, w
	n.viewBuilt, n.viewAt = true, n.nhVersion
	return view, g, w, nil
}

func (n *Node) buildLocalView() (*graph.LocalView, *graph.Graph, []float64, error) {
	if n.links.len() == 0 {
		return nil, nil, nil, nil
	}
	b := &n.build
	b.reset()
	n.collectNeighborhoodIDs()
	g, err := b.materialise()
	if err != nil {
		return nil, nil, nil, err
	}
	channel := n.cfg.Metric.Name()
	// Accumulate edges in sorted-key order (own links take precedence
	// over neighbor-advertised ones) so the view is identical for
	// identical protocol state, whatever the map iteration order.
	n.accumulateNeighborhood()
	b.acc.Build(g, b.index, channel)
	w, err := g.Weights(channel)
	if err != nil {
		return nil, nil, nil, err
	}
	view := graph.NewLocalView(g, b.index[graph.NodeID(n.ID)])
	return view, g, w, nil
}

// MPRSet returns the current multipoint relay set (flooding).
func (n *Node) MPRSet(now time.Duration) []int64 {
	n.expire(now)
	n.recompute()
	return append([]int64(nil), n.mprSet...)
}

// RelaySet returns the flooding relay set this node announces in HELLOs:
// the MPR set, unless Config.FloodRelay computes a separate one.
func (n *Node) RelaySet(now time.Duration) []int64 {
	n.expire(now)
	n.recompute()
	return append([]int64(nil), n.relaySet...)
}

// ANS returns the current advertised neighbor set (routing).
func (n *Node) ANS(now time.Duration) []int64 {
	n.expire(now)
	n.recompute()
	return append([]int64(nil), n.ansSet...)
}

// Selectors returns the nodes that currently select this node as MPR.
func (n *Node) Selectors(now time.Duration) []int64 {
	n.expire(now)
	out := make([]int64, 0, n.selectors.len())
	n.selectors.eachAsc(func(id int64, _ *time.Duration) {
		out = append(out, id)
	})
	return out
}

// KnownTopology assembles the node's routing graph: its own links plus
// every valid advertised link learned from TCs and the two-hop links
// learned from HELLOs. The returned graph is the node's cached snapshot,
// shared across calls until the state changes — callers must treat it as
// read-only. A retained snapshot stays internally consistent after the node
// moves on (rebuilds allocate a fresh graph rather than mutating the old
// one).
func (n *Node) KnownTopology(now time.Duration) (*graph.Graph, error) {
	n.expire(now)
	return n.knownTopology()
}

// knownTopology returns the cached routing graph, rebuilding it when the
// topology version moved. Callers must have run expire(now) first.
func (n *Node) knownTopology() (*graph.Graph, error) {
	if n.topoG != nil && n.topoAt == n.topoVersion {
		return n.topoG, nil
	}
	g, err := n.buildKnownTopology()
	if err != nil {
		return nil, err
	}
	n.topoG = g
	n.topoAt = n.topoVersion
	return g, nil
}

func (n *Node) buildKnownTopology() (*graph.Graph, error) {
	n.stats.TopoBuilds++
	b := &n.build
	b.reset()
	n.collectNeighborhoodIDs()
	n.topology.each(func(origin int64, t *topoEntry) {
		b.addID(origin)
		for _, l := range t.adv {
			b.addID(l.Neighbor)
		}
	})
	g, err := b.materialise()
	if err != nil {
		return nil, err
	}
	channel := n.cfg.Metric.Name()
	// Accumulate edges in sorted-key order with fixed source precedence
	// (own links, then HELLO-learned two-hop links, then TC links): edge
	// insertion order decides Dijkstra tie-breaks downstream, so it must
	// be a pure function of the protocol state, not of map iteration.
	n.accumulateNeighborhood()
	n.topology.eachAsc(func(origin int64, t *topoEntry) {
		for _, l := range t.adv {
			b.acc.Add(graph.NodeID(origin), graph.NodeID(l.Neighbor), l.Weight)
		}
	})
	b.acc.Build(g, b.index, channel)
	return g, nil
}

// Routes returns the node's current routing table: QoS routes to every known
// destination over the known topology under the node's metric, with the next
// hop being the first node of the canonical best path.
//
// The table is a cached artifact rebuilt only when the protocol state
// changed (by message content or expiry) since the last call: the common
// data-plane case — many lookups against an unchanged topology — returns the
// same read-only snapshot without recomputing or allocating anything. When
// the state did change, the table is repaired incrementally: the handlers
// record which node pairs a change touched, and the rebuild re-resolves only
// those against the state maps and repairs the affected region of the cached
// shortest-path solution (see incremental.go), instead of rebuilding graph
// and search from scratch. Both paths produce bit-identical tables
// (Config.RouteCrossCheck asserts it).
func (n *Node) Routes(now time.Duration) (*Routes, error) {
	n.expire(now)
	if n.routes != nil && n.routesAt == n.topoVersion {
		return n.routes, nil
	}
	r, err := n.incrementalRoutes()
	if err != nil {
		return nil, err
	}
	if n.cfg.RouteCrossCheck {
		if err := n.crossCheckRoutes(r); err != nil {
			return nil, err
		}
	}
	n.routes = r
	n.routesAt = n.topoVersion
	return r, nil
}

// fullRoutes computes the routing table from scratch: materialise the known
// topology and run one canonical Dijkstra over it. It is the reference the
// incremental engine is checked against (and the original implementation of
// Routes). Callers must have run expire(now) first.
func (n *Node) fullRoutes() (*Routes, error) {
	g, err := n.knownTopology()
	if err != nil {
		return nil, err
	}
	r := &Routes{}
	// A missing weight channel means the topology has no edges at all:
	// the table is empty.
	if w, err := g.Weights(n.cfg.Metric.Name()); err == nil {
		if self := g.IndexOf(graph.NodeID(n.ID)); self >= 0 {
			sp := n.sp.Dijkstra(g, n.cfg.Metric, w, self, nil, -1)
			n.first, n.hops = sp.FirstHops(n.first, n.hops)
			if reached := len(sp.Reached); reached > 1 {
				r.dsts = make([]int64, 0, reached-1)
				r.routes = make([]Route, 0, reached-1)
			}
			for x := int32(0); int(x) < g.N(); x++ {
				if x == self || !sp.Reachable(x) {
					continue
				}
				// The graph's identifiers are sorted, so index
				// order yields ascending destinations — the
				// order Routes.Lookup binary-searches.
				r.dsts = append(r.dsts, int64(g.ID(x)))
				r.routes = append(r.routes, Route{
					NextHop: int64(g.ID(n.first[x])),
					Value:   sp.Dist[x],
					Hops:    int(n.hops[x]),
				})
			}
		}
	}
	return r, nil
}
