package olsr

import (
	"testing"
	"time"

	"qolsr/internal/metric"
	"qolsr/internal/mpr"
)

// deltaPair wires emitter a (ID 1) to neighbor b (ID 2) with a settled
// 2-hop view so a advertises its link to b, and returns a fresh receiver r
// (ID 9) plus the settled clock.
func deltaPair(t *testing.T, cfg Config) (a, r *Node, now time.Duration) {
	t.Helper()
	a, err := NewNode(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewNode(2, testConfig())
	c, _ := NewNode(3, testConfig())
	now = 0
	a.UpdateLink(2, 5, now)
	b.UpdateLink(1, 5, now)
	b.UpdateLink(3, 7, now)
	c.UpdateLink(2, 7, now)
	for round := 0; round < 2; round++ {
		now += 100 * time.Millisecond
		ha, hb, hc := a.GenerateHello(now), b.GenerateHello(now), c.GenerateHello(now)
		b.HandleHello(ha, now)
		a.HandleHello(hb, now)
		c.HandleHello(hb, now)
		b.HandleHello(hc, now)
	}
	r, _ = NewNode(9, testConfig())
	return a, r, now
}

func TestGenerateTCUpdateDeltaChain(t *testing.T) {
	cfg := testConfig()
	cfg.DeltaTC = true
	a, r, now := deltaPair(t, cfg)

	full, d, ttl := a.GenerateTCUpdate(now)
	if full == nil || d != nil || ttl != 0 {
		t.Fatalf("first emission = (%v, %v, %d), want a full at unlimited scope", full, d, ttl)
	}
	r.HandleTC(full, 1, now)

	// Steady state: the next emissions are empty keepalive deltas chained
	// on the full.
	now += 100 * time.Millisecond
	f2, d2, _ := a.GenerateTCUpdate(now)
	if f2 != nil || d2 == nil {
		t.Fatal("steady-state emission was not a delta")
	}
	if d2.FullSeq != full.Seq || d2.Index != 1 || len(d2.Add) != 0 || len(d2.Del) != 0 {
		t.Fatalf("keepalive delta = %+v, want empty at (%d, 1)", d2, full.Seq)
	}
	if d2.Seq == full.Seq {
		t.Fatal("delta reused the full's flooding seq")
	}
	r.HandleTCDelta(d2, 1, now)

	// A reweighted link travels as a one-entry Add.
	a.UpdateLink(2, 6, now)
	now += 100 * time.Millisecond
	_, d3, _ := a.GenerateTCUpdate(now)
	if d3 == nil || d3.Index != 2 || len(d3.Add) != 1 || d3.Add[0] != (LinkInfo{Neighbor: 2, Weight: 6}) || len(d3.Del) != 0 {
		t.Fatalf("reweight delta = %+v", d3)
	}
	r.HandleTCDelta(d3, 1, now)
	if got, _ := advWeight(r.topology.get(1).adv, 2); got != 6 {
		t.Fatalf("receiver link weight = %v after delta, want 6", got)
	}
	if !r.topology.get(1).synced || r.topology.get(1).chain != 2 {
		t.Fatalf("receiver chain state = %+v", r.topology.get(1))
	}

	// The 4th emission (TCFullEvery = 4) refreshes with a full.
	now += 100 * time.Millisecond
	f4, d4, _ := a.GenerateTCUpdate(now)
	if f4 != nil || d4 == nil || d4.Index != 3 {
		t.Fatalf("emission 3 = (%v, %+v), want the chain's third delta", f4, d4)
	}
	now += 100 * time.Millisecond
	f5, d5, _ := a.GenerateTCUpdate(now)
	if f5 == nil || d5 != nil {
		t.Fatalf("emission 4 = (%v, %v), want the periodic full refresh", f5, d5)
	}
}

func TestHandleTCDeltaResyncOnGap(t *testing.T) {
	cfg := testConfig()
	cfg.DeltaTC = true
	a, r, now := deltaPair(t, cfg)

	full, _, _ := a.GenerateTCUpdate(now)
	r.HandleTC(full, 1, now)

	// Lose the first delta; the second cannot apply.
	now += 100 * time.Millisecond
	a.UpdateLink(2, 6, now)
	_, lost, _ := a.GenerateTCUpdate(now)
	if lost == nil || len(lost.Add) != 1 {
		t.Fatalf("lost delta = %+v", lost)
	}
	now += 100 * time.Millisecond
	a.UpdateLink(2, 7, now)
	_, d2, _ := a.GenerateTCUpdate(now)
	if d2 == nil || d2.Index != 2 {
		t.Fatalf("second delta = %+v", d2)
	}
	r.HandleTCDelta(d2, 1, now)
	cur := r.topology.get(1)
	if cur.synced {
		t.Fatal("receiver still synced across a chain gap")
	}
	if w, _ := advWeight(cur.adv, 2); w != 5 {
		t.Fatalf("gapped receiver links = %v, want the pre-gap state kept", cur.adv)
	}

	// Further deltas stay unappliable until a full rebases the chain.
	now += 100 * time.Millisecond
	_, d3, _ := a.GenerateTCUpdate(now)
	r.HandleTCDelta(d3, 1, now)
	if r.topology.get(1).synced {
		t.Fatal("delta applied while desynchronised")
	}
	now += 100 * time.Millisecond
	f, _, _ := a.GenerateTCUpdate(now) // emission 4: periodic full
	if f == nil {
		t.Fatal("expected the periodic full refresh")
	}
	r.HandleTC(f, 1, now)
	cur = r.topology.get(1)
	if w, _ := advWeight(cur.adv, 2); !cur.synced || w != 7 {
		t.Fatalf("full did not resync: %+v", cur)
	}
}

func TestHandleTCDeltaSharesDupWindow(t *testing.T) {
	cfg := testConfig()
	cfg.DeltaTC = true
	a, r, now := deltaPair(t, cfg)
	full, _, _ := a.GenerateTCUpdate(now)
	r.HandleTC(full, 1, now)
	_, d, _ := a.GenerateTCUpdate(now)
	r.HandleTCDelta(d, 1, now)
	if r.HandleTCDelta(d, 2, now) {
		t.Error("duplicate delta forwarded")
	}
	if r.topology.get(1).chain != 1 {
		t.Error("duplicate delta re-applied")
	}
}

func TestGenerateTCUpdateFisheyeSchedule(t *testing.T) {
	cfg := testConfig()
	cfg.DeltaTC = true
	cfg.FisheyeTTLs = DefaultFisheyeTTLs() // {2, 0}
	a, _, now := deltaPair(t, cfg)

	// Emission 0 is scoped (TTL 2) but still a full: nothing was flooded
	// yet. Emission 1 is the unlimited slot and under DeltaTC must carry
	// the full; scoped slots after that carry deltas.
	wantTTL := []int{2, 0, 2, 0}
	wantFull := []bool{true, true, false, true}
	for i := range wantTTL {
		now += 100 * time.Millisecond
		full, d, ttl := a.GenerateTCUpdate(now)
		if ttl != wantTTL[i] {
			t.Errorf("emission %d: ttl = %d, want %d", i, ttl, wantTTL[i])
		}
		if (full != nil) != wantFull[i] || (d == nil) != wantFull[i] {
			t.Errorf("emission %d: full=%v delta=%v, want full=%v", i, full != nil, d != nil, wantFull[i])
		}
	}
}

func TestGenerateTCUpdateSilentWhenEmpty(t *testing.T) {
	cfg := testConfig()
	cfg.DeltaTC = true
	n, _ := NewNode(1, cfg)
	if f, d, _ := n.GenerateTCUpdate(0); f != nil || d != nil {
		t.Fatal("empty node emitted topology control")
	}
}

func TestDeltaConfigValidation(t *testing.T) {
	cfg := testConfig()
	cfg.FisheyeTTLs = []int{-1}
	if _, err := NewNode(1, cfg); err == nil {
		t.Error("negative fish-eye TTL accepted")
	}
	cfg = testConfig()
	cfg.DeltaTC = true
	cfg.FisheyeTTLs = []int{2, 3} // no unlimited slot: deltas could never resync far nodes
	if _, err := NewNode(1, cfg); err == nil {
		t.Error("DeltaTC with all-scoped fish-eye schedule accepted")
	}
	cfg.FisheyeTTLs = []int{2, 0}
	if _, err := NewNode(1, cfg); err != nil {
		t.Errorf("valid fish-eye config rejected: %v", err)
	}
}

func TestFloodRelayAnnouncedInHello(t *testing.T) {
	cfg := DefaultConfig(metric.Bandwidth())
	cfg.Selector = testConfig().Selector
	cfg.FloodRelay = mpr.MinCover
	a, _, now := deltaPair(t, cfg)
	h := a.GenerateHello(now)
	rel := a.RelaySet(now)
	if len(rel) == 0 {
		t.Fatal("no relay set with a 2-hop neighborhood")
	}
	if !equalIDs(h.MPRs, rel) {
		t.Errorf("HELLO announces %v, relay set is %v", h.MPRs, rel)
	}
}

func TestDiffAdv(t *testing.T) {
	old := []LinkInfo{{Neighbor: 1, Weight: 1}, {Neighbor: 3, Weight: 3}, {Neighbor: 5, Weight: 5}}
	cur := []LinkInfo{{Neighbor: 1, Weight: 1}, {Neighbor: 4, Weight: 4}, {Neighbor: 5, Weight: 9}}
	add, del := diffAdv(old, cur)
	if len(add) != 2 || add[0] != (LinkInfo{Neighbor: 4, Weight: 4}) || add[1] != (LinkInfo{Neighbor: 5, Weight: 9}) {
		t.Errorf("add = %+v", add)
	}
	if len(del) != 1 || del[0] != 3 {
		t.Errorf("del = %+v", del)
	}
	if add, del := diffAdv(cur, cur); add != nil || del != nil {
		t.Errorf("self-diff = (%v, %v)", add, del)
	}
}
