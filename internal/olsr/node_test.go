package olsr

import (
	"testing"
	"time"

	"qolsr/internal/metric"
)

func testConfig() Config {
	return DefaultConfig(metric.Bandwidth())
}

func TestNewNodeValidation(t *testing.T) {
	if _, err := NewNode(1, Config{}); err == nil {
		t.Error("zero config accepted")
	}
	cfg := testConfig()
	cfg.Metric = nil
	if _, err := NewNode(1, cfg); err == nil {
		t.Error("nil metric accepted")
	}
	n, err := NewNode(1, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if n.ID != 1 {
		t.Error("id not set")
	}
}

func TestHelloCarriesLinksAndMPRs(t *testing.T) {
	n, _ := NewNode(1, testConfig())
	n.UpdateLink(2, 5, 0)
	n.UpdateLink(3, 7, 0)
	h := n.GenerateHello(0)
	if h.Origin != 1 {
		t.Error("origin wrong")
	}
	if len(h.Links) != 2 || h.Links[0].Neighbor != 2 || h.Links[1].Neighbor != 3 {
		t.Errorf("links = %+v", h.Links)
	}
	h2 := n.GenerateHello(time.Second)
	if h2.Seq != h.Seq+1 {
		t.Error("hello seq did not increment")
	}
}

func TestLinkExpiry(t *testing.T) {
	n, _ := NewNode(1, testConfig())
	n.UpdateLink(2, 5, 0)
	h := n.GenerateHello(time.Second)
	if len(h.Links) != 1 {
		t.Fatal("fresh link missing")
	}
	// Past the neighbor hold time the link must vanish.
	h = n.GenerateHello(10 * time.Second)
	if len(h.Links) != 0 {
		t.Error("stale link still advertised")
	}
}

// Two-node handshake: receiving a HELLO that lists us refreshes the link and
// records the neighbor's table.
func TestHandleHelloLearnsLink(t *testing.T) {
	a, _ := NewNode(1, testConfig())
	b, _ := NewNode(2, testConfig())
	a.UpdateLink(2, 5, 0)
	b.HandleHello(a.GenerateHello(0), 0)
	// b now knows the link 1-2 from a's HELLO.
	hb := b.GenerateHello(time.Millisecond)
	if len(hb.Links) != 1 || hb.Links[0].Neighbor != 1 || hb.Links[0].Weight != 5 {
		t.Errorf("b's links = %+v, want link to 1 at weight 5", hb.Links)
	}
}

// Line topology a-b-c: after exchanging HELLOs, a's ANS must select b (the
// only access to c), and a's TC must advertise it.
func TestThreeNodeANSAndTC(t *testing.T) {
	cfg := testConfig()
	a, _ := NewNode(1, cfg)
	b, _ := NewNode(2, cfg)
	c, _ := NewNode(3, cfg)
	now := time.Duration(0)
	a.UpdateLink(2, 5, now)
	b.UpdateLink(1, 5, now)
	b.UpdateLink(3, 7, now)
	c.UpdateLink(2, 7, now)

	// Two HELLO rounds so 2-hop knowledge settles.
	for round := 0; round < 2; round++ {
		now += 100 * time.Millisecond
		ha, hb, hc := a.GenerateHello(now), b.GenerateHello(now), c.GenerateHello(now)
		b.HandleHello(ha, now)
		a.HandleHello(hb, now)
		c.HandleHello(hb, now)
		b.HandleHello(hc, now)
	}

	ans := a.ANS(now)
	if len(ans) != 1 || ans[0] != 2 {
		t.Errorf("ANS(a) = %v, want [2]", ans)
	}
	mprs := a.MPRSet(now)
	if len(mprs) != 1 || mprs[0] != 2 {
		t.Errorf("MPR(a) = %v, want [2]", mprs)
	}
	tc := a.GenerateTC(now)
	if tc == nil {
		t.Fatal("a generated no TC despite non-empty ANS")
	}
	if len(tc.Links) != 1 || tc.Links[0].Neighbor != 2 || tc.Links[0].Weight != 5 {
		t.Errorf("TC links = %+v", tc.Links)
	}
	// b was selected by a (and c): after hearing their HELLOs again it
	// must know its selectors and forward their TCs.
	now += 100 * time.Millisecond
	b.HandleHello(a.GenerateHello(now), now)
	sel := b.Selectors(now)
	if len(sel) == 0 {
		t.Fatal("b has no selectors")
	}
	forward := b.HandleTC(tc, 1, now)
	if !forward {
		t.Error("b must forward TC from its selector a")
	}
	// Duplicate suppression.
	if b.HandleTC(tc, 1, now) {
		t.Error("duplicate TC forwarded")
	}
}

func TestGenerateTCNilWhenEmpty(t *testing.T) {
	n, _ := NewNode(1, testConfig())
	if tc := n.GenerateTC(0); tc != nil {
		t.Errorf("TC = %+v, want nil for empty ANS", tc)
	}
}

func TestHandleTCTopologyAndRouting(t *testing.T) {
	// d learns remote topology from TCs: chain 1-2-3-4, d=4 hears TC from
	// 2 advertising {1,3}.
	cfg := testConfig()
	d, _ := NewNode(4, cfg)
	now := time.Duration(0)
	d.UpdateLink(3, 9, now)
	// HELLO from 3 listing its links (3-2 and 3-4).
	d.HandleHello(&Hello{Origin: 3, Seq: 1, Links: []LinkInfo{
		{Neighbor: 2, Weight: 6}, {Neighbor: 4, Weight: 9},
	}}, now)
	// TC from 2 (relayed by 3) advertising links 2-1 and 2-3.
	d.HandleTC(&TC{Origin: 2, ANSN: 1, Seq: 1, Links: []LinkInfo{
		{Neighbor: 1, Weight: 4}, {Neighbor: 3, Weight: 6},
	}}, 3, now)

	table, err := d.Routes(now)
	if err != nil {
		t.Fatal(err)
	}
	r1, ok := table.Lookup(1)
	if !ok {
		t.Fatal("no route to node 1")
	}
	if r1.NextHop != 3 || r1.Hops != 3 {
		t.Errorf("route to 1 = %+v, want via 3 in 3 hops", r1)
	}
	// Bottleneck 4-3(9), 3-2(6), 2-1(4) = 4.
	if r1.Value != 4 {
		t.Errorf("route value = %v, want 4", r1.Value)
	}
}

func TestANSNStaleTCDiscarded(t *testing.T) {
	cfg := testConfig()
	n, _ := NewNode(9, cfg)
	now := time.Duration(0)
	n.UpdateLink(1, 5, now)
	n.HandleTC(&TC{Origin: 2, ANSN: 10, Seq: 1, Links: []LinkInfo{{Neighbor: 3, Weight: 7}}}, 1, now)
	// Older ANSN with a new flooding seq: content must not regress.
	n.HandleTC(&TC{Origin: 2, ANSN: 9, Seq: 2, Links: []LinkInfo{{Neighbor: 8, Weight: 1}}}, 1, now)
	g, err := n.KnownTopology(now)
	if err != nil {
		t.Fatal(err)
	}
	if g.IndexOf(3) < 0 {
		t.Error("fresh topology entry lost")
	}
	if g.IndexOf(8) >= 0 {
		t.Error("stale TC accepted")
	}
	// Newer ANSN replaces.
	n.HandleTC(&TC{Origin: 2, ANSN: 11, Seq: 3, Links: []LinkInfo{{Neighbor: 8, Weight: 1}}}, 1, now)
	g, _ = n.KnownTopology(now)
	if g.IndexOf(8) < 0 {
		t.Error("newer TC rejected")
	}
}

func TestANSNWrapComparison(t *testing.T) {
	if !ansnNewer(1, 65535) {
		t.Error("wrap-around: 1 should be newer than 65535")
	}
	if ansnNewer(65535, 1) {
		t.Error("wrap-around: 65535 should not be newer than 1")
	}
	if ansnNewer(5, 5) {
		t.Error("equal ANSN is not newer")
	}
}

func TestANSNBumpsOnChange(t *testing.T) {
	cfg := testConfig()
	n, _ := NewNode(1, cfg)
	now := time.Duration(0)
	n.UpdateLink(2, 5, now)
	n.HandleHello(&Hello{Origin: 2, Seq: 1, Links: []LinkInfo{
		{Neighbor: 1, Weight: 5}, {Neighbor: 3, Weight: 7},
	}}, now)
	tc1 := n.GenerateTC(now)
	if tc1 == nil {
		t.Fatal("no TC")
	}
	// New 2-hop neighbor through a different relay changes the ANS.
	n.UpdateLink(4, 9, now)
	n.HandleHello(&Hello{Origin: 4, Seq: 1, Links: []LinkInfo{
		{Neighbor: 1, Weight: 9}, {Neighbor: 5, Weight: 9},
	}}, now)
	tc2 := n.GenerateTC(now)
	if tc2 == nil {
		t.Fatal("no second TC")
	}
	if tc2.ANSN == tc1.ANSN {
		t.Error("ANSN did not change after ANS change")
	}
}
