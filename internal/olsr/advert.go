package olsr

import (
	"cmp"
	"slices"
)

// Interned advertisement content.
//
// The advertised link block of a HELLO or TC-family message is the single
// source of truth for the sender's links, and in a converged network the same
// block is re-announced period after period and ingested by every receiver.
// The node state therefore stores the block itself — a sorted []LinkInfo
// shared read-only between the emitter, every in-flight message and every
// receiver's table — instead of exploding it into one map[int64]float64 per
// (receiver, origin) pair. At N nodes that interning removes O(N²) small maps
// from the heap, replaces per-receiver map builds with a pointer comparison
// in the steady state, and turns content diffs into linear merges of two
// sorted slices.
//
// Invariant: every adv slice held in node state is normalised — strictly
// ascending Neighbor order with no duplicates. Wire decoders accept arbitrary
// blocks, so ingestion normalises (see normalizeAdv); emitters already
// produce sorted blocks, for which normalisation is a zero-copy check.

// advSorted reports whether links is strictly ascending by Neighbor.
func advSorted(links []LinkInfo) bool {
	for i := 1; i < len(links); i++ {
		if links[i-1].Neighbor >= links[i].Neighbor {
			return false
		}
	}
	return true
}

// normalizeAdv returns links in normalised form. Blocks that are already
// strictly ascending — every block a well-formed emitter produces — are
// returned as-is, aliasing the input so receivers share the sender's storage.
// Anything else is copied, stably sorted and deduplicated with last-writer
// precedence, matching the map-overwrite semantics hostile re-ordered or
// duplicated blocks historically got.
func normalizeAdv(links []LinkInfo) []LinkInfo {
	if advSorted(links) {
		return links
	}
	sorted := append([]LinkInfo(nil), links...)
	slices.SortStableFunc(sorted, func(a, b LinkInfo) int { return cmp.Compare(a.Neighbor, b.Neighbor) })
	out := sorted[:0]
	for _, l := range sorted {
		if n := len(out); n > 0 && out[n-1].Neighbor == l.Neighbor {
			out[n-1] = l // later entry wins, as map insertion did
			continue
		}
		out = append(out, l)
	}
	return out
}

// sameAdv reports whether two normalised blocks carry identical content,
// probing pointer identity first: in the steady state a receiver compares the
// very slice it retained from the previous announcement against the same
// shared slice carried by the next one, so the common case is two header
// compares, not an element scan.
func sameAdv(a, b []LinkInfo) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 || &a[0] == &b[0] {
		return true
	}
	return slices.Equal(a, b)
}

// sharedAdv reports whether two non-empty blocks alias the same storage —
// the interned-epoch fast path, counted separately from content equality.
func sharedAdv(a, b []LinkInfo) bool {
	return len(a) > 0 && len(a) == len(b) && &a[0] == &b[0]
}

// advWeight returns the advertised weight for peer in a normalised block.
func advWeight(adv []LinkInfo, peer int64) (float64, bool) {
	i, ok := slices.BinarySearchFunc(adv, peer, func(l LinkInfo, id int64) int {
		return cmp.Compare(l.Neighbor, id)
	})
	if !ok {
		return 0, false
	}
	return adv[i].Weight, true
}

// markAdvDiff marks every pair whose advertised weight differs between an
// entry's old and new normalised blocks (additions, removals and reweights):
// one linear merge, the slice counterpart of diffing two link maps.
func (n *Node) markAdvDiff(origin int64, old, cur []LinkInfo) {
	i, j := 0, 0
	for i < len(old) && j < len(cur) {
		switch {
		case old[i].Neighbor == cur[j].Neighbor:
			if old[i].Weight != cur[j].Weight {
				n.markPair(origin, cur[j].Neighbor)
			}
			i++
			j++
		case old[i].Neighbor < cur[j].Neighbor:
			n.markPair(origin, old[i].Neighbor)
			i++
		default:
			n.markPair(origin, cur[j].Neighbor)
			j++
		}
	}
	for ; i < len(old); i++ {
		n.markPair(origin, old[i].Neighbor)
	}
	for ; j < len(cur); j++ {
		n.markPair(origin, cur[j].Neighbor)
	}
}

// applyDeltaToAdv merges a delta into a normalised block, producing a fresh
// normalised block: Add upserts (authoritative even when the same neighbor is
// also listed in Del, matching the historical delete-then-add map order), Del
// removes. add must be normalised and del sorted.
func applyDeltaToAdv(cur, add []LinkInfo, del []int64) []LinkInfo {
	out := make([]LinkInfo, 0, len(cur)+len(add))
	i, j := 0, 0
	inDel := func(id int64) bool {
		_, ok := slices.BinarySearch(del, id)
		return ok
	}
	for i < len(cur) && j < len(add) {
		switch {
		case cur[i].Neighbor == add[j].Neighbor:
			out = append(out, add[j])
			i++
			j++
		case cur[i].Neighbor < add[j].Neighbor:
			if !inDel(cur[i].Neighbor) {
				out = append(out, cur[i])
			}
			i++
		default:
			out = append(out, add[j])
			j++
		}
	}
	for ; i < len(cur); i++ {
		if !inDel(cur[i].Neighbor) {
			out = append(out, cur[i])
		}
	}
	out = append(out, add[j:]...)
	return out
}

// normalizeDel returns del sorted and deduplicated, aliasing the input when
// it already is — the emitter's diffAdv always produces sorted unique lists.
func normalizeDel(del []int64) []int64 {
	sorted := true
	for i := 1; i < len(del); i++ {
		if del[i-1] >= del[i] {
			sorted = false
			break
		}
	}
	if sorted {
		return del
	}
	out := append([]int64(nil), del...)
	slices.Sort(out)
	return slices.Compact(out)
}
