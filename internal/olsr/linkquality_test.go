package olsr

import (
	"math"
	"reflect"
	"testing"
	"time"

	"qolsr/internal/metric"
)

func TestLQEstimatorPerfectStream(t *testing.T) {
	e := newLQEstimator(8)
	for seq := uint16(0); seq < 20; seq++ {
		e.observe(seq)
	}
	if r := e.ratio(); r != 1 {
		t.Errorf("lossless stream ratio = %g, want 1", r)
	}
}

func TestLQEstimatorGapsCountAsMisses(t *testing.T) {
	e := newLQEstimator(8)
	// Receive seq 0, then 2, 4, 6, ... — every other HELLO lost.
	for seq := uint16(0); seq < 32; seq += 2 {
		e.observe(seq)
	}
	if r := e.ratio(); math.Abs(r-0.5) > 1e-9 {
		t.Errorf("alternating stream ratio = %g, want 0.5", r)
	}
}

func TestLQEstimatorWindowSlides(t *testing.T) {
	e := newLQEstimator(4)
	// Lossy prefix, then a clean tail longer than the window: the ratio
	// must forget the prefix entirely.
	e.observe(0)
	e.observe(5)
	for seq := uint16(6); seq < 12; seq++ {
		e.observe(seq)
	}
	if r := e.ratio(); r != 1 {
		t.Errorf("ratio after clean tail = %g, want 1 (window must slide)", r)
	}
}

func TestLQEstimatorWrapAround(t *testing.T) {
	e := newLQEstimator(8)
	e.observe(0xfffe)
	e.observe(0xffff)
	e.observe(0) // wrap: gap of exactly 1
	e.observe(1)
	if r := e.ratio(); r != 1 {
		t.Errorf("ratio across seq wrap = %g, want 1", r)
	}
	e.observe(3) // one miss after the wrap: 5 hits, 1 miss in the window
	if r := e.ratio(); math.Abs(r-5.0/6) > 1e-9 {
		t.Errorf("ratio = %g, want 5/6", r)
	}
}

func TestLQEstimatorDuplicateIgnored(t *testing.T) {
	e := newLQEstimator(8)
	e.observe(1)
	e.observe(1)
	e.observe(1)
	if e.filled != 1 {
		t.Errorf("duplicates filled the window: filled = %d, want 1", e.filled)
	}
}

// TestLQEstimatorOutOfOrderIgnored: a reordered HELLO (sequence behind the
// last seen, possible when medium jitter approaches the emission interval)
// must not be misread as a ~65535-wide loss burst.
func TestLQEstimatorOutOfOrderIgnored(t *testing.T) {
	e := newLQEstimator(8)
	e.observe(5)
	e.observe(7) // one miss (seq 6)
	e.observe(6) // late arrival — ignored, not a giant gap
	if e.filled != 3 {
		t.Errorf("out-of-order arrival changed the window: filled = %d, want 3", e.filled)
	}
	if r := e.ratio(); math.Abs(r-2.0/3) > 1e-9 {
		t.Errorf("ratio = %g, want 2/3", r)
	}
	// Same across the wrap boundary.
	e2 := newLQEstimator(8)
	e2.observe(2)
	e2.observe(0xffff) // far behind in wrap arithmetic — ignored
	if e2.filled != 1 {
		t.Errorf("wrapped out-of-order arrival filled the window: filled = %d, want 1", e2.filled)
	}
}

func TestMeasuredWeightMapping(t *testing.T) {
	if _, ok := measuredWeight(metric.Delay(), 0, 0.5); ok {
		t.Error("unmeasured direction produced a weight")
	}
	w, ok := measuredWeight(metric.Delay(), 0.8, 0.5)
	if !ok || math.Abs(w-1/0.4) > 1e-9 {
		t.Errorf("additive weight = %g, %v; want ETX 2.5", w, ok)
	}
	w, ok = measuredWeight(metric.Bandwidth(), 0.8, 0.5)
	if !ok || math.Abs(w-0.4) > 1e-9 {
		t.Errorf("concave weight = %g, %v; want product 0.4", w, ok)
	}
	// The ETX of a terrible-but-alive link stays finite.
	w, ok = measuredWeight(metric.Delay(), 1e-6, 1e-6)
	if !ok || math.IsInf(w, 0) || w > 1/minLQProduct+1e-9 {
		t.Errorf("floored ETX = %g, %v", w, ok)
	}
}

func TestHelloLQWireRoundTrip(t *testing.T) {
	h := &Hello{
		Origin: 7,
		Seq:    3,
		Links:  []LinkInfo{{Neighbor: 1, Weight: 2.5}},
		MPRs:   []int64{1},
		LQs:    []LinkInfo{{Neighbor: 1, Weight: 0.875}, {Neighbor: 4, Weight: 0.5}},
	}
	got, err := UnmarshalHello(MarshalHello(h))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, h) {
		t.Errorf("round trip = %+v, want %+v", got, h)
	}
	// A HELLO without LQs stays byte-identical to the pre-measurement wire
	// format: no trailing block at all.
	bare := &Hello{Origin: 7, Seq: 3, Links: h.Links, MPRs: h.MPRs}
	buf := MarshalHello(bare)
	wantLen := headerLen + len(bare.Links)*linkInfoLen + 2 + len(bare.MPRs)*8
	if len(buf) != wantLen {
		t.Errorf("bare hello length = %d, want %d (no LQ block)", len(buf), wantLen)
	}
	back, err := UnmarshalHello(buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.LQs != nil {
		t.Errorf("bare hello decoded with LQs %v", back.LQs)
	}
	// Truncated LQ block is rejected, and so are trailing bytes after a
	// complete one.
	full := MarshalHello(h)
	if _, err := UnmarshalHello(full[:len(full)-4]); err == nil {
		t.Error("truncated LQ block accepted")
	}
	if _, err := UnmarshalHello(append(append([]byte(nil), full...), 0xee)); err == nil {
		t.Error("trailing garbage after LQ block accepted")
	}
}

// TestMeasuredQoSFormsSymmetricLinks drives two nodes by hand: a link forms
// only once both directions have been heard, with the ETX-mapped weight.
func TestMeasuredQoSFormsSymmetricLinks(t *testing.T) {
	cfg := DefaultConfig(metric.Delay())
	cfg.MeasuredQoS = true
	a, err := NewNode(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNode(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Second
	// b hears a's first HELLO: asymmetric, no link yet.
	b.HandleHello(a.GenerateHello(now), now)
	if _, ok := b.LinkWeight(1, now); ok {
		t.Error("asymmetric hearing formed a link")
	}
	// a hears b's HELLO, which reports hearing a: a forms the link.
	a.HandleHello(b.GenerateHello(now), now)
	if w, ok := a.LinkWeight(2, now); !ok || w != 1 {
		t.Errorf("a's measured weight = %g, %v; want ETX 1 on a lossless pair", w, ok)
	}
	// The next exchange closes the loop for b too.
	b.HandleHello(a.GenerateHello(now+time.Second), now+time.Second)
	if w, ok := b.LinkWeight(1, now+time.Second); !ok || w != 1 {
		t.Errorf("b's measured weight = %g, %v; want ETX 1", w, ok)
	}
	if q, ok := a.LinkQuality(2, now+time.Second); !ok || q != 1 {
		t.Errorf("a's LinkQuality of b = %g, %v; want 1", q, ok)
	}
}
