package olsr

import (
	"time"

	"qolsr/internal/metric"
)

// Link-quality estimation: under Config.MeasuredQoS a node derives its link
// weights from what the radio actually delivers instead of reading them from
// the out-of-scope oracle. Every node tracks, per heard neighbor, a windowed
// delivery ratio of that neighbor's HELLOs — the periodic emission doubles
// as a probe stream, and sequence-number gaps reveal losses. HELLOs
// piggyback the sender's measured ratios (the LQ wire block), so both ends
// learn both directions and can form the bidirectional estimate: the
// ETX-family link metrics of the quality-routing literature (Javaid et al.)
// running on the QOLSR stack.

// DefaultLQWindow is the HELLO-history window the delivery ratio averages
// over when Config.LQWindow is unset: large enough to smooth draw noise,
// small enough to follow a link whose loss rate changes mid-run.
const DefaultLQWindow = 16

// minLQProduct floors the bidirectional delivery product so the ETX of a
// terrible-but-alive link stays finite.
const minLQProduct = 1.0 / 1024

// lqEstimator tracks one neighbor's HELLO delivery history in a boolean
// ring: a received HELLO contributes a hit, and a sequence gap of g
// contributes g-1 misses first. The ratio over the filled window is the
// forward delivery probability estimate of the link from that neighbor.
type lqEstimator struct {
	lastSeq uint16
	primed  bool
	window  []bool
	pos     int
	filled  int
	hits    int
	expires time.Duration
}

func newLQEstimator(window int) *lqEstimator {
	if window <= 0 {
		window = DefaultLQWindow
	}
	return &lqEstimator{window: make([]bool, window)}
}

// observe ingests one received HELLO sequence number. Wrap-around-safe: the
// gap is computed in signed wrap arithmetic, so a duplicate or reordered
// HELLO (sequence at or behind the last seen — possible when medium jitter
// approaches the emission interval) is ignored instead of being misread as
// a ~65535-wide loss burst. Forward gaps are capped at the window size (a
// larger gap floods the window with misses anyway).
func (e *lqEstimator) observe(seq uint16) {
	if !e.primed {
		e.primed = true
		e.lastSeq = seq
		e.push(true)
		return
	}
	gap := int16(seq - e.lastSeq)
	if gap <= 0 {
		return // duplicate or out-of-order delivery
	}
	missed := int(gap) - 1
	if missed > len(e.window) {
		missed = len(e.window)
	}
	for i := 0; i < missed; i++ {
		e.push(false)
	}
	e.push(true)
	e.lastSeq = seq
}

func (e *lqEstimator) push(hit bool) {
	if e.filled == len(e.window) {
		if e.window[e.pos] {
			e.hits--
		}
	} else {
		e.filled++
	}
	e.window[e.pos] = hit
	if hit {
		e.hits++
	}
	e.pos = (e.pos + 1) % len(e.window)
}

// ratio returns the windowed delivery ratio, 0 before any observation.
func (e *lqEstimator) ratio() float64 {
	if e.filled == 0 {
		return 0
	}
	return float64(e.hits) / float64(e.filled)
}

// measuredWeight maps the two directions' HELLO delivery ratios into the
// configured metric's value domain: concave metrics (bandwidth-family) get
// the delivery product — the fraction of offered throughput the link
// actually carries, larger better; additive metrics (delay-family) get
// ETX = 1/(fwd·rev) — the expected transmissions per delivered frame, a
// latency-proportional cost, smaller better. The second return is false
// while either direction is still unmeasured.
func measuredWeight(m metric.Metric, fwd, rev float64) (float64, bool) {
	p := fwd * rev
	if p <= 0 {
		return 0, false
	}
	if p > 1 {
		p = 1
	}
	if p < minLQProduct {
		p = minLQProduct
	}
	if m.Kind() == metric.Concave {
		return p, true
	}
	return 1 / p, true
}

// observeHello is the measured-mode link-sensing path: record the HELLO in
// the origin's delivery window, and when the origin reports hearing us too
// (its LQ block names us), refresh our link with the bidirectional estimate
// mapped into the metric's domain. UpdateLink bumps the neighborhood
// version only when the quantised ratio actually moved, so a stable link
// keeps every cached derivation valid between changes.
func (n *Node) observeHello(h *Hello, now time.Duration) {
	est := n.lq[h.Origin]
	if est == nil {
		if n.lq == nil {
			n.lq = make(map[int64]*lqEstimator)
		}
		est = newLQEstimator(n.cfg.LQWindow)
		n.lq[h.Origin] = est
	}
	est.observe(h.Seq)
	est.expires = now + n.cfg.NeighborHoldTime
	n.track(est.expires)
	for _, l := range h.LQs {
		if l.Neighbor == n.ID {
			if w, ok := measuredWeight(n.cfg.Metric, est.ratio(), l.Weight); ok {
				n.UpdateLink(h.Origin, w, now)
			}
			return
		}
	}
	// The origin does not (yet) hear us: the link is asymmetric and forms
	// no routing edge — OLSR's symmetric-link requirement, enforced here
	// by measurement instead of assumption.
}

// LinkQuality returns this node's measured delivery ratio of HELLOs from
// the given neighbor, and whether a measurement exists. Only meaningful
// under Config.MeasuredQoS.
func (n *Node) LinkQuality(neighbor int64, now time.Duration) (float64, bool) {
	n.expire(now)
	est, ok := n.lq[neighbor]
	if !ok || est.filled == 0 {
		return 0, false
	}
	return est.ratio(), true
}

// LinkWeight returns the node's current weight for its own link to the
// given neighbor (oracle-fed, or the measured estimate under MeasuredQoS).
func (n *Node) LinkWeight(neighbor int64, now time.Duration) (float64, bool) {
	n.expire(now)
	l, ok := n.links.get(neighbor)
	if !ok {
		return 0, false
	}
	return l.weight, true
}
