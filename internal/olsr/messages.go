// Package olsr implements the OLSR/QOLSR protocol machinery the paper's
// selection algorithms live in: HELLO messages that piggyback the sender's
// neighborhood table with QoS link weights (building each node's two-hop
// view G_u), TC messages that flood the advertised neighbor sets through the
// MPR backbone, duplicate suppression, topology and neighbor state with
// expiry, and QoS routing-table computation.
//
// The implementation follows RFC 3626's structure simplified to the paper's
// assumptions: symmetric links (no asymmetric sensing phase), uniform
// willingness, no HNA/MID, and an abstract per-link QoS weight whose
// measurement is out of scope (paper Sec. II).
package olsr

import (
	"encoding/binary"
	"fmt"
	"math"
)

// MsgType discriminates wire messages.
type MsgType uint8

// Wire message types.
const (
	MsgHello MsgType = iota + 1
	MsgTC
	MsgTCDelta
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "HELLO"
	case MsgTC:
		return "TC"
	case MsgTCDelta:
		return "TC-DELTA"
	default:
		return fmt.Sprintf("MsgType(%d)", int(t))
	}
}

// LinkInfo is one advertised link: the neighbor's identifier and the QoS
// weight of the link toward it.
type LinkInfo struct {
	Neighbor int64
	Weight   float64
}

// Hello is the neighbor-discovery message. Besides announcing the sender,
// it piggybacks the sender's current link table with weights, which is
// exactly what lets receivers assemble the two-hop view G_u the selection
// algorithms need (paper Sec. III-B: "this can be achieved by piggybacking
// neighborhood table in Hello messages").
type Hello struct {
	// Origin is the sending node.
	Origin int64
	// Seq increments per HELLO from this origin.
	Seq uint16
	// Links is the sender's neighbor table with QoS weights.
	Links []LinkInfo
	// MPRs lists the neighbors the sender has chosen as multipoint
	// relays; receivers use it to maintain their MPR-selector sets,
	// which gate TC forwarding.
	MPRs []int64
	// LQs, present only under measured link quality (Config.MeasuredQoS),
	// carries the sender's raw windowed HELLO delivery ratio per heard
	// neighbor — the reverse-direction measurement the receiver needs to
	// form an ETX-style bidirectional link estimate. The block is encoded
	// only when non-empty, so oracle-mode HELLOs are byte-identical to the
	// pre-measurement wire format.
	LQs []LinkInfo
}

// TC is the topology-control message flooded through the MPR backbone. It
// advertises the origin's QoS Advertised Neighbor Set with link weights so
// remote nodes can compute QoS routes.
type TC struct {
	// Origin is the node whose advertised set this is (not the
	// forwarder).
	Origin int64
	// ANSN is the Advertised Neighbor Sequence Number; stale TCs are
	// discarded.
	ANSN uint16
	// Seq is the flooding sequence number used for duplicate
	// suppression.
	Seq uint16
	// Links is the advertised neighbor set with link weights.
	Links []LinkInfo
}

const (
	headerLen   = 1 + 8 + 2 + 2 // type, origin, seq, count
	linkInfoLen = 8 + 8
)

// validWeight reports whether an advertised link weight is acceptable from
// the wire. The decoders face untrusted network bytes: a NaN weight would
// poison every metric comparison downstream (NaN compares false against
// everything, corrupting Dijkstra and the selection orderings), an infinite
// or negative one breaks the additive metrics' optimality assumptions. Every
// legitimate sender — simulator oracle, measured ETX/delivery estimates,
// RTT-derived delays — produces finite non-negative weights.
func validWeight(w float64) bool {
	return !math.IsNaN(w) && !math.IsInf(w, 0) && w >= 0
}

// MarshalHello encodes h into a fresh byte slice.
func MarshalHello(h *Hello) []byte {
	size := headerLen + 2 + len(h.Links)*linkInfoLen + len(h.MPRs)*8
	if len(h.LQs) > 0 {
		size += 2 + len(h.LQs)*linkInfoLen
	}
	buf := make([]byte, 0, size)
	buf = append(buf, byte(MsgHello))
	buf = binary.BigEndian.AppendUint64(buf, uint64(h.Origin))
	buf = binary.BigEndian.AppendUint16(buf, h.Seq)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(h.Links)))
	for _, l := range h.Links {
		buf = binary.BigEndian.AppendUint64(buf, uint64(l.Neighbor))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(l.Weight))
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(h.MPRs)))
	for _, m := range h.MPRs {
		buf = binary.BigEndian.AppendUint64(buf, uint64(m))
	}
	// Optional trailing LQ block (measured link quality only): frames are
	// self-delimiting buffers, so absence is simply the frame ending here.
	if len(h.LQs) > 0 {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(h.LQs)))
		for _, l := range h.LQs {
			buf = binary.BigEndian.AppendUint64(buf, uint64(l.Neighbor))
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(l.Weight))
		}
	}
	return buf
}

// UnmarshalHello decodes a HELLO produced by MarshalHello.
func UnmarshalHello(buf []byte) (*Hello, error) {
	if len(buf) < headerLen {
		return nil, fmt.Errorf("olsr: hello too short (%d bytes)", len(buf))
	}
	if MsgType(buf[0]) != MsgHello {
		return nil, fmt.Errorf("olsr: not a hello (type %d)", buf[0])
	}
	h := &Hello{
		Origin: int64(binary.BigEndian.Uint64(buf[1:9])),
		Seq:    binary.BigEndian.Uint16(buf[9:11]),
	}
	n := int(binary.BigEndian.Uint16(buf[11:13]))
	off := 13
	if len(buf) < off+n*linkInfoLen+2 {
		return nil, fmt.Errorf("olsr: hello truncated (%d links claimed)", n)
	}
	h.Links = make([]LinkInfo, n)
	for i := 0; i < n; i++ {
		h.Links[i].Neighbor = int64(binary.BigEndian.Uint64(buf[off : off+8]))
		h.Links[i].Weight = math.Float64frombits(binary.BigEndian.Uint64(buf[off+8 : off+16]))
		if !validWeight(h.Links[i].Weight) {
			return nil, fmt.Errorf("olsr: hello link %d has invalid weight", i)
		}
		off += linkInfoLen
	}
	m := int(binary.BigEndian.Uint16(buf[off : off+2]))
	off += 2
	if len(buf) < off+m*8 {
		return nil, fmt.Errorf("olsr: hello truncated (%d mprs claimed)", m)
	}
	h.MPRs = make([]int64, m)
	for i := 0; i < m; i++ {
		h.MPRs[i] = int64(binary.BigEndian.Uint64(buf[off : off+8]))
		off += 8
	}
	if off == len(buf) {
		return h, nil // no LQ block — oracle-mode frame
	}
	if len(buf) < off+2 {
		return nil, fmt.Errorf("olsr: hello has trailing garbage (%d bytes)", len(buf)-off)
	}
	q := int(binary.BigEndian.Uint16(buf[off : off+2]))
	off += 2
	if q == 0 {
		// The marshaller omits an empty LQ block entirely; an explicit
		// zero-count block is not a frame we produce, so reject it to keep
		// the encoding canonical (decode(buf) re-encodes to buf).
		return nil, fmt.Errorf("olsr: hello has explicit empty lq block")
	}
	if len(buf) < off+q*linkInfoLen {
		return nil, fmt.Errorf("olsr: hello truncated (%d lqs claimed)", q)
	}
	h.LQs = make([]LinkInfo, q)
	for i := 0; i < q; i++ {
		h.LQs[i].Neighbor = int64(binary.BigEndian.Uint64(buf[off : off+8]))
		h.LQs[i].Weight = math.Float64frombits(binary.BigEndian.Uint64(buf[off+8 : off+16]))
		if !validWeight(h.LQs[i].Weight) {
			return nil, fmt.Errorf("olsr: hello lq %d has invalid weight", i)
		}
		off += linkInfoLen
	}
	if off != len(buf) {
		return nil, fmt.Errorf("olsr: hello has trailing garbage after lq block (%d bytes)", len(buf)-off)
	}
	return h, nil
}

// MarshalTC encodes t into a fresh byte slice.
func MarshalTC(t *TC) []byte {
	buf := make([]byte, 0, headerLen+2+len(t.Links)*linkInfoLen)
	buf = append(buf, byte(MsgTC))
	buf = binary.BigEndian.AppendUint64(buf, uint64(t.Origin))
	buf = binary.BigEndian.AppendUint16(buf, t.Seq)
	buf = binary.BigEndian.AppendUint16(buf, t.ANSN)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(t.Links)))
	for _, l := range t.Links {
		buf = binary.BigEndian.AppendUint64(buf, uint64(l.Neighbor))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(l.Weight))
	}
	return buf
}

// UnmarshalTC decodes a TC produced by MarshalTC.
func UnmarshalTC(buf []byte) (*TC, error) {
	if len(buf) < headerLen+2 {
		return nil, fmt.Errorf("olsr: tc too short (%d bytes)", len(buf))
	}
	if MsgType(buf[0]) != MsgTC {
		return nil, fmt.Errorf("olsr: not a tc (type %d)", buf[0])
	}
	t := &TC{
		Origin: int64(binary.BigEndian.Uint64(buf[1:9])),
		Seq:    binary.BigEndian.Uint16(buf[9:11]),
		ANSN:   binary.BigEndian.Uint16(buf[11:13]),
	}
	n := int(binary.BigEndian.Uint16(buf[13:15]))
	if len(buf) < 15+n*linkInfoLen {
		return nil, fmt.Errorf("olsr: tc truncated (%d links claimed)", n)
	}
	t.Links = make([]LinkInfo, n)
	off := 15
	for i := 0; i < n; i++ {
		t.Links[i].Neighbor = int64(binary.BigEndian.Uint64(buf[off : off+8]))
		t.Links[i].Weight = math.Float64frombits(binary.BigEndian.Uint64(buf[off+8 : off+16]))
		if !validWeight(t.Links[i].Weight) {
			return nil, fmt.Errorf("olsr: tc link %d has invalid weight", i)
		}
		off += linkInfoLen
	}
	if off != len(buf) {
		return nil, fmt.Errorf("olsr: tc has trailing garbage (%d bytes)", len(buf)-off)
	}
	return t, nil
}

// TCDelta is the delta-encoded topology-control message (opt-in, see
// Config.DeltaTC): instead of re-flooding the whole advertised neighbor set
// every period, the origin floods only the changes against what it last
// flooded. Deltas form a chain anchored on the last full TC: FullSeq names
// the anchoring full TC's flooding sequence number and Index is the delta's
// 1-based position in the chain since it. A receiver applies a delta only
// when it holds the origin's state at exactly (FullSeq, Index-1); any gap —
// a missed delta, a missed full, a fresh receiver — desynchronises it until
// the next full TC rebases the chain (the origin refreshes the full state
// periodically, so resync is bounded by the full-TC period). In the
// steady-state converged network the delta is empty and serves as a pure
// soft-state keepalive at a fraction of a full TC's size.
type TCDelta struct {
	// Origin is the node whose advertised set changed (not the forwarder).
	Origin int64
	// Seq is the flooding sequence number used for duplicate suppression;
	// full TCs and deltas share the origin's one counter.
	Seq uint16
	// ANSN is the Advertised Neighbor Sequence Number after applying the
	// delta.
	ANSN uint16
	// FullSeq is the Seq of the full TC this delta chain is anchored on.
	FullSeq uint16
	// Index is the 1-based position in the delta chain since FullSeq.
	Index uint16
	// Add lists links added to — or reweighted within — the advertised set.
	Add []LinkInfo
	// Del lists neighbors removed from the advertised set.
	Del []int64
}

// MarshalTCDelta encodes d into a fresh byte slice.
func MarshalTCDelta(d *TCDelta) []byte {
	buf := make([]byte, 0, headerLen+6+2+len(d.Add)*linkInfoLen+2+len(d.Del)*8)
	buf = append(buf, byte(MsgTCDelta))
	buf = binary.BigEndian.AppendUint64(buf, uint64(d.Origin))
	buf = binary.BigEndian.AppendUint16(buf, d.Seq)
	buf = binary.BigEndian.AppendUint16(buf, d.ANSN)
	buf = binary.BigEndian.AppendUint16(buf, d.FullSeq)
	buf = binary.BigEndian.AppendUint16(buf, d.Index)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(d.Add)))
	for _, l := range d.Add {
		buf = binary.BigEndian.AppendUint64(buf, uint64(l.Neighbor))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(l.Weight))
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(d.Del)))
	for _, id := range d.Del {
		buf = binary.BigEndian.AppendUint64(buf, uint64(id))
	}
	return buf
}

// UnmarshalTCDelta decodes a TC delta produced by MarshalTCDelta.
func UnmarshalTCDelta(buf []byte) (*TCDelta, error) {
	const fixed = 1 + 8 + 2 + 2 + 2 + 2 + 2 // type origin seq ansn fullseq index addcount
	if len(buf) < fixed+2 {
		return nil, fmt.Errorf("olsr: tc delta too short (%d bytes)", len(buf))
	}
	if MsgType(buf[0]) != MsgTCDelta {
		return nil, fmt.Errorf("olsr: not a tc delta (type %d)", buf[0])
	}
	d := &TCDelta{
		Origin:  int64(binary.BigEndian.Uint64(buf[1:9])),
		Seq:     binary.BigEndian.Uint16(buf[9:11]),
		ANSN:    binary.BigEndian.Uint16(buf[11:13]),
		FullSeq: binary.BigEndian.Uint16(buf[13:15]),
		Index:   binary.BigEndian.Uint16(buf[15:17]),
	}
	if d.Index == 0 {
		// Chain positions are 1-based: index 0 is not a frame the
		// marshalling side produces (GenerateTCUpdate emits a full TC as the
		// chain base instead).
		return nil, fmt.Errorf("olsr: tc delta with zero chain index")
	}
	n := int(binary.BigEndian.Uint16(buf[17:19]))
	off := 19
	if len(buf) < off+n*linkInfoLen+2 {
		return nil, fmt.Errorf("olsr: tc delta truncated (%d adds claimed)", n)
	}
	if n > 0 {
		d.Add = make([]LinkInfo, n)
	}
	for i := 0; i < n; i++ {
		d.Add[i].Neighbor = int64(binary.BigEndian.Uint64(buf[off : off+8]))
		d.Add[i].Weight = math.Float64frombits(binary.BigEndian.Uint64(buf[off+8 : off+16]))
		if !validWeight(d.Add[i].Weight) {
			return nil, fmt.Errorf("olsr: tc delta add %d has invalid weight", i)
		}
		off += linkInfoLen
	}
	m := int(binary.BigEndian.Uint16(buf[off : off+2]))
	off += 2
	if len(buf) < off+m*8 {
		return nil, fmt.Errorf("olsr: tc delta truncated (%d dels claimed)", m)
	}
	if m > 0 {
		d.Del = make([]int64, m)
	}
	for i := 0; i < m; i++ {
		d.Del[i] = int64(binary.BigEndian.Uint64(buf[off : off+8]))
		off += 8
	}
	if off != len(buf) {
		return nil, fmt.Errorf("olsr: tc delta has trailing garbage (%d bytes)", len(buf)-off)
	}
	return d, nil
}

// PeekType reports the wire type of an encoded message.
func PeekType(buf []byte) (MsgType, error) {
	if len(buf) == 0 {
		return 0, fmt.Errorf("olsr: empty message")
	}
	t := MsgType(buf[0])
	if t != MsgHello && t != MsgTC && t != MsgTCDelta {
		return 0, fmt.Errorf("olsr: unknown message type %d", buf[0])
	}
	return t, nil
}
