package olsr

import (
	"math/rand"
	"testing"
	"time"

	"qolsr/internal/metric"
)

// randomLinks draws a small advertised link set over the test's node
// universe; weights are small integers so metric ties (and hence canonical
// tie-breaking) are exercised constantly.
func randomLinks(rng *rand.Rand, universe int) []LinkInfo {
	k := rng.Intn(4)
	out := make([]LinkInfo, 0, k)
	seen := make(map[int64]bool, k)
	for i := 0; i < k; i++ {
		id := int64(rng.Intn(universe))
		if seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, LinkInfo{Neighbor: id, Weight: float64(1 + rng.Intn(4))})
	}
	return out
}

// TestIncrementalRoutesCrossCheck drives a node through long randomized
// protocol histories — link updates, HELLOs, TCs, idle time jumps that
// trigger soft-state expiry — with Config.RouteCrossCheck on, so every
// rebuilt table is compared against a from-scratch rebuild inside Routes.
// Any divergence between the incremental repair and the full rebuild
// surfaces as an error here.
func TestIncrementalRoutesCrossCheck(t *testing.T) {
	metrics := []metric.Metric{metric.Delay(), metric.Bandwidth(), metric.Hop()}
	for _, m := range metrics {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			for seed := int64(0); seed < 4; seed++ {
				rng := rand.New(rand.NewSource(seed))
				cfg := DefaultConfig(m)
				cfg.RouteCrossCheck = true
				const self = 5
				n, err := NewNode(self, cfg)
				if err != nil {
					t.Fatal(err)
				}
				const universe = 12
				now := time.Duration(0)
				for step := 0; step < 500; step++ {
					switch rng.Intn(12) {
					case 0, 1, 2:
						// The universe includes self: the no-self-link
						// guard is part of what is being checked.
						n.UpdateLink(int64(rng.Intn(universe)), float64(1+rng.Intn(4)), now)
					case 3, 4, 5:
						n.HandleHello(&Hello{
							Origin: int64(rng.Intn(universe)),
							Seq:    uint16(step),
							Links:  randomLinks(rng, universe),
						}, now)
					case 6, 7, 8:
						n.HandleTC(&TC{
							Origin: int64(rng.Intn(universe)),
							Seq:    uint16(step),
							ANSN:   uint16(rng.Intn(8)),
							Links:  randomLinks(rng, universe),
						}, int64(rng.Intn(universe)), now)
					case 9, 10:
						now += time.Duration(rng.Intn(2000)) * time.Millisecond
					default:
						// Jump past hold times to force expiries.
						now += time.Duration(2+rng.Intn(10)) * time.Second
					}
					if _, err := n.Routes(now); err != nil {
						t.Fatalf("metric %s seed %d step %d: %v", m.Name(), seed, step, err)
					}
				}
			}
		})
	}
}

// TestIncrementalRoutesAcrossExpiryAndRelearn pins the directness-toggle
// bookkeeping: a neighbor's advertised two-hop links must drop out of the
// table when our own link to it expires (even though its HELLO table is
// still valid), and come back when the link is relearned.
func TestIncrementalRoutesAcrossExpiryAndRelearn(t *testing.T) {
	cfg := testConfig()
	cfg.RouteCrossCheck = true
	cfg.NeighborHoldTime = 4 * time.Second
	cfg.TopologyHoldTime = 30 * time.Second
	// Host-driven link sensing: otherwise the HELLO below would itself
	// refresh the link (oracle mode adopts the advertised weight toward us)
	// and the expiry under test could never happen.
	cfg.ExternalLinkSensing = true
	n, _ := NewNode(1, cfg)
	now := time.Duration(0)
	n.UpdateLink(2, 5, now)
	n.HandleHello(&Hello{Origin: 2, Seq: 1, Links: []LinkInfo{
		{Neighbor: 1, Weight: 5}, {Neighbor: 3, Weight: 7},
	}}, now)
	r, err := n.Routes(now)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Lookup(3); !ok {
		t.Fatal("no two-hop route via fresh neighbor")
	}
	// Keep the HELLO table alive but let our own link expire: 2 stops being
	// direct, so both routes must go.
	now = 3 * time.Second
	n.HandleHello(&Hello{Origin: 2, Seq: 2, Links: []LinkInfo{
		{Neighbor: 1, Weight: 5}, {Neighbor: 3, Weight: 7},
	}}, now)
	now = 5 * time.Second
	r, err = n.Routes(now)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatalf("table has %d routes after own-link expiry, want 0", r.Len())
	}
	// Relearn the link: the surviving HELLO table's links become eligible
	// again without a new HELLO.
	n.UpdateLink(2, 6, now)
	r, err = n.Routes(now)
	if err != nil {
		t.Fatal(err)
	}
	if route, ok := r.Lookup(3); !ok {
		t.Fatal("two-hop route did not return with the relearned link")
	} else if route.NextHop != 2 {
		t.Fatalf("two-hop route next hop = %d, want 2", route.NextHop)
	}
}
