package olsr

import "sort"

// Routes is a node's routing table as a compact, read-only view: destinations
// in ascending identifier order with their routes stored index-addressed in
// parallel slices. A *Routes is a consistent snapshot — it is built once per
// topology change and shared by every caller until the node's state moves, so
// lookups on the data-plane hot path cost one binary search and zero
// allocations instead of a full table recomputation.
//
// The view must not be modified. It stays valid (as a snapshot of the state
// it was computed from) even after the owning node rebuilds its table.
type Routes struct {
	dsts   []int64
	routes []Route
}

// Len returns the number of destinations with a route.
func (r *Routes) Len() int { return len(r.dsts) }

// Lookup returns the route to dst, if one exists.
func (r *Routes) Lookup(dst int64) (Route, bool) {
	i := sort.Search(len(r.dsts), func(i int) bool { return r.dsts[i] >= dst })
	if i < len(r.dsts) && r.dsts[i] == dst {
		return r.routes[i], true
	}
	return Route{}, false
}

// At returns the i-th entry in ascending destination order, 0 <= i < Len().
func (r *Routes) At(i int) (dst int64, route Route) {
	return r.dsts[i], r.routes[i]
}

// Table materialises the view as a freshly-allocated map. It exists for
// display and offline analysis; hot paths should use Lookup/At, which do not
// allocate.
func (r *Routes) Table() map[int64]Route {
	out := make(map[int64]Route, len(r.dsts))
	for i, dst := range r.dsts {
		out[dst] = r.routes[i]
	}
	return out
}
