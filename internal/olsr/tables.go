package olsr

// Flat keyed state.
//
// Every per-packet handler path probes soft state keyed by node identifier:
// the origin's topology entry, the sender's selector deadline, a neighbor's
// HELLO table. Under arbitrary identifiers those are Go maps, and at field
// scale the per-delivery hash-and-probe dominates the control plane (the
// same message floods to N receivers, each hashing the same origin). When
// the host declares a dense identifier space (Config.DenseIDs — the
// simulator's graph indices are exactly [0, N)), every table degenerates to
// a slot array indexed by the identifier itself: a delivery probes state
// with one bounds-checked load, and ascending-identifier iteration — the
// order determinism already demands everywhere — is just the array walk, no
// key extraction and sort.
//
// Both representations sit behind slotTable (small value entries, zero
// means absent) and ptrTable (pointer entries, nil means absent); the
// handlers are written once against them.
//
// Message-borne identifiers index the slot arrays directly, so every
// accessor bounds-checks: an identifier outside the declared dense range
// reads as absent and is dropped on store — a malformed origin cannot be
// retained, matching a sparse table that simply never saw it.

// slotIn reports whether id indexes the dense slot array.
func slotIn(id int64, n int) bool {
	return uint64(id) < uint64(n)
}

// slotTable is keyed soft state held by value. The zero value of T marks an
// absent entry, so T's zero must be unreachable for live state (deadlines
// and validity windows are always positive).
type slotTable[T comparable] struct {
	m     map[int64]T
	slots []T
	count int
}

func (t *slotTable[T]) init(dense int) {
	if dense > 0 {
		t.slots = make([]T, dense)
	} else {
		t.m = make(map[int64]T)
	}
}

// get returns the entry for id, reporting presence.
func (t *slotTable[T]) get(id int64) (T, bool) {
	if t.slots != nil {
		var zero T
		if !slotIn(id, len(t.slots)) {
			return zero, false
		}
		v := t.slots[id]
		return v, v != zero
	}
	v, ok := t.m[id]
	return v, ok
}

// has reports presence without copying the entry out.
func (t *slotTable[T]) has(id int64) bool {
	if t.slots != nil {
		var zero T
		return slotIn(id, len(t.slots)) && t.slots[id] != zero
	}
	_, ok := t.m[id]
	return ok
}

// put stores the entry for id (insert or overwrite).
func (t *slotTable[T]) put(id int64, v T) {
	if t.slots != nil {
		if !slotIn(id, len(t.slots)) {
			return
		}
		var zero T
		if t.slots[id] == zero {
			t.count++
		}
		t.slots[id] = v
		return
	}
	t.m[id] = v
}

// del drops the entry for id.
func (t *slotTable[T]) del(id int64) {
	if t.slots != nil {
		if !slotIn(id, len(t.slots)) {
			return
		}
		var zero T
		if t.slots[id] != zero {
			t.count--
		}
		t.slots[id] = zero
		return
	}
	delete(t.m, id)
}

// len returns the live entry count.
func (t *slotTable[T]) len() int {
	if t.slots != nil {
		return t.count
	}
	return len(t.m)
}

// each visits every live entry in unspecified order (ascending when dense,
// map order when sparse) — callers must be order-independent. v is
// read-only (the sparse path passes a copy); the callback may call del on
// the visited id, nothing else mutating.
func (t *slotTable[T]) each(f func(id int64, v *T)) {
	if t.slots != nil {
		var zero T
		for i := range t.slots {
			if t.slots[i] != zero {
				f(int64(i), &t.slots[i])
			}
		}
		return
	}
	for id := range t.m {
		v := t.m[id]
		f(id, &v)
	}
}

// eachAsc visits every live entry in ascending id order. The callback must
// not mutate the table.
func (t *slotTable[T]) eachAsc(f func(id int64, v *T)) {
	if t.slots != nil {
		t.each(f)
		return
	}
	for _, id := range sortedKeys(t.m) {
		v := t.m[id]
		f(id, &v)
	}
}

// ptrTable is keyed soft state held by pointer: entries mutate in place, so
// the per-delivery refresh is one probe, not a probe-and-store pair.
type ptrTable[T any] struct {
	m     map[int64]*T
	slots []*T
	count int
}

func (t *ptrTable[T]) init(dense int) {
	if dense > 0 {
		t.slots = make([]*T, dense)
	} else {
		t.m = make(map[int64]*T)
	}
}

// get returns the entry for id, nil when absent.
func (t *ptrTable[T]) get(id int64) *T {
	if t.slots != nil {
		if !slotIn(id, len(t.slots)) {
			return nil
		}
		return t.slots[id]
	}
	return t.m[id]
}

// insert stores a new entry for id; the id must be absent. Callers must
// treat an insert they cannot observe through get as dropped (out-of-range
// id in dense mode) — mutations to the entry are then simply not retained.
func (t *ptrTable[T]) insert(id int64, v *T) {
	if t.slots != nil {
		if !slotIn(id, len(t.slots)) {
			return
		}
		t.slots[id] = v
		t.count++
		return
	}
	t.m[id] = v
}

// del drops the entry for id.
func (t *ptrTable[T]) del(id int64) {
	if t.slots != nil {
		if !slotIn(id, len(t.slots)) {
			return
		}
		if t.slots[id] != nil {
			t.count--
		}
		t.slots[id] = nil
		return
	}
	delete(t.m, id)
}

// len returns the live entry count.
func (t *ptrTable[T]) len() int {
	if t.slots != nil {
		return t.count
	}
	return len(t.m)
}

// each visits every live entry in unspecified order (ascending when dense,
// map order when sparse) — callers must be order-independent. The callback
// may mutate the entry or call del on the visited id, nothing else.
func (t *ptrTable[T]) each(f func(id int64, v *T)) {
	if t.slots != nil {
		for i, v := range t.slots {
			if v != nil {
				f(int64(i), v)
			}
		}
		return
	}
	for id, v := range t.m {
		f(id, v)
	}
}

// eachAsc visits every live entry in ascending id order. The callback must
// not mutate the table.
func (t *ptrTable[T]) eachAsc(f func(id int64, v *T)) {
	if t.slots != nil {
		t.each(f)
		return
	}
	for _, id := range sortedKeys(t.m) {
		f(id, t.m[id])
	}
}
