package stats

import (
	"math"
	"sort"
	"testing"

	"qolsr/internal/rng"
)

func TestQuantilePanicsOutsideUnitInterval(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewQuantile(%g) did not panic", p)
				}
			}()
			NewQuantile(p)
		}()
	}
}

func TestQuantileEmptyAndSmall(t *testing.T) {
	q := NewQuantile(0.5)
	if !math.IsNaN(q.Value()) {
		t.Errorf("empty Value = %g, want NaN", q.Value())
	}
	q.Add(7)
	if got := q.Value(); got != 7 {
		t.Errorf("single Value = %g, want 7", got)
	}
	q.Add(1)
	// Exact interpolated median of {1, 7}.
	if got := q.Value(); got != 4 {
		t.Errorf("two-sample median = %g, want 4", got)
	}
	q.Add(3)
	if got := q.Value(); got != 3 {
		t.Errorf("three-sample median = %g, want 3", got)
	}
	if q.N() != 3 || q.P() != 0.5 {
		t.Errorf("N=%d P=%g, want 3 0.5", q.N(), q.P())
	}
}

// exactOf computes the reference empirical quantile of a sample.
func exactOf(xs []float64, p float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return exactQuantile(s, p)
}

func TestQuantileAgainstExact(t *testing.T) {
	// Draw deterministic samples from several distributions and check the
	// P² estimate lands near the exact empirical quantile. Tolerances are
	// relative to the sample spread — P² is an approximation, but on these
	// sizes it is a close one.
	cases := []struct {
		name string
		draw func(u float64) float64
	}{
		{"uniform", func(u float64) float64 { return u }},
		{"exponential", func(u float64) float64 { return -math.Log(1 - u) }},
		{"bimodal", func(u float64) float64 {
			if u < 0.5 {
				return u
			}
			return 10 + u
		}},
	}
	for _, tc := range cases {
		for _, p := range []float64{0.5, 0.95, 0.99} {
			if tc.name == "bimodal" && p == 0.5 {
				// The bimodal median sits inside the density gap, where
				// every value between the modes splits the mass 50/50 —
				// there is no well-defined target for an interpolating
				// estimator to converge to.
				continue
			}
			s := rng.NewStream(42, uint64(p*100))
			q := NewQuantile(p)
			xs := make([]float64, 0, 5000)
			for i := 0; i < 5000; i++ {
				x := tc.draw(s.Float64())
				xs = append(xs, x)
				q.Add(x)
			}
			exact := exactOf(xs, p)
			spread := exactOf(xs, 0.999) - exactOf(xs, 0.001)
			if diff := math.Abs(q.Value() - exact); diff > 0.05*spread {
				t.Errorf("%s p=%g: estimate %.4f vs exact %.4f (diff %.4f, spread %.4f)",
					tc.name, p, q.Value(), exact, diff, spread)
			}
		}
	}
}

func TestQuantileMonotoneWithinMarkers(t *testing.T) {
	// The estimate must always stay inside the observed range.
	s := rng.NewStream(7)
	q := NewQuantile(0.95)
	min, max := math.Inf(1), math.Inf(-1)
	for i := 0; i < 2000; i++ {
		x := s.Float64() * 100
		min = math.Min(min, x)
		max = math.Max(max, x)
		q.Add(x)
		if v := q.Value(); v < min || v > max {
			t.Fatalf("estimate %g escaped observed range [%g, %g] at n=%d", v, min, max, i+1)
		}
	}
}

func TestQuantileDeterministic(t *testing.T) {
	run := func() float64 {
		s := rng.NewStream(3)
		q := NewQuantile(0.99)
		for i := 0; i < 1000; i++ {
			q.Add(s.Float64())
		}
		return q.Value()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same sequence produced different estimates: %g vs %g", a, b)
	}
}
