package stats

import (
	"math"
	"sort"
)

// Quantile is a streaming quantile estimator using the P² algorithm (Jain &
// Chlamtac, CACM 1985): five markers track the target quantile and its
// neighborhood in O(1) memory and O(1) time per observation, with the marker
// heights adjusted by piecewise-parabolic interpolation. Below five
// observations the estimate is exact (computed from the stored samples).
//
// The estimator is deterministic — the same observation sequence always
// yields the same estimate — so per-flow delay percentiles stay bit-identical
// across harness worker counts. It is the repository's tool for delay
// p95/p99 accounting, where storing every packet latency would cost O(n)
// per flow.
type Quantile struct {
	p float64 // target quantile in (0, 1)

	n int        // observations seen
	q [5]float64 // marker heights
	m [5]float64 // marker positions (1-based, as in the paper)
	d [5]float64 // desired marker positions
}

// NewQuantile returns a streaming estimator of the p-quantile, p in (0, 1).
// It panics outside that range: a caller asking for the 0- or 1-quantile
// wants Min/Max from an Accumulator, not an interpolating estimator.
func NewQuantile(p float64) *Quantile {
	if !(p > 0 && p < 1) {
		panic("stats: quantile target must be in (0, 1)")
	}
	return &Quantile{p: p}
}

// P returns the target quantile.
func (q *Quantile) P() float64 { return q.p }

// N returns the number of observations.
func (q *Quantile) N() int { return q.n }

// Add records one observation.
func (q *Quantile) Add(x float64) {
	if q.n < 5 {
		q.q[q.n] = x
		q.n++
		if q.n == 5 {
			sort.Float64s(q.q[:])
			for i := range q.m {
				q.m[i] = float64(i + 1)
			}
			q.d[0] = 1
			q.d[1] = 1 + 2*q.p
			q.d[2] = 1 + 4*q.p
			q.d[3] = 3 + 2*q.p
			q.d[4] = 5
		}
		return
	}

	// Locate the cell containing x and update the extreme markers.
	var k int
	switch {
	case x < q.q[0]:
		q.q[0] = x
		k = 0
	case x >= q.q[4]:
		q.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < q.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.m[i]++
	}
	q.n++

	// Desired positions advance by their quantile-proportional increments.
	q.d[1] += q.p / 2
	q.d[2] += q.p
	q.d[3] += (1 + q.p) / 2
	q.d[4]++

	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		delta := q.d[i] - q.m[i]
		if (delta >= 1 && q.m[i+1]-q.m[i] > 1) || (delta <= -1 && q.m[i-1]-q.m[i] < -1) {
			sign := 1.0
			if delta < 0 {
				sign = -1
			}
			h := q.parabolic(i, sign)
			if q.q[i-1] < h && h < q.q[i+1] {
				q.q[i] = h
			} else {
				q.q[i] = q.linear(i, sign)
			}
			q.m[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for moving
// marker i by sign (±1).
func (q *Quantile) parabolic(i int, sign float64) float64 {
	return q.q[i] + sign/(q.m[i+1]-q.m[i-1])*
		((q.m[i]-q.m[i-1]+sign)*(q.q[i+1]-q.q[i])/(q.m[i+1]-q.m[i])+
			(q.m[i+1]-q.m[i]-sign)*(q.q[i]-q.q[i-1])/(q.m[i]-q.m[i-1]))
}

// linear is the fallback height prediction when the parabola would leave
// the neighboring markers' bracket.
func (q *Quantile) linear(i int, sign float64) float64 {
	j := i + int(sign)
	return q.q[i] + sign*(q.q[j]-q.q[i])/(q.m[j]-q.m[i])
}

// Value returns the current quantile estimate: exact for fewer than five
// observations (linear-interpolated empirical quantile), the P² middle
// marker afterwards. NaN when empty.
func (q *Quantile) Value() float64 {
	switch {
	case q.n == 0:
		return math.NaN()
	case q.n < 5:
		s := make([]float64, q.n)
		copy(s, q.q[:q.n])
		sort.Float64s(s)
		return exactQuantile(s, q.p)
	default:
		return q.q[2]
	}
}

// exactQuantile linearly interpolates the p-quantile of sorted samples.
func exactQuantile(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
