// Package stats provides the small statistical toolkit used by the
// evaluation harness: streaming mean/variance accumulators with normal
// confidence intervals, as the paper averages every data point over 100
// independent runs.
package stats

import (
	"fmt"
	"math"
)

// Accumulator aggregates observations in one pass (Welford's algorithm).
// The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int { return a.n }

// Mean returns the sample mean (NaN when empty).
func (a *Accumulator) Mean() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.mean
}

// Variance returns the unbiased sample variance (NaN for n < 2).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return math.NaN()
	}
	return a.m2 / float64(a.n-1)
}

// Std returns the sample standard deviation (NaN for n < 2).
func (a *Accumulator) Std() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest observation (NaN when empty).
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.min
}

// Max returns the largest observation (NaN when empty).
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.max
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean (0 for n < 2).
func (a *Accumulator) CI95() float64 {
	if a.n < 2 {
		return 0
	}
	return 1.96 * a.Std() / math.Sqrt(float64(a.n))
}

// String implements fmt.Stringer.
func (a *Accumulator) String() string {
	return fmt.Sprintf("mean=%.4g ±%.2g (n=%d)", a.Mean(), a.CI95(), a.n)
}

// Merge folds the observations of b into a as if they had been Added
// directly (Chan et al. parallel combination).
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	delta := b.mean - a.mean
	total := float64(a.n + b.n)
	a.m2 += b.m2 + delta*delta*float64(a.n)*float64(b.n)/total
	a.mean += delta * float64(b.n) / total
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.n += b.n
}
