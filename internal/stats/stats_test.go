package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if !math.IsNaN(a.Mean()) || !math.IsNaN(a.Min()) || !math.IsNaN(a.Max()) {
		t.Error("empty accumulator must return NaN")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("N = %d", a.N())
	}
	if a.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", a.Mean())
	}
	// Sample variance of this classic dataset is 32/7.
	if math.Abs(a.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", a.Variance(), 32.0/7.0)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", a.Min(), a.Max())
	}
	if a.CI95() <= 0 {
		t.Error("CI95 must be positive for n >= 2")
	}
	if a.String() == "" {
		t.Error("empty String()")
	}
}

func TestAccumulatorSingle(t *testing.T) {
	var a Accumulator
	a.Add(3)
	if a.Mean() != 3 || a.Min() != 3 || a.Max() != 3 {
		t.Error("single observation stats wrong")
	}
	if !math.IsNaN(a.Variance()) {
		t.Error("variance of one observation must be NaN")
	}
	if a.CI95() != 0 {
		t.Error("CI95 of one observation must be 0")
	}
}

// Property: Merge(a,b) equals adding all observations to one accumulator.
func TestMergeEquivalence(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		for i, x := range xs {
			// Clamp to a sane magnitude: astronomically large inputs
			// overflow any sum-of-squares accumulator and are not
			// representative of measured set sizes or overheads.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				xs[i] = float64(i)
			}
		}
		if len(xs) == 0 {
			return true
		}
		k := int(split) % len(xs)
		var left, right, all Accumulator
		for _, x := range xs[:k] {
			left.Add(x)
			all.Add(x)
		}
		for _, x := range xs[k:] {
			right.Add(x)
			all.Add(x)
		}
		left.Merge(&right)
		if left.N() != all.N() {
			return false
		}
		if math.Abs(left.Mean()-all.Mean()) > 1e-9*(1+math.Abs(all.Mean())) {
			return false
		}
		if all.N() >= 2 && math.Abs(left.Variance()-all.Variance()) > 1e-6*(1+all.Variance()) {
			return false
		}
		return left.Min() == all.Min() && left.Max() == all.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMergeEmptySides(t *testing.T) {
	var a, b Accumulator
	a.Add(1)
	a.Add(3)
	before := a.Mean()
	a.Merge(&b) // empty b: no-op
	if a.Mean() != before || a.N() != 2 {
		t.Error("merging empty changed accumulator")
	}
	b.Merge(&a) // empty receiver adopts a
	if b.N() != 2 || b.Mean() != before {
		t.Error("empty receiver did not adopt source")
	}
}

func TestCIShrinksWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var small, large Accumulator
	for i := 0; i < 30; i++ {
		small.Add(rng.NormFloat64())
	}
	for i := 0; i < 3000; i++ {
		large.Add(rng.NormFloat64())
	}
	if large.CI95() >= small.CI95() {
		t.Errorf("CI did not shrink: %v vs %v", large.CI95(), small.CI95())
	}
}
