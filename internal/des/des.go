// Package des is the discrete-event scheduler at the bottom of the
// simulation stack: one deterministic priority queue in virtual time
// carrying everything the simulator does — HELLO/TC emissions, medium frame
// deliveries, traffic packet departures, phase actions and samples.
//
// Determinism is the design constraint. Events are totally ordered by
// (time, priority, sequence): equal-time events run by ascending priority
// band, and within a band in scheduling (FIFO) order. The ordering never
// consults memory addresses, map iteration, or wall-clock state, so a run
// is a pure function of its inputs and stays bit-identical regardless of
// host, GOMAXPROCS, or how many worker goroutines drive *other* queues in
// parallel (each Queue itself is single-threaded, the unit of parallelism
// is one run).
//
// The hot path is allocation-free. Heap entries are stored by value (no
// per-event box), and the Event interface admits pooled or persistent
// implementations: a periodic emitter is one long-lived Event that
// reschedules itself, a frame delivery is a pooled object recycled after
// Fire. The Func adapter keeps the closure API available where rates are
// low (func values are pointer-shaped, so the interface conversion itself
// does not allocate).
package des

import "time"

// Event is one scheduled occurrence. Fire runs it at its scheduled time;
// now is the queue's current virtual time (equal to the time the event was
// scheduled for). An Event may reschedule itself or schedule further events
// from inside Fire.
type Event interface {
	Fire(now time.Duration)
}

// Func adapts a plain closure to Event. func values are pointer-shaped, so
// converting a Func to Event allocates nothing beyond the closure itself.
type Func func()

// Fire implements Event.
func (f Func) Fire(time.Duration) { f() }

// Priority bands for equal-time events. Lower runs first. Most traffic uses
// Normal — the band only matters when distinct subsystems collide on the
// same instant and one must observe the other's effects.
const (
	// PrioNormal is the default band: protocol emissions, deliveries,
	// expiries, packet departures.
	PrioNormal int32 = 0
	// PrioSample is the measurement band: samples scheduled at time t
	// observe every normal event of time t.
	PrioSample int32 = 1 << 10
)

// item is one heap entry, stored by value: scheduling an event moves no
// memory to the heap beyond these five words.
// Heap entries are pointer-free: the Event lives in a stable slot array and
// the heap holds only its ordering key plus the slot index, so the many
// entry moves of a sift are plain memmoves with no GC write barriers — the
// barriers were a quarter of the per-event cost when the interface value
// sat in the heap itself.
type item struct {
	at   time.Duration
	seq  uint64
	prio int32
	slot int32
}

// before is the total event order: (time, priority, sequence).
func (a item) before(b item) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

// Queue is a single-threaded discrete-event scheduler. The zero value is
// ready to use.
type Queue struct {
	now   time.Duration
	seq   uint64
	heap  []item
	slots []Event // scheduled events, indexed by item.slot
	free  []int32 // recycled slot indices
	// fifo is the fixed-delay fast lane: events whose scheduled times
	// arrive in non-decreasing order (every hop of a constant-latency
	// medium) sit in a plain queue and merge with the heap at pop time
	// under the same total order — O(1) instead of a sift on both ends.
	fifo     []item
	fifoHead int
	// Executed counts processed events.
	Executed uint64
	// FifoScheduled counts events that entered through the fixed-delay
	// lane (the rest of Scheduled() went through the heap).
	FifoScheduled uint64
	// HeapHighWater and FifoHighWater are occupancy peaks: the deepest the
	// heap and the fixed-delay lane have been. They are plain compares on
	// the scheduling path — always on, observability reads them lazily.
	HeapHighWater int
	FifoHighWater int
}

// Scheduled returns the total number of events ever booked (heap and
// fixed-delay lane; the sequence counter is bumped once per event).
func (q *Queue) Scheduled() uint64 { return q.seq }

// Now returns the current virtual time.
func (q *Queue) Now() time.Duration { return q.now }

// Pending returns the number of queued events.
func (q *Queue) Pending() int { return len(q.heap) + len(q.fifo) - q.fifoHead }

// Schedule books ev at absolute virtual time t (clamped to now for past
// times) in the given priority band.
func (q *Queue) Schedule(t time.Duration, prio int32, ev Event) {
	if t < q.now {
		t = q.now
	}
	q.seq++
	q.push(item{at: t, prio: prio, seq: q.seq, slot: q.alloc(ev)})
}

// AfterFixed schedules ev after a delay in the normal band through the
// fixed-delay fast lane. It is meant for steady streams whose delays are
// constant (so scheduled times never decrease); a call that would break
// the lane's time order falls back to the heap, which preserves the exact
// global pop order either way — the lane is a performance hint, never a
// semantic one.
func (q *Queue) AfterFixed(d time.Duration, ev Event) {
	t := q.now + d
	if n := len(q.fifo); n > q.fifoHead && q.fifo[n-1].at > t {
		q.Schedule(t, PrioNormal, ev)
		return
	}
	q.seq++
	q.FifoScheduled++
	if q.fifoHead > 0 && q.fifoHead >= len(q.fifo)/2 {
		q.fifo = q.fifo[:copy(q.fifo, q.fifo[q.fifoHead:])]
		q.fifoHead = 0
	}
	q.fifo = append(q.fifo, item{at: t, prio: PrioNormal, seq: q.seq, slot: q.alloc(ev)})
	if depth := len(q.fifo) - q.fifoHead; depth > q.FifoHighWater {
		q.FifoHighWater = depth
	}
}

// alloc stores ev in a stable slot and returns its index.
func (q *Queue) alloc(ev Event) int32 {
	if n := len(q.free); n > 0 {
		slot := q.free[n-1]
		q.free = q.free[:n-1]
		q.slots[slot] = ev
		return slot
	}
	slot := int32(len(q.slots))
	q.slots = append(q.slots, ev)
	return slot
}

// At schedules ev at absolute time t in the normal band.
func (q *Queue) At(t time.Duration, ev Event) { q.Schedule(t, PrioNormal, ev) }

// After schedules ev after a delay in the normal band.
func (q *Queue) After(d time.Duration, ev Event) { q.Schedule(q.now+d, PrioNormal, ev) }

// Run processes events in order until the queue empties or the next event
// lies beyond until, then advances virtual time to until. It returns the
// number of events processed by this call.
func (q *Queue) Run(until time.Duration) uint64 {
	var processed uint64
	for {
		// Merge the heap and the fixed-delay lane under the one total
		// order: both are min-ordered, so the overall minimum is
		// whichever head sorts first.
		var top item
		fromFifo := false
		if len(q.heap) > 0 {
			top = q.heap[0]
			if q.fifoHead < len(q.fifo) && q.fifo[q.fifoHead].before(top) {
				top = q.fifo[q.fifoHead]
				fromFifo = true
			}
		} else if q.fifoHead < len(q.fifo) {
			top = q.fifo[q.fifoHead]
			fromFifo = true
		} else {
			break
		}
		if top.at > until {
			break
		}
		ev := q.slots[top.slot]
		q.slots[top.slot] = nil
		q.free = append(q.free, top.slot)
		if fromFifo {
			q.fifoHead++
		} else {
			q.pop()
		}
		q.now = top.at
		ev.Fire(top.at)
		processed++
		q.Executed++
	}
	if q.now < until {
		q.now = until
	}
	return processed
}

// The heap is 4-ary: half the depth of a binary heap, so half the moves on
// push and a cache-friendlier sift on pop — the heap operation is the
// per-event floor of the whole simulator. The shape is invisible to
// ordering: before() is a total order (the sequence number is unique), so
// any min-heap pops the identical event sequence.

// push sifts a new item up the heap.
func (q *Queue) push(it item) {
	h := append(q.heap, it)
	if len(h) > q.HeapHighWater {
		q.HeapHighWater = len(h)
	}
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !it.before(h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = it
	q.heap = h
}

// pop removes the minimum item (the caller has already read q.heap[0]).
func (q *Queue) pop() {
	h := q.heap
	last := len(h) - 1
	it := h[last]
	h = h[:last]
	q.heap = h
	if last == 0 {
		return
	}
	i := 0
	for {
		first := 4*i + 1
		if first >= last {
			break
		}
		min := first
		end := first + 4
		if end > last {
			end = last
		}
		for c := first + 1; c < end; c++ {
			if h[c].before(h[min]) {
				min = c
			}
		}
		if !h[min].before(it) {
			break
		}
		h[i] = h[min]
		i = min
	}
	h[i] = it
}
