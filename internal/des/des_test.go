package des

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// record appends its tag to a shared trace when fired.
type record struct {
	tag   int
	trace *[]int
}

func (r *record) Fire(time.Duration) { *r.trace = append(*r.trace, r.tag) }

// TestTieBreakOrdering pins the total event order: time first, then
// priority band, then scheduling order — never insertion position or
// address.
func TestTieBreakOrdering(t *testing.T) {
	var q Queue
	var trace []int
	add := func(at time.Duration, prio int32, tag int) {
		q.Schedule(at, prio, &record{tag: tag, trace: &trace})
	}
	// Scheduled deliberately out of order.
	add(2*time.Second, PrioNormal, 4)
	add(time.Second, PrioSample, 3) // same time as 1,2 but sample band
	add(time.Second, PrioNormal, 1) // FIFO before the next one
	add(time.Second, PrioNormal, 2)
	add(0, PrioNormal, 0)
	add(2*time.Second, PrioNormal, 5) // FIFO after tag 4

	q.Run(10 * time.Second)
	want := []int{0, 1, 2, 3, 4, 5}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

// TestPastClamp schedules an event in the past and expects it to run "now".
func TestPastClamp(t *testing.T) {
	var q Queue
	q.Run(5 * time.Second)
	var at time.Duration = -1
	q.Schedule(time.Second, PrioNormal, Func(func() { at = q.Now() }))
	q.Run(10 * time.Second)
	if at != 5*time.Second {
		t.Fatalf("past event ran at %v, want clamped to 5s", at)
	}
}

// TestHeapAgainstSort drives the queue with a large random schedule and
// checks the pop order against a stable reference sort of (time, prio, seq).
func TestHeapAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type key struct {
		at   time.Duration
		prio int32
		seq  int
	}
	var q Queue
	var keys []key
	var got []key
	for i := 0; i < 5000; i++ {
		k := key{
			at:   time.Duration(rng.Intn(50)) * time.Millisecond,
			prio: int32(rng.Intn(3)),
			seq:  i,
		}
		keys = append(keys, k)
		kk := k
		q.Schedule(k.at, k.prio, Func(func() { got = append(got, kk) }))
	}
	sort.SliceStable(keys, func(i, j int) bool {
		if keys[i].at != keys[j].at {
			return keys[i].at < keys[j].at
		}
		return keys[i].prio < keys[j].prio
	})
	q.Run(time.Second)
	if len(got) != len(keys) {
		t.Fatalf("executed %d events, want %d", len(got), len(keys))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], keys[i])
		}
	}
	if q.Executed != uint64(len(keys)) {
		t.Fatalf("Executed = %d, want %d", q.Executed, len(keys))
	}
}

// selfScheduler re-books itself until a deadline — the persistent-event
// shape every periodic emitter uses.
type selfScheduler struct {
	q     *Queue
	every time.Duration
	until time.Duration
	fires int
}

func (s *selfScheduler) Fire(now time.Duration) {
	s.fires++
	if now+s.every <= s.until {
		s.q.After(s.every, s)
	}
}

// TestSteadyStateAllocFree checks that a warm queue driving a persistent
// event allocates nothing per event — the property the pooled hot path is
// built on.
func TestSteadyStateAllocFree(t *testing.T) {
	var q Queue
	ev := &selfScheduler{q: &q, every: time.Millisecond, until: 1<<62 - 1}
	q.After(0, ev)
	q.Run(10 * time.Millisecond) // warm the heap storage
	end := q.Now()
	per := testing.AllocsPerRun(100, func() {
		end += 10 * time.Millisecond
		q.Run(end)
	})
	if per > 0 {
		t.Fatalf("steady-state Run allocates %.1f objects per call, want 0", per)
	}
}

// BenchmarkScheduler measures raw scheduler throughput: one persistent
// self-rescheduling event processed per iteration, the floor cost every
// simulated packet or frame pays.
func BenchmarkScheduler(b *testing.B) {
	var q Queue
	ev := &selfScheduler{q: &q, every: time.Microsecond, until: 1<<62 - 1}
	q.After(0, ev)
	b.ReportAllocs()
	b.ResetTimer()
	end := q.Now()
	for i := 0; i < b.N; i++ {
		end += time.Microsecond
		q.Run(end)
	}
	b.ReportMetric(float64(q.Executed)/b.Elapsed().Seconds(), "events/s")
}

// fixedSelfScheduler is selfScheduler on the fixed-delay lane.
type fixedSelfScheduler struct {
	q     *Queue
	every time.Duration
	until time.Duration
	fires int
}

func (s *fixedSelfScheduler) Fire(now time.Duration) {
	s.fires++
	if now+s.every <= s.until {
		s.q.AfterFixed(s.every, s)
	}
}

// BenchmarkSchedulerFixedLane is BenchmarkScheduler through AfterFixed: a
// constant-delay stream rides the FIFO lane instead of the heap, the path
// every hop of a constant-latency medium takes.
func BenchmarkSchedulerFixedLane(b *testing.B) {
	var q Queue
	ev := &fixedSelfScheduler{q: &q, every: time.Microsecond, until: 1<<62 - 1}
	q.After(0, ev)
	b.ReportAllocs()
	b.ResetTimer()
	end := q.Now()
	for i := 0; i < b.N; i++ {
		end += time.Microsecond
		q.Run(end)
	}
	b.ReportMetric(float64(q.Executed)/b.Elapsed().Seconds(), "events/s")
}

// TestFixedLaneAgainstSort mixes heap scheduling with the fixed-delay lane
// and checks the merged pop order is still the one total (time, priority,
// sequence) order — including AfterFixed calls whose times regress, which
// must fall back to the heap rather than corrupt the lane's time order.
func TestFixedLaneAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type key struct {
		at   time.Duration
		prio int32
		seq  int
	}
	var q Queue
	var keys []key
	var got []key
	for i := 0; i < 5000; i++ {
		at := time.Duration(rng.Intn(50)) * time.Millisecond
		k := key{at: at, prio: PrioNormal, seq: i}
		if rng.Intn(2) == 0 {
			k.prio = int32(rng.Intn(3))
			kk := k
			q.Schedule(at, k.prio, Func(func() { got = append(got, kk) }))
		} else {
			kk := k
			// q.now is 0 outside Run, so the delay is the absolute time;
			// the random sequence regresses constantly, exercising the
			// heap fallback alongside the lane.
			q.AfterFixed(at, Func(func() { got = append(got, kk) }))
		}
		keys = append(keys, k)
	}
	if q.Pending() != len(keys) {
		t.Fatalf("Pending = %d, want %d", q.Pending(), len(keys))
	}
	sort.SliceStable(keys, func(i, j int) bool {
		if keys[i].at != keys[j].at {
			return keys[i].at < keys[j].at
		}
		return keys[i].prio < keys[j].prio
	})
	q.Run(time.Second)
	if len(got) != len(keys) {
		t.Fatalf("executed %d events, want %d", len(got), len(keys))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], keys[i])
		}
	}
}

// TestFixedLaneSteadyStream drives a self-rescheduling event through the
// fixed lane only — the constant-delay hop stream the lane exists for —
// and checks order against an equal-rate heap stream.
func TestFixedLaneSteadyStream(t *testing.T) {
	var q Queue
	var trace []int
	var lane, heap func()
	lane = func() {
		trace = append(trace, 0)
		if q.Now() < 40*time.Millisecond {
			q.AfterFixed(time.Millisecond, Func(lane))
		}
	}
	heap = func() {
		trace = append(trace, 1)
		if q.Now() < 40*time.Millisecond {
			q.After(time.Millisecond, Func(heap))
		}
	}
	// The lane event is scheduled first at every instant, so it must run
	// first at every instant.
	q.AfterFixed(time.Millisecond, Func(lane))
	q.After(time.Millisecond, Func(heap))
	q.Run(time.Second)
	if len(trace) == 0 || len(trace)%2 != 0 {
		t.Fatalf("trace length %d, want even and positive", len(trace))
	}
	for i := 0; i < len(trace); i += 2 {
		if trace[i] != 0 || trace[i+1] != 1 {
			t.Fatalf("instant %d ran as %v, want lane then heap", i/2, trace[i:i+2])
		}
	}
}

// The always-on accounting fields must track scheduling activity: total
// bookings, the fixed-lane share, and the occupancy high-water marks.
func TestQueueAccountingCounters(t *testing.T) {
	var q Queue
	noop := Func(func() {})
	for i := 0; i < 5; i++ {
		q.After(time.Duration(i)*time.Millisecond, noop)
	}
	for i := 0; i < 3; i++ {
		q.AfterFixed(10*time.Millisecond, noop)
	}
	if got := q.Scheduled(); got != 8 {
		t.Errorf("Scheduled() = %d, want 8", got)
	}
	if q.FifoScheduled != 3 {
		t.Errorf("FifoScheduled = %d, want 3", q.FifoScheduled)
	}
	if q.HeapHighWater != 5 {
		t.Errorf("HeapHighWater = %d, want 5", q.HeapHighWater)
	}
	if q.FifoHighWater != 3 {
		t.Errorf("FifoHighWater = %d, want 3", q.FifoHighWater)
	}
	q.Run(time.Second)
	if q.Executed != 8 {
		t.Errorf("Executed = %d, want 8", q.Executed)
	}
	// Draining moves no high-water mark.
	if q.HeapHighWater != 5 || q.FifoHighWater != 3 {
		t.Errorf("high-water moved on drain: heap %d fifo %d", q.HeapHighWater, q.FifoHighWater)
	}
}
