package sim

import (
	"time"

	"qolsr/internal/graph"
)

// DataStats accounts data-plane traffic injected with SendData.
type DataStats struct {
	Sent      uint64
	Delivered uint64
	// NoRoute counts packets dropped because some hop had no routing
	// entry for the destination.
	NoRoute uint64
	// Lost counts packets the medium dropped in flight (lossy radio); the
	// ideal medium never loses frames.
	Lost uint64
	// Expired counts packets dropped by TTL (forwarding loop or a path
	// longer than the TTL).
	Expired uint64
	// HopsTotal sums hop counts of delivered packets.
	HopsTotal uint64
	// LatencyTotal sums virtual delivery latencies.
	LatencyTotal time.Duration
}

// DefaultDataTTL bounds data-packet forwarding.
const DefaultDataTTL = 64

// DataPacketBytes is the nominal data-plane frame size the medium
// serializes and draws loss for.
const DataPacketBytes = 512

// SendData injects one data packet of the nominal probe size. See
// SendDataSized.
func (nw *Network) SendData(src, dst int32, done func(delivered bool, hops int, latency time.Duration)) {
	nw.SendDataSized(src, dst, DataPacketBytes, done)
}

// SendDataSized injects one data packet of size bytes at src addressed to
// dst (graph indices) at the current virtual time. Each hop consults its
// *own* current routing table when the packet arrives — exactly how an OLSR
// data plane behaves, including transient loops while tables disagree (cut
// off by TTL). The size feeds the medium's per-hop planning, so on a queued
// radio larger packets occupy the sender's transmitter for longer and
// sustained flows contend for it. done, when non-nil, is invoked at delivery
// or drop time.
func (nw *Network) SendDataSized(src, dst int32, size int, done func(delivered bool, hops int, latency time.Duration)) {
	nw.Data.Sent++
	start := nw.Engine.Now()
	var hop func(at int32, ttl int)
	hop = func(at int32, ttl int) {
		if at == dst {
			nw.Data.Delivered++
			hops := DefaultDataTTL - ttl
			nw.Data.HopsTotal += uint64(hops)
			nw.Data.LatencyTotal += nw.Engine.Now() - start
			if done != nil {
				done(true, hops, nw.Engine.Now()-start)
			}
			return
		}
		if ttl <= 0 {
			nw.Data.Expired++
			if done != nil {
				done(false, 0, 0)
			}
			return
		}
		routes, err := nw.Nodes[at].Routes(nw.Engine.Now())
		if err != nil {
			nw.Data.NoRoute++
			if done != nil {
				done(false, 0, 0)
			}
			return
		}
		route, ok := routes.Lookup(int64(nw.Phys.ID(dst)))
		if !ok {
			nw.Data.NoRoute++
			if done != nil {
				done(false, 0, 0)
			}
			return
		}
		next, ok := nw.indexOf[route.NextHop]
		if !ok {
			// A next hop outside the network's index (stale state
			// naming a node that never existed here) is a routing
			// failure, not an accidental alias of index 0.
			nw.Data.NoRoute++
			if done != nil {
				done(false, 0, 0)
			}
			return
		}
		// The unicast hop uses the physical link; if it is gone (united
		// with mobility/churn) the packet is lost at this hop unless the
		// next table refresh learns better.
		if _, exists := nw.Phys.EdgeBetween(at, next); !exists || !nw.LinkUp(at, next) {
			nw.Data.NoRoute++
			if done != nil {
				done(false, 0, 0)
			}
			return
		}
		// The medium plans the unicast like any other frame: a lossy
		// radio may drop it in flight or delay it behind the sender's
		// transmit queue.
		one := [1]int32{next}
		plan := nw.medium.PlanFrame(at, one[:], size, nw.Engine.Now())
		if len(plan) == 0 {
			nw.Data.Lost++
			if done != nil {
				done(false, 0, 0)
			}
			return
		}
		nw.Engine.After(plan[0].Delay, func() { hop(next, ttl-1) })
	}
	hop(src, DefaultDataTTL)
}

// DeliverySweep sends one packet from every node to dst at the current
// virtual time and runs the engine until all complete, returning the
// delivered fraction over physically-connected sources.
func (nw *Network) DeliverySweep(dst int32) float64 {
	reach := graph.Reachable(nw.Phys, dst)
	var delivered, total int
	pending := 0
	for s := int32(0); int(s) < nw.Phys.N(); s++ {
		if s == dst || !reach[s] {
			continue
		}
		total++
		pending++
		nw.SendData(s, dst, func(ok bool, _ int, _ time.Duration) {
			if ok {
				delivered++
			}
			pending--
		})
	}
	// Packets traverse at most TTL hops, each bounded by the medium's
	// per-hop latency bound.
	nw.Run(nw.Engine.Now() + time.Duration(DefaultDataTTL+1)*nw.HopDelayBound())
	if total == 0 {
		return 1
	}
	return float64(delivered) / float64(total)
}
