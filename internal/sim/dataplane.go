package sim

import (
	"time"

	"qolsr/internal/graph"
	"qolsr/internal/obs"
	"qolsr/internal/olsr"
)

// DataStats accounts data-plane traffic injected with SendData.
type DataStats struct {
	Sent      uint64
	Delivered uint64
	// NoRoute counts packets dropped because some hop had no routing
	// entry for the destination.
	NoRoute uint64
	// Lost counts packets the medium dropped in flight (lossy radio); the
	// ideal medium never loses frames.
	Lost uint64
	// Expired counts packets dropped by TTL (forwarding loop or a path
	// longer than the TTL).
	Expired uint64
	// HopsTotal sums hop counts of delivered packets.
	HopsTotal uint64
	// LatencyTotal sums virtual delivery latencies.
	LatencyTotal time.Duration
}

// DefaultDataTTL bounds data-packet forwarding.
const DefaultDataTTL = 64

// DataPacketBytes is the nominal data-plane frame size the medium
// serializes and draws loss for.
const DataPacketBytes = 512

// DataSink receives packet completions on the allocation-free data path:
// one interface dispatch per packet instead of one closure per packet. The
// cookie is whatever the sender passed to SendDataTo — traffic generators
// encode the flow identity and packet size in it.
type DataSink interface {
	PacketDone(cookie uint64, delivered bool, hops int, latency time.Duration)
}

// dataPacket is one in-flight data packet: a pooled event that re-fires at
// each hop arrival.
type dataPacket struct {
	nw     *Network
	at     int32
	dst    int32
	ttl    int32
	size   int32
	start  time.Duration
	sink   DataSink
	cookie uint64
	done   func(delivered bool, hops int, latency time.Duration)
	// pt is the packet's path trace when it was sampled (nil for the
	// overwhelming majority). Pooled packets must clear it on reuse.
	pt *obs.PacketTrace
}

// Fire implements des.Event: the packet arrived at its next hop.
func (p *dataPacket) Fire(time.Duration) { p.nw.stepData(p) }

// SendData injects one data packet of the nominal probe size. See
// SendDataSized.
func (nw *Network) SendData(src, dst int32, done func(delivered bool, hops int, latency time.Duration)) {
	nw.SendDataSized(src, dst, DataPacketBytes, done)
}

// SendDataSized injects one data packet of size bytes at src addressed to
// dst (graph indices) at the current virtual time. Each hop consults its
// *own* current routing table when the packet arrives — exactly how an OLSR
// data plane behaves, including transient loops while tables disagree (cut
// off by TTL). The size feeds the medium's per-hop planning, so on a queued
// radio larger packets occupy the sender's transmitter for longer and
// sustained flows contend for it. done, when non-nil, is invoked at delivery
// or drop time. (The closure is the convenient probe API; sustained traffic
// uses SendDataTo, which completes through a shared sink with no per-packet
// allocation.)
func (nw *Network) SendDataSized(src, dst int32, size int, done func(delivered bool, hops int, latency time.Duration)) {
	p := nw.newPacket(src, dst, size)
	p.done = done
	nw.stepData(p)
}

// SendDataTo injects one data packet like SendDataSized, but completes it
// through sink.PacketDone(cookie, ...) — the allocation-free path for
// sustained flows.
func (nw *Network) SendDataTo(src, dst int32, size int, sink DataSink, cookie uint64) {
	nw.SendDataTraced(src, dst, size, sink, cookie, nil)
}

// SendDataTraced is SendDataTo with an optional path trace attached: the
// traffic engine starts a trace for sampled packets and the data plane
// records every hop and the final outcome on it. A nil trace is the common
// case and adds one pointer store.
func (nw *Network) SendDataTraced(src, dst int32, size int, sink DataSink, cookie uint64, pt *obs.PacketTrace) {
	p := nw.newPacket(src, dst, size)
	p.sink = sink
	p.cookie = cookie
	if pt != nil {
		p.pt = pt
		pt.Hop(src, nw.Engine.Now(), 0)
	}
	nw.stepData(p)
}

func (nw *Network) newPacket(src, dst int32, size int) *dataPacket {
	nw.Data.Sent++
	var p *dataPacket
	if n := len(nw.pktPool); n > 0 {
		p = nw.pktPool[n-1]
		nw.pktPool = nw.pktPool[:n-1]
	} else {
		p = &dataPacket{nw: nw}
	}
	p.at = src
	p.dst = dst
	p.ttl = DefaultDataTTL
	p.size = int32(size)
	p.start = nw.Engine.Now()
	p.sink = nil
	p.cookie = 0
	p.done = nil
	p.pt = nil
	return p
}

// finishData completes a packet (delivery or drop) and recycles it.
func (nw *Network) finishData(p *dataPacket, delivered bool, hops int, latency time.Duration) {
	sink, cookie, done := p.sink, p.cookie, p.done
	p.sink, p.done, p.pt = nil, nil, nil
	nw.pktPool = append(nw.pktPool, p)
	switch {
	case sink != nil:
		sink.PacketDone(cookie, delivered, hops, latency)
	case done != nil:
		done(delivered, hops, latency)
	}
}

// stepData advances a packet one hop: deliver, drop, or forward to the next
// hop's routing decision. Zero-delay hops (an ideal medium with zero
// propagation delay) forward synchronously in the loop instead of
// round-tripping through the event queue — virtual time cannot advance
// across them, so only the intra-timestamp interleaving with other
// same-instant events changes, and the data plane mutates no protocol
// state such events could observe.
func (nw *Network) stepData(p *dataPacket) {
again:
	if p.at == p.dst {
		nw.Data.Delivered++
		hops := int(DefaultDataTTL - p.ttl)
		latency := nw.Engine.Now() - p.start
		nw.Data.HopsTotal += uint64(hops)
		nw.Data.LatencyTotal += latency
		if p.pt != nil {
			p.pt.Finish("delivered", nw.Engine.Now())
		}
		nw.finishData(p, true, hops, latency)
		return
	}
	if p.ttl <= 0 {
		nw.Data.Expired++
		if p.pt != nil {
			p.pt.Finish("ttl-expired", nw.Engine.Now())
		}
		nw.finishData(p, false, 0, 0)
		return
	}
	routes, err := nw.Nodes[p.at].Routes(nw.Engine.Now())
	if err != nil {
		nw.Data.NoRoute++
		if p.pt != nil {
			p.pt.Finish("no-route", nw.Engine.Now())
		}
		nw.finishData(p, false, 0, 0)
		return
	}
	// Forwarding decisions are pure functions of (table snapshot, physical
	// link state), so they are cached per (node, destination) and a
	// sustained flow pays the lookup chain once per table rebuild, not once
	// per packet.
	if nw.fwd == nil {
		nw.fwd = make([][]fwdEntry, len(nw.Nodes))
	}
	row := nw.fwd[p.at]
	if row == nil {
		row = make([]fwdEntry, nw.Phys.N())
		nw.fwd[p.at] = row
	}
	fe := &row[p.dst]
	if fe.routes != routes || fe.gen != nw.linkGen {
		fe.routes = routes
		fe.gen = nw.linkGen
		fe.next, fe.ok = nw.resolveNext(p.at, p.dst, routes)
	}
	if !fe.ok {
		nw.Data.NoRoute++
		if p.pt != nil {
			p.pt.Finish("no-route", nw.Engine.Now())
		}
		nw.finishData(p, false, 0, 0)
		return
	}
	next := fe.next
	// The medium plans the unicast like any other frame: a lossy radio may
	// drop it in flight or delay it behind the sender's transmit queue.
	// The ideal medium's plan is a constant (deliver after idealHop, no
	// medium state), so it skips the call.
	if d := nw.idealHop; d != 0 {
		if p.pt != nil {
			p.pt.Hop(next, nw.Engine.Now()+d, 0)
		}
		p.at = next
		p.ttl--
		nw.Engine.Queue.AfterFixed(d, p)
		return
	}
	nw.unicast[0] = next
	plan := nw.medium.PlanFrame(p.at, nw.unicast[:], int(p.size), nw.Engine.Now())
	if len(plan) == 0 {
		nw.Data.Lost++
		if p.pt != nil {
			p.pt.Finish("medium-loss", nw.Engine.Now())
		}
		nw.finishData(p, false, 0, 0)
		return
	}
	if p.pt != nil {
		p.pt.Hop(next, nw.Engine.Now()+plan[0].Delay, plan[0].Wait)
	}
	p.at = next
	p.ttl--
	if plan[0].Delay == 0 {
		goto again
	}
	nw.Engine.Queue.After(plan[0].Delay, p)
}

// resolveNext resolves the next hop for traffic at node `at` addressed to
// `dst` under the given table snapshot: table lookup, next-hop index
// resolution, and the physical-link check. False means the packet has no
// usable route at this hop.
func (nw *Network) resolveNext(at, dst int32, routes *olsr.Routes) (int32, bool) {
	route, ok := routes.Lookup(int64(nw.Phys.ID(dst)))
	if !ok {
		return 0, false
	}
	next, ok := nw.indexOf[route.NextHop]
	if !ok {
		// A next hop outside the network's index (stale state naming a
		// node that never existed here) is a routing failure, not an
		// accidental alias of index 0.
		return 0, false
	}
	// The unicast hop uses the physical link; if it is gone (united with
	// mobility/churn) the packet is lost at this hop unless the next table
	// refresh learns better.
	if _, exists := nw.Phys.EdgeBetween(at, next); !exists || !nw.LinkUp(at, next) {
		return 0, false
	}
	return next, true
}

// DeliverySweep sends one packet from every node to dst at the current
// virtual time and runs the engine until all complete, returning the
// delivered fraction over physically-connected sources.
func (nw *Network) DeliverySweep(dst int32) float64 {
	reach := graph.Reachable(nw.Phys, dst)
	var delivered, total int
	pending := 0
	for s := int32(0); int(s) < nw.Phys.N(); s++ {
		if s == dst || !reach[s] {
			continue
		}
		total++
		pending++
		nw.SendData(s, dst, func(ok bool, _ int, _ time.Duration) {
			if ok {
				delivered++
			}
			pending--
		})
	}
	// Packets traverse at most TTL hops, each bounded by the medium's
	// per-hop latency bound.
	nw.Run(nw.Engine.Now() + time.Duration(DefaultDataTTL+1)*nw.HopDelayBound())
	if total == 0 {
		return 1
	}
	return float64(delivered) / float64(total)
}
