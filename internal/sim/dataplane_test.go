package sim

import (
	"testing"
	"time"

	"qolsr/internal/geom"
	"qolsr/internal/metric"
	"qolsr/internal/olsr"
)

func TestSendDataDeliversAfterConvergence(t *testing.T) {
	nw := lineNetwork(t) // 0-1-2-3
	nw.Start()
	nw.Run(25 * time.Second)

	var delivered bool
	var hops int
	var latency time.Duration
	nw.SendData(0, 3, func(ok bool, h int, l time.Duration) {
		delivered, hops, latency = ok, h, l
	})
	nw.Run(nw.Engine.Now() + time.Second)
	if !delivered {
		t.Fatalf("packet 0->3 not delivered (stats %+v)", nw.Data)
	}
	if hops != 3 {
		t.Errorf("hops = %d, want 3", hops)
	}
	if latency <= 0 {
		t.Errorf("latency = %v", latency)
	}
	if nw.Data.Delivered != 1 || nw.Data.Sent != 1 {
		t.Errorf("stats = %+v", nw.Data)
	}
}

func TestSendDataNoRouteBeforeConvergence(t *testing.T) {
	nw := lineNetwork(t)
	// No protocol traffic has flowed: no routes exist.
	var called, delivered bool
	nw.SendData(0, 3, func(ok bool, _ int, _ time.Duration) {
		called, delivered = true, ok
	})
	nw.Run(time.Second)
	if !called {
		t.Fatal("completion callback not invoked")
	}
	if delivered {
		t.Error("packet delivered without routes")
	}
	if nw.Data.NoRoute != 1 {
		t.Errorf("NoRoute = %d, want 1", nw.Data.NoRoute)
	}
}

func TestSendDataSelfDelivery(t *testing.T) {
	nw := lineNetwork(t)
	var delivered bool
	nw.SendData(2, 2, func(ok bool, hops int, _ time.Duration) {
		delivered = ok && hops == 0
	})
	nw.Run(time.Second)
	if !delivered {
		t.Error("self-addressed packet not delivered in zero hops")
	}
}

func TestDeliverySweep(t *testing.T) {
	nw := lineNetwork(t)
	nw.Start()
	nw.Run(25 * time.Second)
	if ratio := nw.DeliverySweep(0); ratio != 1 {
		t.Errorf("delivery sweep = %v, want 1 after convergence", ratio)
	}
}

// A packet in flight toward a link that fails mid-path is dropped, not
// teleported.
func TestSendDataDropsOnFailedLink(t *testing.T) {
	nw := lineNetwork(t)
	nw.Start()
	nw.Run(25 * time.Second)
	// Fail 2-3 and immediately send 0->3: tables still point through it,
	// and the hop 2->3 must drop.
	if err := nw.FailLink(2, 3); err != nil {
		t.Fatal(err)
	}
	var delivered bool
	nw.SendData(0, 3, func(ok bool, _ int, _ time.Duration) { delivered = ok })
	nw.Run(nw.Engine.Now() + time.Second)
	if delivered {
		t.Error("packet crossed a failed link")
	}
	if nw.Data.NoRoute == 0 {
		t.Error("drop not accounted")
	}
}

// Data plane under mobility: after the nodes have been moving for a while,
// a sweep to a sink still delivers a solid majority of packets.
func TestDeliverySweepUnderMobility(t *testing.T) {
	const n = 20
	model := geom.Waypoint{
		Field:    geom.Field{Width: 250, Height: 250},
		MinSpeed: 4,
		MaxSpeed: 8,
		Pause:    time.Second,
	}
	initial := make([]geom.Point, n)
	rng := newTestRand(41)
	for i := range initial {
		initial[i] = geom.Point{X: rng.Float64() * 250, Y: rng.Float64() * 250}
	}
	cfg := olsr.DefaultConfig(metric.Bandwidth())
	// Seed 13 gives a mobility realisation whose delivery sits well clear
	// of the threshold under the splitmix jitter streams (the quantity
	// swings widely with the emission phases at this scale).
	ms, err := NewMobileSim(model, initial, 100, cfg, NetworkOptions{Seed: 13}, time.Second, 23)
	if err != nil {
		t.Fatal(err)
	}
	ms.Start()
	ms.Run(60 * time.Second)
	if ratio := ms.NW.DeliverySweep(0); ratio < 0.5 {
		t.Errorf("mobile delivery sweep = %v, want >= 0.5", ratio)
	}
}
