package sim

import (
	"fmt"
	"math"
	"strings"
	"time"

	"qolsr/internal/geom"
	"qolsr/internal/graph"
	"qolsr/internal/rng"
)

// The radio-medium layer: every transmission — control broadcasts and
// data-plane unicasts alike — is planned by a Medium, which decides who
// receives the frame and after how long. The protocol machinery above never
// schedules deliveries itself, so swapping the medium swaps the radio model
// of the whole stack: the ideal MAC the paper assumes, or a lossy queued
// radio whose link quality the protocol must measure.

// Hop is one planned frame reception: the receiver and the total latency
// (queueing + serialization + propagation + jitter) from the moment the
// sender handed the frame to the medium. Wait is the queueing component
// alone — how long the frame sat behind the sender's busy transmitter —
// which path tracing reports per hop; ideal media leave it zero.
type Hop struct {
	Dst   int32
	Delay time.Duration
	Wait  time.Duration
}

// MediumStats is a medium's cumulative frame accounting: plain fields
// bumped on the planning path (no atomics — media are single-goroutine)
// and read lazily by the observability registry.
type MediumStats struct {
	// FramesPlanned counts transmissions handed to the medium.
	FramesPlanned uint64
	// Receptions counts planned per-receiver deliveries.
	Receptions uint64
	// ReceptionsLost counts per-receiver losses (the keyed loss draw).
	ReceptionsLost uint64
	// FramesStalled counts transmissions that waited behind a busy
	// transmitter, and StallTime accumulates that serialization queue wait.
	FramesStalled uint64
	StallTime     time.Duration
}

// Medium is the radio model one Network transmits through. Implementations
// are single-goroutine state machines owned by their network (the event
// engine is single-threaded); their decisions must be pure functions of
// (medium state, arguments) so a simulation stays deterministic for any
// worker count of the surrounding harness.
type Medium interface {
	// Name returns the medium's registry name ("ideal", "lossy").
	Name() string
	// Attach binds the medium to the network it serves. NewNetwork calls
	// it exactly once, before any PlanFrame.
	Attach(nw *Network)
	// PlanFrame plans one frame of size bytes sent by src at virtual time
	// now toward the candidate receivers (the sender's currently-up
	// physical neighbors, in deterministic order). It returns the
	// receivers that actually get the frame with their per-receiver
	// latency. The returned slice is only valid until the next PlanFrame
	// call.
	PlanFrame(src int32, dsts []int32, size int, now time.Duration) []Hop
	// HopDelayBound returns a per-hop latency bound harnesses use to size
	// packet drain windows. For queued media it is a practical bound
	// (typical frame, idle queue), not a hard worst case.
	HopDelayBound() time.Duration
}

// DefaultPropDelay is the radio propagation+processing delay per hop.
const DefaultPropDelay = time.Millisecond

// MediumNames lists the built-in radio media in listing order.
func MediumNames() []string { return []string{"ideal", "lossy"} }

// IdealMedium is the paper's radio model: every frame reaches every
// candidate receiver after a fixed propagation delay — no loss, no queueing,
// no jitter ("our own C simulator that assumes an ideal MAC layer",
// Sec. IV-A). It makes no RNG draws, so a network over an explicit
// IdealMedium is bit-identical to one built with a nil medium.
type IdealMedium struct {
	prop  time.Duration
	hops  []Hop
	stats MediumStats
}

// NewIdealMedium returns the ideal MAC with the given propagation delay
// (DefaultPropDelay when non-positive).
func NewIdealMedium(prop time.Duration) *IdealMedium {
	if prop <= 0 {
		prop = DefaultPropDelay
	}
	return &IdealMedium{prop: prop}
}

// Name implements Medium.
func (m *IdealMedium) Name() string { return "ideal" }

// Attach implements Medium.
func (m *IdealMedium) Attach(*Network) {}

// HopDelayBound implements Medium.
func (m *IdealMedium) HopDelayBound() time.Duration { return m.prop }

// Stats returns the cumulative frame accounting.
func (m *IdealMedium) Stats() MediumStats { return m.stats }

// PlanFrame implements Medium: every candidate receives the frame after the
// propagation delay.
func (m *IdealMedium) PlanFrame(src int32, dsts []int32, size int, now time.Duration) []Hop {
	m.hops = m.hops[:0]
	for _, dst := range dsts {
		m.hops = append(m.hops, Hop{Dst: dst, Delay: m.prop})
	}
	m.stats.FramesPlanned++
	m.stats.Receptions += uint64(len(m.hops))
	return m.hops
}

// LossyConfig parameterises the lossy medium.
type LossyConfig struct {
	// Loss is the base packet-error rate every link suffers, in [0, 1).
	Loss float64
	// DistanceLoss adds distance-dependent loss when the medium knows the
	// node geometry (SetGeometry): a link at the full communication radius
	// suffers this much extra error rate, scaled by (d/R)^2. Ignored
	// without geometry.
	DistanceLoss float64
	// BytesPerSec is the serialization rate of a unit-bandwidth link
	// (default 125000 — 1 Mbit/s per bandwidth-weight unit). A link's rate
	// is BytesPerSec times its "bandwidth"-channel weight; links of graphs
	// without that channel serialize at weight 1.
	BytesPerSec float64
	// Jitter bounds the uniform extra per-hop delay (default 200µs).
	Jitter time.Duration
	// PropDelay is the propagation delay per hop (default DefaultPropDelay).
	PropDelay time.Duration
	// Seed keys the loss and jitter draws. Every draw is a pure function
	// of (Seed, src, dst, per-sender frame sequence) — splitmix64-keyed,
	// so outcomes are platform-stable and independent of draw order.
	Seed int64
}

// withDefaults fills the zero knobs.
func (c LossyConfig) withDefaults() LossyConfig {
	if c.BytesPerSec <= 0 {
		c.BytesPerSec = 125000
	}
	if c.Jitter < 0 {
		c.Jitter = 0
	} else if c.Jitter == 0 {
		c.Jitter = 200 * time.Microsecond
	}
	if c.PropDelay <= 0 {
		c.PropDelay = DefaultPropDelay
	}
	return c
}

// maxPER caps per-link error rates so a configured-lossy link still delivers
// the occasional frame (a rate of exactly 1 would silently equal FailLink).
const maxPER = 0.99

// bandwidthChannel is the weight channel the serialization rate reads.
const bandwidthChannel = "bandwidth"

// draw kinds separating the loss and jitter streams of one transmission.
const (
	drawLoss uint64 = iota + 1
	drawJitter
)

// LossyMedium is a lossy, queued radio: per-link packet-error rates (base
// plus optional distance-dependent and per-link components), a per-node
// transmit queue whose serialization delay derives from the link's
// bandwidth-channel weight, and bounded uniform jitter. All randomness is
// keyed per (src, dst, frame-sequence) from the configured seed, so a
// simulation is reproducible bit for bit at any harness worker count.
type LossyMedium struct {
	cfg  LossyConfig
	base uint64 // derived draw key base
	nw   *Network

	busy []time.Duration // per-sender transmitter busy-until
	seq  []uint64        // per-sender frame counters

	linkLoss map[[2]int32]float64 // per-link PER overrides

	pts    []geom.Point // optional geometry for DistanceLoss
	radius float64

	// bw caches the bandwidth-channel weights of bwGraph: resolving the
	// channel is a per-graph operation, not a per-frame one (the pointer
	// comparison also tracks mobility topology swaps).
	bw      []float64
	bwGraph *graph.Graph

	// Per-edge caches of the effective PER and the serialization rate
	// (bytes/s) — the two per-receiver figures PlanFrame needs that are
	// pure functions of (config, geometry, graph). lossGen is bumped by
	// every knob that feeds them; the caches re-derive when it or the
	// graph pointer moves. Values are identical to the uncached
	// computation, so the keyed draws (and with them every golden) are
	// untouched.
	lossGen  uint64
	cacheGen uint64
	cacheG   *graph.Graph
	perEdge  []float64
	serEdge  []float64

	hops  []Hop
	stats MediumStats
}

// NewLossyMedium returns a lossy medium with the given configuration.
func NewLossyMedium(cfg LossyConfig) *LossyMedium {
	return &LossyMedium{
		cfg:  cfg.withDefaults(),
		base: rng.Mix(uint64(cfg.Seed), 0x10551), // domain-separate from other streams
	}
}

// Name implements Medium.
func (m *LossyMedium) Name() string { return "lossy" }

// Attach implements Medium.
func (m *LossyMedium) Attach(nw *Network) {
	m.nw = nw
	n := nw.Phys.N()
	m.busy = make([]time.Duration, n)
	m.seq = make([]uint64, n)
}

// HopDelayBound implements Medium: propagation, full jitter and the
// serialization of a data frame at the unit rate (the frames the drain
// windows sized by this bound actually carry). Queue wait under bursts can
// exceed it; drain windows sized by it capture everything but pathological
// storms.
func (m *LossyMedium) HopDelayBound() time.Duration {
	ser := time.Duration(float64(DataPacketBytes) / m.cfg.BytesPerSec * float64(time.Second))
	return m.cfg.PropDelay + m.cfg.Jitter + ser
}

// SetBaseLoss replaces the base packet-error rate (the SetLoss scenario
// action). Values are clamped to [0, maxPER].
func (m *LossyMedium) SetBaseLoss(p float64) {
	m.cfg.Loss = clampPER(p)
	m.lossGen++
}

// SetLinkLoss overrides the packet-error rate of the physical link {a, b}
// in both directions, replacing the base rate for that link (the
// DegradeLink scenario action). A negative rate clears the override.
func (m *LossyMedium) SetLinkLoss(a, b int32, p float64) {
	m.lossGen++
	if p < 0 {
		delete(m.linkLoss, linkKey(a, b))
		return
	}
	if m.linkLoss == nil {
		m.linkLoss = make(map[[2]int32]float64)
	}
	m.linkLoss[linkKey(a, b)] = clampPER(p)
}

// SetGeometry gives the medium the node positions and communication radius
// the DistanceLoss component scales with. Positions are captured by
// reference; static harnesses pass their deployment points once. (Under
// mobility the captured positions go stale — mobile harnesses either skip
// DistanceLoss or refresh the geometry on topology rebuilds.)
func (m *LossyMedium) SetGeometry(pts []geom.Point, radius float64) {
	m.pts = pts
	m.radius = radius
	m.lossGen++
}

// BaseLoss returns the current base packet-error rate.
func (m *LossyMedium) BaseLoss() float64 { return m.cfg.Loss }

// LinkPER returns the effective packet-error rate of the link {a, b}: the
// per-link override when set, else the base rate, plus the distance
// component when geometry is known.
func (m *LossyMedium) LinkPER(a, b int32) float64 {
	per := m.cfg.Loss
	if len(m.linkLoss) != 0 {
		if p, ok := m.linkLoss[linkKey(a, b)]; ok {
			per = p
		}
	}
	if m.cfg.DistanceLoss > 0 && m.radius > 0 && int(a) < len(m.pts) && int(b) < len(m.pts) {
		d := math.Hypot(m.pts[a].X-m.pts[b].X, m.pts[a].Y-m.pts[b].Y)
		frac := d / m.radius
		per += m.cfg.DistanceLoss * frac * frac
	}
	return clampPER(per)
}

// PlanFrame implements Medium. The sender's transmitter is occupied for the
// frame's longest serialization whether or not any receiver keeps it (the
// radio transmits regardless); each surviving receiver sees queue wait +
// its link's serialization + propagation + its jitter draw.
func (m *LossyMedium) PlanFrame(src int32, dsts []int32, size int, now time.Duration) []Hop {
	m.hops = m.hops[:0]
	if len(dsts) == 0 {
		return m.hops
	}
	m.refreshEdgeCaches()
	seq := m.seq[src]
	m.seq[src]++

	start := now
	if m.busy[src] > start {
		start = m.busy[src]
	}
	queue := start - now
	m.stats.FramesPlanned++
	if queue > 0 {
		m.stats.FramesStalled++
		m.stats.StallTime += queue
	}

	var maxSer time.Duration
	for _, dst := range dsts {
		var per, rate float64
		if e, ok := m.nw.Phys.EdgeBetween(src, dst); ok {
			per = m.perEdge[e]
			rate = m.serEdge[e]
		} else {
			per = m.LinkPER(src, dst)
			rate = m.cfg.BytesPerSec
		}
		// Same expression as the uncached serialization — the float op
		// sequence must not change, delays are golden-pinned.
		ser := time.Duration(float64(size) / rate * float64(time.Second))
		if ser > maxSer {
			maxSer = ser
		}
		if per > 0 {
			u := rng.Unit(rng.Mix(m.base, drawLoss, uint64(uint32(src)), uint64(uint32(dst)), seq))
			if u < per {
				m.stats.ReceptionsLost++
				continue // frame lost on this link
			}
		}
		delay := queue + ser + m.cfg.PropDelay
		if m.cfg.Jitter > 0 {
			j := rng.Mix(m.base, drawJitter, uint64(uint32(src)), uint64(uint32(dst)), seq)
			delay += time.Duration(j % uint64(m.cfg.Jitter))
		}
		m.hops = append(m.hops, Hop{Dst: dst, Delay: delay, Wait: queue})
	}
	m.busy[src] = start + maxSer
	m.stats.Receptions += uint64(len(m.hops))
	return m.hops
}

// Stats returns the cumulative frame accounting.
func (m *LossyMedium) Stats() MediumStats { return m.stats }

// refreshEdgeCaches re-derives the per-edge PER and serialization-rate
// caches when any of their inputs moved.
func (m *LossyMedium) refreshEdgeCaches() {
	if m.cacheG == m.nw.Phys && m.cacheGen == m.lossGen {
		return
	}
	g := m.nw.Phys
	m.cacheG = g
	m.cacheGen = m.lossGen
	n := g.M()
	if cap(m.perEdge) < n {
		m.perEdge = make([]float64, n)
		m.serEdge = make([]float64, n)
	}
	m.perEdge = m.perEdge[:n]
	m.serEdge = m.serEdge[:n]
	w := m.bandwidthWeights()
	for e := 0; e < n; e++ {
		a, b := g.EdgeEndpoints(e)
		m.perEdge[e] = m.LinkPER(a, b)
		weight := 1.0
		if w != nil && w[e] > 0 {
			weight = w[e]
		}
		m.serEdge[e] = m.cfg.BytesPerSec * weight
	}
}

// bandwidthWeights returns the current graph's bandwidth-channel weights
// (nil when the channel is absent), re-resolved only when the physical
// graph was swapped under the network.
func (m *LossyMedium) bandwidthWeights() []float64 {
	if m.nw.Phys != m.bwGraph {
		m.bwGraph = m.nw.Phys
		if w, err := m.nw.Phys.Weights(bandwidthChannel); err == nil {
			m.bw = w
		} else {
			m.bw = nil
		}
	}
	return m.bw
}

func clampPER(p float64) float64 {
	switch {
	case p < 0 || math.IsNaN(p):
		return 0
	case p > maxPER:
		return maxPER
	default:
		return p
	}
}

// MediumByName builds a medium from its registry name with the given
// propagation delay and seed; "lossy" takes the configuration's remaining
// knobs from cfg.
func MediumByName(name string, cfg LossyConfig) (Medium, error) {
	switch name {
	case "", "ideal":
		return NewIdealMedium(cfg.PropDelay), nil
	case "lossy":
		return NewLossyMedium(cfg), nil
	default:
		return nil, fmt.Errorf("sim: unknown medium %q (have %s)", name, strings.Join(MediumNames(), ", "))
	}
}

// Compile-time interface compliance checks.
var (
	_ Medium = (*IdealMedium)(nil)
	_ Medium = (*LossyMedium)(nil)
)
