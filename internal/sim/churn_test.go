package sim

import (
	"reflect"
	"testing"
	"time"

	"qolsr/internal/graph"
	"qolsr/internal/metric"
	"qolsr/internal/olsr"
)

// lineNetwork builds a 4-node line 0-1-2-3 with known weights.
func lineNetwork(t *testing.T) *Network {
	t.Helper()
	g := graph.New(4)
	for i := int32(0); i < 3; i++ {
		e := g.MustAddEdge(i, i+1)
		if err := g.SetWeight("bandwidth", e, 5); err != nil {
			t.Fatal(err)
		}
	}
	cfg := olsr.DefaultConfig(metric.Bandwidth())
	nw, err := NewNetwork(g, cfg, NetworkOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestFailLinkValidation(t *testing.T) {
	nw := lineNetwork(t)
	if err := nw.FailLink(0, 3); err == nil {
		t.Error("nonexistent link failed")
	}
	if err := nw.RestoreLink(0, 3); err == nil {
		t.Error("nonexistent link restored")
	}
	if !nw.LinkUp(0, 1) {
		t.Error("fresh link down")
	}
	if err := nw.FailLink(1, 0); err != nil {
		t.Fatal(err)
	}
	if nw.LinkUp(0, 1) || nw.LinkUp(1, 0) {
		t.Error("failed link reported up (any orientation)")
	}
	if err := nw.RestoreLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if !nw.LinkUp(1, 0) {
		t.Error("restored link reported down")
	}
}

// TestChurnSymmetricOrdering is the regression lock for the down-map's
// orientation invariance: FailLink and RestoreLink called with (b, a) must
// behave exactly like (a, b) — the map is keyed by the sorted pair, so no
// orientation can leave a half-failed link behind.
func TestChurnSymmetricOrdering(t *testing.T) {
	nw := lineNetwork(t)
	check := func(a, b int32, up bool) {
		t.Helper()
		if nw.LinkUp(a, b) != up || nw.LinkUp(b, a) != up {
			t.Errorf("LinkUp(%d,%d)=%v LinkUp(%d,%d)=%v, want both %v",
				a, b, nw.LinkUp(a, b), b, a, nw.LinkUp(b, a), up)
		}
	}
	// Reversed fail, reversed restore.
	if err := nw.FailLink(2, 1); err != nil {
		t.Fatal(err)
	}
	check(1, 2, false)
	if err := nw.RestoreLink(2, 1); err != nil {
		t.Fatal(err)
	}
	check(1, 2, true)
	// Reversed fail, forward restore (and vice versa).
	if err := nw.FailLink(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := nw.RestoreLink(1, 2); err != nil {
		t.Fatal(err)
	}
	check(1, 2, true)
	if err := nw.FailLink(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := nw.RestoreLink(2, 1); err != nil {
		t.Fatal(err)
	}
	check(1, 2, true)
	// A reversed-order failure must actually stop traffic: node 0 cannot
	// reach node 3 across the failed middle link of the line.
	if err := nw.FailLink(2, 1); err != nil {
		t.Fatal(err)
	}
	nw.Start()
	nw.Run(30 * time.Second)
	done := false
	nw.SendData(0, 3, func(ok bool, _ int, _ time.Duration) {
		done = true
		if ok {
			t.Error("packet crossed a link failed with reversed ordering")
		}
	})
	nw.Run(nw.Engine.Now() + time.Duration(DefaultDataTTL+1)*nw.HopDelayBound())
	if !done {
		t.Error("probe packet never completed")
	}
	// RestoreAllLinks clears reversed-order failures too.
	nw.RestoreAllLinks()
	check(1, 2, true)
}

// After a mid-path link fails, soft state expires and routes change to use
// what remains; after restoration the network reconverges to the original
// routes.
func TestProtocolReactsToLinkFailure(t *testing.T) {
	// Square 0-1-2-3-0 so an alternative path exists.
	g := graph.New(4)
	for _, ab := range [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		e := g.MustAddEdge(ab[0], ab[1])
		if err := g.SetWeight("bandwidth", e, 5); err != nil {
			t.Fatal(err)
		}
	}
	cfg := olsr.DefaultConfig(metric.Bandwidth())
	nw, err := NewNetwork(g, cfg, NetworkOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	nw.Run(25 * time.Second)

	routeTo2 := func() (olsr.Route, bool) {
		table, err := nw.Nodes[0].Routes(nw.Engine.Now())
		if err != nil {
			t.Fatal(err)
		}
		return table.Lookup(2)
	}
	if _, ok := routeTo2(); !ok {
		t.Fatal("no initial route 0->2")
	}

	// Cut both of node 1's links: 0 must reach 2 via 3 only.
	if err := nw.FailLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := nw.FailLink(1, 2); err != nil {
		t.Fatal(err)
	}
	nw.Run(nw.Engine.Now() + 30*time.Second)
	r, ok := routeTo2()
	if !ok {
		t.Fatal("no route 0->2 after failure")
	}
	if r.NextHop != 3 {
		t.Errorf("route 0->2 via %d after failure, want 3", r.NextHop)
	}
	// Node 1 must have disappeared from 0's neighbor-derived routes.
	table, err := nw.Nodes[0].Routes(nw.Engine.Now())
	if err != nil {
		t.Fatal(err)
	}
	if r1, ok := table.Lookup(1); ok && r1.NextHop == 1 {
		t.Error("0 still routes directly to failed neighbor 1")
	}

	// Restore: eventually the 2-hop route via 1 or 3 is back and node 1
	// is a neighbor again.
	if err := nw.RestoreLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := nw.RestoreLink(1, 2); err != nil {
		t.Fatal(err)
	}
	nw.Run(nw.Engine.Now() + 30*time.Second)
	table, err = nw.Nodes[0].Routes(nw.Engine.Now())
	if err != nil {
		t.Fatal(err)
	}
	if r1, ok := table.Lookup(1); !ok || r1.NextHop != 1 {
		t.Errorf("restored neighbor 1 not routed directly: %+v ok=%v", r1, ok)
	}
}

// Cache invalidation across a FailLink/RestoreLink cycle: the cached table
// must refresh when soft state expires after the failure, and refresh again
// (back to the original content — weights are stable) after restoration.
func TestRoutesCacheAcrossFailRestoreCycle(t *testing.T) {
	nw := lineNetwork(t)
	nw.Start()
	nw.Run(25 * time.Second)

	before, err := nw.Nodes[0].Routes(nw.Engine.Now())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := before.Lookup(3); !ok {
		t.Fatal("no initial route 0->3")
	}
	if err := nw.FailLink(1, 2); err != nil {
		t.Fatal(err)
	}
	nw.Run(nw.Engine.Now() + 40*time.Second)
	during, err := nw.Nodes[0].Routes(nw.Engine.Now())
	if err != nil {
		t.Fatal(err)
	}
	if during == before {
		t.Fatal("table not refreshed after link failure expired state")
	}
	if _, ok := during.Lookup(3); ok {
		t.Fatal("route across failed link survived")
	}
	if err := nw.RestoreLink(1, 2); err != nil {
		t.Fatal(err)
	}
	nw.Run(nw.Engine.Now() + 40*time.Second)
	after, err := nw.Nodes[0].Routes(nw.Engine.Now())
	if err != nil {
		t.Fatal(err)
	}
	if after == during {
		t.Fatal("table not refreshed after link restoration")
	}
	if !reflect.DeepEqual(after.Table(), before.Table()) {
		t.Errorf("post-cycle table %v != pre-cycle table %v", after.Table(), before.Table())
	}
}

// A failed bridge partitions the network: destinations across the bridge
// disappear from routing tables after expiry.
func TestPartitionExpiresRemoteState(t *testing.T) {
	nw := lineNetwork(t)
	nw.Start()
	nw.Run(25 * time.Second)
	table, err := nw.Nodes[0].Routes(nw.Engine.Now())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := table.Lookup(3); !ok {
		t.Fatal("no initial route 0->3")
	}
	if err := nw.FailLink(1, 2); err != nil {
		t.Fatal(err)
	}
	nw.Run(nw.Engine.Now() + 40*time.Second)
	table, err = nw.Nodes[0].Routes(nw.Engine.Now())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := table.Lookup(3); ok {
		t.Error("route across failed bridge survived expiry")
	}
}
