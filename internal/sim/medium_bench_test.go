package sim

import (
	"math/rand"
	"testing"
	"time"

	"qolsr/internal/geom"
	"qolsr/internal/graph"
	"qolsr/internal/metric"
	"qolsr/internal/netgen"
	"qolsr/internal/olsr"
)

// benchField builds the benchmark deployment once (~60 nodes at degree 8 on
// a 450×450 field).
func benchField(b *testing.B) *graph.Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(17))
	dep := geom.Deployment{Field: geom.Field{Width: 450, Height: 450}, Radius: 100, Degree: 8}
	g, err := netgen.Build(dep, "bandwidth", metric.DefaultInterval(), rng)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// benchMedium runs the full protocol stack for 60 virtual seconds over the
// given medium and finishes with a delivery sweep — the end-to-end cost of
// one live-stack simulation, which is what the medium layer adds overhead
// to.
func benchMedium(b *testing.B, mk func() Medium, measured bool) {
	g := benchField(b)
	cfg := olsr.DefaultConfig(metric.Bandwidth())
	cfg.MeasuredQoS = measured
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw, err := NewNetwork(g, cfg, NetworkOptions{Seed: 5, Medium: mk()})
		if err != nil {
			b.Fatal(err)
		}
		nw.Start()
		nw.Run(60 * time.Second)
		_ = nw.DeliverySweep(0)
	}
}

// BenchmarkIdealMedium is the baseline: the same program on the ideal MAC.
func BenchmarkIdealMedium(b *testing.B) {
	benchMedium(b, func() Medium { return NewIdealMedium(0) }, false)
}

// BenchmarkLossyMedium is the headline medium-layer number: the full stack
// over the lossy radio (20% loss, queueing, jitter) with measured link
// quality enabled — every frame draws loss and jitter, every HELLO feeds
// the estimators. Track it against BenchmarkIdealMedium in
// BENCH_medium.json.
func BenchmarkLossyMedium(b *testing.B) {
	benchMedium(b, func() Medium {
		return NewLossyMedium(LossyConfig{Loss: 0.2, Seed: 3})
	}, true)
}
