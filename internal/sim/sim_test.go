package sim

import (
	"testing"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.At(3*time.Second, func() { order = append(order, 3) })
	e.At(1*time.Second, func() { order = append(order, 1) })
	e.At(2*time.Second, func() { order = append(order, 2) })
	// Equal times: scheduling order.
	e.At(2*time.Second, func() { order = append(order, 22) })
	n := e.Run(10 * time.Second)
	if n != 4 {
		t.Errorf("processed = %d", n)
	}
	want := []int{1, 2, 22, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 10*time.Second {
		t.Errorf("Now = %v, want 10s", e.Now())
	}
}

func TestEngineRunBoundary(t *testing.T) {
	var e Engine
	ran := false
	e.At(5*time.Second, func() { ran = true })
	e.Run(4 * time.Second)
	if ran {
		t.Error("future event executed")
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d", e.Pending())
	}
	e.Run(5 * time.Second)
	if !ran {
		t.Error("due event not executed")
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	var e Engine
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			e.After(time.Second, tick)
		}
	}
	e.After(time.Second, tick)
	e.Run(time.Minute)
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if e.Now() != time.Minute {
		t.Errorf("Now = %v", e.Now())
	}
}

func TestEnginePastEventClamped(t *testing.T) {
	var e Engine
	e.At(2*time.Second, func() {
		e.At(time.Second, func() {}) // in the past: clamped to now
	})
	e.Run(10 * time.Second)
	if e.Executed != 2 {
		t.Errorf("Executed = %d, want 2", e.Executed)
	}
}
