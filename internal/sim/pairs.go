package sim

import "math/rand"

// DrawPairs picks count distinct ordered (src, dst) node-index pairs with
// src != dst, uniform without replacement, clamped to the n·(n-1) distinct
// pairs. It is the shared flow-endpoint sampler of the scenario engine and
// the evaluation sweeps — one implementation, so the two harnesses cannot
// silently diverge. The draw sequence is a pure function of (n, count,
// seed); the scenario goldens lock it.
func DrawPairs(n, count int, seed int64) [][2]int32 {
	if n < 2 {
		return nil
	}
	if max := n * (n - 1); count > max {
		count = max
	}
	r := rand.New(rand.NewSource(seed))
	seen := make(map[[2]int32]bool, count)
	out := make([][2]int32, 0, count)
	for len(out) < count {
		src := int32(r.Intn(n))
		dst := int32(r.Intn(n - 1))
		if dst >= src {
			dst++
		}
		pair := [2]int32{src, dst}
		if seen[pair] {
			continue
		}
		seen[pair] = true
		out = append(out, pair)
	}
	return out
}
