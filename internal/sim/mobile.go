package sim

import (
	"fmt"
	"time"

	"qolsr/internal/geom"
	"qolsr/internal/graph"
	"qolsr/internal/olsr"
)

// SetTopology swaps the physical graph under a running network — the
// mobility hook. The new graph must have the same node count (identities
// are positional) and carry the metric's weight channel. In-flight messages
// already scheduled keep their old delivery plan (they were radiated under
// the old geometry); everything after the swap uses the new one.
func (nw *Network) SetTopology(phys *graph.Graph) error {
	if phys.N() != nw.Phys.N() {
		return fmt.Errorf("sim: topology swap changes node count %d -> %d", nw.Phys.N(), phys.N())
	}
	if _, err := phys.Weights(nw.channel); err != nil {
		return err
	}
	for x := int32(0); int(x) < phys.N(); x++ {
		if phys.ID(x) != nw.Phys.ID(x) {
			return fmt.Errorf("sim: topology swap changes node %d identity", x)
		}
	}
	nw.Phys = phys
	nw.linkGen++
	return nil
}

// PairWeight deterministically derives a stable link weight for a node pair
// so a link that breaks and re-forms under mobility keeps its QoS value.
// The value lies in {1..10}, matching the paper's weight law.
func PairWeight(seed int64, a, b int32) float64 {
	if a > b {
		a, b = b, a
	}
	h := uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(uint32(a))<<32 ^ uint64(uint32(b))
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return float64(1 + h%10)
}

// MobileSim couples a running protocol network to a mobility model: every
// Interval of virtual time it advances the nodes, rebuilds the unit-disk
// topology from the new positions, and swaps it under the network. Link
// weights are stable per node pair (PairWeight).
type MobileSim struct {
	NW  *Network
	Mob *geom.Mobility

	field    geom.Field
	radius   float64
	interval time.Duration
	seed     int64
	// Rebuilds counts topology swaps performed.
	Rebuilds int
}

// NewMobileSim deploys len(initial) protocol nodes at the initial positions
// and arranges topology refreshes every interval.
func NewMobileSim(model geom.Waypoint, initial []geom.Point, radius float64, cfg olsr.Config, opts NetworkOptions, interval time.Duration, mobilityRNGSeed int64) (*MobileSim, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("sim: non-positive mobility interval")
	}
	mob, err := geom.NewMobility(model, initial, randFromSeed(mobilityRNGSeed))
	if err != nil {
		return nil, err
	}
	ms := &MobileSim{
		Mob:      mob,
		field:    model.Field,
		radius:   radius,
		interval: interval,
		seed:     opts.Seed,
	}
	phys, err := ms.buildTopology(initial, cfg.Metric.Name())
	if err != nil {
		return nil, err
	}
	nw, err := NewNetwork(phys, cfg, opts)
	if err != nil {
		return nil, err
	}
	ms.NW = nw
	return ms, nil
}

// Start schedules the protocol and the periodic topology refresh.
func (ms *MobileSim) Start() {
	ms.NW.Start()
	ms.NW.Engine.After(ms.interval, ms.refresh)
}

// Run advances virtual time.
func (ms *MobileSim) Run(until time.Duration) { ms.NW.Run(until) }

func (ms *MobileSim) refresh() {
	ms.Mob.AdvanceTo(ms.NW.Engine.Now())
	phys, err := ms.buildTopology(ms.Mob.Positions(), ms.NW.channel)
	if err == nil {
		if err := ms.NW.SetTopology(phys); err == nil {
			ms.Rebuilds++
		}
	}
	ms.NW.Engine.After(ms.interval, ms.refresh)
}

func (ms *MobileSim) buildTopology(pts []geom.Point, channel string) (*graph.Graph, error) {
	return UnitDiskTopology(ms.field, ms.radius, pts, channel, ms.seed)
}

// UnitDiskTopology builds the unit-disk graph of the given positions with
// stable per-pair link weights (PairWeight) on the named channel: the same
// (seed, pair) always carries the same weight, so topologies rebuilt under
// mobility or rebuilt per scenario keep consistent QoS values.
func UnitDiskTopology(field geom.Field, radius float64, pts []geom.Point, channel string, seed int64) (*graph.Graph, error) {
	links, err := geom.Links(field, radius, pts)
	if err != nil {
		return nil, err
	}
	g := graph.New(len(pts))
	for _, l := range links {
		e, err := g.AddEdge(l[0], l[1])
		if err != nil {
			return nil, err
		}
		if err := g.SetWeight(channel, e, PairWeight(seed, l[0], l[1])); err != nil {
			return nil, err
		}
	}
	// Ensure the channel exists even on a momentarily edgeless topology.
	if g.M() == 0 {
		if err := g.AssignUniformWeights(channel, weightLawForEmpty(), randFromSeed(seed)); err != nil {
			return nil, err
		}
	}
	return g, nil
}
