package sim

import "math/rand"

// newTestRand provides seeded randomness for test scaffolding.
func newTestRand(seed int64) *rand.Rand { return randFromSeed(seed) }
