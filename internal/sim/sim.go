// Package sim is the discrete-event network simulator the protocol stack
// runs on: an event queue in virtual time and an ideal-MAC radio medium (no
// interference, no collisions, fixed propagation delay) over a unit-disk
// physical graph — the paper's simulation model ("our own C simulator that
// assumes an ideal MAC layer", Sec. IV-A).
package sim

import (
	"container/heap"
	"time"
)

// event is one scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // FIFO tie-break for equal times: deterministic execution
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Engine is a single-threaded discrete-event executor. The zero value is
// ready to use.
type Engine struct {
	now    time.Duration
	nextID uint64
	queue  eventQueue
	// Executed counts processed events.
	Executed uint64
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// At schedules fn at absolute virtual time t (clamped to now for past
// times). Events at equal times run in scheduling order.
func (e *Engine) At(t time.Duration, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.nextID++
	heap.Push(&e.queue, &event{at: t, seq: e.nextID, fn: fn})
}

// After schedules fn after a delay.
func (e *Engine) After(d time.Duration, fn func()) {
	e.At(e.now+d, fn)
}

// Run processes events until the queue empties or virtual time exceeds
// until. It returns the number of events processed by this call.
func (e *Engine) Run(until time.Duration) uint64 {
	var processed uint64
	for e.queue.Len() > 0 {
		next := e.queue[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.queue)
		e.now = next.at
		next.fn()
		processed++
		e.Executed++
	}
	if e.now < until {
		e.now = until
	}
	return processed
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }
