// Package sim is the discrete-event network simulator the protocol stack
// runs on: a deterministic event core (internal/des) in virtual time and a
// pluggable radio medium — by default the ideal MAC (no interference, no
// collisions, fixed propagation delay) over a unit-disk physical graph, the
// paper's simulation model ("our own C simulator that assumes an ideal MAC
// layer", Sec. IV-A).
package sim

import (
	"time"

	"qolsr/internal/des"
)

// Engine is the single-threaded discrete-event executor, a thin veneer over
// the des scheduler: the closure API below serves low-rate bookkeeping
// (phases, harness callbacks), while hot subsystems schedule pooled or
// persistent des.Events directly on the embedded Queue. Both run in the
// same (time, priority, seq) total order. The zero value is ready to use.
type Engine struct {
	des.Queue
}

// Now, Run, Pending and the Executed counter are promoted from des.Queue.

// At schedules fn at absolute virtual time t (clamped to now for past
// times). Events at equal times run in scheduling order.
func (e *Engine) At(t time.Duration, fn func()) {
	e.Queue.At(t, des.Func(fn))
}

// After schedules fn after a delay.
func (e *Engine) After(d time.Duration, fn func()) {
	e.Queue.After(d, des.Func(fn))
}
