package sim

import (
	"testing"
	"time"

	"qolsr/internal/metric"
	"qolsr/internal/olsr"
)

// convergedPair builds two identical converged networks from the same seed
// so each can take a different rebuild path.
func convergedPair(t *testing.T) (a, b *Network) {
	t.Helper()
	m := metric.Bandwidth()
	a = testNetwork(t, smallWorld(t, 23, 9), m)
	b = testNetwork(t, smallWorld(t, 23, 9), m)
	for _, nw := range []*Network{a, b} {
		nw.Start()
		nw.Run(20 * time.Second)
	}
	return a, b
}

// tableOf snapshots one node's routing table.
func tableOf(t *testing.T, nw *Network, x int32) map[int64]olsr.Route {
	t.Helper()
	r, err := nw.Nodes[x].Routes(nw.Engine.Now())
	if err != nil {
		t.Fatal(err)
	}
	return r.Table()
}

// RebuildRoutes fanned across eight workers must produce exactly the tables
// the serial path produces, node for node, and agree on how many tables
// were actually rebuilt. This is the test CI runs under the race detector:
// the parallel path touches every node's scratch state concurrently and
// must stay free of shared mutable state.
func TestRebuildRoutesWorkersAgree(t *testing.T) {
	serial, parallel := convergedPair(t)

	n1, err := serial.RebuildRoutes(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	n8, err := parallel.RebuildRoutes(nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n8 {
		t.Fatalf("rebuilt %d tables serially vs %d with 8 workers", n1, n8)
	}
	if n1 == 0 {
		t.Fatal("nothing was dirty; the fixture exercised no rebuild")
	}
	for x := int32(0); int(x) < serial.Phys.N(); x++ {
		ts, tp := tableOf(t, serial, x), tableOf(t, parallel, x)
		if len(ts) != len(tp) {
			t.Fatalf("node %d: table sizes %d vs %d", x, len(ts), len(tp))
		}
		for dst, rs := range ts {
			if rp, ok := tp[dst]; !ok || rp != rs {
				t.Fatalf("node %d route to %d: %+v serial vs %+v parallel", x, dst, rs, tp[dst])
			}
		}
	}
	if serial.RebuildTotals() != parallel.RebuildTotals() {
		t.Fatalf("rebuild totals diverge: %+v vs %+v", serial.RebuildTotals(), parallel.RebuildTotals())
	}

	// A second barrier with everything clean must be a no-op either way.
	if n, err := parallel.RebuildRoutes(nil, 8); err != nil || n != 0 {
		t.Fatalf("clean barrier rebuilt %d tables (err %v), want 0", n, err)
	}
}

// A subset barrier must only touch the named nodes' tables.
func TestRebuildRoutesSubset(t *testing.T) {
	nw := testNetwork(t, smallWorld(t, 23, 9), metric.Bandwidth())
	nw.Start()
	nw.Run(20 * time.Second)

	subset := []int32{0, 2}
	if _, err := nw.RebuildRoutes(subset, 4); err != nil {
		t.Fatal(err)
	}
	now := nw.Engine.Now()
	for _, x := range subset {
		if nw.Nodes[x].RoutesDirty(now) {
			t.Fatalf("node %d still dirty after subset rebuild", x)
		}
	}
	if n, err := nw.RebuildRoutes(subset, 1); err != nil || n != 0 {
		t.Fatalf("repeat subset barrier rebuilt %d (err %v), want 0", n, err)
	}
}
