package sim

import (
	"fmt"
	"time"

	"qolsr/internal/graph"
	"qolsr/internal/metric"
	"qolsr/internal/olsr"
	"qolsr/internal/rng"
)

// TrafficStats accounts control traffic by message type.
type TrafficStats struct {
	HelloMessages uint64
	HelloBytes    uint64
	TCMessages    uint64 // including MPR re-broadcasts
	TCBytes       uint64
	TCOriginated  uint64
}

// Network runs one OLSR/QOLSR protocol instance per node of a physical
// graph over the event engine. Messages are serialised through the wire
// codec on transmission (so byte accounting reflects real TC sizes, which
// scale with the advertised-set sizes of Figs. 6-7) and decoded at every
// receiver.
type Network struct {
	Engine *Engine
	Phys   *graph.Graph
	Nodes  []*olsr.Node
	Stats  TrafficStats
	// Data accounts data-plane packets injected with SendData.
	Data DataStats

	cfg     olsr.Config
	channel string
	medium  Medium
	// jitter holds one emission-jitter stream per node, keyed by
	// (seed, node index): a node's jitter draws are a pure function of
	// its own key and draw count — platform-stable (no math/rand) and
	// independent of every other node's emission schedule.
	jitter  []rng.Stream
	indexOf map[int64]int32
	down    map[[2]int32]bool // failed physical links (see churn.go)
	dsts    []int32           // broadcast candidate scratch
}

// NetworkOptions tunes the simulation harness.
type NetworkOptions struct {
	// PropDelay is the radio propagation+processing delay per hop
	// (default 1ms). It parameterises the default ideal medium; an
	// explicit Medium carries its own delays and ignores this field.
	PropDelay time.Duration
	// Seed drives emission jitter.
	Seed int64
	// Medium is the radio model transmissions run through (default: the
	// ideal MAC, NewIdealMedium(PropDelay)).
	Medium Medium
}

// NewNetwork builds a protocol network over the physical graph. Link QoS
// weights come from the graph channel named after cfg.Metric.
func NewNetwork(phys *graph.Graph, cfg olsr.Config, opts NetworkOptions) (*Network, error) {
	channel := cfg.Metric.Name()
	if _, err := phys.Weights(channel); err != nil {
		return nil, err
	}
	medium := opts.Medium
	if medium == nil {
		medium = NewIdealMedium(opts.PropDelay)
	}
	nw := &Network{
		Engine:  &Engine{},
		Phys:    phys,
		cfg:     cfg,
		channel: channel,
		medium:  medium,
		jitter:  make([]rng.Stream, phys.N()),
		indexOf: make(map[int64]int32, phys.N()),
	}
	for i := range nw.jitter {
		nw.jitter[i] = rng.NewStream(uint64(opts.Seed), uint64(i))
	}
	for x := int32(0); int(x) < phys.N(); x++ {
		node, err := olsr.NewNode(int64(phys.ID(x)), cfg)
		if err != nil {
			return nil, err
		}
		nw.Nodes = append(nw.Nodes, node)
		nw.indexOf[int64(phys.ID(x))] = x
	}
	medium.Attach(nw)
	return nw, nil
}

// Medium returns the radio model this network transmits through.
func (nw *Network) Medium() Medium { return nw.medium }

// Metric returns the QoS metric the network's nodes route with — what
// their routing-table Values are composed under.
func (nw *Network) Metric() metric.Metric { return nw.cfg.Metric }

// MeasuredQoS reports whether the nodes sense link quality by measurement
// instead of the topology oracle — routing-table Values are then in
// measured-quality units (ETX, delivery product), not oracle weights.
func (nw *Network) MeasuredQoS() bool { return nw.cfg.MeasuredQoS }

// HopDelayBound returns the medium's per-hop latency bound — what harnesses
// size packet drain windows with.
func (nw *Network) HopDelayBound() time.Duration { return nw.medium.HopDelayBound() }

// Start schedules the initial link measurements and the periodic HELLO/TC
// emissions with per-node jitter, then the network is ready to Run.
func (nw *Network) Start() {
	for i := range nw.Nodes {
		i := i
		nw.feedLinks(i)
		helloJitter := time.Duration(nw.jitter[i].Int63n(int64(nw.cfg.HelloInterval)))
		tcJitter := nw.cfg.HelloInterval + time.Duration(nw.jitter[i].Int63n(int64(nw.cfg.TCInterval)))
		nw.Engine.At(helloJitter, func() { nw.emitHello(i) })
		nw.Engine.At(tcJitter, func() { nw.emitTC(i) })
	}
}

// Run advances virtual time.
func (nw *Network) Run(until time.Duration) { nw.Engine.Run(until) }

// feedLinks refreshes a node's own link measurements from the physical
// graph — the out-of-scope QoS metric layer of the paper. Under measured
// QoS the oracle is silent: nodes learn their links only from what the
// medium actually delivers (olsr link sensing).
func (nw *Network) feedLinks(i int) {
	if nw.cfg.MeasuredQoS {
		return
	}
	w, _ := nw.Phys.Weights(nw.channel)
	x := int32(i)
	now := nw.Engine.Now()
	for _, arc := range nw.Phys.Arcs(x) {
		if !nw.LinkUp(x, arc.To) {
			continue
		}
		nw.Nodes[i].UpdateLink(int64(nw.Phys.ID(arc.To)), w[arc.Edge], now)
	}
}

func (nw *Network) emitHello(i int) {
	nw.feedLinks(i)
	h := nw.Nodes[i].GenerateHello(nw.Engine.Now())
	buf := olsr.MarshalHello(h)
	nw.Stats.HelloMessages++
	nw.Stats.HelloBytes += uint64(len(buf))
	nw.broadcast(int32(i), buf)
	nw.Engine.After(nw.jittered(i, nw.cfg.HelloInterval), func() { nw.emitHello(i) })
}

func (nw *Network) emitTC(i int) {
	if tc := nw.Nodes[i].GenerateTC(nw.Engine.Now()); tc != nil {
		buf := olsr.MarshalTC(tc)
		nw.Stats.TCOriginated++
		nw.Stats.TCMessages++
		nw.Stats.TCBytes += uint64(len(buf))
		nw.broadcast(int32(i), buf)
	}
	nw.Engine.After(nw.jittered(i, nw.cfg.TCInterval), func() { nw.emitTC(i) })
}

// jittered applies ±5% emission jitter (RFC 3626 recommends jitter to avoid
// synchronisation), drawn from the emitting node's own stream.
func (nw *Network) jittered(i int, d time.Duration) time.Duration {
	span := int64(d) / 10
	if span <= 0 {
		return d
	}
	return d - time.Duration(span/2) + time.Duration(nw.jitter[i].Int63n(span))
}

// broadcast hands an encoded message to the medium for delivery to the
// sender's currently-up physical neighbors: the medium decides who receives
// the frame and after how long. Failed links carry nothing regardless of
// the medium.
func (nw *Network) broadcast(from int32, buf []byte) {
	nw.dsts = nw.dsts[:0]
	for _, arc := range nw.Phys.Arcs(from) {
		if nw.LinkUp(from, arc.To) {
			nw.dsts = append(nw.dsts, arc.To)
		}
	}
	for _, hop := range nw.medium.PlanFrame(from, nw.dsts, len(buf), nw.Engine.Now()) {
		to := hop.Dst
		nw.Engine.After(hop.Delay, func() { nw.deliver(from, to, buf) })
	}
}

func (nw *Network) deliver(from, to int32, buf []byte) {
	t, err := olsr.PeekType(buf)
	if err != nil {
		return
	}
	now := nw.Engine.Now()
	node := nw.Nodes[to]
	switch t {
	case olsr.MsgHello:
		h, err := olsr.UnmarshalHello(buf)
		if err != nil {
			return
		}
		node.HandleHello(h, now)
	case olsr.MsgTC:
		tc, err := olsr.UnmarshalTC(buf)
		if err != nil {
			return
		}
		if node.HandleTC(tc, int64(nw.Phys.ID(from)), now) {
			// MPR forwarding: re-broadcast from this node.
			nw.Stats.TCMessages++
			nw.Stats.TCBytes += uint64(len(buf))
			nw.broadcast(to, buf)
		}
	}
}

// ANSSets returns every node's current advertised set as graph indices,
// suitable for route.BuildAdvertised.
func (nw *Network) ANSSets() ([][]int32, error) {
	sets := make([][]int32, len(nw.Nodes))
	now := nw.Engine.Now()
	for i, n := range nw.Nodes {
		for _, id := range n.ANS(now) {
			idx, ok := nw.indexOf[id]
			if !ok {
				return nil, fmt.Errorf("sim: node %d advertises unknown id %d", n.ID, id)
			}
			sets[i] = append(sets[i], idx)
		}
	}
	return sets, nil
}

// ControlBytesPerSecond reports the average control traffic rate over the
// elapsed virtual time.
func (nw *Network) ControlBytesPerSecond() float64 {
	secs := nw.Engine.Now().Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(nw.Stats.HelloBytes+nw.Stats.TCBytes) / secs
}
