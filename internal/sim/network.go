package sim

import (
	"fmt"
	"time"

	"qolsr/internal/graph"
	"qolsr/internal/metric"
	"qolsr/internal/obs"
	"qolsr/internal/olsr"
	"qolsr/internal/rng"
)

// TrafficStats accounts control traffic by message type. TC traffic is
// additionally split by role: TCBytes is the on-air total, of which
// TCOriginatedBytes were first transmissions at the origin and
// TCForwardedBytes were relay re-broadcasts (TCBytes = originated +
// forwarded; likewise TCMessages = TCOriginated + TCForwarded). The split
// is what the overhead sweep reads — relay minimisation and fish-eye
// scoping attack the forwarded share, delta encoding the per-message size.
type TrafficStats struct {
	HelloMessages uint64
	HelloBytes    uint64
	TCMessages    uint64 // including MPR re-broadcasts
	TCBytes       uint64
	TCOriginated  uint64
	// TCOriginatedBytes counts first transmissions at the origin (full TCs
	// and deltas alike).
	TCOriginatedBytes uint64
	// TCForwarded / TCForwardedBytes count MPR re-broadcasts.
	TCForwarded      uint64
	TCForwardedBytes uint64
	// DupSuppressed counts TC-family deliveries dropped by the simulator's
	// flood duplicate suppression (the external form of the nodes' dup
	// windows — see floodState).
	DupSuppressed uint64
}

// Network runs one OLSR/QOLSR protocol instance per node of a physical
// graph over the event engine. Messages are serialised through the wire
// codec on transmission (so byte accounting reflects real TC sizes, which
// scale with the advertised-set sizes of Figs. 6-7) and decoded at every
// receiver.
type Network struct {
	Engine *Engine
	Phys   *graph.Graph
	Nodes  []*olsr.Node
	Stats  TrafficStats
	// Data accounts data-plane packets injected with SendData.
	Data DataStats
	// Tracer, when non-nil, records sampled data-packet path traces. The
	// data plane guards every touch with one pointer compare, so a nil
	// tracer costs nothing and changes nothing.
	Tracer *obs.Tracer

	cfg     olsr.Config
	channel string
	medium  Medium
	// ctrlFast routes TC emission through GenerateTCUpdate (delta TCs
	// and/or fish-eye scoping configured); off, emission is the classic
	// full-TC path, bit-identically.
	ctrlFast bool
	// jitter holds one emission-jitter stream per node, keyed by
	// (seed, node index): a node's jitter draws are a pure function of
	// its own key and draw count — platform-stable (no math/rand) and
	// independent of every other node's emission schedule.
	jitter  []rng.Stream
	indexOf map[int64]int32
	down    map[[2]int32]bool // failed physical links (see churn.go)
	dsts    []int32           // broadcast candidate scratch

	// Hot-path pools: periodic emissions, frame deliveries and data packets
	// are persistent or recycled des events, so the steady-state event flow
	// allocates nothing (see doc.go, "Event-driven core").
	emitters  []emitter
	framePool []*controlFrame
	hopPool   []*frameHop
	pktPool   []*dataPacket
	floodPool []*floodState
	unicast   [1]int32 // data-plane next-hop scratch (kept off the heap)
	// idealHop short-circuits data-plane frame planning on the ideal
	// medium: its unicast plan is always {next, idealHop} with no medium
	// state touched, so stepData skips the PlanFrame call. Zero on every
	// other medium.
	idealHop time.Duration

	// fwd caches resolved forwarding decisions per (node, destination),
	// valid while the node's routing-table snapshot pointer and the
	// physical link generation both stand still — sustained flows resolve
	// each hop once per table rebuild instead of once per packet. Rows are
	// allocated lazily, only for nodes that actually forward data.
	fwd     [][]fwdEntry
	linkGen uint64 // bumped on every churn/mobility change to Phys or down
}

// fwdEntry is one cached forwarding decision (see Network.fwd).
type fwdEntry struct {
	routes *olsr.Routes
	gen    uint64
	next   int32
	ok     bool
}

// NetworkOptions tunes the simulation harness.
type NetworkOptions struct {
	// PropDelay is the radio propagation+processing delay per hop
	// (default 1ms). It parameterises the default ideal medium; an
	// explicit Medium carries its own delays and ignores this field.
	PropDelay time.Duration
	// Seed drives emission jitter.
	Seed int64
	// Medium is the radio model transmissions run through (default: the
	// ideal MAC, NewIdealMedium(PropDelay)).
	Medium Medium
}

// NewNetwork builds a protocol network over the physical graph. Link QoS
// weights come from the graph channel named after cfg.Metric.
func NewNetwork(phys *graph.Graph, cfg olsr.Config, opts NetworkOptions) (*Network, error) {
	channel := cfg.Metric.Name()
	if _, err := phys.Weights(channel); err != nil {
		return nil, err
	}
	medium := opts.Medium
	if medium == nil {
		medium = NewIdealMedium(opts.PropDelay)
	}
	// The simulator owns flood duplicate suppression (one pooled visited
	// bitset per flood, shared along the relay chain — see floodState), so
	// the nodes skip their own per-origin windows. Observably identical,
	// and one bit probe replaces a map access per TC delivery.
	cfg.ExternalDupSuppression = true
	// Declare the dense identifier space when the graph's IDs are exactly
	// [0, N) — netgen-built fields always are — so every node's soft-state
	// tables use flat slot arrays instead of hash maps (olsr.Config.DenseIDs).
	// Graphs with arbitrary IDs (NewWithIDs) keep the map representation.
	cfg.DenseIDs = phys.N()
	for x := int32(0); int(x) < phys.N(); x++ {
		if int64(phys.ID(x)) != int64(x) {
			cfg.DenseIDs = 0
			break
		}
	}
	nw := &Network{
		Engine:   &Engine{},
		Phys:     phys,
		cfg:      cfg,
		channel:  channel,
		medium:   medium,
		ctrlFast: cfg.DeltaTC || len(cfg.FisheyeTTLs) > 0,
		jitter:   make([]rng.Stream, phys.N()),
		indexOf:  make(map[int64]int32, phys.N()),
	}
	for i := range nw.jitter {
		nw.jitter[i] = rng.NewStream(uint64(opts.Seed), uint64(i))
	}
	for x := int32(0); int(x) < phys.N(); x++ {
		node, err := olsr.NewNode(int64(phys.ID(x)), cfg)
		if err != nil {
			return nil, err
		}
		nw.Nodes = append(nw.Nodes, node)
		nw.indexOf[int64(phys.ID(x))] = x
	}
	medium.Attach(nw)
	if im, ok := medium.(*IdealMedium); ok {
		nw.idealHop = im.prop
	}
	return nw, nil
}

// Medium returns the radio model this network transmits through.
func (nw *Network) Medium() Medium { return nw.medium }

// Metric returns the QoS metric the network's nodes route with — what
// their routing-table Values are composed under.
func (nw *Network) Metric() metric.Metric { return nw.cfg.Metric }

// MeasuredQoS reports whether the nodes sense link quality by measurement
// instead of the topology oracle — routing-table Values are then in
// measured-quality units (ETX, delivery product), not oracle weights.
func (nw *Network) MeasuredQoS() bool { return nw.cfg.MeasuredQoS }

// HopDelayBound returns the medium's per-hop latency bound — what harnesses
// size packet drain windows with.
func (nw *Network) HopDelayBound() time.Duration { return nw.medium.HopDelayBound() }

// Start schedules the initial link measurements and the periodic HELLO/TC
// emissions with per-node jitter, then the network is ready to Run. Each
// node's two emitters are persistent events rescheduling themselves for the
// lifetime of the run.
func (nw *Network) Start() {
	nw.emitters = make([]emitter, 2*len(nw.Nodes))
	for i := range nw.Nodes {
		nw.feedLinks(i)
		helloJitter := time.Duration(nw.jitter[i].Int63n(int64(nw.cfg.HelloInterval)))
		tcJitter := nw.cfg.HelloInterval + time.Duration(nw.jitter[i].Int63n(int64(nw.cfg.TCInterval)))
		hello := &nw.emitters[2*i]
		*hello = emitter{nw: nw, node: i, kind: emitHello}
		tc := &nw.emitters[2*i+1]
		*tc = emitter{nw: nw, node: i, kind: emitTC}
		nw.Engine.Queue.At(helloJitter, hello)
		nw.Engine.Queue.At(tcJitter, tc)
	}
}

// emitter is one node's persistent periodic-emission event.
type emitter struct {
	nw   *Network
	node int
	kind uint8
}

const (
	emitHello uint8 = iota
	emitTC
)

// Fire implements des.Event: emit, then reschedule with fresh jitter.
func (em *emitter) Fire(time.Duration) {
	nw, i := em.nw, em.node
	var interval time.Duration
	if em.kind == emitHello {
		nw.emitHelloNow(i)
		interval = nw.cfg.HelloInterval
	} else {
		nw.emitTCNow(i)
		interval = nw.cfg.TCInterval
	}
	nw.Engine.Queue.After(nw.jittered(i, interval), em)
}

// Run advances virtual time.
func (nw *Network) Run(until time.Duration) { nw.Engine.Run(until) }

// feedLinks refreshes a node's own link measurements from the physical
// graph — the out-of-scope QoS metric layer of the paper. Under measured
// QoS the oracle is silent: nodes learn their links only from what the
// medium actually delivers (olsr link sensing).
func (nw *Network) feedLinks(i int) {
	if nw.cfg.MeasuredQoS {
		return
	}
	w, _ := nw.Phys.Weights(nw.channel)
	x := int32(i)
	now := nw.Engine.Now()
	for _, arc := range nw.Phys.Arcs(x) {
		if !nw.LinkUp(x, arc.To) {
			continue
		}
		nw.Nodes[i].UpdateLink(int64(nw.Phys.ID(arc.To)), w[arc.Edge], now)
	}
}

func (nw *Network) emitHelloNow(i int) {
	nw.feedLinks(i)
	h := nw.Nodes[i].GenerateHello(nw.Engine.Now())
	buf := olsr.MarshalHello(h)
	nw.Stats.HelloMessages++
	nw.Stats.HelloBytes += uint64(len(buf))
	// The origin's own struct is the decoded form every receiver handles:
	// the wire codec is canonical (Unmarshal(Marshal(h)) reproduces h, the
	// fuzzers pin it), so decoding per receiver would only re-derive what
	// the sender already holds.
	nw.broadcastFrame(int32(i), buf, h, nil, nil, 0, nil)
}

func (nw *Network) emitTCNow(i int) {
	if nw.ctrlFast {
		full, delta, ttl := nw.Nodes[i].GenerateTCUpdate(nw.Engine.Now())
		var buf []byte
		switch {
		case full != nil:
			buf = olsr.MarshalTC(full)
		case delta != nil:
			buf = olsr.MarshalTCDelta(delta)
		default:
			return
		}
		nw.Stats.TCOriginated++
		nw.Stats.TCMessages++
		nw.Stats.TCBytes += uint64(len(buf))
		nw.Stats.TCOriginatedBytes += uint64(len(buf))
		nw.broadcastFrame(int32(i), buf, nil, full, delta, int32(ttl), nil)
		return
	}
	if tc := nw.Nodes[i].GenerateTC(nw.Engine.Now()); tc != nil {
		buf := olsr.MarshalTC(tc)
		nw.Stats.TCOriginated++
		nw.Stats.TCMessages++
		nw.Stats.TCBytes += uint64(len(buf))
		nw.Stats.TCOriginatedBytes += uint64(len(buf))
		nw.broadcastFrame(int32(i), buf, nil, tc, nil, 0, nil)
	}
}

// jittered applies ±5% emission jitter (RFC 3626 recommends jitter to avoid
// synchronisation), drawn from the emitting node's own stream.
func (nw *Network) jittered(i int, d time.Duration) time.Duration {
	span := int64(d) / 10
	if span <= 0 {
		return d
	}
	return d - time.Duration(span/2) + time.Duration(nw.jitter[i].Int63n(span))
}

// controlFrame is one in-flight control broadcast: the encoded bytes (byte
// accounting, re-broadcast) plus the decoded form shared read-only by every
// receiver — protocol handlers copy what they keep, so one decoded message
// serves the whole reception set. Frames are pooled; when every planned
// delivery has the same latency (the ideal medium) the frame itself is the
// single delivery event for all receivers.
type controlFrame struct {
	nw    *Network
	from  int32
	refs  int32
	buf   []byte
	hello *olsr.Hello
	tc    *olsr.TC
	tcd   *olsr.TCDelta
	// ttl is the remaining flood scope when the frame was transmitted
	// (fish-eye scoping; 0 = unlimited). It travels alongside the frame
	// rather than on the wire, so scoped runs reuse the unchanged codec.
	ttl  int32
	dsts []int32
	// flood is the per-flood visited set shared along a TC-family frame's
	// whole relay chain (nil for HELLOs, which never flood).
	flood *floodState
}

// floodState is one flood's duplicate-suppression state: a bitset over
// receiver indices recording who has already been handed this (origin, seq)
// message. The simulator owns exactly one per flood, shared by every relayed
// frame of that flood and released to the pool when the last frame drains —
// replacing N per-node duplicate tables (one map probe plus a window scan per
// delivery) with a single bit probe. The protocol nodes run with
// Config.ExternalDupSuppression and skip their own window entirely.
//
// The replacement is observably identical to the per-node windows: a
// suppressed delivery used to return before touching any state a later
// handler could see, a flood's frames outlive every in-flight duplicate of
// it (frames hold the state refcounted), and an (origin, seq) pair never
// recurs within a duplicate window's lifetime (sequence wrap takes orders of
// magnitude longer than the hold time). The origin's own bit starts unset,
// exactly like its duplicate window before its own message loops back.
type floodState struct {
	visited []uint64
	refs    int32
}

// testAndSet reports whether receiver i already saw this flood, marking it
// either way.
func (fs *floodState) testAndSet(i int32) bool {
	w, b := i>>6, uint64(1)<<(uint32(i)&63)
	if fs.visited[w]&b != 0 {
		return true
	}
	fs.visited[w] |= b
	return false
}

// newFlood returns a cleared visited set sized for the current field.
func (nw *Network) newFlood() *floodState {
	var fs *floodState
	if n := len(nw.floodPool); n > 0 {
		fs = nw.floodPool[n-1]
		nw.floodPool = nw.floodPool[:n-1]
	} else {
		fs = &floodState{}
	}
	words := (nw.Phys.N() + 63) / 64
	if cap(fs.visited) < words {
		fs.visited = make([]uint64, words)
	} else {
		fs.visited = fs.visited[:words]
		clear(fs.visited)
	}
	fs.refs = 0
	return fs
}

// Fire implements des.Event: deliver the frame to every batched receiver.
func (f *controlFrame) Fire(time.Duration) {
	for _, to := range f.dsts {
		f.nw.deliverFrame(f, to)
	}
	f.release()
}

// frameHop is one planned reception of a frame whose receivers see different
// latencies (lossy medium): per-receiver events sharing one frame.
type frameHop struct {
	f  *controlFrame
	to int32
}

// Fire implements des.Event.
func (h *frameHop) Fire(time.Duration) {
	f, to := h.f, h.to
	h.f = nil
	f.nw.deliverFrame(f, to)
	f.release()
	f.nw.hopPool = append(f.nw.hopPool, h)
}

func (nw *Network) newFrame(from int32, buf []byte, hello *olsr.Hello, tc *olsr.TC, tcd *olsr.TCDelta, ttl int32) *controlFrame {
	var f *controlFrame
	if n := len(nw.framePool); n > 0 {
		f = nw.framePool[n-1]
		nw.framePool = nw.framePool[:n-1]
	} else {
		f = &controlFrame{nw: nw}
	}
	f.from = from
	f.buf = buf
	f.hello = hello
	f.tc = tc
	f.tcd = tcd
	f.ttl = ttl
	f.dsts = f.dsts[:0]
	return f
}

// release returns the frame to its pool once every reception fired, and the
// flood state once no frame of the flood remains in flight.
func (f *controlFrame) release() {
	f.refs--
	if f.refs <= 0 {
		if fs := f.flood; fs != nil {
			f.flood = nil
			if fs.refs--; fs.refs <= 0 {
				f.nw.floodPool = append(f.nw.floodPool, fs)
			}
		}
		f.buf, f.hello, f.tc, f.tcd = nil, nil, nil, nil
		f.nw.framePool = append(f.nw.framePool, f)
	}
}

// broadcastFrame hands a message (encoded and decoded forms) to the medium
// for delivery to the sender's currently-up physical neighbors: the medium
// decides who receives the frame and after how long. Failed links carry
// nothing regardless of the medium. ttl is the frame's remaining flood
// scope at this transmission (0 = unlimited).
func (nw *Network) broadcastFrame(from int32, buf []byte, hello *olsr.Hello, tc *olsr.TC, tcd *olsr.TCDelta, ttl int32, flood *floodState) {
	nw.dsts = nw.dsts[:0]
	for _, arc := range nw.Phys.Arcs(from) {
		if nw.LinkUp(from, arc.To) {
			nw.dsts = append(nw.dsts, arc.To)
		}
	}
	plan := nw.medium.PlanFrame(from, nw.dsts, len(buf), nw.Engine.Now())
	if len(plan) == 0 {
		return
	}
	if flood == nil && (tc != nil || tcd != nil) {
		// A flood's first transmission: allocate its visited set. The
		// origin's own bit stays unset — its message looping back is a
		// first sighting, exactly as under the per-node windows.
		flood = nw.newFlood()
	}
	uniform := true
	for _, hop := range plan[1:] {
		if hop.Delay != plan[0].Delay {
			uniform = false
			break
		}
	}
	f := nw.newFrame(from, buf, hello, tc, tcd, ttl)
	if flood != nil {
		f.flood = flood
		flood.refs++
	}
	if uniform {
		// One pooled event delivers to the whole reception set, in plan
		// order — the exact order separate equal-time events would run in.
		for _, hop := range plan {
			f.dsts = append(f.dsts, hop.Dst)
		}
		f.refs = 1
		// Uniform plans come from constant-latency media, so their
		// scheduled times are monotone — the scheduler's fixed-delay lane
		// (which degrades to a heap push if they ever are not).
		nw.Engine.Queue.AfterFixed(plan[0].Delay, f)
		return
	}
	f.refs = int32(len(plan))
	for _, hop := range plan {
		var fh *frameHop
		if n := len(nw.hopPool); n > 0 {
			fh = nw.hopPool[n-1]
			nw.hopPool = nw.hopPool[:n-1]
		} else {
			fh = &frameHop{}
		}
		fh.f = f
		fh.to = hop.Dst
		nw.Engine.Queue.After(hop.Delay, fh)
	}
}

// deliverFrame hands one received frame to the receiver's protocol node and
// applies the MPR forwarding rule for TCs.
func (nw *Network) deliverFrame(f *controlFrame, to int32) {
	now := nw.Engine.Now()
	node := nw.Nodes[to]
	switch {
	case f.hello != nil:
		node.HandleHello(f.hello, now)
	case f.tc != nil:
		if f.flood.testAndSet(to) {
			nw.Stats.DupSuppressed++
			return // already handed to this receiver via another relay
		}
		if node.HandleTC(f.tc, int64(nw.Phys.ID(f.from)), now) && f.ttl != 1 {
			// MPR forwarding: re-broadcast from this node, reusing the
			// encoded and decoded forms. A frame received at TTL 1 has
			// exhausted its scope: the handler above still ingested it
			// (dup-marked and topology-applied), it just travels no
			// further.
			nw.relayTC(f, to)
		}
	case f.tcd != nil:
		if f.flood.testAndSet(to) {
			nw.Stats.DupSuppressed++
			return
		}
		if node.HandleTCDelta(f.tcd, int64(nw.Phys.ID(f.from)), now) && f.ttl != 1 {
			nw.relayTC(f, to)
		}
	}
}

// relayTC re-broadcasts a TC-family frame from a relay, decrementing the
// fish-eye scope (an unlimited frame stays unlimited).
func (nw *Network) relayTC(f *controlFrame, to int32) {
	ttl := f.ttl
	if ttl > 0 {
		ttl--
	}
	nw.Stats.TCMessages++
	nw.Stats.TCBytes += uint64(len(f.buf))
	nw.Stats.TCForwarded++
	nw.Stats.TCForwardedBytes += uint64(len(f.buf))
	nw.broadcastFrame(to, f.buf, nil, f.tc, f.tcd, ttl, f.flood)
}

// ANSSets returns every node's current advertised set as graph indices,
// suitable for route.BuildAdvertised.
func (nw *Network) ANSSets() ([][]int32, error) {
	sets := make([][]int32, len(nw.Nodes))
	now := nw.Engine.Now()
	for i, n := range nw.Nodes {
		for _, id := range n.ANS(now) {
			idx, ok := nw.indexOf[id]
			if !ok {
				return nil, fmt.Errorf("sim: node %d advertises unknown id %d", n.ID, id)
			}
			sets[i] = append(sets[i], idx)
		}
	}
	return sets, nil
}

// ControlBytesPerSecond reports the average control traffic rate over the
// elapsed virtual time.
func (nw *Network) ControlBytesPerSecond() float64 {
	secs := nw.Engine.Now().Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(nw.Stats.HelloBytes+nw.Stats.TCBytes) / secs
}
