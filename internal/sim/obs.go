package sim

import "qolsr/internal/obs"

// mediumStats is the optional accounting surface the built-in media expose;
// Instrument reads it when present so custom test media need not care.
type mediumStats interface {
	Stats() MediumStats
}

// Instrument registers the network's whole counter surface — scheduler,
// control plane, data plane, medium, and the per-node rebuild/interning
// totals — on reg as lazy collectors. Nothing is added to any hot path:
// every collector reads plain fields the simulator maintains anyway, and is
// evaluated only when the registry is snapshotted or scraped. A nil
// registry is a no-op, so callers wire unconditionally.
//
// The network is single-goroutine; snapshot between Run calls (the scenario
// engine snapshots after the run drains), not from a concurrent goroutine.
func (nw *Network) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	q := &nw.Engine.Queue
	reg.CounterFunc("qolsr_des_events_scheduled_total", "events booked on the scheduler", q.Scheduled)
	reg.CounterFunc("qolsr_des_events_executed_total", "events processed by the scheduler", func() uint64 { return q.Executed })
	reg.CounterFunc("qolsr_des_fifo_scheduled_total", "events that took the fixed-delay fast lane", func() uint64 { return q.FifoScheduled })
	reg.GaugeFunc("qolsr_des_heap_high_water", "deepest heap occupancy", func() float64 { return float64(q.HeapHighWater) })
	reg.GaugeFunc("qolsr_des_fifo_high_water", "deepest fixed-delay lane occupancy", func() float64 { return float64(q.FifoHighWater) })

	s := &nw.Stats
	reg.CounterFunc("qolsr_ctrl_messages_total", "control messages transmitted", func() uint64 { return s.HelloMessages }, obs.Label{Key: "type", Value: "hello"})
	reg.CounterFunc("qolsr_ctrl_messages_total", "control messages transmitted", func() uint64 { return s.TCMessages }, obs.Label{Key: "type", Value: "tc"})
	reg.CounterFunc("qolsr_ctrl_bytes_total", "control bytes transmitted", func() uint64 { return s.HelloBytes }, obs.Label{Key: "type", Value: "hello"})
	reg.CounterFunc("qolsr_ctrl_bytes_total", "control bytes transmitted", func() uint64 { return s.TCBytes }, obs.Label{Key: "type", Value: "tc"})
	reg.CounterFunc("qolsr_ctrl_tc_total", "TC transmissions by role", func() uint64 { return s.TCOriginated }, obs.Label{Key: "role", Value: "originated"})
	reg.CounterFunc("qolsr_ctrl_tc_total", "TC transmissions by role", func() uint64 { return s.TCForwarded }, obs.Label{Key: "role", Value: "forwarded"})
	reg.CounterFunc("qolsr_ctrl_dup_suppressed_total", "TC deliveries dropped as flood duplicates", func() uint64 { return s.DupSuppressed })

	d := &nw.Data
	reg.CounterFunc("qolsr_data_packets_total", "data packets by outcome", func() uint64 { return d.Sent }, obs.Label{Key: "outcome", Value: "sent"})
	reg.CounterFunc("qolsr_data_packets_total", "data packets by outcome", func() uint64 { return d.Delivered }, obs.Label{Key: "outcome", Value: "delivered"})
	reg.CounterFunc("qolsr_data_packets_total", "data packets by outcome", func() uint64 { return d.NoRoute }, obs.Label{Key: "outcome", Value: "no-route"})
	reg.CounterFunc("qolsr_data_packets_total", "data packets by outcome", func() uint64 { return d.Lost }, obs.Label{Key: "outcome", Value: "medium-loss"})
	reg.CounterFunc("qolsr_data_packets_total", "data packets by outcome", func() uint64 { return d.Expired }, obs.Label{Key: "outcome", Value: "ttl-expired"})
	reg.CounterFunc("qolsr_data_hops_total", "hops traversed by delivered packets", func() uint64 { return d.HopsTotal })
	reg.GaugeFunc("qolsr_data_latency_seconds_total", "summed delivery latency of delivered packets", func() float64 { return d.LatencyTotal.Seconds() })

	if ms, ok := nw.medium.(mediumStats); ok {
		reg.CounterFunc("qolsr_medium_frames_planned_total", "transmissions handed to the medium", func() uint64 { return ms.Stats().FramesPlanned })
		reg.CounterFunc("qolsr_medium_receptions_total", "planned per-receiver deliveries", func() uint64 { return ms.Stats().Receptions })
		reg.CounterFunc("qolsr_medium_receptions_lost_total", "per-receiver losses drawn by the medium", func() uint64 { return ms.Stats().ReceptionsLost })
		reg.CounterFunc("qolsr_medium_frames_stalled_total", "transmissions that queued behind a busy transmitter", func() uint64 { return ms.Stats().FramesStalled })
		reg.GaugeFunc("qolsr_medium_stall_seconds_total", "summed transmit-queue wait", func() float64 { return ms.Stats().StallTime.Seconds() })
	}

	reg.CounterFunc("qolsr_olsr_adv_builds_total", "advertised-set builds by kind", func() uint64 { return nw.RebuildTotals().AdvRefresh }, obs.Label{Key: "kind", Value: "refresh"})
	reg.CounterFunc("qolsr_olsr_adv_builds_total", "advertised-set builds by kind", func() uint64 { return nw.RebuildTotals().AdvChange }, obs.Label{Key: "kind", Value: "change"})
	reg.CounterFunc("qolsr_olsr_adv_shared_total", "advertised-set builds served from the shared-topology intern table", func() uint64 { return nw.RebuildTotals().AdvShared })
	reg.CounterFunc("qolsr_olsr_topo_builds_total", "topology-graph rebuilds", func() uint64 { return nw.RebuildTotals().TopoBuilds })
	reg.CounterFunc("qolsr_olsr_spf_total", "shortest-path recomputations by kind", func() uint64 { return nw.RebuildTotals().SPFFull }, obs.Label{Key: "kind", Value: "full"})
	reg.CounterFunc("qolsr_olsr_spf_total", "shortest-path recomputations by kind", func() uint64 { return nw.RebuildTotals().SPFIncremental }, obs.Label{Key: "kind", Value: "incremental"})
	reg.CounterFunc("qolsr_olsr_dup_hits_total", "duplicate-window hits inside the protocol nodes", func() uint64 { return nw.RebuildTotals().DupHits })
	reg.CounterFunc("qolsr_olsr_delta_resyncs_total", "delta-TC chain breaks forcing a full-TC resync", func() uint64 { return nw.RebuildTotals().DeltaResyncs })
	reg.GaugeFunc("qolsr_olsr_intern_hit_rate", "shared-topology intern hit rate", func() float64 { return nw.RebuildTotals().EpochHitRate() })
}
