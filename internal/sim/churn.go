package sim

import "fmt"

// Link churn support: the medium can take physical links down and bring
// them back, so tests and experiments can watch the protocol expire state
// and reconverge — the MANET behaviour OLSR's soft-state timers exist for.

// FailLink takes the physical link {a,b} down: no further deliveries cross
// it and the endpoints stop measuring it, so their neighbor entries expire
// after the hold time.
func (nw *Network) FailLink(a, b int32) error {
	if err := nw.CheckLink(a, b); err != nil {
		return err
	}
	if nw.down == nil {
		nw.down = make(map[[2]int32]bool)
	}
	nw.down[linkKey(a, b)] = true
	nw.linkGen++
	return nil
}

// RestoreLink brings a failed link back.
func (nw *Network) RestoreLink(a, b int32) error {
	if err := nw.CheckLink(a, b); err != nil {
		return err
	}
	delete(nw.down, linkKey(a, b))
	nw.linkGen++
	return nil
}

// CheckLink validates that {a, b} names an existing physical link, in
// either endpoint order — the shared guard for everything that targets a
// link (churn, medium degradation).
func (nw *Network) CheckLink(a, b int32) error {
	if n := int32(nw.Phys.N()); a < 0 || b < 0 || a >= n || b >= n {
		return fmt.Errorf("sim: node index out of range in link %d-%d (%d nodes)", a, b, n)
	}
	if _, ok := nw.Phys.EdgeBetween(a, b); !ok {
		return fmt.Errorf("sim: no physical link %d-%d", a, b)
	}
	return nil
}

// RestoreAllLinks brings every failed link back, including links whose
// endpoints are momentarily out of range under mobility — the pair is
// usable again whenever the geometry re-forms it. (Restoring only the
// links of the current topology would leave such pairs down forever.)
func (nw *Network) RestoreAllLinks() {
	nw.down = nil
	nw.linkGen++
}

// LinkUp reports whether the physical link {a,b} is currently usable. The
// no-churn fast path skips hashing into the (empty or nil) down set — the
// check runs once per receiver of every frame.
func (nw *Network) LinkUp(a, b int32) bool {
	if len(nw.down) == 0 {
		return true
	}
	return !nw.down[linkKey(a, b)]
}

func linkKey(a, b int32) [2]int32 {
	if a > b {
		a, b = b, a
	}
	return [2]int32{a, b}
}
