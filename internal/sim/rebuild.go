package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"qolsr/internal/olsr"
)

// Parallel route rebuilds.
//
// A protocol node's routing table is a cached artifact of its own soft
// state: Node.Routes touches nothing outside the node (the interned
// advertisement blocks other nodes share are read-only by contract), so the
// tables of any set of nodes can be rebuilt concurrently — the simulator is
// otherwise single-threaded, but the rebuild barrier between event-loop
// phases is embarrassingly parallel. The result is byte-identical at every
// worker count: each node's table is a pure function of that node's state,
// workers only decide which goroutine performs the computation, and errors
// are merged in ascending node order so even the failure surface is
// deterministic.

// RebuildRoutes brings the routing tables of the given nodes (graph
// indices; nil means every node) up to date as of the current virtual time,
// fanning the per-node SPF work across min(workers, nodes) goroutines
// (workers <= 0 means GOMAXPROCS). It returns the number of nodes whose
// table was actually rebuilt (the rest were served from cache) and the
// first error in node order, if any.
//
// Call it only between engine runs — never from inside a firing event.
func (nw *Network) RebuildRoutes(idxs []int32, workers int) (rebuilt int, err error) {
	now := nw.Engine.Now()
	n := len(idxs)
	if idxs == nil {
		n = len(nw.Nodes)
	}
	if n == 0 {
		return 0, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	node := func(i int) *olsr.Node {
		if idxs == nil {
			return nw.Nodes[i]
		}
		return nw.Nodes[idxs[i]]
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			r, e := rebuildOne(node(i), now)
			if e != nil {
				return rebuilt, e
			}
			if r {
				rebuilt++
			}
		}
		return rebuilt, nil
	}
	var (
		wg     sync.WaitGroup
		next   atomic.Int64
		count  atomic.Int64
		errs   = make([]error, n)
		hadErr atomic.Bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				r, e := rebuildOne(node(i), now)
				if e != nil {
					errs[i] = e
					hadErr.Store(true)
					continue
				}
				if r {
					count.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if hadErr.Load() {
		// First error in node order, whatever the interleaving was.
		for _, e := range errs {
			if e != nil {
				return int(count.Load()), e
			}
		}
	}
	return int(count.Load()), nil
}

// rebuildOne refreshes one node's table, reporting whether a rebuild (as
// opposed to a cache hit) happened.
func rebuildOne(nd *olsr.Node, now time.Duration) (bool, error) {
	dirty := nd.RoutesDirty(now)
	_, err := nd.Routes(now)
	return dirty && err == nil, err
}

// RebuildTotals sums the per-node rebuild and interning counters across the
// field, in ascending node order.
func (nw *Network) RebuildTotals() olsr.RebuildStats {
	var t olsr.RebuildStats
	for _, nd := range nw.Nodes {
		s := nd.RebuildStats()
		t.AdvRefresh += s.AdvRefresh
		t.AdvShared += s.AdvShared
		t.AdvChange += s.AdvChange
		t.TopoBuilds += s.TopoBuilds
		t.SPFFull += s.SPFFull
		t.SPFIncremental += s.SPFIncremental
		t.DupHits += s.DupHits
		t.DeltaResyncs += s.DeltaResyncs
	}
	return t
}
