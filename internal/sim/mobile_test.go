package sim

import (
	"math/rand"
	"testing"
	"time"

	"qolsr/internal/geom"
	"qolsr/internal/graph"
	"qolsr/internal/metric"
	"qolsr/internal/olsr"
)

func TestPairWeightStableAndSymmetric(t *testing.T) {
	a := PairWeight(5, 3, 9)
	if a != PairWeight(5, 9, 3) {
		t.Error("pair weight not symmetric")
	}
	if a != PairWeight(5, 3, 9) {
		t.Error("pair weight not deterministic")
	}
	if a < 1 || a > 10 {
		t.Errorf("pair weight %v outside {1..10}", a)
	}
	if PairWeight(5, 3, 9) == PairWeight(6, 3, 9) && PairWeight(5, 1, 2) == PairWeight(6, 1, 2) && PairWeight(5, 4, 7) == PairWeight(6, 4, 7) {
		t.Error("seed has no effect")
	}
}

func TestSetTopologyValidation(t *testing.T) {
	g := graph.New(3)
	e := g.MustAddEdge(0, 1)
	if err := g.SetWeight("bandwidth", e, 2); err != nil {
		t.Fatal(err)
	}
	cfg := olsr.DefaultConfig(metric.Bandwidth())
	nw, err := NewNetwork(g, cfg, NetworkOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.SetTopology(graph.New(4)); err == nil {
		t.Error("node-count change accepted")
	}
	noChannel := graph.New(3)
	noChannel.MustAddEdge(0, 2)
	if err := nw.SetTopology(noChannel); err == nil {
		t.Error("missing channel accepted")
	}
	ok := graph.New(3)
	e2 := ok.MustAddEdge(0, 2)
	if err := ok.SetWeight("bandwidth", e2, 7); err != nil {
		t.Fatal(err)
	}
	if err := nw.SetTopology(ok); err != nil {
		t.Fatalf("valid swap rejected: %v", err)
	}
	if _, found := nw.Phys.EdgeBetween(0, 2); !found {
		t.Error("swap did not take effect")
	}
}

// End-to-end mobility: nodes move, topologies change, and the protocol keeps
// tracking its *current* neighborhood — neighbors learned long ago and moved
// away must be expired, fresh ones must be present.
func TestMobileSimProtocolTracksTopology(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n = 25
	model := geom.Waypoint{
		Field:    geom.Field{Width: 300, Height: 300},
		MinSpeed: 8,
		MaxSpeed: 16,
		Pause:    2 * time.Second,
	}
	initial := make([]geom.Point, n)
	for i := range initial {
		initial[i] = geom.Point{X: rng.Float64() * 300, Y: rng.Float64() * 300}
	}
	cfg := olsr.DefaultConfig(metric.Bandwidth())
	ms, err := NewMobileSim(model, initial, 100, cfg, NetworkOptions{Seed: 7}, 2*time.Second, 99)
	if err != nil {
		t.Fatal(err)
	}
	ms.Start()
	ms.Run(90 * time.Second)
	if ms.Rebuilds < 30 {
		t.Errorf("only %d topology rebuilds in 90s", ms.Rebuilds)
	}

	// Compare each node's HELLO link list with current physical truth:
	// allow lag of a couple hold-times, but demand strong overlap.
	now := ms.NW.Engine.Now()
	matches, total := 0, 0
	for i, node := range ms.NW.Nodes {
		h := node.GenerateHello(now)
		current := map[int64]bool{}
		for _, arc := range ms.NW.Phys.Arcs(int32(i)) {
			current[int64(ms.NW.Phys.ID(arc.To))] = true
		}
		for _, l := range h.Links {
			total++
			if current[l.Neighbor] {
				matches++
			}
		}
	}
	if total == 0 {
		t.Fatal("no links known at all")
	}
	if ratio := float64(matches) / float64(total); ratio < 0.7 {
		t.Errorf("only %.0f%% of known links are physically current", 100*ratio)
	}
}

// Under mobility with no pause and brisk speeds, routing tables keep being
// rebuilt and deliver to current destinations most of the time.
func TestMobileSimRoutingStillWorks(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const n = 20
	model := geom.Waypoint{
		Field:    geom.Field{Width: 250, Height: 250},
		MinSpeed: 5,
		MaxSpeed: 10,
		Pause:    0,
	}
	initial := make([]geom.Point, n)
	for i := range initial {
		initial[i] = geom.Point{X: rng.Float64() * 250, Y: rng.Float64() * 250}
	}
	cfg := olsr.DefaultConfig(metric.Bandwidth())
	ms, err := NewMobileSim(model, initial, 100, cfg, NetworkOptions{Seed: 3}, time.Second, 42)
	if err != nil {
		t.Fatal(err)
	}
	ms.Start()
	ms.Run(60 * time.Second)

	now := ms.NW.Engine.Now()
	reach := graph.Reachable(ms.NW.Phys, 0)
	table, err := ms.NW.Nodes[0].Routes(now)
	if err != nil {
		t.Fatal(err)
	}
	reachable, routed := 0, 0
	for x := 1; x < n; x++ {
		if !reach[x] {
			continue
		}
		reachable++
		if _, ok := table.Lookup(int64(x)); ok {
			routed++
		}
	}
	if reachable == 0 {
		t.Skip("node 0 isolated in this realisation")
	}
	if ratio := float64(routed) / float64(reachable); ratio < 0.6 {
		t.Errorf("routes to only %.0f%% of reachable nodes under mobility", 100*ratio)
	}
}
