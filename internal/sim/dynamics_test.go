package sim

import (
	"testing"
	"time"

	"qolsr/internal/geom"
	"qolsr/internal/metric"
	"qolsr/internal/olsr"
)

// These tests exercise the dataplane together with churn and mobility —
// the combination the scenario engine runs on: packets dropped over freshly
// failed links must hit the NoRoute accounting, and after soft-state expiry
// the protocol must reroute so the dataplane delivers again.

// diamondMobileSim deploys four protocol nodes in a square under a nearly
// static waypoint model (speeds so small the topology never changes within
// the test horizon):
//
//	0 (0,0) — 1 (80,0)
//	|             |
//	2 (0,80) — 3 (80,80)
//
// Radius 100 links the sides but not the 113-unit diagonals, so failing
// link 0-1 leaves the alternate route 0-2-3-1.
func diamondMobileSim(t *testing.T) *MobileSim {
	t.Helper()
	pts := []geom.Point{{X: 0, Y: 0}, {X: 80, Y: 0}, {X: 0, Y: 80}, {X: 80, Y: 80}}
	model := geom.Waypoint{
		Field:    geom.Field{Width: 200, Height: 200},
		MinSpeed: 1e-6,
		MaxSpeed: 2e-6,
		Pause:    time.Hour,
	}
	cfg := olsr.DefaultConfig(metric.Bandwidth())
	ms, err := NewMobileSim(model, pts, 100, cfg, NetworkOptions{Seed: 9}, time.Second, 21)
	if err != nil {
		t.Fatal(err)
	}
	if got := ms.NW.Phys.M(); got != 4 {
		t.Fatalf("diamond has %d links, want 4", got)
	}
	return ms
}

func TestDataplaneNoRouteAccountingAfterChurn(t *testing.T) {
	ms := diamondMobileSim(t)
	nw := ms.NW
	ms.Start()
	ms.Run(25 * time.Second)

	// Converged: 0 -> 1 goes over the direct link.
	var hops int
	nw.SendData(0, 1, func(ok bool, h int, _ time.Duration) {
		if !ok {
			t.Error("converged network failed to deliver 0->1")
		}
		hops = h
	})
	ms.Run(nw.Engine.Now() + time.Second)
	if hops != 1 {
		t.Errorf("direct delivery hops = %d, want 1", hops)
	}
	if nw.Data.Sent != 1 || nw.Data.Delivered != 1 || nw.Data.NoRoute != 0 {
		t.Fatalf("pre-churn stats = %+v", nw.Data)
	}

	// Fail the direct link. The routing tables are still stale, so the
	// immediate next packet dies at the dead hop and must be accounted as
	// NoRoute — not Delivered, not Expired.
	if err := nw.FailLink(0, 1); err != nil {
		t.Fatal(err)
	}
	var delivered bool
	nw.SendData(0, 1, func(ok bool, _ int, _ time.Duration) { delivered = ok })
	ms.Run(nw.Engine.Now() + time.Second)
	if delivered {
		t.Error("packet delivered over a failed link")
	}
	if nw.Data.Sent != 2 || nw.Data.Delivered != 1 {
		t.Errorf("post-churn send/deliver stats = %+v", nw.Data)
	}
	if nw.Data.NoRoute != 1 {
		t.Errorf("NoRoute = %d, want 1 (stats %+v)", nw.Data.NoRoute, nw.Data)
	}
	if nw.Data.Expired != 0 {
		t.Errorf("Expired = %d, want 0", nw.Data.Expired)
	}
}

func TestDataplaneReconvergesAfterChurnUnderMobility(t *testing.T) {
	ms := diamondMobileSim(t)
	nw := ms.NW
	ms.Start()
	ms.Run(25 * time.Second)

	if err := nw.FailLink(0, 1); err != nil {
		t.Fatal(err)
	}
	// Soft state: the stale link expires after the neighbor hold time
	// (6s) and the next HELLO/TC rounds advertise the detour. Run well
	// past both while mobility keeps rebuilding the (static) topology.
	before := ms.Rebuilds
	ms.Run(nw.Engine.Now() + 20*time.Second)
	if ms.Rebuilds <= before {
		t.Error("mobility refresh stopped during churn")
	}

	var delivered bool
	var hops int
	nw.SendData(0, 1, func(ok bool, h int, _ time.Duration) { delivered, hops = ok, h })
	ms.Run(nw.Engine.Now() + time.Second)
	if !delivered {
		t.Fatalf("network never rerouted 0->1 after churn (stats %+v)", nw.Data)
	}
	if hops != 3 {
		t.Errorf("rerouted hops = %d, want 3 (0-2-3-1)", hops)
	}

	// Restore: after fresh HELLOs re-measure the link, the direct route
	// comes back.
	if err := nw.RestoreLink(0, 1); err != nil {
		t.Fatal(err)
	}
	ms.Run(nw.Engine.Now() + 10*time.Second)
	nw.SendData(0, 1, func(ok bool, h int, _ time.Duration) { delivered, hops = ok, h })
	ms.Run(nw.Engine.Now() + time.Second)
	if !delivered || hops != 1 {
		t.Errorf("after restore delivered=%v hops=%d, want direct delivery", delivered, hops)
	}
}

func TestDeliverySweepCountsNoRouteDuringPartition(t *testing.T) {
	ms := diamondMobileSim(t)
	nw := ms.NW
	ms.Start()
	ms.Run(25 * time.Second)

	// Cut node 0 off entirely: both incident links fail.
	if err := nw.FailLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := nw.FailLink(0, 2); err != nil {
		t.Fatal(err)
	}
	noRouteBefore := nw.Data.NoRoute
	// DeliverySweep normalises over physical connectivity, which still
	// includes node 0 (links exist, they are just down): stale routes
	// toward 0 die at the failed hops and land in NoRoute.
	ratio := nw.DeliverySweep(0)
	if ratio == 1 {
		t.Error("sweep to an isolated node reported full delivery")
	}
	if nw.Data.NoRoute == noRouteBefore {
		t.Error("sweep over failed links did not account NoRoute drops")
	}
}
