package sim

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"qolsr/internal/core"
	"qolsr/internal/graph"
	"qolsr/internal/metric"
	"qolsr/internal/mpr"
	"qolsr/internal/netgen"
	"qolsr/internal/olsr"
	"qolsr/internal/route"

	"qolsr/internal/geom"
)

func testNetwork(t *testing.T, phys *graph.Graph, m metric.Metric) *Network {
	t.Helper()
	cfg := olsr.DefaultConfig(m)
	nw, err := NewNetwork(phys, cfg, NetworkOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func smallWorld(t *testing.T, seed int64, degree float64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dep := geom.Deployment{Field: geom.Field{Width: 300, Height: 300}, Radius: 100, Degree: degree}
	g, err := netgen.Build(dep, "bandwidth", metric.DefaultInterval(), rng)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// The central integration test: after enough protocol rounds, every node's
// distributed ANS equals the offline FNBP selection on the true topology.
func TestProtocolConvergesToOfflineSelection(t *testing.T) {
	m := metric.Bandwidth()
	g := smallWorld(t, 11, 8)
	nw := testNetwork(t, g, m)
	nw.Start()
	nw.Run(30 * time.Second)

	w, err := g.Weights(m.Name())
	if err != nil {
		t.Fatal(err)
	}
	sets, err := nw.ANSSets()
	if err != nil {
		t.Fatal(err)
	}
	for u := int32(0); int(u) < g.N(); u++ {
		view := graph.NewLocalView(g, u)
		want, err := core.FNBP{}.Select(view, m, w)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = []int32{}
		}
		got := sets[u]
		if got == nil {
			got = []int32{}
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("node %d: distributed ANS %v != offline %v", u, got, want)
		}
	}
}

// Routing tables computed from flooded TCs must reach every node of the
// connected component with loop-free next hops.
func TestProtocolRoutingReachability(t *testing.T) {
	m := metric.Bandwidth()
	g := smallWorld(t, 13, 8)
	nw := testNetwork(t, g, m)
	nw.Start()
	nw.Run(60 * time.Second)

	now := nw.Engine.Now()
	reach := graph.Reachable(g, 0)
	table, err := nw.Nodes[0].Routes(now)
	if err != nil {
		t.Fatal(err)
	}
	for x := 1; x < g.N(); x++ {
		if !reach[x] {
			continue
		}
		if _, ok := table.Lookup(int64(g.ID(int32(x)))); !ok {
			t.Errorf("node 0 has no route to reachable node %d", x)
		}
	}

	// Hop-by-hop forwarding over per-node routing tables must deliver
	// without loops.
	tables := make([]*olsr.Routes, g.N())
	for i := range nw.Nodes {
		tbl, err := nw.Nodes[i].Routes(now)
		if err != nil {
			t.Fatal(err)
		}
		tables[i] = tbl
	}
	idx := func(id int64) int32 { return g.IndexOf(graph.NodeID(id)) }
	delivered := 0
	for dst := 1; dst < g.N() && dst < 12; dst++ {
		if !reach[dst] {
			continue
		}
		next := func(at, target int32) int32 {
			r, ok := tables[at].Lookup(int64(g.ID(target)))
			if !ok {
				return -1
			}
			return idx(r.NextHop)
		}
		if _, ok := route.Forward(next, 0, int32(dst), g.N()+1); ok {
			delivered++
		} else {
			t.Errorf("forwarding 0 -> %d failed", dst)
		}
	}
	if delivered == 0 {
		t.Error("no destinations delivered")
	}
}

func TestTrafficAccounting(t *testing.T) {
	m := metric.Bandwidth()
	g := smallWorld(t, 17, 6)
	nw := testNetwork(t, g, m)
	nw.Start()
	nw.Run(20 * time.Second)
	if nw.Stats.HelloMessages == 0 || nw.Stats.HelloBytes == 0 {
		t.Error("no hello traffic accounted")
	}
	if nw.Stats.TCOriginated == 0 {
		t.Error("no TCs originated")
	}
	if nw.Stats.TCMessages < nw.Stats.TCOriginated {
		t.Error("forwarded TC count below originated count")
	}
	if nw.ControlBytesPerSecond() <= 0 {
		t.Error("control rate not positive")
	}
}

// TC sizes on the wire scale with the advertised-set size, which ties the
// control-overhead experiment (A4) to Figs. 6-7: QOLSR's bigger sets must
// cost more TC bytes than FNBP's.
func TestTCBytesReflectSelectorSize(t *testing.T) {
	m := metric.Bandwidth()
	g := smallWorld(t, 19, 10)

	run := func(sel core.Selector) uint64 {
		cfg := olsr.DefaultConfig(m)
		cfg.Selector = sel
		nw, err := NewNetwork(g, cfg, NetworkOptions{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		nw.Start()
		nw.Run(40 * time.Second)
		return nw.Stats.TCBytes
	}
	fnbp := run(core.FNBP{})
	full := run(core.FullAdvertise{})
	if fnbp >= full {
		t.Errorf("TC bytes: fnbp=%d >= full=%d", fnbp, full)
	}
}

func TestNewNetworkValidation(t *testing.T) {
	g := graph.New(2) // no weight channel
	cfg := olsr.DefaultConfig(metric.Bandwidth())
	if _, err := NewNetwork(g, cfg, NetworkOptions{}); err == nil {
		t.Error("missing weight channel accepted")
	}
}

// TestTTLScopedRelayAndDupSuppression pins the fish-eye relay semantics on
// a 5-node line 0-1-2-3-4: a TC from node 0 scoped to TTL 3 is relayed by
// 1 and 2, received by 3 at TTL 1 — which must ingest it (3 learns the
// 0-1 link it cannot learn from HELLOs) but not re-flood it, so 4 stays
// beyond the fish-eye boundary. Duplicate suppression operates on (origin,
// seq) regardless of scope: re-sending the same seq unlimited changes
// nothing, while a fresh seq crosses the boundary.
func TestTTLScopedRelayAndDupSuppression(t *testing.T) {
	g := graph.New(5)
	for i := int32(0); i < 4; i++ {
		e := g.MustAddEdge(i, i+1)
		if err := g.SetWeight("bandwidth", e, 5); err != nil {
			t.Fatal(err)
		}
	}
	cfg := olsr.DefaultConfig(metric.Bandwidth())
	nw, err := NewNetwork(g, cfg, NetworkOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// HELLO rounds only (no Start: TC emission is driven by hand below)
	// until 2-hop views and selector state settle.
	for round := 0; round < 4; round++ {
		for i := range nw.Nodes {
			nw.emitHelloNow(i)
		}
		nw.Engine.Run(nw.Engine.Now() + 100*time.Millisecond)
	}
	routeTo0 := func(node int) bool {
		r, err := nw.Nodes[node].Routes(nw.Engine.Now())
		if err != nil {
			t.Fatal(err)
		}
		_, ok := r.Lookup(0)
		return ok
	}
	if routeTo0(3) || routeTo0(4) {
		t.Fatal("3-hop route to 0 exists before any TC")
	}

	tc := nw.Nodes[0].GenerateTC(nw.Engine.Now())
	if tc == nil {
		t.Fatal("node 0 has nothing to advertise")
	}
	// Pin the flood's visited set (the simulator owns duplicate suppression
	// per flood): the pin keeps it out of the pool so the duplicate
	// re-broadcast below provably belongs to the same flood, the way a
	// relayed frame would.
	flood := nw.newFlood()
	flood.refs = 1
	nw.broadcastFrame(0, olsr.MarshalTC(tc), nil, tc, nil, 3, flood)
	nw.Engine.Run(nw.Engine.Now() + time.Second)
	if !routeTo0(3) {
		t.Error("TC received at TTL 1 did not update topology")
	}
	if routeTo0(4) {
		t.Error("TC re-flooded past its TTL scope")
	}
	if fwd := nw.Stats.TCForwarded; fwd != 2 {
		t.Errorf("TCForwarded = %d, want 2 (relays at nodes 1 and 2)", fwd)
	}

	// The same flood at unlimited scope is a duplicate everywhere it already
	// travelled: node 1 drops it and the boundary stands.
	nw.broadcastFrame(0, olsr.MarshalTC(tc), nil, tc, nil, 0, flood)
	nw.Engine.Run(nw.Engine.Now() + time.Second)
	if routeTo0(4) {
		t.Error("duplicate seq crossed the fish-eye boundary")
	}
	if fwd := nw.Stats.TCForwarded; fwd != 2 {
		t.Errorf("TCForwarded = %d after duplicate, want still 2", fwd)
	}

	// Fresh floods at unlimited scope relay all the way: with node 0's next
	// TC (the 0-1 link) and node 1's (the 1-2 link) flooded unscoped,
	// even node 4 completes a route to 0.
	tc0 := nw.Nodes[0].GenerateTC(nw.Engine.Now())
	nw.broadcastFrame(0, olsr.MarshalTC(tc0), nil, tc0, nil, 0, nil)
	tc1 := nw.Nodes[1].GenerateTC(nw.Engine.Now())
	nw.broadcastFrame(1, olsr.MarshalTC(tc1), nil, tc1, nil, 0, nil)
	nw.Engine.Run(nw.Engine.Now() + time.Second)
	if !routeTo0(4) {
		t.Error("fresh unlimited TC did not cross the boundary")
	}
}

// TestDeltaTCNetworkConverges runs the full optimized control plane (delta
// TCs, fish-eye scoping, min-cover flood relays) on a random field and
// checks it reaches the same routing reachability as the classic path,
// with the byte split consistent.
func TestDeltaTCNetworkConverges(t *testing.T) {
	m := metric.Bandwidth()
	g := smallWorld(t, 11, 8)
	cfg := olsr.DefaultConfig(m)
	cfg.DeltaTC = true
	cfg.FisheyeTTLs = olsr.DefaultFisheyeTTLs()
	cfg.FloodRelay = mpr.MinCover
	nw, err := NewNetwork(g, cfg, NetworkOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	nw.Run(60 * time.Second)
	now := nw.Engine.Now()
	// Every node must route to every other (the field is connected).
	for i, n := range nw.Nodes {
		r, err := n.Routes(now)
		if err != nil {
			t.Fatal(err)
		}
		if r.Len() != g.N()-1 {
			t.Fatalf("node %d routes to %d of %d destinations under optimized control plane", i, r.Len(), g.N()-1)
		}
	}
	s := nw.Stats
	if s.TCBytes != s.TCOriginatedBytes+s.TCForwardedBytes {
		t.Errorf("byte split inconsistent: %d != %d + %d", s.TCBytes, s.TCOriginatedBytes, s.TCForwardedBytes)
	}
	if s.TCMessages != s.TCOriginated+s.TCForwarded {
		t.Errorf("message split inconsistent: %d != %d + %d", s.TCMessages, s.TCOriginated, s.TCForwarded)
	}
	if s.TCOriginatedBytes == 0 || s.TCForwardedBytes == 0 {
		t.Error("degenerate byte split")
	}
}
