package sim

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"qolsr/internal/core"
	"qolsr/internal/graph"
	"qolsr/internal/metric"
	"qolsr/internal/netgen"
	"qolsr/internal/olsr"
	"qolsr/internal/route"

	"qolsr/internal/geom"
)

func testNetwork(t *testing.T, phys *graph.Graph, m metric.Metric) *Network {
	t.Helper()
	cfg := olsr.DefaultConfig(m)
	nw, err := NewNetwork(phys, cfg, NetworkOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func smallWorld(t *testing.T, seed int64, degree float64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dep := geom.Deployment{Field: geom.Field{Width: 300, Height: 300}, Radius: 100, Degree: degree}
	g, err := netgen.Build(dep, "bandwidth", metric.DefaultInterval(), rng)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// The central integration test: after enough protocol rounds, every node's
// distributed ANS equals the offline FNBP selection on the true topology.
func TestProtocolConvergesToOfflineSelection(t *testing.T) {
	m := metric.Bandwidth()
	g := smallWorld(t, 11, 8)
	nw := testNetwork(t, g, m)
	nw.Start()
	nw.Run(30 * time.Second)

	w, err := g.Weights(m.Name())
	if err != nil {
		t.Fatal(err)
	}
	sets, err := nw.ANSSets()
	if err != nil {
		t.Fatal(err)
	}
	for u := int32(0); int(u) < g.N(); u++ {
		view := graph.NewLocalView(g, u)
		want, err := core.FNBP{}.Select(view, m, w)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = []int32{}
		}
		got := sets[u]
		if got == nil {
			got = []int32{}
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("node %d: distributed ANS %v != offline %v", u, got, want)
		}
	}
}

// Routing tables computed from flooded TCs must reach every node of the
// connected component with loop-free next hops.
func TestProtocolRoutingReachability(t *testing.T) {
	m := metric.Bandwidth()
	g := smallWorld(t, 13, 8)
	nw := testNetwork(t, g, m)
	nw.Start()
	nw.Run(60 * time.Second)

	now := nw.Engine.Now()
	reach := graph.Reachable(g, 0)
	table, err := nw.Nodes[0].Routes(now)
	if err != nil {
		t.Fatal(err)
	}
	for x := 1; x < g.N(); x++ {
		if !reach[x] {
			continue
		}
		if _, ok := table.Lookup(int64(g.ID(int32(x)))); !ok {
			t.Errorf("node 0 has no route to reachable node %d", x)
		}
	}

	// Hop-by-hop forwarding over per-node routing tables must deliver
	// without loops.
	tables := make([]*olsr.Routes, g.N())
	for i := range nw.Nodes {
		tbl, err := nw.Nodes[i].Routes(now)
		if err != nil {
			t.Fatal(err)
		}
		tables[i] = tbl
	}
	idx := func(id int64) int32 { return g.IndexOf(graph.NodeID(id)) }
	delivered := 0
	for dst := 1; dst < g.N() && dst < 12; dst++ {
		if !reach[dst] {
			continue
		}
		next := func(at, target int32) int32 {
			r, ok := tables[at].Lookup(int64(g.ID(target)))
			if !ok {
				return -1
			}
			return idx(r.NextHop)
		}
		if _, ok := route.Forward(next, 0, int32(dst), g.N()+1); ok {
			delivered++
		} else {
			t.Errorf("forwarding 0 -> %d failed", dst)
		}
	}
	if delivered == 0 {
		t.Error("no destinations delivered")
	}
}

func TestTrafficAccounting(t *testing.T) {
	m := metric.Bandwidth()
	g := smallWorld(t, 17, 6)
	nw := testNetwork(t, g, m)
	nw.Start()
	nw.Run(20 * time.Second)
	if nw.Stats.HelloMessages == 0 || nw.Stats.HelloBytes == 0 {
		t.Error("no hello traffic accounted")
	}
	if nw.Stats.TCOriginated == 0 {
		t.Error("no TCs originated")
	}
	if nw.Stats.TCMessages < nw.Stats.TCOriginated {
		t.Error("forwarded TC count below originated count")
	}
	if nw.ControlBytesPerSecond() <= 0 {
		t.Error("control rate not positive")
	}
}

// TC sizes on the wire scale with the advertised-set size, which ties the
// control-overhead experiment (A4) to Figs. 6-7: QOLSR's bigger sets must
// cost more TC bytes than FNBP's.
func TestTCBytesReflectSelectorSize(t *testing.T) {
	m := metric.Bandwidth()
	g := smallWorld(t, 19, 10)

	run := func(sel core.Selector) uint64 {
		cfg := olsr.DefaultConfig(m)
		cfg.Selector = sel
		nw, err := NewNetwork(g, cfg, NetworkOptions{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		nw.Start()
		nw.Run(40 * time.Second)
		return nw.Stats.TCBytes
	}
	fnbp := run(core.FNBP{})
	full := run(core.FullAdvertise{})
	if fnbp >= full {
		t.Errorf("TC bytes: fnbp=%d >= full=%d", fnbp, full)
	}
}

func TestNewNetworkValidation(t *testing.T) {
	g := graph.New(2) // no weight channel
	cfg := olsr.DefaultConfig(metric.Bandwidth())
	if _, err := NewNetwork(g, cfg, NetworkOptions{}); err == nil {
		t.Error("missing weight channel accepted")
	}
}
