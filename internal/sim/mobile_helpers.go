package sim

import (
	"math/rand"

	"qolsr/internal/metric"
)

func randFromSeed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// weightLawForEmpty keeps the weight channel present on edgeless snapshots.
func weightLawForEmpty() metric.Interval {
	return metric.DefaultInterval()
}
