package sim

import (
	"testing"
	"time"

	"qolsr/internal/metric"
	"qolsr/internal/obs"
	"qolsr/internal/olsr"
)

// Instrument must expose the scheduler, control-plane, data-plane, medium
// and rebuild counters as live collectors: running the network moves the
// snapshot values.
func TestNetworkInstrument(t *testing.T) {
	nw := testNetwork(t, smallWorld(t, 11, 8), metric.Bandwidth())
	reg := obs.New()
	nw.Instrument(reg)
	nw.Start()
	nw.Run(30 * time.Second)
	nw.DeliverySweep(0)

	vals := map[string]float64{}
	for _, m := range reg.Snapshot().Metrics {
		key := m.Name
		for _, l := range m.Labels {
			key += "/" + l.Value
		}
		vals[key] = m.Value
	}
	for _, want := range []string{
		"qolsr_des_events_scheduled_total",
		"qolsr_des_events_executed_total",
		"qolsr_des_heap_high_water",
		"qolsr_ctrl_messages_total/hello",
		"qolsr_ctrl_messages_total/tc",
		"qolsr_ctrl_dup_suppressed_total",
		"qolsr_data_packets_total/sent",
		"qolsr_data_packets_total/delivered",
		"qolsr_medium_frames_planned_total",
		"qolsr_olsr_spf_total/full",
	} {
		if vals[want] <= 0 {
			t.Errorf("%s = %v, want > 0 after a converged run", want, vals[want])
		}
	}
	if vals["qolsr_des_events_scheduled_total"] < vals["qolsr_des_events_executed_total"] {
		t.Errorf("scheduled %v < executed %v", vals["qolsr_des_events_scheduled_total"], vals["qolsr_des_events_executed_total"])
	}

	// Instrumenting must be a pure read layer: a nil registry is a no-op.
	nw.Instrument(nil)
}

// A traced packet over the lossy medium must record one hop per traversal
// with the transmit-queue wait, and finish with a terminal outcome event.
func TestTracedPacketOverLossyMedium(t *testing.T) {
	g := smallWorld(t, 11, 8)
	cfg := olsr.DefaultConfig(metric.Bandwidth())
	nw, err := NewNetwork(g, cfg, NetworkOptions{
		Seed:   5,
		Medium: NewLossyMedium(LossyConfig{Seed: 9}),
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.Tracer = obs.NewTracer(1, 1, 0) // trace everything
	nw.Start()
	nw.Run(30 * time.Second)

	src, dst := int32(0), int32(g.N()-1)
	pt := nw.Tracer.Start(0, 0)
	nw.SendDataTraced(src, dst, DataPacketBytes, nil, 0, pt)
	// Drain the in-flight packet.
	nw.Run(nw.Engine.Now() + time.Duration(DefaultDataTTL+1)*nw.HopDelayBound())

	ev := nw.Tracer.Events()
	if len(ev) == 0 {
		t.Fatal("traced packet produced no events")
	}
	last := ev[len(ev)-1]
	if last.Phase != "i" {
		t.Fatalf("last event phase %q, want terminal instant", last.Phase)
	}
	switch last.Name {
	case "delivered", "no-route", "ttl-expired", "medium-loss":
	default:
		t.Fatalf("unexpected outcome %q", last.Name)
	}
	for _, e := range ev[:len(ev)-1] {
		if e.Phase != "X" {
			t.Errorf("hop event phase %q, want X", e.Phase)
		}
	}
}

// The medium's accounting must move when frames are planned and stall when
// the transmitter is busy.
func TestLossyMediumStats(t *testing.T) {
	g := smallWorld(t, 11, 8)
	cfg := olsr.DefaultConfig(metric.Bandwidth())
	lm := NewLossyMedium(LossyConfig{Seed: 9, Loss: 0.3})
	nw, err := NewNetwork(g, cfg, NetworkOptions{Seed: 5, Medium: lm})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	nw.Run(20 * time.Second)
	st := lm.Stats()
	if st.FramesPlanned == 0 || st.Receptions == 0 {
		t.Fatalf("no frames accounted: %+v", st)
	}
	if st.ReceptionsLost == 0 {
		t.Fatalf("30%% loss drew no losses: %+v", st)
	}
}
