package sim

import (
	"math"
	"testing"
	"time"

	"qolsr/internal/graph"
	"qolsr/internal/metric"
	"qolsr/internal/olsr"
)

// statsOf runs a fresh network over g for simTime and returns its traffic
// and data accounting plus a delivery sweep to node 0.
func statsOf(t *testing.T, opts NetworkOptions, simTime time.Duration) (TrafficStats, DataStats, float64) {
	t.Helper()
	g := smallWorld(t, 21, 8)
	cfg := olsr.DefaultConfig(metric.Bandwidth())
	nw, err := NewNetwork(g, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	nw.Run(simTime)
	delivery := nw.DeliverySweep(0)
	return nw.Stats, nw.Data, delivery
}

// TestIdealMediumIsTheDefault locks the refactor's bit-identity contract: a
// network built with a nil medium and one built with an explicit
// IdealMedium must produce identical traffic, data accounting and delivery.
func TestIdealMediumIsTheDefault(t *testing.T) {
	s1, d1, dl1 := statsOf(t, NetworkOptions{Seed: 5}, 30*time.Second)
	s2, d2, dl2 := statsOf(t, NetworkOptions{Seed: 5, Medium: NewIdealMedium(0)}, 30*time.Second)
	if s1 != s2 {
		t.Errorf("traffic stats differ: nil medium %+v, explicit ideal %+v", s1, s2)
	}
	if d1 != d2 {
		t.Errorf("data stats differ: nil medium %+v, explicit ideal %+v", d1, d2)
	}
	if dl1 != dl2 {
		t.Errorf("delivery differs: %g vs %g", dl1, dl2)
	}
	if d1.Lost != 0 {
		t.Errorf("ideal medium lost %d data packets", d1.Lost)
	}
}

// TestLossyMediumDeterminism locks the keyed-draw design: the same seed
// must reproduce the same simulation bit for bit, and a different medium
// seed must perturb it.
func TestLossyMediumDeterminism(t *testing.T) {
	run := func(seed int64) (TrafficStats, DataStats, float64) {
		return statsOf(t, NetworkOptions{
			Seed:   5,
			Medium: NewLossyMedium(LossyConfig{Loss: 0.2, Seed: seed}),
		}, 30*time.Second)
	}
	s1, d1, dl1 := run(9)
	s2, d2, dl2 := run(9)
	if s1 != s2 || d1 != d2 || dl1 != dl2 {
		t.Errorf("same lossy seed diverged: %+v/%+v/%g vs %+v/%+v/%g", s1, d1, dl1, s2, d2, dl2)
	}
	s3, _, _ := run(10)
	if s1 == s3 {
		t.Error("different lossy seeds produced identical traffic stats")
	}
}

// TestLossyMediumDegradesDelivery checks the loss knob has the obvious
// monotone effect on the data plane, and that heavy loss also suppresses
// control traffic (fewer HELLOs survive, fewer links form).
func TestLossyMediumDegradesDelivery(t *testing.T) {
	_, dNone, dlNone := statsOf(t, NetworkOptions{Seed: 5}, 30*time.Second)
	_, dLossy, dlLossy := statsOf(t, NetworkOptions{
		Seed:   5,
		Medium: NewLossyMedium(LossyConfig{Loss: 0.5, Seed: 3}),
	}, 30*time.Second)
	if dlLossy >= dlNone {
		t.Errorf("delivery under 50%% loss (%g) not below ideal (%g)", dlLossy, dlNone)
	}
	if dLossy.Lost == 0 && dLossy.NoRoute <= dNone.NoRoute {
		t.Errorf("lossy run shows no medium effect: %+v vs ideal %+v", dLossy, dNone)
	}
}

// TestLossyMediumPerLinkOverride: a single fully-degraded link behaves like
// a failed link for frames while other links keep working.
func TestLossyMediumPerLinkOverride(t *testing.T) {
	lm := NewLossyMedium(LossyConfig{Seed: 1})
	g := smallWorld(t, 21, 8)
	cfg := olsr.DefaultConfig(metric.Bandwidth())
	nw, err := NewNetwork(g, cfg, NetworkOptions{Seed: 5, Medium: lm})
	if err != nil {
		t.Fatal(err)
	}
	a, b := int32(0), nw.Phys.Arcs(0)[0].To
	lm.SetLinkLoss(b, a, 1.5) // reversed order + clamped to maxPER
	if per := lm.LinkPER(a, b); per != maxPER {
		t.Errorf("LinkPER(a,b) = %g, want clamp %g", per, maxPER)
	}
	if per := lm.LinkPER(b, a); per != maxPER {
		t.Errorf("LinkPER(b,a) = %g, want clamp %g", per, maxPER)
	}
	lm.SetLinkLoss(a, b, -1) // clear
	if per := lm.LinkPER(a, b); per != 0 {
		t.Errorf("cleared LinkPER = %g, want base 0", per)
	}
	lm.SetBaseLoss(0.25)
	if per := lm.LinkPER(a, b); per != 0.25 {
		t.Errorf("LinkPER after SetBaseLoss = %g, want 0.25", per)
	}
}

// TestLossyMediumQueueing: two back-to-back frames from one sender must
// serialize — the second waits for the first's transmission to finish.
func TestLossyMediumQueueing(t *testing.T) {
	lm := NewLossyMedium(LossyConfig{Jitter: -1, PropDelay: time.Millisecond, Seed: 1})
	g := smallWorld(t, 21, 8)
	cfg := olsr.DefaultConfig(metric.Bandwidth())
	nw, err := NewNetwork(g, cfg, NetworkOptions{Seed: 5, Medium: lm})
	if err != nil {
		t.Fatal(err)
	}
	_ = nw
	dst := nw.Phys.Arcs(0)[0].To
	one := []int32{dst}
	p1 := lm.PlanFrame(0, one, 1000, 0)
	if len(p1) != 1 {
		t.Fatalf("first frame lost with zero loss: %v", p1)
	}
	first := p1[0].Delay
	p2 := lm.PlanFrame(0, one, 1000, 0)
	if len(p2) != 1 {
		t.Fatalf("second frame lost with zero loss: %v", p2)
	}
	// The second frame queues behind the first's serialization, which for
	// a 1000-byte frame is strictly positive.
	if p2[0].Delay <= first {
		t.Errorf("no queueing: first delay %v, second %v", first, p2[0].Delay)
	}
	if lm.HopDelayBound() <= time.Millisecond {
		t.Errorf("HopDelayBound %v not above propagation delay", lm.HopDelayBound())
	}
}

// TestMediumByName covers the registry.
func TestMediumByName(t *testing.T) {
	for _, name := range MediumNames() {
		m, err := MediumByName(name, LossyConfig{})
		if err != nil {
			t.Fatalf("MediumByName(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("MediumByName(%q).Name() = %q", name, m.Name())
		}
	}
	if m, err := MediumByName("", LossyConfig{}); err != nil || m.Name() != "ideal" {
		t.Errorf("empty name: %v, %v", m, err)
	}
	if _, err := MediumByName("nope", LossyConfig{}); err == nil {
		t.Error("unknown medium accepted")
	}
}

// TestETXEstimatorConvergence runs measured-QoS link sensing over a lossy
// radio with a fixed loss rate and checks the windowed estimates converge
// to the configured rate: delivery ratio ~ (1-p) per direction, link
// weight ~ ETX = 1/(1-p)^2 under an additive metric.
func TestETXEstimatorConvergence(t *testing.T) {
	const loss = 0.25
	g := graph.New(2)
	e := g.MustAddEdge(0, 1)
	if err := g.SetWeight("delay", e, 1); err != nil {
		t.Fatal(err)
	}
	cfg := olsr.DefaultConfig(metric.Delay())
	cfg.HelloInterval = time.Second
	cfg.NeighborHoldTime = 8 * time.Second
	cfg.MeasuredQoS = true
	cfg.LQWindow = 64
	nw, err := NewNetwork(g, cfg, NetworkOptions{
		Seed:   5,
		Medium: NewLossyMedium(LossyConfig{Loss: loss, Seed: 2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	nw.Run(300 * time.Second)
	now := nw.Engine.Now()

	wantRatio := 1 - loss
	type dir struct {
		node     int
		neighbor int64
	}
	for _, d := range []dir{{0, int64(g.ID(1))}, {1, int64(g.ID(0))}} {
		ratio, ok := nw.Nodes[d.node].LinkQuality(d.neighbor, now)
		if !ok {
			t.Fatalf("node %d has no quality estimate for %d", d.node, d.neighbor)
		}
		if math.Abs(ratio-wantRatio) > 0.15 {
			t.Errorf("node %d measured ratio %g, want ~%g", d.node, ratio, wantRatio)
		}
		w, ok := nw.Nodes[d.node].LinkWeight(d.neighbor, now)
		if !ok {
			t.Fatalf("node %d has no measured link weight for %d", d.node, d.neighbor)
		}
		lo := 1 / ((wantRatio + 0.15) * (wantRatio + 0.15))
		hi := 1 / ((wantRatio - 0.15) * (wantRatio - 0.15))
		if w < lo || w > hi {
			t.Errorf("node %d measured ETX %g outside [%g, %g]", d.node, w, lo, hi)
		}
	}
}
