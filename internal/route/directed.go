package route

import (
	"fmt"

	"qolsr/internal/graph"
)

// DirectedAdvertised is the stricter reading of TC-based reachability used
// in the paper's Fig. 4 discussion: node n advertising neighbor a creates a
// usable directed hop n→a, and a packet reaches its destination when it
// arrives at any node that is a *physical* neighbor of the destination
// (final local delivery from HELLO knowledge). Under the undirected reading
// the destination's own TC would always advertise its access links,
// masking the pathology the loop-fix rule exists for; under this one, a
// destination whose access nodes are selected by nobody is unreachable —
// exactly "E becomes unreachable since node D is the only access to E: D
// has been selected by no node".
type DirectedAdvertised struct {
	phys *graph.Graph
	out  [][]int32
}

// BuildDirectedAdvertised assembles the directed advertised topology from
// per-node advertised sets.
func BuildDirectedAdvertised(phys *graph.Graph, sets [][]int32) (*DirectedAdvertised, error) {
	if len(sets) != phys.N() {
		return nil, fmt.Errorf("route: %d advertised sets for %d nodes", len(sets), phys.N())
	}
	d := &DirectedAdvertised{phys: phys, out: make([][]int32, phys.N())}
	for x := int32(0); int(x) < phys.N(); x++ {
		for _, a := range sets[x] {
			if _, ok := phys.EdgeBetween(x, a); !ok {
				return nil, fmt.Errorf("route: node %d advertises non-neighbor %d", x, a)
			}
			d.out[x] = append(d.out[x], a)
		}
	}
	return d, nil
}

// reachSet returns the nodes reachable from src over directed advertised
// hops (src included).
func (d *DirectedAdvertised) reachSet(src int32) []bool {
	seen := make([]bool, d.phys.N())
	seen[src] = true
	queue := []int32{src}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, y := range d.out[x] {
			if !seen[y] {
				seen[y] = true
				queue = append(queue, y)
			}
		}
	}
	return seen
}

// deliveredFrom reports delivery given src's directed reach set: dst is
// reached directly, or some reached node is a physical neighbor of dst.
func (d *DirectedAdvertised) deliveredFrom(reach []bool, dst int32) bool {
	if reach[dst] {
		return true
	}
	for _, arc := range d.phys.Arcs(dst) {
		if reach[arc.To] {
			return true
		}
	}
	return false
}

// Delivers reports whether a packet from src can reach dst: following
// directed advertised hops from src until some visited node is a physical
// neighbor of dst (or dst itself).
func (d *DirectedAdvertised) Delivers(src, dst int32) bool {
	if src == dst {
		return true
	}
	return d.deliveredFrom(d.reachSet(src), dst)
}

// DeliveryRatio evaluates delivery over every ordered pair connected in the
// physical graph and returns the delivered fraction. One directed BFS per
// source, then O(degree) per destination.
func (d *DirectedAdvertised) DeliveryRatio() float64 {
	var delivered, total int
	for s := int32(0); int(s) < d.phys.N(); s++ {
		physReach := graph.Reachable(d.phys, s)
		reach := d.reachSet(s)
		for t := int32(0); int(t) < d.phys.N(); t++ {
			if s == t || !physReach[t] {
				continue
			}
			total++
			if d.deliveredFrom(reach, t) {
				delivered++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(delivered) / float64(total)
}
