// Package route evaluates routing over advertised topologies: it
// materialises the network-wide graph implied by every node's advertised
// neighbor set, computes the QoS value a protocol achieves between a source
// and a destination, and compares it against the centralized optimum — the
// paper's bandwidth/delay overhead metrics (Sec. IV-A):
//
//	bandwidth overhead = (b* − b) / b*        delay overhead = (d − d*) / d*
//
// where starred values come from Dijkstra on the full physical graph.
package route

import (
	"fmt"

	"qolsr/internal/graph"
	"qolsr/internal/metric"
)

// Policy selects how a protocol routes over its advertised topology.
type Policy int

const (
	// QoSOptimal routes on the best QoS path available in the advertised
	// topology, the behaviour of FNBP and topology filtering (both
	// explicitly allow paths longer than the hop-count minimum).
	QoSOptimal Policy = iota + 1
	// MinHopThenQoS routes on minimum-hop paths, breaking ties by QoS —
	// the original QOLSR behaviour the paper describes ("does not allow
	// to choose a path longer than two hops in order to maintain
	// shortest paths in terms of number of hops").
	MinHopThenQoS
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case QoSOptimal:
		return "qos-optimal"
	case MinHopThenQoS:
		return "minhop-then-qos"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// PolicyByName resolves a policy's String form, so scenarios can be
// composed from configuration ("qos-optimal" or "minhop-then-qos").
func PolicyByName(name string) (Policy, error) {
	for _, p := range []Policy{QoSOptimal, MinHopThenQoS} {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("route: unknown policy %q (have %s, %s)", name, QoSOptimal, MinHopThenQoS)
}

// PolicyNames lists every policy's string form, in declaration order.
func PolicyNames() []string {
	return []string{QoSOptimal.String(), MinHopThenQoS.String()}
}

// BuildAdvertised returns the advertised topology: a graph over the same
// node set whose edges are exactly the links some node advertises (node n
// advertising neighbor a contributes the undirected link {n,a}), carrying
// the physical weights of the named channel. sets[x] lists the advertised
// neighbors of node x.
func BuildAdvertised(phys *graph.Graph, sets [][]int32, channel string) (*graph.Graph, error) {
	if len(sets) != phys.N() {
		return nil, fmt.Errorf("route: %d advertised sets for %d nodes", len(sets), phys.N())
	}
	w, err := phys.Weights(channel)
	if err != nil {
		return nil, err
	}
	ids := make([]graph.NodeID, phys.N())
	for i := range ids {
		ids[i] = phys.ID(int32(i))
	}
	adv, err := graph.NewWithIDs(ids)
	if err != nil {
		return nil, err
	}
	for x := int32(0); int(x) < phys.N(); x++ {
		for _, a := range sets[x] {
			e, ok := phys.EdgeBetween(x, a)
			if !ok {
				return nil, fmt.Errorf("route: node %d advertises non-neighbor %d", x, a)
			}
			if _, dup := adv.EdgeBetween(x, a); dup {
				continue
			}
			ne, err := adv.AddEdge(x, a)
			if err != nil {
				return nil, err
			}
			if err := adv.SetWeight(channel, ne, w[e]); err != nil {
				return nil, err
			}
		}
	}
	return adv, nil
}

// WithLocalLinks returns a copy of adv augmented with every physical link
// incident to src (ablation A2: in OLSR a source also knows its own links
// from HELLO exchange, whether advertised or not).
func WithLocalLinks(adv, phys *graph.Graph, channel string, src int32) (*graph.Graph, error) {
	w, err := phys.Weights(channel)
	if err != nil {
		return nil, err
	}
	out := adv.Clone()
	for _, arc := range phys.Arcs(src) {
		if _, ok := out.EdgeBetween(src, arc.To); ok {
			continue
		}
		ne, err := out.AddEdge(src, arc.To)
		if err != nil {
			return nil, err
		}
		if err := out.SetWeight(channel, ne, w[arc.Edge]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// PairEval is the outcome of routing one (source, destination) pair.
type PairEval struct {
	// Delivered reports whether the advertised topology contains any
	// route at all.
	Delivered bool
	// Achieved is the QoS value of the path the protocol uses (undefined
	// when not delivered).
	Achieved float64
	// Optimal is the centralized optimum on the physical graph.
	Optimal float64
	// Overhead is the paper's relative regret, 0 when the protocol
	// matches the optimum (undefined when not delivered).
	Overhead float64
	// Hops is the hop count of the used path (0 when not delivered).
	Hops int
}

// EvaluatePair routes src -> dst over the advertised topology under the
// given policy and compares against the centralized optimum on phys. It
// returns an error when dst is unreachable even in the physical graph (the
// caller should resample such pairs, as the paper's simulator draws
// connected pairs).
func EvaluatePair(phys, adv *graph.Graph, m metric.Metric, channel string, src, dst int32, policy Policy) (PairEval, error) {
	w, err := phys.Weights(channel)
	if err != nil {
		return PairEval{}, err
	}
	opt := graph.Dijkstra(phys, m, w, src, nil, -1)
	if !opt.Reachable(dst) {
		return PairEval{}, fmt.Errorf("route: pair (%d,%d) disconnected in the physical graph", src, dst)
	}
	ev := PairEval{Optimal: opt.Dist[dst]}

	switch policy {
	case QoSOptimal:
		aw, err := adv.Weights(channel)
		if err != nil {
			return PairEval{}, err
		}
		sp := graph.Dijkstra(adv, m, aw, src, nil, -1)
		if !sp.Reachable(dst) {
			return ev, nil
		}
		ev.Delivered = true
		ev.Achieved = sp.Dist[dst]
		ev.Hops = len(sp.PathTo(dst)) - 1
	case MinHopThenQoS:
		lex := metric.Lexicographic{
			PrimaryMetric:   metric.Hop(),
			SecondaryMetric: m,
			PrimaryWeight:   channel,
			SecondaryWeight: channel,
		}
		gs, err := graph.DijkstraGeneric[metric.LexCost](adv, lex, src, nil, -1)
		if err != nil {
			return PairEval{}, err
		}
		if !gs.Reached[dst] {
			return ev, nil
		}
		ev.Delivered = true
		ev.Achieved = gs.Cost[dst].Secondary
		ev.Hops = int(gs.Cost[dst].Primary)
	default:
		return PairEval{}, fmt.Errorf("route: unknown policy %v", policy)
	}

	ev.Overhead = Overhead(m, ev.Achieved, ev.Optimal)
	return ev, nil
}

// Overhead computes the paper's relative regret for either metric kind:
// (opt − achieved)/opt for concave metrics (bandwidth that should have been
// used), (achieved − opt)/opt for additive ones (delay that should have been
// saved).
func Overhead(m metric.Metric, achieved, optimal float64) float64 {
	switch m.Kind() {
	case metric.Concave:
		if optimal == 0 {
			return 0
		}
		return (optimal - achieved) / optimal
	default:
		if optimal == 0 {
			return 0
		}
		return (achieved - optimal) / optimal
	}
}

// Forward walks hop-by-hop next-hop decisions from src to dst, up to
// maxHops. next returns the forwarder's choice at each node (-1 when it has
// no route). It returns the traversed path and whether dst was reached;
// loops are cut off by maxHops.
func Forward(next func(at, dst int32) int32, src, dst int32, maxHops int) ([]int32, bool) {
	path := []int32{src}
	at := src
	for hop := 0; hop < maxHops; hop++ {
		if at == dst {
			return path, true
		}
		nx := next(at, dst)
		if nx < 0 {
			return path, false
		}
		at = nx
		path = append(path, at)
	}
	return path, at == dst
}
