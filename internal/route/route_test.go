package route

import (
	"math"
	"testing"

	"qolsr/internal/graph"
	"qolsr/internal/metric"
	"qolsr/internal/paperex"
)

// figure1Sets returns per-node advertised sets for the Fig. 1 ring under
// the original OLSR/QOLSR behaviour: in the 6-cycle every node must select
// both neighbors (each uniquely covers a 2-hop neighbor), so the advertised
// topology is the full ring.
func figure1Sets(f *paperex.Fixture) [][]int32 {
	sets := make([][]int32, f.G.N())
	for x := int32(0); int(x) < f.G.N(); x++ {
		for _, arc := range f.G.Arcs(x) {
			sets[x] = append(sets[x], arc.To)
		}
	}
	return sets
}

// TestFigure1QOLSRMissesWidestPath reproduces the paper's Fig. 1 claim: the
// QOLSR route v1->v3 goes through v2 at bandwidth 6 although the widest path
// v1-v6-v5-v4-v3 of bandwidth 10 exists; an unrestricted QoS-optimal policy
// over the same links finds 10.
func TestFigure1QOLSRMissesWidestPath(t *testing.T) {
	f := paperex.Figure1()
	m := metric.Bandwidth()
	adv, err := BuildAdvertised(f.G, figure1Sets(f), paperex.Channel)
	if err != nil {
		t.Fatal(err)
	}
	v1, v3 := f.Node("v1"), f.Node("v3")

	qolsr, err := EvaluatePair(f.G, adv, m, paperex.Channel, v1, v3, MinHopThenQoS)
	if err != nil {
		t.Fatal(err)
	}
	if !qolsr.Delivered {
		t.Fatal("QOLSR did not deliver")
	}
	if qolsr.Achieved != 6 || qolsr.Hops != 2 {
		t.Errorf("QOLSR route = bw %v over %d hops, want 6 over 2 (via v2)", qolsr.Achieved, qolsr.Hops)
	}
	if qolsr.Optimal != 10 {
		t.Errorf("optimal = %v, want 10", qolsr.Optimal)
	}
	if math.Abs(qolsr.Overhead-0.4) > 1e-12 {
		t.Errorf("overhead = %v, want 0.4", qolsr.Overhead)
	}

	free, err := EvaluatePair(f.G, adv, m, paperex.Channel, v1, v3, QoSOptimal)
	if err != nil {
		t.Fatal(err)
	}
	if free.Achieved != 10 || free.Overhead != 0 || free.Hops != 4 {
		t.Errorf("QoS-optimal route = bw %v over %d hops, want 10 over 4", free.Achieved, free.Hops)
	}
}

func TestBuildAdvertisedDeduplicatesAndValidates(t *testing.T) {
	g := graph.New(3)
	e01 := g.MustAddEdge(0, 1)
	e12 := g.MustAddEdge(1, 2)
	if err := g.SetWeight("delay", e01, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.SetWeight("delay", e12, 2); err != nil {
		t.Fatal(err)
	}
	// 0 and 1 both advertise each other: one edge results.
	adv, err := BuildAdvertised(g, [][]int32{{1}, {0, 2}, {}}, "delay")
	if err != nil {
		t.Fatal(err)
	}
	if adv.M() != 2 {
		t.Errorf("advertised edges = %d, want 2", adv.M())
	}
	aw, _ := adv.Weights("delay")
	e, ok := adv.EdgeBetween(1, 2)
	if !ok || aw[e] != 2 {
		t.Error("advertised weight not copied")
	}
	// Advertising a non-neighbor is an error.
	if _, err := BuildAdvertised(g, [][]int32{{2}, {}, {}}, "delay"); err == nil {
		t.Error("non-neighbor advertisement accepted")
	}
	// Set count must match node count.
	if _, err := BuildAdvertised(g, [][]int32{{}}, "delay"); err == nil {
		t.Error("mismatched set count accepted")
	}
	if _, err := BuildAdvertised(g, [][]int32{{}, {}, {}}, "nope"); err == nil {
		t.Error("unknown channel accepted")
	}
}

func TestWithLocalLinks(t *testing.T) {
	g := graph.New(3)
	for _, ab := range [][2]int32{{0, 1}, {1, 2}} {
		e := g.MustAddEdge(ab[0], ab[1])
		if err := g.SetWeight("delay", e, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing advertised: 2 unreachable from 0.
	adv, err := BuildAdvertised(g, [][]int32{{}, {2}, {}}, "delay")
	if err != nil {
		t.Fatal(err)
	}
	ev, err := EvaluatePair(g, adv, metric.Delay(), "delay", 0, 2, QoSOptimal)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Delivered {
		t.Fatal("unexpected delivery without local links")
	}
	aug, err := WithLocalLinks(adv, g, "delay", 0)
	if err != nil {
		t.Fatal(err)
	}
	ev, err = EvaluatePair(g, aug, metric.Delay(), "delay", 0, 2, QoSOptimal)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Delivered || ev.Achieved != 2 {
		t.Errorf("with local links: delivered=%v achieved=%v, want true/2", ev.Delivered, ev.Achieved)
	}
	// Augmentation must not mutate the original advertised graph.
	if adv.M() != 1 {
		t.Errorf("original advertised graph mutated: M=%d", adv.M())
	}
}

func TestEvaluatePairDisconnectedPhysical(t *testing.T) {
	g := graph.New(2) // no edges at all
	adv, err := BuildAdvertised(g, [][]int32{{}, {}}, "delay")
	if err == nil {
		// Channel does not exist on an edgeless graph; create it first.
		_ = adv
	}
	g2 := graph.New(3)
	e := g2.MustAddEdge(0, 1)
	if err := g2.SetWeight("delay", e, 1); err != nil {
		t.Fatal(err)
	}
	adv2, err := BuildAdvertised(g2, [][]int32{{1}, {}, {}}, "delay")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvaluatePair(g2, adv2, metric.Delay(), "delay", 0, 2, QoSOptimal); err == nil {
		t.Error("physically disconnected pair accepted")
	}
}

func TestOverheadFormulas(t *testing.T) {
	// Bandwidth: (b*-b)/b*.
	if got := Overhead(metric.Bandwidth(), 6, 10); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("bandwidth overhead = %v, want 0.4", got)
	}
	if got := Overhead(metric.Bandwidth(), 10, 10); got != 0 {
		t.Errorf("optimal bandwidth overhead = %v, want 0", got)
	}
	// Delay: (d-d*)/d*.
	if got := Overhead(metric.Delay(), 12, 10); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("delay overhead = %v, want 0.2", got)
	}
	if got := Overhead(metric.Delay(), 10, 10); got != 0 {
		t.Errorf("optimal delay overhead = %v, want 0", got)
	}
	if got := Overhead(metric.Delay(), 5, 0); got != 0 {
		t.Errorf("zero-optimal guard = %v", got)
	}
}

func TestPolicyString(t *testing.T) {
	if QoSOptimal.String() != "qos-optimal" || MinHopThenQoS.String() != "minhop-then-qos" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Error("unknown policy name wrong")
	}
	g := graph.New(2)
	e := g.MustAddEdge(0, 1)
	if err := g.SetWeight("delay", e, 1); err != nil {
		t.Fatal(err)
	}
	adv, err := BuildAdvertised(g, [][]int32{{1}, {}}, "delay")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvaluatePair(g, adv, metric.Delay(), "delay", 0, 1, Policy(9)); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestForward(t *testing.T) {
	// Static next-hop table over 0-1-2-3.
	table := map[int32]int32{0: 1, 1: 2, 2: 3}
	next := func(at, dst int32) int32 {
		if nx, ok := table[at]; ok {
			return nx
		}
		return -1
	}
	path, ok := Forward(next, 0, 3, 10)
	if !ok || len(path) != 4 {
		t.Errorf("path = %v ok=%v", path, ok)
	}
	// Loop: 0->1->0->...
	loop := func(at, dst int32) int32 {
		if at == 0 {
			return 1
		}
		return 0
	}
	if _, ok := Forward(loop, 0, 3, 8); ok {
		t.Error("loop reported as delivered")
	}
	// No route.
	if path, ok := Forward(func(at, dst int32) int32 { return -1 }, 0, 3, 8); ok || len(path) != 1 {
		t.Errorf("no-route path = %v ok=%v", path, ok)
	}
	// Already at destination.
	if path, ok := Forward(next, 3, 3, 8); !ok || len(path) != 1 {
		t.Errorf("self-delivery path = %v ok=%v", path, ok)
	}
}
