package route

import (
	"testing"

	"qolsr/internal/core"
	"qolsr/internal/graph"
	"qolsr/internal/metric"
	"qolsr/internal/paperex"
)

func fig4Sets(t *testing.T, fix core.LoopFixMode) (*paperex.Fixture, [][]int32) {
	t.Helper()
	f := paperex.Figure4()
	w, err := f.G.Weights(paperex.Channel)
	if err != nil {
		t.Fatal(err)
	}
	sets := make([][]int32, f.G.N())
	for x := int32(0); int(x) < f.G.N(); x++ {
		view := graph.NewLocalView(f.G, x)
		sets[x], err = core.FNBP{LoopFix: fix}.Select(view, metric.Bandwidth(), w)
		if err != nil {
			t.Fatal(err)
		}
	}
	return f, sets
}

// The Fig. 4 statement measured end to end: without the rule E is
// unreachable from A, B and C under directed-advertisement semantics; with
// it, everyone reaches everyone.
func TestDirectedDeliveryFigure4(t *testing.T) {
	f, broken := fig4Sets(t, core.LoopFixOff)
	d, err := BuildDirectedAdvertised(f.G, broken)
	if err != nil {
		t.Fatal(err)
	}
	E := f.Node("E")
	for _, src := range []string{"A", "B", "C"} {
		if d.Delivers(f.Node(src), E) {
			t.Errorf("no-fix: %s->E delivered", src)
		}
	}
	if ratio := d.DeliveryRatio(); ratio == 1 {
		t.Error("no-fix: delivery ratio is 1, pathology invisible")
	}

	_, fixed := fig4Sets(t, core.LoopFixLiteral)
	df, err := BuildDirectedAdvertised(f.G, fixed)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{"A", "B", "C", "D"} {
		if !df.Delivers(f.Node(src), E) {
			t.Errorf("fix: %s->E not delivered", src)
		}
	}
	if ratio := df.DeliveryRatio(); ratio != 1 {
		t.Errorf("fix: delivery ratio = %v, want 1", ratio)
	}
}

func TestDirectedDeliveryBasics(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	// Only node 0 advertises its link to 1.
	d, err := BuildDirectedAdvertised(g, [][]int32{{1}, {}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Delivers(0, 0) {
		t.Error("self delivery failed")
	}
	if !d.Delivers(0, 1) {
		t.Error("direct neighbor delivery failed (local)")
	}
	// 0 -> 2: hop to 1 (advertised), then 2 is 1's physical neighbor.
	if !d.Delivers(0, 2) {
		t.Error("two-hop delivery via advertised hop + local last hop failed")
	}
	// 2 -> 0: nothing advertised from 2's side; 0 is not adjacent to 2.
	if d.Delivers(2, 0) {
		t.Error("unreachable pair delivered")
	}
	if _, err := BuildDirectedAdvertised(g, [][]int32{{2}, {}, {}}); err == nil {
		t.Error("non-neighbor advertisement accepted")
	}
	if _, err := BuildDirectedAdvertised(g, nil); err == nil {
		t.Error("set count mismatch accepted")
	}
}

func TestDeliveryRatioEmptyGraph(t *testing.T) {
	g := graph.New(2) // disconnected: no connected pairs at all
	d, err := BuildDirectedAdvertised(g, [][]int32{{}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.DeliveryRatio(); got != 1 {
		t.Errorf("vacuous delivery ratio = %v, want 1", got)
	}
}
