package core

import (
	"qolsr/internal/graph"
	"qolsr/internal/metric"
)

// TopologyFilter is the QANS baseline of Moraru & Simplot-Ryl (paper Sec. II,
// [7]): the local view is first reduced with the relative-neighborhood-graph
// rule under the QoS weight, then, for every 1- and 2-hop neighbor, the node
// advertises the first hops of the best paths of at most two hops inside the
// reduced view.
//
// Two behaviours noted by the paper are reproduced faithfully:
//
//   - paths are limited to two hops, so QoS gains from longer detours are
//     unreachable;
//   - every first hop tied for the best value is advertised ("they will all
//     be selected as advertised neighbors"), which is what keeps this set
//     larger than FNBP's.
//
// Direct links that survive the reduction are advertised as well (they are
// the reduced topology a node exposes); OmitSurvivingDirect drops them for
// ablation.
//
// The zero value is the strict reading of [7]: both legs of a two-hop
// detour must survive the reduction and targets with no reduced route
// within two hops are left to multi-hop routing over the advertised reduced
// topology (which the reduction provably keeps connected). The flags widen
// the reading for ablations.
type TopologyFilter struct {
	// OmitSurvivingDirect excludes RNG-surviving direct neighbors from
	// the advertised set, keeping only first hops of two-hop detours.
	OmitSurvivingDirect bool
	// FirstLegUnfiltered also considers detours u-x-v whose first leg
	// (u,x) was removed by the reduction (u always knows its own links),
	// requiring survival only of the advertised leg (x,v).
	FirstLegUnfiltered bool
	// UnreducedFallback serves 2-hop targets unreachable within two
	// reduced hops from the unreduced view (guaranteeing 2-hop coverage
	// at the cost of extra advertisements).
	UnreducedFallback bool
}

// Name implements Selector.
func (tf TopologyFilter) Name() string { return "topofilter" }

// TFStats reports detail about one topology-filtering selection.
type TFStats struct {
	// SurvivingDirect counts direct links kept by the reduction.
	SurvivingDirect int
	// DetourSelected counts first hops advertised for two-hop detours.
	DetourSelected int
	// FallbackTargets counts 2-hop targets unreachable within two hops of
	// the reduced view, served from the unreduced view instead.
	FallbackTargets int
}

// Select implements Selector.
func (tf TopologyFilter) Select(view *graph.LocalView, m metric.Metric, w []float64) ([]int32, error) {
	ans, _, err := tf.SelectWithStats(view, m, w)
	return ans, err
}

// SelectWithStats is Select plus rule-level accounting.
func (tf TopologyFilter) SelectWithStats(view *graph.LocalView, m metric.Metric, w []float64) ([]int32, TFStats, error) {
	var stats TFStats
	g := view.G
	rv := graph.ReduceRNG(view, m, w)

	selected := make(map[int32]bool) // N1 position set
	// Direct links surviving the reduction are part of the advertised
	// reduced topology.
	directEdge := make([]int32, len(view.N1)) // edge index u-x, -1 when absent
	directKeep := make([]bool, len(view.N1))
	for i, x := range view.N1 {
		e, ok := g.EdgeBetween(view.U, x)
		if !ok {
			directEdge[i] = -1
			continue
		}
		directEdge[i] = int32(e)
		directKeep[i] = rv.Keep[int32(e)]
		if directKeep[i] {
			stats.SurvivingDirect++
			if !tf.OmitSurvivingDirect {
				selected[int32(i)] = true
			}
		}
	}

	// twoHopBest collects, for target v, the best value over candidate
	// routes of at most two hops and every first hop achieving it.
	type candidate struct {
		val    float64
		direct bool
		pos    int32
	}
	for _, v := range view.Targets() {
		var cands []candidate
		if i := view.N1Index(v); i >= 0 && directKeep[i] {
			cands = append(cands, candidate{val: w[directEdge[i]], direct: true})
		}
		collect := func(reduced bool) {
			for i, x := range view.N1 {
				if x == v {
					continue
				}
				eUX := directEdge[i]
				if eUX < 0 {
					continue
				}
				eXV, ok := g.EdgeBetween(x, v)
				if !ok {
					continue
				}
				if reduced {
					if !rv.Keep[int32(eXV)] {
						continue
					}
					if !tf.FirstLegUnfiltered && !rv.Keep[eUX] {
						continue
					}
				}
				val := m.Combine(m.Combine(m.Identity(), w[eUX]), w[eXV])
				cands = append(cands, candidate{val: val, pos: int32(i)})
			}
		}
		collect(true)
		if len(cands) == 0 {
			// The reduced view cannot reach v within two hops. Strictly
			// following [7], v is left to multi-hop routing over the
			// advertised reduced topology; with UnreducedFallback the
			// unreduced two-hop paths that define v's view membership
			// are advertised instead.
			stats.FallbackTargets++
			if !tf.UnreducedFallback {
				continue
			}
			if i := view.N1Index(v); i >= 0 && directEdge[i] >= 0 {
				cands = append(cands, candidate{val: w[directEdge[i]], direct: true})
			}
			collect(false)
			if len(cands) == 0 {
				continue
			}
		}
		best := cands[0].val
		for _, c := range cands[1:] {
			if m.Better(c.val, best) {
				best = c.val
			}
		}
		directBest := false
		for _, c := range cands {
			if c.direct && !m.Better(best, c.val) {
				directBest = true
			}
		}
		if directBest {
			continue // the (advertised) direct link already serves v
		}
		for _, c := range cands {
			if !c.direct && c.val == best {
				if !selected[c.pos] {
					selected[c.pos] = true
					stats.DetourSelected++
				}
			}
		}
	}

	out := make([]int32, 0, len(selected))
	for pos := range selected {
		out = append(out, view.N1[pos])
	}
	sortByID(g, out)
	return out, stats, nil
}
