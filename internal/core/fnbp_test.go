package core

import (
	"math/rand"
	"reflect"
	"testing"

	"qolsr/internal/graph"
	"qolsr/internal/metric"
	"qolsr/internal/paperex"
)

func figWeights(t *testing.T, g *graph.Graph) []float64 {
	t.Helper()
	w, err := g.Weights(paperex.Channel)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func names(f *paperex.Fixture, idx []int32) []string {
	out := make([]string, len(idx))
	for i, x := range idx {
		out[i] = f.G.Label(x)
	}
	return out
}

// TestFigure2FNBPSelection walks the paper's Sec. III-B narrative on the
// Fig. 2 network: u ends up advertising exactly {v1, v6, v7}, with the
// covered targets assigned as the text describes.
func TestFigure2FNBPSelection(t *testing.T) {
	f := paperex.Figure2()
	u := f.Node("u")
	lv := graph.NewLocalView(f.G, u)
	w := figWeights(t, f.G)
	m := metric.Bandwidth()

	sel, err := FNBP{}.SelectFull(lv, m, w)
	if err != nil {
		t.Fatal(err)
	}
	got := names(f, sel.ANS)
	want := []string{"v1", "v6", "v7"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ANS(u) = %v, want %v", got, want)
	}

	// Cover assignments from the narrative:
	cases := map[string]string{
		"v1":  "v1", // direct link optimal
		"v2":  "v2", // direct link optimal
		"v4":  "v1", // u selects v1: u-v1-v5-v4 of bw 5 beats direct 3
		"v5":  "v1", // "assume u first selects v1 for reaching v5"
		"v6":  "v6",
		"v7":  "v7", // "u will not select another ANS for reaching v7"
		"v3":  "v1", // "v1 is already in ANS(u) and belongs to fP"
		"v10": "v1", // "it will choose v1 over v5 as it is already in its ANS"
		"v11": "v6", // "u will choose v6 instead of v2 ... better bandwidth"
		"v8":  "v6",
		"v9":  "v7",
	}
	for target, hop := range cases {
		got, ok := sel.Cover[f.Node(target)]
		if !ok {
			t.Errorf("no cover assignment for %s", target)
			continue
		}
		if f.G.Label(got) != hop {
			t.Errorf("cover[%s] = %s, want %s", target, f.G.Label(got), hop)
		}
	}
	if sel.Stats.Step1Selected != 1 {
		t.Errorf("Step1Selected = %d, want 1 (v1 for v4)", sel.Stats.Step1Selected)
	}
	if sel.Stats.Step2Selected != 2 {
		t.Errorf("Step2Selected = %d, want 2 (v6 for v8, v7 for v9)", sel.Stats.Step2Selected)
	}
	if sel.Stats.LoopFixSelected != 0 {
		t.Errorf("LoopFixSelected = %d, want 0 on Fig. 2", sel.Stats.LoopFixSelected)
	}
}

// TestFigure2LocalizationLimit checks the Fig. 2 localization argument: in
// G_u node u reaches v9 at bandwidth 3 via v7, although the full graph
// contains u-v6-v8-v9 at bandwidth 5 through a link u cannot see.
func TestFigure2LocalizationLimit(t *testing.T) {
	f := paperex.Figure2()
	u, v9 := f.Node("u"), f.Node("v9")
	w := figWeights(t, f.G)
	m := metric.Bandwidth()

	lv := graph.NewLocalView(f.G, u)
	if lv.HasViewEdge(f.Node("v8"), v9) {
		t.Fatal("link (v8,v9) must be invisible to u")
	}
	local := graph.Dijkstra(f.G, m, w, u, lv, -1)
	if local.Dist[v9] != 3 {
		t.Errorf("local best to v9 = %v, want 3", local.Dist[v9])
	}
	full := graph.Dijkstra(f.G, m, w, u, nil, -1)
	if full.Dist[v9] != 5 {
		t.Errorf("global best to v9 = %v, want 5", full.Dist[v9])
	}
}

// TestFigure4LoopAndFix reproduces the Fig. 4 pathology end to end: without
// the loop-fix rule A and B assign each other as forwarder for E, D is
// selected by nobody, and hop-by-hop forwarding loops; with the rule
// (default), A selects D and the packet A->E is delivered.
func TestFigure4LoopAndFix(t *testing.T) {
	f := paperex.Figure4()
	w := figWeights(t, f.G)
	m := metric.Bandwidth()
	A, B, D, E := f.Node("A"), f.Node("B"), f.Node("D"), f.Node("E")

	selections := func(fn FNBP) map[int32]*Selection {
		out := make(map[int32]*Selection)
		for x := int32(0); int(x) < f.G.N(); x++ {
			lv := graph.NewLocalView(f.G, x)
			sel, err := fn.SelectFull(lv, m, w)
			if err != nil {
				t.Fatal(err)
			}
			out[x] = sel
		}
		return out
	}

	// Without the fix: mutual assignment A<->B for destination E.
	broken := selections(FNBP{LoopFix: LoopFixOff})
	if got := broken[A].Cover[E]; got != B {
		t.Errorf("no-fix: cover_A[E] = %s, want B", f.G.Label(got))
	}
	if got := broken[B].Cover[E]; got != A {
		t.Errorf("no-fix: cover_B[E] = %s, want A", f.G.Label(got))
	}
	// "D has been selected by no node": none of E's prospective sources
	// advertises D, so no advertised link leads toward E's only access.
	for _, x := range []int32{A, B, f.Node("C")} {
		for _, a := range broken[x].ANS {
			if a == D {
				t.Errorf("no-fix: %s selected D", f.G.Label(x))
			}
		}
	}

	// With the fix: A additionally selects D and forwards for E through
	// it.
	fixed := selections(FNBP{})
	wantANS := []string{"B", "D"}
	if got := names(f, fixed[A].ANS); !reflect.DeepEqual(got, wantANS) {
		t.Errorf("fix: ANS(A) = %v, want %v", got, wantANS)
	}
	if got := fixed[A].Cover[E]; got != D {
		t.Errorf("fix: cover_A[E] = %s, want D", f.G.Label(got))
	}
	if fixed[A].Stats.LoopFixSelected != 1 {
		t.Errorf("fix: LoopFixSelected = %d, want 1", fixed[A].Stats.LoopFixSelected)
	}

	// Hop-by-hop forwarding from A to E over the cover assignments.
	deliver := func(sels map[int32]*Selection, src, dst int32) bool {
		at := src
		for hops := 0; hops < f.G.N()+1; hops++ {
			if at == dst {
				return true
			}
			next, ok := sels[at].Cover[dst]
			if !ok {
				return false
			}
			at = next
		}
		return false // looped
	}
	if deliver(broken, A, E) {
		t.Error("no-fix: delivery A->E unexpectedly succeeded")
	}
	if deliver(broken, B, E) {
		t.Error("no-fix: delivery B->E unexpectedly succeeded")
	}
	if !deliver(fixed, A, E) {
		t.Error("fix: delivery A->E failed")
	}
	if !deliver(fixed, B, E) {
		t.Error("fix: delivery B->E failed")
	}
}

// TestFigure4OtherSelections pins the remaining per-node sets so the
// narrative stays consistent ("B selects A anyway to cover D").
func TestFigure4OtherSelections(t *testing.T) {
	f := paperex.Figure4()
	w := figWeights(t, f.G)
	m := metric.Bandwidth()
	expect := map[string][]string{
		"B": {"A"},
		"C": {"B"},
		"D": {"A"},
		"E": {"D"},
	}
	for node, want := range expect {
		lv := graph.NewLocalView(f.G, f.Node(node))
		ans, err := FNBP{}.Select(lv, m, w)
		if err != nil {
			t.Fatal(err)
		}
		if got := names(f, ans); !reflect.DeepEqual(got, want) {
			t.Errorf("ANS(%s) = %v, want %v", node, got, want)
		}
	}
	// B's selection of A happens in step 1, covering its weak direct
	// link to D ("will have to be selected anyway to cover D").
	lv := graph.NewLocalView(f.G, f.Node("B"))
	_, stats, err := FNBP{}.SelectWithStats(lv, m, w)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Step1Selected != 1 {
		t.Errorf("B: Step1Selected = %d, want 1", stats.Step1Selected)
	}
}

func TestFNBPDelayMetricSymmetry(t *testing.T) {
	// Algorithm 2 is Algorithm 1 under the delay metric: on a line
	// u-a-b with a costly direct link u-b, u selects nothing (direct
	// links are optimal)... direct u-b=5 vs u-a-b=2: u advertises a.
	g := graph.New(3)
	type ew struct {
		a, b int32
		w    float64
	}
	for _, s := range []ew{{0, 1, 1}, {1, 2, 1}, {0, 2, 5}} {
		e := g.MustAddEdge(s.a, s.b)
		if err := g.SetWeight("delay", e, s.w); err != nil {
			t.Fatal(err)
		}
	}
	lv := graph.NewLocalView(g, 0)
	w, _ := g.Weights("delay")
	ans, err := FNBP{}.Select(lv, metric.Delay(), w)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || ans[0] != 1 {
		t.Errorf("ANS = %v, want [1]", ans)
	}
}

func TestFNBPEmptyNeighborhood(t *testing.T) {
	g := graph.New(2) // two isolated nodes
	lv := graph.NewLocalView(g, 0)
	ans, err := FNBP{}.Select(lv, metric.Bandwidth(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 0 {
		t.Errorf("ANS = %v, want empty", ans)
	}
}

// Property: the fast implementation and the reference oracle select the same
// sets; the reference selector exists precisely to guard this.
func TestFNBPFastMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 25; trial++ {
		g := randomWeightedGraph(rng, 14, 0.3)
		for _, m := range []metric.Metric{metric.Bandwidth(), metric.Delay()} {
			w, err := g.Weights(m.Name())
			if err != nil {
				t.Fatal(err)
			}
			for u := int32(0); int(u) < g.N(); u++ {
				lv := graph.NewLocalView(g, u)
				fast, err := FNBP{}.Select(lv, m, w)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := FNBP{UseReference: true}.Select(lv, m, w)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(fast, ref) {
					t.Fatalf("trial %d %s u=%d: fast %v != reference %v", trial, m.Name(), u, fast, ref)
				}
			}
		}
	}
}

// Property: FNBP's ANS is always a subset of N1 and never larger than it.
func TestFNBPSubsetInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 20; trial++ {
		g := randomWeightedGraph(rng, 20, 0.2)
		m := metric.Bandwidth()
		w, _ := g.Weights(m.Name())
		for u := int32(0); int(u) < g.N(); u++ {
			lv := graph.NewLocalView(g, u)
			ans, err := FNBP{}.Select(lv, m, w)
			if err != nil {
				t.Fatal(err)
			}
			if len(ans) > len(lv.N1) {
				t.Fatalf("ANS larger than N1")
			}
			for _, x := range ans {
				if !lv.IsNeighbor(x) {
					t.Fatalf("ANS member %d not a neighbor", x)
				}
			}
		}
	}
}

// Property: every target's cover assignment starts an optimal path (it is a
// member of fP(u,v)), or is the target itself when the direct link is
// optimal.
func TestFNBPCoverIsFirstHop(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 15; trial++ {
		g := randomWeightedGraph(rng, 15, 0.25)
		for _, m := range []metric.Metric{metric.Bandwidth(), metric.Delay()} {
			w, _ := g.Weights(m.Name())
			for u := int32(0); int(u) < g.N(); u++ {
				lv := graph.NewLocalView(g, u)
				sel, err := FNBP{}.SelectFull(lv, m, w)
				if err != nil {
					t.Fatal(err)
				}
				fh, err := graph.ComputeFirstHops(lv, m, w)
				if err != nil {
					t.Fatal(err)
				}
				for _, v := range lv.Targets() {
					hop, ok := sel.Cover[v]
					if !ok {
						t.Fatalf("target %d uncovered", v)
					}
					pos := lv.N1Index(hop)
					if pos < 0 || !fh.Contains(v, pos) {
						t.Fatalf("%s u=%d: cover[%d]=%d is not a first hop of an optimal path",
							m.Name(), u, v, hop)
					}
				}
			}
		}
	}
}

func TestFNBPNames(t *testing.T) {
	if (FNBP{}).Name() != "fnbp" {
		t.Error("default name")
	}
	if (FNBP{LoopFix: LoopFixOff}).Name() != "fnbp-nofix" {
		t.Error("nofix name")
	}
	if (FNBP{LoopFix: LoopFixAdjacent}).Name() != "fnbp-adjfix" {
		t.Error("adjfix name")
	}
}
