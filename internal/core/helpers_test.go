package core

import (
	"math/rand"

	"qolsr/internal/graph"
)

// randomWeightedGraph builds a G(n,p) graph with integer weights in [1,12]
// on the "bandwidth" and "delay" channels (integer so optimal-value ties are
// exact in float64).
func randomWeightedGraph(rng *rand.Rand, n int, p float64) *graph.Graph {
	g := graph.New(n)
	for a := int32(0); int(a) < n; a++ {
		for b := a + 1; int(b) < n; b++ {
			if rng.Float64() < p {
				e := g.MustAddEdge(a, b)
				if err := g.SetWeight("bandwidth", e, float64(1+rng.Intn(12))); err != nil {
					panic(err)
				}
				if err := g.SetWeight("delay", e, float64(1+rng.Intn(12))); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}
