package core

import (
	"fmt"

	"qolsr/internal/graph"
	"qolsr/internal/metric"
)

// FNBP is the paper's contribution: "first node on best path" QANS
// selection (Algorithms 1 and 2, unified over additive and concave metrics).
//
// For every 1-hop and 2-hop neighbor v, the center u computes the set
// fP(u,v) of first hops of QoS-optimal paths inside its local view G_u and
// advertises a small set of first hops that covers every target:
//
//   - step 1 (1-hop targets): nothing is selected when the direct link is
//     itself optimal (v ∈ fP(u,v)) or when an already-selected neighbor
//     starts an optimal path; otherwise the ≺-best member of fP(u,v) is
//     added.
//   - step 2 (2-hop targets): the ≺-best member of fP(u,v) is added unless
//     one is already selected. When one is already selected but u's
//     identifier is smaller than every member of fP(u,v), the "last limiting
//     link" rule (paper Fig. 4) additionally selects the ≺-best member that
//     is a direct neighbor of v, so that v keeps an advertised access link
//     and mutual-selection loops cannot isolate it.
//
// The zero value is the paper's algorithm; the fields toggle ablations.
type FNBP struct {
	// LoopFix selects the Fig. 4 rule variant; the zero value is the
	// paper's pseudocode (LoopFixLiteral).
	LoopFix LoopFixMode
	// UseReference computes first-hop sets with the O(|N1|·Dijkstra)
	// definition-level oracle instead of the fast single-search
	// algorithms. Results are identical (property-tested); this exists
	// for ablation A3 and debugging.
	UseReference bool
}

// LoopFixMode selects how the step-2 else branch (paper Algorithm 1 lines
// 11–15) handles covered 2-hop targets when the center has the smallest
// identifier among the optimal first hops.
type LoopFixMode int

const (
	// LoopFixLiteral follows the pseudocode: select max≺(fP(u,v)), the
	// first hop with the best direct link. This reading reproduces all
	// three of the paper's worked narratives (v10 and v11 in Fig. 2
	// choose v1 and v6 without growing the set; Fig. 4's node A selects
	// D). It is the default.
	LoopFixLiteral LoopFixMode = iota
	// LoopFixAdjacent follows the prose ("select a node w such that the
	// path uwv exists"): select the ≺-best member of fP(u,v) adjacent to
	// v. It repairs Fig. 4 for any weight assignment but also fires on
	// harmless cases like Fig. 2's v10, growing the set (ablation).
	LoopFixAdjacent
	// LoopFixOff disables the rule entirely (ablation A1), re-enabling
	// the Fig. 4 pathology.
	LoopFixOff
)

// Name implements Selector.
func (f FNBP) Name() string {
	switch f.LoopFix {
	case LoopFixAdjacent:
		return "fnbp-adjfix"
	case LoopFixOff:
		return "fnbp-nofix"
	default:
		return "fnbp"
	}
}

// Stats reports how each FNBP rule contributed to a selection.
type Stats struct {
	// Step1Selected counts neighbors added for 1-hop targets.
	Step1Selected int
	// Step1DirectOptimal counts 1-hop targets already served by their
	// direct link.
	Step1DirectOptimal int
	// Step2Selected counts neighbors added for 2-hop targets.
	Step2Selected int
	// Covered counts targets skipped because fP(u,v) already intersected
	// the ANS.
	Covered int
	// LoopFixSelected counts neighbors added by the Fig. 4 rule.
	LoopFixSelected int
}

// Selection is the full outcome of FNBP at one node.
type Selection struct {
	// ANS is the advertised neighbor set in ascending NodeID order.
	ANS []int32
	// Cover maps every reachable 1- and 2-hop target to the neighbor the
	// center forwards through for that target: the target itself when its
	// direct link is optimal, otherwise the ANS member serving it. This
	// is the paper's forwarding semantics, under which the Fig. 4 mutual
	// selection loop is observable (and repaired by the loop-fix rule,
	// which overrides the assignment with the selected access node).
	Cover map[int32]int32
	// Stats is the rule-level accounting.
	Stats Stats
}

// Select implements Selector.
func (f FNBP) Select(view *graph.LocalView, m metric.Metric, w []float64) ([]int32, error) {
	sel, err := f.SelectFull(view, m, w)
	if err != nil {
		return nil, err
	}
	return sel.ANS, nil
}

// SelectFull runs the selection and returns the advertised set together with
// per-target forwarding assignments and statistics.
func (f FNBP) SelectFull(view *graph.LocalView, m metric.Metric, w []float64) (*Selection, error) {
	g := view.G
	fh, err := f.firstHops(view, m, w)
	if err != nil {
		return nil, err
	}

	sel := &Selection{Cover: make(map[int32]int32, len(view.N1)+len(view.N2))}

	// The ANS as a bitset over N1 positions plus an ordered list.
	blocks := (len(view.N1) + 63) / 64
	ansBits := make([]uint64, blocks)
	add := func(pos int32) {
		if ansBits[pos/64]&(1<<(uint(pos)%64)) != 0 {
			return
		}
		ansBits[pos/64] |= 1 << (uint(pos) % 64)
		sel.ANS = append(sel.ANS, view.N1[pos])
	}
	inANS := func(pos int32) bool {
		return ansBits[pos/64]&(1<<(uint(pos)%64)) != 0
	}
	// coveredBy returns the ≺-best already-selected member of fP(u,v),
	// or -1.
	coveredBy := func(v int32) int32 {
		return bestMember(fh, m, v, inANS)
	}

	// Step 1: 1-hop targets in ascending ID order.
	for i, v := range view.N1 {
		if fh.Contains(v, int32(i)) {
			// Direct link already optimal: no ANS needed for v.
			sel.Cover[v] = v
			sel.Stats.Step1DirectOptimal++
			continue
		}
		if by := coveredBy(v); by >= 0 {
			sel.Cover[v] = view.N1[by]
			sel.Stats.Covered++
			continue
		}
		if best := bestMember(fh, m, v, nil); best >= 0 {
			add(best)
			sel.Cover[v] = view.N1[best]
			sel.Stats.Step1Selected++
		}
	}

	// Step 2: 2-hop targets in ascending ID order.
	uID := g.ID(view.U)
	for _, v := range view.N2 {
		by := coveredBy(v)
		if by < 0 {
			if best := bestMember(fh, m, v, nil); best >= 0 {
				add(best)
				sel.Cover[v] = view.N1[best]
				sel.Stats.Step2Selected++
			}
			continue
		}
		sel.Cover[v] = view.N1[by]
		sel.Stats.Covered++
		if f.LoopFix == LoopFixOff {
			continue
		}
		// Fig. 4 rule: when u's ID is smaller than every first hop's ID,
		// u is the responsible party for keeping v served; it selects the
		// ≺-best first hop (literal pseudocode) or the ≺-best first hop
		// adjacent to v (prose variant) and forwards for v through it, so
		// the forwarding assignment cannot ping-pong between peers when
		// the last link into v is the limiting one.
		smallest := true
		fh.ForEach(v, func(pos int32) {
			if g.ID(view.N1[pos]) < uID {
				smallest = false
			}
		})
		if !smallest {
			continue
		}
		var filter func(pos int32) bool
		if f.LoopFix == LoopFixAdjacent {
			filter = func(pos int32) bool {
				_, ok := g.EdgeBetween(view.N1[pos], v)
				return ok
			}
		}
		if best := bestMember(fh, m, v, filter); best >= 0 {
			if !inANS(best) {
				add(best)
				sel.Stats.LoopFixSelected++
			}
			sel.Cover[v] = view.N1[best]
		}
	}

	sortByID(g, sel.ANS)
	return sel, nil
}

// SelectWithStats runs the selection and returns the advertised set and the
// rule-level statistics.
func (f FNBP) SelectWithStats(view *graph.LocalView, m metric.Metric, w []float64) ([]int32, Stats, error) {
	sel, err := f.SelectFull(view, m, w)
	if err != nil {
		return nil, Stats{}, err
	}
	return sel.ANS, sel.Stats, nil
}

func (f FNBP) firstHops(view *graph.LocalView, m metric.Metric, w []float64) (*graph.FirstHops, error) {
	if f.UseReference {
		return graph.FirstHopsReference(view, m, w), nil
	}
	fh, err := graph.ComputeFirstHops(view, m, w)
	if err != nil {
		return nil, fmt.Errorf("core: fnbp: %w", err)
	}
	return fh, nil
}
