package core

import (
	"math/rand"
	"reflect"
	"testing"

	"qolsr/internal/graph"
	"qolsr/internal/metric"
)

// The semiring FNBP under a scalar semiring must match the float64
// implementation exactly.
func TestSelectFNBPSemiringScalarMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 15; trial++ {
		g := randomWeightedGraph(rng, 12, 0.3)
		for _, m := range []metric.Metric{metric.Bandwidth(), metric.Delay()} {
			w, _ := g.Weights(m.Name())
			s := metric.Scalar{Metric: m}
			for u := int32(0); int(u) < g.N(); u++ {
				lv := graph.NewLocalView(g, u)
				plain, err := FNBP{}.Select(lv, m, w)
				if err != nil {
					t.Fatal(err)
				}
				gen, err := SelectFNBPSemiring[float64](lv, s, LoopFixLiteral)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(plain, gen) {
					t.Fatalf("trial %d %s u=%d: scalar %v != semiring %v",
						trial, m.Name(), u, plain, gen)
				}
			}
		}
	}
}

// Multi-criterion selection (future work Sec. V): bandwidth first, energy
// as tie-break. Between two equally wide first hops, the energy-cheaper one
// must be selected.
func TestSelectFNBPSemiringLexBandwidthEnergy(t *testing.T) {
	g := graph.New(4) // 0=u, 1=a, 2=b, 3=x (2-hop target)
	type ew struct {
		a, b   int32
		bw, en float64
	}
	for _, s := range []ew{
		{0, 1, 5, 9}, {1, 3, 5, 9}, // via a: bw 5, energy 18
		{0, 2, 5, 1}, {2, 3, 5, 1}, // via b: bw 5, energy 2
	} {
		e := g.MustAddEdge(s.a, s.b)
		if err := g.SetWeight("bandwidth", e, s.bw); err != nil {
			t.Fatal(err)
		}
		if err := g.SetWeight("energy", e, s.en); err != nil {
			t.Fatal(err)
		}
	}
	lv := graph.NewLocalView(g, 0)
	lex := metric.Lexicographic{
		PrimaryMetric:   metric.Bandwidth(),
		SecondaryMetric: metric.Energy(),
		PrimaryWeight:   "bandwidth",
		SecondaryWeight: "energy",
	}
	ans, err := SelectFNBPSemiring[metric.LexCost](lv, lex, LoopFixLiteral)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || ans[0] != 2 {
		t.Errorf("ANS = %v, want [2] (the energy-cheap branch)", ans)
	}

	// Under pure bandwidth both branches tie and the smaller ID (a=1)
	// wins — demonstrating that the secondary criterion changed the
	// selection.
	w, _ := g.Weights("bandwidth")
	plain, err := FNBP{}.Select(lv, metric.Bandwidth(), w)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != 1 || plain[0] != 1 {
		t.Errorf("bandwidth-only ANS = %v, want [1]", plain)
	}
}

func TestSelectFNBPSemiringMissingChannel(t *testing.T) {
	g := graph.New(2)
	e := g.MustAddEdge(0, 1)
	if err := g.SetWeight("bandwidth", e, 1); err != nil {
		t.Fatal(err)
	}
	lv := graph.NewLocalView(g, 0)
	lex := metric.Lexicographic{
		PrimaryMetric:   metric.Bandwidth(),
		SecondaryMetric: metric.Energy(),
		PrimaryWeight:   "bandwidth",
		SecondaryWeight: "energy",
	}
	if _, err := SelectFNBPSemiring[metric.LexCost](lv, lex, LoopFixLiteral); err == nil {
		t.Error("missing energy channel accepted")
	}
}
