package core

import (
	"math/rand"
	"testing"

	"qolsr/internal/graph"
	"qolsr/internal/metric"
)

// The FNBP covering invariant: after selection, every 1- and 2-hop target is
// served — either its direct link is optimal, or some selected neighbor
// starts an optimal path to it. This is the property that makes the
// advertised set sufficient for QoS routing inside the two-hop horizon.
func TestFNBPCoveringInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 30; trial++ {
		g := randomWeightedGraph(rng, 16+rng.Intn(10), 0.2+rng.Float64()*0.2)
		for _, m := range []metric.Metric{metric.Bandwidth(), metric.Delay()} {
			w, _ := g.Weights(m.Name())
			for u := int32(0); int(u) < g.N(); u++ {
				lv := graph.NewLocalView(g, u)
				ans, err := FNBP{}.Select(lv, m, w)
				if err != nil {
					t.Fatal(err)
				}
				inANS := map[int32]bool{}
				for _, x := range ans {
					inANS[x] = true
				}
				fh, err := graph.ComputeFirstHops(lv, m, w)
				if err != nil {
					t.Fatal(err)
				}
				for _, v := range lv.Targets() {
					served := false
					if i := lv.N1Index(v); i >= 0 && fh.Contains(v, i) {
						served = true // direct link optimal
					}
					fh.ForEach(v, func(pos int32) {
						if inANS[lv.N1[pos]] {
							served = true
						}
					})
					if !served {
						t.Fatalf("trial %d %s u=%d: target %d unserved by ANS %v (fP=%v)",
							trial, m.Name(), u, v, ans, fh.Members(v))
					}
				}
			}
		}
	}
}

// The same invariant holds for every loop-fix variant (the rule only ever
// adds neighbors).
func TestFNBPCoveringInvariantAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	g := randomWeightedGraph(rng, 20, 0.25)
	m := metric.Bandwidth()
	w, _ := g.Weights(m.Name())
	base := map[int32]int{}
	for u := int32(0); int(u) < g.N(); u++ {
		lv := graph.NewLocalView(g, u)
		off, err := FNBP{LoopFix: LoopFixOff}.Select(lv, m, w)
		if err != nil {
			t.Fatal(err)
		}
		base[u] = len(off)
		for _, mode := range []LoopFixMode{LoopFixLiteral, LoopFixAdjacent} {
			ans, err := FNBP{LoopFix: mode}.Select(lv, m, w)
			if err != nil {
				t.Fatal(err)
			}
			if len(ans) < base[u] {
				t.Fatalf("u=%d: loop-fix variant %v shrank the set (%d < %d)",
					u, mode, len(ans), base[u])
			}
			// The no-fix set must be a subset of the fixed set.
			in := map[int32]bool{}
			for _, x := range ans {
				in[x] = true
			}
			for _, x := range off {
				if !in[x] {
					t.Fatalf("u=%d: fix variant %v dropped member %d", u, mode, x)
				}
			}
		}
	}
}

// Topology filtering with the fallback enabled serves every 2-hop target
// within two hops of the advertised candidates; without it, unreachable
// targets are exactly the counted fallbacks.
func TestTopologyFilterServiceAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(205))
	for trial := 0; trial < 10; trial++ {
		g := randomWeightedGraph(rng, 18, 0.25)
		m := metric.Bandwidth()
		w, _ := g.Weights(m.Name())
		for u := int32(0); int(u) < g.N(); u++ {
			lv := graph.NewLocalView(g, u)
			_, strictStats, err := TopologyFilter{}.SelectWithStats(lv, m, w)
			if err != nil {
				t.Fatal(err)
			}
			_, fbStats, err := TopologyFilter{UnreducedFallback: true}.SelectWithStats(lv, m, w)
			if err != nil {
				t.Fatal(err)
			}
			if strictStats.FallbackTargets != fbStats.FallbackTargets {
				t.Fatalf("u=%d: fallback accounting differs: %d vs %d",
					u, strictStats.FallbackTargets, fbStats.FallbackTargets)
			}
		}
	}
}
