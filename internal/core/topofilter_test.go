package core

import (
	"math/rand"
	"testing"

	"qolsr/internal/graph"
	"qolsr/internal/metric"
	"qolsr/internal/mpr"
)

func TestTopologyFilterAdvertisesSurvivingDirect(t *testing.T) {
	// Triangle where u's link to b (w=2) is dominated by u-a (5) and
	// a-b (5): the reduced view keeps u-a and a-b only, so the QANS is
	// {a} — a serves both as surviving direct link and as the detour's
	// first hop.
	g := graph.New(3) // 0=u 1=a 2=b
	type ew struct {
		a, b int32
		w    float64
	}
	for _, s := range []ew{{0, 1, 5}, {0, 2, 2}, {1, 2, 5}} {
		e := g.MustAddEdge(s.a, s.b)
		if err := g.SetWeight("bandwidth", e, s.w); err != nil {
			t.Fatal(err)
		}
	}
	lv := graph.NewLocalView(g, 0)
	w, _ := g.Weights("bandwidth")
	ans, stats, err := TopologyFilter{}.SelectWithStats(lv, metric.Bandwidth(), w)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || ans[0] != 1 {
		t.Errorf("QANS = %v, want [1]", ans)
	}
	if stats.SurvivingDirect != 1 {
		t.Errorf("SurvivingDirect = %d, want 1", stats.SurvivingDirect)
	}
	// With direct links omitted, a is still selected for the detour to b.
	ansNoDirect, err := TopologyFilter{OmitSurvivingDirect: true}.Select(lv, metric.Bandwidth(), w)
	if err != nil {
		t.Fatal(err)
	}
	if len(ansNoDirect) != 1 || ansNoDirect[0] != 1 {
		t.Errorf("QANS (omit direct) = %v, want [1]", ansNoDirect)
	}
}

// The paper's criticism of [7]: all tied-best first hops are advertised.
func TestTopologyFilterSelectsAllTiedFirstHops(t *testing.T) {
	// u with neighbors a,b and 2-hop target x; both u-a-x and u-b-x have
	// value 4; both a and b must be advertised.
	g := graph.New(4) // 0=u 1=a 2=b 3=x
	type ew struct {
		a, b int32
		w    float64
	}
	for _, s := range []ew{{0, 1, 4}, {0, 2, 4}, {1, 3, 4}, {2, 3, 4}} {
		e := g.MustAddEdge(s.a, s.b)
		if err := g.SetWeight("bandwidth", e, s.w); err != nil {
			t.Fatal(err)
		}
	}
	lv := graph.NewLocalView(g, 0)
	w, _ := g.Weights("bandwidth")
	ans, err := TopologyFilter{}.Select(lv, metric.Bandwidth(), w)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 2 {
		t.Errorf("QANS = %v, want both tied first hops", ans)
	}
	// FNBP on the same view selects just one (its defining advantage).
	fnbp, err := FNBP{}.Select(lv, metric.Bandwidth(), w)
	if err != nil {
		t.Fatal(err)
	}
	if len(fnbp) != 1 {
		t.Errorf("FNBP ANS = %v, want a single neighbor", fnbp)
	}
}

// Unlike QOLSR, topology filtering can serve a 1-hop neighbor through a
// 2-hop detour when it offers better QoS (paper Sec. II).
func TestTopologyFilterDetourForOneHopNeighbor(t *testing.T) {
	g := graph.New(3) // 0=u 1=v 2=w: direct u-v weak, u-w-v strong
	type ew struct {
		a, b int32
		w    float64
	}
	for _, s := range []ew{{0, 1, 1}, {0, 2, 9}, {2, 1, 9}} {
		e := g.MustAddEdge(s.a, s.b)
		if err := g.SetWeight("bandwidth", e, s.w); err != nil {
			t.Fatal(err)
		}
	}
	lv := graph.NewLocalView(g, 0)
	w, _ := g.Weights("bandwidth")
	ans, err := TopologyFilter{}.Select(lv, metric.Bandwidth(), w)
	if err != nil {
		t.Fatal(err)
	}
	// The weak direct link is filtered out; w is advertised (surviving
	// direct + detour first hop), v is not.
	if len(ans) != 1 || ans[0] != 2 {
		t.Errorf("QANS = %v, want [2]", ans)
	}
}

func TestTopologyFilterFallbackWhenReductionTooAggressive(t *testing.T) {
	// u-a (10), u-b (4), a-b (10), b-x (3): the reduction removes u-b
	// (witness a: both legs 10 > 4) and keeps b-x (no common neighbor of
	// b and x). The only physical 2-hop path to x, u-b-x, lost its first
	// leg, so x is unreachable within two reduced hops and the selector
	// falls back to the unreduced 2-hop path, advertising b.
	g := graph.New(4) // 0=u 1=a 2=b 3=x
	type ew struct {
		a, b int32
		w    float64
	}
	for _, s := range []ew{
		{0, 1, 10}, {0, 2, 4}, {1, 2, 10}, {2, 3, 3},
	} {
		e := g.MustAddEdge(s.a, s.b)
		if err := g.SetWeight("bandwidth", e, s.w); err != nil {
			t.Fatal(err)
		}
	}
	lv := graph.NewLocalView(g, 0)
	w, _ := g.Weights("bandwidth")

	// Strict [7] default: x is left to multi-hop routing over the reduced
	// topology (u-a-b-x stays connected); only a is advertised.
	ans, stats, err := TopologyFilter{}.SelectWithStats(lv, metric.Bandwidth(), w)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FallbackTargets != 1 {
		t.Errorf("FallbackTargets = %d, want 1 (x unreachable in 2 reduced hops)", stats.FallbackTargets)
	}
	if len(ans) != 1 || ans[0] != 1 {
		t.Errorf("strict QANS = %v, want [1]", ans)
	}

	// With the fallback enabled, b (u-b-x, the only 2-hop route to x) is
	// advertised in addition.
	ans, stats, err = TopologyFilter{UnreducedFallback: true}.SelectWithStats(lv, metric.Bandwidth(), w)
	if err != nil {
		t.Fatal(err)
	}
	if stats.FallbackTargets != 1 {
		t.Errorf("fallback FallbackTargets = %d, want 1", stats.FallbackTargets)
	}
	want := []int32{1, 2}
	if len(ans) != 2 || ans[0] != want[0] || ans[1] != want[1] {
		t.Errorf("fallback QANS = %v, want %v", ans, want)
	}
}

// On random graphs the three selectors satisfy the paper's headline size
// ordering on average: |FNBP| <= |topofilter| <= |QOLSR MPR-2| does not hold
// pointwise, but FNBP must never advertise more than topology filtering
// advertises plus its own loop-fix additions; we check the weaker, exact
// invariants: determinism and neighbor-subset.
func TestTopologyFilterInvariantsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 20; trial++ {
		g := randomWeightedGraph(rng, 18, 0.25)
		for _, m := range []metric.Metric{metric.Bandwidth(), metric.Delay()} {
			w, _ := g.Weights(m.Name())
			for u := int32(0); int(u) < g.N(); u++ {
				lv := graph.NewLocalView(g, u)
				a1, err := TopologyFilter{}.Select(lv, m, w)
				if err != nil {
					t.Fatal(err)
				}
				a2, err := TopologyFilter{}.Select(lv, m, w)
				if err != nil {
					t.Fatal(err)
				}
				if len(a1) != len(a2) {
					t.Fatalf("nondeterministic selection")
				}
				for i := range a1 {
					if a1[i] != a2[i] {
						t.Fatalf("nondeterministic member")
					}
				}
				for _, x := range a1 {
					if !lv.IsNeighbor(x) {
						t.Fatalf("non-neighbor advertised")
					}
				}
			}
		}
	}
}

func TestQOLSRAdapterAndFullAdvertise(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	g := randomWeightedGraph(rng, 15, 0.3)
	m := metric.Bandwidth()
	w, _ := g.Weights(m.Name())
	u := int32(0)
	lv := graph.NewLocalView(g, u)

	q := QOLSRAdapter{Heuristic: mpr.QOLSR2}
	ans, err := q.Select(lv, m, w)
	if err != nil {
		t.Fatal(err)
	}
	if !mpr.VerifyCoverage(lv, ans) {
		t.Error("QOLSR adapter set does not cover 2-hop neighborhood")
	}
	if q.Name() != "qolsr-qolsr-mpr2" {
		t.Errorf("Name = %q", q.Name())
	}

	full, err := FullAdvertise{}.Select(lv, m, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != len(lv.N1) {
		t.Errorf("full advertise size = %d, want %d", len(full), len(lv.N1))
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"qolsr", "topofilter", "fnbp", "full"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown selector accepted")
	}
}
