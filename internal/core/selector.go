// Package core implements the paper's contribution — FNBP ("first node on
// best path" QANS selection, Algorithms 1 and 2) — together with the two
// advertised-set baselines it is evaluated against: the original QOLSR MPR
// heuristics used directly as the advertised set, and the
// relative-neighborhood-graph topology filtering of Moraru & Simplot-Ryl.
//
// All selectors answer the same question: given a node's two-hop local view
// and a QoS metric, which neighbors should the node advertise in its TC
// messages so that QoS-good routes survive in the advertised topology?
package core

import (
	"fmt"
	"sort"

	"qolsr/internal/graph"
	"qolsr/internal/metric"
	"qolsr/internal/mpr"
)

// Selector computes a node's advertised neighbor set from its local view.
// Implementations must be stateless and safe for concurrent use.
type Selector interface {
	// Name returns a short identifier used in tables and benchmarks.
	Name() string
	// Select returns the advertised set of the view's center as global
	// node indices in ascending NodeID order. w is indexed by edge and
	// holds the metric's link values (typically g.Weights(m.Name())).
	Select(view *graph.LocalView, m metric.Metric, w []float64) ([]int32, error)
}

// prefer reports whether 1-hop neighbor at N1 position i is preferred over
// position j under the paper's ≺ ordering: strictly better direct link
// first, smaller identifier on ties. Since N1 is sorted by ascending ID,
// position order is ID order.
func prefer(m metric.Metric, direct []float64, i, j int32) bool {
	if m.Better(direct[i], direct[j]) {
		return true
	}
	if m.Better(direct[j], direct[i]) {
		return false
	}
	return i < j
}

// bestMember returns the most-preferred N1 position of fP(u,v) satisfying
// the filter (nil filter accepts everything), or -1 when empty. This is the
// paper's max≺BW / min≺D applied to fP(u,v).
func bestMember(fh *graph.FirstHops, m metric.Metric, v int32, filter func(pos int32) bool) int32 {
	best := int32(-1)
	fh.ForEach(v, func(pos int32) {
		if filter != nil && !filter(pos) {
			return
		}
		if best == -1 || prefer(m, fh.DirectWeight, pos, best) {
			best = pos
		}
	})
	return best
}

// sortByID sorts node indices by ascending external ID.
func sortByID(g *graph.Graph, s []int32) {
	sort.Slice(s, func(i, j int) bool { return g.ID(s[i]) < g.ID(s[j]) })
}

// QOLSRAdapter reproduces the original QOLSR behaviour where the advertised
// set and the MPR set are the same thing: the advertised set is simply the
// MPR set computed by the configured heuristic (the paper's "Original QOLSR"
// curve uses MPR-2).
type QOLSRAdapter struct {
	Heuristic mpr.Heuristic
}

// Name implements Selector.
func (q QOLSRAdapter) Name() string {
	return "qolsr-" + q.Heuristic.String()
}

// Select implements Selector.
func (q QOLSRAdapter) Select(view *graph.LocalView, m metric.Metric, w []float64) ([]int32, error) {
	return mpr.Select(view, q.Heuristic, m, w)
}

// FullAdvertise advertises every 1-hop neighbor — the full link-state upper
// bound. It is not part of the paper's comparison but bounds the achievable
// QoS of any advertised-set scheme, which makes it a useful ablation
// reference.
type FullAdvertise struct{}

// Name implements Selector.
func (FullAdvertise) Name() string { return "full-linkstate" }

// Select implements Selector.
func (FullAdvertise) Select(view *graph.LocalView, _ metric.Metric, _ []float64) ([]int32, error) {
	out := append([]int32(nil), view.N1...)
	return out, nil
}

// Compile-time interface compliance checks.
var (
	_ Selector = QOLSRAdapter{}
	_ Selector = FullAdvertise{}
	_ Selector = FNBP{}
	_ Selector = TopologyFilter{}
)

// ByName returns a selector configured like the paper's three evaluation
// curves: "qolsr" (MPR-2 as advertised set), "topofilter", and "fnbp".
// "full" returns the link-state upper bound.
func ByName(name string) (Selector, error) {
	switch name {
	case "qolsr":
		return QOLSRAdapter{Heuristic: mpr.QOLSR2}, nil
	case "topofilter":
		return TopologyFilter{}, nil
	case "fnbp":
		return FNBP{}, nil
	case "full":
		return FullAdvertise{}, nil
	default:
		return nil, fmt.Errorf("core: unknown selector %q", name)
	}
}
