package core

import (
	"fmt"

	"qolsr/internal/graph"
	"qolsr/internal/metric"
)

// SelectFNBPSemiring runs FNBP under an arbitrary cost semiring, which is
// what the paper's future-work section calls for ("multi-criterion metrics
// ... minimizing energy-consumption while providing good bandwidth",
// Sec. V). It computes first-hop sets from the definition — one restricted
// search per 1-hop neighbor — so it works for any semiring at the price of
// the reference algorithm's complexity.
//
// Costs are compared with s.Better; two costs tie when neither is better.
// The ≺ ordering uses the direct link's cost, with smaller NodeID breaking
// ties, exactly like the scalar implementation.
func SelectFNBPSemiring[C metric.Cost](view *graph.LocalView, s metric.Semiring[C], loopFix LoopFixMode) ([]int32, error) {
	g := view.G

	ties := func(a, b C) bool { return !s.Better(a, b) && !s.Better(b, a) }

	// Direct link costs per N1 position.
	direct := make([]C, len(view.N1))
	channels := make(map[string][]float64)
	for _, ch := range g.Channels() {
		ws, err := g.Weights(ch)
		if err != nil {
			return nil, err
		}
		channels[ch] = ws
	}
	linkCost := func(e int) (C, error) {
		wmap := make(map[string]float64, len(channels))
		for ch, ws := range channels {
			wmap[ch] = ws[e]
		}
		return s.LinkCost(wmap)
	}
	for i, x := range view.N1 {
		e, ok := g.EdgeBetween(view.U, x)
		if !ok {
			return nil, fmt.Errorf("core: missing edge %d-%d", view.U, x)
		}
		c, err := linkCost(e)
		if err != nil {
			return nil, err
		}
		direct[i] = c
	}

	// Optimal costs from the center within the view.
	from, err := graph.DijkstraGeneric[C](g, s, view.U, view, -1)
	if err != nil {
		return nil, err
	}
	// First-hop sets from the definition: hop i ∈ fP(u,v) iff
	// combine(direct[i], cost_{G_u − u}(hop, v)) ties the optimum.
	fp := make(map[int32][]int32, len(view.N1)+len(view.N2)) // target -> N1 positions
	for i, hop := range view.N1 {
		sub, err := graph.DijkstraGeneric[C](g, s, hop, view, view.U)
		if err != nil {
			return nil, err
		}
		for _, v := range view.Targets() {
			if !from.Reached[v] || !sub.Reached[v] {
				continue
			}
			if ties(s.Combine(direct[i], sub.Cost[v]), from.Cost[v]) {
				fp[v] = append(fp[v], int32(i))
			}
		}
	}

	preferPos := func(i, j int32) bool {
		if s.Better(direct[i], direct[j]) {
			return true
		}
		if s.Better(direct[j], direct[i]) {
			return false
		}
		return i < j
	}
	best := func(positions []int32, filter func(int32) bool) int32 {
		chosen := int32(-1)
		for _, p := range positions {
			if filter != nil && !filter(p) {
				continue
			}
			if chosen == -1 || preferPos(p, chosen) {
				chosen = p
			}
		}
		return chosen
	}

	selected := make(map[int32]bool) // N1 positions
	var ans []int32
	add := func(pos int32) {
		if !selected[pos] {
			selected[pos] = true
			ans = append(ans, view.N1[pos])
		}
	}
	covered := func(v int32) bool {
		for _, p := range fp[v] {
			if selected[p] {
				return true
			}
		}
		return false
	}

	for i, v := range view.N1 {
		if covered(v) {
			continue
		}
		self := false
		for _, p := range fp[v] {
			if p == int32(i) {
				self = true
			}
		}
		if self {
			continue
		}
		if b := best(fp[v], nil); b >= 0 {
			add(b)
		}
	}
	uID := g.ID(view.U)
	for _, v := range view.N2 {
		if !covered(v) {
			if b := best(fp[v], nil); b >= 0 {
				add(b)
			}
			continue
		}
		if loopFix == LoopFixOff {
			continue
		}
		smallest := true
		for _, p := range fp[v] {
			if g.ID(view.N1[p]) < uID {
				smallest = false
			}
		}
		if !smallest {
			continue
		}
		var filter func(p int32) bool
		if loopFix == LoopFixAdjacent {
			filter = func(p int32) bool {
				_, ok := g.EdgeBetween(view.N1[p], v)
				return ok
			}
		}
		if b := best(fp[v], filter); b >= 0 {
			add(b)
		}
	}

	sortByID(g, ans)
	return ans, nil
}
