package obs

import (
	"encoding/json"
	"io"
	"math"
)

// floatBits / bitsFloat convert between float64 values and the uint64 bit
// pattern the histogram sum cell stores.
func floatBits(v float64) uint64 { return math.Float64bits(v) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// SnapshotMetric is one metric's state at snapshot time.
type SnapshotMetric struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Labels []Label `json:"labels,omitempty"`
	// Value carries the counter or gauge value. Counter magnitudes in this
	// repo stay far below 2^53, so float64 is exact.
	Value float64 `json:"value"`
	// Histogram-only fields.
	Count   uint64       `json:"count,omitempty"`
	Sum     float64      `json:"sum,omitempty"`
	Buckets []jsonBucket `json:"buckets,omitempty"`
}

// jsonBucket encodes Le as a string so the +Inf overflow bound survives
// JSON round trips.
type jsonBucket struct {
	Le    string `json:"le"`
	Count uint64 `json:"count"`
}

// Snapshot is a point-in-time reading of a registry, sorted by
// (name, labels).
type Snapshot struct {
	Metrics []SnapshotMetric `json:"metrics"`
}

// Snapshot reads every metric — atomic cells directly, collector funcs by
// evaluation — and returns a deterministic, sorted snapshot. Nil registries
// snapshot to the zero value.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()

	out := make([]SnapshotMetric, 0, len(metrics))
	for _, m := range metrics {
		sm := SnapshotMetric{Name: m.name, Kind: m.kind.String(), Labels: m.labels}
		switch {
		case m.counterFn != nil:
			sm.Value = float64(m.counterFn())
		case m.gaugeFn != nil:
			sm.Value = m.gaugeFn()
		case m.cell != nil:
			sm.Value = float64(m.cell.Load())
		case m.gauge != nil:
			sm.Value = float64(m.gauge.Load())
		case m.hist != nil:
			sm.Count = m.hist.count.Load()
			sm.Sum = bitsFloat(m.hist.sum.Load())
			sm.Buckets = make([]jsonBucket, 0, len(m.hist.buckets))
			cum := uint64(0)
			for i := range m.hist.buckets {
				cum += m.hist.buckets[i].Load()
				sm.Buckets = append(sm.Buckets, jsonBucket{Le: leString(m.hist, i), Count: cum})
			}
		}
		out = append(out, sm)
	}
	sortMetrics(out)
	return Snapshot{Metrics: out}
}

// leString renders bucket i's upper bound ("+Inf" for the overflow bucket).
func leString(h *histogram, i int) string {
	if i == len(h.bounds) {
		return "+Inf"
	}
	return formatFloat(h.bounds[i])
}

// WriteJSON encodes the snapshot as indented JSON with a trailing newline.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Merge folds other into s by metric identity: counters and histogram
// buckets sum, gauges take the maximum (the high-water interpretation —
// every gauge this repo registers is a depth or occupancy peak). Metrics
// present in only one snapshot pass through. The result is sorted.
func Merge(snaps ...Snapshot) Snapshot {
	byKey := map[string]*SnapshotMetric{}
	var order []string
	for _, s := range snaps {
		for _, m := range s.Metrics {
			key := m.Name + labelKey(m.Labels)
			prev, ok := byKey[key]
			if !ok {
				cp := m
				cp.Buckets = append([]jsonBucket(nil), m.Buckets...)
				byKey[key] = &cp
				order = append(order, key)
				continue
			}
			switch m.Kind {
			case "gauge":
				if m.Value > prev.Value {
					prev.Value = m.Value
				}
			case "histogram":
				prev.Count += m.Count
				prev.Sum += m.Sum
				for i := range prev.Buckets {
					if i < len(m.Buckets) {
						prev.Buckets[i].Count += m.Buckets[i].Count
					}
				}
			default:
				prev.Value += m.Value
			}
		}
	}
	out := make([]SnapshotMetric, 0, len(order))
	for _, key := range order {
		out = append(out, *byKey[key])
	}
	sortMetrics(out)
	return Snapshot{Metrics: out}
}
