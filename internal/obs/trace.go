package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"qolsr/internal/rng"
)

// Sampler decides which data packets get a path trace. The 1-in-N choice is
// keyed — rng.Mix(seed, flow, seq) — never drawn from a sequential stream,
// so whether a packet is traced depends only on its identity, not on how
// many packets arrived before it. That is what keeps traces byte-identical
// across worker counts and scheduling orders.
type Sampler struct {
	seed uint64
	n    uint64
}

// NewSampler samples 1-in-every packets; every <= 0 disables sampling, and
// every == 1 traces all packets.
func NewSampler(seed int64, every int) Sampler {
	if every <= 0 {
		return Sampler{}
	}
	return Sampler{seed: uint64(seed), n: uint64(every)}
}

// Sample reports whether the packet (flow, seq) is traced.
func (s Sampler) Sample(flow uint32, seq uint64) bool {
	if s.n == 0 {
		return false
	}
	return rng.Mix(s.seed, uint64(flow), seq)%s.n == 0
}

// TraceEvent is one Chrome trace-event (the JSON Perfetto and
// chrome://tracing load). Ts and Dur are microseconds of virtual time; Pid
// groups a scenario run, Tid groups a flow, so a trace opens as one track
// per flow with hop spans laid end to end.
type TraceEvent struct {
	Name  string  `json:"name"`
	Cat   string  `json:"cat"`
	Phase string  `json:"ph"`
	Ts    float64 `json:"ts"`
	// Dur is always encoded: complete events with zero duration are real
	// (the final hop's arrival can coincide with delivery) and the schema
	// requires dur on every "X" event.
	Dur   float64    `json:"dur"`
	Pid   int        `json:"pid"`
	Tid   int64      `json:"tid"`
	Scope string     `json:"s,omitempty"`
	Args  *TraceArgs `json:"args,omitempty"`
}

// TraceArgs carries the per-hop accounting the motivation asks for: which
// node held the packet, how long the frame waited behind the transmitter
// queue, and (on the terminal instant event) why the packet ended.
type TraceArgs struct {
	Flow   uint32  `json:"flow"`
	Seq    uint64  `json:"seq"`
	Node   int32   `json:"node"`
	WaitUs float64 `json:"wait_us"`
	Drop   string  `json:"drop,omitempty"`
}

// hopRec is the in-flight record of one hop, buffered until the packet
// finishes so span durations can be computed from consecutive arrivals.
type hopRec struct {
	node    int32
	arrival time.Duration
	wait    time.Duration
}

// Tracer owns the sampled path traces of one deterministic run. It is
// single-goroutine, like the run that feeds it: events append in virtual
// event order, which is itself a pure function of (scenario, seed, run), so
// the serialized trace is byte-identical at any worker count. A nil *Tracer
// is fully inert — Start returns a nil *PacketTrace whose methods no-op —
// which is the entire disabled path.
type Tracer struct {
	sampler Sampler
	pid     int
	events  []TraceEvent
	free    []*PacketTrace
}

// NewTracer builds a tracer sampling 1-in-every packets; pid tags every
// event (scenario runs use the run index).
func NewTracer(seed int64, every, pid int) *Tracer {
	return &Tracer{sampler: NewSampler(seed, every), pid: pid}
}

// Start begins a packet trace if (flow, seq) is sampled, else returns nil.
// Nil-safe on the receiver.
func (t *Tracer) Start(flow uint32, seq uint64) *PacketTrace {
	if t == nil || !t.sampler.Sample(flow, seq) {
		return nil
	}
	var pt *PacketTrace
	if n := len(t.free); n > 0 {
		pt = t.free[n-1]
		t.free = t.free[:n-1]
		pt.hops = pt.hops[:0]
	} else {
		pt = &PacketTrace{t: t}
	}
	pt.flow, pt.seq = flow, seq
	return pt
}

// Events returns the accumulated trace (nil-safe).
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	return t.events
}

// PacketTrace records one sampled packet's path. All methods are safe on a
// nil receiver — the data plane calls them unconditionally.
type PacketTrace struct {
	t    *Tracer
	flow uint32
	seq  uint64
	hops []hopRec
}

// Hop records arrival at node, with the transmit-queue wait the frame that
// carried it here experienced (0 on the first hop and over ideal media).
func (pt *PacketTrace) Hop(node int32, arrival, wait time.Duration) {
	if pt == nil {
		return
	}
	pt.hops = append(pt.hops, hopRec{node: node, arrival: arrival, wait: wait})
}

// Finish closes the trace with an outcome ("delivered", "no-route",
// "ttl-expired", "medium-loss"), emitting one complete-span event per hop —
// each span lasting until the next arrival — plus a terminal instant event,
// and recycles the record.
func (pt *PacketTrace) Finish(outcome string, end time.Duration) {
	if pt == nil {
		return
	}
	t := pt.t
	for i, h := range pt.hops {
		until := end
		if i+1 < len(pt.hops) {
			until = pt.hops[i+1].arrival
		}
		t.events = append(t.events, TraceEvent{
			Name:  fmt.Sprintf("n%d", h.node),
			Cat:   "packet",
			Phase: "X",
			Ts:    micros(h.arrival),
			Dur:   micros(until - h.arrival),
			Pid:   t.pid,
			Tid:   int64(pt.flow),
			Args:  &TraceArgs{Flow: pt.flow, Seq: pt.seq, Node: h.node, WaitUs: micros(h.wait)},
		})
	}
	last := TraceArgs{Flow: pt.flow, Seq: pt.seq}
	if n := len(pt.hops); n > 0 {
		last.Node = pt.hops[n-1].node
	}
	if outcome != "delivered" {
		last.Drop = outcome
	}
	t.events = append(t.events, TraceEvent{
		Name:  outcome,
		Cat:   "packet",
		Phase: "i",
		Ts:    micros(end),
		Pid:   t.pid,
		Tid:   int64(pt.flow),
		Scope: "t",
		Args:  &last,
	})
	t.free = append(t.free, pt)
}

// ValidateTrace checks that data is a well-formed Chrome trace-event JSON
// document: a traceEvents array whose entries carry the mandatory
// name/ph/ts/pid/tid fields with the right JSON types, durations on
// complete events, and no negative timestamps. The scenario tests and the
// CI trace smoke both gate on it.
func ValidateTrace(data []byte) error {
	var doc struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("trace JSON does not parse: %w", err)
	}
	if doc.TraceEvents == nil {
		return fmt.Errorf("trace JSON missing traceEvents array")
	}
	for i, ev := range doc.TraceEvents {
		var name, ph string
		var ts float64
		var pid, tid int64
		for field, into := range map[string]any{
			"name": &name, "ph": &ph, "ts": &ts, "pid": &pid, "tid": &tid,
		} {
			raw, ok := ev[field]
			if !ok {
				return fmt.Errorf("event %d missing %q", i, field)
			}
			if err := json.Unmarshal(raw, into); err != nil {
				return fmt.Errorf("event %d field %q: %w", i, field, err)
			}
		}
		if name == "" {
			return fmt.Errorf("event %d has empty name", i)
		}
		if ph != "X" && ph != "i" {
			return fmt.Errorf("event %d has phase %q, want X or i", i, ph)
		}
		if ts < 0 {
			return fmt.Errorf("event %d has negative ts %v", i, ts)
		}
		if _, ok := ev["dur"]; ph == "X" && !ok {
			return fmt.Errorf("complete event %d missing dur", i)
		}
	}
	return nil
}

// micros converts virtual time to the trace format's microsecond unit.
func micros(d time.Duration) float64 {
	return float64(d) / float64(time.Microsecond)
}

// WriteTrace serializes events as a Chrome trace-event JSON object —
// loadable directly in Perfetto (ui.perfetto.dev) or chrome://tracing. The
// encoding is deterministic: fixed struct field order, events in the order
// given.
func WriteTrace(w io.Writer, events []TraceEvent) error {
	if events == nil {
		events = []TraceEvent{}
	}
	doc := struct {
		TraceEvents     []TraceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return enc.Encode(doc)
}
